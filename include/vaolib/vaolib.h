// Copyright 2026 The vaolib Authors.
//
// Single-include public facade for vaolib. Applications include this one
// header and link the vaolib_engine target:
//
//   #include <vaolib/vaolib.h>
//
//   vaolib::engine::Query q = vaolib::engine::Query::Builder(&model)
//                                 .Args({...})
//                                 .Max()
//                                 .Epsilon(0.01)
//                                 .Build();
//
// The facade must compile standalone under -Wall -Wextra -Werror; CI
// builds the `vaolib_facade_check` target to enforce that every public
// header stays self-contained (see cmake/facade_check.cc).

#ifndef VAOLIB_VAOLIB_H_
#define VAOLIB_VAOLIB_H_

/// \defgroup vaolib_common Common infrastructure
/// Status/Result error handling, sound interval \ref vaolib::Bounds,
/// deterministic \ref vaolib::Rng, the \ref vaolib::WorkMeter work-unit
/// clock every budget in the library is denominated in, and the shared
/// \ref vaolib::ThreadPool.

#include "common/bounds.h"       // IWYU pragma: export
#include "common/result.h"       // IWYU pragma: export
#include "common/rng.h"          // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/thread_pool.h"  // IWYU pragma: export
#include "common/work_meter.h"   // IWYU pragma: export

/// \defgroup vaolib_vao Variable-accuracy functions
/// The paper's core abstraction: \ref vaolib::vao::VariableAccuracyFunction
/// produces a \ref vaolib::vao::ResultObject whose bounds tighten with each
/// Iterate() call. Includes the black-box adapter, the sharded
/// \ref vaolib::vao::BoundsCache / CachingFunction memoization layer, the
/// parallel StepAll batch driver, and the unified probabilistic
/// \ref vaolib::vao::Answer every executor seam returns: a Bounds plus
/// answer mode (exact / approximate), confidence, sample accounting, and
/// the deterministic-vs-sampling width decomposition. Answer lifts
/// implicitly from Bounds, so pre-existing exact-mode code compiles
/// unchanged.

#include "vao/answer.h"          // IWYU pragma: export
#include "vao/black_box.h"       // IWYU pragma: export
#include "vao/function_cache.h"  // IWYU pragma: export
#include "vao/parallel.h"        // IWYU pragma: export
#include "vao/result_object.h"   // IWYU pragma: export

/// \defgroup vaolib_operators Adaptive operators and iteration strategies
/// The four VAO operator families (selection, MIN/MAX, SUM/AVE, TOP-K)
/// configured through \ref vaolib::operators::OperatorOptions, the
/// pluggable \ref vaolib::operators::IterationStrategy, and the resumable
/// \ref vaolib::operators::IterationTask unit the cross-query scheduler
/// interleaves.

#include "operators/iteration_strategy.h"  // IWYU pragma: export
#include "operators/iteration_task.h"      // IWYU pragma: export
#include "operators/min_max.h"             // IWYU pragma: export
#include "operators/operator_base.h"       // IWYU pragma: export
#include "operators/selection.h"           // IWYU pragma: export
#include "operators/sum_ave.h"             // IWYU pragma: export
#include "operators/top_k.h"               // IWYU pragma: export
#include "operators/traditional.h"         // IWYU pragma: export

/// \defgroup vaolib_engine Continuous-query engine
/// Declarative \ref vaolib::engine::Query (with the fluent
/// \ref vaolib::engine::Query::Builder), relations/schemas, the
/// single-query \ref vaolib::engine::CqExecutor, the shared-result
/// \ref vaolib::engine::MultiQueryExecutor, and the budget-aware
/// \ref vaolib::engine::WorkScheduler with its fair-share / EDF / greedy
/// global policies. The approximate tier (engine/sampling) serves sampled
/// SUM/AVE/TOP-K behind the same seams: seeded row samplers and the
/// resumable \ref vaolib::engine::sampling::SampledSumTask, enabled per
/// query via \ref vaolib::engine::ApproxSpec (`APPROX WITH CONFIDENCE ...`
/// in SQL).

#include "engine/executor.h"             // IWYU pragma: export
#include "engine/multi_query.h"          // IWYU pragma: export
#include "engine/query.h"                // IWYU pragma: export
#include "engine/relation.h"             // IWYU pragma: export
#include "engine/sampling/sampled_sum.h" // IWYU pragma: export
#include "engine/sampling/sampler.h"     // IWYU pragma: export
#include "engine/scheduler.h"            // IWYU pragma: export
#include "engine/schema.h"               // IWYU pragma: export
#include "engine/sql_parser.h"           // IWYU pragma: export
#include "engine/value.h"                // IWYU pragma: export

/// \defgroup vaolib_obs Observability
/// Process-wide \ref vaolib::obs::MetricsRegistry (Prometheus-style
/// counters/gauges), the per-query \ref vaolib::obs::ExecutionReport
/// with JSON / Prometheus renderers (scheduler section and
/// estimator-calibration audit included), and the execution tracer:
/// span timelines, per-iteration decision events, and the
/// \ref vaolib::obs::FlightRecorder post-mortem dumps
/// (VAOLIB_TRACE / VAOLIB_TRACE_RING / VAOLIB_TRACE_DUMP).

#include "obs/execution_report.h"  // IWYU pragma: export
#include "obs/flight_recorder.h"   // IWYU pragma: export
#include "obs/metrics.h"           // IWYU pragma: export
#include "obs/trace.h"             // IWYU pragma: export

/// \defgroup vaolib_server Serving layer
/// The standing-query server (link vaolib_server): length-framed wire
/// codec, the text protocol whose query payloads are ParseQuery/FormatQuery
/// round-trips, multi-tenant \ref vaolib::server::AdmissionController
/// mapping quotas onto scheduler reserves, the tick-fanning
/// \ref vaolib::server::Dispatcher, the transport-independent
/// \ref vaolib::server::StandingQueryServer session layer, and replayable
/// load scenarios shared with scripts/loadgen.py.

#include "server/admission.h"   // IWYU pragma: export
#include "server/dispatcher.h"  // IWYU pragma: export
#include "server/frame.h"       // IWYU pragma: export
#include "server/protocol.h"    // IWYU pragma: export
#include "server/scenario.h"    // IWYU pragma: export
#include "server/server.h"      // IWYU pragma: export

#endif  // VAOLIB_VAOLIB_H_
