#!/usr/bin/env bash
# Reproduces every table/figure of the paper plus the ablations.
#
# Usage:
#   scripts/run_experiments.sh [output_dir]
#
# Environment:
#   VAOLIB_BENCH_BONDS  portfolio size (default 500, the paper's cardinality)
#   VAOLIB_BENCH_SEED   portfolio seed (default 1994)
#
# Each experiment's stdout (aligned table + CSV) is written to
# <output_dir>/<bench>.txt; a combined transcript goes to
# <output_dir>/all_experiments.txt.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-${repo_root}/bench_results}"
build_dir="${repo_root}/build"

if [ ! -d "${build_dir}/bench" ]; then
  echo "building first..."
  cmake -B "${build_dir}" -G Ninja "${repo_root}"
  cmake --build "${build_dir}"
fi

mkdir -p "${out_dir}"
combined="${out_dir}/all_experiments.txt"
: > "${combined}"

for bench in "${build_dir}"/bench/*; do
  [ -f "${bench}" ] && [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  echo "== running ${name} =="
  {
    echo "===== ${name} ====="
    "${bench}"
    echo
  } | tee "${out_dir}/${name}.txt" >> "${combined}"
done

echo "done; results in ${out_dir}"
