#!/usr/bin/env bash
# Builds the concurrency-sensitive targets with ThreadSanitizer (the
# VAOLIB_SANITIZE=thread CMake option) in a separate build tree and runs the
# tests that exercise the thread pool, the parallel helpers, and the sharded
# bounds cache.
#
# Usage:
#   scripts/check_tsan.sh [build_dir]          # default build-tsan/
#   VAOLIB_SANITIZE=address scripts/check_tsan.sh build-asan
#
# Exits non-zero on any build failure, test failure, or sanitizer report.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizer="${VAOLIB_SANITIZE:-thread}"
build_dir="${1:-${repo_root}/build-tsan}"

targets=(thread_pool_test parallel_test vao_test extensions_test obs_test)

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVAOLIB_SANITIZE="${sanitizer}"
cmake --build "${build_dir}" --target "${targets[@]}" -j "$(nproc)"

# halt_on_error makes a single race fail the run instead of scrolling past.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

status=0
for target in "${targets[@]}"; do
  echo "== ${sanitizer} sanitizer: ${target} =="
  if ! "${build_dir}/tests/${target}"; then
    status=1
  fi
done

if [ "${status}" -ne 0 ]; then
  echo "FAIL: sanitizer run reported errors" >&2
else
  echo "OK: all targets clean under ${sanitizer} sanitizer"
fi
exit "${status}"
