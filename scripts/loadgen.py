#!/usr/bin/env python3
"""Load generator for the vaolib standing-query server.

Replays a scenario file (the format of src/server/scenario.h -- the same
files the in-process bench consumes, so a storm that fails in CI can be
replayed byte-for-byte against a live server) over TCP:

    SESSION <name> <tenant> [reports]   open a connection, HELLO as <tenant>
    SEND <name> <payload...>            send one request payload verbatim
    TICKS <name> <count> <base> <step>  send <count> TICKs: base + step*i
    EXPECT <name> <substring...>        drain <name>, then require that some
                                        reply received so far contains the
                                        substring (rest of line, verbatim)
    CLOSE <name>                        drop the connection (no BYE)

Reply frames starting with "# " are Prometheus scrapes (METRICS replies);
they are counted per session and run through a basic exposition lint
(every sample line numeric, every histogram ends at le="+Inf") rather
than being matched as protocol replies.

Usage:
    # Against a server you started yourself:
    tools/vaolib_server --port 7411 &
    scripts/loadgen.py --port 7411 scripts/scenarios/smoke.scenario

    # Or let loadgen spawn the server (waits for its LISTENING line,
    # ephemeral port, tears it down afterwards):
    scripts/loadgen.py --spawn build/tools/vaolib_server \\
        --spawn-arg=--bonds --spawn-arg=16 scripts/scenarios/smoke.scenario

Prints a per-session reply account and exits non-zero on any ERR reply,
protocol violation, or missing RESULT traffic. Pure standard library.
"""

import argparse
import socket
import subprocess
import sys
import time


def encode_frame(payload: str) -> bytes:
    """Length-framed wire format: '<decimal len>\\n<payload>'."""
    raw = payload.encode()
    return str(len(raw)).encode() + b"\n" + raw


class FrameDecoder:
    """Incremental decoder mirroring src/server/frame.cc."""

    def __init__(self) -> None:
        self.buffer = b""

    def feed(self, data: bytes) -> list:
        self.buffer += data
        frames = []
        while True:
            newline = self.buffer.find(b"\n")
            if newline < 0:
                break
            header = self.buffer[:newline]
            if not header.isdigit():
                raise ValueError(f"malformed frame header {header!r}")
            length = int(header)
            end = newline + 1 + length
            if len(self.buffer) < end:
                break
            frames.append(self.buffer[newline + 1:end].decode())
            self.buffer = self.buffer[end:]
        return frames


def lint_scrape(text: str) -> list:
    """Minimal Prometheus exposition lint; returns a list of problems."""
    problems = []
    bucket_families = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value = line.rpartition(" ")
        try:
            float(value)
        except ValueError:
            problems.append(f"non-numeric sample: {line!r}")
            continue
        name = name_part.split("{", 1)[0]
        if name.endswith("_bucket"):
            series = name_part.split("{", 1)
            labels = series[1] if len(series) == 2 else ""
            key = name + "".join(
                part for part in labels.split(",") if "le=" not in part)
            bucket_families.setdefault(key, []).append(labels)
    for family, series in bucket_families.items():
        if not any('le="+Inf"' in labels for labels in series):
            problems.append(f"histogram {family} has no le=\"+Inf\" bucket")
    return problems


class Session:
    def __init__(self, name: str, tenant: str, host: str, port: int,
                 reports: bool, timeout: float) -> None:
        self.name = name
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.decoder = FrameDecoder()
        self.replies = []
        self.errors = []
        self.results = 0
        self.shed = 0
        self.scrapes = 0
        hello = "HELLO " + tenant + (" reports" if reports else "")
        self.send(hello)

    def send(self, payload: str) -> None:
        self.sock.sendall(encode_frame(payload))

    def pump(self, deadline: float) -> None:
        """Drains whatever the server has queued for this session."""
        self.sock.settimeout(max(0.01, deadline - time.monotonic()))
        try:
            while True:
                data = self.sock.recv(65536)
                if not data:
                    return
                for frame in self.decoder.feed(data):
                    self.replies.append(frame)
                    if frame.startswith("# "):
                        self.scrapes += 1
                        for problem in lint_scrape(frame):
                            self.errors.append(f"scrape lint: {problem}")
                    elif frame.startswith("ERR "):
                        self.errors.append(frame)
                    elif frame.startswith("RESULT "):
                        self.results += 1
                    elif frame.startswith("SHED "):
                        self.shed += 1
                self.sock.settimeout(0.05)
        except socket.timeout:
            return

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def format_tick(value: float) -> str:
    """repr() is the shortest round-trip form, matching scenario.cc."""
    return repr(value)


def parse_scenario(path: str) -> list:
    steps = []
    with open(path, encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            words = line.split(" ")
            op = next((w for w in words if w), "")
            if not op or op.startswith("#"):
                continue
            rest = line[line.index(op) + len(op):].lstrip(" ")
            if op == "SESSION":
                parts = rest.split()
                if len(parts) not in (2, 3) or (
                        len(parts) == 3 and parts[2] != "reports"):
                    sys.exit(f"{path}:{line_no}: bad SESSION line")
                steps.append(("SESSION", parts[0], parts[1],
                              len(parts) == 3))
            elif op == "SEND":
                name, _, payload = rest.partition(" ")
                if not name or not payload:
                    sys.exit(f"{path}:{line_no}: bad SEND line")
                steps.append(("SEND", name, payload))
            elif op == "TICKS":
                parts = rest.split()
                if len(parts) != 4:
                    sys.exit(f"{path}:{line_no}: bad TICKS line")
                steps.append(("TICKS", parts[0], int(parts[1]),
                              float(parts[2]), float(parts[3])))
            elif op == "EXPECT":
                name, _, substring = rest.partition(" ")
                if not name or not substring:
                    sys.exit(f"{path}:{line_no}: bad EXPECT line")
                steps.append(("EXPECT", name, substring))
            elif op == "CLOSE":
                if not rest.strip():
                    sys.exit(f"{path}:{line_no}: bad CLOSE line")
                steps.append(("CLOSE", rest.strip()))
            else:
                sys.exit(f"{path}:{line_no}: unknown step '{op}'")
    return steps


def spawn_server(binary: str, extra_args: list) -> tuple:
    """Starts the server on an ephemeral port; returns (process, port)."""
    process = subprocess.Popen(
        [binary, "--port", "0"] + extra_args,
        stdout=subprocess.PIPE, text=True)
    line = process.stdout.readline().strip()
    if not line.startswith("LISTENING "):
        process.kill()
        sys.exit(f"server did not announce a port (got {line!r})")
    return process, int(line.split()[1])


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Replay a scenario file against a vaolib_server.")
    parser.add_argument("scenario", help="scenario file to replay")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7411)
    parser.add_argument("--spawn", metavar="BINARY",
                        help="spawn this vaolib_server binary on an "
                             "ephemeral port instead of connecting")
    parser.add_argument("--spawn-arg", action="append", default=[],
                        help="extra argument for --spawn (repeatable)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-step reply timeout in seconds")
    args = parser.parse_args()

    steps = parse_scenario(args.scenario)
    if not steps:
        sys.exit(f"{args.scenario}: no steps")

    process = None
    port = args.port
    if args.spawn:
        process, port = spawn_server(args.spawn, args.spawn_arg)

    sessions = {}   # live, still pumped during TICKS
    finished = {}   # CLOSEd, kept for the final account
    failed = False
    try:
        for step in steps:
            kind = step[0]
            if kind == "SESSION":
                _, name, tenant, reports = step
                if name in sessions:
                    sys.exit(f"duplicate session '{name}'")
                sessions[name] = Session(name, tenant, args.host, port,
                                         reports, args.timeout)
            elif kind == "SEND":
                _, name, payload = step
                sessions[name].send(payload)
            elif kind == "TICKS":
                _, name, count, base, tick_step = step
                for i in range(count):
                    sessions[name].send(
                        "TICK " + format_tick(base + tick_step * i))
                    # Results fan out to every session; drain as we go so
                    # socket buffers stay small during a storm. Short
                    # first-byte wait: a session with nothing queued (e.g.
                    # a monitor) must not stall the ramp for the full
                    # timeout; EXPECT and the final drain still wait it.
                    deadline = time.monotonic() + min(0.2, args.timeout)
                    for session in sessions.values():
                        session.pump(deadline)
            elif kind == "EXPECT":
                _, name, substring = step
                session = sessions[name]
                # Only wait on the wire when the expectation is not already
                # met by replies drained earlier.
                if not any(substring in r for r in session.replies):
                    session.pump(time.monotonic() + args.timeout)
                if not any(substring in r for r in session.replies):
                    print(f"FAIL: EXPECT {name}: no reply contains "
                          f"{substring!r}")
                    for reply in session.replies[-5:]:
                        print(f"  last reply: {reply[:200]}")
                    failed = True
            elif kind == "CLOSE":
                _, name = step
                finished[name] = sessions.pop(name)
                finished[name].close()

        deadline = time.monotonic() + args.timeout
        for session in sessions.values():
            session.pump(deadline)
    finally:
        for session in sessions.values():
            session.close()
        if process is not None:
            process.terminate()
            process.wait(timeout=10)

    finished.update(sessions)
    total_results = 0
    for name in sorted(finished):
        session = finished[name]
        total_results += session.results
        print(f"{name}: {len(session.replies)} replies, "
              f"{session.results} results, {session.shed} shed, "
              f"{session.scrapes} scrapes, {len(session.errors)} errors")
        for error in session.errors:
            print(f"  {error}")
            failed = True
    if total_results == 0 and any(s[0] == "TICKS" for s in steps):
        print("FAIL: a tick storm produced no RESULT frames")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
