// Copyright 2026 The vaolib Authors.
//
// Compile-only check that the single-include facade is self-contained.
// Built as the `vaolib_facade_check` object library with -Wall -Wextra
// -Werror; it must stay the ONLY include in this file.

#include <vaolib/vaolib.h>

// Reference one symbol per module group so the facade cannot degrade into
// a header that parses but exports nothing.
namespace vaolib::facade_check {

static_assert(sizeof(Bounds) > 0, "common surfaced");
static_assert(sizeof(vao::BoundsCache::Entry) > 0, "vao surfaced");
static_assert(sizeof(operators::OperatorOptions) > 0, "operators surfaced");
static_assert(sizeof(engine::Query::Builder) > 0, "engine surfaced");
static_assert(sizeof(engine::SchedulerOptions) > 0, "scheduler surfaced");
static_assert(sizeof(obs::ExecutionReport) > 0, "obs surfaced");

}  // namespace vaolib::facade_check
