// threshold_alert: the paper's query Q1 -- "find all bonds priced above
// $100" -- as a continuous selection with change alerts.
//
// On every rate tick the selection VAO re-evaluates the predicate for each
// bond and the monitor prints which bonds entered or left the above-
// threshold set, plus the work spent. Demonstrates that selection cost
// tracks proximity to the constant, not selectivity (Section 6.1).
//
// Build & run:  ./build/examples/threshold_alert

#include <algorithm>
#include <cstdio>
#include <vector>

#include "engine/executor.h"
#include "finance/bond_model.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;

int main() {
  workload::PortfolioSpec spec;
  spec.count = 100;
  const auto bonds = workload::GeneratePortfolio(/*seed=*/711, spec);
  const finance::BondPricingFunction model(bonds, finance::BondModelConfig{});

  engine::Relation bd(
      engine::Schema({{"bond_index", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    if (const auto status = bd.Append({static_cast<double>(i)});
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  const engine::Query q1 =
      engine::Query::Builder(&model)
          .Args({engine::ArgRef::StreamField("rate"),
                 engine::ArgRef::RelationField("bond_index")})
          .Select(operators::Comparator::kGreaterThan, 100.0)
          .Build();

  auto executor = engine::CqExecutor::Create(
      &bd, engine::Schema({{"rate", engine::ColumnType::kDouble}}), q1,
      engine::ExecutionMode::kVao);
  if (!executor.ok()) {
    std::fprintf(stderr, "%s\n", executor.status().ToString().c_str());
    return 1;
  }

  // A deliberately volatile rate path so the passing set actually changes.
  const auto ticks = finance::SynthesizeRateSeries(
      /*seed=*/17, /*num_ticks=*/10, 0.0575, 0.0575,
      /*tick_volatility=*/0.004, /*mean_reversion=*/0.02);

  std::printf("== threshold alert (Q1: bonds priced above $%.2f) ==\n\n",
              q1.constant);

  std::vector<std::size_t> previous;
  for (const auto& tick : ticks) {
    const auto result = (*executor)->ProcessTick({tick.rate});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("t=%5.1fmin rate=%.4f: %3zu/%zu bonds above, work %llu "
                "units (%llu iterations)\n",
                tick.time_seconds / 60.0, tick.rate,
                result->passing_rows.size(), bonds.size(),
                static_cast<unsigned long long>(result->work_units),
                static_cast<unsigned long long>(result->stats.iterations));
    for (const std::size_t row : result->passing_rows) {
      if (!std::binary_search(previous.begin(), previous.end(), row)) {
        std::printf("    ALERT + %s crossed above\n",
                    bonds[row].name.c_str());
      }
    }
    for (const std::size_t row : previous) {
      if (!std::binary_search(result->passing_rows.begin(),
                              result->passing_rows.end(), row)) {
        std::printf("    ALERT - %s dropped below\n",
                    bonds[row].name.c_str());
      }
    }
    previous = result->passing_rows;
  }

  std::printf(
      "\neach tick re-runs the models only as accurately as the predicate "
      "needs;\nbonds far from $%.2f cost almost nothing.\n",
      q1.constant);
  return 0;
}
