// leaderboard: a continuous TOP-K query -- "show the five best-performing
// bonds" -- demonstrating the TOP-K VAO extension through the query engine,
// plus a BETWEEN (range) query on the same portfolio: "bonds trading near
// par", i.e. priced in [99, 101].
//
// Build & run:  ./build/examples/leaderboard

#include <cstdio>

#include "engine/executor.h"
#include "finance/bond_model.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;

int main() {
  workload::PortfolioSpec spec;
  spec.count = 120;
  const auto bonds = workload::GeneratePortfolio(/*seed=*/404, spec);
  const finance::BondPricingFunction model(bonds, finance::BondModelConfig{});

  engine::Relation bd(
      engine::Schema({{"bond_index", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    if (const auto status = bd.Append({static_cast<double>(i)});
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  const engine::Schema stream_schema(
      {{"rate", engine::ColumnType::kDouble}});

  const std::vector<engine::ArgRef> args = {
      engine::ArgRef::StreamField("rate"),
      engine::ArgRef::RelationField("bond_index")};

  // Query A: TOP-5 bonds by model price, each within $0.01.
  const engine::Query top5 = engine::Query::Builder(&model)
                                 .Args(args)
                                 .TopK(5)
                                 .Epsilon(0.01)
                                 .Build();

  // Query B: bonds priced near par, in [99, 101].
  const engine::Query near_par = engine::Query::Builder(&model)
                                     .Args(args)
                                     .SelectRange(99.0, 101.0)
                                     .Build();

  auto top5_exec = engine::CqExecutor::Create(&bd, stream_schema, top5,
                                              engine::ExecutionMode::kVao);
  auto par_exec = engine::CqExecutor::Create(&bd, stream_schema, near_par,
                                             engine::ExecutionMode::kVao);
  if (!top5_exec.ok() || !par_exec.ok()) {
    std::fprintf(stderr, "executor creation failed\n");
    return 1;
  }

  const auto ticks = finance::SynthesizeRateSeries(/*seed=*/12,
                                                   /*num_ticks=*/4);
  for (const auto& tick : ticks) {
    const auto top = (*top5_exec)->ProcessTick({tick.rate});
    const auto par = (*par_exec)->ProcessTick({tick.rate});
    if (!top.ok() || !par.ok()) {
      std::fprintf(stderr, "tick processing failed\n");
      return 1;
    }
    std::printf("t=%5.1fmin rate=%.4f  (top-5 work %llu units; range work "
                "%llu units)\n",
                tick.time_seconds / 60.0, tick.rate,
                static_cast<unsigned long long>(top->work_units),
                static_cast<unsigned long long>(par->work_units));
    for (std::size_t i = 0; i < top->top_rows.size(); ++i) {
      const auto row = top->top_rows[i];
      std::printf("   #%zu %-16s [$%8.4f, $%8.4f]\n", i + 1,
                  bonds[row].name.c_str(), top->top_bounds[i].lo,
                  top->top_bounds[i].hi);
    }
    std::printf("   near par ($99-$101): %zu bonds:", par->passing_rows.size());
    for (const auto row : par->passing_rows) {
      std::printf(" %lld", static_cast<long long>(bonds[row].id));
    }
    std::printf("\n\n");
  }

  std::printf("TOP-K refines only the selection boundary; the range query "
              "refines only bonds near $99/$101.\n");
  return 0;
}
