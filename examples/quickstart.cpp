// quickstart: the VAO interface in five minutes.
//
// Defines an expensive UDF (a numerical integral), shows the result-object
// interface -- bounds, Iterate(), minWidth, estCPU/estL/estH -- and then
// evaluates a selection predicate two ways: adaptively with a selection VAO
// and exhaustively like a traditional black-box UDF, printing the work each
// needed.
//
// Build & run:  ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "operators/selection.h"
#include "vao/black_box.h"
#include "vao/integral_result_object.h"

using namespace vaolib;

int main() {
  std::printf("== vaolib quickstart ==\n\n");

  // An "expensive" UDF: f(s) = \int_0^3 exp(-s x) sin(x^2 + s) dx, costed at
  // 1000 work units per integrand evaluation to model a pricey inner model.
  vao::IntegralResultOptions options;
  options.min_width = 1e-6;
  options.integral.work_per_eval = 1000;
  const vao::IntegralFunction function(
      "wavy_integral", /*arity=*/1,
      [](const std::vector<double>& args) -> Result<vao::IntegralProblem> {
        const double s = args[0];
        vao::IntegralProblem problem;
        problem.integrand = [s](double x) {
          return std::exp(-s * x) * std::sin(x * x + s);
        };
        problem.a = 0.0;
        problem.b = 3.0;
        return problem;
      },
      options);

  // 1. Invoke the function: instead of a number we get a result object with
  //    error bounds that tighten each time Iterate() is called.
  WorkMeter meter;
  auto made = function.Invoke({0.4}, &meter);
  if (!made.ok()) {
    std::fprintf(stderr, "invoke failed: %s\n",
                 made.status().ToString().c_str());
    return 1;
  }
  vao::ResultObject* object = made->get();

  std::printf("result-object refinement for f(0.4):\n");
  std::printf("  %-5s %-26s %-10s %-12s\n", "iter", "bounds [L, H]", "width",
              "estCPU");
  for (int i = 0; i < 6; ++i) {
    const Bounds b = object->bounds();
    std::printf("  %-5d [%.7f, %.7f]   %.2e   %llu\n", i, b.lo, b.hi,
                b.Width(),
                static_cast<unsigned long long>(object->est_cost()));
    if (const auto status = object->Iterate(); !status.ok()) {
      std::fprintf(stderr, "iterate failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("  ... Iterate() keeps tightening until width < minWidth "
              "(%.0e)\n\n",
              object->min_width());

  // 2. A selection VAO evaluates  f(s) > 0.25  by iterating each result
  //    object only until its bounds clear the constant.
  const operators::SelectionVao vao(operators::Comparator::kGreaterThan,
                                    0.25);
  // The traditional baseline always runs the function to full accuracy.
  const vao::CalibratedBlackBox black_box(&function);
  const operators::TraditionalSelection traditional(
      operators::Comparator::kGreaterThan, 0.25);

  std::printf("selection f(s) > 0.25 over s in {0.1, 0.2, ..., 1.0}:\n");
  std::printf("  %-6s %-7s %-12s %-12s %-8s\n", "s", "passes", "vao_units",
              "trad_units", "saving");
  for (int i = 1; i <= 10; ++i) {
    const double s = 0.1 * i;
    WorkMeter vao_meter, trad_meter;
    const auto outcome = vao.Evaluate(function, {s}, &vao_meter);
    const auto trad = traditional.Evaluate(black_box, {s}, &trad_meter);
    if (!outcome.ok() || !trad.ok()) {
      std::fprintf(stderr, "evaluation failed\n");
      return 1;
    }
    std::printf("  %-6.1f %-7s %-12llu %-12llu %.0fx\n", s,
                outcome->passes ? "yes" : "no",
                static_cast<unsigned long long>(vao_meter.Total()),
                static_cast<unsigned long long>(trad_meter.Total()),
                static_cast<double>(trad_meter.Total()) /
                    static_cast<double>(vao_meter.Total()));
  }
  std::printf(
      "\nthe VAO decides most predicates from coarse bounds; only values "
      "near the\nconstant need fine accuracy -- that asymmetry is the whole "
      "paper.\n");
  return 0;
}
