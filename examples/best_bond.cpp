// best_bond: the paper's query Q3 -- "find the best performing (highest
// valued) bond" -- as a continuous MAX query over a rate stream.
//
// Shows the MAX VAO's behaviour directly: per tick it reports the winning
// bond, its price bounds (within the $0.01 precision constraint), how many
// bonds the operator actually had to iterate, and the work against the
// traditional baseline.
//
// Build & run:  ./build/examples/best_bond

#include <cstdio>

#include "engine/executor.h"
#include "finance/bond_model.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;

int main() {
  workload::PortfolioSpec spec;
  spec.count = 80;
  const auto bonds = workload::GeneratePortfolio(/*seed=*/2024, spec);
  const finance::BondPricingFunction model(bonds, finance::BondModelConfig{});

  engine::Relation bd(
      engine::Schema({{"bond_index", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    if (const auto status = bd.Append({static_cast<double>(i)});
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  const engine::Query q3 =
      engine::Query::Builder(&model)
          .Args({engine::ArgRef::StreamField("rate"),
                 engine::ArgRef::RelationField("bond_index")})
          .Max()
          .Epsilon(0.01)
          .Build();

  const engine::Schema stream_schema(
      {{"rate", engine::ColumnType::kDouble}});
  auto vao_exec = engine::CqExecutor::Create(&bd, stream_schema, q3,
                                             engine::ExecutionMode::kVao);
  auto trad_exec = engine::CqExecutor::Create(
      &bd, stream_schema, q3, engine::ExecutionMode::kTraditional);
  if (!vao_exec.ok() || !trad_exec.ok()) {
    std::fprintf(stderr, "executor creation failed\n");
    return 1;
  }

  const auto ticks = finance::SynthesizeRateSeries(/*seed=*/9, /*num_ticks=*/8);

  std::printf("== best bond monitor (Q3: MAX over %zu bond prices) ==\n\n",
              bonds.size());
  std::printf("%-9s %-8s %-16s %-24s %-9s %-13s %-13s\n", "t(min)", "rate",
              "best bond", "price bounds", "touched", "vao_units",
              "trad_units");

  for (const auto& tick : ticks) {
    const auto vao_result = (*vao_exec)->ProcessTick({tick.rate});
    const auto trad_result = (*trad_exec)->ProcessTick({tick.rate});
    if (!vao_result.ok() || !trad_result.ok()) {
      std::fprintf(stderr, "tick processing failed\n");
      return 1;
    }
    const std::size_t winner = vao_result->winner_row.value_or(0);
    const std::size_t trad_winner = trad_result->winner_row.value_or(0);
    if (winner != trad_winner && !vao_result->tie) {
      std::fprintf(stderr, "MISMATCH: vao %zu vs traditional %zu\n", winner,
                   trad_winner);
      return 1;
    }
    const Bounds price = vao_result->aggregate_bounds;
    std::printf("%-9.1f %-8.4f %-16s [$%8.4f, $%8.4f]   %-9llu %-13llu %-13llu\n",
                tick.time_seconds / 60.0, tick.rate,
                bonds[winner].name.c_str(), price.lo, price.hi,
                static_cast<unsigned long long>(
                    vao_result->stats.objects_touched),
                static_cast<unsigned long long>(vao_result->work_units),
                static_cast<unsigned long long>(trad_result->work_units));
  }

  std::printf(
      "\nonly the bonds whose bounds overlap the leader are ever refined;\n"
      "the rest are eliminated from coarse first-iteration bounds.\n");
  return 0;
}
