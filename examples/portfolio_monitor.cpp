// portfolio_monitor: the paper's query Q2 -- "find the value of my bond
// portfolio, a weighted sum of bond prices" -- run as a continuous query.
//
// A synthetic interest-rate stream (1-4 minute Treasury-style ticks) drives
// a SUM VAO over a 60-bond MBS portfolio with hot-cold position sizes. For
// each tick the monitor prints the portfolio value bounds, the work spent,
// and the equivalent traditional black-box work.
//
// Build & run:  ./build/examples/portfolio_monitor

#include <cstdio>

#include "engine/executor.h"
#include "finance/bond_model.h"
#include "workload/hot_cold.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;

int main() {
  // --- Data: bonds, position weights, and a rate stream. --------------------
  workload::PortfolioSpec spec;
  spec.count = 60;
  const auto bonds = workload::GeneratePortfolio(/*seed=*/1994, spec);

  Rng rng(7);
  workload::HotColdSpec weight_spec;
  weight_spec.count = bonds.size();
  weight_spec.hot_fraction = 0.10;
  weight_spec.hot_weight_share = 0.9;  // a few dominant positions
  weight_spec.total_weight = static_cast<double>(bonds.size());
  const auto weights = workload::HotColdWeights(weight_spec, &rng);
  if (!weights.ok()) {
    std::fprintf(stderr, "%s\n", weights.status().ToString().c_str());
    return 1;
  }

  const auto ticks = finance::SynthesizeRateSeries(/*seed=*/3, /*num_ticks=*/8);

  // --- Engine wiring: BD relation, IR stream schema, Q2. ---------------------
  const finance::BondPricingFunction model(bonds, finance::BondModelConfig{});

  engine::Relation bd(engine::Schema({{"bond_index", engine::ColumnType::kDouble},
                                      {"position", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    if (const auto status =
            bd.Append({static_cast<double>(i), (*weights)[i]});
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  const engine::Query q2 =
      engine::Query::Builder(&model)
          .Args({engine::ArgRef::StreamField("rate"),
                 engine::ArgRef::RelationField("bond_index")})
          .Sum()
          .WeightColumn("position")
          .Epsilon(0.01 * static_cast<double>(bonds.size()))  // $0.01 per bond
          .Build();

  auto vao_exec = engine::CqExecutor::Create(
      &bd, engine::Schema({{"rate", engine::ColumnType::kDouble}}), q2,
      engine::ExecutionMode::kVao);
  auto trad_exec = engine::CqExecutor::Create(
      &bd, engine::Schema({{"rate", engine::ColumnType::kDouble}}), q2,
      engine::ExecutionMode::kTraditional);
  if (!vao_exec.ok() || !trad_exec.ok()) {
    std::fprintf(stderr, "executor creation failed\n");
    return 1;
  }

  // --- Continuous monitoring loop. -------------------------------------------
  std::printf("== portfolio monitor (Q2: weighted SUM of %zu bond prices) ==\n",
              bonds.size());
  std::printf("precision constraint: $%.2f\n\n", q2.epsilon);
  std::printf("%-9s %-8s %-26s %-13s %-13s %-7s\n", "t(min)", "rate",
              "portfolio value bounds", "vao_units", "trad_units", "saving");

  for (const auto& tick : ticks) {
    const auto vao_result = (*vao_exec)->ProcessTick({tick.rate});
    const auto trad_result = (*trad_exec)->ProcessTick({tick.rate});
    if (!vao_result.ok() || !trad_result.ok()) {
      std::fprintf(stderr, "tick processing failed\n");
      return 1;
    }
    const Bounds value = vao_result->aggregate_bounds;
    std::printf("%-9.1f %-8.4f [$%9.2f, $%9.2f]    %-13llu %-13llu %.1fx\n",
                tick.time_seconds / 60.0, tick.rate, value.lo, value.hi,
                static_cast<unsigned long long>(vao_result->work_units),
                static_cast<unsigned long long>(trad_result->work_units),
                static_cast<double>(trad_result->work_units) /
                    static_cast<double>(vao_result->work_units));
  }

  std::printf(
      "\nheavy positions are priced tightly, small ones only coarsely --\n"
      "the weighted greedy strategy of Section 5.2 allocates the work.\n");
  return 0;
}
