// standing_queries: many concurrent standing queries over the same bond
// models, executed with shared result objects (engine::MultiQueryExecutor).
// The workload is the paper's motivating trading desk: several price
// alerts, the best bond, a top-3 leaderboard, and the portfolio value, all
// re-evaluated on every interest-rate tick -- but each bond's model runs at
// most once per tick, iterated only as far as the HARDEST query needs.
//
// Build & run:  ./build/examples/standing_queries

#include <cstdio>

#include "engine/executor.h"
#include "engine/multi_query.h"
#include "finance/bond_model.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;

int main() {
  workload::PortfolioSpec spec;
  spec.count = 80;
  const auto bonds = workload::GeneratePortfolio(/*seed=*/55, spec);
  const finance::BondPricingFunction model(bonds, finance::BondModelConfig{});

  engine::Relation bd(engine::Schema(
      {{"bond_index", engine::ColumnType::kDouble},
       {"position", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    if (!bd.Append({static_cast<double>(i), i % 9 == 0 ? 8.0 : 1.0}).ok()) {
      return 1;
    }
  }
  const engine::Schema stream_schema(
      {{"rate", engine::ColumnType::kDouble}});

  const std::vector<engine::ArgRef> args = {
      engine::ArgRef::StreamField("rate"),
      engine::ArgRef::RelationField("bond_index")};
  auto base = [&] { return engine::Query::Builder(&model).Args(args); };

  using operators::Comparator;
  const engine::Query above_100 =
      base().Select(Comparator::kGreaterThan, 100.0).Build();
  const engine::Query above_110 =
      base().Select(Comparator::kGreaterThan, 110.0).Build();
  const engine::Query below_90 =
      base().Select(Comparator::kLessThan, 90.0).Build();
  const engine::Query best = base().Max().Epsilon(0.01).Build();
  const engine::Query top3 = base().TopK(3).Epsilon(0.01).Build();
  const engine::Query value =
      base()
          .Sum()
          .WeightColumn("position")
          .Epsilon(0.25 * static_cast<double>(bonds.size()))  // $0.25/bond
          .Build();

  const std::vector<engine::Query> queries{above_100, above_110, below_90,
                                           best, top3, value};
  auto shared = engine::MultiQueryExecutor::Create(&bd, stream_schema,
                                                   queries);
  if (!shared.ok()) {
    std::fprintf(stderr, "%s\n", shared.status().ToString().c_str());
    return 1;
  }

  // Reference cost: the same six queries through separate executors.
  std::vector<std::unique_ptr<engine::CqExecutor>> separate;
  for (const auto& query : queries) {
    auto solo = engine::CqExecutor::Create(&bd, stream_schema, query,
                                           engine::ExecutionMode::kVao);
    if (!solo.ok()) return 1;
    separate.push_back(std::move(solo).value());
  }

  const auto ticks = finance::SynthesizeRateSeries(/*seed=*/21,
                                                   /*num_ticks=*/6);
  std::printf("== standing queries: 6 queries, %zu bonds, shared "
              "execution ==\n\n", bonds.size());
  for (const auto& tick : ticks) {
    const auto results = (*shared)->ProcessTick({tick.rate});
    if (!results.ok()) {
      std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
      return 1;
    }
    std::uint64_t separate_work = 0;
    for (auto& solo : separate) {
      const auto r = solo->ProcessTick({tick.rate});
      if (!r.ok()) return 1;
      separate_work += r->work_units;
    }
    std::uint64_t shared_work = 0;
    for (const auto& r : *results) shared_work += r.work_units;

    const auto& best_result = (*results)[3];
    std::printf(
        "t=%5.1fmin rate=%.4f | >100: %2zu  >110: %2zu  <90: %2zu | best %s "
        "[$%.2f] | value [$%.0f, $%.0f]\n",
        tick.time_seconds / 60.0, tick.rate,
        (*results)[0].passing_rows.size(),
        (*results)[1].passing_rows.size(),
        (*results)[2].passing_rows.size(),
        bonds[best_result.winner_row.value_or(0)].name.c_str(),
        best_result.aggregate_bounds.Mid(),
        (*results)[5].aggregate_bounds.lo,
        (*results)[5].aggregate_bounds.hi);
    std::printf("           shared work %llu units vs separate %llu units "
                "(%.1fx saved)\n",
                static_cast<unsigned long long>(shared_work),
                static_cast<unsigned long long>(separate_work),
                static_cast<double>(separate_work) /
                    static_cast<double>(shared_work));
  }
  std::printf("\neach bond's model is invoked once per tick and iterated "
              "only as far as the\nhardest standing query requires.\n");
  return 0;
}
