// approx_aggregate: the approximate answer tier -- "what is the portfolio
// worth, within 1%, at 95% confidence?" -- as a sampled SUM beside its
// exact twin.
//
// The same portfolio-value query runs twice per rate tick: once exact
// (every bond's result object converges until the sum's bounds are within
// epsilon) and once with .Approximate(0.95, 0.01) (a seeded row sample,
// CLT interval plus residual bound error, rows materialized on demand).
// Per tick it prints both answers with the approximate one's provenance --
// sample size, confidence, and how much of the interval width is sampling
// uncertainty vs unconverged VAO bounds -- and the work ratio.
//
// Build & run:  ./build/examples/approx_aggregate

#include <cstdio>

#include "engine/executor.h"
#include "finance/bond_model.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;

int main() {
  workload::PortfolioSpec spec;
  spec.count = 4000;
  const auto bonds = workload::GeneratePortfolio(/*seed=*/2026, spec);
  const finance::BondPricingFunction model(bonds, finance::BondModelConfig{});

  engine::Relation bd(
      engine::Schema({{"bond_index", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    if (const auto status = bd.Append({static_cast<double>(i)});
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  const auto base = engine::Query::Builder(&model).Args(
      {engine::ArgRef::StreamField("rate"),
       engine::ArgRef::RelationField("bond_index")});

  const engine::Query exact =
      engine::Query::Builder(base).Sum().Epsilon(50.0).Build();

  engine::ApproxSpec approx_spec;
  approx_spec.confidence = 0.95;
  approx_spec.target_rel_error = 0.01;
  approx_spec.seed = 7;  // seeded: reruns reproduce the sample exactly
  const engine::Query approx = engine::Query::Builder(base)
                                   .Sum()
                                   .Epsilon(50.0)
                                   .Approximate(approx_spec)
                                   .Build();

  const engine::Schema stream_schema(
      {{"rate", engine::ColumnType::kDouble}});
  auto exact_exec = engine::CqExecutor::Create(&bd, stream_schema, exact,
                                               engine::ExecutionMode::kVao);
  auto approx_exec = engine::CqExecutor::Create(&bd, stream_schema, approx,
                                                engine::ExecutionMode::kVao);
  if (!exact_exec.ok() || !approx_exec.ok()) {
    std::fprintf(stderr, "executor creation failed\n");
    return 1;
  }

  std::printf("portfolio value, %zu bonds, exact vs APPROX WITH CONFIDENCE "
              "0.95 ERROR 0.01\n\n",
              bonds.size());
  for (const double rate : {0.045, 0.0525, 0.06}) {
    const auto exact_result = (*exact_exec)->ProcessTick({rate});
    const auto approx_result = (*approx_exec)->ProcessTick({rate});
    if (!exact_result.ok() || !approx_result.ok()) {
      std::fprintf(stderr, "tick failed\n");
      return 1;
    }
    const vao::Answer& sampled = approx_result->aggregate_bounds;
    std::printf("rate %.4f\n", rate);
    std::printf("  exact   [%12.2f, %12.2f]  work %llu\n",
                exact_result->aggregate_bounds.lo,
                exact_result->aggregate_bounds.hi,
                static_cast<unsigned long long>(exact_result->work_units));
    std::printf("  sampled [%12.2f, %12.2f]  work %llu  (%.1f%% of exact)\n",
                sampled.lo, sampled.hi,
                static_cast<unsigned long long>(approx_result->work_units),
                100.0 * static_cast<double>(approx_result->work_units) /
                    static_cast<double>(exact_result->work_units));
    std::printf("          mode=%s conf=%.2f samples=%zu/%zu "
                "width: sampling %.2f + deterministic %.2f\n",
                vao::AnswerModeName(sampled.mode), sampled.confidence,
                sampled.sample_size, sampled.population_size,
                sampled.sampling_width, sampled.deterministic_width);
    const bool covered =
        sampled.lo <= exact_result->aggregate_bounds.hi &&
        exact_result->aggregate_bounds.lo <= sampled.hi;
    std::printf("          intervals %s\n\n",
                covered ? "overlap (consistent)" : "DISJOINT (bug!)");
  }
  return 0;
}
