// Copyright 2026 The vaolib Authors.
// Shared driver for the Figure 8/9 selection-selectivity sweeps.

#ifndef VAOLIB_BENCH_SELECTION_SWEEP_H_
#define VAOLIB_BENCH_SELECTION_SWEEP_H_

#include "bench_util.h"
#include "operators/operator_base.h"

namespace vaolib::bench {

/// \brief Runs the selection sweep of Figure 8 (cmp = >) or Figure 9
/// (cmp = <) over selectivities {0.1 .. 0.9}, printing the table, and
/// returns 0 on success. When \p json_path is non-null the table is also
/// written there as JSON (the BENCH_*.json artifact convention).
int RunSelectionSweep(operators::Comparator cmp, const char* title,
                      const char* json_path = nullptr);

}  // namespace vaolib::bench

#endif  // VAOLIB_BENCH_SELECTION_SWEEP_H_
