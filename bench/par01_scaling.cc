// Parallel scaling experiment: bulk result-object creation plus convergence
// of the full bond portfolio at 1/2/4/8 threads on the shared pool. The
// paper sizes production deployments in processors and calls the models
// "easily parallelizable" (Section 6.1); this bench demonstrates that the
// parallel runtime keeps the paper's deterministic cost accounting: work
// units and converged bounds must be bit-identical at every thread count.
// Speedup is reported, not asserted -- it depends on the host's cores -- but
// any work-unit or bounds divergence is a hard failure.
//
// Output: the standard text table plus BENCH_parallel.json (RenderJson).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "vao/parallel.h"
#include "vao/result_object.h"

using namespace vaolib;
using namespace vaolib::bench;

namespace {

struct Arm {
  int threads = 1;
  std::uint64_t work_units = 0;
  std::vector<Bounds> bounds;
  double wall_seconds = 0.0;
};

// One full portfolio pass: create every bond's result object, then converge
// all of them to minWidth, both on `threads` workers.
bool RunArm(const BenchContext& context, int threads, Arm* arm) {
  arm->threads = threads;
  WorkMeter meter;
  const auto start = std::chrono::steady_clock::now();
  auto invoked =
      vao::InvokeAll(*context.function, context.rows, threads, &meter);
  if (!invoked.ok()) {
    std::fprintf(stderr, "InvokeAll(%d) failed: %s\n", threads,
                 invoked.status().message().c_str());
    return false;
  }
  std::vector<vao::ResultObject*> objects;
  objects.reserve(invoked->size());
  for (const auto& object : *invoked) objects.push_back(object.get());
  const Status status = vao::ConvergeAllToMinWidth(objects, threads);
  if (!status.ok()) {
    std::fprintf(stderr, "ConvergeAllToMinWidth(%d) failed: %s\n", threads,
                 status.message().c_str());
    return false;
  }
  const auto end = std::chrono::steady_clock::now();
  arm->wall_seconds = std::chrono::duration<double>(end - start).count();
  arm->work_units = meter.Total();
  arm->bounds.reserve(objects.size());
  for (const auto* object : objects) arm->bounds.push_back(object->bounds());
  return true;
}

}  // namespace

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Parallel scaling: bulk invoke + converge-to-minWidth of the "
                "portfolio at 1/2/4/8 threads");

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", cores);
  if (cores < 4) {
    std::printf(
        "NOTE: fewer than 4 hardware threads; speedups cannot materialize "
        "here and are reported for completeness only.\n");
  }
  std::printf("\n");

  const int kThreadCounts[] = {1, 2, 4, 8};
  std::vector<Arm> arms;
  for (const int threads : kThreadCounts) {
    Arm arm;
    if (!RunArm(context, threads, &arm)) return 1;
    arms.push_back(std::move(arm));
  }

  // Hard determinism checks against the serial arm: identical work units and
  // bit-identical converged bounds, per the ParallelFor/InvokeAll contracts.
  const Arm& serial = arms.front();
  for (const Arm& arm : arms) {
    if (arm.work_units != serial.work_units) {
      std::fprintf(stderr,
                   "FAIL: work units diverge: %llu at %d threads vs %llu "
                   "serial\n",
                   static_cast<unsigned long long>(arm.work_units),
                   arm.threads,
                   static_cast<unsigned long long>(serial.work_units));
      return 1;
    }
    for (std::size_t i = 0; i < serial.bounds.size(); ++i) {
      if (arm.bounds[i].lo != serial.bounds[i].lo ||
          arm.bounds[i].hi != serial.bounds[i].hi) {
        std::fprintf(stderr,
                     "FAIL: bounds diverge at bond %zu, %d threads\n", i,
                     arm.threads);
        return 1;
      }
    }
  }
  std::printf("determinism: work units and bounds identical across all "
              "thread counts (%llu units)\n\n",
              static_cast<unsigned long long>(serial.work_units));

  TableWriter table("Parallel scaling (full portfolio, invoke + converge)",
                    {"threads", "work_units", "wall_seconds", "speedup",
                     "est_serial_seconds"});
  for (const Arm& arm : arms) {
    table.AddRow({TableWriter::Cell(arm.threads),
                  TableWriter::Cell(arm.work_units),
                  TableWriter::Cell(arm.wall_seconds, 4),
                  TableWriter::Cell(serial.wall_seconds /
                                        std::max(arm.wall_seconds, 1e-12),
                                    2),
                  TableWriter::Cell(context.EstSeconds(arm.work_units), 4)});
  }
  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);

  std::ofstream json("BENCH_parallel.json");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_parallel.json for writing\n");
    return 1;
  }
  table.RenderJson(json);
  std::printf("\nwrote BENCH_parallel.json\n");
  return 0;
}
