// Ablation A5: function-result caching combined with VAOs. The paper notes
// (Sections 2, 3.1) that function caches are orthogonal to VAOs and usable
// with them; this ablation quantifies the combination on a continuous
// selection query whose interest-rate stream is quantized to the nearest
// basis point, so rate values recur across ticks. Arms: plain selection VAO
// vs CachingFunction-wrapped VAO (bounds written back per tick, converged
// repeats served for free).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"
#include "finance/bond.h"
#include "operators/selection.h"
#include "vao/function_cache.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Ablation A5: selection VAO with and without function-"
                "result caching (quantized rate stream)");

  // A 40-tick stream, rates rounded to the basis point: revisits guaranteed.
  auto ticks = finance::SynthesizeRateSeries(BenchSeed() + 500, 40, 0.0575,
                                             0.0575, 0.0003, 0.2);
  for (auto& tick : ticks) {
    tick.rate = std::round(tick.rate * 10000.0) / 10000.0;
  }

  const double constant = 100.0;
  const operators::SelectionVao vao(operators::Comparator::kGreaterThan,
                                    constant);
  const vao::CachingFunction cached_function(context.function.get());

  TableWriter table("Function-cache ablation (cumulative over ticks)",
                    {"tick", "rate", "plain_units", "cached_units",
                     "saving", "cache_hits", "cache_size"});

  WorkMeter plain_meter, cached_meter;
  int tick_index = 0;
  for (const auto& tick : ticks) {
    for (std::size_t i = 0; i < context.bonds.size(); ++i) {
      const std::vector<double> args =
          context.function->ArgsFor(tick.rate, i);
      const auto plain = vao.Evaluate(*context.function, args, &plain_meter);
      const auto with_cache =
          vao.Evaluate(cached_function, args, &cached_meter);
      if (!plain.ok() || !with_cache.ok()) {
        std::fprintf(stderr, "selection failed\n");
        return 1;
      }
      if (!plain->resolved_as_equal && !with_cache->resolved_as_equal &&
          plain->passes != with_cache->passes) {
        std::fprintf(stderr, "MISMATCH at bond %zu tick %d\n", i,
                     tick_index);
        return 1;
      }
    }
    ++tick_index;
    if (tick_index % 5 == 0 || tick_index == 1) {
      table.AddRow(
          {TableWriter::Cell(tick_index), TableWriter::Cell(tick.rate, 4),
           TableWriter::Cell(plain_meter.Total()),
           TableWriter::Cell(cached_meter.Total()),
           TableWriter::Cell(static_cast<double>(plain_meter.Total()) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     cached_meter.Total(), 1)),
                             2),
           TableWriter::Cell(cached_function.cache().hits()),
           TableWriter::Cell(
               static_cast<std::uint64_t>(cached_function.cache().size()))});
    }
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
