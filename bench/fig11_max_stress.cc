// Figure 11: MAX VAO vs traditional operator on synthetic data clustering
// results immediately below a common maximum: values drawn as
// mean - |N(0, stddev)| (the lower half of a Gaussian), stddev swept.
// Paper shape: at stddev 0 all bonds tie at the maximum and the VAO must
// run everything to $.01 (worse than traditional); by stddev ~$0.10 the VAO
// clearly wins and keeps improving as the cluster spreads out.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "operators/min_max.h"
#include "operators/traditional.h"
#include "workload/shift_scheme.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Figure 11: MAX VAO vs traditional, half-Gaussian results "
                "clustered below the maximum");

  const double peak = 110.0;
  const std::uint64_t trad_units = context.TradTotalUnits();

  TableWriter table("Figure 11 sweep",
                    {"stddev", "vao_units", "trad_units", "vao/trad",
                     "vao_est_s", "trad_est_s", "vao_wall_s", "iters",
                     "tie"});

  Rng rng(BenchSeed() + 11);
  for (const double stddev : {0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0,
                              5.0}) {
    workload::TargetDistribution target;
    target.shape = workload::TargetShape::kHalfGaussianBelow;
    target.mean = peak;
    target.stddev = stddev;
    const auto deltas = workload::ComputeShiftDeltas(
        context.converged_values, target, &rng);
    if (!deltas.ok()) {
      std::fprintf(stderr, "%s\n", deltas.status().ToString().c_str());
      return 1;
    }

    WorkMeter meter;
    Stopwatch wall;
    std::vector<vao::ResultObjectPtr> owned;
    std::vector<vao::ResultObject*> objects;
    for (std::size_t i = 0; i < context.rows.size(); ++i) {
      auto object = workload::InvokeShifted(*context.function,
                                            context.rows[i], (*deltas)[i],
                                            &meter);
      if (!object.ok()) {
        std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
        return 1;
      }
      objects.push_back(object->get());
      owned.push_back(std::move(object).value());
    }

    operators::MinMaxOptions options;
    options.epsilon = 0.01;
    options.meter = &meter;
    const operators::MinMaxVao vao(options);
    const auto outcome = vao.Evaluate(objects);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }

    const std::uint64_t vao_units = meter.Total();
    table.AddRow({TableWriter::Cell(stddev, 2),
                  TableWriter::Cell(vao_units),
                  TableWriter::Cell(trad_units),
                  TableWriter::Cell(static_cast<double>(vao_units) /
                                        static_cast<double>(trad_units),
                                    2),
                  TableWriter::Cell(context.EstSeconds(vao_units), 4),
                  TableWriter::Cell(context.EstSeconds(trad_units), 4),
                  TableWriter::Cell(wall.ElapsedSeconds(), 4),
                  TableWriter::Cell(outcome->stats.iterations),
                  outcome->tie ? "yes" : "no"});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
