// Ablation A8: VAO savings vs. model dimensionality. The paper's headline
// experiments use a one-factor bond model; its motivating citations include
// the two-factor mortgage model of Downing, Stanton & Wallace [11], whose
// extra state dimension multiplies the cost of a full-accuracy solve. This
// ablation prices the same bonds under the one-factor model and under the
// synthetic two-factor analogue (src/finance/two_factor_model.h) and runs
// the same selection query over both. Expected: the VAO-vs-traditional
// *ratio* is of the same order (it is set by how many grid doublings the
// VAO avoids), while the absolute savings grow with the per-solve cost --
// exactly why the paper argues VAOs matter most for the heaviest models.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "finance/two_factor_model.h"
#include "operators/selection.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;
using namespace vaolib::bench;

namespace {

struct Arm {
  std::uint64_t vao_units = 0;
  std::uint64_t trad_units = 0;
  double vao_wall = 0.0;
  std::size_t passing = 0;
};

Arm RunSelection(const vao::VariableAccuracyFunction& function,
                 const std::vector<std::vector<double>>& rows,
                 double constant) {
  Arm arm;
  const operators::SelectionVao vao(operators::Comparator::kGreaterThan,
                                    constant);
  // Traditional cost via per-row calibration (the Section 6 methodology).
  vao::CalibratedBlackBox black_box(&function);
  WorkMeter trad_meter;
  for (const auto& row : rows) {
    if (!black_box.Call(row, &trad_meter).ok()) std::exit(1);
  }
  arm.trad_units = trad_meter.Total();

  WorkMeter vao_meter;
  Stopwatch wall;
  for (const auto& row : rows) {
    const auto outcome = vao.Evaluate(function, row, &vao_meter);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      std::exit(1);
    }
    if (outcome->passes) ++arm.passing;
  }
  arm.vao_wall = wall.ElapsedSeconds();
  arm.vao_units = vao_meter.Total();
  return arm;
}

}  // namespace

int main() {
  // Two-factor solves cost ~30x a one-factor solve, so this ablation uses a
  // small portfolio (override with VAOLIB_BENCH_BONDS if desired, capped).
  int n = std::min(BenchBondCount(), 12);
  workload::PortfolioSpec spec;
  spec.count = n;
  const auto bonds = workload::GeneratePortfolio(BenchSeed(), spec);
  std::printf(
      "Ablation A8: one-factor vs two-factor model under the same selection "
      "query (%d bonds)\n\n", n);

  const double rate = 0.0575;
  const double level = 0.05;  // prepayment index near its long-run mean
  const double constant = 100.0;

  const finance::BondPricingFunction one_factor(bonds,
                                                finance::BondModelConfig{});
  const finance::TwoFactorBondPricingFunction two_factor(
      bonds, finance::TwoFactorModelConfig{});

  std::vector<std::vector<double>> rows_1f, rows_2f;
  for (int i = 0; i < n; ++i) {
    rows_1f.push_back(one_factor.ArgsFor(rate, i));
    rows_2f.push_back(two_factor.ArgsFor(rate, level, i));
  }

  const Arm arm_1f = RunSelection(one_factor, rows_1f, constant);
  const Arm arm_2f = RunSelection(two_factor, rows_2f, constant);

  TableWriter table("Model-dimensionality ablation (selection > $100)",
                    {"model", "vao_units", "trad_units", "trad/vao",
                     "vao_wall_s", "passing"});
  table.AddRow({"one-factor (Stanton [28])",
                TableWriter::Cell(arm_1f.vao_units),
                TableWriter::Cell(arm_1f.trad_units),
                TableWriter::Cell(static_cast<double>(arm_1f.trad_units) /
                                      static_cast<double>(arm_1f.vao_units),
                                  1),
                TableWriter::Cell(arm_1f.vao_wall, 4),
                TableWriter::Cell(
                    static_cast<std::uint64_t>(arm_1f.passing))});
  table.AddRow({"two-factor (DSW [11] analogue)",
                TableWriter::Cell(arm_2f.vao_units),
                TableWriter::Cell(arm_2f.trad_units),
                TableWriter::Cell(static_cast<double>(arm_2f.trad_units) /
                                      static_cast<double>(arm_2f.vao_units),
                                  1),
                TableWriter::Cell(arm_2f.vao_wall, 4),
                TableWriter::Cell(
                    static_cast<std::uint64_t>(arm_2f.passing))});
  table.RenderText(std::cout);
  std::printf(
      "\nabsolute traditional cost grows %.0fx with the second factor; the "
      "VAO ratio holds,\nso absolute savings scale with model cost.\n",
      static_cast<double>(arm_2f.trad_units) /
          static_cast<double>(arm_1f.trad_units));
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
