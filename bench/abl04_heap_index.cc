// Ablation A4: chooseIter indexing for the SUM VAO. Section 5.2 observes
// that iteration choice is O(N) per step without indexing and that heap
// queues could make it sublinear, unnecessary at 500 bonds. This ablation
// scales N with cheap synthetic result objects until the scan cost matters,
// comparing the O(N) scan against the lazy-heap index on chooseIter units
// and wall time.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "common/work_meter.h"
#include "operators/sum_ave.h"
#include "vao/synthetic_result_object.h"

using namespace vaolib;

namespace {

struct ArmResult {
  std::uint64_t choose_units;
  std::uint64_t iterations;
  double wall_seconds;
};

ArmResult RunArm(std::size_t n, bool use_heap) {
  // Heterogeneous synthetic objects so the greedy choice is non-trivial.
  std::vector<std::unique_ptr<vao::SyntheticResultObject>> objects;
  std::vector<vao::ResultObject*> ptrs;
  std::vector<double> weights;
  for (std::size_t i = 0; i < n; ++i) {
    vao::SyntheticResultObject::Config config;
    config.true_value = 100.0 + static_cast<double>(i % 37);
    config.initial_half_width = 2.0 + static_cast<double>(i % 11);
    config.shrink = 0.5;
    objects.push_back(std::make_unique<vao::SyntheticResultObject>(config));
    ptrs.push_back(objects.back().get());
    weights.push_back(1.0 + static_cast<double>(i % 5));
  }

  WorkMeter meter;
  operators::SumAveOptions options;
  options.epsilon = 0.05 * static_cast<double>(n);
  options.use_heap_index = use_heap;
  options.meter = &meter;
  const operators::SumAveVao vao(options);

  Stopwatch wall;
  const auto outcome = vao.Evaluate(ptrs, weights);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    std::exit(1);
  }
  return ArmResult{meter.Count(WorkKind::kChooseIter),
                   outcome->stats.iterations, wall.ElapsedSeconds()};
}

}  // namespace

int main() {
  std::printf(
      "Ablation A4: O(N)-scan vs lazy-heap chooseIter for the SUM VAO\n"
      "(synthetic result objects; iteration counts should match, choice "
      "overhead should not)\n\n");

  TableWriter table("chooseIter indexing ablation",
                    {"N", "scan_choose_units", "heap_choose_units",
                     "choose_ratio", "scan_wall_s", "heap_wall_s",
                     "scan_iters", "heap_iters"});

  for (const std::size_t n : {500u, 2000u, 8000u}) {
    const ArmResult scan = RunArm(n, /*use_heap=*/false);
    const ArmResult heap = RunArm(n, /*use_heap=*/true);
    table.AddRow({TableWriter::Cell(static_cast<std::uint64_t>(n)),
                  TableWriter::Cell(scan.choose_units),
                  TableWriter::Cell(heap.choose_units),
                  TableWriter::Cell(static_cast<double>(scan.choose_units) /
                                        static_cast<double>(
                                            heap.choose_units),
                                    1),
                  TableWriter::Cell(scan.wall_seconds, 4),
                  TableWriter::Cell(heap.wall_seconds, 4),
                  TableWriter::Cell(scan.iterations),
                  TableWriter::Cell(heap.iterations)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
