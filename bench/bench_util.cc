#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "common/stopwatch.h"
#include "workload/portfolio_gen.h"

namespace vaolib::bench {

Result<double> PrecalibratedBlackBox::Call(const std::vector<double>& args,
                                           WorkMeter* meter) const {
  const auto it = records_.find(args);
  if (it == records_.end()) {
    return Status::NotFound("black box has no calibration for these args");
  }
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, it->second.cost);
  }
  return it->second.value;
}

int BenchBondCount() {
  if (const char* env = std::getenv("VAOLIB_BENCH_BONDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 500;
}

std::uint64_t BenchSeed() {
  if (const char* env = std::getenv("VAOLIB_BENCH_SEED")) {
    const long long seed = std::atoll(env);
    if (seed > 0) return static_cast<std::uint64_t>(seed);
  }
  return 1994;
}

std::uint64_t BenchContext::TradTotalUnits() const {
  std::uint64_t total = 0;
  for (const auto cost : trad_costs) total += cost;
  return total;
}

BenchContext MakeContext() {
  BenchContext context;
  workload::PortfolioSpec spec;
  spec.count = BenchBondCount();
  context.bonds = workload::GeneratePortfolio(BenchSeed(), spec);
  context.function = std::make_unique<finance::BondPricingFunction>(
      context.bonds, context.config);
  context.rows.reserve(context.bonds.size());
  for (std::size_t i = 0; i < context.bonds.size(); ++i) {
    context.rows.push_back(context.function->ArgsFor(context.rate, i));
  }
  return context;
}

void Calibrate(BenchContext* context) {
  Stopwatch stopwatch;
  WorkMeter meter;
  context->converged_values.clear();
  context->trad_costs.clear();
  context->black_box = std::make_unique<PrecalibratedBlackBox>(
      context->function->name(), context->function->arity());

  for (const auto& row : context->rows) {
    auto object = context->function->Invoke(row, &meter);
    if (!object.ok()) {
      std::fprintf(stderr, "calibration invoke failed: %s\n",
                   object.status().ToString().c_str());
      std::abort();
    }
    const auto steps = vao::ConvergeToMinWidth(object->get());
    if (!steps.ok()) {
      std::fprintf(stderr, "calibration converge failed: %s\n",
                   steps.status().ToString().c_str());
      std::abort();
    }
    const double value = (*object)->bounds().Mid();
    const std::uint64_t cost = (*object)->traditional_cost();
    context->converged_values.push_back(value);
    context->trad_costs.push_back(cost);
    context->black_box->Record(row, value, cost);
  }
  context->calibration_seconds = stopwatch.ElapsedSeconds();
  context->ns_per_unit = meter.Total() > 0
                             ? context->calibration_seconds * 1e9 /
                                   static_cast<double>(meter.Total())
                             : 0.0;
}

void PrintPreamble(const BenchContext& context, const std::string& title) {
  RunningStats prices;
  for (const double v : context.converged_values) prices.Add(v);
  std::printf("%s\n", title.c_str());
  std::printf(
      "portfolio: %zu bonds (seed %llu), rate %.4f | prices: mean $%.2f "
      "stddev $%.2f [%.2f, %.2f]\n",
      context.bonds.size(),
      static_cast<unsigned long long>(BenchSeed()), context.rate,
      prices.Mean(), prices.StdDev(), prices.Min(), prices.Max());
  std::printf(
      "calibration: %.2fs wall, %.1f ns/work-unit | traditional query cost: "
      "%llu units (est %.3fs)\n\n",
      context.calibration_seconds, context.ns_per_unit,
      static_cast<unsigned long long>(context.TradTotalUnits()),
      context.EstSeconds(context.TradTotalUnits()));
}

}  // namespace vaolib::bench
