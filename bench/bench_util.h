// Copyright 2026 The vaolib Authors.
// Shared infrastructure for the experiment harness: portfolio/context setup,
// offline calibration (the Section 6 black-box methodology), work-unit ->
// seconds conversion, and consistent table output.
//
// Every bench binary reports, for each arm:
//   * work units   -- deterministic mesh-entry/evaluation counts (primary),
//   * est_seconds  -- units * measured ns-per-unit on this host,
//   * wall seconds where the arm actually runs solves.
// Traditional arms charge their pre-calibrated one-shot costs instead of
// re-running solvers (exactly the paper's baseline, which knows its step
// sizes a priori), so their wall time is meaningless and only estimated
// time is shown.

#ifndef VAOLIB_BENCH_BENCH_UTIL_H_
#define VAOLIB_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/work_meter.h"
#include "finance/bond_model.h"
#include "vao/black_box.h"

namespace vaolib::bench {

/// \brief A black box replaying pre-recorded calibration results: Call()
/// charges the recorded one-shot cost and returns the converged value.
class PrecalibratedBlackBox : public vao::BlackBoxFunction {
 public:
  PrecalibratedBlackBox(std::string name, int arity)
      : name_(std::move(name)), arity_(arity) {}

  void Record(std::vector<double> args, double value, std::uint64_t cost) {
    records_[std::move(args)] = {value, cost};
  }

  const std::string& name() const override { return name_; }
  int arity() const override { return arity_; }
  Result<double> Call(const std::vector<double>& args,
                      WorkMeter* meter) const override;

 private:
  struct Entry {
    double value;
    std::uint64_t cost;
  };
  std::string name_;
  int arity_;
  std::map<std::vector<double>, Entry> records_;
};

/// \brief Everything a bond-query experiment needs.
struct BenchContext {
  std::vector<finance::Bond> bonds;
  finance::BondModelConfig config;
  std::unique_ptr<finance::BondPricingFunction> function;
  double rate = 0.0575;  ///< the Jan 3, 1994 opening-rate analogue
  std::vector<std::vector<double>> rows;  ///< one (rate, index) per bond

  /// Filled by Calibrate(): converged prices, per-bond one-shot costs, the
  /// replay black box, and the measured ns-per-work-unit for this host.
  std::vector<double> converged_values;
  std::vector<std::uint64_t> trad_costs;
  std::unique_ptr<PrecalibratedBlackBox> black_box;
  double ns_per_unit = 0.0;
  double calibration_seconds = 0.0;

  /// Sum of all per-bond traditional costs: the work a traditional operator
  /// charges per full query evaluation.
  std::uint64_t TradTotalUnits() const;

  /// Converts work units to estimated seconds on this host.
  double EstSeconds(std::uint64_t units) const {
    return static_cast<double>(units) * ns_per_unit * 1e-9;
  }
};

/// \brief Builds the standard experiment context. The bond count defaults to
/// the paper's 500 and can be overridden with env VAOLIB_BENCH_BONDS (the
/// seed likewise with VAOLIB_BENCH_SEED).
BenchContext MakeContext();

/// \brief Runs the offline calibration pass: converges every bond once,
/// recording values and costs, and measures ns-per-unit from the real solve
/// wall time. Aborts the process on solver errors (bench binaries only).
void Calibrate(BenchContext* context);

/// \brief Number of bonds from env (default 500).
int BenchBondCount();

/// \brief Portfolio seed from env (default 1994).
std::uint64_t BenchSeed();

/// \brief Prints the standard bench preamble (bond count, rate, calibration
/// stats) to stdout.
void PrintPreamble(const BenchContext& context, const std::string& title);

}  // namespace vaolib::bench

#endif  // VAOLIB_BENCH_BENCH_UTIL_H_
