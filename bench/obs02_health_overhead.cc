// obs02: runtime health-plane overhead on the standing-query tick path.
// Two arms run the identical workload (one server, two tenants, four
// standing bond queries, a deterministic tick ramp over the in-process
// transport):
//   disabled  DispatcherConfig::health off -- the library default and the
//             floor; the plane must be pay-for-what-you-use, so this arm
//             contains zero health-plane work,
//   enabled   windowed view + default SLO monitors + per-query progress
//             rings, one epoch per tick (the most aggressive setting the
//             serving binary ships).
// The enabled arm must stay within 2% of the floor: the plane's hot-path
// cost is one registry snapshot per epoch plus one ring store per
// query-tick, everything else (burn rates, quantiles, INSPECT rendering)
// runs on the introspection path. Min wall time over several repetitions,
// tick count autoscaled so the floor resolves a 2% difference; a small
// absolute slack keeps 1-core CI runners from flaking the gate.
// Writes BENCH_health.json and exits non-zero when the gate fails.
// Size knobs: VAOLIB_BENCH_BONDS (default 32), VAOLIB_BENCH_SEED (1994),
// VAOLIB_OBS02_TICKS (default 40).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table_writer.h"
#include "engine/relation.h"
#include "engine/schema.h"
#include "engine/sql_parser.h"
#include "finance/bond_model.h"
#include "server/frame.h"
#include "server/server.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;

namespace {

constexpr int kReps = 7;
constexpr double kOverheadLimit = 0.02;  // enabled arm: < 2% over the floor
constexpr double kAbsSlackSeconds = 0.010;
constexpr double kBaseRate = 0.0575;
constexpr double kRateStep = 0.0001;

const char* const kQueries[] = {
    "SELECT MAX(bond_model(rate, bond_index)) FROM bd PRECISION 0.05",
    "SELECT AVE(bond_model(rate, bond_index)) FROM bd PRECISION 0.05",
    "SELECT MIN(bond_model(rate, bond_index)) FROM bd PRECISION 0.05",
    "SELECT * FROM bd WHERE bond_model(rate, bond_index) > 100",
};
constexpr std::size_t kQueryCount = sizeof(kQueries) / sizeof(kQueries[0]);

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct Workload {
  std::vector<finance::Bond> bonds;
  std::unique_ptr<finance::BondPricingFunction> function;
  std::unique_ptr<engine::Relation> relation;
  engine::FunctionRegistry registry;
  engine::Schema stream_schema{{{"rate", engine::ColumnType::kDouble}}};
};

bool BuildWorkload(std::size_t bond_count, std::uint64_t seed,
                   Workload* workload) {
  workload::PortfolioSpec spec;
  spec.count = bond_count;
  workload->bonds = workload::GeneratePortfolio(seed, spec);
  workload->function = std::make_unique<finance::BondPricingFunction>(
      workload->bonds, finance::BondModelConfig{});
  workload->relation = std::make_unique<engine::Relation>(engine::Schema(
      {{"bond_index", engine::ColumnType::kDouble},
       {"position", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < workload->bonds.size(); ++i) {
    if (!workload->relation->Append({static_cast<double>(i), 1.0}).ok()) {
      std::fprintf(stderr, "FAIL: relation setup\n");
      return false;
    }
  }
  return workload->registry.Register(workload->function.get()).ok();
}

std::string TickPayload(std::size_t tick) {
  std::ostringstream os;
  os.precision(17);
  os << "TICK " << kBaseRate + kRateStep * static_cast<double>(tick);
  return os.str();
}

/// One measured pass: fresh server, register the book, run the ramp.
/// Registration and teardown stay outside the timed region; only the tick
/// loop (where the health plane spends) is on the clock.
bool TimedRun(const Workload& workload, bool health_enabled,
              std::size_t ticks, double* seconds) {
  server::ServerConfig config;
  config.dispatcher.health.enabled = health_enabled;
  config.dispatcher.health.ticks_per_epoch = 1;
  server::StandingQueryServer server(workload.relation.get(),
                                     workload.stream_schema,
                                     &workload.registry, config);
  const std::uint64_t a = server.OpenSession();
  const std::uint64_t b = server.OpenSession();
  server.HandleBytes(a, server::EncodeFrame("HELLO desk-a"));
  server.HandleBytes(b, server::EncodeFrame("HELLO desk-b"));
  for (std::size_t q = 0; q < kQueryCount; ++q) {
    const std::uint64_t session = q % 2 == 0 ? a : b;
    const std::string id = "q" + std::to_string(q);
    server.HandleBytes(session, server::EncodeFrame(
                                    "REGISTER " + id + " " + kQueries[q]));
    const std::string reply = server.DrainOutput(session);
    if (reply.find("OK REGISTER " + id) == std::string::npos) {
      std::fprintf(stderr, "FAIL: REGISTER %s -> %s\n", id.c_str(),
                   reply.c_str());
      return false;
    }
  }
  server.DrainOutput(a);
  server.DrainOutput(b);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < ticks; ++t) {
    server.HandleBytes(a, server::EncodeFrame(TickPayload(t)));
    const std::string replies_a = server.DrainOutput(a);
    server.DrainOutput(b);
    if (replies_a.find("ERR ") != std::string::npos) {
      std::fprintf(stderr, "FAIL: tick %zu errored\n", t);
      return false;
    }
  }
  *seconds = std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start)
                 .count();
  return true;
}

bool MinWallSeconds(const Workload& workload, bool health_enabled,
                    std::size_t ticks, double* best) {
  *best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    double seconds = 0.0;
    if (!TimedRun(workload, health_enabled, ticks, &seconds)) return false;
    *best = std::min(*best, seconds);
  }
  return true;
}

}  // namespace

int main() {
  const std::size_t bond_count = EnvSize("VAOLIB_BENCH_BONDS", 32);
  const std::uint64_t seed = EnvSize("VAOLIB_BENCH_SEED", 1994);
  std::size_t ticks = EnvSize("VAOLIB_OBS02_TICKS", 40);

  Workload workload;
  if (!BuildWorkload(bond_count, seed, &workload)) return 1;
  std::printf("obs02: health-plane tick overhead (bonds=%zu seed=%llu "
              "ticks=%zu, %zu standing queries)\n",
              bond_count, static_cast<unsigned long long>(seed), ticks,
              kQueryCount);

  // Autoscale: the floor must run >= ~50 ms or the 2% gate only measures
  // timer noise.
  double once = 0.0;
  if (!TimedRun(workload, /*health_enabled=*/false, ticks, &once)) return 1;
  once = std::max(once, 1e-6);
  while (once < 0.05 && ticks < 20000) {
    const double scale = std::clamp(0.06 / once, 2.0, 16.0);
    ticks = static_cast<std::size_t>(
        std::ceil(static_cast<double>(ticks) * scale));
    if (!TimedRun(workload, /*health_enabled=*/false, ticks, &once)) {
      return 1;
    }
  }
  std::printf("measured ticks per pass: %zu (floor pass %.4fs)\n\n", ticks,
              once);

  double floor_seconds = 0.0;
  double enabled_seconds = 0.0;
  if (!MinWallSeconds(workload, false, ticks, &floor_seconds)) return 1;
  if (!MinWallSeconds(workload, true, ticks, &enabled_seconds)) return 1;

  const double overhead = enabled_seconds / floor_seconds - 1.0;
  const bool pass = enabled_seconds <=
                    floor_seconds * (1.0 + kOverheadLimit) +
                        kAbsSlackSeconds;

  TableWriter table("obs02: health-plane overhead (min of reps)",
                    {"arm", "min_wall_s", "overhead_pct", "limit_pct",
                     "pass"});
  table.AddRow({"disabled", TableWriter::Cell(floor_seconds, 4),
                TableWriter::Cell(0.0, 2), TableWriter::Cell(-1.0, 2),
                TableWriter::Cell(1)});
  table.AddRow({"enabled", TableWriter::Cell(enabled_seconds, 4),
                TableWriter::Cell(overhead * 100.0, 2),
                TableWriter::Cell(kOverheadLimit * 100.0, 2),
                TableWriter::Cell(pass ? 1 : 0)});
  table.RenderText(std::cout);

  std::ofstream json("BENCH_health.json");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_health.json\n");
    return 1;
  }
  table.RenderJson(json);
  std::printf("\nwrote BENCH_health.json\n");
  if (!pass) {
    std::fprintf(stderr, "health-plane overhead gate FAILED (%.2f%%)\n",
                 overhead * 100.0);
    return 1;
  }
  std::printf("health-plane overhead gate passed (%.2f%%)\n",
              overhead * 100.0);
  return 0;
}
