// Ablation A1: iteration-strategy choice. The paper's Section 5 operators
// use a greedy best-benefit-per-cycle strategy; this ablation compares it
// against round-robin and uniform-random iteration over the same workloads:
// MAX over the real portfolio, and SUM with 80% of the weight on the hot
// set. Expected: greedy <= round-robin/random work, often by a wide margin
// for SUM (where skewed weights are the whole opportunity).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "operators/min_max.h"
#include "operators/sum_ave.h"
#include "workload/hot_cold.h"

using namespace vaolib;
using namespace vaolib::bench;

namespace {

const char* StrategyName(operators::StrategyKind strategy) {
  switch (strategy) {
    case operators::StrategyKind::kGreedy:
      return "greedy";
    case operators::StrategyKind::kRoundRobin:
      return "round-robin";
    case operators::StrategyKind::kRandom:
      return "random";
  }
  return "?";
}

}  // namespace

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Ablation A1: greedy vs round-robin vs random iteration "
                "strategies");

  TableWriter table("Strategy ablation",
                    {"operator", "strategy", "units", "est_s", "wall_s",
                     "iters", "vs_greedy"});

  const auto strategies = {operators::StrategyKind::kGreedy,
                           operators::StrategyKind::kRoundRobin,
                           operators::StrategyKind::kRandom};

  // --- MAX over the real portfolio. ----------------------------------------
  std::uint64_t greedy_units = 0;
  for (const auto strategy : strategies) {
    Rng rng(BenchSeed() + 101);
    WorkMeter meter;
    Stopwatch wall;
    std::vector<vao::ResultObjectPtr> owned;
    std::vector<vao::ResultObject*> objects;
    for (const auto& row : context.rows) {
      auto object = context.function->Invoke(row, &meter);
      if (!object.ok()) {
        std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
        return 1;
      }
      objects.push_back(object->get());
      owned.push_back(std::move(object).value());
    }
    operators::MinMaxOptions options;
    options.epsilon = 0.01;
    options.strategy = strategy;
    options.rng = &rng;
    options.meter = &meter;
    const operators::MinMaxVao vao(options);
    const auto outcome = vao.Evaluate(objects);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    if (strategy == operators::StrategyKind::kGreedy) {
      greedy_units = meter.Total();
    }
    table.AddRow({"MAX", StrategyName(strategy),
                  TableWriter::Cell(meter.Total()),
                  TableWriter::Cell(context.EstSeconds(meter.Total()), 4),
                  TableWriter::Cell(wall.ElapsedSeconds(), 4),
                  TableWriter::Cell(outcome->stats.iterations),
                  TableWriter::Cell(static_cast<double>(meter.Total()) /
                                        static_cast<double>(greedy_units),
                                    2)});
  }

  // --- SUM with 80% hot-set weight share. -----------------------------------
  Rng weight_rng(BenchSeed() + 102);
  workload::HotColdSpec spec;
  spec.count = context.rows.size();
  spec.hot_weight_share = 0.8;
  spec.total_weight = static_cast<double>(context.rows.size());
  const auto weights = workload::HotColdWeights(spec, &weight_rng);
  if (!weights.ok()) {
    std::fprintf(stderr, "%s\n", weights.status().ToString().c_str());
    return 1;
  }

  greedy_units = 0;
  for (const auto strategy : strategies) {
    Rng rng(BenchSeed() + 103);
    WorkMeter meter;
    Stopwatch wall;
    std::vector<vao::ResultObjectPtr> owned;
    std::vector<vao::ResultObject*> objects;
    for (const auto& row : context.rows) {
      auto object = context.function->Invoke(row, &meter);
      if (!object.ok()) {
        std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
        return 1;
      }
      objects.push_back(object->get());
      owned.push_back(std::move(object).value());
    }
    operators::SumAveOptions options;
    options.epsilon = 0.01 * static_cast<double>(context.rows.size());
    options.strategy = strategy;
    options.rng = &rng;
    options.meter = &meter;
    const operators::SumAveVao vao(options);
    const auto outcome = vao.Evaluate(objects, *weights);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    if (strategy == operators::StrategyKind::kGreedy) {
      greedy_units = meter.Total();
    }
    table.AddRow({"SUM(hot=80%)", StrategyName(strategy),
                  TableWriter::Cell(meter.Total()),
                  TableWriter::Cell(context.EstSeconds(meter.Total()), 4),
                  TableWriter::Cell(wall.ElapsedSeconds(), 4),
                  TableWriter::Cell(outcome->stats.iterations),
                  TableWriter::Cell(static_cast<double>(meter.Total()) /
                                        static_cast<double>(greedy_units),
                                    2)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
