// simd01: batch (SoA, optionally AVX2) vs scalar numeric kernels, plus a
// fig10/fig11-style batch-greedy operator comparison.
//
// Kernel arms time K independent scalar solves against one batched call for
// each kernel family (tridiagonal, RK4 ODE march, quadrature refinement)
// across batch widths K in {1, 4, 8, 16, 32}. Each measurement takes the min
// wall time over repetitions with the inner repeat count autoscaled so the
// scalar arm resolves ~1% differences.
//
// The operator arms run a MAX aggregate (the fig11 shape) and a MIN
// aggregate over the same portfolio (a fig10-style stress that walks the
// object set from the other extreme) under kGreedy/K=1 and kBatchGreedy/K=8,
// reporting total work units and wall time: batching must not inflate total
// work by more than 10%.
//
// Gates (exit non-zero on failure):
//   * tridiagonal batch speedup >= 1.5x scalar at K >= 8 -- enforced only
//     when the AVX2 path is compiled in and active (the portable SoA
//     fallback is about scalar-speed by design; it exists for bit-identical
//     semantics, not speed) -- report-only otherwise;
//   * batch-greedy K=8 total work within 10% of K=1 on both operator arms.
// Writes BENCH_simd.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "common/work_meter.h"
#include "numeric/integration.h"
#include "numeric/ode_ivp.h"
#include "numeric/tridiagonal.h"
#include "operators/min_max.h"
#include "vao/integral_result_object.h"

namespace {

using vaolib::Stopwatch;
using vaolib::TableWriter;
using vaolib::WorkMeter;

constexpr int kReps = 5;
constexpr std::size_t kRows = 96;  // tridiagonal system size
constexpr int kOdeSteps = 64;
constexpr double kSpeedupGate = 1.5;
constexpr double kWorkGate = 0.10;

double Lcg01(std::uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>((*state >> 11) & 0xFFFFFFFFULL) / 4294967296.0;
}

// ---------------------------------------------------------------------------
// Kernel arms
// ---------------------------------------------------------------------------

struct KernelTimes {
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
  double speedup() const { return scalar_seconds / batch_seconds; }
};

// Min-of-reps wall time of `body` run `inner` times.
template <typename Body>
double MinSeconds(int inner, Body&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const Stopwatch wall;
    for (int i = 0; i < inner; ++i) body();
    best = std::min(best, wall.ElapsedSeconds());
  }
  return best;
}

// Autoscale the inner count so one scalar measurement takes >= ~20 ms.
template <typename Body>
int AutoInner(Body&& body) {
  const Stopwatch probe;
  body();
  const double once = std::max(probe.ElapsedSeconds(), 1e-7);
  return static_cast<int>(std::clamp(std::ceil(0.02 / once), 1.0, 20000.0));
}

KernelTimes TimeTridiagonal(std::size_t k) {
  vaolib::numeric::TridiagonalBatch batch;
  batch.Resize(k, kRows);
  std::uint64_t state = 0x51D0 + k;
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t s = 0; s < k; ++s) {
      const std::size_t at = batch.IndexOf(i, s);
      const double lo = Lcg01(&state) - 0.5;
      const double up = Lcg01(&state) - 0.5;
      batch.lower[at] = lo;
      batch.upper[at] = up;
      batch.diag[at] = 2.0 + std::abs(lo) + std::abs(up) + Lcg01(&state);
      batch.rhs[at] = 4.0 * (Lcg01(&state) - 0.5);
    }
  }
  // AoS copies for the scalar arm.
  std::vector<vaolib::numeric::TridiagonalSystem> systems(k);
  for (std::size_t s = 0; s < k; ++s) {
    systems[s].Resize(kRows);
    for (std::size_t i = 0; i < kRows; ++i) {
      const std::size_t at = batch.IndexOf(i, s);
      systems[s].lower[i] = batch.lower[at];
      systems[s].diag[i] = batch.diag[at];
      systems[s].upper[i] = batch.upper[at];
      systems[s].rhs[i] = batch.rhs[at];
    }
  }

  vaolib::numeric::TridiagonalScratch scalar_scratch;
  std::vector<double> x;
  auto scalar_body = [&] {
    for (std::size_t s = 0; s < k; ++s) {
      const auto status =
          vaolib::numeric::SolveTridiagonal(systems[s], &x, &scalar_scratch);
      if (!status.ok()) std::abort();
    }
  };
  vaolib::numeric::TridiagonalBatchScratch batch_scratch;
  std::vector<double> solutions;
  vaolib::numeric::BatchKernelReport report;
  auto batch_body = [&] {
    const auto status = vaolib::numeric::SolveTridiagonalBatch(
        batch, &solutions, &report, &batch_scratch);
    if (!status.ok()) std::abort();
  };

  const int inner = AutoInner(scalar_body);
  KernelTimes times;
  times.scalar_seconds = MinSeconds(inner, scalar_body) / inner;
  times.batch_seconds = MinSeconds(inner, batch_body) / inner;
  return times;
}

KernelTimes TimeRk4(std::size_t k) {
  vaolib::numeric::OdeIvpBatch batch;
  for (std::size_t lane = 0; lane < k; ++lane) {
    vaolib::numeric::OdeIvpProblem problem;
    const double a = 0.2 + 0.05 * static_cast<double>(lane);
    problem.f = [a](double t, double y) { return a * y - 0.1 * t; };
    problem.y0 = 1.0;
    problem.t1 = 1.0;
    batch.problems.push_back(problem);
  }

  auto scalar_body = [&] {
    for (const auto& problem : batch.problems) {
      const auto result =
          vaolib::numeric::SolveOdeIvpRk4(problem, kOdeSteps, nullptr);
      if (!result.ok()) std::abort();
    }
  };
  std::vector<double> results;
  vaolib::numeric::BatchKernelReport report;
  auto batch_body = [&] {
    const auto status = vaolib::numeric::SolveOdeIvpRk4Batch(
        batch, kOdeSteps, nullptr, &results, &report);
    if (!status.ok()) std::abort();
  };

  const int inner = AutoInner(scalar_body);
  KernelTimes times;
  times.scalar_seconds = MinSeconds(inner, scalar_body) / inner;
  times.batch_seconds = MinSeconds(inner, batch_body) / inner;
  return times;
}

KernelTimes TimeRefine(std::size_t k) {
  // Each measurement rebuilds the integrals (Refine mutates level state), so
  // the timed body is "create at level 0, refine 6 times" for both arms.
  vaolib::numeric::RefinableIntegral::Options options;
  options.rule = vaolib::numeric::IntegrationRule::kSimpson;
  auto make = [&](std::vector<vaolib::numeric::RefinableIntegral>* out) {
    out->clear();
    for (std::size_t lane = 0; lane < k; ++lane) {
      const double c = 1.0 + 0.25 * static_cast<double>(lane);
      auto created = vaolib::numeric::RefinableIntegral::Create(
          [c](double x) { return c * std::exp(-x * x); }, 0.0, 2.0, options,
          nullptr);
      if (!created.ok()) std::abort();
      out->push_back(std::move(created).value());
    }
  };

  std::vector<vaolib::numeric::RefinableIntegral> set;
  auto scalar_body = [&] {
    make(&set);
    for (int round = 0; round < 6; ++round) {
      for (auto& integral : set) {
        if (!integral.Refine(nullptr).ok()) std::abort();
      }
    }
  };
  auto batch_body = [&] {
    make(&set);
    std::vector<vaolib::numeric::RefinableIntegral*> ptrs;
    for (auto& integral : set) ptrs.push_back(&integral);
    for (int round = 0; round < 6; ++round) {
      if (!vaolib::numeric::RefinableIntegral::RefineBatch(ptrs, nullptr)
               .ok()) {
        std::abort();
      }
    }
  };

  const int inner = AutoInner(scalar_body);
  KernelTimes times;
  times.scalar_seconds = MinSeconds(inner, scalar_body) / inner;
  times.batch_seconds = MinSeconds(inner, batch_body) / inner;
  return times;
}

// ---------------------------------------------------------------------------
// Operator arms (fig10/fig11 shapes over integral-backed VAOs)
// ---------------------------------------------------------------------------

std::vector<vaolib::vao::ResultObjectPtr> MakeObjects(std::size_t count,
                                                      WorkMeter* meter) {
  std::vector<vaolib::vao::ResultObjectPtr> owned;
  std::uint64_t state = 0xF16;
  for (std::size_t lane = 0; lane < count; ++lane) {
    vaolib::vao::IntegralProblem problem;
    const double c = 0.5 + 2.0 * Lcg01(&state);
    const double w = 1.0 + 8.0 * Lcg01(&state);
    problem.integrand = [c, w](double x) {
      return c * std::sin(w * x) * std::sin(w * x) + 0.1 * x;
    };
    problem.a = 0.0;
    problem.b = 1.0 + Lcg01(&state);
    vaolib::vao::IntegralResultOptions options;
    auto created =
        vaolib::vao::IntegralResultObject::Create(problem, options, meter);
    if (!created.ok()) std::abort();
    owned.push_back(std::move(created).value());
  }
  return owned;
}

struct OperatorArm {
  std::uint64_t work = 0;
  double wall_seconds = 0.0;
};

// fig11 shape: MAX over `count` objects.
OperatorArm RunMaxArm(std::size_t count, int batch_k) {
  OperatorArm arm;
  double best_wall = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    WorkMeter meter;
    auto owned = MakeObjects(count, &meter);
    std::vector<vaolib::vao::ResultObject*> objects;
    for (const auto& object : owned) objects.push_back(object.get());
    vaolib::operators::MinMaxOptions options;
    options.kind = vaolib::operators::ExtremeKind::kMax;
    options.epsilon = 1e-6;
    options.meter = &meter;
    if (batch_k > 1) {
      options.strategy = vaolib::operators::StrategyKind::kBatchGreedy;
      options.batch_k = batch_k;
    }
    const std::uint64_t before = meter.Total();
    const Stopwatch wall;
    const auto outcome = vaolib::operators::MinMaxVao(options).Evaluate(objects);
    const double seconds = wall.ElapsedSeconds();
    if (!outcome.ok()) std::abort();
    arm.work = meter.Total() - before;  // deterministic across reps
    best_wall = std::min(best_wall, seconds);
  }
  arm.wall_seconds = best_wall;
  return arm;
}

// fig10-style stress: a MIN aggregate over the same portfolio, so the
// adaptive loop visits the whole object set from the other extreme.
OperatorArm RunMinArm(std::size_t count, int batch_k) {
  OperatorArm arm;
  double best_wall = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    WorkMeter meter;
    auto owned = MakeObjects(count, &meter);
    std::vector<vaolib::vao::ResultObject*> objects;
    for (const auto& object : owned) objects.push_back(object.get());
    vaolib::operators::MinMaxOptions options;
    options.kind = vaolib::operators::ExtremeKind::kMin;
    options.epsilon = 1e-6;
    options.meter = &meter;
    if (batch_k > 1) {
      options.strategy = vaolib::operators::StrategyKind::kBatchGreedy;
      options.batch_k = batch_k;
    }
    const std::uint64_t before = meter.Total();
    const Stopwatch wall;
    const auto outcome = vaolib::operators::MinMaxVao(options).Evaluate(objects);
    const double seconds = wall.ElapsedSeconds();
    if (!outcome.ok()) std::abort();
    arm.work = meter.Total() - before;
    best_wall = std::min(best_wall, seconds);
  }
  arm.wall_seconds = best_wall;
  return arm;
}

}  // namespace

int main() {
  const bool avx2 = vaolib::numeric::TridiagonalBatchUsesAvx2();
  std::printf("simd01: batch kernels vs scalar (AVX2 path: %s)\n\n",
              avx2 ? "active" : "inactive (portable SoA fallback)");

  TableWriter kernels("simd01: kernel wall time, min of reps",
                      {"kernel", "K", "scalar_us", "batch_us", "speedup",
                       "gated", "pass"});
  bool all_pass = true;
  const std::size_t widths[] = {1, 4, 8, 16, 32};
  struct Family {
    const char* name;
    KernelTimes (*run)(std::size_t);
    bool gate;  // tridiagonal carries the headline speedup gate
  };
  const Family families[] = {
      {"tridiagonal", &TimeTridiagonal, true},
      {"rk4", &TimeRk4, false},
      {"quadrature", &TimeRefine, false},
  };
  for (const Family& family : families) {
    for (const std::size_t k : widths) {
      const KernelTimes times = family.run(k);
      // The 1.5x gate binds only on the AVX2 build and only at K >= 8
      // (below that there is not enough lockstep width to amortize).
      const bool gated = family.gate && avx2 && k >= 8;
      const bool pass = !gated || times.speedup() >= kSpeedupGate;
      if (!pass) all_pass = false;
      kernels.AddRow({family.name, TableWriter::Cell(static_cast<int>(k)),
                      TableWriter::Cell(times.scalar_seconds * 1e6, 2),
                      TableWriter::Cell(times.batch_seconds * 1e6, 2),
                      TableWriter::Cell(times.speedup(), 3),
                      TableWriter::Cell(gated ? 1 : 0),
                      TableWriter::Cell(pass ? 1 : 0)});
    }
  }
  kernels.RenderText(std::cout);

  std::printf("\n");
  TableWriter operators_table(
      "simd01: batch-greedy operators (fig10/fig11 shapes, 64 objects)",
      {"arm", "batch_k", "work_units", "wall_ms", "work_ratio", "pass"});
  struct OperatorCase {
    const char* name;
    OperatorArm (*run)(std::size_t, int);
  };
  const OperatorCase cases[] = {
      {"fig11_max", &RunMaxArm},
      {"fig10_min", &RunMinArm},
  };
  for (const OperatorCase& oc : cases) {
    const OperatorArm k1 = oc.run(64, 1);
    const OperatorArm k8 = oc.run(64, 8);
    const double ratio =
        static_cast<double>(k8.work) / static_cast<double>(k1.work);
    const bool pass = ratio <= 1.0 + kWorkGate;
    if (!pass) all_pass = false;
    operators_table.AddRow({std::string(oc.name) + "/greedy",
                            TableWriter::Cell(1),
                            TableWriter::Cell(k1.work),
                            TableWriter::Cell(k1.wall_seconds * 1e3, 3),
                            TableWriter::Cell(1.0, 3), TableWriter::Cell(1)});
    operators_table.AddRow({std::string(oc.name) + "/batch_greedy",
                            TableWriter::Cell(8),
                            TableWriter::Cell(k8.work),
                            TableWriter::Cell(k8.wall_seconds * 1e3, 3),
                            TableWriter::Cell(ratio, 3),
                            TableWriter::Cell(pass ? 1 : 0)});
  }
  operators_table.RenderText(std::cout);

  std::ofstream json("BENCH_simd.json");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_simd.json\n");
    return 1;
  }
  json << "{\"avx2\": " << (avx2 ? "true" : "false") << ",\n\"kernels\": ";
  kernels.RenderJson(json);
  json << ",\n\"operators\": ";
  operators_table.RenderJson(json);
  json << "}\n";
  std::printf("\nwrote BENCH_simd.json\n");

  if (!all_pass) {
    std::fprintf(stderr, "simd01 gate FAILED\n");
    return 1;
  }
  std::printf("simd01 gates passed\n");
  return 0;
}
