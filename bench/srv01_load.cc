// srv01: standing-query server load bench -- N tenants x M queries x a tick
// storm over the in-process transport (StandingQueryServer directly; no
// sockets, so the numbers isolate dispatch + scheduling, not the kernel).
//
// Three phases over the shared bond workload (every query binds
// bond_model(rate, bond_index), so the whole mix lands in ONE executor
// group and genuinely contends for one scheduler budget):
//
//   probe  -- the reserved tenant alone, unlimited budget: measures W_vip,
//             the per-tick work its standing queries need to converge. All
//             later budgets and reserves scale from it, so the bench holds
//             its properties at any VAOLIB_BENCH_BONDS size.
//   storm  -- the reserved tenant plus 4 noisy tenants x 4 precision-hungry
//             queries each (an 8x query, >4x work noisy-neighbor storm) at
//             tick budget 3 x W_vip with the vip reserve at 2 x W_vip.
//             Records p50/p99 tick-to-answer latency. Shedding is off so the
//             overload is sustained for every measured tick. The runtime
//             health plane (src/obs/health.h) watches the storm through an
//             unconverged-rate SLO over a 2-epoch fast / 12-epoch slow
//             window: a healthy warmup fills the slow window first, so the
//             monitor must pass through degraded (fast window burning, slow
//             still diluted) on its way to critical -- and the transition
//             into critical must arm a flight-recorder dump.
//   shed   -- the same storm with shed_after_misses=2: best-effort queries
//             that stay unconverged get evicted with SHED frames; the
//             reserved tenant is exempt by policy.
//
// Hard gates (FAIL to stderr, exit 1):
//   * reserve invariant: the reserved tenant records ZERO deadline misses
//     and ZERO unconverged results across the storm,
//   * the storm actually storms: best-effort queries go unconverged,
//   * the health plane sees it: warmup ends healthy, the SLO monitor flips
//     healthy -> degraded -> critical in that order, and the critical
//     transition writes a flight-recorder dump,
//   * the shed phase evicts at least one best-effort query, sends SHED
//     frames for each, and never touches the reserved tenant.
//
// Output: the standard text table plus BENCH_server.json (RenderJson).
// Size knobs: VAOLIB_BENCH_BONDS (default 48), VAOLIB_BENCH_SEED (1994),
// VAOLIB_SRV01_TICKS (default 30) -- CI smoke shrinks all three.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table_writer.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/trace.h"
#include "engine/relation.h"
#include "engine/schema.h"
#include "engine/sql_parser.h"
#include "finance/bond_model.h"
#include "server/frame.h"
#include "server/server.h"
#include "workload/portfolio_gen.h"

using namespace vaolib;

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

constexpr double kBaseRate = 0.0575;  // the paper's opening-rate analogue
constexpr double kRateStep = 0.0001;  // deterministic tick ramp

// The reserved tenant's standing book: modest precision, must converge
// every tick no matter what the neighbors do.
const char* const kVipQueries[] = {
    "SELECT MAX(bond_model(rate, bond_index)) FROM bd PRECISION 0.05",
    "SELECT AVE(bond_model(rate, bond_index)) FROM bd PRECISION 0.05",
};

// One noisy tenant's book: every query at the tightest precision the bond
// model can deliver (its minWidth is 0.01), plus a mid-distribution
// threshold selection. Their collective refinement demand -- most objects
// driven to minWidth every tick -- dwarfs the leftover budget, so they
// cannot converge by piggybacking on the reserved tenant's shared-object
// refinements.
const char* const kNoisyQueries[] = {
    "SELECT MIN(bond_model(rate, bond_index)) FROM bd PRECISION 0.01",
    "SELECT TOP 3 bond_model(rate, bond_index) FROM bd PRECISION 0.01",
    "SELECT * FROM bd WHERE bond_model(rate, bond_index) > 100",
    "SELECT AVE(bond_model(rate, bond_index)) FROM bd PRECISION 0.01",
};

constexpr std::size_t kNoisyTenants = 4;

struct Workload {
  std::vector<finance::Bond> bonds;
  std::unique_ptr<finance::BondPricingFunction> function;
  std::unique_ptr<engine::Relation> relation;
  engine::FunctionRegistry registry;
  engine::Schema stream_schema{{{"rate", engine::ColumnType::kDouble}}};
};

bool BuildWorkload(std::size_t bond_count, std::uint64_t seed,
                   Workload* workload) {
  workload::PortfolioSpec spec;
  spec.count = bond_count;
  workload->bonds = workload::GeneratePortfolio(seed, spec);
  workload->function = std::make_unique<finance::BondPricingFunction>(
      workload->bonds, finance::BondModelConfig{});
  workload->relation = std::make_unique<engine::Relation>(engine::Schema(
      {{"bond_index", engine::ColumnType::kDouble},
       {"position", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < workload->bonds.size(); ++i) {
    if (!workload->relation->Append({static_cast<double>(i), 1.0}).ok()) {
      std::fprintf(stderr, "FAIL: relation setup\n");
      return false;
    }
  }
  if (!workload->registry.Register(workload->function.get()).ok()) {
    std::fprintf(stderr, "FAIL: registry setup\n");
    return false;
  }
  return true;
}

// Minimal in-process client: one session, framed request in, decoded
// replies out.
class Client {
 public:
  Client(server::StandingQueryServer* server, const std::string& tenant)
      : server_(server), session_(server->OpenSession()) {
    Send("HELLO " + tenant);
  }

  std::vector<std::string> Send(const std::string& payload) {
    server_->HandleBytes(session_, server::EncodeFrame(payload));
    return Drain();
  }

  std::vector<std::string> Drain() {
    server::FrameDecoder decoder;
    if (!decoder.Feed(server_->DrainOutput(session_)).ok()) return {};
    std::vector<std::string> replies;
    while (const auto reply = decoder.Next()) replies.push_back(*reply);
    return replies;
  }

  std::uint64_t session() const { return session_; }

 private:
  server::StandingQueryServer* server_;
  std::uint64_t session_;
};

bool RegisterAll(Client* client, const std::string& prefix,
                 const char* const* queries, std::size_t count) {
  for (std::size_t q = 0; q < count; ++q) {
    const std::string id = prefix + std::to_string(q);
    const auto replies = client->Send("REGISTER " + id + " " + queries[q]);
    if (replies.size() != 1 || replies[0] != "OK REGISTER " + id) {
      std::fprintf(stderr, "FAIL: REGISTER %s -> %s\n", id.c_str(),
                   replies.empty() ? "(no reply)" : replies[0].c_str());
      return false;
    }
  }
  return true;
}

std::string TickPayload(std::size_t tick) {
  std::ostringstream os;
  os.precision(17);
  os << "TICK " << kBaseRate + kRateStep * static_cast<double>(tick);
  return os.str();
}

struct PhaseResult {
  std::size_t ticks = 0;
  std::uint64_t work_units = 0;
  std::uint64_t max_tick_work = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  std::size_t unconverged_results = 0;  // across all deliveries
  std::size_t shed_frames = 0;          // SHED frames delivered
  std::vector<int> health_states;       // dispatcher health after each tick
};

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t index = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return samples[index];
}

// Drives `ticks` storm ticks from `driver`, draining every session each
// tick (tick-to-answer latency = TICK bytes in to all result frames out).
bool RunTicks(server::StandingQueryServer* server, Client* driver,
              std::vector<Client*> all_clients, std::size_t ticks,
              PhaseResult* result) {
  std::vector<double> latencies;
  latencies.reserve(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    const std::uint64_t before = server->dispatcher().total_work_units();
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::string> replies = driver->Send(TickPayload(t));
    for (Client* client : all_clients) {
      if (client == driver) continue;
      const auto fanned = client->Drain();
      replies.insert(replies.end(), fanned.begin(), fanned.end());
    }
    latencies.push_back(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    bool acked = false;
    for (const std::string& reply : replies) {
      if (reply.rfind("OK TICK ", 0) == 0) acked = true;
      if (reply.rfind("ERR ", 0) == 0) {
        std::fprintf(stderr, "FAIL: tick %zu -> %s\n", t, reply.c_str());
        return false;
      }
      if (reply.rfind("RESULT ", 0) == 0 &&
          reply.find(" converged=0 ") != std::string::npos) {
        ++result->unconverged_results;
      }
      if (reply.rfind("SHED ", 0) == 0) ++result->shed_frames;
    }
    if (!acked) {
      std::fprintf(stderr, "FAIL: tick %zu was not acknowledged\n", t);
      return false;
    }
    const std::uint64_t tick_work =
        server->dispatcher().total_work_units() - before;
    result->max_tick_work = std::max(result->max_tick_work, tick_work);
    result->health_states.push_back(
        static_cast<int>(server->dispatcher().health_state()));
  }
  result->ticks = ticks;
  result->work_units = server->dispatcher().total_work_units();
  result->p50_seconds = Percentile(latencies, 0.50);
  result->p99_seconds = Percentile(latencies, 0.99);
  return true;
}

void AddPhaseRow(TableWriter* table, const std::string& phase,
                 std::size_t queries, std::uint64_t tick_budget,
                 const PhaseResult& result, double shed_rate,
                 std::uint64_t vip_misses, std::uint64_t vip_unconverged) {
  table->AddRow({phase, TableWriter::Cell(queries),
                 TableWriter::Cell(result.ticks),
                 TableWriter::Cell(tick_budget),
                 TableWriter::Cell(result.work_units),
                 TableWriter::Cell(result.p50_seconds * 1e3, 3),
                 TableWriter::Cell(result.p99_seconds * 1e3, 3),
                 TableWriter::Cell(result.unconverged_results),
                 TableWriter::Cell(shed_rate, 3),
                 TableWriter::Cell(vip_misses),
                 TableWriter::Cell(vip_unconverged)});
}

}  // namespace

int main() {
  const std::size_t bond_count = EnvSize("VAOLIB_BENCH_BONDS", 48);
  const std::uint64_t seed = EnvSize("VAOLIB_BENCH_SEED", 1994);
  const std::size_t ticks = EnvSize("VAOLIB_SRV01_TICKS", 30);
  constexpr std::size_t kVipCount =
      sizeof(kVipQueries) / sizeof(kVipQueries[0]);
  constexpr std::size_t kNoisyCount =
      sizeof(kNoisyQueries) / sizeof(kNoisyQueries[0]);

  Workload workload;
  if (!BuildWorkload(bond_count, seed, &workload)) return 1;
  std::cout << "srv01: standing-query server load (bonds=" << bond_count
            << " seed=" << seed << " ticks=" << ticks << ")\n"
            << "tenants: vip (reserved, " << kVipCount << " queries) + "
            << kNoisyTenants << " noisy x " << kNoisyCount
            << " precision-hungry queries\n\n";

  TableWriter table(
      "srv01_load",
      {"phase", "queries", "ticks", "tick_budget", "work_units", "p50_ms",
       "p99_ms", "unconverged", "shed_rate", "vip_misses",
       "vip_unconverged"});
  bool ok = true;

  // ---- Probe: the reserved tenant alone, unlimited budget. ---------------
  std::uint64_t vip_tick_work = 0;
  {
    server::ServerConfig config;  // tick_budget 0 = run to convergence
    server::StandingQueryServer probe(workload.relation.get(),
                                      workload.stream_schema,
                                      &workload.registry, config);
    Client vip(&probe, "vip");
    if (!RegisterAll(&vip, "vip-q", kVipQueries, kVipCount)) return 1;
    PhaseResult result;
    if (!RunTicks(&probe, &vip, {&vip}, std::min<std::size_t>(ticks, 5),
                  &result)) {
      return 1;
    }
    vip_tick_work = result.max_tick_work;
    if (result.unconverged_results != 0 || vip_tick_work == 0) {
      std::fprintf(stderr, "FAIL: probe phase did not converge cleanly\n");
      return 1;
    }
    AddPhaseRow(&table, "probe", kVipCount, 0, result, 0.0, 0, 0);
  }

  // Budgets scale from the measured per-tick demand, so the contention
  // ratio is size-independent: the storm offers ~8x the queries and >4x
  // the work of what fits, while the vip reserve covers its whole book.
  const std::uint64_t tick_budget = 3 * vip_tick_work;
  const std::uint64_t vip_reserve = 2 * vip_tick_work;
  const std::size_t storm_queries =
      kVipCount + kNoisyTenants * kNoisyCount;

  const auto configure = [&](int shed_after) {
    server::ServerConfig config;
    config.dispatcher.tick_budget = tick_budget;
    config.dispatcher.shed_after_misses = shed_after;
    return config;
  };
  const auto make_reserved = [&](server::StandingQueryServer* server) {
    server::TenantQuota quota =
        server->dispatcher().admission().QuotaFor("vip");
    quota.reserve_units = vip_reserve;
    server->dispatcher().admission().SetQuota("vip", quota);
  };

  // ---- Storm: sustained 4x noisy-neighbor overload, shedding off. --------
  {
    server::ServerConfig storm_config = configure(/*shed_after=*/0);
    // Health plane, one epoch per tick. The single SLO is the unconverged
    // rate with a critical burn high enough that ONE storm epoch diluted
    // across the 12-epoch slow window reads degraded, not critical -- so
    // the multi-window monitor demonstrably passes through degraded before
    // the slow window saturates.
    storm_config.dispatcher.health.enabled = true;
    storm_config.dispatcher.health.ticks_per_epoch = 1;
    obs::SloSpec unconverged_slo;
    unconverged_slo.name = "unconverged";
    unconverged_slo.bad_metric = "vaolib_server_unconverged_total";
    unconverged_slo.total_metric = "vaolib_server_results_total";
    unconverged_slo.budget = 0.05;
    unconverged_slo.fast_epochs = 2;
    unconverged_slo.slow_epochs = 12;
    unconverged_slo.degraded_burn = 1.0;
    unconverged_slo.critical_burn = 10.0;
    storm_config.dispatcher.health.slos = {unconverged_slo};
    server::StandingQueryServer storm(workload.relation.get(),
                                      workload.stream_schema,
                                      &workload.registry, storm_config);
    make_reserved(&storm);

    // Arm the flight recorder: the SLO monitor's transition into critical
    // must leave a post-mortem artifact behind.
    const std::string dump_dir = "srv01_flight_dumps";
    std::error_code dir_error;
    std::filesystem::create_directories(dump_dir, dir_error);
    obs::FlightRecorder::Global().SetDumpDir(dump_dir);
    obs::SetTraceMode(obs::TraceMode::kFlight);
    const std::uint64_t dumps_before =
        obs::FlightRecorder::Global().dump_count();

    Client vip(&storm, "vip");
    std::vector<std::unique_ptr<Client>> noisy;
    std::vector<Client*> all{&vip};
    if (!RegisterAll(&vip, "vip-q", kVipQueries, kVipCount)) return 1;

    // Healthy warmup: the reserved tenant alone fills the slow window so
    // the storm's first epochs hit a monitor with benign history.
    PhaseResult warmup;
    if (!RunTicks(&storm, &vip, {&vip}, 12, &warmup)) return 1;

    for (std::size_t n = 0; n < kNoisyTenants; ++n) {
      noisy.push_back(std::make_unique<Client>(
          &storm, "noisy" + std::to_string(n)));
      all.push_back(noisy.back().get());
      if (!RegisterAll(noisy.back().get(), "n" + std::to_string(n) + "-q",
                       kNoisyQueries, kNoisyCount)) {
        return 1;
      }
    }
    PhaseResult result;
    const bool storm_ok = RunTicks(&storm, &vip, all, ticks, &result);
    obs::SetTraceMode(obs::TraceMode::kOff);
    obs::FlightRecorder::Global().SetDumpDir("");
    if (!storm_ok) return 1;

    // The health plane's account of the storm.
    if (warmup.health_states.empty() || warmup.health_states.back() != 0) {
      std::fprintf(stderr,
                   "FAIL: warmup should end healthy, health=%d\n",
                   warmup.health_states.empty()
                       ? -1
                       : warmup.health_states.back());
      ok = false;
    }
    std::size_t first_degraded = result.health_states.size();
    std::size_t first_critical = result.health_states.size();
    for (std::size_t t = 0; t < result.health_states.size(); ++t) {
      if (result.health_states[t] == 1 && first_degraded > t) {
        first_degraded = t;
      }
      if (result.health_states[t] == 2 && first_critical > t) {
        first_critical = t;
      }
    }
    if (first_degraded >= first_critical ||
        first_critical >= result.health_states.size() ||
        result.health_states.back() != 2) {
      std::fprintf(stderr,
                   "FAIL: health must flip degraded -> critical under the "
                   "storm (first_degraded=%zu first_critical=%zu last=%d)\n",
                   first_degraded, first_critical,
                   result.health_states.empty()
                       ? -1
                       : result.health_states.back());
      ok = false;
    }
    if (storm.dispatcher().health_monitor() == nullptr ||
        storm.dispatcher().health_monitor()->critical_transitions() == 0) {
      std::fprintf(stderr,
                   "FAIL: no SLO transition into critical was recorded\n");
      ok = false;
    }
    if (obs::FlightRecorder::Global().dump_count() <= dumps_before) {
      std::fprintf(stderr,
                   "FAIL: the critical transition did not write a "
                   "flight-recorder dump\n");
      ok = false;
    }

    const server::TenantUsage vip_usage =
        storm.dispatcher().admission().UsageFor("vip");
    AddPhaseRow(&table, "storm", storm_queries, tick_budget, result, 0.0,
                vip_usage.deadline_misses, vip_usage.unconverged_results);

    // The reserve invariant -- the whole point of admission-to-scheduler
    // quota mapping: a 4x noisy-neighbor storm cannot make the reserved
    // tenant miss.
    if (vip_usage.deadline_misses != 0) {
      std::fprintf(stderr,
                   "FAIL: reserved tenant missed %llu deadlines under the "
                   "storm (reserve invariant)\n",
                   static_cast<unsigned long long>(
                       vip_usage.deadline_misses));
      ok = false;
    }
    if (vip_usage.unconverged_results != 0) {
      std::fprintf(stderr,
                   "FAIL: reserved tenant went unconverged %llu times under "
                   "the storm\n",
                   static_cast<unsigned long long>(
                       vip_usage.unconverged_results));
      ok = false;
    }
    if (result.unconverged_results == 0) {
      std::fprintf(stderr,
                   "FAIL: the storm never overloaded anyone; the scenario "
                   "does not separate reserved from best-effort\n");
      ok = false;
    }
  }

  // ---- Shed: the same storm with overload eviction on. -------------------
  {
    server::StandingQueryServer shedding(workload.relation.get(),
                                         workload.stream_schema,
                                         &workload.registry,
                                         configure(/*shed_after=*/2));
    make_reserved(&shedding);
    Client vip(&shedding, "vip");
    std::vector<std::unique_ptr<Client>> noisy;
    std::vector<Client*> all{&vip};
    if (!RegisterAll(&vip, "vip-q", kVipQueries, kVipCount)) return 1;
    for (std::size_t n = 0; n < kNoisyTenants; ++n) {
      noisy.push_back(std::make_unique<Client>(
          &shedding, "noisy" + std::to_string(n)));
      all.push_back(noisy.back().get());
      if (!RegisterAll(noisy.back().get(), "n" + std::to_string(n) + "-q",
                       kNoisyQueries, kNoisyCount)) {
        return 1;
      }
    }
    PhaseResult result;
    if (!RunTicks(&shedding, &vip, all, std::min<std::size_t>(ticks, 8),
                  &result)) {
      return 1;
    }

    std::uint64_t shed_total = 0;
    for (std::size_t n = 0; n < kNoisyTenants; ++n) {
      shed_total += shedding.dispatcher()
                        .admission()
                        .UsageFor("noisy" + std::to_string(n))
                        .shed_queries;
    }
    const double shed_rate =
        static_cast<double>(shed_total) /
        static_cast<double>(kNoisyTenants * kNoisyCount);
    const server::TenantUsage vip_usage =
        shedding.dispatcher().admission().UsageFor("vip");
    AddPhaseRow(&table, "shed", storm_queries, tick_budget, result,
                shed_rate, vip_usage.deadline_misses,
                vip_usage.unconverged_results);

    if (shed_total == 0 || result.shed_frames != shed_total) {
      std::fprintf(stderr,
                   "FAIL: shed phase evicted %llu queries but delivered "
                   "%zu SHED frames (want >0 and equal)\n",
                   static_cast<unsigned long long>(shed_total),
                   result.shed_frames);
      ok = false;
    }
    if (vip_usage.shed_queries != 0 || vip_usage.deadline_misses != 0) {
      std::fprintf(stderr,
                   "FAIL: shedding touched the reserved tenant (shed=%llu "
                   "misses=%llu)\n",
                   static_cast<unsigned long long>(vip_usage.shed_queries),
                   static_cast<unsigned long long>(
                       vip_usage.deadline_misses));
      ok = false;
    }
  }

  table.RenderText(std::cout);
  std::ofstream json("BENCH_server.json");
  table.RenderJson(json);
  std::cout << "\nwrote BENCH_server.json\n";
  return ok ? 0 : 1;
}
