// obs01: tracing overhead on the Figure 8 selection workload. Four arms run
// the identical sweep (selectivity 0.5, every bond):
//   disabled  observability compiled in but switched off (the floor),
//   off       obs on, tracing off -- the production default; must cost
//             < 1% over the floor or the "one relaxed load" claim is false,
//   flight    decision events + coarse spans into the rings; < 5%,
//   full      everything including fine spans (reported, not asserted).
// Each arm takes the min wall time over several repetitions (the usual
// bench trick: noise only ever adds time), and the inner repeat count is
// autoscaled so the floor arm runs long enough to resolve 1% differences.
// A small absolute slack keeps 1-core CI runners from flaking the gate.
// Writes BENCH_trace_overhead.json and exits non-zero when a gate fails.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "operators/selection.h"
#include "workload/selectivity.h"

namespace {

using vaolib::Stopwatch;
using vaolib::TableWriter;
using vaolib::WorkMeter;
using vaolib::bench::BenchContext;

constexpr int kReps = 7;
constexpr double kOffLimit = 0.01;     // off-mode gate: < 1% over the floor
constexpr double kFlightLimit = 0.05;  // flight-mode gate: < 5%
constexpr double kAbsSlackSeconds = 0.010;

// One workload pass: the fig08 selection at the given constant over every
// bond. Returns false on solver failure (which aborts the bench).
bool RunSweep(const BenchContext& context,
              const vaolib::operators::SelectionVao& vao, int inner) {
  for (int i = 0; i < inner; ++i) {
    WorkMeter meter;
    for (const auto& row : context.rows) {
      const auto outcome = vao.Evaluate(*context.function, row, &meter);
      if (!outcome.ok()) {
        std::fprintf(stderr, "selection VAO failed: %s\n",
                     outcome.status().ToString().c_str());
        return false;
      }
    }
  }
  return true;
}

double MinWallSeconds(const BenchContext& context,
                      const vaolib::operators::SelectionVao& vao, int inner,
                      bool* ok) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    vaolib::obs::ClearTrace();
    const Stopwatch wall;
    if (!RunSweep(context, vao, inner)) {
      *ok = false;
      return best;
    }
    best = std::min(best, wall.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  BenchContext context = vaolib::bench::MakeContext();
  vaolib::bench::Calibrate(&context);
  vaolib::bench::PrintPreamble(
      context, "obs01: tracing overhead, fig08 selection workload");

  const auto constant = vaolib::workload::ConstantForGreaterSelectivity(
      context.converged_values, 0.5);
  if (!constant.ok()) {
    std::fprintf(stderr, "constant selection failed: %s\n",
                 constant.status().ToString().c_str());
    return 1;
  }
  const vaolib::operators::SelectionVao vao(
      vaolib::operators::Comparator::kGreaterThan, *constant);

  // Autoscale the inner repeat count so the floor arm runs >= ~50 ms; a
  // 1% gate over a sub-millisecond run would only measure timer noise.
  vaolib::obs::SetEnabled(false);
  vaolib::obs::SetTraceMode(vaolib::obs::TraceMode::kOff);
  bool ok = true;
  const Stopwatch probe;
  if (!RunSweep(context, vao, 1)) return 1;
  const double once = std::max(probe.ElapsedSeconds(), 1e-6);
  const int inner =
      static_cast<int>(std::clamp(std::ceil(0.05 / once), 1.0, 200.0));
  std::printf("inner repeats per measurement: %d (single pass %.4fs)\n\n",
              inner, once);

  struct Arm {
    const char* name;
    bool obs_enabled;
    vaolib::obs::TraceMode mode;
    double limit;  // relative gate vs. the floor; <0 means report-only
  };
  const Arm arms[] = {
      {"disabled", false, vaolib::obs::TraceMode::kOff, -1.0},
      {"off", true, vaolib::obs::TraceMode::kOff, kOffLimit},
      {"flight", true, vaolib::obs::TraceMode::kFlight, kFlightLimit},
      {"full", true, vaolib::obs::TraceMode::kFull, -1.0},
  };

  TableWriter table("obs01: tracing overhead (min of reps)",
                    {"arm", "min_wall_s", "overhead_pct", "limit_pct",
                     "pass"});
  double floor_seconds = 0.0;
  bool all_pass = true;
  for (const Arm& arm : arms) {
    vaolib::obs::SetEnabled(arm.obs_enabled);
    vaolib::obs::SetTraceMode(arm.mode);
    const double seconds = MinWallSeconds(context, vao, inner, &ok);
    if (!ok) return 1;
    if (arm.limit < 0.0 && floor_seconds == 0.0) floor_seconds = seconds;
    const double overhead = seconds / floor_seconds - 1.0;
    const bool gated = arm.limit >= 0.0;
    const bool pass =
        !gated ||
        seconds <= floor_seconds * (1.0 + arm.limit) + kAbsSlackSeconds;
    if (!pass) all_pass = false;
    table.AddRow({std::string(arm.name), TableWriter::Cell(seconds, 4),
                  TableWriter::Cell(overhead * 100.0, 2),
                  TableWriter::Cell(gated ? arm.limit * 100.0 : -1.0, 2),
                  TableWriter::Cell(pass ? 1 : 0)});
  }
  vaolib::obs::SetTraceMode(vaolib::obs::TraceMode::kOff);
  vaolib::obs::SetEnabled(true);

  table.RenderText(std::cout);
  std::ofstream json("BENCH_trace_overhead.json");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_trace_overhead.json\n");
    return 1;
  }
  table.RenderJson(json);
  std::printf("\nwrote BENCH_trace_overhead.json\n");
  if (!all_pass) {
    std::fprintf(stderr, "tracing overhead gate FAILED\n");
    return 1;
  }
  std::printf("tracing overhead gates passed\n");
  return 0;
}
