// Micro M2: google-benchmark kernels for the numeric substrate: PDE solves
// across grid sizes (the unit of VAO iteration cost), tridiagonal solves
// (scalar and SoA batch), composite quadrature, and the workload RNG.
// Confirms that solver wall time scales linearly with mesh entries, which
// justifies using mesh entries as the deterministic work unit everywhere
// else. Kernels report a FLOPS counter from nominal per-row flop counts so
// runs surface arithmetic throughput, not just wall time.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "finance/bond_model.h"
#include "numeric/integration.h"
#include "numeric/pde_solver.h"
#include "numeric/tridiagonal.h"

namespace {

using namespace vaolib;

// Nominal flops of one Thomas-algorithm row: forward sweep (1 div, 2 mul,
// 2 sub) + back substitution (1 mul, 1 sub, 1 div).
constexpr double kTridiagonalFlopsPerRow = 8.0;

void BM_PdeSolve(benchmark::State& state) {
  finance::Bond bond;
  const finance::BondModelConfig config;
  const auto problem = finance::MakeBondPdeProblem(bond, config);
  const numeric::PdeGrid grid{static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1))};
  for (auto _ : state) {
    auto result = numeric::SolvePde(problem, grid, 0.0575, nullptr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.MeshEntries()));
  // Nominal ~20 flops per mesh entry: row assembly plus the Thomas solve.
  state.counters["FLOPS"] = benchmark::Counter(
      static_cast<double>(grid.MeshEntries()) * 20.0,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PdeSolve)
    ->Args({8, 8})
    ->Args({16, 64})
    ->Args({64, 512})
    ->Args({128, 4096});

void BM_Tridiagonal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  numeric::TridiagonalSystem sys;
  sys.Resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sys.lower[i] = -1.0;
    sys.diag[i] = 4.0;
    sys.upper[i] = -1.0;
    sys.rhs[i] = 1.0;
  }
  std::vector<double> x;
  for (auto _ : state) {
    auto status = numeric::SolveTridiagonal(sys, &x);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["FLOPS"] = benchmark::Counter(
      static_cast<double>(n) * kTridiagonalFlopsPerRow,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Tridiagonal)->Arg(64)->Arg(1024)->Arg(16384);

// The SoA batch kernel across widths K at a fixed PDE-typical system size;
// compare FLOPS against BM_Tridiagonal to read the lockstep/AVX2 gain.
void BM_TridiagonalBatch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 96;
  numeric::TridiagonalBatch batch;
  batch.Resize(k, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < k; ++s) {
      const std::size_t at = batch.IndexOf(i, s);
      batch.lower[at] = -1.0;
      batch.diag[at] = 4.0 + 0.01 * static_cast<double>(s);
      batch.upper[at] = -1.0;
      batch.rhs[at] = 1.0;
    }
  }
  numeric::TridiagonalBatchScratch scratch;
  std::vector<double> solutions;
  numeric::BatchKernelReport report;
  for (auto _ : state) {
    auto status =
        numeric::SolveTridiagonalBatch(batch, &solutions, &report, &scratch);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * k));
  state.counters["FLOPS"] = benchmark::Counter(
      static_cast<double>(n * k) * kTridiagonalFlopsPerRow,
      benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(numeric::TridiagonalBatchUsesAvx2() ? "avx2" : "soa_scalar");
}
BENCHMARK(BM_TridiagonalBatch)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_CompositeTrapezoid(benchmark::State& state) {
  const int panels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result =
        numeric::Integrate([](double x) { return std::sin(x); }, 0.0, 3.14,
                           numeric::IntegrationRule::kTrapezoid, panels, 1,
                           nullptr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (panels + 1));
  // ~2 flops of quadrature accumulation per sample (integrand excluded).
  state.counters["FLOPS"] = benchmark::Counter(
      static_cast<double>(panels + 1) * 2.0,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CompositeTrapezoid)->Arg(16)->Arg(256)->Arg(4096);

void BM_RngGaussian(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Gaussian());
  }
}
BENCHMARK(BM_RngGaussian);

}  // namespace

BENCHMARK_MAIN();
