// Micro M2: google-benchmark kernels for the numeric substrate: PDE solves
// across grid sizes (the unit of VAO iteration cost), tridiagonal solves,
// composite quadrature, and the workload RNG. Confirms that solver wall
// time scales linearly with mesh entries, which justifies using mesh
// entries as the deterministic work unit everywhere else.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "finance/bond_model.h"
#include "numeric/integration.h"
#include "numeric/pde_solver.h"
#include "numeric/tridiagonal.h"

namespace {

using namespace vaolib;

void BM_PdeSolve(benchmark::State& state) {
  finance::Bond bond;
  const finance::BondModelConfig config;
  const auto problem = finance::MakeBondPdeProblem(bond, config);
  const numeric::PdeGrid grid{static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1))};
  for (auto _ : state) {
    auto result = numeric::SolvePde(problem, grid, 0.0575, nullptr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.MeshEntries()));
}
BENCHMARK(BM_PdeSolve)
    ->Args({8, 8})
    ->Args({16, 64})
    ->Args({64, 512})
    ->Args({128, 4096});

void BM_Tridiagonal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  numeric::TridiagonalSystem sys;
  sys.Resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sys.lower[i] = -1.0;
    sys.diag[i] = 4.0;
    sys.upper[i] = -1.0;
    sys.rhs[i] = 1.0;
  }
  std::vector<double> x;
  for (auto _ : state) {
    auto status = numeric::SolveTridiagonal(sys, &x);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Tridiagonal)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CompositeTrapezoid(benchmark::State& state) {
  const int panels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result =
        numeric::Integrate([](double x) { return std::sin(x); }, 0.0, 3.14,
                           numeric::IntegrationRule::kTrapezoid, panels, 1,
                           nullptr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (panels + 1));
}
BENCHMARK(BM_CompositeTrapezoid)->Arg(16)->Arg(256)->Arg(4096);

void BM_RngGaussian(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Gaussian());
  }
}
BENCHMARK(BM_RngGaussian);

}  // namespace

BENCHMARK_MAIN();
