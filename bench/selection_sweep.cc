#include "selection_sweep.h"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "operators/selection.h"
#include "workload/selectivity.h"

namespace vaolib::bench {

int RunSelectionSweep(operators::Comparator cmp, const char* title,
                      const char* json_path) {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context, title);

  // The traditional operator's cost never depends on the predicate: one
  // full-accuracy call per bond (Section 6.1, "runtimes are constant").
  const std::uint64_t trad_units = context.TradTotalUnits();

  TableWriter table(
      title,
      {"selectivity", "constant", "passing", "vao_units", "trad_units",
       "speedup", "vao_est_s", "trad_est_s", "vao_wall_s", "iters"});

  for (const double selectivity :
       {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    // Selectivity here is defined for the sweep's own comparator: for "<"
    // queries the constant yielding selectivity s is the ">" constant for
    // 1-s (the identity the paper points out between Figures 8 and 9).
    const double greater_selectivity =
        cmp == operators::Comparator::kGreaterThan ? selectivity
                                                   : 1.0 - selectivity;
    const auto constant = workload::ConstantForGreaterSelectivity(
        context.converged_values, greater_selectivity);
    if (!constant.ok()) {
      std::fprintf(stderr, "constant selection failed: %s\n",
                   constant.status().ToString().c_str());
      return 1;
    }

    const operators::SelectionVao vao(cmp, *constant);
    WorkMeter vao_meter;
    Stopwatch wall;
    std::size_t passing = 0;
    std::uint64_t iterations = 0;
    for (const auto& row : context.rows) {
      const auto outcome = vao.Evaluate(*context.function, row, &vao_meter);
      if (!outcome.ok()) {
        std::fprintf(stderr, "selection VAO failed: %s\n",
                     outcome.status().ToString().c_str());
        return 1;
      }
      if (outcome->passes) ++passing;
      iterations += outcome->stats.iterations;
    }
    const double vao_wall = wall.ElapsedSeconds();
    const std::uint64_t vao_units = vao_meter.Total();

    table.AddRow({TableWriter::Cell(selectivity, 2),
                  TableWriter::Cell(*constant, 2),
                  TableWriter::Cell(static_cast<std::uint64_t>(passing)),
                  TableWriter::Cell(vao_units),
                  TableWriter::Cell(trad_units),
                  TableWriter::Cell(static_cast<double>(trad_units) /
                                        static_cast<double>(vao_units),
                                    1),
                  TableWriter::Cell(context.EstSeconds(vao_units), 4),
                  TableWriter::Cell(context.EstSeconds(trad_units), 4),
                  TableWriter::Cell(vao_wall, 4),
                  TableWriter::Cell(iterations)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  if (json_path != nullptr) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    table.RenderJson(json);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}

}  // namespace vaolib::bench
