// Figure 10: selection VAO vs traditional operator on synthetic data
// designed to stress the VAO: model results drawn from a Gaussian centred
// exactly on the predicate constant, with the standard deviation swept.
// Paper shape: at stddev 0 every result equals the constant and the VAO is
// MORE expensive than the traditional operator (full convergence plus
// intermediate-iteration overhead); the VAO crosses below traditional by
// stddev ~$0.05 and keeps dropping. Real bond data has stddev ~$7.78, far
// into the VAO-favourable regime.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "operators/selection.h"
#include "workload/shift_scheme.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Figure 10: selection VAO vs traditional, Gaussian results "
                "centred on the constant");

  // The constant sits at the distribution mean; the paper centres the
  // Gaussian on the predicate constant.
  const double constant = 100.0;
  const std::uint64_t trad_units = context.TradTotalUnits();
  const operators::SelectionVao vao(operators::Comparator::kGreaterThan,
                                    constant);

  TableWriter table("Figure 10 sweep",
                    {"stddev", "vao_units", "trad_units", "vao/trad",
                     "vao_est_s", "trad_est_s", "vao_wall_s", "iters"});

  Rng rng(BenchSeed() + 10);
  for (const double stddev : {0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0,
                              5.0}) {
    workload::TargetDistribution target;
    target.shape = workload::TargetShape::kGaussian;
    target.mean = constant;
    target.stddev = stddev;
    const auto deltas = workload::ComputeShiftDeltas(
        context.converged_values, target, &rng);
    if (!deltas.ok()) {
      std::fprintf(stderr, "%s\n", deltas.status().ToString().c_str());
      return 1;
    }

    WorkMeter meter;
    Stopwatch wall;
    std::uint64_t iterations = 0;
    for (std::size_t i = 0; i < context.rows.size(); ++i) {
      auto object = workload::InvokeShifted(*context.function,
                                            context.rows[i], (*deltas)[i],
                                            &meter);
      if (!object.ok()) {
        std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
        return 1;
      }
      const auto outcome = vao.Evaluate(object->get());
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
        return 1;
      }
      iterations += outcome->stats.iterations;
    }

    const std::uint64_t vao_units = meter.Total();
    table.AddRow({TableWriter::Cell(stddev, 2),
                  TableWriter::Cell(vao_units),
                  TableWriter::Cell(trad_units),
                  TableWriter::Cell(static_cast<double>(vao_units) /
                                        static_cast<double>(trad_units),
                                    2),
                  TableWriter::Cell(context.EstSeconds(vao_units), 4),
                  TableWriter::Cell(context.EstSeconds(trad_units), 4),
                  TableWriter::Cell(wall.ElapsedSeconds(), 4),
                  TableWriter::Cell(iterations)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
