// Ablation A2: the Richardson extrapolation safety factor (Section 4.1).
// The paper multiplies the fitted error terms by 3 because the fitted K1/K2
// coefficients wobble by 2-3x across step sizes. This ablation sweeps the
// factor over {1, 1.5, 2, 3, 5} and reports (a) empirical soundness -- the
// fraction of intermediate bound states that contain the converged answer
// -- and (b) the work to converge. Expected: small factors are cheaper but
// risk unsound intermediate bounds; 3 buys soundness at modest extra cost.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"
#include "vao/pde_result_object.h"
#include "finance/bond_model.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context, "Ablation A2: extrapolation safety factor sweep");

  TableWriter table("Safety-factor ablation",
                    {"factor", "bound_states", "violations", "sound_pct",
                     "converge_units", "mean_iters", "mean_final_width"});

  for (const double factor : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    finance::BondModelConfig config = context.config;
    config.pde.safety_factor = factor;
    const finance::BondPricingFunction function(context.bonds, config);

    std::uint64_t states = 0, violations = 0, total_iters = 0;
    double total_width = 0.0;
    WorkMeter meter;
    for (std::size_t i = 0; i < context.rows.size(); ++i) {
      const double truth = context.converged_values[i];
      auto object = function.Invoke(context.rows[i], &meter);
      if (!object.ok()) {
        std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
        return 1;
      }
      while (!(*object)->AtStoppingCondition()) {
        ++states;
        if (!(*object)->bounds().Contains(truth)) ++violations;
        const auto status = (*object)->Iterate();
        if (!status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 1;
        }
        ++total_iters;
      }
      ++states;
      if (!(*object)->bounds().Contains(truth)) ++violations;
      total_width += (*object)->bounds().Width();
    }

    const double n = static_cast<double>(context.rows.size());
    table.AddRow(
        {TableWriter::Cell(factor, 1), TableWriter::Cell(states),
         TableWriter::Cell(violations),
         TableWriter::Cell(
             100.0 * (1.0 - static_cast<double>(violations) /
                                static_cast<double>(states)),
             3),
         TableWriter::Cell(meter.Total()),
         TableWriter::Cell(static_cast<double>(total_iters) / n, 1),
         TableWriter::Cell(total_width / n, 4)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
