// Micro M1: validates the Section 3.2 / Section 4 cost model empirically.
//  * PDE solvers: sum of iteration costs ~= 2x the traditional one-shot cost
//    at the same accuracy (work doubles per iteration).
//  * Integrators and root solvers: VAO-interface cost ~= 1x the traditional
//    cost (samples are reused across refinements).
// Also reports the get/store-state and chooseIter overhead shares, which
// the paper asserts are negligible.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>

#include "bench_util.h"
#include "common/table_writer.h"
#include "vao/black_box.h"
#include "vao/integral_result_object.h"
#include "vao/root_result_object.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context, "Micro M1: cost-model validation");

  TableWriter table("VAO-vs-traditional cost ratios per function class",
                    {"function", "vao_units", "trad_units", "ratio",
                     "state_overhead_pct"});

  // --- PDE bond models: expect ratio ~= 2. ----------------------------------
  {
    WorkMeter meter;
    std::uint64_t trad_total = 0;
    const std::size_t sample =
        std::min<std::size_t>(context.rows.size(), 25);
    for (std::size_t i = 0; i < sample; ++i) {
      auto object = context.function->Invoke(context.rows[i], &meter);
      if (!object.ok()) return 1;
      if (!vao::ConvergeToMinWidth(object->get()).ok()) return 1;
      trad_total += (*object)->traditional_cost();
    }
    table.AddRow(
        {"PDE bond model", TableWriter::Cell(meter.ExecUnits()),
         TableWriter::Cell(trad_total),
         TableWriter::Cell(static_cast<double>(meter.ExecUnits()) /
                               static_cast<double>(trad_total),
                           2),
         TableWriter::Cell(100.0 *
                               static_cast<double>(
                                   meter.Count(WorkKind::kGetState) +
                                   meter.Count(WorkKind::kStoreState)) /
                               static_cast<double>(meter.Total()),
                           4)});
  }

  // --- Numerical integration: expect ratio ~= 1. ----------------------------
  {
    WorkMeter meter;
    vao::IntegralProblem problem;
    problem.integrand = [](double x) { return std::sin(x) * std::exp(-x); };
    problem.a = 0.0;
    problem.b = std::numbers::pi;
    vao::IntegralResultOptions options;
    options.min_width = 1e-9;
    options.integral.work_per_eval = 1000;  // model an expensive integrand
    auto object = vao::IntegralResultObject::Create(problem, options, &meter);
    if (!object.ok()) return 1;
    if (!vao::ConvergeToMinWidth(object->get()).ok()) return 1;
    table.AddRow(
        {"numerical integration", TableWriter::Cell(meter.ExecUnits()),
         TableWriter::Cell((*object)->traditional_cost()),
         TableWriter::Cell(
             static_cast<double>(meter.ExecUnits()) /
                 static_cast<double>((*object)->traditional_cost()),
             2),
         TableWriter::Cell(100.0 *
                               static_cast<double>(
                                   meter.Count(WorkKind::kGetState) +
                                   meter.Count(WorkKind::kStoreState)) /
                               static_cast<double>(meter.Total()),
                           4)});
  }

  // --- Root solving: expect ratio ~= 1. --------------------------------------
  {
    WorkMeter meter;
    vao::RootProblem problem;
    problem.f = [](double x) { return std::cos(x) - x; };
    problem.lo = 0.0;
    problem.hi = 1.5;
    vao::RootResultOptions options;
    options.min_width = 1e-10;
    options.finder.work_per_eval = 1000;
    auto object = vao::RootResultObject::Create(problem, options, &meter);
    if (!object.ok()) return 1;
    if (!vao::ConvergeToMinWidth(object->get()).ok()) return 1;
    table.AddRow(
        {"bisection root solve", TableWriter::Cell(meter.ExecUnits()),
         TableWriter::Cell((*object)->traditional_cost()),
         TableWriter::Cell(
             static_cast<double>(meter.ExecUnits()) /
                 static_cast<double>((*object)->traditional_cost()),
             2),
         TableWriter::Cell(100.0 *
                               static_cast<double>(
                                   meter.Count(WorkKind::kGetState) +
                                   meter.Count(WorkKind::kStoreState)) /
                               static_cast<double>(meter.Total()),
                           4)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
