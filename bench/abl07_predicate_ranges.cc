// Ablation A7: CASPER-style predicate result ranges in front of the
// selection VAO (the integration named as future work in Section 2).
// A continuous "price > c" query over a random-walking rate stream: bond
// prices are monotone in the rate, so every cleanly decided (bond, rate)
// evaluation induces a half-line of future free answers. Arms: plain
// selection VAO per tick vs RangeCachedSelection; the traditional black box
// is shown for scale.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"
#include "finance/bond.h"
#include "operators/predicate_range_cache.h"
#include "operators/selection.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Ablation A7: predicate result ranges (CASPER integration) "
                "over a random-walk rate stream");

  const auto ticks = finance::SynthesizeRateSeries(BenchSeed() + 700, 40,
                                                   0.0575, 0.0575, 0.0008,
                                                   0.05);
  const double constant = 100.0;
  const operators::SelectionVao plain(operators::Comparator::kGreaterThan,
                                      constant);
  operators::RangeCachedSelection cached(
      operators::Comparator::kGreaterThan, constant, context.bonds.size(),
      operators::Monotonicity::kDecreasing);

  TableWriter table("Predicate-range ablation (cumulative over ticks)",
                    {"tick", "rate", "plain_units", "cached_units",
                     "saving", "range_hits", "free_pct"});

  WorkMeter plain_meter, cached_meter;
  std::uint64_t evaluations = 0;
  int tick_index = 0;
  for (const auto& tick : ticks) {
    for (std::size_t key = 0; key < context.bonds.size(); ++key) {
      ++evaluations;
      const auto a = plain.Evaluate(
          *context.function, context.function->ArgsFor(tick.rate, key),
          &plain_meter);
      const auto b =
          cached.Evaluate(*context.function, tick.rate, key, &cached_meter);
      if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "selection failed\n");
        return 1;
      }
      if (!a->resolved_as_equal && a->passes != b->passes) {
        std::fprintf(stderr, "MISMATCH bond %zu tick %d\n", key, tick_index);
        return 1;
      }
    }
    ++tick_index;
    if (tick_index % 5 == 0 || tick_index == 1) {
      table.AddRow(
          {TableWriter::Cell(tick_index), TableWriter::Cell(tick.rate, 4),
           TableWriter::Cell(plain_meter.Total()),
           TableWriter::Cell(cached_meter.Total()),
           TableWriter::Cell(static_cast<double>(plain_meter.Total()) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     cached_meter.Total(), 1)),
                             2),
           TableWriter::Cell(cached.cache().hits()),
           TableWriter::Cell(100.0 *
                                 static_cast<double>(cached.cache().hits()) /
                                 static_cast<double>(evaluations),
                             1)});
    }
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
