// Figure 8: runtimes for a selection query with a greater-than predicate,
// with the constant swept to yield selectivities 0.1 through 0.9.
// Paper shape: VAO beats the traditional operator by ~2 orders of magnitude
// at every selectivity, and the VAO series is NOT monotone in selectivity
// (cost tracks how many results lie near the constant, not how many pass).

#include "selection_sweep.h"

int main() {
  return vaolib::bench::RunSelectionSweep(
      vaolib::operators::Comparator::kGreaterThan,
      "Figure 8: selection model(rate, bond) > c, selectivity sweep",
      "BENCH_selection_gt.json");
}
