// Figure 12: SUM aggregate with hot-cold weights. 10% of bonds form the hot
// set; the fraction of total weight (= 500, the cardinality) allocated to
// it sweeps from 10% (uniform) to 100%. Precision constraint epsilon =
// 500 * $.01 = $5, the error the traditional operator itself carries.
// Paper shape: traditional wins at low skew (the VAO pays intermediate-
// iteration overhead with nothing to optimize); the VAO crosses below and
// reaches >4x faster as weight concentrates on the hot set.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "operators/sum_ave.h"
#include "workload/hot_cold.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Figure 12: SUM aggregate, hot-cold weight share sweep");

  const std::size_t n = context.rows.size();
  const double epsilon = 0.01 * static_cast<double>(n);
  const std::uint64_t trad_units = context.TradTotalUnits();

  TableWriter table("Figure 12 sweep",
                    {"hot_share", "vao_units", "trad_units", "vao/trad",
                     "vao_est_s", "trad_est_s", "vao_wall_s", "iters",
                     "sum_mid"});

  Rng rng(BenchSeed() + 12);
  for (const double share : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                             1.0}) {
    workload::HotColdSpec spec;
    spec.count = n;
    spec.hot_fraction = 0.10;
    spec.hot_weight_share = share;
    spec.total_weight = static_cast<double>(n);
    const auto weights = workload::HotColdWeights(spec, &rng);
    if (!weights.ok()) {
      std::fprintf(stderr, "%s\n", weights.status().ToString().c_str());
      return 1;
    }

    WorkMeter meter;
    Stopwatch wall;
    std::vector<vao::ResultObjectPtr> owned;
    std::vector<vao::ResultObject*> objects;
    for (const auto& row : context.rows) {
      auto object = context.function->Invoke(row, &meter);
      if (!object.ok()) {
        std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
        return 1;
      }
      objects.push_back(object->get());
      owned.push_back(std::move(object).value());
    }

    operators::SumAveOptions options;
    options.epsilon = epsilon;
    options.meter = &meter;
    const operators::SumAveVao vao(options);
    const auto outcome = vao.Evaluate(objects, *weights);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }

    const std::uint64_t vao_units = meter.Total();
    table.AddRow({TableWriter::Cell(share, 2),
                  TableWriter::Cell(vao_units),
                  TableWriter::Cell(trad_units),
                  TableWriter::Cell(static_cast<double>(vao_units) /
                                        static_cast<double>(trad_units),
                                    2),
                  TableWriter::Cell(context.EstSeconds(vao_units), 4),
                  TableWriter::Cell(context.EstSeconds(trad_units), 4),
                  TableWriter::Cell(wall.ElapsedSeconds(), 4),
                  TableWriter::Cell(outcome->stats.iterations),
                  TableWriter::Cell(outcome->sum_bounds.Mid(), 2)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
