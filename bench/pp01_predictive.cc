// pp01: predictive planning -- does closing the estimator loop pay?
//
// All arms run over synthetic result objects wrapped in deterministic
// lying-estimate chaos (testing/chaos_result_object.h): each row's claimed
// estCPU is off by a planted factor, while the work actually charged to
// the meter is the honest cost. A shared engine::CostHistory carries the
// learned actual/claimed ratios across ticks, exactly as the
// MultiQueryExecutor and the server dispatcher wire it for standing
// queries.
//
// Gated arms (FAIL to stderr, exit 1):
//   calibrated -- a SUM over rows whose claims are off by factors in
//     [1/8, 8] runs for 4 ticks (fresh objects each tick, same row ids)
//     under kCalibratedGreedy. By the final tick the corrected
//     decision-level cost predictions must cut the MAE by >= 30% vs the
//     raw estimates (which is what kGreedy plans with).
//   sentinel -- 8 correlation groups x 8 members where the claimed costs
//     invert the real ones (the really-cheap groups claim expensive and
//     vice versa). kSentinelGreedy probes each group, re-ranks, and must
//     converge the same SUM to the same epsilon with >= 15% less total
//     work than kGreedy, in a single cold tick (no history).
//
// Informational arms (no gate):
//   fig10-shaped severity sweep: tick-3 MAE ratio vs lie factor 1..8;
//   fig11-shaped MAX stress: per-strategy work on the lying MAX workload.
//
// Output: the standard text table plus BENCH_predictive.json.
// Size knobs: VAOLIB_BENCH_BONDS (row count, default 48),
// VAOLIB_BENCH_SEED (default 1994).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_writer.h"
#include "common/work_meter.h"
#include "engine/cost_history.h"
#include "operators/min_max.h"
#include "operators/sum_ave.h"
#include "testing/chaos_result_object.h"
#include "vao/synthetic_result_object.h"

namespace {

using vaolib::Rng;
using vaolib::TableWriter;
using vaolib::WorkMeter;
using vaolib::engine::CostHistory;
using vaolib::testing::ChaosResultObject;
using vaolib::testing::FaultKind;
using vaolib::testing::FaultPlan;
using vaolib::vao::SyntheticResultObject;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const unsigned long long parsed = std::strtoull(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// One lying row: honest synthetic refinement underneath, claimed estCPU
/// off by `cost_factor`.
vaolib::vao::ResultObjectPtr MakeLyingRow(double true_value,
                                          std::uint64_t real_cost,
                                          double cost_factor,
                                          const std::string& correlation_key,
                                          WorkMeter* meter) {
  SyntheticResultObject::Config config;
  config.true_value = true_value;
  config.initial_half_width = 8.0;
  config.shrink = 0.6;
  config.min_width = 0.01;
  config.cost_per_iteration = real_cost;
  config.correlation_key = correlation_key;
  config.meter = meter;
  FaultPlan plan;
  plan.kind = FaultKind::kLyingEstimates;
  plan.cost_factor = cost_factor;
  return std::make_unique<ChaosResultObject>(
      std::make_unique<SyntheticResultObject>(config), plan);
}

std::vector<vaolib::vao::ResultObject*> RawPointers(
    const std::vector<vaolib::vao::ResultObjectPtr>& owned) {
  std::vector<vaolib::vao::ResultObject*> objects;
  objects.reserve(owned.size());
  for (const auto& object : owned) objects.push_back(object.get());
  return objects;
}

struct TickAudit {
  std::uint64_t samples = 0;
  std::uint64_t corrected_decisions = 0;
  double raw_mae = 0.0;
  double corrected_mae = 0.0;
  std::uint64_t work = 0;
  bool ok = false;
};

/// Runs `ticks` SUM evaluations over fresh lying rows (factors drawn from
/// `rng`, spread log-uniform in [1/max_lie, max_lie]) sharing one
/// CostHistory, and returns the final tick's prediction audit.
TickAudit RunCalibratedTicks(std::size_t rows, std::size_t ticks,
                             double max_lie,
                             vaolib::operators::StrategyKind strategy,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> factors(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const double magnitude = rng.Uniform(2.0, max_lie > 2.0 ? max_lie : 2.0);
    factors[i] = i % 2 == 0 ? magnitude : 1.0 / magnitude;
  }
  CostHistory history;
  TickAudit audit;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    WorkMeter meter;
    std::vector<vaolib::vao::ResultObjectPtr> owned;
    owned.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      owned.push_back(MakeLyingRow(static_cast<double>(i) * 0.25, 16,
                                   factors[i], "", &meter));
    }
    history.BeginTick();
    vaolib::operators::SumAveOptions options;
    options.epsilon = 0.05 * static_cast<double>(rows);
    options.strategy = strategy;
    options.feedback = &history;
    options.meter = &meter;
    const vaolib::operators::SumAveVao vao(options);
    const auto outcome =
        vao.Evaluate(RawPointers(owned), std::vector<double>(rows, 1.0));
    if (!outcome.ok()) {
      std::fprintf(stderr, "FAIL: calibrated arm tick %zu: %s\n", tick,
                   outcome.status().ToString().c_str());
      return audit;
    }
    const auto& stats = outcome->stats;
    audit.samples = stats.cost_err_samples;
    audit.corrected_decisions = stats.corrected_decisions;
    audit.raw_mae =
        stats.cost_err_samples > 0
            ? stats.raw_cost_abs_err /
                  static_cast<double>(stats.cost_err_samples)
            : 0.0;
    audit.corrected_mae =
        stats.cost_err_samples > 0
            ? stats.corrected_cost_abs_err /
                  static_cast<double>(stats.cost_err_samples)
            : 0.0;
    audit.work = meter.Total();
  }
  audit.ok = audit.samples > 0;
  return audit;
}

/// The sentinel workload: `groups` correlation groups whose claimed costs
/// invert the real ones. Returns total work to converge a SUM to epsilon.
std::uint64_t RunSentinelWorkload(std::size_t groups, std::size_t members,
                                  vaolib::operators::StrategyKind strategy,
                                  bool* converged) {
  WorkMeter meter;
  std::vector<vaolib::vao::ResultObjectPtr> owned;
  owned.reserve(groups * members);
  for (std::size_t g = 0; g < groups; ++g) {
    // Even groups are really cheap (4/iter) but claim 8x; odd groups are
    // really expensive (64/iter) but claim 1/8th of it. Ranking by the
    // claims is exactly backwards.
    const bool cheap = g % 2 == 0;
    const std::uint64_t real_cost = cheap ? 4 : 64;
    const double cost_factor = cheap ? 8.0 : 1.0 / 8.0;
    for (std::size_t m = 0; m < members; ++m) {
      owned.push_back(MakeLyingRow(
          static_cast<double>(g) + static_cast<double>(m) * 0.1, real_cost,
          cost_factor, "g" + std::to_string(g), &meter));
    }
  }
  vaolib::operators::SumAveOptions options;
  // Loose enough that roughly half the available shrink suffices: the
  // really-cheap rows alone can satisfy it, so the planner's ranking is
  // what decides the bill. (At a tight epsilon every row must converge
  // fully and ordering cannot save work.)
  options.epsilon =
      0.55 * static_cast<double>(groups * members) * 16.0;
  options.strategy = strategy;
  options.sentinel_probes = 2;
  options.meter = &meter;
  const vaolib::operators::SumAveVao vao(options);
  const auto outcome = vao.Evaluate(
      RawPointers(owned), std::vector<double>(groups * members, 1.0));
  if (!outcome.ok()) {
    std::fprintf(stderr, "FAIL: sentinel arm: %s\n",
                 outcome.status().ToString().c_str());
    *converged = false;
    return 0;
  }
  *converged = outcome->converged;
  return meter.Total();
}

/// fig11-shaped: MAX over the lying workload, per strategy.
std::uint64_t RunMaxStress(std::size_t rows,
                           vaolib::operators::StrategyKind strategy,
                           std::uint64_t seed) {
  Rng rng(seed);
  WorkMeter meter;
  std::vector<vaolib::vao::ResultObjectPtr> owned;
  owned.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const double magnitude = rng.Uniform(2.0, 8.0);
    owned.push_back(MakeLyingRow(
        static_cast<double>(i), i % 3 == 0 ? 64 : 8,
        i % 2 == 0 ? magnitude : 1.0 / magnitude,
        "m" + std::to_string(i % 4), &meter));
  }
  vaolib::operators::MinMaxOptions options;
  options.kind = vaolib::operators::ExtremeKind::kMax;
  options.epsilon = 0.05;
  options.strategy = strategy;
  options.meter = &meter;
  const vaolib::operators::MinMaxVao vao(options);
  const auto outcome = vao.Evaluate(RawPointers(owned));
  if (!outcome.ok()) return 0;
  return meter.Total();
}

}  // namespace

int main() {
  const std::size_t rows = EnvSize("VAOLIB_BENCH_BONDS", 48);
  const std::uint64_t seed = EnvSize("VAOLIB_BENCH_SEED", 1994);
  constexpr std::size_t kTicks = 4;
  std::cout << "pp01: predictive planning (rows=" << rows << " seed=" << seed
            << " ticks=" << kTicks << ")\n\n";

  TableWriter table("pp01_predictive",
                    {"arm", "strategy", "samples", "raw_mae", "corrected_mae",
                     "mae_ratio", "work_units", "gate"});
  bool ok = true;

  // ---- Gate 1: calibrated corrections cut the cost-prediction MAE. -------
  {
    const TickAudit calibrated = RunCalibratedTicks(
        rows, kTicks, 8.0, vaolib::operators::StrategyKind::kCalibratedGreedy,
        seed);
    const TickAudit greedy = RunCalibratedTicks(
        rows, kTicks, 8.0, vaolib::operators::StrategyKind::kGreedy, seed);
    if (!calibrated.ok || !greedy.ok) {
      std::fprintf(stderr, "FAIL: calibrated arm produced no audit\n");
      ok = false;
    }
    const double ratio = calibrated.raw_mae > 0.0
                             ? calibrated.corrected_mae / calibrated.raw_mae
                             : 1.0;
    const bool gate = calibrated.ok && ratio <= 0.7 &&
                      calibrated.corrected_decisions > 0;
    if (!gate) {
      std::fprintf(stderr,
                   "FAIL: calibrated MAE ratio %.3f > 0.70 after %zu ticks "
                   "(raw %.3f corrected %.3f, %llu corrected decisions)\n",
                   ratio, kTicks, calibrated.raw_mae, calibrated.corrected_mae,
                   static_cast<unsigned long long>(
                       calibrated.corrected_decisions));
      ok = false;
    }
    table.AddRow({"calibrated", "calibrated_greedy",
                  TableWriter::Cell(calibrated.samples),
                  TableWriter::Cell(calibrated.raw_mae, 3),
                  TableWriter::Cell(calibrated.corrected_mae, 3),
                  TableWriter::Cell(ratio, 3),
                  TableWriter::Cell(calibrated.work),
                  gate ? "PASS<=0.70" : "FAIL"});
    // kGreedy plans with the raw estimates: its corrected sums equal the
    // raw sums by construction, giving the comparison baseline.
    table.AddRow({"calibrated", "greedy", TableWriter::Cell(greedy.samples),
                  TableWriter::Cell(greedy.raw_mae, 3),
                  TableWriter::Cell(greedy.corrected_mae, 3),
                  TableWriter::Cell(1.0, 3), TableWriter::Cell(greedy.work),
                  "baseline"});
  }

  // ---- Gate 2: sentinel probing converges with less work. ----------------
  {
    bool greedy_converged = false;
    bool sentinel_converged = false;
    const std::uint64_t greedy_work = RunSentinelWorkload(
        8, 8, vaolib::operators::StrategyKind::kGreedy, &greedy_converged);
    const std::uint64_t sentinel_work = RunSentinelWorkload(
        8, 8, vaolib::operators::StrategyKind::kSentinelGreedy,
        &sentinel_converged);
    const double ratio =
        greedy_work > 0 ? static_cast<double>(sentinel_work) /
                              static_cast<double>(greedy_work)
                        : 1.0;
    const bool gate = greedy_converged && sentinel_converged &&
                      greedy_work > 0 && ratio <= 0.85;
    if (!gate) {
      std::fprintf(stderr,
                   "FAIL: sentinel work ratio %.3f > 0.85 (greedy %llu, "
                   "sentinel %llu, converged %d/%d)\n",
                   ratio, static_cast<unsigned long long>(greedy_work),
                   static_cast<unsigned long long>(sentinel_work),
                   greedy_converged, sentinel_converged);
      ok = false;
    }
    table.AddRow({"sentinel", "greedy", "-", "-", "-", TableWriter::Cell(1.0, 3),
                  TableWriter::Cell(greedy_work), "baseline"});
    table.AddRow({"sentinel", "sentinel_greedy", "-", "-", "-",
                  TableWriter::Cell(ratio, 3), TableWriter::Cell(sentinel_work),
                  gate ? "PASS<=0.85" : "FAIL"});
  }

  // ---- Informational: fig10-shaped severity sweep. -----------------------
  for (const double lie : {2.0, 4.0, 8.0}) {
    const TickAudit audit = RunCalibratedTicks(
        rows, kTicks, lie, vaolib::operators::StrategyKind::kCalibratedGreedy,
        seed + static_cast<std::uint64_t>(lie));
    const double ratio =
        audit.raw_mae > 0.0 ? audit.corrected_mae / audit.raw_mae : 1.0;
    table.AddRow({"severity x" + std::to_string(static_cast<int>(lie)),
                  "calibrated_greedy", TableWriter::Cell(audit.samples),
                  TableWriter::Cell(audit.raw_mae, 3),
                  TableWriter::Cell(audit.corrected_mae, 3),
                  TableWriter::Cell(ratio, 3), TableWriter::Cell(audit.work),
                  "info"});
  }

  // ---- Informational: fig11-shaped MAX stress. ---------------------------
  for (const auto strategy : {vaolib::operators::StrategyKind::kGreedy,
                              vaolib::operators::StrategyKind::kSentinelGreedy}) {
    const std::uint64_t work = RunMaxStress(rows, strategy, seed);
    table.AddRow({"max_stress", vaolib::operators::StrategyKindName(strategy),
                  "-", "-", "-", "-", TableWriter::Cell(work), "info"});
  }

  table.RenderText(std::cout);
  std::ofstream json("BENCH_predictive.json");
  table.RenderJson(json);
  std::cout << "\nwrote BENCH_predictive.json\n";
  return ok ? 0 : 1;
}
