// Multi-query scheduling experiment: one standing-query set (two threshold
// selections, MAX, TOP-2, TOP-4) over the shared bond portfolio,
// executed four ways at equal budgets:
//   * WorkScheduler kGreedyGlobal / kFairShare / kDeadline over shared
//     result objects (the PR's scheduled path),
//   * round-robin stepping of the same shared tasks (ordering baseline),
//   * round-robin over per-query PRIVATE objects (the pre-scheduler
//     "each query executes alone" baseline).
// Hard failures (exit 1), mirroring par01's determinism checks:
//   * any unbudgeted arm that does not converge every query,
//   * per-task spends that do not sum exactly to the run's meter delta,
//   * kGreedyGlobal needing more than 75% of the per-query baseline's
//     total work to converge the whole set,
//   * kDeadline missing a deadline that it set itself, or round-robin
//     missing none of them (the deadlines are chosen from an EDF probe run,
//     so EDF meets all of them by deterministic replay while interleaved
//     stepping finishes early-deadline queries far too late).
//
// Output: the standard text table plus BENCH_scheduler.json (RenderJson).

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table_writer.h"
#include "common/work_meter.h"
#include "engine/scheduler.h"
#include "operators/iteration_task.h"
#include "vao/parallel.h"
#include "vao/result_object.h"

using namespace vaolib;
using namespace vaolib::bench;

namespace {

constexpr std::size_t kQueries = 5;

// A standing-query set with real cross-query overlap: two threshold
// selections, MAX, TOP-2 and TOP-4 -- the three extreme-value queries all
// deep-refine the same top-of-portfolio objects, which per-query execution
// pays for from scratch each time. All bookkeeping charges `meter` so the
// scheduler's accounting invariant (sum of spends == meter delta) covers
// every unit.
bool MakeTasks(const std::vector<vao::ResultObject*>& objects,
               WorkMeter* meter,
               std::vector<std::unique_ptr<operators::IterationTask>>* tasks) {
  auto fail = [](const char* who, const Status& status) {
    std::fprintf(stderr, "building %s task failed: %s\n", who,
                 status.message().c_str());
    return false;
  };

  auto selection = [&](double constant) {
    return operators::MultiRowDecisionTask::Create(
        objects, "sch01_selection",
        [constant](const Bounds& b) { return b.Contains(constant); },
        /*threads=*/1);
  };
  auto sel_100 = selection(100.0);
  if (!sel_100.ok()) return fail("sel>100", sel_100.status());
  auto sel_110 = selection(110.0);
  if (!sel_110.ok()) return fail("sel>110", sel_110.status());

  operators::MinMaxOptions max_options;
  max_options.kind = operators::ExtremeKind::kMax;
  max_options.epsilon = 0.01;
  max_options.meter = meter;
  auto max_task = operators::MinMaxIterationTask::Create(max_options, objects);
  if (!max_task.ok()) return fail("max", max_task.status());

  auto top_k = [&](std::size_t k) {
    operators::TopKOptions top_options;
    top_options.k = k;
    top_options.epsilon = 0.01;
    top_options.meter = meter;
    return operators::TopKIterationTask::Create(top_options, objects);
  };
  auto top2_task = top_k(2);
  if (!top2_task.ok()) return fail("top2", top2_task.status());
  auto top4_task = top_k(4);
  if (!top4_task.ok()) return fail("top4", top4_task.status());

  tasks->clear();
  tasks->push_back(std::move(*sel_100));
  tasks->push_back(std::move(*sel_110));
  tasks->push_back(std::move(*max_task));
  tasks->push_back(std::move(*top2_task));
  tasks->push_back(std::move(*top4_task));
  return true;
}

struct ArmResult {
  std::uint64_t work_units = 0;  ///< whole-arm meter total (incl. creation)
  std::uint64_t run_spent = 0;   ///< stepping work only (the budget clock)
  int converged = 0;
  int starved = 0;
  int missed_deadlines = 0;
  std::vector<std::uint64_t> finished_at;  ///< run-clock completion times
};

// One scheduled arm: shared objects, one task per query, WorkScheduler run.
bool RunScheduled(const BenchContext& context, engine::SchedulerPolicy policy,
                  std::uint64_t budget,
                  const std::vector<std::uint64_t>& deadlines,
                  ArmResult* arm) {
  WorkMeter meter;
  auto invoked = vao::InvokeAll(*context.function, context.rows, /*threads=*/1,
                                &meter);
  if (!invoked.ok()) {
    std::fprintf(stderr, "InvokeAll failed: %s\n",
                 invoked.status().message().c_str());
    return false;
  }
  std::vector<vao::ResultObject*> objects;
  objects.reserve(invoked->size());
  for (const auto& object : *invoked) objects.push_back(object.get());

  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  if (!MakeTasks(objects, &meter, &tasks)) return false;

  std::vector<engine::WorkScheduler::Entry> entries(tasks.size());
  for (std::size_t q = 0; q < tasks.size(); ++q) {
    entries[q].task = tasks[q].get();
    if (!deadlines.empty()) entries[q].schedule.deadline = deadlines[q];
  }

  const std::uint64_t before_run = meter.Total();
  engine::WorkScheduler scheduler({policy, budget});
  auto stats = scheduler.Run(entries, &meter);
  if (!stats.ok()) {
    std::fprintf(stderr, "scheduler run (%s) failed: %s\n",
                 engine::SchedulerPolicyName(policy),
                 stats.status().message().c_str());
    return false;
  }

  arm->work_units = meter.Total();
  arm->run_spent = meter.Total() - before_run;
  arm->finished_at.assign(tasks.size(), 0);
  std::uint64_t accounted = 0;
  for (std::size_t q = 0; q < stats->size(); ++q) {
    const engine::TaskScheduleStats& s = (*stats)[q];
    accounted += s.spent;
    if (std::getenv("VAOLIB_SCH01_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "  [%s] task %zu: spent=%llu steps=%llu exec=%llu "
                   "choose=%llu get=%llu store=%llu\n",
                   engine::SchedulerPolicyName(policy), q,
                   static_cast<unsigned long long>(s.spent),
                   static_cast<unsigned long long>(s.steps),
                   static_cast<unsigned long long>(s.work.exec),
                   static_cast<unsigned long long>(s.work.choose_iter),
                   static_cast<unsigned long long>(s.work.get_state),
                   static_cast<unsigned long long>(s.work.store_state));
    }
    if (s.converged) ++arm->converged;
    if (s.starved) ++arm->starved;
    if (s.missed_deadline) ++arm->missed_deadlines;
    arm->finished_at[q] = s.finished_at;
  }
  if (accounted != arm->run_spent) {
    std::fprintf(stderr,
                 "FAIL: %s per-task spends sum to %llu but the run charged "
                 "%llu units\n",
                 engine::SchedulerPolicyName(policy),
                 static_cast<unsigned long long>(accounted),
                 static_cast<unsigned long long>(arm->run_spent));
    return false;
  }
  return true;
}

// Steps every unfinished task once per cycle until all are done or the
// budget runs out. `shared` = one portfolio for all queries; otherwise each
// query invokes its own private copy (the pre-scheduler execution model,
// which pays object creation once per query).
bool RunRoundRobin(const BenchContext& context, bool shared,
                   std::uint64_t budget,
                   const std::vector<std::uint64_t>& deadlines,
                   ArmResult* arm) {
  WorkMeter meter;
  std::vector<vao::ResultObjectPtr> storage;
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  const std::size_t copies = shared ? 1 : kQueries;
  for (std::size_t c = 0; c < copies; ++c) {
    auto invoked = vao::InvokeAll(*context.function, context.rows,
                                  /*threads=*/1, &meter);
    if (!invoked.ok()) {
      std::fprintf(stderr, "InvokeAll failed: %s\n",
                   invoked.status().message().c_str());
      return false;
    }
    std::vector<vao::ResultObject*> objects;
    objects.reserve(invoked->size());
    for (auto& object : *invoked) {
      objects.push_back(object.get());
      storage.push_back(std::move(object));
    }
    std::vector<std::unique_ptr<operators::IterationTask>> batch;
    if (!MakeTasks(objects, &meter, &batch)) return false;
    if (shared) {
      tasks = std::move(batch);
    } else {
      // Private objects: query c uses only its own copy's task.
      tasks.push_back(std::move(batch[c]));
    }
  }

  const std::uint64_t before_run = meter.Total();
  arm->finished_at.assign(tasks.size(), 0);
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (std::size_t q = 0; q < tasks.size(); ++q) {
      if (tasks[q]->Done()) continue;
      if (budget != 0 && meter.Total() - before_run >= budget) {
        all_done = true;
        break;
      }
      all_done = false;
      const Status status = tasks[q]->Step(&meter);
      if (!status.ok()) {
        std::fprintf(stderr, "round-robin step failed: %s\n",
                     status.message().c_str());
        return false;
      }
      if (tasks[q]->Done()) arm->finished_at[q] = meter.Total() - before_run;
    }
    if (budget != 0 && meter.Total() - before_run >= budget) break;
  }

  arm->work_units = meter.Total();
  arm->run_spent = meter.Total() - before_run;
  for (std::size_t q = 0; q < tasks.size(); ++q) {
    if (tasks[q]->Converged()) ++arm->converged;
    const std::uint64_t deadline = deadlines.empty() ? 0 : deadlines[q];
    if (deadline != 0 &&
        (!tasks[q]->Done() || arm->finished_at[q] > deadline)) {
      ++arm->missed_deadlines;
    }
  }
  return true;
}

void AddArmRow(TableWriter* table, const BenchContext& context,
               const std::string& arm_name, std::uint64_t budget,
               const ArmResult& arm) {
  table->AddRow({arm_name, TableWriter::Cell(budget),
                 TableWriter::Cell(arm.work_units),
                 TableWriter::Cell(arm.run_spent),
                 TableWriter::Cell(context.EstSeconds(arm.work_units), 4),
                 TableWriter::Cell(arm.converged) + "/" +
                     TableWriter::Cell(static_cast<int>(kQueries)),
                 TableWriter::Cell(arm.starved),
                 TableWriter::Cell(arm.missed_deadlines)});
}

}  // namespace

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "sch01: budget-aware multi-query scheduling vs round-robin");

  TableWriter table("sch01_multiquery",
                    {"arm", "budget", "work_units", "run_spent", "est_s",
                     "converged", "starved", "missed_deadlines"});
  bool ok = true;

  // ---- Work to all-converged at unlimited budget --------------------------
  const std::vector<std::uint64_t> no_deadlines;
  ArmResult greedy, fair, edf_plain, rr_shared, rr_isolated;
  ok = ok && RunScheduled(context, engine::SchedulerPolicy::kGreedyGlobal, 0,
                          no_deadlines, &greedy);
  ok = ok && RunScheduled(context, engine::SchedulerPolicy::kFairShare, 0,
                          no_deadlines, &fair);
  ok = ok && RunScheduled(context, engine::SchedulerPolicy::kDeadline, 0,
                          no_deadlines, &edf_plain);
  ok = ok && RunRoundRobin(context, /*shared=*/true, 0, no_deadlines,
                           &rr_shared);
  ok = ok && RunRoundRobin(context, /*shared=*/false, 0, no_deadlines,
                           &rr_isolated);
  if (!ok) return 1;

  AddArmRow(&table, context, "greedy_global", 0, greedy);
  AddArmRow(&table, context, "fair_share", 0, fair);
  AddArmRow(&table, context, "deadline", 0, edf_plain);
  AddArmRow(&table, context, "round_robin_shared", 0, rr_shared);
  AddArmRow(&table, context, "round_robin_per_query", 0, rr_isolated);

  for (const auto* arm : {&greedy, &fair, &edf_plain, &rr_shared,
                          &rr_isolated}) {
    if (arm->converged != static_cast<int>(kQueries)) {
      std::fprintf(stderr,
                   "FAIL: an unbudgeted arm converged only %d/%zu queries\n",
                   arm->converged, kQueries);
      ok = false;
    }
  }
  // The headline claim: the scheduler over shared objects needs at most 75%
  // of the work the old one-executor-per-query model pays for the same
  // all-converged answers.
  if (4 * greedy.work_units > 3 * rr_isolated.work_units) {
    std::fprintf(stderr,
                 "FAIL: greedy_global used %llu units; more than 75%% of the "
                 "per-query baseline's %llu\n",
                 static_cast<unsigned long long>(greedy.work_units),
                 static_cast<unsigned long long>(rr_isolated.work_units));
    ok = false;
  }

  // ---- Graceful degradation under shrinking budgets -----------------------
  for (const int percent : {25, 50, 75, 100}) {
    // +1 at 100%: a task's terminal "notice convergence and finish" step
    // charges zero units, so a budget of exactly the unbudgeted spend stops
    // one free step short of converged.
    const std::uint64_t budget =
        greedy.run_spent * static_cast<std::uint64_t>(percent) / 100 +
        (percent == 100 ? 1 : 0);
    for (const auto policy : {engine::SchedulerPolicy::kGreedyGlobal,
                              engine::SchedulerPolicy::kFairShare,
                              engine::SchedulerPolicy::kDeadline}) {
      ArmResult arm;
      if (!RunScheduled(context, policy, budget, no_deadlines, &arm)) return 1;
      AddArmRow(&table, context,
                std::string(engine::SchedulerPolicyName(policy)) + "@" +
                    std::to_string(percent) + "%",
                budget, arm);
      if (percent == 100 &&
          policy == engine::SchedulerPolicy::kGreedyGlobal &&
          arm.converged != static_cast<int>(kQueries)) {
        std::fprintf(stderr,
                     "FAIL: greedy_global did not converge at a budget equal "
                     "to its own unbudgeted spend\n");
        ok = false;
      }
    }
  }

  // ---- Deadlines: EDF meets what round-robin misses -----------------------
  // Probe run fixes the EDF completion order with tiny staggered deadlines,
  // then the recorded completion times (plus 5% slack) become the real
  // deadlines: achievable by construction for EDF, and far too tight for
  // interleaved stepping, which finishes early-deadline queries near the
  // very end of the run.
  std::vector<std::uint64_t> probe_deadlines(kQueries);
  for (std::size_t q = 0; q < kQueries; ++q) probe_deadlines[q] = q + 1;
  ArmResult probe;
  if (!RunScheduled(context, engine::SchedulerPolicy::kDeadline, 0,
                    probe_deadlines, &probe)) {
    return 1;
  }
  std::vector<std::uint64_t> deadlines(kQueries);
  for (std::size_t q = 0; q < kQueries; ++q) {
    deadlines[q] = probe.finished_at[q] + probe.finished_at[q] / 20 + 1;
  }

  ArmResult edf, rr_deadline;
  if (!RunScheduled(context, engine::SchedulerPolicy::kDeadline, 0, deadlines,
                    &edf) ||
      !RunRoundRobin(context, /*shared=*/true, 0, deadlines, &rr_deadline)) {
    return 1;
  }
  AddArmRow(&table, context, "deadline_edf", 0, edf);
  AddArmRow(&table, context, "round_robin_deadlines", 0, rr_deadline);
  if (edf.missed_deadlines != 0) {
    std::fprintf(stderr, "FAIL: EDF missed %d of its own achievable deadlines\n",
                 edf.missed_deadlines);
    ok = false;
  }
  if (rr_deadline.missed_deadlines == 0) {
    std::fprintf(stderr,
                 "FAIL: round-robin met every deadline; the scenario does not "
                 "separate the policies\n");
    ok = false;
  }

  table.RenderText(std::cout);
  std::cout << "\nwork to all-converged: greedy_global " << greedy.work_units
            << " units vs per-query round-robin " << rr_isolated.work_units
            << " units ("
            << 100.0 * static_cast<double>(greedy.work_units) /
                   static_cast<double>(rr_isolated.work_units)
            << "% of baseline)\n";
  std::cout << "deadline misses: EDF " << edf.missed_deadlines
            << ", round-robin " << rr_deadline.missed_deadlines << " of "
            << kQueries << " queries\n";

  std::ofstream json("BENCH_scheduler.json");
  table.RenderJson(json);
  std::cout << "\nwrote BENCH_scheduler.json\n";
  return ok ? 0 : 1;
}
