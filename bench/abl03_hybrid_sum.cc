// Ablation A3: the hybrid SUM operator the paper proposes as future work in
// Section 6.3. Re-runs the Figure 12 sweep with three arms -- pure VAO,
// pure traditional, and the hybrid (skew-threshold decision wired to the
// calibrated black box). Expected: the hybrid tracks the cheaper arm at
// every point, eliminating the paper's low-skew regression.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table_writer.h"
#include "operators/sum_ave.h"
#include "workload/hot_cold.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context, "Ablation A3: hybrid SUM vs pure VAO vs traditional");

  const std::size_t n = context.rows.size();
  const double epsilon = 0.01 * static_cast<double>(n);
  const std::uint64_t trad_units = context.TradTotalUnits();

  TableWriter table("Hybrid SUM ablation",
                    {"hot_share", "vao_units", "trad_units", "hybrid_units",
                     "hybrid_path", "hybrid_vs_best"});

  Rng rng(BenchSeed() + 300);
  for (const double share : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    workload::HotColdSpec spec;
    spec.count = n;
    spec.hot_weight_share = share;
    spec.total_weight = static_cast<double>(n);
    const auto weights = workload::HotColdWeights(spec, &rng);
    if (!weights.ok()) {
      std::fprintf(stderr, "%s\n", weights.status().ToString().c_str());
      return 1;
    }

    auto make_objects = [&](WorkMeter* meter,
                            std::vector<vao::ResultObjectPtr>* owned,
                            std::vector<vao::ResultObject*>* objects) {
      for (const auto& row : context.rows) {
        auto object = context.function->Invoke(row, meter);
        if (!object.ok()) {
          std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
          std::exit(1);
        }
        objects->push_back(object->get());
        owned->push_back(std::move(object).value());
      }
    };

    // Pure VAO arm.
    WorkMeter vao_meter;
    {
      std::vector<vao::ResultObjectPtr> owned;
      std::vector<vao::ResultObject*> objects;
      make_objects(&vao_meter, &owned, &objects);
      operators::SumAveOptions options;
      options.epsilon = epsilon;
      options.meter = &vao_meter;
      const operators::SumAveVao vao(options);
      if (const auto outcome = vao.Evaluate(objects, *weights);
          !outcome.ok()) {
        std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
        return 1;
      }
    }

    // Hybrid arm: the decision is made before any objects are created, so
    // the traditional path pays only black-box costs.
    WorkMeter hybrid_meter;
    bool used_vao = false;
    {
      operators::HybridSumVao::Options options;
      options.vao.epsilon = epsilon;
      options.vao.meter = &hybrid_meter;
      const operators::HybridSumVao hybrid(options);
      if (hybrid.ShouldUseVao(*weights)) {
        used_vao = true;
        std::vector<vao::ResultObjectPtr> owned;
        std::vector<vao::ResultObject*> objects;
        make_objects(&hybrid_meter, &owned, &objects);
        const auto outcome = hybrid.Evaluate(
            objects, *weights, [&](std::size_t i) -> Result<double> {
              return context.black_box->Call(context.rows[i], &hybrid_meter);
            });
        if (!outcome.ok()) {
          std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
          return 1;
        }
      } else {
        for (std::size_t i = 0; i < context.rows.size(); ++i) {
          if (const auto value =
                  context.black_box->Call(context.rows[i], &hybrid_meter);
              !value.ok()) {
            std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
            return 1;
          }
        }
      }
    }

    const std::uint64_t vao_units = vao_meter.Total();
    const std::uint64_t hybrid_units = hybrid_meter.Total();
    const std::uint64_t best = std::min(vao_units, trad_units);
    table.AddRow({TableWriter::Cell(share, 2),
                  TableWriter::Cell(vao_units),
                  TableWriter::Cell(trad_units),
                  TableWriter::Cell(hybrid_units),
                  used_vao ? "vao" : "traditional",
                  TableWriter::Cell(static_cast<double>(hybrid_units) /
                                        static_cast<double>(best),
                                    2)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
