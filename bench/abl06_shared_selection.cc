// Ablation A6: shared multi-predicate selection. A CQ system often carries
// many standing alerts on the same model output with different constants
// (e.g. price thresholds from different traders). This ablation compares
// evaluating m predicates per bond (a) separately -- one result object and
// VAO per predicate, the naive per-query plan -- against (b) shared --
// one result object driven by MultiSelectionVao, plus (c) the traditional
// black box (whose single full-accuracy call also answers all predicates).
// Expected: shared cost tracks the hardest predicate, not m.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"
#include "operators/selection.h"
#include "workload/selectivity.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Ablation A6: shared vs separate evaluation of m selection "
                "predicates per bond");

  const std::uint64_t trad_units = context.TradTotalUnits();

  TableWriter table("Shared-selection ablation",
                    {"m", "separate_units", "shared_units",
                     "separate/shared", "trad_units", "shared/trad"});

  for (const int m : {1, 2, 4, 8, 16}) {
    // m constants spread across the price distribution (selectivities
    // evenly spaced in (0, 1)).
    std::vector<operators::MultiSelectionVao::Predicate> predicates;
    for (int j = 1; j <= m; ++j) {
      const double selectivity = static_cast<double>(j) / (m + 1);
      const auto constant = workload::ConstantForGreaterSelectivity(
          context.converged_values, selectivity);
      if (!constant.ok()) {
        std::fprintf(stderr, "%s\n", constant.status().ToString().c_str());
        return 1;
      }
      predicates.push_back(
          {operators::Comparator::kGreaterThan, *constant});
    }

    // (a) Separate: one fresh result object per predicate per bond.
    WorkMeter separate_meter;
    for (const auto& predicate : predicates) {
      const operators::SelectionVao vao(predicate.cmp, predicate.constant);
      for (const auto& row : context.rows) {
        const auto outcome =
            vao.Evaluate(*context.function, row, &separate_meter);
        if (!outcome.ok()) {
          std::fprintf(stderr, "%s\n",
                       outcome.status().ToString().c_str());
          return 1;
        }
      }
    }

    // (b) Shared: one result object answers all m predicates.
    WorkMeter shared_meter;
    const operators::MultiSelectionVao shared(predicates);
    for (const auto& row : context.rows) {
      const auto outcome =
          shared.Evaluate(*context.function, row, &shared_meter);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
        return 1;
      }
    }

    table.AddRow(
        {TableWriter::Cell(m), TableWriter::Cell(separate_meter.Total()),
         TableWriter::Cell(shared_meter.Total()),
         TableWriter::Cell(static_cast<double>(separate_meter.Total()) /
                               static_cast<double>(shared_meter.Total()),
                           2),
         TableWriter::Cell(trad_units),
         TableWriter::Cell(static_cast<double>(shared_meter.Total()) /
                               static_cast<double>(trad_units),
                           4)});
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
