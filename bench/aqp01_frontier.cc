// aqp01: the approximate answer tier's accuracy-vs-work frontier.
//
// A 10^6-row relation (row i's value drawn uniform[50, 150] from a per-row
// seeded Rng, so both arms agree on the population without materializing
// it) is summed two ways at each relative-error target:
//
//   exact   -- every row's result object is created (8 work units, the
//              UDF's initial evaluation) and the deterministic SumAveVao
//              converges the weighted sum to width 2 * target * |T|.
//   sampled -- SampledSumTask draws rows on demand (same 8-unit creation
//              charge through the factory) and stops when the combined
//              CLT + bound-error interval is within the target at 95%
//              confidence. 20 sampling seeds per target.
//
// Gated (FAIL to stderr, exit 1):
//   work    -- at every target the sampled arm's mean work must be <= 10%
//              of the exact arm's work for the same target.
//   coverage-- across all sampled runs (SUM at every target + the AVE arm)
//              the 95% intervals must contain the true aggregate at a rate
//              >= 0.95 minus three binomial standard errors.
//   converged -- every sampled run must reach its target (the population
//              is benign; failing to converge means the trade loop broke).
//
// Output: the standard text table plus BENCH_aqp.json.
// Size knobs: VAOLIB_AQP_ROWS (default 1000000), VAOLIB_BENCH_SEED
// (default 2026).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table_writer.h"
#include "common/work_meter.h"
#include "engine/sampling/sampled_sum.h"
#include "operators/iteration_task.h"
#include "operators/sum_ave.h"
#include "vao/synthetic_result_object.h"

namespace {

using vaolib::NeumaierSum;
using vaolib::Rng;
using vaolib::TableWriter;
using vaolib::WorkKind;
using vaolib::WorkMeter;
using vaolib::engine::sampling::SampledAggregateOptions;
using vaolib::engine::sampling::SampledSumTask;
using vaolib::vao::SyntheticResultObject;

/// Work charged per row materialization: the UDF's initial evaluation is
/// several solver steps, not free. Both arms pay it through the same path.
constexpr std::uint64_t kCreationCost = 8;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const unsigned long long parsed = std::strtoull(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Row i's synthetic config, identical in both arms. The per-row Rng keeps
/// the 10^6-row population fully determined by (base_seed, i) without ever
/// holding it in memory.
SyntheticResultObject::Config RowConfig(std::uint64_t base_seed,
                                        std::size_t row, WorkMeter* meter) {
  Rng rng(base_seed * 0x9E3779B97F4A7C15ULL + row + 1);
  SyntheticResultObject::Config config;
  config.true_value = rng.Uniform(50.0, 150.0);
  config.initial_half_width = rng.Uniform(1.0, 10.0);
  config.shrink = 0.5;
  config.min_width = 1e-6;
  config.cost_per_iteration = 1;
  config.meter = meter;
  return config;
}

vaolib::vao::ResultObjectPtr MakeRow(std::uint64_t base_seed, std::size_t row,
                                     WorkMeter* meter) {
  meter->Charge(WorkKind::kExec, kCreationCost);
  return std::make_unique<SyntheticResultObject>(
      RowConfig(base_seed, row, meter));
}

/// The population total under unit weights, without materializing objects.
double TrueSum(std::uint64_t base_seed, std::size_t rows) {
  NeumaierSum sum;
  for (std::size_t i = 0; i < rows; ++i) {
    sum.Add(RowConfig(base_seed, i, nullptr).true_value);
  }
  return sum.Sum();
}

/// Exact arm: materialize everything, converge deterministically to width
/// 2 * target * |truth|. Returns total work (creation + iteration).
std::uint64_t RunExact(std::uint64_t base_seed, std::size_t rows,
                       double target, double truth, bool* converged) {
  WorkMeter meter;
  std::vector<vaolib::vao::ResultObjectPtr> owned;
  owned.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    owned.push_back(MakeRow(base_seed, i, &meter));
  }
  std::vector<vaolib::vao::ResultObject*> objects;
  objects.reserve(rows);
  for (const auto& object : owned) objects.push_back(object.get());

  vaolib::operators::SumAveOptions options;
  options.epsilon = 2.0 * target * std::abs(truth);
  options.meter = &meter;
  // O(log N) iteration choice: the O(N)-scan default would make this arm
  // quadratic at 10^6 rows.
  options.use_heap_index = true;
  const vaolib::operators::SumAveVao vao(options);
  const auto outcome =
      vao.Evaluate(objects, std::vector<double>(rows, 1.0));
  if (!outcome.ok()) {
    std::fprintf(stderr, "FAIL: exact arm (target %.4f): %s\n", target,
                 outcome.status().ToString().c_str());
    *converged = false;
    return 0;
  }
  *converged = outcome->converged;
  return meter.Total();
}

struct SampledRun {
  std::uint64_t work = 0;
  std::size_t samples = 0;
  bool converged = false;
  bool covered = false;
};

/// Sampled arm: one seeded run to the same relative-error target. `ave`
/// switches to 1/N weights (and the mean as truth), exercising the AVE
/// convention on the identical machine.
SampledRun RunSampled(std::uint64_t base_seed, std::size_t rows,
                      double target, double truth, std::uint64_t sample_seed,
                      bool ave) {
  WorkMeter meter;
  SampledAggregateOptions options;
  options.spec.confidence = 0.95;
  options.spec.target_rel_error = target;
  options.spec.seed = sample_seed;
  options.spec.initial_samples = 128;
  options.epsilon = 1e-9;  // the relative target governs, not the floor
  const double weight =
      ave ? 1.0 / static_cast<double>(rows) : 1.0;
  auto task = SampledSumTask::Create(
      options, rows,
      [base_seed, &meter](std::size_t row) {
        return vaolib::Result<vaolib::vao::ResultObjectPtr>(
            MakeRow(base_seed, row, &meter));
      },
      [weight](std::size_t) { return weight; });
  SampledRun run;
  if (!task.ok()) {
    std::fprintf(stderr, "FAIL: sampled arm create: %s\n",
                 task.status().ToString().c_str());
    return run;
  }
  vaolib::operators::OperatorOptions drive;
  drive.meter = &meter;
  const auto finished = vaolib::operators::DriveTask(task->get(), drive);
  if (!finished.ok()) {
    std::fprintf(stderr, "FAIL: sampled arm drive: %s\n",
                 finished.status().ToString().c_str());
    return run;
  }
  const auto outcome = (*task)->Snapshot();
  run.work = meter.Total();
  run.samples = outcome.answer.sample_size;
  run.converged = outcome.converged;
  // `truth` is the population mean in the AVE arm, the total otherwise.
  run.covered = outcome.answer.lo <= truth && truth <= outcome.answer.hi;
  return run;
}

}  // namespace

int main() {
  const std::size_t rows = EnvSize("VAOLIB_AQP_ROWS", 1'000'000);
  const std::uint64_t seed = EnvSize("VAOLIB_BENCH_SEED", 2026);
  constexpr std::size_t kSeedsPerTarget = 20;
  const double targets[] = {0.05, 0.02, 0.01, 0.005};

  std::cout << "aqp01: approximate-answer frontier (rows=" << rows
            << " seed=" << seed << " runs/target=" << kSeedsPerTarget
            << ")\n\n";
  const double truth = TrueSum(seed, rows);

  TableWriter table("aqp01_frontier",
                    {"arm", "target", "exact_work", "mean_sampled_work",
                     "work_ratio", "mean_samples", "coverage", "gate"});
  bool ok = true;
  std::uint64_t covered = 0;
  std::uint64_t checks = 0;

  for (const double target : targets) {
    bool exact_converged = false;
    const std::uint64_t exact_work =
        RunExact(seed, rows, target, truth, &exact_converged);
    if (!exact_converged || exact_work == 0) {
      std::fprintf(stderr, "FAIL: exact arm did not converge at %.4f\n",
                   target);
      ok = false;
    }

    double work_sum = 0.0;
    double sample_sum = 0.0;
    std::uint64_t target_covered = 0;
    bool all_converged = true;
    for (std::uint64_t s = 0; s < kSeedsPerTarget; ++s) {
      const SampledRun run =
          RunSampled(seed, rows, target, truth, seed + 1000 + s, false);
      work_sum += static_cast<double>(run.work);
      sample_sum += static_cast<double>(run.samples);
      all_converged &= run.converged;
      ++checks;
      if (run.covered) {
        ++covered;
        ++target_covered;
      }
    }
    const double mean_work = work_sum / kSeedsPerTarget;
    const double ratio =
        exact_work > 0 ? mean_work / static_cast<double>(exact_work) : 1.0;
    const bool gate = exact_converged && all_converged && ratio <= 0.10;
    if (!gate) {
      std::fprintf(stderr,
                   "FAIL: target %.4f work ratio %.4f > 0.10 (exact %llu, "
                   "sampled mean %.0f, all converged %d)\n",
                   target, ratio,
                   static_cast<unsigned long long>(exact_work), mean_work,
                   all_converged);
      ok = false;
    }
    table.AddRow({"sum", TableWriter::Cell(target, 4),
                  TableWriter::Cell(exact_work),
                  TableWriter::Cell(mean_work, 0),
                  TableWriter::Cell(ratio, 4),
                  TableWriter::Cell(sample_sum / kSeedsPerTarget, 0),
                  TableWriter::Cell(static_cast<double>(target_covered) /
                                        kSeedsPerTarget,
                                    2),
                  gate ? "PASS<=0.10" : "FAIL"});
  }

  // AVE arm (informational work, gated coverage): the same machine under
  // 1/N weights must cover the population mean as well.
  {
    const double mean = truth / static_cast<double>(rows);
    double sample_sum = 0.0;
    std::uint64_t ave_covered = 0;
    for (std::uint64_t s = 0; s < kSeedsPerTarget; ++s) {
      const SampledRun run =
          RunSampled(seed, rows, 0.02, mean, seed + 5000 + s, true);
      sample_sum += static_cast<double>(run.samples);
      ++checks;
      if (run.covered) {
        ++covered;
        ++ave_covered;
      }
    }
    table.AddRow({"ave", TableWriter::Cell(0.02, 4), "-", "-", "-",
                  TableWriter::Cell(sample_sum / kSeedsPerTarget, 0),
                  TableWriter::Cell(
                      static_cast<double>(ave_covered) / kSeedsPerTarget, 2),
                  "info"});
  }

  // Coverage gate: binomial tolerance around the stated 95% confidence.
  const double rate =
      checks > 0 ? static_cast<double>(covered) / static_cast<double>(checks)
                 : 0.0;
  const double floor =
      0.95 - 3.0 * std::sqrt(0.95 * 0.05 / static_cast<double>(checks));
  if (rate < floor) {
    std::fprintf(stderr, "FAIL: coverage %.3f < %.3f (%llu/%llu)\n", rate,
                 floor, static_cast<unsigned long long>(covered),
                 static_cast<unsigned long long>(checks));
    ok = false;
  }
  table.AddRow({"coverage", "-", "-", "-", "-", "-",
                TableWriter::Cell(rate, 3),
                rate >= floor ? "PASS" : "FAIL"});

  table.RenderText(std::cout);
  std::ofstream json("BENCH_aqp.json");
  table.RenderJson(json);
  std::cout << "\nwrote BENCH_aqp.json\n";
  return ok ? 0 : 1;
}
