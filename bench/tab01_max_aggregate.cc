// Section 6.2 table: MAX aggregate over the full portfolio.
//   Paper:  Optimal 108s | VAO 111s (~3% over optimal) | Traditional 6953s.
// Shape targets: VAO within a few percent of the Optimal oracle, both about
// two orders of magnitude under the traditional operator; the iteration-
// choice overhead is negligible; only a handful of bonds stay candidates
// after the initial pruning.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "operators/min_max.h"
#include "operators/traditional.h"

using namespace vaolib;
using namespace vaolib::bench;

int main() {
  BenchContext context = MakeContext();
  Calibrate(&context);
  PrintPreamble(context,
                "Table (Sec 6.2): MAX aggregate, Optimal vs VAO vs "
                "Traditional");

  const double epsilon = 0.01;
  TableWriter table("MAX aggregate runtimes",
                    {"operator", "units", "est_s", "wall_s", "iters",
                     "winner", "price"});

  // --- Optimal oracle: told the argmax in advance. -------------------------
  const std::size_t true_winner = static_cast<std::size_t>(
      std::max_element(context.converged_values.begin(),
                       context.converged_values.end()) -
      context.converged_values.begin());
  {
    WorkMeter meter;
    Stopwatch wall;
    std::vector<vao::ResultObjectPtr> owned;
    std::vector<vao::ResultObject*> objects;
    for (const auto& row : context.rows) {
      auto object = context.function->Invoke(row, &meter);
      if (!object.ok()) {
        std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
        return 1;
      }
      objects.push_back(object->get());
      owned.push_back(std::move(object).value());
    }
    const auto outcome = operators::OptimalExtremeOracle(
        objects, true_winner, operators::ExtremeKind::kMax, epsilon);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    table.AddRow({"Optimal", TableWriter::Cell(meter.Total()),
                  TableWriter::Cell(context.EstSeconds(meter.Total()), 4),
                  TableWriter::Cell(wall.ElapsedSeconds(), 4),
                  TableWriter::Cell(outcome->stats.iterations),
                  TableWriter::Cell(
                      static_cast<std::uint64_t>(outcome->winner_index)),
                  TableWriter::Cell(outcome->winner_bounds.Mid(), 4)});
  }

  // --- MAX VAO (greedy strategy). ------------------------------------------
  std::uint64_t vao_units = 0;
  {
    WorkMeter meter;
    Stopwatch wall;
    std::vector<vao::ResultObjectPtr> owned;
    std::vector<vao::ResultObject*> objects;
    for (const auto& row : context.rows) {
      auto object = context.function->Invoke(row, &meter);
      if (!object.ok()) {
        std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
        return 1;
      }
      objects.push_back(object->get());
      owned.push_back(std::move(object).value());
    }
    operators::MinMaxOptions options;
    options.epsilon = epsilon;
    options.meter = &meter;
    const operators::MinMaxVao vao(options);
    const auto outcome = vao.Evaluate(objects);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    vao_units = meter.Total();
    table.AddRow({"VAO", TableWriter::Cell(meter.Total()),
                  TableWriter::Cell(context.EstSeconds(meter.Total()), 4),
                  TableWriter::Cell(wall.ElapsedSeconds(), 4),
                  TableWriter::Cell(outcome->stats.iterations),
                  TableWriter::Cell(
                      static_cast<std::uint64_t>(outcome->winner_index)),
                  TableWriter::Cell(outcome->winner_bounds.Mid(), 4)});
    if (outcome->winner_index != true_winner) {
      std::fprintf(stderr, "WARNING: VAO winner %zu != true winner %zu\n",
                   outcome->winner_index, true_winner);
    }
    std::printf("chooseIter bookkeeping: %llu units (%.4f%% of VAO work)\n",
                static_cast<unsigned long long>(
                    meter.Count(WorkKind::kChooseIter)),
                100.0 *
                    static_cast<double>(meter.Count(WorkKind::kChooseIter)) /
                    static_cast<double>(meter.Total()));
  }

  // --- Traditional black-box operator. --------------------------------------
  {
    WorkMeter meter;
    const auto outcome = operators::TraditionalExtreme(
        *context.black_box, context.rows, operators::ExtremeKind::kMax,
        &meter);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    table.AddRow({"Traditional", TableWriter::Cell(meter.Total()),
                  TableWriter::Cell(context.EstSeconds(meter.Total()), 4),
                  "n/a (replayed)",
                  "0",
                  TableWriter::Cell(
                      static_cast<std::uint64_t>(outcome->winner_index)),
                  TableWriter::Cell(outcome->value, 4)});
    std::printf("traditional/VAO work ratio: %.1fx\n\n",
                static_cast<double>(meter.Total()) /
                    static_cast<double>(vao_units));
  }

  table.RenderText(std::cout);
  std::printf("\ncsv:\n");
  table.RenderCsv(std::cout);
  return 0;
}
