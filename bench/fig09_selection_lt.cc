// Figure 9: same sweep as Figure 8 with a less-than predicate.
// Paper shape: runtime at selectivity s equals Figure 8's runtime at 1-s
// (the same constants induce the same proximity structure).

#include "selection_sweep.h"

int main() {
  return vaolib::bench::RunSelectionSweep(
      vaolib::operators::Comparator::kLessThan,
      "Figure 9: selection model(rate, bond) < c, selectivity sweep",
      "BENCH_selection_lt.json");
}
