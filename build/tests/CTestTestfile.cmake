# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/vao_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/finance_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/top_k_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_range_test[1]_include.cmake")
include("/root/repo/build/tests/pde2d_test[1]_include.cmake")
include("/root/repo/build/tests/property2_test[1]_include.cmake")
include("/root/repo/build/tests/multi_query_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
