# Empty dependencies file for predicate_range_test.
# This may be replaced when dependencies are built.
