file(REMOVE_RECURSE
  "CMakeFiles/predicate_range_test.dir/predicate_range_test.cc.o"
  "CMakeFiles/predicate_range_test.dir/predicate_range_test.cc.o.d"
  "predicate_range_test"
  "predicate_range_test.pdb"
  "predicate_range_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
