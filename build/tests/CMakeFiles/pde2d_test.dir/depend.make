# Empty dependencies file for pde2d_test.
# This may be replaced when dependencies are built.
