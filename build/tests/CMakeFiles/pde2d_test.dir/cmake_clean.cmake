file(REMOVE_RECURSE
  "CMakeFiles/pde2d_test.dir/pde2d_test.cc.o"
  "CMakeFiles/pde2d_test.dir/pde2d_test.cc.o.d"
  "pde2d_test"
  "pde2d_test.pdb"
  "pde2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pde2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
