# Empty dependencies file for vao_test.
# This may be replaced when dependencies are built.
