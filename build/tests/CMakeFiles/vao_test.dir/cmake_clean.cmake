file(REMOVE_RECURSE
  "CMakeFiles/vao_test.dir/vao_test.cc.o"
  "CMakeFiles/vao_test.dir/vao_test.cc.o.d"
  "vao_test"
  "vao_test.pdb"
  "vao_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vao_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
