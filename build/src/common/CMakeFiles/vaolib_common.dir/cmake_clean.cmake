file(REMOVE_RECURSE
  "CMakeFiles/vaolib_common.dir/logging.cc.o"
  "CMakeFiles/vaolib_common.dir/logging.cc.o.d"
  "CMakeFiles/vaolib_common.dir/rng.cc.o"
  "CMakeFiles/vaolib_common.dir/rng.cc.o.d"
  "CMakeFiles/vaolib_common.dir/stats.cc.o"
  "CMakeFiles/vaolib_common.dir/stats.cc.o.d"
  "CMakeFiles/vaolib_common.dir/status.cc.o"
  "CMakeFiles/vaolib_common.dir/status.cc.o.d"
  "CMakeFiles/vaolib_common.dir/table_writer.cc.o"
  "CMakeFiles/vaolib_common.dir/table_writer.cc.o.d"
  "libvaolib_common.a"
  "libvaolib_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaolib_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
