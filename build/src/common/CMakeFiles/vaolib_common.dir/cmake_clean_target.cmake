file(REMOVE_RECURSE
  "libvaolib_common.a"
)
