# Empty dependencies file for vaolib_common.
# This may be replaced when dependencies are built.
