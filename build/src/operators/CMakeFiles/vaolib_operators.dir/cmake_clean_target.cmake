file(REMOVE_RECURSE
  "libvaolib_operators.a"
)
