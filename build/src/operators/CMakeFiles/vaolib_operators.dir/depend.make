# Empty dependencies file for vaolib_operators.
# This may be replaced when dependencies are built.
