file(REMOVE_RECURSE
  "CMakeFiles/vaolib_operators.dir/min_max.cc.o"
  "CMakeFiles/vaolib_operators.dir/min_max.cc.o.d"
  "CMakeFiles/vaolib_operators.dir/operator_base.cc.o"
  "CMakeFiles/vaolib_operators.dir/operator_base.cc.o.d"
  "CMakeFiles/vaolib_operators.dir/predicate_range_cache.cc.o"
  "CMakeFiles/vaolib_operators.dir/predicate_range_cache.cc.o.d"
  "CMakeFiles/vaolib_operators.dir/selection.cc.o"
  "CMakeFiles/vaolib_operators.dir/selection.cc.o.d"
  "CMakeFiles/vaolib_operators.dir/sum_ave.cc.o"
  "CMakeFiles/vaolib_operators.dir/sum_ave.cc.o.d"
  "CMakeFiles/vaolib_operators.dir/top_k.cc.o"
  "CMakeFiles/vaolib_operators.dir/top_k.cc.o.d"
  "CMakeFiles/vaolib_operators.dir/traditional.cc.o"
  "CMakeFiles/vaolib_operators.dir/traditional.cc.o.d"
  "libvaolib_operators.a"
  "libvaolib_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaolib_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
