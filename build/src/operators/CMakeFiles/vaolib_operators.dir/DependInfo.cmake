
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/operators/min_max.cc" "src/operators/CMakeFiles/vaolib_operators.dir/min_max.cc.o" "gcc" "src/operators/CMakeFiles/vaolib_operators.dir/min_max.cc.o.d"
  "/root/repo/src/operators/operator_base.cc" "src/operators/CMakeFiles/vaolib_operators.dir/operator_base.cc.o" "gcc" "src/operators/CMakeFiles/vaolib_operators.dir/operator_base.cc.o.d"
  "/root/repo/src/operators/predicate_range_cache.cc" "src/operators/CMakeFiles/vaolib_operators.dir/predicate_range_cache.cc.o" "gcc" "src/operators/CMakeFiles/vaolib_operators.dir/predicate_range_cache.cc.o.d"
  "/root/repo/src/operators/selection.cc" "src/operators/CMakeFiles/vaolib_operators.dir/selection.cc.o" "gcc" "src/operators/CMakeFiles/vaolib_operators.dir/selection.cc.o.d"
  "/root/repo/src/operators/sum_ave.cc" "src/operators/CMakeFiles/vaolib_operators.dir/sum_ave.cc.o" "gcc" "src/operators/CMakeFiles/vaolib_operators.dir/sum_ave.cc.o.d"
  "/root/repo/src/operators/top_k.cc" "src/operators/CMakeFiles/vaolib_operators.dir/top_k.cc.o" "gcc" "src/operators/CMakeFiles/vaolib_operators.dir/top_k.cc.o.d"
  "/root/repo/src/operators/traditional.cc" "src/operators/CMakeFiles/vaolib_operators.dir/traditional.cc.o" "gcc" "src/operators/CMakeFiles/vaolib_operators.dir/traditional.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vao/CMakeFiles/vaolib_vao.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaolib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/vaolib_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
