# Empty compiler generated dependencies file for vaolib_engine.
# This may be replaced when dependencies are built.
