file(REMOVE_RECURSE
  "CMakeFiles/vaolib_engine.dir/csv.cc.o"
  "CMakeFiles/vaolib_engine.dir/csv.cc.o.d"
  "CMakeFiles/vaolib_engine.dir/executor.cc.o"
  "CMakeFiles/vaolib_engine.dir/executor.cc.o.d"
  "CMakeFiles/vaolib_engine.dir/multi_query.cc.o"
  "CMakeFiles/vaolib_engine.dir/multi_query.cc.o.d"
  "CMakeFiles/vaolib_engine.dir/relation.cc.o"
  "CMakeFiles/vaolib_engine.dir/relation.cc.o.d"
  "CMakeFiles/vaolib_engine.dir/sql_parser.cc.o"
  "CMakeFiles/vaolib_engine.dir/sql_parser.cc.o.d"
  "CMakeFiles/vaolib_engine.dir/value.cc.o"
  "CMakeFiles/vaolib_engine.dir/value.cc.o.d"
  "libvaolib_engine.a"
  "libvaolib_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaolib_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
