file(REMOVE_RECURSE
  "libvaolib_engine.a"
)
