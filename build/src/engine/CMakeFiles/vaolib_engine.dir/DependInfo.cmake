
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/csv.cc" "src/engine/CMakeFiles/vaolib_engine.dir/csv.cc.o" "gcc" "src/engine/CMakeFiles/vaolib_engine.dir/csv.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/vaolib_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/vaolib_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/multi_query.cc" "src/engine/CMakeFiles/vaolib_engine.dir/multi_query.cc.o" "gcc" "src/engine/CMakeFiles/vaolib_engine.dir/multi_query.cc.o.d"
  "/root/repo/src/engine/relation.cc" "src/engine/CMakeFiles/vaolib_engine.dir/relation.cc.o" "gcc" "src/engine/CMakeFiles/vaolib_engine.dir/relation.cc.o.d"
  "/root/repo/src/engine/sql_parser.cc" "src/engine/CMakeFiles/vaolib_engine.dir/sql_parser.cc.o" "gcc" "src/engine/CMakeFiles/vaolib_engine.dir/sql_parser.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/engine/CMakeFiles/vaolib_engine.dir/value.cc.o" "gcc" "src/engine/CMakeFiles/vaolib_engine.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/operators/CMakeFiles/vaolib_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/vao/CMakeFiles/vaolib_vao.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaolib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/vaolib_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
