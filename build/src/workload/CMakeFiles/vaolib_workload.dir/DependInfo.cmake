
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/hot_cold.cc" "src/workload/CMakeFiles/vaolib_workload.dir/hot_cold.cc.o" "gcc" "src/workload/CMakeFiles/vaolib_workload.dir/hot_cold.cc.o.d"
  "/root/repo/src/workload/portfolio_gen.cc" "src/workload/CMakeFiles/vaolib_workload.dir/portfolio_gen.cc.o" "gcc" "src/workload/CMakeFiles/vaolib_workload.dir/portfolio_gen.cc.o.d"
  "/root/repo/src/workload/selectivity.cc" "src/workload/CMakeFiles/vaolib_workload.dir/selectivity.cc.o" "gcc" "src/workload/CMakeFiles/vaolib_workload.dir/selectivity.cc.o.d"
  "/root/repo/src/workload/shift_scheme.cc" "src/workload/CMakeFiles/vaolib_workload.dir/shift_scheme.cc.o" "gcc" "src/workload/CMakeFiles/vaolib_workload.dir/shift_scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vao/CMakeFiles/vaolib_vao.dir/DependInfo.cmake"
  "/root/repo/build/src/finance/CMakeFiles/vaolib_finance.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaolib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/vaolib_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
