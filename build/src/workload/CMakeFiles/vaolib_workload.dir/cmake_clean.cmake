file(REMOVE_RECURSE
  "CMakeFiles/vaolib_workload.dir/hot_cold.cc.o"
  "CMakeFiles/vaolib_workload.dir/hot_cold.cc.o.d"
  "CMakeFiles/vaolib_workload.dir/portfolio_gen.cc.o"
  "CMakeFiles/vaolib_workload.dir/portfolio_gen.cc.o.d"
  "CMakeFiles/vaolib_workload.dir/selectivity.cc.o"
  "CMakeFiles/vaolib_workload.dir/selectivity.cc.o.d"
  "CMakeFiles/vaolib_workload.dir/shift_scheme.cc.o"
  "CMakeFiles/vaolib_workload.dir/shift_scheme.cc.o.d"
  "libvaolib_workload.a"
  "libvaolib_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaolib_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
