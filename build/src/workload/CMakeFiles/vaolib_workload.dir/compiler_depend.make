# Empty compiler generated dependencies file for vaolib_workload.
# This may be replaced when dependencies are built.
