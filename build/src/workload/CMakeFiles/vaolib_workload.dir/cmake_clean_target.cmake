file(REMOVE_RECURSE
  "libvaolib_workload.a"
)
