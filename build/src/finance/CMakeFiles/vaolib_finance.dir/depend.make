# Empty dependencies file for vaolib_finance.
# This may be replaced when dependencies are built.
