file(REMOVE_RECURSE
  "libvaolib_finance.a"
)
