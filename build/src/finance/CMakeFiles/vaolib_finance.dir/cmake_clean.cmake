file(REMOVE_RECURSE
  "CMakeFiles/vaolib_finance.dir/bond.cc.o"
  "CMakeFiles/vaolib_finance.dir/bond.cc.o.d"
  "CMakeFiles/vaolib_finance.dir/bond_model.cc.o"
  "CMakeFiles/vaolib_finance.dir/bond_model.cc.o.d"
  "CMakeFiles/vaolib_finance.dir/two_factor_model.cc.o"
  "CMakeFiles/vaolib_finance.dir/two_factor_model.cc.o.d"
  "libvaolib_finance.a"
  "libvaolib_finance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaolib_finance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
