
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/finance/bond.cc" "src/finance/CMakeFiles/vaolib_finance.dir/bond.cc.o" "gcc" "src/finance/CMakeFiles/vaolib_finance.dir/bond.cc.o.d"
  "/root/repo/src/finance/bond_model.cc" "src/finance/CMakeFiles/vaolib_finance.dir/bond_model.cc.o" "gcc" "src/finance/CMakeFiles/vaolib_finance.dir/bond_model.cc.o.d"
  "/root/repo/src/finance/two_factor_model.cc" "src/finance/CMakeFiles/vaolib_finance.dir/two_factor_model.cc.o" "gcc" "src/finance/CMakeFiles/vaolib_finance.dir/two_factor_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vao/CMakeFiles/vaolib_vao.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaolib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/vaolib_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
