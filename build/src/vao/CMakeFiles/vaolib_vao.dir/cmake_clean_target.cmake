file(REMOVE_RECURSE
  "libvaolib_vao.a"
)
