
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vao/black_box.cc" "src/vao/CMakeFiles/vaolib_vao.dir/black_box.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/black_box.cc.o.d"
  "/root/repo/src/vao/function_cache.cc" "src/vao/CMakeFiles/vaolib_vao.dir/function_cache.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/function_cache.cc.o.d"
  "/root/repo/src/vao/integral_result_object.cc" "src/vao/CMakeFiles/vaolib_vao.dir/integral_result_object.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/integral_result_object.cc.o.d"
  "/root/repo/src/vao/ivp_result_object.cc" "src/vao/CMakeFiles/vaolib_vao.dir/ivp_result_object.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/ivp_result_object.cc.o.d"
  "/root/repo/src/vao/ode_result_object.cc" "src/vao/CMakeFiles/vaolib_vao.dir/ode_result_object.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/ode_result_object.cc.o.d"
  "/root/repo/src/vao/parallel.cc" "src/vao/CMakeFiles/vaolib_vao.dir/parallel.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/parallel.cc.o.d"
  "/root/repo/src/vao/pde2d_result_object.cc" "src/vao/CMakeFiles/vaolib_vao.dir/pde2d_result_object.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/pde2d_result_object.cc.o.d"
  "/root/repo/src/vao/pde_result_object.cc" "src/vao/CMakeFiles/vaolib_vao.dir/pde_result_object.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/pde_result_object.cc.o.d"
  "/root/repo/src/vao/root_result_object.cc" "src/vao/CMakeFiles/vaolib_vao.dir/root_result_object.cc.o" "gcc" "src/vao/CMakeFiles/vaolib_vao.dir/root_result_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/vaolib_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaolib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
