file(REMOVE_RECURSE
  "CMakeFiles/vaolib_vao.dir/black_box.cc.o"
  "CMakeFiles/vaolib_vao.dir/black_box.cc.o.d"
  "CMakeFiles/vaolib_vao.dir/function_cache.cc.o"
  "CMakeFiles/vaolib_vao.dir/function_cache.cc.o.d"
  "CMakeFiles/vaolib_vao.dir/integral_result_object.cc.o"
  "CMakeFiles/vaolib_vao.dir/integral_result_object.cc.o.d"
  "CMakeFiles/vaolib_vao.dir/ivp_result_object.cc.o"
  "CMakeFiles/vaolib_vao.dir/ivp_result_object.cc.o.d"
  "CMakeFiles/vaolib_vao.dir/ode_result_object.cc.o"
  "CMakeFiles/vaolib_vao.dir/ode_result_object.cc.o.d"
  "CMakeFiles/vaolib_vao.dir/parallel.cc.o"
  "CMakeFiles/vaolib_vao.dir/parallel.cc.o.d"
  "CMakeFiles/vaolib_vao.dir/pde2d_result_object.cc.o"
  "CMakeFiles/vaolib_vao.dir/pde2d_result_object.cc.o.d"
  "CMakeFiles/vaolib_vao.dir/pde_result_object.cc.o"
  "CMakeFiles/vaolib_vao.dir/pde_result_object.cc.o.d"
  "CMakeFiles/vaolib_vao.dir/root_result_object.cc.o"
  "CMakeFiles/vaolib_vao.dir/root_result_object.cc.o.d"
  "libvaolib_vao.a"
  "libvaolib_vao.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaolib_vao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
