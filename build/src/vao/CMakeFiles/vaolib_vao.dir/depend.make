# Empty dependencies file for vaolib_vao.
# This may be replaced when dependencies are built.
