file(REMOVE_RECURSE
  "libvaolib_numeric.a"
)
