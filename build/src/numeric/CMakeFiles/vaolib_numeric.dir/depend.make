# Empty dependencies file for vaolib_numeric.
# This may be replaced when dependencies are built.
