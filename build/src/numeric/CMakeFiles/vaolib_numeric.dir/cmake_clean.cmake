file(REMOVE_RECURSE
  "CMakeFiles/vaolib_numeric.dir/integration.cc.o"
  "CMakeFiles/vaolib_numeric.dir/integration.cc.o.d"
  "CMakeFiles/vaolib_numeric.dir/ode_ivp.cc.o"
  "CMakeFiles/vaolib_numeric.dir/ode_ivp.cc.o.d"
  "CMakeFiles/vaolib_numeric.dir/ode_solver.cc.o"
  "CMakeFiles/vaolib_numeric.dir/ode_solver.cc.o.d"
  "CMakeFiles/vaolib_numeric.dir/pde2d_solver.cc.o"
  "CMakeFiles/vaolib_numeric.dir/pde2d_solver.cc.o.d"
  "CMakeFiles/vaolib_numeric.dir/pde_solver.cc.o"
  "CMakeFiles/vaolib_numeric.dir/pde_solver.cc.o.d"
  "CMakeFiles/vaolib_numeric.dir/richardson.cc.o"
  "CMakeFiles/vaolib_numeric.dir/richardson.cc.o.d"
  "CMakeFiles/vaolib_numeric.dir/roots.cc.o"
  "CMakeFiles/vaolib_numeric.dir/roots.cc.o.d"
  "CMakeFiles/vaolib_numeric.dir/tridiagonal.cc.o"
  "CMakeFiles/vaolib_numeric.dir/tridiagonal.cc.o.d"
  "libvaolib_numeric.a"
  "libvaolib_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaolib_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
