
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/integration.cc" "src/numeric/CMakeFiles/vaolib_numeric.dir/integration.cc.o" "gcc" "src/numeric/CMakeFiles/vaolib_numeric.dir/integration.cc.o.d"
  "/root/repo/src/numeric/ode_ivp.cc" "src/numeric/CMakeFiles/vaolib_numeric.dir/ode_ivp.cc.o" "gcc" "src/numeric/CMakeFiles/vaolib_numeric.dir/ode_ivp.cc.o.d"
  "/root/repo/src/numeric/ode_solver.cc" "src/numeric/CMakeFiles/vaolib_numeric.dir/ode_solver.cc.o" "gcc" "src/numeric/CMakeFiles/vaolib_numeric.dir/ode_solver.cc.o.d"
  "/root/repo/src/numeric/pde2d_solver.cc" "src/numeric/CMakeFiles/vaolib_numeric.dir/pde2d_solver.cc.o" "gcc" "src/numeric/CMakeFiles/vaolib_numeric.dir/pde2d_solver.cc.o.d"
  "/root/repo/src/numeric/pde_solver.cc" "src/numeric/CMakeFiles/vaolib_numeric.dir/pde_solver.cc.o" "gcc" "src/numeric/CMakeFiles/vaolib_numeric.dir/pde_solver.cc.o.d"
  "/root/repo/src/numeric/richardson.cc" "src/numeric/CMakeFiles/vaolib_numeric.dir/richardson.cc.o" "gcc" "src/numeric/CMakeFiles/vaolib_numeric.dir/richardson.cc.o.d"
  "/root/repo/src/numeric/roots.cc" "src/numeric/CMakeFiles/vaolib_numeric.dir/roots.cc.o" "gcc" "src/numeric/CMakeFiles/vaolib_numeric.dir/roots.cc.o.d"
  "/root/repo/src/numeric/tridiagonal.cc" "src/numeric/CMakeFiles/vaolib_numeric.dir/tridiagonal.cc.o" "gcc" "src/numeric/CMakeFiles/vaolib_numeric.dir/tridiagonal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vaolib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
