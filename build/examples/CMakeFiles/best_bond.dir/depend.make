# Empty dependencies file for best_bond.
# This may be replaced when dependencies are built.
