file(REMOVE_RECURSE
  "CMakeFiles/best_bond.dir/best_bond.cpp.o"
  "CMakeFiles/best_bond.dir/best_bond.cpp.o.d"
  "best_bond"
  "best_bond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_bond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
