file(REMOVE_RECURSE
  "CMakeFiles/portfolio_monitor.dir/portfolio_monitor.cpp.o"
  "CMakeFiles/portfolio_monitor.dir/portfolio_monitor.cpp.o.d"
  "portfolio_monitor"
  "portfolio_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
