# Empty dependencies file for portfolio_monitor.
# This may be replaced when dependencies are built.
