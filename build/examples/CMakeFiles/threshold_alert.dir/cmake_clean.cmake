file(REMOVE_RECURSE
  "CMakeFiles/threshold_alert.dir/threshold_alert.cpp.o"
  "CMakeFiles/threshold_alert.dir/threshold_alert.cpp.o.d"
  "threshold_alert"
  "threshold_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
