# Empty dependencies file for threshold_alert.
# This may be replaced when dependencies are built.
