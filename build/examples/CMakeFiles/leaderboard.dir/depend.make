# Empty dependencies file for leaderboard.
# This may be replaced when dependencies are built.
