file(REMOVE_RECURSE
  "CMakeFiles/standing_queries.dir/standing_queries.cpp.o"
  "CMakeFiles/standing_queries.dir/standing_queries.cpp.o.d"
  "standing_queries"
  "standing_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standing_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
