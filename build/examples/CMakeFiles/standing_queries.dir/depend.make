# Empty dependencies file for standing_queries.
# This may be replaced when dependencies are built.
