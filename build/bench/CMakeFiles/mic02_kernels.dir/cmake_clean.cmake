file(REMOVE_RECURSE
  "CMakeFiles/mic02_kernels.dir/mic02_kernels.cc.o"
  "CMakeFiles/mic02_kernels.dir/mic02_kernels.cc.o.d"
  "mic02_kernels"
  "mic02_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic02_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
