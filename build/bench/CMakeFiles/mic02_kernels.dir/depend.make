# Empty dependencies file for mic02_kernels.
# This may be replaced when dependencies are built.
