# Empty dependencies file for fig09_selection_lt.
# This may be replaced when dependencies are built.
