file(REMOVE_RECURSE
  "CMakeFiles/fig09_selection_lt.dir/fig09_selection_lt.cc.o"
  "CMakeFiles/fig09_selection_lt.dir/fig09_selection_lt.cc.o.d"
  "fig09_selection_lt"
  "fig09_selection_lt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_selection_lt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
