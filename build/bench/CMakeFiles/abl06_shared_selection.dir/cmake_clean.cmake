file(REMOVE_RECURSE
  "CMakeFiles/abl06_shared_selection.dir/abl06_shared_selection.cc.o"
  "CMakeFiles/abl06_shared_selection.dir/abl06_shared_selection.cc.o.d"
  "abl06_shared_selection"
  "abl06_shared_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl06_shared_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
