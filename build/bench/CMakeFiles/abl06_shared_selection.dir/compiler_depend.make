# Empty compiler generated dependencies file for abl06_shared_selection.
# This may be replaced when dependencies are built.
