file(REMOVE_RECURSE
  "CMakeFiles/abl07_predicate_ranges.dir/abl07_predicate_ranges.cc.o"
  "CMakeFiles/abl07_predicate_ranges.dir/abl07_predicate_ranges.cc.o.d"
  "abl07_predicate_ranges"
  "abl07_predicate_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl07_predicate_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
