# Empty dependencies file for abl07_predicate_ranges.
# This may be replaced when dependencies are built.
