# Empty compiler generated dependencies file for tab01_max_aggregate.
# This may be replaced when dependencies are built.
