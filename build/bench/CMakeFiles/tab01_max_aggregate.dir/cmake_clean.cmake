file(REMOVE_RECURSE
  "CMakeFiles/tab01_max_aggregate.dir/tab01_max_aggregate.cc.o"
  "CMakeFiles/tab01_max_aggregate.dir/tab01_max_aggregate.cc.o.d"
  "tab01_max_aggregate"
  "tab01_max_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_max_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
