# Empty dependencies file for abl01_strategies.
# This may be replaced when dependencies are built.
