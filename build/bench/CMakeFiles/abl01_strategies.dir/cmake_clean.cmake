file(REMOVE_RECURSE
  "CMakeFiles/abl01_strategies.dir/abl01_strategies.cc.o"
  "CMakeFiles/abl01_strategies.dir/abl01_strategies.cc.o.d"
  "abl01_strategies"
  "abl01_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
