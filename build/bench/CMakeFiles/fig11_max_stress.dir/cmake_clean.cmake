file(REMOVE_RECURSE
  "CMakeFiles/fig11_max_stress.dir/fig11_max_stress.cc.o"
  "CMakeFiles/fig11_max_stress.dir/fig11_max_stress.cc.o.d"
  "fig11_max_stress"
  "fig11_max_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_max_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
