# Empty compiler generated dependencies file for fig11_max_stress.
# This may be replaced when dependencies are built.
