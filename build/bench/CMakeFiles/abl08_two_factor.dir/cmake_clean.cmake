file(REMOVE_RECURSE
  "CMakeFiles/abl08_two_factor.dir/abl08_two_factor.cc.o"
  "CMakeFiles/abl08_two_factor.dir/abl08_two_factor.cc.o.d"
  "abl08_two_factor"
  "abl08_two_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl08_two_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
