# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for abl08_two_factor.
