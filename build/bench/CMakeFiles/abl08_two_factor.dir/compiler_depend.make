# Empty compiler generated dependencies file for abl08_two_factor.
# This may be replaced when dependencies are built.
