# Empty dependencies file for abl02_safety_factor.
# This may be replaced when dependencies are built.
