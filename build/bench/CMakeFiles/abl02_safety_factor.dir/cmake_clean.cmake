file(REMOVE_RECURSE
  "CMakeFiles/abl02_safety_factor.dir/abl02_safety_factor.cc.o"
  "CMakeFiles/abl02_safety_factor.dir/abl02_safety_factor.cc.o.d"
  "abl02_safety_factor"
  "abl02_safety_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_safety_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
