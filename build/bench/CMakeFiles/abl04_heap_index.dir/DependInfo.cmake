
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl04_heap_index.cc" "bench/CMakeFiles/abl04_heap_index.dir/abl04_heap_index.cc.o" "gcc" "bench/CMakeFiles/abl04_heap_index.dir/abl04_heap_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/vaolib_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vaolib_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/finance/CMakeFiles/vaolib_finance.dir/DependInfo.cmake"
  "/root/repo/build/src/operators/CMakeFiles/vaolib_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/vao/CMakeFiles/vaolib_vao.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/vaolib_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaolib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
