# Empty dependencies file for abl04_heap_index.
# This may be replaced when dependencies are built.
