file(REMOVE_RECURSE
  "CMakeFiles/abl04_heap_index.dir/abl04_heap_index.cc.o"
  "CMakeFiles/abl04_heap_index.dir/abl04_heap_index.cc.o.d"
  "abl04_heap_index"
  "abl04_heap_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_heap_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
