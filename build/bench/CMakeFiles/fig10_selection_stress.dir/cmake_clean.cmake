file(REMOVE_RECURSE
  "CMakeFiles/fig10_selection_stress.dir/fig10_selection_stress.cc.o"
  "CMakeFiles/fig10_selection_stress.dir/fig10_selection_stress.cc.o.d"
  "fig10_selection_stress"
  "fig10_selection_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_selection_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
