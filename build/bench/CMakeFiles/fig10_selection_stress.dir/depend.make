# Empty dependencies file for fig10_selection_stress.
# This may be replaced when dependencies are built.
