file(REMOVE_RECURSE
  "CMakeFiles/fig12_sum_hotcold.dir/fig12_sum_hotcold.cc.o"
  "CMakeFiles/fig12_sum_hotcold.dir/fig12_sum_hotcold.cc.o.d"
  "fig12_sum_hotcold"
  "fig12_sum_hotcold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sum_hotcold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
