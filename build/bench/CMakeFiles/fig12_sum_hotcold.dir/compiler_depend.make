# Empty compiler generated dependencies file for fig12_sum_hotcold.
# This may be replaced when dependencies are built.
