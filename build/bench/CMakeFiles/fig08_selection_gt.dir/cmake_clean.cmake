file(REMOVE_RECURSE
  "CMakeFiles/fig08_selection_gt.dir/fig08_selection_gt.cc.o"
  "CMakeFiles/fig08_selection_gt.dir/fig08_selection_gt.cc.o.d"
  "fig08_selection_gt"
  "fig08_selection_gt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_selection_gt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
