# Empty compiler generated dependencies file for fig08_selection_gt.
# This may be replaced when dependencies are built.
