# Empty compiler generated dependencies file for abl03_hybrid_sum.
# This may be replaced when dependencies are built.
