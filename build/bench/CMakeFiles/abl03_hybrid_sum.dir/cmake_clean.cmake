file(REMOVE_RECURSE
  "CMakeFiles/abl03_hybrid_sum.dir/abl03_hybrid_sum.cc.o"
  "CMakeFiles/abl03_hybrid_sum.dir/abl03_hybrid_sum.cc.o.d"
  "abl03_hybrid_sum"
  "abl03_hybrid_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_hybrid_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
