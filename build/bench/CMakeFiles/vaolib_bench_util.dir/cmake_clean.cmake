file(REMOVE_RECURSE
  "CMakeFiles/vaolib_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/vaolib_bench_util.dir/bench_util.cc.o.d"
  "CMakeFiles/vaolib_bench_util.dir/selection_sweep.cc.o"
  "CMakeFiles/vaolib_bench_util.dir/selection_sweep.cc.o.d"
  "libvaolib_bench_util.a"
  "libvaolib_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaolib_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
