file(REMOVE_RECURSE
  "libvaolib_bench_util.a"
)
