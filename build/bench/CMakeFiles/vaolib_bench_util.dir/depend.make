# Empty dependencies file for vaolib_bench_util.
# This may be replaced when dependencies are built.
