file(REMOVE_RECURSE
  "CMakeFiles/abl05_function_cache.dir/abl05_function_cache.cc.o"
  "CMakeFiles/abl05_function_cache.dir/abl05_function_cache.cc.o.d"
  "abl05_function_cache"
  "abl05_function_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_function_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
