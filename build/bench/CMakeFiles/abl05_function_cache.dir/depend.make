# Empty dependencies file for abl05_function_cache.
# This may be replaced when dependencies are built.
