# Empty compiler generated dependencies file for mic01_cost_model.
# This may be replaced when dependencies are built.
