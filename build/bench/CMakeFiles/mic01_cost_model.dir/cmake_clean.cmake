file(REMOVE_RECURSE
  "CMakeFiles/mic01_cost_model.dir/mic01_cost_model.cc.o"
  "CMakeFiles/mic01_cost_model.dir/mic01_cost_model.cc.o.d"
  "mic01_cost_model"
  "mic01_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mic01_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
