// Seeded property tests driving ScoreHeap and PredicateRangeCache through
// adversarial operation orderings, checked against trivially-correct
// reference models. Any divergence prints the seed that reproduces it.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "operators/predicate_range_cache.h"
#include "operators/score_heap.h"

namespace vaolib::operators {
namespace {

// --- ScoreHeap vs. a naive map-based priority model ---------------------

/// Reference model: live scores in a map; best = max by score. Scores are
/// drawn distinct so the arg-max is unique and pop order is fully specified.
class ReferenceHeap {
 public:
  void Update(std::size_t index, double score) { live_[index] = score; }
  void Remove(std::size_t index) { live_.erase(index); }

  std::optional<std::pair<std::size_t, double>> PopBest() {
    if (live_.empty()) return std::nullopt;
    auto best = live_.begin();
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    const auto result = *best;
    live_.erase(best);
    return result;
  }

  std::size_t size() const { return live_.size(); }

 private:
  std::map<std::size_t, double> live_;
};

TEST(ScoreHeapPropertyTest, AgreesWithReferenceUnderRandomOps) {
  constexpr std::size_t kIndices = 16;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    ScoreHeap heap;
    heap.Reset(kIndices);
    ReferenceHeap reference;
    double next_score = 0.0;  // strictly increasing => always distinct

    for (int op = 0; op < 400; ++op) {
      const std::int64_t choice = rng.UniformInt(0, 9);
      const auto index =
          static_cast<std::size_t>(rng.UniformInt(0, kIndices - 1));
      if (choice < 5) {
        // Update dominates: heaps degrade under stale-entry pressure.
        next_score += rng.NextDouble() + 1e-9;
        heap.Update(index, next_score);
        reference.Update(index, next_score);
      } else if (choice < 7) {
        heap.Remove(index);
        reference.Remove(index);
      } else {
        std::size_t popped_index = 0;
        double popped_score = 0.0;
        const bool popped = heap.PopBest(&popped_index, &popped_score);
        const auto expected = reference.PopBest();
        ASSERT_EQ(popped, expected.has_value())
            << "seed=" << seed << " op=" << op;
        if (popped) {
          EXPECT_EQ(popped_index, expected->first)
              << "seed=" << seed << " op=" << op;
          EXPECT_DOUBLE_EQ(popped_score, expected->second)
              << "seed=" << seed << " op=" << op;
        }
      }
    }

    // Drain: the heap must surrender exactly the model's remaining entries,
    // in descending score order.
    std::size_t popped_index = 0;
    double popped_score = 0.0;
    double previous = std::numeric_limits<double>::infinity();
    while (reference.size() > 0) {
      ASSERT_TRUE(heap.PopBest(&popped_index, &popped_score)) << seed;
      const auto expected = reference.PopBest();
      ASSERT_TRUE(expected.has_value());
      EXPECT_EQ(popped_index, expected->first) << "seed=" << seed;
      EXPECT_LE(popped_score, previous) << "seed=" << seed;
      previous = popped_score;
    }
    EXPECT_FALSE(heap.PopBest(&popped_index, &popped_score)) << seed;
  }
}

TEST(ScoreHeapPropertyTest, PopConsumesEntryUntilNextUpdate) {
  ScoreHeap heap;
  heap.Reset(2);
  heap.Update(0, 5.0);
  heap.Update(0, 7.0);  // supersedes the 5.0 entry
  std::size_t index = 0;
  double score = 0.0;
  ASSERT_TRUE(heap.PopBest(&index, &score));
  EXPECT_EQ(index, 0u);
  EXPECT_DOUBLE_EQ(score, 7.0);
  // The stale 5.0 entry must not resurface.
  EXPECT_FALSE(heap.PopBest(&index, &score));
  heap.Update(0, 1.0);
  ASSERT_TRUE(heap.PopBest(&index, &score));
  EXPECT_DOUBLE_EQ(score, 1.0);
}

// --- PredicateRangeCache vs. monotone ground truth ----------------------

TEST(PredicateRangeCachePropertyTest, NeverContradictsMonotoneTruth) {
  // Ground truth per key: predicate true iff s <= threshold[key]. Record
  // truthful observations in adversarial (random) order; the cache may
  // answer "unknown" but must never answer wrongly.
  constexpr std::size_t kKeys = 6;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    std::vector<double> threshold(kKeys);
    for (double& t : threshold) t = rng.Uniform(-10.0, 10.0);
    PredicateRangeCache cache(kKeys);

    for (int op = 0; op < 500; ++op) {
      const auto key = static_cast<std::size_t>(rng.UniformInt(0, kKeys - 1));
      const double s = rng.Uniform(-12.0, 12.0);
      if (rng.Bernoulli(0.5)) {
        cache.Record(key, s, /*passes=*/s <= threshold[key]);
      } else {
        const std::optional<bool> known = cache.Lookup(key, s);
        if (known.has_value()) {
          EXPECT_EQ(*known, s <= threshold[key])
              << "seed=" << seed << " key=" << key << " s=" << s;
        }
      }
    }
  }
}

TEST(PredicateRangeCachePropertyTest, KnowledgeOnlyGrows) {
  // Once the cache answers a query, later truthful records must never make
  // it forget (the thresholds only widen).
  Rng rng(99);
  const double threshold = 3.0;
  PredicateRangeCache cache(1);
  std::vector<double> probes;
  for (int i = 0; i < 50; ++i) probes.push_back(rng.Uniform(-5.0, 8.0));

  std::vector<bool> was_known(probes.size(), false);
  for (int round = 0; round < 100; ++round) {
    const double s = rng.Uniform(-5.0, 8.0);
    cache.Record(0, s, s <= threshold);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const std::optional<bool> known = cache.Lookup(0, probes[i]);
      if (was_known[i]) {
        ASSERT_TRUE(known.has_value()) << "round " << round << " forgot";
      }
      if (known.has_value()) {
        was_known[i] = true;
        EXPECT_EQ(*known, probes[i] <= threshold);
      }
    }
  }
}

}  // namespace
}  // namespace vaolib::operators
