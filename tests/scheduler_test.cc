// WorkScheduler policy semantics and accounting, with controllable fake
// tasks, plus scheduled MultiQueryExecutor integration: the per-policy
// guarantees DESIGN.md section 4d documents -- exact budget accounting,
// greedy benefit/cost ordering, fair-share proportionality, EDF ordering
// with reserves, starvation and deadline-miss flags.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "engine/multi_query.h"
#include "engine/scheduler.h"
#include "obs/metrics.h"
#include "testing/workload_gen.h"

namespace vaolib::engine {
namespace {

// A task needing `steps_needed` Step() calls, each charging `cost_per_step`
// work units and shaving a constant slice off its uncertainty.
class FakeTask : public operators::IterationTask {
 public:
  FakeTask(std::uint64_t steps_needed, std::uint64_t cost_per_step,
           double initial_uncertainty)
      : remaining_(steps_needed),
        cost_(cost_per_step),
        uncertainty_(initial_uncertainty),
        drop_(initial_uncertainty / static_cast<double>(steps_needed)) {}

  const char* name() const override { return "fake"; }

 protected:
  Status StepImpl(WorkMeter* meter) override {
    if (meter != nullptr) meter->Charge(WorkKind::kExec, cost_);
    uncertainty_ = std::max(0.0, uncertainty_ - drop_);
    if (--remaining_ == 0) MarkDone(/*converged=*/true);
    return Status::OK();
  }
  double CurrentUncertainty() const override { return uncertainty_; }

 private:
  std::uint64_t remaining_;
  std::uint64_t cost_;
  double uncertainty_;
  double drop_;
};

class FailingTask : public operators::IterationTask {
 public:
  const char* name() const override { return "failing"; }

 protected:
  Status StepImpl(WorkMeter*) override {
    return Status::Internal("solver exploded");
  }
  double CurrentUncertainty() const override { return 1.0; }
};

std::vector<WorkScheduler::Entry> Entries(
    const std::vector<std::unique_ptr<operators::IterationTask>>& tasks,
    std::vector<QuerySchedule> schedules = {}) {
  std::vector<WorkScheduler::Entry> entries(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    entries[i].task = tasks[i].get();
    if (!schedules.empty()) entries[i].schedule = schedules[i];
  }
  return entries;
}

TEST(WorkSchedulerTest, RequiresMeterAndValidEntries) {
  WorkScheduler scheduler(SchedulerOptions{});
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FakeTask>(1, 1, 1.0));

  EXPECT_FALSE(scheduler.Run(Entries(tasks), nullptr).ok());

  WorkMeter meter;
  std::vector<WorkScheduler::Entry> with_null = Entries(tasks);
  with_null.push_back(WorkScheduler::Entry{});
  EXPECT_FALSE(scheduler.Run(with_null, &meter).ok());

  std::vector<WorkScheduler::Entry> bad_priority = Entries(tasks);
  bad_priority[0].schedule.priority = 0.0;
  EXPECT_FALSE(scheduler.Run(bad_priority, &meter).ok());
}

TEST(WorkSchedulerTest, SpendsSumExactlyToMeterDelta) {
  for (const SchedulerPolicy policy :
       {SchedulerPolicy::kGreedyGlobal, SchedulerPolicy::kFairShare,
        SchedulerPolicy::kDeadline}) {
    std::vector<std::unique_ptr<operators::IterationTask>> tasks;
    tasks.push_back(std::make_unique<FakeTask>(7, 3, 50.0));
    tasks.push_back(std::make_unique<FakeTask>(11, 5, 20.0));
    tasks.push_back(std::make_unique<FakeTask>(4, 2, 90.0));

    SchedulerOptions options;
    options.policy = policy;
    options.budget = 37;  // lands mid-task on purpose
    WorkScheduler scheduler(options);
    WorkMeter meter;
    meter.Charge(WorkKind::kExec, 13);  // pre-existing charge is excluded
    const std::uint64_t before = meter.Total();
    const auto stats = scheduler.Run(Entries(tasks), &meter);
    ASSERT_TRUE(stats.ok()) << stats.status();

    std::uint64_t spent_sum = 0;
    for (const TaskScheduleStats& s : *stats) {
      spent_sum += s.spent;
      EXPECT_EQ(s.spent, s.work.Total());
    }
    EXPECT_EQ(spent_sum, meter.Total() - before)
        << SchedulerPolicyName(policy);
  }
}

TEST(WorkSchedulerTest, UnlimitedBudgetConvergesEveryTask) {
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FakeTask>(5, 2, 10.0));
  tasks.push_back(std::make_unique<FakeTask>(9, 1, 4.0));

  WorkScheduler scheduler(SchedulerOptions{});
  WorkMeter meter;
  const auto stats = scheduler.Run(Entries(tasks), &meter);
  ASSERT_TRUE(stats.ok()) << stats.status();
  for (const TaskScheduleStats& s : *stats) {
    EXPECT_TRUE(s.converged);
    EXPECT_FALSE(s.starved);
    EXPECT_GT(s.finished_at, 0u);
  }
  EXPECT_EQ((*stats)[0].spent, 10u);
  EXPECT_EQ((*stats)[1].spent, 9u);
}

TEST(WorkSchedulerTest, GreedyGlobalSpendsBudgetOnBestBenefitPerCost) {
  // Task 0 promises 10x the uncertainty reduction per unit: the greedy
  // policy must finish it before granting the low-yield task anything.
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FakeTask>(10, 1, 100.0));
  tasks.push_back(std::make_unique<FakeTask>(10, 1, 1.0));

  SchedulerOptions options;
  options.budget = 10;
  WorkScheduler scheduler(options);
  WorkMeter meter;
  const auto stats = scheduler.Run(Entries(tasks), &meter);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE((*stats)[0].converged);
  EXPECT_EQ((*stats)[0].steps, 10u);
  EXPECT_FALSE((*stats)[1].converged);
  EXPECT_EQ((*stats)[1].steps, 0u);
  EXPECT_TRUE((*stats)[1].starved);
}

TEST(WorkSchedulerTest, FairShareSplitsBudgetByPriority) {
  // Neither task can finish: the split must track the 3:1 priorities.
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FakeTask>(1000, 1, 10.0));
  tasks.push_back(std::make_unique<FakeTask>(1000, 1, 500.0));

  SchedulerOptions options;
  options.policy = SchedulerPolicy::kFairShare;
  options.budget = 100;
  WorkScheduler scheduler(options);
  WorkMeter meter;
  const auto stats = scheduler.Run(
      Entries(tasks, {QuerySchedule{3.0, 0, 0}, QuerySchedule{1.0, 0, 0}}),
      &meter);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ((*stats)[0].spent + (*stats)[1].spent, 100u);
  // Exact under unit costs: 75/25, modulo one step of rounding.
  EXPECT_NEAR(static_cast<double>((*stats)[0].spent), 75.0, 1.0);
  EXPECT_NEAR(static_cast<double>((*stats)[1].spent), 25.0, 1.0);
}

TEST(WorkSchedulerTest, FairShareNeverStarvesWithinBudget) {
  // Starvation bound: with n equal-priority unit-cost tasks and budget B,
  // every task receives at least floor(B/n) steps.
  constexpr std::size_t kTasks = 4;
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<FakeTask>(100, 1, 10.0 * (i + 1)));
  }
  SchedulerOptions options;
  options.policy = SchedulerPolicy::kFairShare;
  options.budget = 42;
  WorkScheduler scheduler(options);
  WorkMeter meter;
  const auto stats = scheduler.Run(Entries(tasks), &meter);
  ASSERT_TRUE(stats.ok()) << stats.status();
  for (const TaskScheduleStats& s : *stats) {
    EXPECT_GE(s.steps, 42u / kTasks);
    EXPECT_FALSE(s.starved);
  }
}

TEST(WorkSchedulerTest, DeadlineRunsEarliestFirstAndNoDeadlineLast) {
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(std::make_unique<FakeTask>(5, 1, 10.0));
  }
  SchedulerOptions options;
  options.policy = SchedulerPolicy::kDeadline;
  WorkScheduler scheduler(options);
  WorkMeter meter;
  const auto stats = scheduler.Run(
      Entries(tasks, {QuerySchedule{1.0, 50, 0}, QuerySchedule{1.0, 10, 0},
                      QuerySchedule{1.0, 30, 0}, QuerySchedule{1.0, 0, 0}}),
      &meter);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // EDF completion order: deadline 10, 30, 50, then the deadline-free task.
  EXPECT_EQ((*stats)[1].finished_at, 5u);
  EXPECT_EQ((*stats)[2].finished_at, 10u);
  EXPECT_EQ((*stats)[0].finished_at, 15u);
  EXPECT_EQ((*stats)[3].finished_at, 20u);
  for (const TaskScheduleStats& s : *stats) {
    EXPECT_FALSE(s.missed_deadline);
  }
}

TEST(WorkSchedulerTest, DeadlineReservesSurviveAnEarlierHog) {
  // Task 0 has the earliest deadline and endless appetite; task 1 reserved
  // exactly the work it needs. The hog may only consume budget that the
  // reserve does not still require.
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FakeTask>(100, 1, 10.0));
  tasks.push_back(std::make_unique<FakeTask>(10, 1, 10.0));

  SchedulerOptions options;
  options.policy = SchedulerPolicy::kDeadline;
  options.budget = 20;
  WorkScheduler scheduler(options);
  WorkMeter meter;
  const auto stats = scheduler.Run(
      Entries(tasks,
              {QuerySchedule{1.0, 5, 0}, QuerySchedule{1.0, 100, 10}}),
      &meter);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ((*stats)[0].spent, 10u);
  EXPECT_FALSE((*stats)[0].converged);
  EXPECT_TRUE((*stats)[0].missed_deadline);
  EXPECT_EQ((*stats)[1].spent, 10u);
  EXPECT_TRUE((*stats)[1].converged);
  EXPECT_FALSE((*stats)[1].missed_deadline);
}

TEST(WorkSchedulerTest, LateFinishSetsMissedDeadline) {
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FakeTask>(10, 1, 10.0));
  SchedulerOptions options;
  options.policy = SchedulerPolicy::kDeadline;
  WorkScheduler scheduler(options);
  WorkMeter meter;
  const auto stats =
      scheduler.Run(Entries(tasks, {QuerySchedule{1.0, 3, 0}}), &meter);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE((*stats)[0].converged);
  EXPECT_TRUE((*stats)[0].missed_deadline);  // finished at 10, deadline 3
}

TEST(WorkSchedulerTest, AlreadyDoneTasksAreAccountedNotStarved) {
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FakeTask>(1, 1, 1.0));
  tasks.push_back(std::make_unique<FakeTask>(3, 1, 5.0));
  WorkMeter warmup;
  ASSERT_TRUE(tasks[0]->Step(&warmup).ok());
  ASSERT_TRUE(tasks[0]->Done());

  WorkScheduler scheduler(SchedulerOptions{});
  WorkMeter meter;
  const auto stats = scheduler.Run(Entries(tasks), &meter);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ((*stats)[0].steps, 0u);
  EXPECT_TRUE((*stats)[0].converged);
  EXPECT_FALSE((*stats)[0].starved);
  EXPECT_TRUE((*stats)[1].converged);
}

TEST(WorkSchedulerTest, StepErrorFailsTheRun) {
  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FailingTask>());
  WorkScheduler scheduler(SchedulerOptions{});
  WorkMeter meter;
  EXPECT_FALSE(scheduler.Run(Entries(tasks), &meter).ok());
}

TEST(WorkSchedulerTest, RunBumpsPolicyLabelledMetrics) {
  obs::Counter* runs = obs::MetricsRegistry::Global().GetCounter(
      "vaolib_scheduler_runs_total", {{"policy", "fair_share"}});
  const std::uint64_t before = runs->Value();

  std::vector<std::unique_ptr<operators::IterationTask>> tasks;
  tasks.push_back(std::make_unique<FakeTask>(2, 1, 1.0));
  SchedulerOptions options;
  options.policy = SchedulerPolicy::kFairShare;
  WorkScheduler scheduler(options);
  WorkMeter meter;
  ASSERT_TRUE(scheduler.Run(Entries(tasks), &meter).ok());
  EXPECT_EQ(runs->Value(), before + 1);
}

// ---------------------------------------------------------------------------
// Scheduled MultiQueryExecutor integration
// ---------------------------------------------------------------------------

class ScheduledMultiQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing::WorkloadSpec spec;
    spec.rows = 10;
    workload_ = testing::MakeWorkload(spec, /*seed=*/0xC0FFEE);
    for (const engine::QueryKind kind :
         {QueryKind::kSelect, QueryKind::kMax, QueryKind::kSum,
          QueryKind::kTopK}) {
      Rng rng(static_cast<std::uint64_t>(kind) + 7);
      queries_.push_back(testing::MakeQuery(workload_, kind,
                                            /*k=*/2, &rng));
    }
  }

  Result<std::unique_ptr<MultiQueryExecutor>> MakeExecutor(
      SchedulerPolicy policy, std::uint64_t budget) {
    MultiQueryOptions options;
    options.scheduled = true;
    options.scheduler.policy = policy;
    options.scheduler.budget = budget;
    return MultiQueryExecutor::Create(&workload_.relation, Schema{},
                                      queries_, options);
  }

  testing::Workload workload_;
  std::vector<Query> queries_;
};

TEST_F(ScheduledMultiQueryTest, UnbudgetedTickConvergesAndAccountsExactly) {
  auto executor = MakeExecutor(SchedulerPolicy::kGreedyGlobal, 0);
  ASSERT_TRUE(executor.ok()) << executor.status();
  const auto ticks = (*executor)->ProcessTick({});
  ASSERT_TRUE(ticks.ok()) << ticks.status();

  const obs::ExecutionReport& multi = (*executor)->last_tick_report();
  EXPECT_TRUE(multi.scheduled);
  EXPECT_EQ(multi.scheduler_policy, "greedy_global");
  EXPECT_TRUE(multi.converged);

  std::uint64_t spent_sum = 0;
  for (const TickResult& tick : *ticks) {
    EXPECT_TRUE(tick.converged);
    EXPECT_TRUE(tick.report.scheduled);
    EXPECT_EQ(tick.work_units, tick.report.scheduler_spent);
    EXPECT_EQ(tick.work_units, tick.report.work.Total());
    spent_sum += tick.work_units;
  }
  EXPECT_EQ(spent_sum, multi.scheduler_spent);
}

TEST_F(ScheduledMultiQueryTest, BudgetExhaustionDegradesGracefully) {
  // First find the converged spend, then rerun with a fraction of it.
  auto full = MakeExecutor(SchedulerPolicy::kFairShare, 0);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE((*full)->ProcessTick({}).ok());
  const std::uint64_t full_spend = (*full)->last_tick_report().scheduler_spent;
  ASSERT_GT(full_spend, 4u);

  auto budgeted = MakeExecutor(SchedulerPolicy::kFairShare, full_spend / 4);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  const auto ticks = (*budgeted)->ProcessTick({});
  ASSERT_TRUE(ticks.ok()) << ticks.status();

  const obs::ExecutionReport& multi = (*budgeted)->last_tick_report();
  EXPECT_FALSE(multi.converged);
  std::size_t unconverged = 0;
  std::uint64_t spent_sum = 0;
  for (const TickResult& tick : *ticks) {
    if (!tick.converged) ++unconverged;
    spent_sum += tick.work_units;
    // Sound partial answers still carry valid bounds.
    if (tick.kind == QueryKind::kMax || tick.kind == QueryKind::kSum) {
      EXPECT_TRUE(tick.aggregate_bounds.IsValid());
    }
  }
  EXPECT_GT(unconverged, 0u);
  EXPECT_EQ(spent_sum, multi.scheduler_spent);
}

TEST_F(ScheduledMultiQueryTest, SchedulesMustMatchQueryCount) {
  MultiQueryOptions options;
  options.scheduled = true;
  options.schedules.resize(queries_.size() + 1);
  EXPECT_FALSE(MultiQueryExecutor::Create(&workload_.relation, Schema{},
                                          queries_, options)
                   .ok());
}

}  // namespace
}  // namespace vaolib::engine
