// Tests for the SQL-ish query parser and the function registry, including
// end-to-end execution of parsed queries against the engine.

#include <gtest/gtest.h>

#include <memory>

#include "engine/executor.h"
#include "engine/sql_parser.h"
#include "finance/bond_model.h"
#include "workload/portfolio_gen.h"

namespace vaolib::engine {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 5;
    function_ = std::make_unique<finance::BondPricingFunction>(
        workload::GeneratePortfolio(31337, spec),
        finance::BondModelConfig{});
    ASSERT_TRUE(registry_.Register(function_.get()).ok());
    stream_schema_ = Schema({{"rate", ColumnType::kDouble}});
    relation_schema_ = Schema({{"bond_index", ColumnType::kDouble},
                               {"position", ColumnType::kDouble}});
  }

  Result<Query> Parse(std::string_view sql) const {
    return ParseQuery(sql, registry_, stream_schema_, relation_schema_);
  }

  std::unique_ptr<finance::BondPricingFunction> function_;
  FunctionRegistry registry_;
  Schema stream_schema_;
  Schema relation_schema_;
};

TEST_F(SqlParserTest, RegistryRegisterAndLookup) {
  EXPECT_EQ(registry_.size(), 1u);
  EXPECT_TRUE(registry_.Lookup("bond_model").ok());
  EXPECT_FALSE(registry_.Lookup("nope").ok());
  // Duplicate and null registrations rejected.
  EXPECT_EQ(registry_.Register(function_.get()).code(),
            StatusCode::kAlreadyExists);
  FunctionRegistry fresh;
  EXPECT_FALSE(fresh.Register(nullptr).ok());
}

TEST_F(SqlParserTest, ParsesSelection) {
  const auto query =
      Parse("SELECT * FROM bd WHERE bond_model(rate, bond_index) > 100");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->kind, QueryKind::kSelect);
  EXPECT_EQ(query->cmp, operators::Comparator::kGreaterThan);
  EXPECT_DOUBLE_EQ(query->constant, 100.0);
  ASSERT_EQ(query->args.size(), 2u);
  EXPECT_EQ(query->args[0].source, ArgRef::Source::kStreamField);
  EXPECT_EQ(query->args[0].field, "rate");
  EXPECT_EQ(query->args[1].source, ArgRef::Source::kRelationField);
  EXPECT_EQ(query->args[1].field, "bond_index");
}

TEST_F(SqlParserTest, ParsesAllComparators) {
  const struct {
    const char* op;
    operators::Comparator cmp;
  } cases[] = {
      {">", operators::Comparator::kGreaterThan},
      {">=", operators::Comparator::kGreaterEqual},
      {"<", operators::Comparator::kLessThan},
      {"<=", operators::Comparator::kLessEqual},
  };
  for (const auto& c : cases) {
    const auto query = Parse(
        std::string("SELECT * FROM bd WHERE bond_model(rate, bond_index) ") +
        c.op + " 95.5");
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(query->cmp, c.cmp);
    EXPECT_DOUBLE_EQ(query->constant, 95.5);
  }
}

TEST_F(SqlParserTest, ParsesBetween) {
  const auto query = Parse(
      "SELECT * FROM bd WHERE bond_model(rate, bond_index) "
      "BETWEEN 99 AND 101");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->kind, QueryKind::kSelectRange);
  EXPECT_DOUBLE_EQ(query->range_lo, 99.0);
  EXPECT_DOUBLE_EQ(query->range_hi, 101.0);
}

TEST_F(SqlParserTest, ParsesAggregatesWithPrecision) {
  auto query =
      Parse("SELECT MAX(bond_model(rate, bond_index)) FROM bd "
            "PRECISION 0.01");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->kind, QueryKind::kMax);
  EXPECT_DOUBLE_EQ(query->epsilon, 0.01);

  query = Parse("select min(bond_model(rate, bond_index)) from bd "
                "precision 0.05");
  ASSERT_TRUE(query.ok()) << query.status();  // keywords case-insensitive
  EXPECT_EQ(query->kind, QueryKind::kMin);

  query = Parse("SELECT AVE(bond_model(rate, bond_index)) FROM bd");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->kind, QueryKind::kAve);

  query = Parse("SELECT AVG(bond_model(rate, bond_index)) FROM bd");
  ASSERT_TRUE(query.ok());  // AVG synonym
  EXPECT_EQ(query->kind, QueryKind::kAve);
}

TEST_F(SqlParserTest, ParsesWeightedSum) {
  const auto query = Parse(
      "SELECT SUM(bond_model(rate, bond_index), position) FROM bd "
      "PRECISION 5");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->kind, QueryKind::kSum);
  ASSERT_TRUE(query->weight_column.has_value());
  EXPECT_EQ(*query->weight_column, "position");
  EXPECT_DOUBLE_EQ(query->epsilon, 5.0);
}

TEST_F(SqlParserTest, ParsesTopK) {
  const auto query = Parse(
      "SELECT TOP 3 bond_model(rate, bond_index) FROM bd PRECISION 0.01");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->kind, QueryKind::kTopK);
  EXPECT_EQ(query->k, 3u);
}

TEST_F(SqlParserTest, ParsesApproxClause) {
  // Bare APPROX takes every ApproxSpec default.
  auto query =
      Parse("SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query->approx.has_value());
  EXPECT_EQ(*query->approx, ApproxSpec{});

  // Fully specified clause; PRECISION composes with APPROX.
  query = Parse(
      "SELECT AVE(bond_model(rate, bond_index)) FROM bd PRECISION 0.5 "
      "APPROX WITH CONFIDENCE 0.99 ERROR 0.02 SEED 7");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query->approx.has_value());
  EXPECT_DOUBLE_EQ(query->approx->confidence, 0.99);
  EXPECT_DOUBLE_EQ(query->approx->target_rel_error, 0.02);
  EXPECT_EQ(query->approx->seed, 7u);
  EXPECT_DOUBLE_EQ(query->epsilon, 0.5);

  // The sub-clauses are individually optional; keywords case-insensitive.
  query = Parse(
      "select top 2 bond_model(rate, bond_index) from bd approx error 0.1");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE(query->approx.has_value());
  EXPECT_DOUBLE_EQ(query->approx->target_rel_error, 0.1);
  EXPECT_DOUBLE_EQ(query->approx->confidence, ApproxSpec{}.confidence);

  // No APPROX clause -> no spec (exact tier).
  query = Parse("SELECT SUM(bond_model(rate, bond_index)) FROM bd");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(query->approx.has_value());

  // Seeds parse as integers, exactly, through the whole 64-bit range (a
  // double round-trip would lose precision above 2^53).
  query = Parse(
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd "
      "APPROX SEED 18446744073709551615");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->approx->seed, 18446744073709551615ull);
  query = Parse(
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd "
      "APPROX SEED 9007199254740993");  // 2^53 + 1: not a double
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->approx->seed, 9007199254740993ull);
}

TEST_F(SqlParserTest, ApproxClauseRoundTripsThroughFormatQuery) {
  const auto query = Parse(
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd "
      "APPROX WITH CONFIDENCE 0.9 ERROR 0.05 SEED 42");
  ASSERT_TRUE(query.ok()) << query.status();
  const std::string printed = FormatQuery(*query, "bd");
  EXPECT_NE(printed.find("APPROX WITH CONFIDENCE 0.9 ERROR 0.05 SEED 42"),
            std::string::npos)
      << printed;
  const auto reparsed = Parse(printed);
  ASSERT_TRUE(reparsed.ok()) << printed << "\n  " << reparsed.status();
  ASSERT_TRUE(reparsed->approx.has_value());
  EXPECT_EQ(*reparsed->approx, *query->approx);
}

TEST_F(SqlParserTest, ConstantArguments) {
  const auto query =
      Parse("SELECT * FROM bd WHERE bond_model(0.0575, bond_index) > 100");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->args[0].source, ArgRef::Source::kConstant);
  EXPECT_DOUBLE_EQ(query->args[0].constant, 0.0575);
}

TEST_F(SqlParserTest, RejectsMalformedQueries) {
  // Each case carries a distinct failure mode.
  const char* bad[] = {
      "",                                                       // empty
      "UPDATE bd SET x = 1",                                    // not SELECT
      "SELECT * FROM bd",                                       // no WHERE
      "SELECT * FROM bd WHERE nope(rate, bond_index) > 1",      // unknown fn
      "SELECT * FROM bd WHERE bond_model(rate) > 1",            // arity
      "SELECT * FROM bd WHERE bond_model(rate, oops) > 1",      // unknown col
      "SELECT * FROM bd WHERE bond_model(rate, bond_index)",    // no cmp
      "SELECT * FROM bd WHERE bond_model(rate, bond_index) > ", // no const
      "SELECT * FROM bd WHERE bond_model(rate, bond_index) BETWEEN 5 AND 1",
      "SELECT TOP 0 bond_model(rate, bond_index) FROM bd",      // k < 1
      "SELECT TOP 2.5 bond_model(rate, bond_index) FROM bd",    // fractional
      "SELECT MAX(bond_model(rate, bond_index), position) FROM bd",  // weight
      "SELECT SUM(bond_model(rate, bond_index), oops) FROM bd",  // bad weight
      "SELECT MAX(bond_model(rate, bond_index)) FROM bd PRECISION -1",
      "SELECT MAX(bond_model(rate, bond_index)) FROM bd garbage",
      "SELECT % FROM bd",                                       // bad char
      // APPROX is for sampled aggregates only, and its sub-clauses are
      // validated.
      "SELECT * FROM bd WHERE bond_model(rate, bond_index) > 1 APPROX",
      "SELECT MAX(bond_model(rate, bond_index)) FROM bd APPROX",
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX WITH",
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd "
      "APPROX WITH CONFIDENCE 1",
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd "
      "APPROX WITH CONFIDENCE 0",
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX ERROR 0",
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX ERROR -0.5",
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX SEED -1",
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX SEED 1.5",
      // Exponent forms and out-of-range values must be rejected, never cast
      // through a double (UB at >= 2^64, silent precision loss above 2^53).
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX SEED 2e19",
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd "
      "APPROX SEED 18446744073709551616",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(Parse(sql).ok()) << sql;
  }
}

TEST_F(SqlParserTest, ErrorsNameTheOffendingTokenAndPosition) {
  // Every rejection must say WHAT token broke the parse and WHERE, so the
  // server's ERR replies (which carry these messages verbatim) are
  // actionable without access to the server log.
  const auto expect_error = [this](const std::string& sql,
                                   const std::string& fragment,
                                   std::size_t offset) {
    const auto query = Parse(sql);
    ASSERT_FALSE(query.ok()) << sql;
    const std::string message = query.status().message();
    EXPECT_NE(message.find(fragment), std::string::npos)
        << sql << " -> " << message;
    EXPECT_NE(message.find("(at offset " + std::to_string(offset) + ")"),
              std::string::npos)
        << sql << " -> " << message;
  };

  const std::string unknown_fn =
      "SELECT * FROM bd WHERE nope(rate, bond_index) > 1";
  expect_error(unknown_fn, "unknown function 'nope'",
               unknown_fn.find("nope"));

  const std::string zero_precision =
      "SELECT MAX(bond_model(rate, bond_index)) FROM bd PRECISION 0";
  expect_error(zero_precision, "precision must be > 0, got '0'",
               zero_precision.find(" 0") + 1);

  const std::string fractional_top =
      "SELECT TOP 2.5 bond_model(rate, bond_index) FROM bd";
  expect_error(fractional_top, "TOP count must be a positive integer, got '2.5'",
               fractional_top.find("2.5"));

  const std::string inverted_between =
      "SELECT * FROM bd WHERE bond_model(rate, bond_index) BETWEEN 5 AND 1";
  expect_error(inverted_between, "BETWEEN bounds out of order ('5' > '1')",
               inverted_between.find(" AND 1") + 5);

  const std::string approx_on_max =
      "SELECT MAX(bond_model(rate, bond_index)) FROM bd APPROX";
  expect_error(approx_on_max, "APPROX applies to SUM/AVE/TOP-K queries only",
               approx_on_max.find("APPROX"));

  const std::string bad_confidence =
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd "
      "APPROX WITH CONFIDENCE 1.5";
  expect_error(bad_confidence, "confidence must be in (0, 1), got '1.5'",
               bad_confidence.find("1.5"));

  const std::string bad_error =
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX ERROR 0";
  expect_error(bad_error, "relative error target must be > 0, got '0'",
               bad_error.rfind('0'));

  const std::string bad_seed =
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd APPROX SEED 2.5";
  expect_error(bad_seed, "seed must be a non-negative integer, got '2.5'",
               bad_seed.find("2.5"));

  const std::string bad_char = "SELECT % FROM bd";
  expect_error(bad_char, "unexpected character '%'", bad_char.find('%'));

  const std::string truncated = "SELECT * FROM bd";
  expect_error(truncated, "got end of input", truncated.size());

  const std::string trailing =
      "SELECT MAX(bond_model(rate, bond_index)) FROM bd garbage";
  expect_error(trailing, "unexpected trailing input: 'garbage'",
               trailing.find("garbage"));
}

TEST_F(SqlParserTest, ParsedQueryRunsEndToEnd) {
  Relation bd(relation_schema_);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bd.Append({static_cast<double>(i), 1.0}).ok());
  }

  const auto query =
      Parse("SELECT MAX(bond_model(rate, bond_index)) FROM bd "
            "PRECISION 0.01");
  ASSERT_TRUE(query.ok());
  auto executor = CqExecutor::Create(&bd, stream_schema_, *query,
                                     ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok()) << executor.status();
  const auto result = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->winner_row.has_value());
  EXPECT_LE(result->aggregate_bounds.Width(), 0.01);

  // The parsed selection agrees with the parsed MAX winner's bound.
  const auto selection =
      Parse("SELECT * FROM bd WHERE bond_model(rate, bond_index) > 100");
  ASSERT_TRUE(selection.ok());
  auto sel_exec = CqExecutor::Create(&bd, stream_schema_, *selection,
                                     ExecutionMode::kVao);
  ASSERT_TRUE(sel_exec.ok());
  const auto sel_result = (*sel_exec)->ProcessTick({0.0575});
  ASSERT_TRUE(sel_result.ok());
  if (result->aggregate_bounds.lo > 100.0) {
    EXPECT_FALSE(sel_result->passing_rows.empty());
  }
}

}  // namespace
}  // namespace vaolib::engine
