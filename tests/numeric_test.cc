// Unit tests for src/numeric: tridiagonal solver, PDE solver, Richardson
// model, ODE solver, integration, root solvers -- validated against closed
// forms where they exist.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "numeric/integration.h"
#include "numeric/ode_solver.h"
#include "numeric/pde_solver.h"
#include "numeric/richardson.h"
#include "numeric/roots.h"
#include "numeric/tridiagonal.h"

namespace vaolib::numeric {
namespace {

TEST(TridiagonalTest, SolvesKnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
  TridiagonalSystem sys;
  sys.Resize(3);
  sys.diag = {2, 2, 2};
  sys.lower = {0, 1, 1};
  sys.upper = {1, 1, 0};
  sys.rhs = {4, 8, 8};
  std::vector<double> x;
  ASSERT_TRUE(SolveTridiagonal(sys, &x).ok());
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(TridiagonalTest, SingleUnknown) {
  TridiagonalSystem sys;
  sys.Resize(1);
  sys.diag = {4};
  sys.rhs = {8};
  std::vector<double> x;
  ASSERT_TRUE(SolveTridiagonal(sys, &x).ok());
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(TridiagonalTest, RejectsEmptyAndMismatched) {
  TridiagonalSystem sys;
  std::vector<double> x;
  EXPECT_EQ(SolveTridiagonal(sys, &x).code(), StatusCode::kInvalidArgument);
  sys.Resize(3);
  sys.lower.resize(2);
  EXPECT_EQ(SolveTridiagonal(sys, &x).code(), StatusCode::kInvalidArgument);
}

TEST(TridiagonalTest, ReportsZeroPivot) {
  TridiagonalSystem sys;
  sys.Resize(2);
  sys.diag = {0.0, 1.0};
  std::vector<double> x;
  EXPECT_EQ(SolveTridiagonal(sys, &x).code(), StatusCode::kNumericError);
}

TEST(TridiagonalTest, LargeDiagonallyDominantSystem) {
  // -u'' = pi^2 sin(pi x) on (0,1), u(0)=u(1)=0 -> u = sin(pi x).
  const int n = 200;
  const double h = 1.0 / (n + 1);
  TridiagonalSystem sys;
  sys.Resize(n);
  for (int i = 0; i < n; ++i) {
    sys.lower[i] = -1.0;
    sys.diag[i] = 2.0;
    sys.upper[i] = -1.0;
    const double x = h * (i + 1);
    sys.rhs[i] = h * h * std::numbers::pi * std::numbers::pi *
                 std::sin(std::numbers::pi * x);
  }
  std::vector<double> u;
  ASSERT_TRUE(SolveTridiagonal(sys, &u).ok());
  for (int i = 0; i < n; ++i) {
    const double x = h * (i + 1);
    EXPECT_NEAR(u[i], std::sin(std::numbers::pi * x), 1e-3);
  }
}

// ---------------------------------------------------------------------------
// PDE solver

// Constant-reaction problem with closed form: if r(x) = rbar and c(x) = C
// with terminal F = 0, the solution is x-independent:
//   F(t) = (C/rbar) (1 - exp(-rbar (T - t))).
Pde1dProblem ConstantReactionProblem(double rbar, double c, double t_end) {
  Pde1dProblem p;
  p.diffusion = [](double) { return 1e-3; };
  p.convection = [](double x) { return 0.01 - 0.2 * x; };
  p.reaction = [rbar](double) { return rbar; };
  p.source = [c](double) { return c; };
  p.terminal = [](double) { return 0.0; };
  p.x_min = 0.0;
  p.x_max = 0.12;
  p.t_end = t_end;
  return p;
}

TEST(PdeSolverTest, MatchesAnnuityClosedForm) {
  const double rbar = 0.06, c = 23.0, t_end = 5.0;
  const auto problem = ConstantReactionProblem(rbar, c, t_end);
  const double expected = c / rbar * (1.0 - std::exp(-rbar * t_end));

  PdeGrid grid{32, 2048};
  WorkMeter meter;
  const auto result = SolvePde(problem, grid, 0.06, &meter);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result.value(), expected, 0.05);
  EXPECT_EQ(meter.ExecUnits(), grid.MeshEntries());
}

TEST(PdeSolverTest, FirstOrderConvergenceInTime) {
  const double rbar = 0.06, c = 23.0, t_end = 5.0;
  const auto problem = ConstantReactionProblem(rbar, c, t_end);
  const double expected = c / rbar * (1.0 - std::exp(-rbar * t_end));

  double prev_error = 0.0;
  for (int steps : {64, 128, 256}) {
    const auto result = SolvePde(problem, PdeGrid{16, steps}, 0.05, nullptr);
    ASSERT_TRUE(result.ok());
    const double error = std::abs(result.value() - expected);
    if (prev_error > 0.0) {
      // Error should roughly halve per dt halving (O(dt) scheme).
      EXPECT_LT(error, prev_error * 0.7);
    }
    prev_error = error;
  }
}

TEST(PdeSolverTest, HeatEquationWithDirichletBoundaries) {
  // F_t = a F_xx marched backward from terminal sin(pi x) with zero
  // Dirichlet boundaries on [0,1]:
  //   F(x, 0) = exp(-a pi^2 T) sin(pi x).
  const double a = 0.05, t_end = 1.0;
  Pde1dProblem p;
  p.diffusion = [a](double) { return a; };
  p.convection = [](double) { return 0.0; };
  p.reaction = [](double) { return 0.0; };
  p.source = [](double) { return 0.0; };
  p.terminal = [](double x) { return std::sin(std::numbers::pi * x); };
  p.x_min = 0.0;
  p.x_max = 1.0;
  p.t_end = t_end;
  p.left_boundary = BoundaryKind::kDirichlet;
  p.right_boundary = BoundaryKind::kDirichlet;
  p.left_value = [](double) { return 0.0; };
  p.right_value = [](double) { return 0.0; };

  const auto result = SolvePde(p, PdeGrid{64, 1024}, 0.5, nullptr);
  ASSERT_TRUE(result.ok());
  const double expected =
      std::exp(-a * std::numbers::pi * std::numbers::pi * t_end);
  EXPECT_NEAR(result.value(), expected, 2e-3);
}

TEST(PdeSolverTest, ProfileMatchesPointQueries) {
  const auto problem = ConstantReactionProblem(0.05, 10.0, 2.0);
  const PdeGrid grid{16, 64};
  const auto profile = SolvePdeProfile(problem, grid, nullptr);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile.value().size(), 17u);
  // Query exactly at node 4.
  const double x4 = problem.x_min + 4 * grid.Dx(problem);
  const auto point = SolvePde(problem, grid, x4, nullptr);
  ASSERT_TRUE(point.ok());
  EXPECT_NEAR(point.value(), profile.value()[4], 1e-12);
}

TEST(PdeSolverTest, RejectsMalformedInputs) {
  auto problem = ConstantReactionProblem(0.05, 10.0, 2.0);
  EXPECT_EQ(SolvePde(problem, PdeGrid{1, 8}, 0.05, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolvePde(problem, PdeGrid{8, 0}, 0.05, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolvePde(problem, PdeGrid{8, 8}, 99.0, nullptr).status().code(),
            StatusCode::kOutOfRange);
  problem.terminal = nullptr;
  EXPECT_EQ(SolvePde(problem, PdeGrid{8, 8}, 0.05, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  auto neg = ConstantReactionProblem(0.05, 10.0, 2.0);
  neg.diffusion = [](double) { return -1.0; };
  EXPECT_EQ(SolvePde(neg, PdeGrid{8, 8}, 0.05, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  auto dirichlet = ConstantReactionProblem(0.05, 10.0, 2.0);
  dirichlet.left_boundary = BoundaryKind::kDirichlet;  // no left_value
  EXPECT_EQ(
      SolvePde(dirichlet, PdeGrid{8, 8}, 0.05, nullptr).status().code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Richardson model

TEST(RichardsonTest, RecoversCoefficientsFromSyntheticSolutions) {
  // Fabricate F(dt,dx) = A + K1 dt + K2 dx^2 exactly.
  const double A = 100.0, K1 = 2.0, K2 = -300.0;
  const double dt = 0.5, dx = 0.05;
  auto value = [&](double dt_, double dx_) {
    return A + K1 * dt_ + K2 * dx_ * dx_;
  };
  RichardsonModel model(3.0);
  model.EstimateK1(value(dt, dx), value(dt / 2, dx), dt);
  model.EstimateK2(value(dt, dx), value(dt, dx / 2), dx);
  EXPECT_NEAR(model.k1(), K1, 1e-9);
  EXPECT_NEAR(model.k2(), K2, 1e-9);

  // With exact coefficients and safety 3, bounds must contain A and the
  // computed value.
  const Bounds b = model.BoundsFor(value(dt, dx), dt, dx);
  EXPECT_TRUE(b.Contains(A));
  EXPECT_TRUE(b.Contains(value(dt, dx)));
}

TEST(RichardsonTest, BoundsMatchPaperFormWhenK1PosK2Neg) {
  RichardsonModel model(3.0);
  const double dt = 0.25, dx = 0.1;
  model.EstimateK1(10.0, 9.0, dt);   // K1 = 2*(10-9)/0.25 = 8 > 0
  model.EstimateK2(10.0, 10.3, dx);  // K2 = (4/3)(-0.3)/0.01 = -40 < 0
  const Bounds b = model.BoundsFor(10.0, dt, dx);
  EXPECT_NEAR(b.lo, 10.0 - 3.0 * 8.0 * dt, 1e-12);
  EXPECT_NEAR(b.hi, 10.0 - 3.0 * (-40.0) * dx * dx, 1e-12);
}

TEST(RichardsonTest, PreferredAxisPicksDominantError) {
  RichardsonModel model(3.0);
  const double dt = 1.0, dx = 0.1;
  model.EstimateK1(10.0, 9.0, dt);   // |K1*dt| = 2
  model.EstimateK2(10.0, 10.001, dx);  // |K2 dx^2| tiny
  EXPECT_EQ(model.PreferredAxis(dt, dx), StepAxis::kTime);
  model.EstimateK1(10.0, 9.99995, dt);  // now time error tiny
  model.EstimateK2(10.0, 11.0, dx);
  EXPECT_EQ(model.PreferredAxis(dt, dx), StepAxis::kSpace);
}

TEST(RichardsonTest, PredictionShrinksModeledError) {
  RichardsonModel model(2.0);
  const double dt = 1.0, dx = 0.1;
  model.EstimateK1(10.0, 9.0, dt);
  model.EstimateK2(10.0, 10.3, dx);
  const Bounds now = model.BoundsFor(10.0, dt, dx);
  const Bounds pred_t =
      model.PredictBoundsAfterHalving(10.0, dt, dx, StepAxis::kTime);
  EXPECT_LT(pred_t.Width(), now.Width());
  const Bounds pred_x =
      model.PredictBoundsAfterHalving(10.0, dt, dx, StepAxis::kSpace);
  EXPECT_LT(pred_x.Width(), now.Width());
}

// ---------------------------------------------------------------------------
// ODE solver

TEST(OdeSolverTest, ExactForQuadraticSolution) {
  // w'' = 2, w(0)=0, w(2)=4 -> w = x^2 (central differences are exact for
  // quadratics).
  OdeBvpProblem p;
  p.p = [](double) { return 0.0; };
  p.q = [](double) { return 0.0; };
  p.r = [](double) { return 2.0; };
  p.a = 0.0;
  p.b = 2.0;
  p.alpha = 0.0;
  p.beta = 4.0;
  const auto result = SolveOdeBvp(p, 8, 1.0, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value(), 1.0, 1e-10);
}

TEST(OdeSolverTest, MatchesSinhClosedForm) {
  // w'' = w, w(0)=0, w(1)=1 -> w = sinh(x)/sinh(1).
  OdeBvpProblem p;
  p.p = [](double) { return 0.0; };
  p.q = [](double) { return 1.0; };
  p.r = [](double) { return 0.0; };
  p.a = 0.0;
  p.b = 1.0;
  p.alpha = 0.0;
  p.beta = 1.0;
  const auto result = SolveOdeBvp(p, 128, 0.5, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value(), std::sinh(0.5) / std::sinh(1.0), 1e-5);
}

TEST(OdeSolverTest, SecondOrderConvergence) {
  OdeBvpProblem p;
  p.p = [](double) { return 0.0; };
  p.q = [](double) { return 1.0; };
  p.r = [](double) { return 0.0; };
  p.a = 0.0;
  p.b = 1.0;
  p.alpha = 0.0;
  p.beta = 1.0;
  const double exact = std::sinh(0.5) / std::sinh(1.0);
  const double e1 =
      std::abs(SolveOdeBvp(p, 16, 0.5, nullptr).ValueOrDie() - exact);
  const double e2 =
      std::abs(SolveOdeBvp(p, 32, 0.5, nullptr).ValueOrDie() - exact);
  EXPECT_NEAR(e1 / e2, 4.0, 0.6);  // O(dx^2): 4x error drop per halving
}

TEST(OdeSolverTest, BeamDeflectionSymmetricAndNegative) {
  // Uniformly loaded simply-supported beam sags downward symmetrically.
  const auto p = MakeBeamDeflectionProblem(/*stress_s=*/500.0,
                                           /*modulus_e=*/1e7,
                                           /*inertia_i=*/0.1,
                                           /*load_q=*/100.0,
                                           /*length_l=*/10.0);
  WorkMeter meter;
  const auto mid = SolveOdeBvp(p, 64, 5.0, &meter);
  ASSERT_TRUE(mid.ok());
  // r(x) = load*x*(x-l)/(2EI) < 0 inside the span, so w bows away from the
  // chord (positive in this sign convention).
  EXPECT_GT(mid.value(), 0.0);
  EXPECT_EQ(meter.ExecUnits(), 63u);
  const auto quarter = SolveOdeBvp(p, 64, 2.5, nullptr);
  const auto three_quarter = SolveOdeBvp(p, 64, 7.5, nullptr);
  EXPECT_NEAR(quarter.ValueOrDie(), three_quarter.ValueOrDie(), 1e-9);
  EXPECT_GT(mid.value(), quarter.ValueOrDie());  // extremal at midspan
}

TEST(OdeSolverTest, RejectsMalformedInputs) {
  OdeBvpProblem p;
  p.p = [](double) { return 0.0; };
  p.q = [](double) { return 0.0; };
  p.r = [](double) { return 0.0; };
  p.a = 0.0;
  p.b = 1.0;
  EXPECT_EQ(SolveOdeBvp(p, 1, 0.5, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveOdeBvp(p, 8, 2.0, nullptr).status().code(),
            StatusCode::kOutOfRange);
  p.b = -1.0;
  EXPECT_EQ(SolveOdeBvpProfile(p, 8, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Integration

TEST(IntegrationTest, OneShotTrapezoidExactForLinear) {
  const auto result = Integrate([](double x) { return 3.0 * x + 1.0; }, 0.0,
                                2.0, IntegrationRule::kTrapezoid, 1, 1,
                                nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value(), 8.0, 1e-12);
}

TEST(IntegrationTest, OneShotSimpsonExactForCubic) {
  const auto result = Integrate([](double x) { return x * x * x; }, 0.0, 2.0,
                                IntegrationRule::kSimpson, 2, 1, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value(), 4.0, 1e-12);
}

TEST(IntegrationTest, OneShotChargesPerEvaluation) {
  WorkMeter meter;
  ASSERT_TRUE(Integrate([](double x) { return x; }, 0.0, 1.0,
                        IntegrationRule::kTrapezoid, 8, 5, &meter)
                  .ok());
  EXPECT_EQ(meter.ExecUnits(), 9u * 5u);
}

TEST(IntegrationTest, OneShotRejectsBadInputs) {
  const auto f = [](double x) { return x; };
  EXPECT_FALSE(Integrate(f, 1.0, 0.0, IntegrationRule::kTrapezoid, 4, 1,
                         nullptr)
                   .ok());
  EXPECT_FALSE(
      Integrate(f, 0.0, 1.0, IntegrationRule::kSimpson, 3, 1, nullptr).ok());
  EXPECT_FALSE(Integrate(nullptr, 0.0, 1.0, IntegrationRule::kTrapezoid, 4, 1,
                         nullptr)
                   .ok());
}

TEST(RefinableIntegralTest, ConvergesToKnownIntegral) {
  // \int_0^pi sin = 2.
  auto made = RefinableIntegral::Create(
      [](double x) { return std::sin(x); }, 0.0, std::numbers::pi, {},
      nullptr);
  ASSERT_TRUE(made.ok());
  RefinableIntegral integral = std::move(made).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(integral.Refine(nullptr).ok());
  }
  EXPECT_NEAR(integral.estimate(), 2.0, 1e-5);
  EXPECT_TRUE(integral.bounds().Contains(2.0));
}

TEST(RefinableIntegralTest, ErrorBoundContainsTruthThroughRefinement) {
  const double truth = std::exp(1.0) - 1.0;  // \int_0^1 e^x
  auto made = RefinableIntegral::Create(
      [](double x) { return std::exp(x); }, 0.0, 1.0, {}, nullptr);
  ASSERT_TRUE(made.ok());
  RefinableIntegral integral = std::move(made).value();
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(integral.bounds().Contains(truth))
        << "level " << integral.level() << " bounds " << integral.bounds();
    ASSERT_TRUE(integral.Refine(nullptr).ok());
  }
}

TEST(RefinableIntegralTest, ErrorShrinksByAboutFourPerRefine) {
  auto made = RefinableIntegral::Create(
      [](double x) { return std::exp(x); }, 0.0, 1.0, {}, nullptr);
  ASSERT_TRUE(made.ok());
  RefinableIntegral integral = std::move(made).value();
  double prev = integral.error_bound();
  for (int i = 0; i < 6; ++i) {
    const double predicted = integral.PredictedErrorAfterRefine();
    ASSERT_TRUE(integral.Refine(nullptr).ok());
    EXPECT_NEAR(integral.error_bound() / prev, 0.25, 0.1);
    EXPECT_NEAR(integral.error_bound(), predicted, predicted * 0.5);
    prev = integral.error_bound();
  }
}

TEST(RefinableIntegralTest, CumulativeEvaluationsMatchOneShot) {
  // The VAO-interface integrator must not evaluate more points than a
  // one-shot composite rule at the final resolution (Section 4.3).
  WorkMeter meter;
  auto made = RefinableIntegral::Create([](double x) { return x * x; }, 0.0,
                                        1.0, {}, &meter);
  ASSERT_TRUE(made.ok());
  RefinableIntegral integral = std::move(made).value();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(integral.Refine(&meter).ok());
  // Level 6 trapezoid: 2^6 panels -> 65 samples.
  EXPECT_EQ(integral.level(), 6);
  EXPECT_EQ(integral.total_evaluations(), 65u);
  EXPECT_EQ(meter.ExecUnits(), 65u);
}

TEST(RefinableIntegralTest, SimpsonConvergesFaster) {
  RefinableIntegral::Options trap;
  RefinableIntegral::Options simp;
  simp.rule = IntegrationRule::kSimpson;
  auto ft = RefinableIntegral::Create(
      [](double x) { return std::sin(x); }, 0.0, std::numbers::pi, trap,
      nullptr);
  auto fs = RefinableIntegral::Create(
      [](double x) { return std::sin(x); }, 0.0, std::numbers::pi, simp,
      nullptr);
  ASSERT_TRUE(ft.ok());
  ASSERT_TRUE(fs.ok());
  RefinableIntegral t = std::move(ft).value();
  RefinableIntegral s = std::move(fs).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.Refine(nullptr).ok());
    ASSERT_TRUE(s.Refine(nullptr).ok());
  }
  EXPECT_LT(std::abs(s.estimate() - 2.0), std::abs(t.estimate() - 2.0));
}

TEST(RefinableIntegralTest, MaxLevelExhausts) {
  RefinableIntegral::Options options;
  options.max_level = 3;
  auto made = RefinableIntegral::Create([](double x) { return x; }, 0.0, 1.0,
                                        options, nullptr);
  ASSERT_TRUE(made.ok());
  RefinableIntegral integral = std::move(made).value();
  ASSERT_TRUE(integral.Refine(nullptr).ok());  // level 2
  ASSERT_TRUE(integral.Refine(nullptr).ok());  // level 3
  EXPECT_EQ(integral.Refine(nullptr).code(), StatusCode::kResourceExhausted);
}

TEST(RefinableIntegralTest, RejectsBadInputs) {
  EXPECT_FALSE(
      RefinableIntegral::Create(nullptr, 0.0, 1.0, {}, nullptr).ok());
  EXPECT_FALSE(RefinableIntegral::Create([](double x) { return x; }, 1.0,
                                         1.0, {}, nullptr)
                   .ok());
  RefinableIntegral::Options bad;
  bad.safety_factor = 0.5;
  EXPECT_FALSE(RefinableIntegral::Create([](double x) { return x; }, 0.0,
                                         1.0, bad, nullptr)
                   .ok());
}

// ---------------------------------------------------------------------------
// Root solvers

TEST(RootFinderTest, BisectionHalvesBracket) {
  auto made = BracketingRootFinder::Create(
      [](double x) { return x * x - 2.0; }, 0.0, 2.0, {}, nullptr);
  ASSERT_TRUE(made.ok());
  BracketingRootFinder finder = std::move(made).value();
  double prev = finder.bounds().Width();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(finder.Step(nullptr).ok());
    EXPECT_NEAR(finder.bounds().Width(), prev / 2.0, 1e-12);
    EXPECT_TRUE(finder.bounds().Contains(std::sqrt(2.0)));
    prev = finder.bounds().Width();
  }
  EXPECT_NEAR(finder.bounds().Mid(), std::sqrt(2.0), 1e-5);
}

TEST(RootFinderTest, IllinoisConvergesFasterOnSmoothFunction) {
  BracketingRootFinder::Options illinois;
  illinois.method = RootMethod::kIllinois;
  auto fb = BracketingRootFinder::Create(
      [](double x) { return std::cos(x) - x; }, 0.0, 1.5, {}, nullptr);
  auto fi = BracketingRootFinder::Create(
      [](double x) { return std::cos(x) - x; }, 0.0, 1.5, illinois, nullptr);
  ASSERT_TRUE(fb.ok());
  ASSERT_TRUE(fi.ok());
  BracketingRootFinder bisect = std::move(fb).value();
  BracketingRootFinder ill = std::move(fi).value();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(bisect.Step(nullptr).ok());
    ASSERT_TRUE(ill.Step(nullptr).ok());
  }
  EXPECT_LT(ill.bounds().Width(), bisect.bounds().Width());
  EXPECT_TRUE(ill.bounds().Contains(0.7390851332151607));
}

TEST(RootFinderTest, ExactRootAtProbeCollapsesBracket) {
  auto made = BracketingRootFinder::Create([](double x) { return x; }, -1.0,
                                           1.0, {}, nullptr);
  ASSERT_TRUE(made.ok());
  BracketingRootFinder finder = std::move(made).value();
  ASSERT_TRUE(finder.Step(nullptr).ok());  // probes 0 exactly
  EXPECT_DOUBLE_EQ(finder.bounds().Width(), 0.0);
  ASSERT_TRUE(finder.Step(nullptr).ok());  // no-op afterwards
  EXPECT_DOUBLE_EQ(finder.bounds().Width(), 0.0);
}

TEST(RootFinderTest, ExactRootAtEndpointDegenerates) {
  auto made = BracketingRootFinder::Create(
      [](double x) { return x - 1.0; }, 1.0, 3.0, {}, nullptr);
  ASSERT_TRUE(made.ok());
  EXPECT_DOUBLE_EQ(made.value().bounds().Width(), 0.0);
}

TEST(RootFinderTest, RejectsNonStraddlingBracket) {
  EXPECT_FALSE(BracketingRootFinder::Create(
                   [](double x) { return x * x + 1.0; }, -1.0, 1.0, {},
                   nullptr)
                   .ok());
  EXPECT_FALSE(BracketingRootFinder::Create([](double x) { return x; }, 2.0,
                                            1.0, {}, nullptr)
                   .ok());
}

TEST(RootFinderTest, ChargesWorkPerEvaluation) {
  BracketingRootFinder::Options options;
  options.work_per_eval = 10;
  WorkMeter meter;
  auto made = BracketingRootFinder::Create(
      [](double x) { return x - 0.3; }, 0.0, 1.0, options, &meter);
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(meter.ExecUnits(), 20u);  // two endpoint evals
  BracketingRootFinder finder = std::move(made).value();
  ASSERT_TRUE(finder.Step(&meter).ok());
  EXPECT_EQ(meter.ExecUnits(), 30u);
}

TEST(RootFinderTest, PredictedBoundsAreHalfTheBracket) {
  auto made = BracketingRootFinder::Create(
      [](double x) { return x - 0.3; }, 0.0, 1.0, {}, nullptr);
  ASSERT_TRUE(made.ok());
  BracketingRootFinder finder = std::move(made).value();
  const Bounds predicted = finder.PredictedBoundsAfterStep();
  EXPECT_NEAR(predicted.Width(), finder.bounds().Width() / 2.0, 1e-12);
}

}  // namespace
}  // namespace vaolib::numeric
