// Unit tests for src/obs/execution_report and its engine wiring: the
// WorkByKind meter snapshots, the JSON round-trip (RenderJson -> FromJson),
// the Prometheus rendering, and -- the acceptance criterion of the
// observability layer -- that a SELECT query through CqExecutor yields a
// report whose work-unit total equals the legacy WorkMeter total exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/work_meter.h"
#include "obs/trace.h"
#include "engine/executor.h"
#include "engine/multi_query.h"
#include "engine/query.h"
#include "engine/relation.h"
#include "engine/schema.h"
#include "finance/bond_model.h"
#include "obs/execution_report.h"
#include "vao/function_cache.h"
#include "workload/portfolio_gen.h"

namespace vaolib::obs {
namespace {

TEST(WorkByKindTest, CaptureAndDeltaTrackTheMeter) {
  WorkMeter meter;
  meter.Charge(WorkKind::kExec, 10);
  meter.Charge(WorkKind::kGetState, 3);
  const WorkByKind before = WorkByKind::Capture(meter);
  EXPECT_EQ(before.exec, 10u);
  EXPECT_EQ(before.get_state, 3u);
  EXPECT_EQ(before.Total(), 13u);

  meter.Charge(WorkKind::kExec, 5);
  meter.Charge(WorkKind::kStoreState, 2);
  meter.Charge(WorkKind::kChooseIter, 1);
  const WorkByKind delta = WorkByKind::Capture(meter).DeltaSince(before);
  EXPECT_EQ(delta.exec, 5u);
  EXPECT_EQ(delta.get_state, 0u);
  EXPECT_EQ(delta.store_state, 2u);
  EXPECT_EQ(delta.choose_iter, 1u);
  EXPECT_EQ(delta.Total(), 8u);
  EXPECT_EQ(WorkByKind::Capture(meter).Total(), meter.Total());
}

// A report with every field set to a distinct value, so a round-trip that
// drops or swaps any field fails the equality check.
ExecutionReport FullySetReport() {
  ExecutionReport report;
  report.query_kind = "select";
  report.work = {101, 102, 103, 104};
  for (int k = 0; k < kNumSolverKinds; ++k) {
    report.solver_work[k] = 200u + static_cast<std::uint64_t>(k);
  }
  report.iterations = 301;
  report.coarse_iterations = 302;
  report.greedy_iterations = 303;
  report.finalize_iterations = 304;
  report.choose_steps = 305;
  report.objects_touched = 306;
  report.rows_scanned = 401;
  report.rows_short_circuited = 402;
  report.has_cache = true;
  report.cache_hits = 501;
  report.cache_misses = 502;
  report.cache_evictions = 503;
  report.cache_shards = {{511, 512, 513}, {521, 522, 523}};
  report.pool_parallel_fors = 601;
  report.pool_tasks_enqueued = 602;
  report.pool_chunks_executed = 603;
  report.pool_queue_wait_nanos = 604;
  report.scheduled = true;
  report.scheduler_policy = "deadline";
  report.scheduler_budget = 701;
  report.scheduler_spent = 702;
  report.scheduler_steps = 703;
  report.scheduler_finished_at = 704;
  report.converged = false;
  report.starved = true;
  report.missed_deadline = true;
  report.answer_mode = "approximate";
  report.answer_confidence = 0.975;
  report.sample_size = 711;
  report.sample_population = 712;
  report.deterministic_width = 0.25;  // dyadic: exact through %.17g
  report.sampling_width = 1.5;
  report.answer_width = 0.0625;  // dyadic: exact through %.17g
  report.answer_rel_width = 0.03125;
  report.limited_by_min_width = true;
  for (int k = 0; k < kNumSolverKinds; ++k) {
    CalibrationKindStats& c = report.calibration[k];
    const double base = static_cast<double>(k + 1);
    c.samples = 800u + static_cast<std::uint64_t>(k);
    c.cost_err_sum = -0.125 * base;  // dyadic: exact through %.17g
    c.cost_abs_err_sum = 0.25 * base;
    c.lo_err_sum = -0.5 * base;
    c.lo_abs_err_sum = 0.5 * base;
    c.hi_err_sum = 1.5 * base;
    c.hi_abs_err_sum = 2.5 * base;
  }
  return report;
}

TEST(ExecutionReportTest, JsonRoundTripPreservesEveryField) {
  const ExecutionReport original = FullySetReport();
  std::ostringstream os;
  original.RenderJson(os);

  const auto parsed = ExecutionReport::FromJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, original);
}

TEST(ExecutionReportTest, JsonRoundTripOfDefaultReport) {
  ExecutionReport original;
  original.query_kind = "max";
  std::ostringstream os;
  original.RenderJson(os);
  const auto parsed = ExecutionReport::FromJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, original);
  EXPECT_FALSE(parsed->has_cache);
  EXPECT_TRUE(parsed->cache_shards.empty());
}

TEST(ExecutionReportTest, AnswerSectionRoundTripsAndGatesPrometheus) {
  // A sampled aggregate's provenance survives JSON print/parse...
  ExecutionReport approx;
  approx.query_kind = "sum";
  approx.answer_mode = "approximate";
  approx.answer_confidence = 0.95;
  approx.sample_size = 40;
  approx.sample_population = 400;
  approx.deterministic_width = 0.5;
  approx.sampling_width = 2.5;
  std::ostringstream os;
  approx.RenderJson(os);
  EXPECT_NE(os.str().find("\"answer\""), std::string::npos);
  const auto parsed = ExecutionReport::FromJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, approx);

  // ...and only approximate answers emit the sampling gauges.
  std::ostringstream prom_approx;
  approx.RenderPrometheus(prom_approx);
  EXPECT_NE(prom_approx.str().find("vaolib_query_answer_confidence"),
            std::string::npos);
  EXPECT_NE(prom_approx.str().find("vaolib_query_sample_size"),
            std::string::npos);

  ExecutionReport exact;
  exact.query_kind = "sum";
  std::ostringstream prom_exact;
  exact.RenderPrometheus(prom_exact);
  EXPECT_EQ(prom_exact.str().find("vaolib_query_answer_confidence"),
            std::string::npos);

  // Exact reports round-trip with the default answer section untouched.
  std::ostringstream exact_os;
  exact.RenderJson(exact_os);
  const auto exact_parsed = ExecutionReport::FromJson(exact_os.str());
  ASSERT_TRUE(exact_parsed.ok()) << exact_parsed.status();
  EXPECT_EQ(exact_parsed->answer_mode, "exact");
  EXPECT_EQ(exact_parsed->sample_size, 0u);
}

TEST(ExecutionReportTest, SchedulerFieldsSurviveTheRoundTrip) {
  ExecutionReport original;
  original.query_kind = "sum";
  original.scheduled = true;
  original.scheduler_policy = "fair_share";
  original.scheduler_budget = 1000;
  original.scheduler_spent = 999;
  original.scheduler_steps = 17;
  original.scheduler_finished_at = 0;  // unfinished
  original.converged = false;
  original.starved = true;
  original.missed_deadline = true;

  std::ostringstream os;
  original.RenderJson(os);
  const auto parsed = ExecutionReport::FromJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->scheduler_spent, 999u);
  EXPECT_TRUE(parsed->starved);
  EXPECT_TRUE(parsed->missed_deadline);
  EXPECT_FALSE(parsed->converged);
  EXPECT_EQ(*parsed, original);
}

TEST(ExecutionReportTest, CalibrationBlockRoundTripsAndDerivesBiasMae) {
  ExecutionReport original;
  original.query_kind = "max";
  CalibrationKindStats& ode =
      original.calibration[static_cast<int>(SolverKind::kOde)];
  ode.samples = 4;
  ode.cost_err_sum = -2.0;  // estimator overshot cost by 0.5/sample
  ode.cost_abs_err_sum = 3.0;
  ode.lo_err_sum = 1.0;
  ode.lo_abs_err_sum = 1.0;
  ode.hi_err_sum = -0.5;
  ode.hi_abs_err_sum = 0.5;

  std::ostringstream os;
  original.RenderJson(os);
  const auto parsed = ExecutionReport::FromJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, original);

  const CalibrationKindStats& back =
      parsed->calibration[static_cast<int>(SolverKind::kOde)];
  EXPECT_DOUBLE_EQ(back.CostBias(), -0.5);
  EXPECT_DOUBLE_EQ(back.CostMae(), 0.75);
  EXPECT_DOUBLE_EQ(back.LoBias(), 0.25);
  EXPECT_DOUBLE_EQ(back.HiMae(), 0.125);
  // Empty kinds stay all-zero with well-defined derived views.
  const CalibrationKindStats& empty =
      parsed->calibration[static_cast<int>(SolverKind::kRoot)];
  EXPECT_EQ(empty.samples, 0u);
  EXPECT_DOUBLE_EQ(empty.CostBias(), 0.0);
}

TEST(ExecutionReportTest, ZeroSampleCalibrationNeverEmitsNaN) {
  // Regression: zero-sample solver kinds used to derive bias/MAE as 0/0 =
  // NaN, which leaked into the JSON and broke the round-trip. The guarded
  // accessors must return 0.0 for every derived view.
  const CalibrationKindStats empty;
  EXPECT_EQ(empty.CostBias(), 0.0);
  EXPECT_EQ(empty.CostMae(), 0.0);
  EXPECT_EQ(empty.LoBias(), 0.0);
  EXPECT_EQ(empty.LoMae(), 0.0);
  EXPECT_EQ(empty.HiBias(), 0.0);
  EXPECT_EQ(empty.HiMae(), 0.0);
  const CalibrationSnapshot::Kind live;
  EXPECT_EQ(live.CostBias(), 0.0);
  EXPECT_EQ(live.CostMae(), 0.0);
  EXPECT_EQ(live.LoBias(), 0.0);
  EXPECT_EQ(live.LoMae(), 0.0);
  EXPECT_EQ(live.HiBias(), 0.0);
  EXPECT_EQ(live.HiMae(), 0.0);
}

TEST(ExecutionReportTest, PoisonedCalibrationSumsStillRoundTripAsJson) {
  // Even if a non-finite error sum sneaks into the report (a solver that
  // produced inf bounds before the sample filter), RenderJson must stay
  // parseable: non-finite doubles render as 0.
  ExecutionReport report;
  report.query_kind = "max";
  CalibrationKindStats& bad = report.calibration[0];
  bad.samples = 2;
  bad.cost_err_sum = std::numeric_limits<double>::quiet_NaN();
  bad.hi_abs_err_sum = std::numeric_limits<double>::infinity();
  std::ostringstream os;
  report.RenderJson(os);
  const auto parsed = ExecutionReport::FromJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const CalibrationKindStats& back = parsed->calibration[0];
  EXPECT_EQ(back.samples, 2u);
  EXPECT_TRUE(std::isfinite(back.cost_err_sum));
  EXPECT_TRUE(std::isfinite(back.hi_abs_err_sum));
  EXPECT_TRUE(std::isfinite(back.CostBias()));
  EXPECT_TRUE(std::isfinite(back.HiMae()));
}

TEST(ExecutionReportTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(ExecutionReport::FromJson("").ok());
  EXPECT_FALSE(ExecutionReport::FromJson("not json").ok());
  EXPECT_FALSE(ExecutionReport::FromJson("{\"query_kind\": \"x\"}").ok());
  EXPECT_FALSE(ExecutionReport::FromJson("{\"query_kind\": 3}").ok());
  // Trailing garbage after a valid value is an error, not ignored.
  std::ostringstream os;
  FullySetReport().RenderJson(os);
  EXPECT_FALSE(ExecutionReport::FromJson(os.str() + "x").ok());
}

TEST(ExecutionReportTest, RenderPrometheusEmitsLabeledGauges) {
  const ExecutionReport report = FullySetReport();
  std::ostringstream os;
  report.RenderPrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE vaolib_query_work_units gauge"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("vaolib_query_work_units{kind=\"select\",work=\"exec\"} 101"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find(
                "vaolib_query_solver_work_units{kind=\"select\",solver=\"pde\"}"
                " 200"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("vaolib_query_rows{kind=\"select\",outcome=\"scanned\"} 401"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find(
                "vaolib_query_cache_events{kind=\"select\",event=\"hit\"} 501"),
            std::string::npos)
      << text;

  // The cache family is omitted entirely when no cache was attached.
  ExecutionReport no_cache = report;
  no_cache.has_cache = false;
  std::ostringstream os2;
  no_cache.RenderPrometheus(os2);
  EXPECT_EQ(os2.str().find("vaolib_query_cache_events"), std::string::npos);
}

#ifndef VAOLIB_OBS_DISABLED
TEST(ExecutionReportTest, RecordTickMetricsBumpsGlobalCounters) {
  ASSERT_TRUE(Enabled());
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* ticks = registry.GetCounter("vaolib_ticks_total");
  Counter* exec = registry.GetCounter("vaolib_work_units_total",
                                      {{"kind", "exec"}});
  const std::uint64_t ticks_before = ticks->Value();
  const std::uint64_t exec_before = exec->Value();

  RecordTickMetrics(FullySetReport());

  EXPECT_EQ(ticks->Value(), ticks_before + 1);
  EXPECT_EQ(exec->Value(), exec_before + 101);
}
#endif  // VAOLIB_OBS_DISABLED

// ---------------------------------------------------------------------------
// Engine integration: the per-query report attached to TickResult.

using engine::ArgRef;
using engine::ColumnType;
using engine::CqExecutor;
using engine::ExecutionMode;
using engine::MultiQueryExecutor;
using engine::Query;
using engine::QueryKind;
using engine::Relation;
using engine::Schema;
using engine::TickResult;
using engine::Tuple;

class ReportIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 6;
    bonds_ = workload::GeneratePortfolio(2024, spec);
    function_ = std::make_unique<finance::BondPricingFunction>(
        bonds_, finance::BondModelConfig{});

    relation_ = std::make_unique<Relation>(
        Schema({{"bond_index", ColumnType::kDouble},
                {"weight", ColumnType::kDouble}}));
    for (std::size_t i = 0; i < bonds_.size(); ++i) {
      ASSERT_TRUE(
          relation_->Append({static_cast<double>(i), i == 0 ? 10.0 : 1.0})
              .ok());
    }
    stream_schema_ = Schema({{"rate", ColumnType::kDouble}});
  }

  Query BaseQuery() const {
    Query query;
    query.function = function_.get();
    query.args = {ArgRef::StreamField("rate"),
                  ArgRef::RelationField("bond_index")};
    return query;
  }

  std::vector<finance::Bond> bonds_;
  std::unique_ptr<finance::BondPricingFunction> function_;
  std::unique_ptr<Relation> relation_;
  Schema stream_schema_;
};

// The acceptance criterion: report.work is an exact WorkMeter delta, so its
// total equals the legacy work_units field for the same tick.
TEST_F(ReportIntegrationTest, SelectReportWorkMatchesLegacyWorkUnits) {
  Query query = BaseQuery();
  query.kind = QueryKind::kSelect;
  query.cmp = operators::Comparator::kGreaterThan;
  query.constant = 100.0;

  auto executor =
      CqExecutor::Create(relation_.get(), stream_schema_, query,
                         ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok());
  const auto result = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(result.ok()) << result.status();

  const ExecutionReport& report = result->report;
  EXPECT_EQ(report.query_kind, "select");
  EXPECT_EQ(report.work.Total(), result->work_units);
  EXPECT_EQ(report.work.Total(), (*executor)->meter().Total());
  EXPECT_GT(report.work.exec, 0u);
  EXPECT_EQ(report.rows_scanned, bonds_.size());
  EXPECT_LE(report.rows_short_circuited, report.rows_scanned);
  EXPECT_LE(report.objects_touched, bonds_.size());
  // Selection is all greedy loop: no coarse pre-phase, no finalization.
  // (iterations can be zero when every row's initial bounds already decide
  // the predicate -- exactly the adaptive win the report exposes.)
  EXPECT_EQ(report.greedy_iterations, report.iterations);
  EXPECT_EQ(report.coarse_iterations, 0u);
  EXPECT_EQ(report.finalize_iterations, 0u);
  EXPECT_FALSE(report.has_cache);

  // A real executor report survives the JSON round-trip bit-for-bit.
  std::ostringstream os;
  report.RenderJson(os);
  const auto parsed = ExecutionReport::FromJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, report);
}

TEST_F(ReportIntegrationTest, TraditionalModeNeverShortCircuits) {
  Query query = BaseQuery();
  query.kind = QueryKind::kSelect;
  query.cmp = operators::Comparator::kGreaterThan;
  query.constant = 100.0;

  auto executor =
      CqExecutor::Create(relation_.get(), stream_schema_, query,
                         ExecutionMode::kTraditional);
  ASSERT_TRUE(executor.ok());
  const auto result = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->report.query_kind, "select");
  EXPECT_EQ(result->report.work.Total(), result->work_units);
  EXPECT_EQ(result->report.rows_scanned, bonds_.size());
  EXPECT_EQ(result->report.rows_short_circuited, 0u);
}

TEST_F(ReportIntegrationTest, AggregateReportsCountOperatorPhases) {
  Query query = BaseQuery();
  query.kind = QueryKind::kMax;
  query.epsilon = 0.01;

  // threads = 2 turns on the parallel coarse pre-phase in min_max.
  auto executor = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                     ExecutionMode::kVao, /*threads=*/2);
  ASSERT_TRUE(executor.ok());
  const auto result = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(result.ok()) << result.status();

  const ExecutionReport& report = result->report;
  EXPECT_EQ(report.query_kind, "max");
  EXPECT_EQ(report.work.Total(), result->work_units);
  // min_max has a coarse pre-phase and a greedy refinement loop, and the
  // phase split must account for every Iterate() call.
  EXPECT_GT(report.coarse_iterations, 0u);
  EXPECT_GT(report.iterations, 0u);
  EXPECT_EQ(report.iterations, report.coarse_iterations +
                                   report.greedy_iterations +
                                   report.finalize_iterations);
}

TEST_F(ReportIntegrationTest, CachingFunctionPopulatesCacheSection) {
  const vao::CachingFunction cached(function_.get());
  Query query = BaseQuery();
  query.function = &cached;
  query.kind = QueryKind::kSelect;
  query.cmp = operators::Comparator::kGreaterThan;
  query.constant = 100.0;

  auto executor = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                     ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok());

  const auto first = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->report.has_cache);
  EXPECT_FALSE(first->report.cache_shards.empty());
  EXPECT_GT(first->report.cache_misses, 0u);  // cold cache

  // Identical tick: bounds cached per (rate, bond) key, so lookups hit.
  const auto second = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->report.has_cache);
  EXPECT_GT(second->report.cache_hits, 0u);
  EXPECT_LE(second->report.work.Total(), first->report.work.Total());

  // Per-shard deltas sum to the headline hit/miss counts.
  std::uint64_t shard_hits = 0;
  std::uint64_t shard_misses = 0;
  for (const auto& shard : second->report.cache_shards) {
    shard_hits += shard.hits;
    shard_misses += shard.misses;
  }
  EXPECT_EQ(shard_hits, second->report.cache_hits);
  EXPECT_EQ(shard_misses, second->report.cache_misses);
}

TEST_F(ReportIntegrationTest, MultiQueryTickReportCoversWholeTick) {
  Query select = BaseQuery();
  select.kind = QueryKind::kSelect;
  select.cmp = operators::Comparator::kGreaterThan;
  select.constant = 100.0;
  Query max = BaseQuery();
  max.kind = QueryKind::kMax;
  max.epsilon = 0.01;

  auto executor = MultiQueryExecutor::Create(relation_.get(), stream_schema_,
                                             {select, max});
  ASSERT_TRUE(executor.ok()) << executor.status();
  const auto results = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);

  // Every per-query report's work section matches that query's work_units.
  for (const TickResult& result : *results) {
    EXPECT_EQ(result.report.work.Total(), result.work_units);
  }
  EXPECT_EQ((*results)[0].report.query_kind, "select");
  EXPECT_EQ((*results)[1].report.query_kind, "max");

  // The tick-wide report accounts for the whole meter, shared object
  // creation included.
  const ExecutionReport& tick = (*executor)->last_tick_report();
  EXPECT_EQ(tick.query_kind, "multi");
  EXPECT_EQ(tick.work.Total(), (*executor)->meter().Total());
  EXPECT_EQ(tick.rows_scanned, bonds_.size());
  EXPECT_EQ(tick.iterations, (*results)[0].report.iterations +
                                 (*results)[1].report.iterations);
}

TEST(ExecutionReportTest, ProgressBlockRoundTripsAndIsOptional) {
  ExecutionReport report;
  report.query_kind = "max";
  report.answer_width = 0.125;
  report.answer_rel_width = 0.0625;
  report.limited_by_min_width = true;

  std::ostringstream os;
  report.RenderJson(os);
  const std::string json = os.str();
  // The convergence trajectory the health plane's ProgressRing samples.
  EXPECT_NE(json.find("\"progress\": {\"width\": 0.125"),
            std::string::npos);
  EXPECT_NE(json.find("\"limited_by_min_width\": true"), std::string::npos);

  const auto parsed = ExecutionReport::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->answer_width, 0.125);
  EXPECT_DOUBLE_EQ(parsed->answer_rel_width, 0.0625);
  EXPECT_TRUE(parsed->limited_by_min_width);

  // Reports emitted before the progress block existed still parse; the
  // fields just stay at their zero defaults.
  std::string legacy_json = json;
  const std::size_t begin = legacy_json.find("\"progress\": {");
  ASSERT_NE(begin, std::string::npos);
  const std::size_t end = legacy_json.find("}, ", begin);
  ASSERT_NE(end, std::string::npos);
  legacy_json.erase(begin, end - begin + 3);
  const auto legacy = ExecutionReport::FromJson(legacy_json);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_DOUBLE_EQ(legacy->answer_width, 0.0);
  EXPECT_FALSE(legacy->limited_by_min_width);
}

}  // namespace
}  // namespace vaolib::obs
