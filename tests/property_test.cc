// Property-based suites (parameterized gtest): the soundness and
// equivalence invariants of the VAO design, swept across seeds, rates, and
// function families.
//
//  * Soundness: result-object bounds always contain the converged answer,
//    at every iteration, for every solver class.
//  * Equivalence: VAO operators produce the same answers as traditional
//    black-box operators (selection sets, argmax rows, sums within epsilon).
//  * Cost model: converge-work stays within the paper's ~2x bound of the
//    traditional cost for PDE functions, and ~1x for integrators/roots.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "common/rng.h"
#include "finance/bond_model.h"
#include "operators/min_max.h"
#include "operators/selection.h"
#include "operators/sum_ave.h"
#include "operators/traditional.h"
#include "vao/black_box.h"
#include "vao/integral_result_object.h"
#include "vao/root_result_object.h"
#include "workload/portfolio_gen.h"
#include "workload/selectivity.h"

namespace vaolib {
namespace {

using finance::BondModelConfig;
using finance::BondPricingFunction;

// ---------------------------------------------------------------------------
// PDE result-object soundness across portfolio seeds and rates.

struct BondCase {
  std::uint64_t seed;
  double rate;
};

class PdeSoundnessProperty : public ::testing::TestWithParam<BondCase> {};

TEST_P(PdeSoundnessProperty, BoundsAlwaysContainConvergedValue) {
  const BondCase param = GetParam();
  workload::PortfolioSpec spec;
  spec.count = 3;
  BondPricingFunction function(
      workload::GeneratePortfolio(param.seed, spec), BondModelConfig{});

  for (int bond = 0; bond < spec.count; ++bond) {
    // First converge a twin object to learn the answer.
    WorkMeter scratch;
    auto oracle = function.Invoke(function.ArgsFor(param.rate, bond),
                                  &scratch);
    ASSERT_TRUE(oracle.ok());
    ASSERT_TRUE(vao::ConvergeToMinWidth(oracle->get()).ok());
    const double truth = (*oracle)->bounds().Mid();

    // Then check every intermediate state of a fresh object.
    WorkMeter meter;
    auto object = function.Invoke(function.ArgsFor(param.rate, bond),
                                  &meter);
    ASSERT_TRUE(object.ok());
    double prev_width = (*object)->bounds().Width();
    int iteration = 0;
    while (!(*object)->AtStoppingCondition()) {
      EXPECT_TRUE((*object)->bounds().Contains(truth))
          << "seed " << param.seed << " bond " << bond << " iter "
          << iteration << " bounds " << (*object)->bounds() << " truth "
          << truth;
      ASSERT_TRUE((*object)->Iterate().ok());
      EXPECT_LE((*object)->bounds().Width(), prev_width * 1.05);
      prev_width = (*object)->bounds().Width();
      ++iteration;
    }
    EXPECT_NEAR((*object)->bounds().Mid(), truth, 0.02);
  }
}

TEST_P(PdeSoundnessProperty, ConvergeWorkWithinPaperCostModel) {
  const BondCase param = GetParam();
  workload::PortfolioSpec spec;
  spec.count = 2;
  BondPricingFunction function(
      workload::GeneratePortfolio(param.seed + 1000, spec),
      BondModelConfig{});
  for (int bond = 0; bond < spec.count; ++bond) {
    WorkMeter meter;
    auto object = function.Invoke(function.ArgsFor(param.rate, bond),
                                  &meter);
    ASSERT_TRUE(object.ok());
    ASSERT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
    const double ratio = static_cast<double>(meter.ExecUnits()) /
                         static_cast<double>((*object)->traditional_cost());
    // Section 4.1: sum of iterations ~= 2x cost_trad.
    EXPECT_GT(ratio, 1.1) << "seed " << param.seed;
    EXPECT_LT(ratio, 4.0) << "seed " << param.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRates, PdeSoundnessProperty,
    ::testing::Values(BondCase{1, 0.045}, BondCase{2, 0.0575},
                      BondCase{3, 0.07}, BondCase{4, 0.0575},
                      BondCase{5, 0.05}, BondCase{6, 0.065}),
    [](const ::testing::TestParamInfo<BondCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_rate" +
             std::to_string(static_cast<int>(info.param.rate * 10000));
    });

// ---------------------------------------------------------------------------
// Integral soundness across a function family.

struct IntegralCase {
  const char* name;
  double (*f)(double);
  double a;
  double b;
  double exact;
};

class IntegralSoundnessProperty
    : public ::testing::TestWithParam<IntegralCase> {};

TEST_P(IntegralSoundnessProperty, BoundsContainExactValueThroughout) {
  const IntegralCase param = GetParam();
  vao::IntegralProblem problem;
  problem.integrand = param.f;
  problem.a = param.a;
  problem.b = param.b;
  vao::IntegralResultOptions options;
  options.min_width = 1e-7;

  WorkMeter meter;
  auto object = vao::IntegralResultObject::Create(problem, options, &meter);
  ASSERT_TRUE(object.ok());
  while (!(*object)->AtStoppingCondition()) {
    EXPECT_TRUE((*object)->bounds().Contains(param.exact))
        << param.name << " bounds " << (*object)->bounds();
    ASSERT_TRUE((*object)->Iterate().ok());
  }
  EXPECT_NEAR((*object)->bounds().Mid(), param.exact, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Functions, IntegralSoundnessProperty,
    ::testing::Values(
        IntegralCase{"sin", [](double x) { return std::sin(x); }, 0.0,
                     std::numbers::pi, 2.0},
        IntegralCase{"exp", [](double x) { return std::exp(x); }, 0.0, 1.0,
                     std::numbers::e - 1.0},
        IntegralCase{"recip", [](double x) { return 1.0 / x; }, 1.0, 2.0,
                     std::numbers::ln2},
        IntegralCase{"gauss",
                     [](double x) { return std::exp(-x * x); }, 0.0, 1.0,
                     0.7468241328124271},
        IntegralCase{"poly",
                     [](double x) { return x * x * x - 2.0 * x + 1.0; },
                     -1.0, 2.0, 3.75}),
    [](const ::testing::TestParamInfo<IntegralCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Root soundness across a function family and both probe methods.

struct RootCase {
  const char* name;
  double (*f)(double);
  double lo;
  double hi;
  double root;
  numeric::RootMethod method;
};

class RootSoundnessProperty : public ::testing::TestWithParam<RootCase> {};

TEST_P(RootSoundnessProperty, BracketAlwaysContainsRoot) {
  const RootCase param = GetParam();
  vao::RootProblem problem;
  problem.f = param.f;
  problem.lo = param.lo;
  problem.hi = param.hi;
  vao::RootResultOptions options;
  options.finder.method = param.method;
  options.min_width = 1e-9;

  WorkMeter meter;
  auto object = vao::RootResultObject::Create(problem, options, &meter);
  ASSERT_TRUE(object.ok());
  while (!(*object)->AtStoppingCondition()) {
    EXPECT_TRUE((*object)->bounds().Contains(param.root))
        << param.name << " bracket " << (*object)->bounds();
    ASSERT_TRUE((*object)->Iterate().ok());
  }
  EXPECT_NEAR((*object)->bounds().Mid(), param.root, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Functions, RootSoundnessProperty,
    ::testing::Values(
        RootCase{"sqrt2_bisect", [](double x) { return x * x - 2.0; }, 0.0,
                 2.0, std::numbers::sqrt2, numeric::RootMethod::kBisection},
        RootCase{"sqrt2_illinois", [](double x) { return x * x - 2.0; },
                 0.0, 2.0, std::numbers::sqrt2,
                 numeric::RootMethod::kIllinois},
        RootCase{"cosfix_bisect", [](double x) { return std::cos(x) - x; },
                 0.0, 1.5, 0.7390851332151607,
                 numeric::RootMethod::kBisection},
        RootCase{"cosfix_illinois",
                 [](double x) { return std::cos(x) - x; }, 0.0, 1.5,
                 0.7390851332151607, numeric::RootMethod::kIllinois},
        RootCase{"cubic_bisect",
                 [](double x) { return x * x * x - x - 2.0; }, 1.0, 2.0,
                 1.5213797068045676, numeric::RootMethod::kBisection}),
    [](const ::testing::TestParamInfo<RootCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Operator equivalence on real bond functions, swept over seeds.

class OperatorEquivalenceProperty
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 5;
    function_ = std::make_unique<BondPricingFunction>(
        workload::GeneratePortfolio(GetParam(), spec), BondModelConfig{});
    black_box_ = std::make_unique<vao::CalibratedBlackBox>(function_.get());
    for (int i = 0; i < spec.count; ++i) {
      rows_.push_back(function_->ArgsFor(0.0575, i));
    }
  }

  std::vector<vao::ResultObjectPtr> MakeObjects(WorkMeter* meter) {
    std::vector<vao::ResultObjectPtr> objects;
    for (const auto& row : rows_) {
      auto object = function_->Invoke(row, meter);
      EXPECT_TRUE(object.ok());
      objects.push_back(std::move(object).value());
    }
    return objects;
  }

  std::unique_ptr<BondPricingFunction> function_;
  std::unique_ptr<vao::CalibratedBlackBox> black_box_;
  std::vector<std::vector<double>> rows_;
};

TEST_P(OperatorEquivalenceProperty, SelectionMatchesTraditional) {
  // Use a constant that splits the portfolio.
  std::vector<double> values;
  for (const auto& row : rows_) {
    values.push_back(black_box_->Call(row, nullptr).ValueOrDie());
  }
  const double constant =
      workload::ConstantForGreaterSelectivity(values, 0.4).ValueOrDie();

  const operators::SelectionVao vao(operators::Comparator::kGreaterThan,
                                    constant);
  const operators::TraditionalSelection trad(
      operators::Comparator::kGreaterThan, constant);
  WorkMeter vao_meter, trad_meter;
  for (const auto& row : rows_) {
    const auto vao_outcome = vao.Evaluate(*function_, row, &vao_meter);
    const auto trad_outcome = trad.Evaluate(*black_box_, row, &trad_meter);
    ASSERT_TRUE(vao_outcome.ok());
    ASSERT_TRUE(trad_outcome.ok());
    if (!vao_outcome->resolved_as_equal) {
      EXPECT_EQ(vao_outcome->passes, *trad_outcome);
    }
  }
  EXPECT_LT(vao_meter.ExecUnits(), trad_meter.ExecUnits());
}

TEST_P(OperatorEquivalenceProperty, MaxMatchesTraditional) {
  WorkMeter vao_meter;
  auto owned = MakeObjects(&vao_meter);
  std::vector<vao::ResultObject*> objects;
  for (auto& o : owned) objects.push_back(o.get());

  operators::MinMaxOptions options;
  options.epsilon = 0.01;
  options.meter = &vao_meter;
  const operators::MinMaxVao vao(options);
  const auto vao_outcome = vao.Evaluate(objects);
  ASSERT_TRUE(vao_outcome.ok());

  WorkMeter trad_meter;
  const auto trad_outcome = operators::TraditionalExtreme(
      *black_box_, rows_, operators::ExtremeKind::kMax, &trad_meter);
  ASSERT_TRUE(trad_outcome.ok());

  if (!vao_outcome->tie) {
    EXPECT_EQ(vao_outcome->winner_index, trad_outcome->winner_index);
  }
  EXPECT_NEAR(vao_outcome->winner_bounds.Mid(), trad_outcome->value, 0.02);
  EXPECT_LT(vao_meter.ExecUnits(), trad_meter.ExecUnits());
}

TEST_P(OperatorEquivalenceProperty, SumBoundsContainTraditionalSum) {
  Rng rng(GetParam());
  std::vector<double> weights;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    weights.push_back(rng.Uniform(0.0, 3.0));
    total_weight += weights.back();
  }
  // The paper's scaling: epsilon = total weight * minWidth, the error the
  // traditional operator itself carries (Section 6.3).
  const double epsilon = 0.01 * total_weight;

  WorkMeter vao_meter;
  auto owned = MakeObjects(&vao_meter);
  std::vector<vao::ResultObject*> objects;
  for (auto& o : owned) objects.push_back(o.get());
  operators::SumAveOptions options;
  options.epsilon = epsilon;
  const operators::SumAveVao vao(options);
  const auto vao_outcome = vao.Evaluate(objects, weights);
  ASSERT_TRUE(vao_outcome.ok());

  WorkMeter trad_meter;
  const auto trad_outcome = operators::TraditionalWeightedSum(
      *black_box_, rows_, weights, &trad_meter);
  ASSERT_TRUE(trad_outcome.ok());

  // The traditional sum carries up to sum(w_i * minWidth/2) of its own
  // error, so compare with that slack added.
  double slack = 0.0;
  for (const double w : weights) slack += w * 0.005;
  EXPECT_GE(trad_outcome->sum,
            vao_outcome->sum_bounds.lo - slack);
  EXPECT_LE(trad_outcome->sum,
            vao_outcome->sum_bounds.hi + slack);
  EXPECT_LE(vao_outcome->sum_bounds.Width(), epsilon + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorEquivalenceProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace vaolib
