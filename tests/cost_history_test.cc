// Tests for the predictive-planning loop: the CostHistory store (EWMA
// learning checked against a brute-force reference, bounded-size eviction,
// per-tick decay), the calibrated/sentinel greedy strategies closing the
// loop through the aggregate operators, thread-count invariance of the
// recorded history, and the greedy tie-break determinism the corrected
// strategies inherit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/work_meter.h"
#include "engine/cost_history.h"
#include "operators/cost_feedback.h"
#include "operators/iteration_strategy.h"
#include "operators/min_max.h"
#include "operators/sum_ave.h"
#include "testing/chaos_result_object.h"
#include "vao/synthetic_result_object.h"

namespace vaolib::engine {
namespace {

using operators::CostObservation;
using testing::ChaosResultObject;
using testing::FaultKind;
using testing::FaultPlan;
using vao::SyntheticResultObject;

// ---------------------------------------------------------------------------
// CostHistory vs a brute-force reference

// Mirror of the documented learning rule, written independently of the
// store's implementation: clamped actual/est ratios, first-sample-direct
// EWMA, decaying weights.
struct ReferenceEntry {
  double cost_ratio = 1.0;
  double shrink_ratio = 1.0;
  bool has_cost = false;
  bool has_shrink = false;
  double weight = 0.0;
};

class ReferenceHistory {
 public:
  explicit ReferenceHistory(const CostHistory::Options& options)
      : options_(options) {}

  static bool RatioOf(double actual, double est, double* ratio) {
    if (actual < 0.0 || est < 1e-12) return false;
    const double r = actual / est;
    *ratio = std::clamp(r, 1.0 / 64.0, 64.0);
    return true;
  }

  void Record(std::uint64_t id, int kind, const CostObservation& sample) {
    double cost_ratio = 1.0;
    double shrink_ratio = 1.0;
    const bool has_cost =
        RatioOf(sample.actual_cost, sample.est_cost, &cost_ratio);
    const bool has_shrink =
        RatioOf(sample.actual_shrink, sample.est_shrink, &shrink_ratio);
    if (!has_cost && !has_shrink) return;
    ReferenceEntry& entry = entries_[{id, kind}];
    if (has_cost) {
      entry.cost_ratio = entry.has_cost
                             ? options_.alpha * cost_ratio +
                                   (1.0 - options_.alpha) * entry.cost_ratio
                             : cost_ratio;
      entry.has_cost = true;
    }
    if (has_shrink) {
      entry.shrink_ratio =
          entry.has_shrink ? options_.alpha * shrink_ratio +
                                 (1.0 - options_.alpha) * entry.shrink_ratio
                           : shrink_ratio;
      entry.has_shrink = true;
    }
    entry.weight += 1.0;
  }

  void BeginTick() {
    for (auto it = entries_.begin(); it != entries_.end();) {
      it->second.weight *= options_.decay;
      it = it->second.weight < options_.min_weight ? entries_.erase(it)
                                                   : std::next(it);
    }
  }

  const std::map<std::pair<std::uint64_t, int>, ReferenceEntry>& entries()
      const {
    return entries_;
  }

 private:
  CostHistory::Options options_;
  std::map<std::pair<std::uint64_t, int>, ReferenceEntry> entries_;
};

TEST(CostHistoryTest, MatchesBruteForceReferenceOverRandomSamples) {
  CostHistory::Options options;
  options.max_entries = 1024;  // large enough that eviction never triggers
  CostHistory history(options);
  ReferenceHistory reference(options);
  Rng rng(0xC057);

  for (int step = 0; step < 2000; ++step) {
    if (step % 97 == 96) {
      history.BeginTick();
      reference.BeginTick();
      continue;
    }
    const std::uint64_t id = static_cast<std::uint64_t>(
        rng.UniformInt(0, 7));
    const int kind = static_cast<int>(rng.UniformInt(-1, 2));
    CostObservation sample;
    sample.est_cost = rng.Uniform(0.0, 8.0);
    // ~1 in 4 samples has unknown actual cost; a few est denominators are
    // degenerate (~0), which must contribute nothing.
    sample.actual_cost =
        rng.Bernoulli(0.25) ? -1.0 : rng.Uniform(0.0, 512.0);
    sample.est_shrink = rng.Bernoulli(0.2) ? 0.0 : rng.Uniform(0.0, 4.0);
    sample.actual_shrink = rng.Uniform(0.0, 16.0);
    history.Record(id, kind, sample);
    reference.Record(id, kind, sample);
  }

  const auto snapshot = history.Snapshot();
  ASSERT_EQ(snapshot.size(), reference.entries().size());
  for (const auto& [key, entry] : snapshot) {
    const auto it = reference.entries().find(key);
    ASSERT_NE(it, reference.entries().end())
        << "id=" << key.first << " kind=" << key.second;
    EXPECT_DOUBLE_EQ(entry.cost_ratio, it->second.cost_ratio);
    EXPECT_DOUBLE_EQ(entry.shrink_ratio, it->second.shrink_ratio);
    EXPECT_EQ(entry.has_cost, it->second.has_cost);
    EXPECT_EQ(entry.has_shrink, it->second.has_shrink);
    EXPECT_DOUBLE_EQ(entry.weight, it->second.weight);
  }
}

TEST(CostHistoryTest, EvictsLeastRecentlyRecordedAtCapacity) {
  CostHistory::Options options;
  options.max_entries = 4;
  CostHistory history(options);
  CostObservation sample;
  sample.est_cost = 2.0;
  sample.actual_cost = 4.0;

  for (std::uint64_t id = 0; id < 4; ++id) history.Record(id, 0, sample);
  ASSERT_EQ(history.size(), 4u);
  // Touch id 0 so id 1 becomes the least recently recorded.
  history.Record(0, 0, sample);
  ASSERT_EQ(history.size(), 4u);
  history.Record(99, 0, sample);

  EXPECT_EQ(history.size(), 4u);
  EXPECT_FALSE(history.Lookup(1, 0, nullptr));
  EXPECT_TRUE(history.Lookup(0, 0, nullptr));
  EXPECT_TRUE(history.Lookup(2, 0, nullptr));
  EXPECT_TRUE(history.Lookup(3, 0, nullptr));
  EXPECT_TRUE(history.Lookup(99, 0, nullptr));
  // Snapshot order is the eviction order: least recently recorded first.
  const auto snapshot = history.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot.front().first.first, 2u);
  EXPECT_EQ(snapshot.back().first.first, 99u);
}

TEST(CostHistoryTest, BeginTickDecaysWeightsAndDropsStaleEntries) {
  CostHistory history;  // alpha .25, decay .5, min_weight .05
  CostObservation sample;
  sample.est_cost = 1.0;
  sample.actual_cost = 3.0;
  history.Record(7, 1, sample);

  CostHistory::Entry entry;
  ASSERT_TRUE(history.Lookup(7, 1, &entry));
  EXPECT_DOUBLE_EQ(entry.weight, 1.0);
  EXPECT_DOUBLE_EQ(entry.cost_ratio, 3.0);
  // Fresh entry predicts (weight 1.0 >= 0.5)...
  double cost_ratio = 0.0;
  EXPECT_TRUE(history.Predict(7, 1, &cost_ratio, nullptr));
  EXPECT_DOUBLE_EQ(cost_ratio, 3.0);

  // ...still predicts after one tick (weight exactly 0.5)...
  history.BeginTick();
  EXPECT_TRUE(history.Predict(7, 1, &cost_ratio, nullptr));

  // ...but not after two (weight 0.25 < min_predict_weight), even though
  // the entry is still stored.
  history.BeginTick();
  EXPECT_TRUE(history.Lookup(7, 1, &entry));
  EXPECT_DOUBLE_EQ(entry.weight, 0.25);
  EXPECT_FALSE(history.Predict(7, 1, &cost_ratio, nullptr));

  // Three more ticks: 0.125, 0.0625, then 0.03125 < min_weight drops the
  // entry.
  history.BeginTick();
  history.BeginTick();
  EXPECT_EQ(history.size(), 1u);
  history.BeginTick();
  EXPECT_EQ(history.size(), 0u);
  EXPECT_FALSE(history.Lookup(7, 1, nullptr));
}

// ---------------------------------------------------------------------------
// Closing the loop through the operators

// kRows lying objects: even rows claim 4x their real cost, odd rows claim
// a quarter. cost_growth = 1 keeps the real per-iterate cost constant.
std::vector<vao::ResultObjectPtr> MakeLyingObjects(std::size_t rows,
                                                   WorkMeter* meter,
                                                   double lie = 4.0) {
  std::vector<vao::ResultObjectPtr> owned;
  owned.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    SyntheticResultObject::Config config;
    config.true_value = static_cast<double>(i);
    config.initial_half_width = 8.0;
    config.shrink = 0.6;
    config.min_width = 0.01;
    config.cost_per_iteration = 16;
    config.meter = meter;
    FaultPlan plan;
    plan.kind = FaultKind::kLyingEstimates;
    plan.cost_factor = i % 2 == 0 ? lie : 1.0 / lie;
    owned.push_back(std::make_unique<ChaosResultObject>(
        std::make_unique<SyntheticResultObject>(config), plan));
  }
  return owned;
}

std::vector<vao::ResultObject*> RawPointers(
    const std::vector<vao::ResultObjectPtr>& owned) {
  std::vector<vao::ResultObject*> objects;
  objects.reserve(owned.size());
  for (const auto& object : owned) objects.push_back(object.get());
  return objects;
}

TEST(CalibratedGreedyTest, SecondTickPredictsCostsBetterThanRawEstimates) {
  constexpr std::size_t kRows = 12;
  CostHistory history;
  WorkMeter meter;

  auto run_pass = [&]() {
    const auto owned = MakeLyingObjects(kRows, &meter);
    history.BeginTick();
    operators::SumAveOptions options;
    options.epsilon = 1.0;
    options.strategy = operators::StrategyKind::kCalibratedGreedy;
    options.feedback = &history;
    // The operator must share the objects' meter: actual per-iterate costs
    // are measured as meter deltas around each Iterate().
    options.meter = &meter;
    const operators::SumAveVao vao(options);
    auto outcome = vao.Evaluate(RawPointers(owned),
                                std::vector<double>(kRows, 1.0));
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return std::move(outcome).value();
  };

  const operators::SumOutcome first = run_pass();
  ASSERT_GT(first.stats.cost_err_samples, 0u);
  EXPECT_GT(history.size(), 0u);

  const operators::SumOutcome second = run_pass();
  ASSERT_GT(second.stats.cost_err_samples, 0u);
  // Tick 2 runs against learned per-row ratios: the corrected predictions
  // must beat the raw (lying) estimates by a wide margin.
  EXPECT_GT(second.stats.corrected_decisions, 0u);
  EXPECT_LT(second.stats.corrected_cost_abs_err,
            0.5 * second.stats.raw_cost_abs_err);
  // Sound answer either way: SUM of 0..11 with unit weights.
  const double true_sum = 11.0 * 12.0 / 2.0;
  EXPECT_LE(second.sum_bounds.lo, true_sum);
  EXPECT_GE(second.sum_bounds.hi, true_sum);
}

TEST(CalibratedGreedyTest, ZeroSignalFallsBackToRawGreedyBitExactly) {
  // No feedback store, no calibration samples for synthetic objects, no
  // correlation groups: kCalibratedGreedy must reproduce kGreedy exactly
  // (same picks, same work, same answer).
  constexpr std::size_t kRows = 9;
  auto run = [&](operators::StrategyKind strategy) {
    WorkMeter meter;
    const auto owned = MakeLyingObjects(kRows, &meter);
    operators::SumAveOptions options;
    options.epsilon = 0.5;
    options.strategy = strategy;
    options.meter = &meter;
    const operators::SumAveVao vao(options);
    auto outcome = vao.Evaluate(RawPointers(owned),
                                std::vector<double>(kRows, 1.0));
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return std::move(outcome).value();
  };
  const operators::SumOutcome greedy = run(operators::StrategyKind::kGreedy);
  const operators::SumOutcome calibrated =
      run(operators::StrategyKind::kCalibratedGreedy);
  EXPECT_EQ(greedy.stats.iterations, calibrated.stats.iterations);
  EXPECT_EQ(greedy.stats.choose_steps, calibrated.stats.choose_steps);
  EXPECT_EQ(greedy.sum_bounds.lo, calibrated.sum_bounds.lo);
  EXPECT_EQ(greedy.sum_bounds.hi, calibrated.sum_bounds.hi);
}

TEST(SentinelGreedyTest, ProbesCorrelationGroupsAndStaysSound) {
  // Two correlation groups of lying objects: the sentinel probes (cheapest
  // members first) fit each group's real ratio and re-rank the rest.
  constexpr std::size_t kRows = 12;
  WorkMeter meter;
  std::vector<vao::ResultObjectPtr> owned;
  for (std::size_t i = 0; i < kRows; ++i) {
    SyntheticResultObject::Config config;
    config.true_value = static_cast<double>(i);
    config.initial_half_width = 8.0;
    config.shrink = 0.6;
    config.min_width = 0.01;
    config.cost_per_iteration = 16;
    config.correlation_key = i < kRows / 2 ? "g0" : "g1";
    config.meter = &meter;
    FaultPlan plan;
    plan.kind = FaultKind::kLyingEstimates;
    plan.cost_factor = i < kRows / 2 ? 6.0 : 1.0 / 6.0;
    owned.push_back(std::make_unique<ChaosResultObject>(
        std::make_unique<SyntheticResultObject>(config), plan));
  }

  operators::MinMaxOptions options;
  options.kind = operators::ExtremeKind::kMax;
  options.epsilon = 0.05;
  options.strategy = operators::StrategyKind::kSentinelGreedy;
  options.sentinel_probes = 2;
  options.meter = &meter;
  const operators::MinMaxVao vao(options);
  const auto outcome = vao.Evaluate(RawPointers(owned));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->winner_index, kRows - 1);
  EXPECT_TRUE(outcome->winner_bounds.Contains(
      static_cast<double>(kRows - 1)));
  // The probe observations count as corrected-path decisions.
  EXPECT_GT(outcome->stats.corrected_decisions, 0u);
}

TEST(CostHistoryTest, RecordedHistoryIsInvariantUnderOperatorThreads) {
  // The recording paths are all serial (the parallel coarse phase never
  // records), so the history left behind by an operator run must be
  // identical at any thread count.
  constexpr std::size_t kRows = 10;
  auto run = [&](int threads) {
    CostHistory history;
    WorkMeter meter;
    const auto owned = MakeLyingObjects(kRows, &meter);
    operators::MinMaxOptions options;
    options.kind = operators::ExtremeKind::kMax;
    options.epsilon = 0.05;
    options.threads = threads;
    options.feedback = &history;
    options.meter = &meter;
    const operators::MinMaxVao vao(options);
    const auto outcome = vao.Evaluate(RawPointers(owned));
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return history.Snapshot();
  };

  const auto serial = run(1);
  const auto threaded = run(3);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, threaded[i].first);
    EXPECT_EQ(serial[i].second.cost_ratio, threaded[i].second.cost_ratio);
    EXPECT_EQ(serial[i].second.shrink_ratio,
              threaded[i].second.shrink_ratio);
    EXPECT_EQ(serial[i].second.weight, threaded[i].second.weight);
  }
}

// ---------------------------------------------------------------------------
// Greedy tie-breaking

TEST(GreedyTieBreakTest, EqualScoresChooseTheFirstEnumeratedCandidate) {
  // Four candidates with identical benefit/cost: the pick must be the
  // first enumerated one, for every greedy-family strategy. This is the
  // determinism the corrected strategies rely on when corrections leave
  // scores equal.
  std::vector<operators::IterationCandidate> candidates;
  for (std::size_t i = 0; i < 4; ++i) {
    operators::IterationCandidate c;
    c.index = 10 + i;  // input indices need not start at 0
    c.benefit = 2.0;
    c.cost = 4.0;
    c.width = 1.0;
    candidates.push_back(c);
  }
  for (const operators::StrategyKind kind :
       {operators::StrategyKind::kGreedy,
        operators::StrategyKind::kBatchGreedy,
        operators::StrategyKind::kCalibratedGreedy,
        operators::StrategyKind::kSentinelGreedy}) {
    auto strategy = operators::MakeStrategy(kind, nullptr);
    ASSERT_TRUE(strategy.ok());
    EXPECT_EQ((*strategy)->Choose(candidates), 10u)
        << operators::StrategyKindName(kind);
  }
}

TEST(GreedyTieBreakTest, ZeroBenefitFallbackBreaksWidthTiesByOrder) {
  // All benefits zero, all widths equal: the width fallback must also pick
  // the first enumerated candidate.
  std::vector<operators::IterationCandidate> candidates;
  for (std::size_t i = 0; i < 3; ++i) {
    operators::IterationCandidate c;
    c.index = 5 - i;  // descending input indices: order, not index, wins
    c.benefit = 0.0;
    c.cost = 1.0;
    c.width = 2.5;
    candidates.push_back(c);
  }
  auto strategy =
      operators::MakeStrategy(operators::StrategyKind::kGreedy, nullptr);
  ASSERT_TRUE(strategy.ok());
  EXPECT_EQ((*strategy)->Choose(candidates), 5u);
}

TEST(GreedyTieBreakTest, ChooseBatchRanksTiesStablyAtEveryK) {
  // Two score classes with internal ties: ranking must be score-descending
  // with enumeration order breaking ties, at every batch K, and the top-1
  // must equal the scalar greedy pick.
  std::vector<operators::IterationCandidate> candidates;
  const double benefits[] = {1.0, 3.0, 1.0, 3.0, 1.0};
  for (std::size_t i = 0; i < 5; ++i) {
    operators::IterationCandidate c;
    c.index = i;
    c.benefit = benefits[i];
    c.cost = 1.0;
    c.width = 1.0;
    candidates.push_back(c);
  }
  auto batch = operators::MakeStrategy(
      operators::StrategyKind::kBatchGreedy, nullptr);
  auto greedy =
      operators::MakeStrategy(operators::StrategyKind::kGreedy, nullptr);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(greedy.ok());
  const std::vector<std::size_t> expected = {1, 3, 0, 2, 4};
  for (std::size_t k = 1; k <= 5; ++k) {
    std::vector<std::size_t> chosen;
    (*batch)->ChooseBatch(candidates, k, &chosen);
    ASSERT_EQ(chosen.size(), k);
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(chosen[i], expected[i]);
    EXPECT_EQ(chosen.front(), (*greedy)->Choose(candidates));
  }
}

}  // namespace
}  // namespace vaolib::engine
