// Unit tests for src/obs/metrics: counter striping and concurrency,
// histogram bucket-edge semantics, registry identity/rendering, the
// runtime enable switch, solver-kind accounting, and the thread-pool
// statistics the observability layer snapshots.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace vaolib::obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CounterTest, AddValueReset) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(3);
  counter.Increment();
#ifndef VAOLIB_OBS_DISABLED
  EXPECT_EQ(counter.Value(), 4u);
#else
  EXPECT_EQ(counter.Value(), 0u);  // mutations compile to nothing
#endif
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

#ifndef VAOLIB_OBS_DISABLED

// The registry concurrency stress from the issue: many pool workers
// hammering the same counters must lose no increments (stripes make the
// adds contention-free, but the sum must still be exact at quiesce).
TEST(CounterTest, ConcurrentAddsUnderThreadPool) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress_total");
  Gauge* gauge = registry.GetGauge("stress_gauge");
  Histogram* histogram =
      registry.GetHistogram("stress_hist", {}, {10.0, 100.0, 1000.0});

  constexpr std::size_t kItems = 10000;
  ThreadPool pool(4);
  const auto status = pool.ParallelFor(
      kItems, {.max_parallelism = 4, .min_chunk = 64}, nullptr,
      [&](std::size_t begin, std::size_t end, WorkMeter*) {
        for (std::size_t i = begin; i < end; ++i) {
          counter->Increment();
          gauge->Add(1);
          histogram->Observe(static_cast<double>(i % 200));
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status;

  EXPECT_EQ(counter->Value(), kItems);
  EXPECT_EQ(gauge->Value(), static_cast<std::int64_t>(kItems));
  EXPECT_EQ(histogram->TotalCount(), kItems);
}

TEST(HistogramTest, BucketEdges) {
  Histogram histogram({1.0, 10.0, 100.0});
  ASSERT_EQ(histogram.upper_bounds().size(), 3u);

  histogram.Observe(-5.0);   // below every bound -> first bucket
  histogram.Observe(1.0);    // exactly on a bound counts as <= (Prometheus)
  histogram.Observe(1.5);    // (1, 10]
  histogram.Observe(10.0);   // edge again
  histogram.Observe(99.9);   // (10, 100]
  histogram.Observe(100.0);  // edge of the last finite bucket
  histogram.Observe(101.0);  // overflows into +Inf

  EXPECT_EQ(histogram.BucketCount(0), 2u);  // -5, 1.0
  EXPECT_EQ(histogram.BucketCount(1), 2u);  // 1.5, 10.0
  EXPECT_EQ(histogram.BucketCount(2), 2u);  // 99.9, 100.0
  EXPECT_EQ(histogram.BucketCount(3), 1u);  // 101.0 -> +Inf
  EXPECT_EQ(histogram.TotalCount(), 7u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), -5.0 + 1.0 + 1.5 + 10.0 + 99.9 + 100.0 +
                                        101.0);

  histogram.Reset();
  EXPECT_EQ(histogram.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
}

TEST(MetricsRegistryTest, StableIdentityByNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", {{"op", "select"}});
  Counter* b = registry.GetCounter("requests_total", {{"op", "select"}});
  Counter* c = registry.GetCounter("requests_total", {{"op", "max"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);

  // Histogram bounds are fixed by the first registration.
  Histogram* h1 = registry.GetHistogram("latency", {}, {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("latency", {}, {99.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->upper_bounds(), (std::vector<double>{1.0, 2.0}));

  EXPECT_EQ(registry.metric_count(), 3u);

  a->Add(7);
  registry.ResetAll();
  EXPECT_EQ(a->Value(), 0u);
  EXPECT_EQ(registry.metric_count(), 3u);  // metrics stay registered
}

TEST(MetricsRegistryTest, RenderPrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("vaolib_demo_total", {{"kind", "exec"}})->Add(5);
  registry.GetGauge("vaolib_demo_gauge")->Set(-2);
  Histogram* h = registry.GetHistogram("vaolib_demo_hist", {}, {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(50.0);

  std::ostringstream os;
  registry.RenderPrometheus(os);
  const std::string text = os.str();

  EXPECT_TRUE(Contains(text, "# TYPE vaolib_demo_total counter")) << text;
  EXPECT_TRUE(Contains(text, "vaolib_demo_total{kind=\"exec\"} 5")) << text;
  EXPECT_TRUE(Contains(text, "# TYPE vaolib_demo_gauge gauge")) << text;
  EXPECT_TRUE(Contains(text, "vaolib_demo_gauge -2")) << text;
  EXPECT_TRUE(Contains(text, "# TYPE vaolib_demo_hist histogram")) << text;
  // Cumulative buckets: le="10" includes the le="1" observation.
  EXPECT_TRUE(Contains(text, "vaolib_demo_hist_bucket{le=\"1\"} 1")) << text;
  EXPECT_TRUE(Contains(text, "vaolib_demo_hist_bucket{le=\"10\"} 1")) << text;
  EXPECT_TRUE(Contains(text, "vaolib_demo_hist_bucket{le=\"+Inf\"} 2"))
      << text;
  EXPECT_TRUE(Contains(text, "vaolib_demo_hist_count 2")) << text;
}

TEST(MetricsRegistryTest, PrometheusGroupsInterleavedFamilies) {
  MetricsRegistry registry;
  // Register a second label variant of "events_total" AFTER an unrelated
  // metric: the family must still render under a single # TYPE line.
  registry.GetCounter("events_total", {{"event", "miss"}})->Add(1);
  registry.GetCounter("other_total")->Add(2);
  registry.GetCounter("events_total", {{"event", "hit"}})->Add(3);

  std::ostringstream os;
  registry.RenderPrometheus(os);
  const std::string text = os.str();

  std::size_t type_lines = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE events_total counter", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u) << text;
  EXPECT_TRUE(Contains(text, "events_total{event=\"miss\"} 1")) << text;
  EXPECT_TRUE(Contains(text, "events_total{event=\"hit\"} 3")) << text;
  // Both samples sit under the one TYPE line, before the next family.
  EXPECT_LT(text.find("events_total{event=\"hit\"}"),
            text.find("# TYPE other_total counter"))
      << text;
}

TEST(MetricsRegistryTest, RenderJsonListsEveryFamily) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", {{"a", "b"}})->Add(3);
  registry.GetGauge("g")->Set(4);
  registry.GetHistogram("h", {}, {5.0})->Observe(1.0);

  std::ostringstream os;
  registry.RenderJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(Contains(json, "\"counters\"")) << json;
  EXPECT_TRUE(Contains(json, "\"gauges\"")) << json;
  EXPECT_TRUE(Contains(json, "\"histograms\"")) << json;
  EXPECT_TRUE(Contains(json, "\"c_total\"")) << json;
  EXPECT_TRUE(Contains(json, "\"a\"")) << json;
}

TEST(EnabledTest, RuntimeToggleStopsMutations) {
  ASSERT_TRUE(Enabled());  // tests run with observability on
  Counter counter;
  counter.Add(1);
  SetEnabled(false);
  counter.Add(100);
  Gauge gauge;
  gauge.Set(42);
  SetEnabled(true);
  counter.Add(1);
  EXPECT_EQ(counter.Value(), 2u);
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(SolverWorkTest, CountSolverWorkChargesPerKindCounter) {
  const SolverWorkSnapshot before = SolverWorkSnapshot::Capture();
  CountSolverWork(SolverKind::kPde, 17);
  CountSolverWork(SolverKind::kRoot, 3);
  const SolverWorkSnapshot delta =
      SolverWorkSnapshot::Capture().DeltaSince(before);
  EXPECT_EQ(delta.units[static_cast<int>(SolverKind::kPde)], 17u);
  EXPECT_EQ(delta.units[static_cast<int>(SolverKind::kRoot)], 3u);
  EXPECT_EQ(delta.units[static_cast<int>(SolverKind::kOde)], 0u);
}

TEST(SolverWorkTest, KindNamesAreStableLabels) {
  EXPECT_STREQ(SolverKindName(SolverKind::kPde), "pde");
  EXPECT_STREQ(SolverKindName(SolverKind::kPde2d), "pde2d");
  EXPECT_STREQ(SolverKindName(SolverKind::kOde), "ode");
  EXPECT_STREQ(SolverKindName(SolverKind::kIvp), "ivp");
  EXPECT_STREQ(SolverKindName(SolverKind::kIntegral), "integral");
  EXPECT_STREQ(SolverKindName(SolverKind::kRoot), "root");
}

#endif  // VAOLIB_OBS_DISABLED

// ThreadPool statistics are plain relaxed atomics (the pool must not
// depend on obs), so they count regardless of the observability switch.
TEST(ThreadPoolStatsTest, ParallelForCountsCallsAndChunks) {
  ThreadPool pool(3);
  const ThreadPool::Stats before = pool.stats();
  EXPECT_EQ(before.parallel_for_calls, 0u);
  EXPECT_EQ(before.chunks_executed, 0u);

  const auto status = pool.ParallelFor(
      100, {.max_parallelism = 3, .min_chunk = 10}, nullptr,
      [](std::size_t, std::size_t, WorkMeter*) { return Status::OK(); });
  ASSERT_TRUE(status.ok()) << status;

  const ThreadPool::Stats after = pool.stats();
  EXPECT_EQ(after.parallel_for_calls, 1u);
  EXPECT_EQ(after.chunks_executed, 10u);  // 100 indices / min_chunk 10
  EXPECT_LE(after.tasks_enqueued, 2u);    // at most runners - 1 queued

  // Inline execution (max_parallelism = 1) never queues tasks.
  const auto inline_status = pool.ParallelFor(
      10, {.max_parallelism = 1, .min_chunk = 1}, nullptr,
      [](std::size_t, std::size_t, WorkMeter*) { return Status::OK(); });
  ASSERT_TRUE(inline_status.ok());
  EXPECT_EQ(pool.stats().parallel_for_calls, 2u);
  EXPECT_EQ(pool.stats().tasks_enqueued, after.tasks_enqueued);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram histogram({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) histogram.Observe(15.0);
#ifndef VAOLIB_OBS_DISABLED
  // All mass sits in (10, 20]; the median interpolates to its midpoint.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 20.0);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(histogram.Quantile(-1.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(2.0), 20.0);
#endif
}

TEST(HistogramTest, QuantileBucketEdgesAndFirstBucketLowerBound) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(1.0);
  histogram.Observe(1.0);
  histogram.Observe(2.0);
  histogram.Observe(2.0);
#ifndef VAOLIB_OBS_DISABLED
  // rank 2 lands exactly on the first bucket's upper edge; the first
  // bucket's lower edge is 0 when its upper bound is positive.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.75), 1.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 2.0);
#endif

  // A first bucket with a non-positive upper bound cannot borrow 0 as its
  // lower edge; the bound itself is the tightest sound answer.
  Histogram negative({-2.0, 0.0});
  negative.Observe(-3.0);
#ifndef VAOLIB_OBS_DISABLED
  EXPECT_DOUBLE_EQ(negative.Quantile(1.0), -2.0);
#endif
}

TEST(HistogramTest, QuantileSingleBucketOverflowAndEmpty) {
  Histogram histogram({5.0});
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);  // empty -> 0
  histogram.Observe(100.0);                        // lands in +Inf
#ifndef VAOLIB_OBS_DISABLED
  // The +Inf bucket has no upper edge: the last finite bound is the
  // tightest sound answer a fixed-bucket histogram can give.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 5.0);
  histogram.Observe(3.0);
  // rank 1 is now satisfied inside the single finite bucket, whose whole
  // [0, 5] width it interpolates across.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
#endif
}

TEST(MetricsRegistryTest, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("escape_total", {{"path", "a\"b\\c\nd"}})
      ->Increment();
  std::ostringstream os;
  registry.RenderPrometheus(os);
  // Quote, backslash, and newline must come out as \" \\ \n -- a raw
  // newline inside a label value corrupts the whole exposition format.
  EXPECT_TRUE(Contains(os.str(), "path=\"a\\\"b\\\\c\\nd\""))
      << os.str();
  EXPECT_FALSE(Contains(os.str(), "a\"b"));
}

// Structural lint over a full Prometheus text exposition, mirroring what a
// real scraper enforces: every family announces # HELP then # TYPE before
// its first sample, every sample value parses as a number, and every
// histogram ends in a le="+Inf" bucket that equals its _count.
std::vector<std::string> LintScrape(const std::string& text) {
  std::vector<std::string> problems;
  std::istringstream in(text);
  std::string line;
  // family -> bitmask: 1 = saw HELP, 2 = saw TYPE, 4 = saw a sample.
  std::vector<std::pair<std::string, int>> families;
  auto family_state = [&](const std::string& name) -> int& {
    for (auto& entry : families) {
      if (entry.first == name) return entry.second;
    }
    families.emplace_back(name, 0);
    return families.back().second;
  };
  auto base_family = [](std::string name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        return name.substr(0, name.size() - s.size());
      }
    }
    return name;
  };
  std::string inf_bucket_family;
  std::uint64_t inf_bucket_value = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_help = line[2] == 'H';
      std::istringstream fields(line.substr(7));
      std::string name;
      fields >> name;
      int& state = family_state(name);
      if ((state & 4) != 0) {
        problems.push_back("comment after samples: " + line);
      }
      if (is_help && (state & 2) != 0) {
        problems.push_back("# HELP after # TYPE for " + name);
      }
      state |= is_help ? 1 : 2;
      continue;
    }
    if (line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      problems.push_back("sample without value: " + line);
      continue;
    }
    const std::string value = line.substr(space + 1);
    try {
      std::size_t used = 0;
      (void)std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      problems.push_back("non-numeric sample value: " + line);
      continue;
    }
    std::string series = line.substr(0, space);
    const std::size_t brace = series.find('{');
    const std::string metric =
        brace == std::string::npos ? series : series.substr(0, brace);
    const std::string family = base_family(metric);
    int& state = family_state(family);
    if ((state & 1) == 0 || (state & 2) == 0) {
      problems.push_back("sample before # HELP/# TYPE: " + line);
    }
    state |= 4;
    if (metric == family + "_bucket" &&
        series.find("le=\"+Inf\"") != std::string::npos) {
      inf_bucket_family = family;
      inf_bucket_value =
          static_cast<std::uint64_t>(std::stod(line.substr(space + 1)));
    }
    if (metric == family + "_count") {
      if (inf_bucket_family != family) {
        problems.push_back("histogram without le=\"+Inf\" bucket: " +
                           family);
      } else if (static_cast<std::uint64_t>(
                     std::stod(line.substr(space + 1))) !=
                 inf_bucket_value) {
        problems.push_back("_count != +Inf bucket for " + family);
      }
    }
  }
  return problems;
}

TEST(PrometheusConformanceTest, FullExpositionPassesTheScrapeLint) {
  MetricsRegistry registry;
  registry.SetHelp("conf_total", "Requests seen.");
  registry.GetCounter("conf_total", {{"kind", "a"}})->Add(3);
  registry.GetCounter("conf_total", {{"kind", "b"}})->Add(1);
  registry.SetHelp("conf_gauge", "Current depth.");
  registry.GetGauge("conf_gauge")->Set(7);
  registry.SetHelp("conf_hist", "Work per tick.");
  Histogram* h = registry.GetHistogram("conf_hist", {}, {1.0, 8.0});
  h->Observe(0.5);
  h->Observe(4.0);
  h->Observe(100.0);

  std::ostringstream os;
  registry.RenderPrometheus(os);
  const std::string text = os.str();
  const std::vector<std::string> problems = LintScrape(text);
  EXPECT_TRUE(problems.empty())
      << "lint problems:\n"
      << [&] {
           std::string joined;
           for (const auto& p : problems) joined += "  " + p + "\n";
           return joined;
         }()
      << "exposition:\n"
      << text;
  // The histogram triple is all present and mutually consistent.
  EXPECT_TRUE(Contains(text, "conf_hist_bucket{le=\"+Inf\"} 3")) << text;
  EXPECT_TRUE(Contains(text, "conf_hist_count 3")) << text;
  EXPECT_TRUE(Contains(text, "conf_hist_sum 104.5")) << text;
}

TEST(PrometheusConformanceTest, HelpRendersBeforeTypeAndEscapes) {
  MetricsRegistry registry;
  registry.SetHelp("helped_total", "line one\nline two \\ done");
  registry.GetCounter("helped_total")->Increment();
  std::ostringstream os;
  registry.RenderPrometheus(os);
  const std::string text = os.str();
  // HELP text escapes newline and backslash per the exposition format.
  const std::size_t help =
      text.find("# HELP helped_total line one\\nline two \\\\ done");
  const std::size_t type = text.find("# TYPE helped_total counter");
  ASSERT_NE(help, std::string::npos) << text;
  ASSERT_NE(type, std::string::npos) << text;
  EXPECT_LT(help, type);
  EXPECT_TRUE(LintScrape(text).empty());
}

TEST(MetricsSnapshotTest, SnapshotCapturesCumulativeStateAtAPointInTime) {
  MetricsRegistry registry;
  registry.GetCounter("snap_total")->Add(4);
  registry.GetGauge("snap_gauge")->Set(-3);
  Histogram* h = registry.GetHistogram("snap_hist", {}, {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(9.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  // Later mutations must not leak into the captured snapshot.
  registry.GetCounter("snap_total")->Add(100);

  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "snap_total");
  EXPECT_EQ(snapshot.counters[0].value, 4u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, -3);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& hist = snapshot.histograms[0];
  // Bucket counts are per-bucket (non-cumulative), +Inf at the tail.
  ASSERT_EQ(hist.counts.size(), 3u);
  EXPECT_EQ(hist.counts[0], 1u);
  EXPECT_EQ(hist.counts[1], 1u);
  EXPECT_EQ(hist.counts[2], 1u);
  EXPECT_DOUBLE_EQ(hist.sum, 11.0);
}

}  // namespace
}  // namespace vaolib::obs
