// Tests for the two-factor (ADI) PDE solver, its result object, and the
// two-factor bond model.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "finance/two_factor_model.h"
#include "numeric/pde2d_solver.h"
#include "numeric/richardson.h"
#include "vao/black_box.h"
#include "vao/pde2d_result_object.h"

namespace vaolib {
namespace {

// Constant-reaction problem: x- and y-independent closed form
// (C/r)(1 - e^{-rT}), the same oracle family as the 1-factor tests.
numeric::Pde2dProblem Annuity2dProblem(double rbar, double c, double t_end) {
  numeric::Pde2dProblem p;
  p.diffusion_x = [](double, double) { return 1e-3; };
  p.diffusion_y = [](double, double) { return 2e-3; };
  p.convection_x = [](double x, double) { return 0.01 - 0.2 * x; };
  p.convection_y = [](double, double y) { return -0.15 * y; };
  p.reaction = [rbar](double, double) { return rbar; };
  p.source = [c](double, double) { return c; };
  p.terminal = [](double, double) { return 0.0; };
  p.x_min = 0.0;
  p.x_max = 0.12;
  p.y_min = -0.5;
  p.y_max = 0.5;
  p.t_end = t_end;
  return p;
}

TEST(Pde2dSolverTest, MatchesAnnuityClosedForm) {
  const double rbar = 0.06, c = 23.0, t_end = 5.0;
  const double expected = c / rbar * (1.0 - std::exp(-rbar * t_end));
  WorkMeter meter;
  const auto result = numeric::SolvePde2d(
      Annuity2dProblem(rbar, c, t_end), numeric::Pde2dGrid{16, 16, 512},
      0.06, 0.1, &meter);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result.value(), expected, 0.15);
  EXPECT_EQ(meter.ExecUnits(),
            (numeric::Pde2dGrid{16, 16, 512}).MeshEntries());
}

TEST(Pde2dSolverTest, HeatEquationProductSolution) {
  // F_t = a (F_xx + F_yy), terminal sin(pi x) sin(pi y), zero Dirichlet on
  // the unit square: F(x,y,0) = exp(-2 a pi^2 T) sin(pi x) sin(pi y).
  const double a = 0.05, t_end = 1.0;
  numeric::Pde2dProblem p;
  p.diffusion_x = [a](double, double) { return a; };
  p.diffusion_y = [a](double, double) { return a; };
  p.convection_x = [](double, double) { return 0.0; };
  p.convection_y = [](double, double) { return 0.0; };
  p.reaction = [](double, double) { return 0.0; };
  p.source = [](double, double) { return 0.0; };
  p.terminal = [](double x, double y) {
    return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
  };
  p.x_min = 0.0;
  p.x_max = 1.0;
  p.y_min = 0.0;
  p.y_max = 1.0;
  p.t_end = t_end;
  p.dirichlet_zero = true;

  const auto result =
      numeric::SolvePde2d(p, numeric::Pde2dGrid{32, 32, 512}, 0.5, 0.5,
                          nullptr);
  ASSERT_TRUE(result.ok());
  const double expected =
      std::exp(-2.0 * a * std::numbers::pi * std::numbers::pi * t_end);
  EXPECT_NEAR(result.value(), expected, 5e-3);
}

TEST(Pde2dSolverTest, FirstOrderConvergenceInTime) {
  const double rbar = 0.06, c = 23.0, t_end = 5.0;
  const auto problem = Annuity2dProblem(rbar, c, t_end);
  const double expected = c / rbar * (1.0 - std::exp(-rbar * t_end));
  double prev_error = 0.0;
  for (const int steps : {64, 128, 256}) {
    const auto result = numeric::SolvePde2d(
        problem, numeric::Pde2dGrid{12, 12, steps}, 0.05, 0.0, nullptr);
    ASSERT_TRUE(result.ok());
    const double error = std::abs(result.value() - expected);
    if (prev_error > 0.0) {
      EXPECT_LT(error, prev_error * 0.7);
    }
    prev_error = error;
  }
}

TEST(Pde2dSolverTest, RejectsMalformedInputs) {
  auto problem = Annuity2dProblem(0.06, 23.0, 5.0);
  EXPECT_EQ(numeric::SolvePde2d(problem, numeric::Pde2dGrid{1, 8, 8}, 0.05,
                                0.0, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(numeric::SolvePde2d(problem, numeric::Pde2dGrid{8, 8, 8}, 0.5,
                                0.0, nullptr)
                .status()
                .code(),
            StatusCode::kOutOfRange);
  problem.diffusion_y = nullptr;
  EXPECT_EQ(numeric::SolvePde2d(problem, numeric::Pde2dGrid{8, 8, 8}, 0.05,
                                0.0, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto negative = Annuity2dProblem(0.06, 23.0, 5.0);
  negative.diffusion_x = [](double, double) { return -1.0; };
  EXPECT_EQ(numeric::SolvePde2d(negative, numeric::Pde2dGrid{8, 8, 8}, 0.05,
                                0.0, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Richardson3ModelTest, RecoversSyntheticCoefficients) {
  const double A = 100.0, K1 = 1.5, K2 = -200.0, K3 = 40.0;
  const double dt = 0.5, dx = 0.05, dy = 0.1;
  auto value = [&](double dt_, double dx_, double dy_) {
    return A + K1 * dt_ + K2 * dx_ * dx_ + K3 * dy_ * dy_;
  };
  numeric::Richardson3Model model(3.0);
  model.EstimateK1(value(dt, dx, dy), value(dt / 2, dx, dy), dt);
  model.EstimateK2(value(dt, dx, dy), value(dt, dx / 2, dy), dx);
  model.EstimateK3(value(dt, dx, dy), value(dt, dx, dy / 2), dy);
  EXPECT_NEAR(model.k1(), K1, 1e-9);
  EXPECT_NEAR(model.k2(), K2, 1e-9);
  EXPECT_NEAR(model.k3(), K3, 1e-9);

  const Bounds b = model.BoundsFor(value(dt, dx, dy), dt, dx, dy);
  EXPECT_TRUE(b.Contains(A));
  EXPECT_TRUE(b.Contains(value(dt, dx, dy)));
}

TEST(Richardson3ModelTest, PreferredAxisPicksDominantTerm) {
  numeric::Richardson3Model model(3.0);
  const double dt = 1.0, dx = 0.1, dy = 0.1;
  model.EstimateK1(10.0, 9.0, dt);       // |K1 dt| = 2
  model.EstimateK2(10.0, 10.001, dx);    // tiny
  model.EstimateK3(10.0, 10.001, dy);    // tiny
  EXPECT_EQ(model.PreferredAxis(dt, dx, dy), numeric::StepAxis3::kTime);
  model.EstimateK1(10.0, 9.99999, dt);
  model.EstimateK3(10.0, 11.0, dy);
  EXPECT_EQ(model.PreferredAxis(dt, dx, dy), numeric::StepAxis3::kSpaceY);
}

TEST(Pde2dResultObjectTest, BoundsContainClosedFormThroughout) {
  const double truth = 23.0 / 0.06 * (1.0 - std::exp(-0.06 * 5.0));
  WorkMeter meter;
  auto made = vao::Pde2dResultObject::Create(
      Annuity2dProblem(0.06, 23.0, 5.0), 0.05, 0.0, {}, &meter);
  ASSERT_TRUE(made.ok()) << made.status();
  vao::ResultObject* object = made->get();
  for (int i = 0; i < 8 && !object->AtStoppingCondition(); ++i) {
    EXPECT_TRUE(object->bounds().Contains(truth))
        << "iteration " << i << " bounds " << object->bounds();
    ASSERT_TRUE(object->Iterate().ok());
  }
}

TEST(Pde2dResultObjectTest, EstCostMatchesActual) {
  WorkMeter meter;
  auto made = vao::Pde2dResultObject::Create(
      Annuity2dProblem(0.06, 23.0, 5.0), 0.05, 0.0, {}, &meter);
  ASSERT_TRUE(made.ok());
  vao::ResultObject* object = made->get();
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t predicted = object->est_cost();
    const std::uint64_t before = meter.ExecUnits();
    ASSERT_TRUE(object->Iterate().ok());
    EXPECT_EQ(meter.ExecUnits() - before, predicted) << "iteration " << i;
  }
}

TEST(TwoFactorModelTest, PriceSensitivities) {
  finance::Bond bond;
  finance::TwoFactorModelConfig config;
  // Coarser minWidth keeps this test fast; sensitivities are way above it.
  config.pde.min_width = 0.25;
  const finance::TwoFactorBondPricingFunction fn({bond}, config);

  auto price = [&](double rate, double level) {
    WorkMeter meter;
    auto object = fn.Invoke(fn.ArgsFor(rate, level, 0), &meter);
    EXPECT_TRUE(object.ok()) << object.status();
    EXPECT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
    return (*object)->bounds().Mid();
  };

  const double base = price(0.0575, 0.0);
  EXPECT_GT(base, 60.0);
  EXPECT_LT(base, 160.0);
  // Decreasing in the rate.
  EXPECT_GT(price(0.045, 0.0), base);
  EXPECT_LT(price(0.07, 0.0), base);
  // Increasing in the prepayment index (cashflow rises with it).
  EXPECT_GT(price(0.0575, 0.3), base);
  EXPECT_LT(price(0.0575, -0.3), base);
}

TEST(TwoFactorModelTest, ValidatesArguments) {
  finance::Bond bond;
  const finance::TwoFactorBondPricingFunction fn(
      {bond}, finance::TwoFactorModelConfig{});
  WorkMeter meter;
  EXPECT_FALSE(fn.Invoke({0.05, 0.0}, &meter).ok());          // arity
  EXPECT_FALSE(fn.Invoke({0.5, 0.0, 0.0}, &meter).ok());      // rate range
  EXPECT_FALSE(fn.Invoke({0.05, 3.0, 0.0}, &meter).ok());     // level range
  EXPECT_FALSE(fn.Invoke({0.05, 0.0, 9.0}, &meter).ok());     // index range
  EXPECT_EQ(fn.arity(), 3);
}

}  // namespace
}  // namespace vaolib
