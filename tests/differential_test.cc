// The differential acceptance sweep: thousands of seeded workload/query
// combos per operator family, every VAO answer checked against the
// black-box oracle (and the workloads' known true values), plus proof that
// the harness catches deliberately broken strategies.
//
// Runs under the ctest label `differential`. Seed count is overridable with
// VAOLIB_DIFF_SEEDS (CI smoke uses 64; nightly uses 2000); failing combos
// are appended to $VAOLIB_DIFF_ARTIFACT when set.

#include <gtest/gtest.h>

#include "testing/differential_runner.h"

namespace vaolib::testing {
namespace {

TEST(DifferentialTest, SweepMatchesOracleEverywhere) {
  const DifferentialOptions options = DifferentialOptions::FromEnv();
  DifferentialRunner runner(options);
  const auto summary = runner.RunAll();
  ASSERT_TRUE(summary.ok()) << summary.status();
  for (const DifferentialFailure& failure : summary->failures) {
    ADD_FAILURE() << failure.repro << "\n  " << failure.detail;
  }
  EXPECT_GT(summary->combos, 0u);
  // At the default 250 seeds, every operator family clears 2000 combos; a
  // smaller VAOLIB_DIFF_SEEDS (CI smoke) scales the floor proportionally.
  const double scale =
      static_cast<double>(options.seeds) / DifferentialOptions{}.seeds;
  for (const char* family : {"selection", "minmax", "sumave", "topk"}) {
    const auto it = summary->combos_by_family.find(family);
    ASSERT_NE(it, summary->combos_by_family.end()) << family;
    EXPECT_GE(it->second, static_cast<std::uint64_t>(2000 * scale))
        << family;
  }
}

TEST(DifferentialTest, SweepIsDeterministic) {
  DifferentialOptions options;
  options.seeds = 3;
  DifferentialRunner runner(options);
  const auto first = runner.RunAll();
  const auto second = runner.RunAll();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->combos, second->combos);
  EXPECT_EQ(first->failures.size(), second->failures.size());
}

TEST(DifferentialTest, CatchesFlippedComparator) {
  DifferentialOptions options;
  options.seeds = 8;
  options.kinds = {{engine::QueryKind::kSelect, 1},
                   {engine::QueryKind::kSelectRange, 1}};
  options.strategies.clear();
  options.mutation = Mutation::kFlipComparator;
  options.max_failures = 4;
  DifferentialRunner runner(options);
  const auto summary = runner.RunAll();
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_FALSE(summary->ok())
      << "a flipped comparator went undetected across the sweep";
  // Every failure carries a full replay recipe.
  for (const DifferentialFailure& failure : summary->failures) {
    EXPECT_NE(failure.repro.find("seed="), std::string::npos);
    EXPECT_NE(failure.repro.find("query="), std::string::npos);
    EXPECT_FALSE(failure.detail.empty());
  }
}

TEST(DifferentialTest, CatchesSwappedMinMax) {
  DifferentialOptions options;
  options.seeds = 8;
  options.kinds = {{engine::QueryKind::kMax, 1},
                   {engine::QueryKind::kMin, 1}};
  options.mutation = Mutation::kSwapMinMax;
  options.max_failures = 4;
  DifferentialRunner runner(options);
  const auto summary = runner.RunAll();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_FALSE(summary->ok())
      << "MAX answered as MIN went undetected across the sweep";
}

TEST(DifferentialTest, CatchesFlippedCalibrationSign) {
  // Planted defect in the predictive-planning path: corrections applied
  // with the wrong sign make corrected estimates WORSE than raw ones. The
  // sweep's calibration audit (two passes over a lying-estimate workload
  // sharing one CostHistory) must flag it on the very first seed.
  DifferentialOptions options;
  options.seeds = 2;
  options.kinds.clear();
  options.scheduler_policies.clear();
  options.batch_ks.clear();
  options.mutation = Mutation::kFlipCalibrationSign;
  options.max_failures = 4;
  DifferentialRunner runner(options);
  const auto summary = runner.RunAll();
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_FALSE(summary->ok())
      << "a sign-flipped calibration correction went undetected";
  bool audit_failed = false;
  for (const DifferentialFailure& failure : summary->failures) {
    if (failure.detail.find("calibration audit") != std::string::npos) {
      audit_failed = true;
    }
  }
  EXPECT_TRUE(audit_failed)
      << "the flip was caught, but not by the calibration audit";
  // The same sweep without the mutation is clean.
  options.mutation = Mutation::kNone;
  DifferentialRunner clean(options);
  const auto clean_summary = clean.RunAll();
  ASSERT_TRUE(clean_summary.ok()) << clean_summary.status();
  for (const DifferentialFailure& failure : clean_summary->failures) {
    ADD_FAILURE() << failure.repro << "\n  " << failure.detail;
  }
}

TEST(DifferentialTest, ShrinkingProducesAReplayableSeed) {
  DifferentialOptions options;
  options.seeds = 4;
  options.kinds = {{engine::QueryKind::kSelect, 1}};
  options.strategies.clear();
  options.mutation = Mutation::kFlipComparator;
  options.max_failures = 1;
  DifferentialRunner runner(options);
  const auto summary = runner.RunAll();
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_FALSE(summary->failures.empty());
  const DifferentialFailure& failure = summary->failures.front();
  // A flipped comparator fails even on a single row, so the shrinker can
  // reach the true minimum.
  EXPECT_LT(failure.rows, options.rows);
  EXPECT_GE(failure.rows, 1u);
  // RunOne replays the shrunk combo and reproduces a mismatch.
  const auto replay = runner.RunOne(failure.seed, failure.variant,
                                    failure.rows, failure.threads,
                                    failure.cache);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->has_value()) << "shrunk repro no longer fails";
}

TEST(DifferentialTest, FamilyNames) {
  EXPECT_STREQ(DifferentialRunner::FamilyOf(engine::QueryKind::kSelect),
               "selection");
  EXPECT_STREQ(DifferentialRunner::FamilyOf(engine::QueryKind::kSelectRange),
               "selection");
  EXPECT_STREQ(DifferentialRunner::FamilyOf(engine::QueryKind::kMin),
               "minmax");
  EXPECT_STREQ(DifferentialRunner::FamilyOf(engine::QueryKind::kAve),
               "sumave");
  EXPECT_STREQ(DifferentialRunner::FamilyOf(engine::QueryKind::kTopK),
               "topk");
}

}  // namespace
}  // namespace vaolib::testing
