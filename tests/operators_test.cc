// Unit tests for src/operators: selection, MIN/MAX, SUM/AVE, oracle,
// traditional and hybrid operators, driven by FakeResultObjects.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "operators/min_max.h"
#include "operators/operator_base.h"
#include "operators/selection.h"
#include "operators/sum_ave.h"
#include "operators/traditional.h"
#include "fake_result_object.h"

namespace vaolib::operators {
namespace {

using vao::testing::FakeResultObject;

FakeResultObject MakeFake(double true_value, double half_width = 10.0,
                          double skew = 0.5, WorkMeter* meter = nullptr) {
  FakeResultObject::Config config;
  config.true_value = true_value;
  config.initial_half_width = half_width;
  config.skew = skew;
  config.meter = meter;
  return FakeResultObject(config);
}

// ---------------------------------------------------------------------------
// Selection

TEST(SelectionVaoTest, DecidesWithoutIterationWhenBoundsExcludeConstant) {
  auto object = MakeFake(105.0, 2.0);  // bounds [103, 107]
  const SelectionVao vao(Comparator::kGreaterThan, 100.0);
  const auto outcome = vao.Evaluate(&object);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->passes);
  EXPECT_EQ(outcome->stats.iterations, 0u);
  EXPECT_FALSE(outcome->resolved_as_equal);
}

TEST(SelectionVaoTest, IteratesOnlyUntilConstantExcluded) {
  auto object = MakeFake(105.0, 20.0);  // bounds [85, 125] straddle 100
  const SelectionVao vao(Comparator::kGreaterThan, 100.0);
  const auto outcome = vao.Evaluate(&object);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->passes);
  EXPECT_GT(outcome->stats.iterations, 0u);
  // Far from converged: the savings the paper is about.
  EXPECT_GT(object.bounds().Width(), object.min_width() * 10);
}

TEST(SelectionVaoTest, LessThanMirrorsGreaterThan) {
  auto object = MakeFake(95.0, 20.0);
  const SelectionVao vao(Comparator::kLessThan, 100.0);
  const auto outcome = vao.Evaluate(&object);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->passes);
}

TEST(SelectionVaoTest, FailingPredicateDecidedCorrectly) {
  auto object = MakeFake(95.0, 20.0);
  const SelectionVao vao(Comparator::kGreaterThan, 100.0);
  const auto outcome = vao.Evaluate(&object);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->passes);
}

TEST(SelectionVaoTest, ValueEqualConstantResolvesViaMinWidthRule) {
  // True value exactly at the constant: bounds always straddle, so the VAO
  // converges to minWidth and applies equality semantics.
  auto object = MakeFake(100.0, 16.0);
  const SelectionVao strict(Comparator::kGreaterThan, 100.0);
  auto outcome = strict.Evaluate(&object);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->resolved_as_equal);
  EXPECT_FALSE(outcome->passes);  // strict > fails on equality
  EXPECT_LT(object.bounds().Width(), object.min_width());

  auto object2 = MakeFake(100.0, 16.0);
  const SelectionVao non_strict(Comparator::kGreaterEqual, 100.0);
  outcome = non_strict.Evaluate(&object2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->resolved_as_equal);
  EXPECT_TRUE(outcome->passes);  // >= passes on equality
}

TEST(SelectionVaoTest, AgreesWithExactComparisonOnRandomInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const double truth = rng.Uniform(80.0, 120.0);
    const double constant = rng.Uniform(80.0, 120.0);
    const double skew = rng.Uniform(0.05, 0.95);
    auto object = MakeFake(truth, rng.Uniform(1.0, 30.0), skew);
    const SelectionVao vao(Comparator::kGreaterThan, constant);
    const auto outcome = vao.Evaluate(&object);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->resolved_as_equal) {
      EXPECT_EQ(outcome->passes, truth > constant)
          << "truth " << truth << " constant " << constant;
    } else {
      EXPECT_NEAR(truth, constant, object.min_width());
    }
  }
}

TEST(SelectionVaoTest, NullObjectRejected) {
  const SelectionVao vao(Comparator::kGreaterThan, 0.0);
  EXPECT_FALSE(vao.Evaluate(nullptr).ok());
}

TEST(ComparatorTest, ExactSemantics) {
  EXPECT_TRUE(CompareExact(2.0, Comparator::kGreaterThan, 1.0));
  EXPECT_FALSE(CompareExact(1.0, Comparator::kGreaterThan, 1.0));
  EXPECT_TRUE(CompareExact(1.0, Comparator::kGreaterEqual, 1.0));
  EXPECT_TRUE(CompareExact(0.0, Comparator::kLessThan, 1.0));
  EXPECT_TRUE(CompareExact(1.0, Comparator::kLessEqual, 1.0));
  EXPECT_STREQ(ComparatorToString(Comparator::kGreaterThan), ">");
  EXPECT_STREQ(ComparatorToString(Comparator::kLessEqual), "<=");
}

// ---------------------------------------------------------------------------
// MIN/MAX

TEST(MinMaxVaoTest, FindsMaxAmongSeparatedObjects) {
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(95.0));
  objects.push_back(MakeFake(105.0));
  objects.push_back(MakeFake(88.0));
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);

  MinMaxOptions options;
  options.epsilon = 0.05;
  const MinMaxVao vao(options);
  const auto outcome = vao.Evaluate(ptrs);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->winner_index, 1u);
  EXPECT_FALSE(outcome->tie);
  EXPECT_LE(outcome->winner_bounds.Width(), options.epsilon);
  EXPECT_TRUE(outcome->winner_bounds.Contains(105.0));
}

TEST(MinMaxVaoTest, FindsMinSymmetrically) {
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(95.0));
  objects.push_back(MakeFake(105.0));
  objects.push_back(MakeFake(88.0));
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);

  MinMaxOptions options;
  options.kind = ExtremeKind::kMin;
  options.epsilon = 0.05;
  const MinMaxVao vao(options);
  const auto outcome = vao.Evaluate(ptrs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->winner_index, 2u);
  EXPECT_TRUE(outcome->winner_bounds.Contains(88.0));
}

TEST(MinMaxVaoTest, CorrectOnRandomSetsAllStrategies) {
  for (const auto strategy :
       {StrategyKind::kGreedy, StrategyKind::kRoundRobin,
        StrategyKind::kRandom}) {
    Rng rng(7);
    Rng strategy_rng(11);
    for (int trial = 0; trial < 50; ++trial) {
      const int n = static_cast<int>(rng.UniformInt(2, 12));
      std::vector<std::unique_ptr<FakeResultObject>> objects;
      std::size_t best = 0;
      double best_value = -1e9;
      for (int i = 0; i < n; ++i) {
        // Keep values >= 1 apart so the winner is never ambiguous at the
        // 0.01 minWidth floor.
        const double value = 50.0 + 1.5 * static_cast<double>(
                                              rng.UniformInt(0, 40));
        if (value > best_value + 0.5) {
          best_value = value;
          best = objects.size();
        }
        FakeResultObject::Config config;
        config.true_value = value;
        config.initial_half_width = rng.Uniform(5.0, 40.0);
        config.skew = rng.Uniform(0.1, 0.9);
        objects.push_back(std::make_unique<FakeResultObject>(config));
      }
      // Regenerate exact dedupe: find true argmax.
      for (std::size_t i = 0; i < objects.size(); ++i) {
        if (objects[i]->true_value() > objects[best]->true_value()) best = i;
      }
      // Skip sets with duplicated maxima (tie semantics tested separately).
      bool duplicated = false;
      for (std::size_t i = 0; i < objects.size(); ++i) {
        if (i != best && objects[i]->true_value() ==
                             objects[best]->true_value()) {
          duplicated = true;
        }
      }
      if (duplicated) continue;

      std::vector<vao::ResultObject*> ptrs;
      for (auto& o : objects) ptrs.push_back(o.get());
      MinMaxOptions options;
      options.epsilon = 0.05;
      options.strategy = strategy;
      options.rng = &strategy_rng;
      const MinMaxVao vao(options);
      const auto outcome = vao.Evaluate(ptrs);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      EXPECT_EQ(outcome->winner_index, best);
      EXPECT_TRUE(
          outcome->winner_bounds.Contains(objects[best]->true_value()));
    }
  }
}

TEST(MinMaxVaoTest, IndistinguishableValuesReportTie) {
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(100.0));
  objects.push_back(MakeFake(100.0));
  objects.push_back(MakeFake(100.0));
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);

  MinMaxOptions options;
  options.epsilon = 0.05;
  const MinMaxVao vao(options);
  const auto outcome = vao.Evaluate(ptrs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->tie);
  EXPECT_EQ(outcome->tied_indices.size(), 2u);
  // Everything had to be run to the stopping condition (the paper's worst
  // case for MAX).
  for (const auto& o : objects) {
    EXPECT_LT(o.bounds().Width(), o.min_width());
  }
}

TEST(MinMaxVaoTest, EpsilonBelowMinWidthRejected) {
  auto object = MakeFake(100.0);
  std::vector<vao::ResultObject*> ptrs{&object};
  MinMaxOptions options;
  options.epsilon = 0.001;  // < 0.01 minWidth
  const MinMaxVao vao(options);
  EXPECT_EQ(vao.Evaluate(ptrs).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MinMaxVaoTest, EmptyAndNullInputsRejected) {
  MinMaxOptions options;
  const MinMaxVao vao(options);
  EXPECT_FALSE(vao.Evaluate({}).ok());
  std::vector<vao::ResultObject*> with_null{nullptr};
  EXPECT_FALSE(vao.Evaluate(with_null).ok());
}

TEST(MinMaxVaoTest, RandomStrategyRequiresRng) {
  auto object = MakeFake(100.0);
  std::vector<vao::ResultObject*> ptrs{&object};
  MinMaxOptions options;
  options.strategy = StrategyKind::kRandom;
  const MinMaxVao vao(options);
  EXPECT_FALSE(vao.Evaluate(ptrs).ok());
}

TEST(MinMaxVaoTest, GreedySkipsClearlyDominatedObjects) {
  // A far-below object should never be iterated: it is pruned immediately
  // after the leaders separate from it.
  WorkMeter meter;
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(105.0, 3.0, 0.5, &meter));  // [102, 108]
  objects.push_back(MakeFake(100.0, 3.0, 0.5, &meter));  // [97, 103]
  objects.push_back(MakeFake(10.0, 3.0, 0.5, &meter));   // [7, 13]
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);

  MinMaxOptions options;
  options.epsilon = 0.05;
  const MinMaxVao vao(options);
  ASSERT_TRUE(vao.Evaluate(ptrs).ok());
  EXPECT_EQ(objects[2].iterations(), 0);
}

TEST(MinMaxVaoTest, ChooseIterChargedToMeter) {
  WorkMeter meter;
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(100.0, 20.0));
  objects.push_back(MakeFake(101.0, 20.0));
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);
  MinMaxOptions options;
  options.epsilon = 0.05;
  options.meter = &meter;
  const MinMaxVao vao(options);
  ASSERT_TRUE(vao.Evaluate(ptrs).ok());
  EXPECT_GT(meter.Count(WorkKind::kChooseIter), 0u);
}

TEST(MinMaxVaoTest, DishonestEstimatesStillTerminate) {
  // est_bounds predicting zero progress must not deadlock the greedy loop.
  std::vector<std::unique_ptr<FakeResultObject>> objects;
  for (const double v : {90.0, 101.0, 100.0}) {
    FakeResultObject::Config config;
    config.true_value = v;
    config.initial_half_width = 10.0;
    config.honest_estimates = false;
    objects.push_back(std::make_unique<FakeResultObject>(config));
  }
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(o.get());
  MinMaxOptions options;
  options.epsilon = 0.05;
  const MinMaxVao vao(options);
  const auto outcome = vao.Evaluate(ptrs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->winner_index, 1u);
}

TEST(OptimalOracleTest, MatchesVaoAnswerWithFewerOrEqualIterations) {
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(3, 10));
    std::vector<std::unique_ptr<FakeResultObject>> vao_objects;
    std::vector<std::unique_ptr<FakeResultObject>> oracle_objects;
    std::size_t best = 0;
    for (int i = 0; i < n; ++i) {
      FakeResultObject::Config config;
      config.true_value =
          50.0 + 2.0 * static_cast<double>(rng.UniformInt(0, 30));
      config.initial_half_width = rng.Uniform(5.0, 30.0);
      config.skew = rng.Uniform(0.2, 0.8);
      vao_objects.push_back(std::make_unique<FakeResultObject>(config));
      oracle_objects.push_back(std::make_unique<FakeResultObject>(config));
      if (config.true_value >
          vao_objects[best]->true_value()) {
        best = static_cast<std::size_t>(i);
      }
    }
    bool duplicated = false;
    for (std::size_t i = 0; i < vao_objects.size(); ++i) {
      if (i != best && vao_objects[i]->true_value() ==
                           vao_objects[best]->true_value()) {
        duplicated = true;
      }
    }
    if (duplicated) continue;

    std::vector<vao::ResultObject*> vao_ptrs, oracle_ptrs;
    for (auto& o : vao_objects) vao_ptrs.push_back(o.get());
    for (auto& o : oracle_objects) oracle_ptrs.push_back(o.get());

    MinMaxOptions options;
    options.epsilon = 0.05;
    const MinMaxVao vao(options);
    const auto vao_outcome = vao.Evaluate(vao_ptrs);
    const auto oracle_outcome =
        OptimalExtremeOracle(oracle_ptrs, best, ExtremeKind::kMax, 0.05);
    ASSERT_TRUE(vao_outcome.ok());
    ASSERT_TRUE(oracle_outcome.ok());
    EXPECT_EQ(vao_outcome->winner_index, oracle_outcome->winner_index);
    // The oracle never does more work than the adaptive strategy here
    // because the fakes have uniform per-iteration costs.
    EXPECT_LE(oracle_outcome->stats.iterations, vao_outcome->stats.iterations);
  }
}

TEST(OptimalOracleTest, RejectsOutOfRangeWinner) {
  auto object = MakeFake(1.0);
  std::vector<vao::ResultObject*> ptrs{&object};
  EXPECT_FALSE(OptimalExtremeOracle(ptrs, 5, ExtremeKind::kMax, 0.05).ok());
}

// ---------------------------------------------------------------------------
// SUM / AVE

TEST(SumAveVaoTest, BoundsContainTrueWeightedSum) {
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 15));
    std::vector<std::unique_ptr<FakeResultObject>> objects;
    std::vector<double> weights;
    double truth = 0.0;
    for (int i = 0; i < n; ++i) {
      FakeResultObject::Config config;
      config.true_value = rng.Uniform(-50.0, 150.0);
      config.initial_half_width = rng.Uniform(1.0, 25.0);
      config.skew = rng.Uniform(0.1, 0.9);
      objects.push_back(std::make_unique<FakeResultObject>(config));
      weights.push_back(rng.Uniform(0.0, 4.0));
      truth += weights.back() * config.true_value;
    }
    std::vector<vao::ResultObject*> ptrs;
    for (auto& o : objects) ptrs.push_back(o.get());

    SumAveOptions options;
    options.epsilon = 0.5;
    const SumAveVao vao(options);
    const auto outcome = vao.Evaluate(ptrs, weights);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_LE(outcome->sum_bounds.Width(), options.epsilon + 1e-9);
    EXPECT_TRUE(outcome->sum_bounds.Contains(truth))
        << outcome->sum_bounds << " truth " << truth;
  }
}

TEST(SumAveVaoTest, ZeroWeightObjectsNeverIterated) {
  WorkMeter meter;
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(100.0, 20.0, 0.5, &meter));
  objects.push_back(MakeFake(100.0, 20.0, 0.5, &meter));
  std::vector<vao::ResultObject*> ptrs{&objects[0], &objects[1]};
  SumAveOptions options;
  options.epsilon = 0.05;
  const SumAveVao vao(options);
  ASSERT_TRUE(vao.Evaluate(ptrs, {1.0, 0.0}).ok());
  EXPECT_GT(objects[0].iterations(), 0);
  EXPECT_EQ(objects[1].iterations(), 0);
}

TEST(SumAveVaoTest, HeavyWeightsGetMoreIterations) {
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(100.0, 20.0));
  objects.push_back(MakeFake(100.0, 20.0));
  std::vector<vao::ResultObject*> ptrs{&objects[0], &objects[1]};
  SumAveOptions options;
  options.epsilon = 2.0;
  const SumAveVao vao(options);
  ASSERT_TRUE(vao.Evaluate(ptrs, {10.0, 0.1}).ok());
  EXPECT_GT(objects[0].iterations(), objects[1].iterations());
}

TEST(SumAveVaoTest, StopsAtMinWidthWhenEpsilonUnreachable) {
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(100.0, 20.0));
  std::vector<vao::ResultObject*> ptrs{&objects[0]};
  SumAveOptions options;
  options.epsilon = 1e-9;  // unreachable: minWidth floor is 0.01
  const SumAveVao vao(options);
  const auto outcome = vao.Evaluate(ptrs, {1.0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->limited_by_min_width);
  EXPECT_LT(objects[0].bounds().Width(), 0.01);
}

TEST(SumAveVaoTest, AveIsSumWithUniformWeights) {
  std::vector<FakeResultObject> a_objects, b_objects;
  for (const double v : {90.0, 100.0, 110.0}) {
    a_objects.push_back(MakeFake(v, 10.0));
    b_objects.push_back(MakeFake(v, 10.0));
  }
  std::vector<vao::ResultObject*> a_ptrs, b_ptrs;
  for (auto& o : a_objects) a_ptrs.push_back(&o);
  for (auto& o : b_objects) b_ptrs.push_back(&o);
  SumAveOptions options;
  options.epsilon = 0.03;
  const SumAveVao vao(options);
  const auto ave = vao.Evaluate(a_ptrs, AveWeights(3));
  ASSERT_TRUE(ave.ok());
  EXPECT_TRUE(ave->sum_bounds.Contains(100.0));
  EXPECT_LE(ave->sum_bounds.Width(), 0.03 + 1e-12);
}

TEST(SumAveVaoTest, InputValidation) {
  auto object = MakeFake(1.0);
  std::vector<vao::ResultObject*> ptrs{&object};
  SumAveOptions options;
  const SumAveVao vao(options);
  EXPECT_FALSE(vao.Evaluate({}, {}).ok());
  EXPECT_FALSE(vao.Evaluate(ptrs, {1.0, 2.0}).ok());   // length mismatch
  EXPECT_FALSE(vao.Evaluate(ptrs, {-1.0}).ok());       // negative weight
  SumAveOptions bad;
  bad.epsilon = 0.0;
  EXPECT_FALSE(SumAveVao(bad).Evaluate(ptrs, {1.0}).ok());
}

TEST(SumWeightsTest, Helpers) {
  EXPECT_EQ(SumWeights(3), (std::vector<double>{1.0, 1.0, 1.0}));
  const auto ave = AveWeights(4);
  EXPECT_DOUBLE_EQ(ave[0], 0.25);
  EXPECT_EQ(AveWeights(0).size(), 0u);
}

// ---------------------------------------------------------------------------
// Hybrid SUM

TEST(HybridSumVaoTest, SkewDecision) {
  HybridSumVao::Options options;
  options.hot_fraction = 0.10;
  options.skew_threshold = 0.5;
  const HybridSumVao hybrid(options);

  // Uniform weights: top 10% holds ~10% of weight -> traditional path.
  EXPECT_FALSE(hybrid.ShouldUseVao(std::vector<double>(100, 1.0)));

  // Hot 10 items hold 90% of the weight -> VAO path.
  std::vector<double> skewed(100, 10.0 / 90.0);
  for (int i = 0; i < 10; ++i) skewed[i] = 9.0;
  EXPECT_TRUE(hybrid.ShouldUseVao(skewed));
}

TEST(HybridSumVaoTest, VaoPathMatchesSumVao) {
  std::vector<FakeResultObject> objects;
  objects.push_back(MakeFake(100.0, 10.0));
  objects.push_back(MakeFake(50.0, 10.0));
  std::vector<vao::ResultObject*> ptrs{&objects[0], &objects[1]};
  HybridSumVao::Options options;
  options.vao.epsilon = 1.0;
  options.skew_threshold = 0.5;
  const HybridSumVao hybrid(options);
  const auto outcome = hybrid.Evaluate(ptrs, {9.0, 1.0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->used_vao);
  EXPECT_TRUE(outcome->sum.sum_bounds.Contains(9.0 * 100.0 + 50.0));
}

TEST(HybridSumVaoTest, TraditionalPathUsesCallback) {
  // 20 uniformly weighted objects: the top 10% holds ~10% of the weight,
  // well under the 50% threshold, so the hybrid picks the traditional path.
  std::vector<FakeResultObject> objects;
  for (int i = 0; i < 20; ++i) objects.push_back(MakeFake(100.0 + i, 10.0));
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);
  HybridSumVao::Options options;
  options.vao.epsilon = 5.0;
  const HybridSumVao hybrid(options);
  int calls = 0;
  double truth = 0.0;
  for (int i = 0; i < 20; ++i) truth += 100.0 + i;
  const auto outcome = hybrid.Evaluate(
      ptrs, std::vector<double>(20, 1.0),
      [&](std::size_t i) -> Result<double> {
        ++calls;
        return 100.0 + static_cast<double>(i);
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->used_vao);
  EXPECT_EQ(calls, 20);
  EXPECT_TRUE(outcome->sum.sum_bounds.Contains(truth));
  // No VAO iterations happened.
  EXPECT_EQ(objects[0].iterations(), 0);
}

TEST(HybridSumVaoTest, TraditionalFallbackConvergesObjects) {
  std::vector<FakeResultObject> objects;
  for (int i = 0; i < 20; ++i) objects.push_back(MakeFake(100.0, 10.0));
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);
  HybridSumVao::Options options;
  options.vao.epsilon = 5.0;
  const HybridSumVao hybrid(options);
  const auto outcome =
      hybrid.Evaluate(ptrs, std::vector<double>(20, 1.0));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->used_vao);
  EXPECT_LT(objects[0].bounds().Width(), 0.01);
  EXPECT_TRUE(outcome->sum.sum_bounds.Contains(20.0 * 100.0));
}


// ---------------------------------------------------------------------------
// Range (BETWEEN) selection

TEST(RangeSelectionVaoTest, DecidesInsideWithoutFullConvergence) {
  auto object = MakeFake(100.0, 3.0);  // [97, 103] inside [90, 110]
  const RangeSelectionVao vao(90.0, 110.0);
  const auto outcome = vao.Evaluate(&object);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->passes);
  EXPECT_EQ(outcome->stats.iterations, 0u);
}

TEST(RangeSelectionVaoTest, DecidesOutsideEitherSide) {
  auto low = MakeFake(50.0, 3.0);
  auto high = MakeFake(150.0, 3.0);
  const RangeSelectionVao vao(90.0, 110.0);
  EXPECT_FALSE(vao.Evaluate(&low)->passes);
  EXPECT_FALSE(vao.Evaluate(&high)->passes);
}

TEST(RangeSelectionVaoTest, IteratesWhenStraddlingAnEndpoint) {
  auto object = MakeFake(95.0, 20.0);  // straddles the 90 endpoint
  const RangeSelectionVao vao(90.0, 110.0);
  const auto outcome = vao.Evaluate(&object);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->passes);
  EXPECT_GT(outcome->stats.iterations, 0u);
}

TEST(RangeSelectionVaoTest, EndpointEqualityFollowsInclusivity) {
  auto inclusive_obj = MakeFake(90.0, 16.0);  // exactly on the endpoint
  const RangeSelectionVao inclusive(90.0, 110.0, /*inclusive=*/true);
  auto outcome = inclusive.Evaluate(&inclusive_obj);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->resolved_as_equal);
  EXPECT_TRUE(outcome->passes);

  auto exclusive_obj = MakeFake(90.0, 16.0);
  const RangeSelectionVao exclusive(90.0, 110.0, /*inclusive=*/false);
  outcome = exclusive.Evaluate(&exclusive_obj);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->resolved_as_equal);
  EXPECT_FALSE(outcome->passes);
}

TEST(RangeSelectionVaoTest, AgreesWithExactMembershipOnRandomInputs) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const double truth = rng.Uniform(60.0, 140.0);
    const double lo = rng.Uniform(70.0, 100.0);
    const double hi = lo + rng.Uniform(1.0, 40.0);
    auto object = MakeFake(truth, rng.Uniform(1.0, 30.0),
                           rng.Uniform(0.1, 0.9));
    const RangeSelectionVao vao(lo, hi);
    const auto outcome = vao.Evaluate(&object);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->resolved_as_equal) {
      EXPECT_EQ(outcome->passes, truth >= lo && truth <= hi)
          << "truth " << truth << " range [" << lo << ", " << hi << "]";
    }
  }
}

TEST(RangeSelectionVaoTest, InputValidation) {
  const RangeSelectionVao bad(10.0, 5.0);
  auto object = MakeFake(7.0);
  EXPECT_FALSE(bad.Evaluate(&object).ok());
  const RangeSelectionVao ok(5.0, 10.0);
  EXPECT_FALSE(ok.Evaluate(nullptr).ok());
}


// ---------------------------------------------------------------------------
// Multi-predicate (shared) selection

TEST(MultiSelectionVaoTest, AllPredicatesDecidedInOnePass) {
  auto object = MakeFake(105.0, 30.0);
  const MultiSelectionVao vao({{Comparator::kGreaterThan, 100.0},
                               {Comparator::kGreaterThan, 110.0},
                               {Comparator::kLessThan, 90.0},
                               {Comparator::kLessEqual, 200.0}});
  const auto outcome = vao.Evaluate(&object);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->passes.size(), 4u);
  EXPECT_TRUE(outcome->passes[0]);   // 105 > 100
  EXPECT_FALSE(outcome->passes[1]);  // 105 > 110 is false
  EXPECT_FALSE(outcome->passes[2]);  // 105 < 90 is false
  EXPECT_TRUE(outcome->passes[3]);   // 105 <= 200
}

TEST(MultiSelectionVaoTest, SharedWorkBeatsSeparateEvaluation) {
  // m predicates over one object: shared evaluation iterates the object
  // once to the hardest predicate; separate evaluation repeats all the
  // early iterations per predicate.
  const std::vector<MultiSelectionVao::Predicate> predicates{
      {Comparator::kGreaterThan, 104.0},
      {Comparator::kGreaterThan, 95.0},
      {Comparator::kGreaterThan, 80.0},
      {Comparator::kGreaterThan, 120.0}};

  WorkMeter shared_meter;
  auto shared_object = MakeFake(105.0, 40.0, 0.5, &shared_meter);
  const MultiSelectionVao shared(predicates);
  ASSERT_TRUE(shared.Evaluate(&shared_object).ok());

  WorkMeter separate_meter;
  for (const auto& p : predicates) {
    auto object = MakeFake(105.0, 40.0, 0.5, &separate_meter);
    const SelectionVao vao(p.cmp, p.constant);
    ASSERT_TRUE(vao.Evaluate(&object).ok());
  }
  EXPECT_LT(shared_meter.Total(), separate_meter.Total());
}

TEST(MultiSelectionVaoTest, AgreesWithSingleSelectionPerPredicate) {
  Rng rng(456);
  for (int trial = 0; trial < 50; ++trial) {
    const double truth = rng.Uniform(80.0, 120.0);
    const double half_width = rng.Uniform(2.0, 30.0);
    const double skew = rng.Uniform(0.1, 0.9);
    std::vector<MultiSelectionVao::Predicate> predicates;
    for (int i = 0; i < 5; ++i) {
      predicates.push_back({rng.Bernoulli(0.5) ? Comparator::kGreaterThan
                                               : Comparator::kLessThan,
                            rng.Uniform(80.0, 120.0)});
    }
    auto shared_object = MakeFake(truth, half_width, skew);
    const MultiSelectionVao shared(predicates);
    const auto multi = shared.Evaluate(&shared_object);
    ASSERT_TRUE(multi.ok());
    for (std::size_t i = 0; i < predicates.size(); ++i) {
      auto object = MakeFake(truth, half_width, skew);
      const SelectionVao single(predicates[i].cmp, predicates[i].constant);
      const auto outcome = single.Evaluate(&object);
      ASSERT_TRUE(outcome.ok());
      if (!multi->resolved_as_equal[i] && !outcome->resolved_as_equal) {
        EXPECT_EQ(multi->passes[i], outcome->passes)
            << "trial " << trial << " predicate " << i;
      }
    }
  }
}

TEST(MultiSelectionVaoTest, InputValidation) {
  const MultiSelectionVao empty({});
  auto object = MakeFake(1.0);
  EXPECT_FALSE(empty.Evaluate(&object).ok());
  const MultiSelectionVao ok({{Comparator::kGreaterThan, 0.0}});
  EXPECT_FALSE(ok.Evaluate(nullptr).ok());
}

}  // namespace
}  // namespace vaolib::operators
