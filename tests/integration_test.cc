// End-to-end integration tests: whole continuous queries over multi-tick
// streams, VAO vs traditional equivalence at every tick, the caching
// function inside the engine, and a non-finance UDF through the same query
// plans (the engine is model-agnostic).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "engine/executor.h"
#include "finance/bond.h"
#include "finance/bond_model.h"
#include "vao/function_cache.h"
#include "vao/integral_result_object.h"
#include "workload/portfolio_gen.h"

namespace vaolib {
namespace {

class CqIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 5;
    bonds_ = workload::GeneratePortfolio(777, spec);
    function_ = std::make_unique<finance::BondPricingFunction>(
        bonds_, finance::BondModelConfig{});
    relation_ = std::make_unique<engine::Relation>(engine::Schema(
        {{"bond_index", engine::ColumnType::kDouble}}));
    for (std::size_t i = 0; i < bonds_.size(); ++i) {
      ASSERT_TRUE(relation_->Append({static_cast<double>(i)}).ok());
    }
    ticks_ = finance::SynthesizeRateSeries(/*seed=*/31, /*num_ticks=*/5);
  }

  engine::Query BaseQuery() const {
    engine::Query query;
    query.function = function_.get();
    query.args = {engine::ArgRef::StreamField("rate"),
                  engine::ArgRef::RelationField("bond_index")};
    return query;
  }

  engine::Schema StreamSchema() const {
    return engine::Schema({{"rate", engine::ColumnType::kDouble}});
  }

  std::vector<finance::Bond> bonds_;
  std::unique_ptr<finance::BondPricingFunction> function_;
  std::unique_ptr<engine::Relation> relation_;
  std::vector<finance::RateTick> ticks_;
};

TEST_F(CqIntegrationTest, SelectionAgreesAcrossModesOnEveryTick) {
  engine::Query query = BaseQuery();
  query.kind = engine::QueryKind::kSelect;
  query.constant = 100.0;
  auto vao = engine::CqExecutor::Create(relation_.get(), StreamSchema(),
                                        query, engine::ExecutionMode::kVao);
  auto trad = engine::CqExecutor::Create(
      relation_.get(), StreamSchema(), query,
      engine::ExecutionMode::kTraditional);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE(trad.ok());

  for (const auto& tick : ticks_) {
    const auto vao_result = (*vao)->ProcessTick({tick.rate});
    const auto trad_result = (*trad)->ProcessTick({tick.rate});
    ASSERT_TRUE(vao_result.ok()) << vao_result.status();
    ASSERT_TRUE(trad_result.ok()) << trad_result.status();
    EXPECT_EQ(vao_result->passing_rows, trad_result->passing_rows)
        << "rate " << tick.rate;
  }
  // Cumulative work comparison across the whole stream.
  EXPECT_LT((*vao)->meter().Total(), (*trad)->meter().Total());
}

TEST_F(CqIntegrationTest, MaxWinnerStableAcrossTicksAndModes) {
  engine::Query query = BaseQuery();
  query.kind = engine::QueryKind::kMax;
  query.epsilon = 0.01;
  auto vao = engine::CqExecutor::Create(relation_.get(), StreamSchema(),
                                        query, engine::ExecutionMode::kVao);
  auto trad = engine::CqExecutor::Create(
      relation_.get(), StreamSchema(), query,
      engine::ExecutionMode::kTraditional);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE(trad.ok());
  for (const auto& tick : ticks_) {
    const auto vao_result = (*vao)->ProcessTick({tick.rate});
    const auto trad_result = (*trad)->ProcessTick({tick.rate});
    ASSERT_TRUE(vao_result.ok());
    ASSERT_TRUE(trad_result.ok());
    if (!vao_result->tie) {
      EXPECT_EQ(*vao_result->winner_row, *trad_result->winner_row);
    }
  }
}

TEST_F(CqIntegrationTest, CachingFunctionInsideEngineSavesOnRepeats) {
  const vao::CachingFunction cached(function_.get());
  engine::Query query = BaseQuery();
  query.function = &cached;
  query.kind = engine::QueryKind::kSelect;
  query.constant = 100.0;

  auto executor = engine::CqExecutor::Create(
      relation_.get(), StreamSchema(), query, engine::ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok());

  // The same rate three times: second and third passes hit the cache.
  const auto first = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(first.ok()) << first.status();
  const auto second = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(second.ok());
  const auto third = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(third.ok());

  EXPECT_EQ(first->passing_rows, second->passing_rows);
  EXPECT_EQ(first->passing_rows, third->passing_rows);
  EXPECT_LT(second->work_units, first->work_units);
  EXPECT_LE(third->work_units, second->work_units);
  EXPECT_GT(cached.cache().hits(), 0u);
}

TEST_F(CqIntegrationTest, NonFinanceUdfThroughTheSameEngine) {
  // An integral-family UDF: f(scale, shift) = \int_0^2 exp(-scale x) dx
  // shifted -- the engine and operators are agnostic to the solver class.
  vao::IntegralResultOptions options;
  options.min_width = 1e-6;
  const vao::IntegralFunction integral(
      "expdecay_area", 2,
      [](const std::vector<double>& args) -> Result<vao::IntegralProblem> {
        const double scale = args[0];
        const double shift = args[1];
        vao::IntegralProblem problem;
        problem.integrand = [scale, shift](double x) {
          return std::exp(-scale * x) + shift;
        };
        problem.a = 0.0;
        problem.b = 2.0;
        return problem;
      },
      options);

  engine::Relation params(engine::Schema(
      {{"shift", engine::ColumnType::kDouble}}));
  for (const double shift : {0.0, 0.5, 1.0, 2.0}) {
    ASSERT_TRUE(params.Append({shift}).ok());
  }

  engine::Query query;
  query.kind = engine::QueryKind::kMax;
  query.function = &integral;
  query.args = {engine::ArgRef::StreamField("scale"),
                engine::ArgRef::RelationField("shift")};
  query.epsilon = 1e-4;

  auto executor = engine::CqExecutor::Create(
      &params, engine::Schema({{"scale", engine::ColumnType::kDouble}}),
      query, engine::ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok());
  const auto result = (*executor)->ProcessTick({1.0});
  ASSERT_TRUE(result.ok()) << result.status();
  // Largest shift wins: area = (1 - e^-2) + 2*shift.
  EXPECT_EQ(*result->winner_row, 3u);
  const double expected = (1.0 - std::exp(-2.0)) + 2.0 * 2.0;
  EXPECT_TRUE(result->aggregate_bounds.Contains(expected));
}

TEST_F(CqIntegrationTest, SumTracksRateMovesAcrossTicks) {
  engine::Query query = BaseQuery();
  query.kind = engine::QueryKind::kSum;
  query.epsilon = 0.05;
  auto executor = engine::CqExecutor::Create(
      relation_.get(), StreamSchema(), query, engine::ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok());

  const auto low_rate = (*executor)->ProcessTick({0.05});
  const auto high_rate = (*executor)->ProcessTick({0.07});
  ASSERT_TRUE(low_rate.ok());
  ASSERT_TRUE(high_rate.ok());
  // Bond prices fall as rates rise, so the portfolio sum must too.
  EXPECT_GT(low_rate->aggregate_bounds.Mid(),
            high_rate->aggregate_bounds.Mid());
}

}  // namespace
}  // namespace vaolib
