// Unit tests for src/obs/trace and src/obs/flight_recorder: env-knob
// parsing (bad values -> safe defaults), ring bounding and wrap-around
// drop accounting, Chrome trace-event export validity (parsed back with
// the library's own JSON reader), the estimator-calibration accumulators,
// flight-recorder dump gating/sanitization, the stall dump trigger, and --
// the PR's acceptance criterion -- that a failing differential seed's
// flight dump replays to the same decision sequence as a fresh re-run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/work_meter.h"
#include "obs/flight_recorder.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "operators/iteration_task.h"
#include "testing/differential_runner.h"
#include "vao/synthetic_result_object.h"

namespace vaolib::obs {
namespace {

namespace fs = std::filesystem;

// Every test that records restores the mode it found; the rings themselves
// are process-global, so tests ClearTrace() before recording.
class TraceModeGuard {
 public:
  TraceModeGuard() : previous_(CurrentTraceMode()) {}
  ~TraceModeGuard() {
    SetTraceMode(previous_);
    FlightRecorder::Global().SetDumpDir("");
  }

 private:
  TraceMode previous_;
};

#ifndef VAOLIB_OBS_DISABLED
std::string FreshDumpDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

Result<std::unique_ptr<json::JsonValue>> ParseFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return json::Parse(buffer.str());
}

// (operator name, phase, object index) per decision event, in file order
// (ExportChromeTrace writes seq-sorted events).
using DecisionKey = std::tuple<std::string, std::string, std::uint64_t>;

std::vector<DecisionKey> DecisionsFromJson(const json::JsonValue& root) {
  std::vector<DecisionKey> out;
  const auto events = json::Child(root, "traceEvents");
  EXPECT_TRUE(events.ok());
  if (!events.ok()) return out;
  for (const auto& entry : events.value()->array) {
    const auto cat = json::GetString(*entry, "cat");
    if (!cat.ok() || cat.value() != "decision") continue;
    const auto name = json::GetString(*entry, "name");
    const auto args = json::Child(*entry, "args");
    EXPECT_TRUE(name.ok() && args.ok());
    if (!name.ok() || !args.ok()) continue;
    const auto phase = json::GetString(*args.value(), "phase");
    const auto object = json::GetNumber(*args.value(), "object");
    EXPECT_TRUE(phase.ok() && object.ok());
    if (!phase.ok() || !object.ok()) continue;
    out.emplace_back(name.value(), phase.value(), object.value());
  }
  return out;
}

std::vector<DecisionKey> DecisionsFromSnapshot(const TraceSnapshot& snap) {
  std::vector<DecisionKey> out;
  for (const TraceEvent& event : snap.events) {
    if (event.kind != TraceEvent::Kind::kDecision) continue;
    out.emplace_back(event.name,
                     event.phase != nullptr ? event.phase : "",
                     event.object_index);
  }
  return out;
}
#endif  // VAOLIB_OBS_DISABLED

TEST(TraceKnobTest, ParseTraceModeFallsBackToOff) {
  EXPECT_EQ(ParseTraceMode(nullptr), TraceMode::kOff);
  EXPECT_EQ(ParseTraceMode(""), TraceMode::kOff);
  EXPECT_EQ(ParseTraceMode("off"), TraceMode::kOff);
  EXPECT_EQ(ParseTraceMode("0"), TraceMode::kOff);
  EXPECT_EQ(ParseTraceMode("false"), TraceMode::kOff);
  EXPECT_EQ(ParseTraceMode("flight"), TraceMode::kFlight);
  EXPECT_EQ(ParseTraceMode("recorder"), TraceMode::kFlight);
  EXPECT_EQ(ParseTraceMode("full"), TraceMode::kFull);
  EXPECT_EQ(ParseTraceMode("on"), TraceMode::kFull);
  EXPECT_EQ(ParseTraceMode("1"), TraceMode::kFull);
  EXPECT_EQ(ParseTraceMode("true"), TraceMode::kFull);
  // Unrecognized values must not accidentally enable tracing.
  EXPECT_EQ(ParseTraceMode("banana"), TraceMode::kOff);
  EXPECT_EQ(ParseTraceMode("FULLY"), TraceMode::kOff);
  EXPECT_EQ(ParseTraceMode("2"), TraceMode::kOff);
}

TEST(TraceKnobTest, ParseRingCapacityClampsAndDefaults) {
  EXPECT_EQ(ParseRingCapacity(nullptr), 4096u);
  EXPECT_EQ(ParseRingCapacity(""), 4096u);
  EXPECT_EQ(ParseRingCapacity("junk"), 4096u);
  EXPECT_EQ(ParseRingCapacity("-5"), 4096u);
  EXPECT_EQ(ParseRingCapacity("0"), 4096u);
  EXPECT_EQ(ParseRingCapacity("8192"), 8192u);
  EXPECT_EQ(ParseRingCapacity("10"), 64u);         // clamp to the floor
  EXPECT_EQ(ParseRingCapacity("99999999"), 1u << 20);  // and the ceiling
}

TEST(TraceKnobTest, EnvInitFallsBackToOffOnBadValue) {
  const TraceModeGuard guard;
  ::setenv("VAOLIB_TRACE", "bogus-mode", 1);
  internal::g_trace_mode.store(-1);  // force re-read of the env
  EXPECT_EQ(CurrentTraceMode(), TraceMode::kOff);
  EXPECT_FALSE(TraceActive(TraceDetail::kCoarse));

#ifndef VAOLIB_OBS_DISABLED
  ::setenv("VAOLIB_TRACE", "flight", 1);
  internal::g_trace_mode.store(-1);
  EXPECT_EQ(CurrentTraceMode(), TraceMode::kFlight);
  EXPECT_TRUE(TraceActive(TraceDetail::kCoarse));
  EXPECT_FALSE(TraceActive(TraceDetail::kFine));
  ::unsetenv("VAOLIB_TRACE");
#endif
}

#ifndef VAOLIB_OBS_DISABLED
TEST(TraceRingTest, WrapKeepsLastEventsAndCountsDropped) {
  const TraceModeGuard guard;
  SetTraceMode(TraceMode::kFull);
  ClearTrace();
  // Ring capacity only applies to rings created after the call, so record
  // from a brand-new thread whose ring is born at the small capacity.
  SetTraceRingCapacity(64);
  std::thread writer([] {
    for (int i = 0; i < 200; ++i) {
      RecordInstant("test", "tick", TraceDetail::kCoarse);
    }
  });
  writer.join();
  SetTraceRingCapacity(4096);

  const TraceSnapshot snap = SnapshotTrace();
  std::size_t test_events = 0;
  std::uint64_t last_seq = 0;
  for (std::size_t i = 0; i < snap.events.size(); ++i) {
    if (std::string(snap.events[i].cat) == "test") ++test_events;
    if (i > 0) {
      EXPECT_GT(snap.events[i].seq, last_seq);
    }
    last_seq = snap.events[i].seq;
  }
  EXPECT_EQ(test_events, 64u);      // only the last ring-full survives
  EXPECT_GE(snap.dropped, 136u);    // 200 - 64 overwritten

  ClearTrace();
  EXPECT_EQ(SnapshotTrace().events.size(), 0u);
  EXPECT_EQ(SnapshotTrace().dropped, 0u);
}
#endif  // VAOLIB_OBS_DISABLED

#ifndef VAOLIB_OBS_DISABLED
TEST(TraceSpanTest, FineSpansRecordOnlyInFullMode) {
  const TraceModeGuard guard;
  SetTraceMode(TraceMode::kFlight);
  ClearTrace();
  { const ScopedSpan coarse("test", "coarse"); }
  { const ScopedSpan fine("test", "fine", TraceDetail::kFine); }
  TraceSnapshot snap = SnapshotTrace();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_STREQ(snap.events[0].name, "coarse");

  SetTraceMode(TraceMode::kFull);
  ClearTrace();
  { const ScopedSpan fine("test", "fine", TraceDetail::kFine); }
  snap = SnapshotTrace();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_STREQ(snap.events[0].name, "fine");
  EXPECT_EQ(snap.events[0].kind, TraceEvent::Kind::kSpan);

  SetTraceMode(TraceMode::kOff);
  ClearTrace();
  { const ScopedSpan span("test", "off"); }
  RecordInstant("test", "off", TraceDetail::kCoarse);
  EXPECT_EQ(SnapshotTrace().events.size(), 0u);
}
#endif  // VAOLIB_OBS_DISABLED

#ifndef VAOLIB_OBS_DISABLED
TEST(TraceExportTest, ChromeTraceJsonParsesWithDecisionPayload) {
  const TraceModeGuard guard;
  SetTraceMode(TraceMode::kFlight);
  ClearTrace();

  Decision decision;
  decision.op = "min_max";
  decision.phase = "search";
  decision.object_index = 7;
  decision.lo_before = 1.0;
  decision.hi_before = 9.0;
  decision.lo_after = 2.0;
  decision.hi_after = 8.0;
  decision.est_lo = 2.5;
  decision.est_hi = 7.5;
  decision.est_cost = 100.0;
  decision.actual_cost = 110.0;
  decision.score = 0.0625;
  RecordDecision(decision);
  RecordSpan("tick", "max", 1000, 2500, TraceDetail::kCoarse);

  std::ostringstream os;
  ExportChromeTrace(os);
  const auto parsed = json::Parse(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << os.str();

  const auto decisions = DecisionsFromJson(*parsed.value());
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0], DecisionKey("min_max", "search", 7u));

  const auto events = json::Child(*parsed.value(), "traceEvents");
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value()->array.size(), 2u);
  bool saw_span = false;
  for (const auto& entry : events.value()->array) {
    const auto ph = json::GetString(*entry, "ph");
    ASSERT_TRUE(ph.ok());
    if (ph.value() != "X") continue;
    saw_span = true;
    const auto dur = json::GetDouble(*entry, "dur");
    ASSERT_TRUE(dur.ok());
    EXPECT_DOUBLE_EQ(dur.value(), 1.5);  // 1500 ns == 1.5 us
  }
  EXPECT_TRUE(saw_span);
  const auto other = json::Child(*parsed.value(), "otherData");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(json::GetNumber(*other.value(), "dropped").value(), 0u);
}
#endif  // VAOLIB_OBS_DISABLED

#ifndef VAOLIB_OBS_DISABLED
TEST(TraceExportTest, NonFiniteDecisionFieldsStayValidJson) {
  const TraceModeGuard guard;
  SetTraceMode(TraceMode::kFlight);
  ClearTrace();
  Decision decision;
  decision.op = "sum_ave";
  decision.phase = "scan";
  decision.lo_after = std::numeric_limits<double>::quiet_NaN();
  decision.hi_after = std::numeric_limits<double>::infinity();
  RecordDecision(decision);
  std::ostringstream os;
  ExportChromeTrace(os);
  // Chaos runs push NaN/Inf bounds through the tracer; the export must
  // stay parseable (non-finite doubles become quoted tokens).
  const auto parsed = json::Parse(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << os.str();
  EXPECT_NE(os.str().find("\"nan\""), std::string::npos);
  EXPECT_NE(os.str().find("\"inf\""), std::string::npos);
}
#endif  // VAOLIB_OBS_DISABLED

#ifndef VAOLIB_OBS_DISABLED
TEST(CalibrationTest, SamplesAccumulateAndNonFiniteDropsWhole) {
  SetEnabled(true);
  const CalibrationSnapshot before = CalibrationSnapshot::Capture();

  RecordEstimatorSample(SolverKind::kOde, /*est_cost=*/10.0, /*est_lo=*/0.0,
                        /*est_hi=*/2.0, /*actual_cost=*/12.0,
                        /*actual_lo=*/0.5, /*actual_hi=*/1.5);
  RecordEstimatorSample(SolverKind::kOde, 10.0, 0.0, 2.0, 9.0, -0.5, 2.5);
  // Any non-finite error drops the sample whole, so the shared sample
  // count stays a valid denominator for all six sums.
  RecordEstimatorSample(SolverKind::kOde, 10.0, 0.0, 2.0,
                        std::numeric_limits<double>::quiet_NaN(), 0.0, 2.0);
  RecordEstimatorSample(SolverKind::kOde,
                        -std::numeric_limits<double>::infinity(), 0.0, 2.0,
                        11.0, 0.0, 2.0);

  const CalibrationSnapshot::Kind delta =
      CalibrationSnapshot::Capture()
          .DeltaSince(before)
          .kinds[static_cast<int>(SolverKind::kOde)];
  EXPECT_EQ(delta.samples, 2u);
  EXPECT_DOUBLE_EQ(delta.cost_err_sum, 2.0 + -1.0);
  EXPECT_DOUBLE_EQ(delta.cost_abs_err_sum, 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(delta.lo_err_sum, 0.5 + -0.5);
  EXPECT_DOUBLE_EQ(delta.lo_abs_err_sum, 0.5 + 0.5);
  EXPECT_DOUBLE_EQ(delta.hi_err_sum, -0.5 + 0.5);
  EXPECT_DOUBLE_EQ(delta.hi_abs_err_sum, 0.5 + 0.5);

  const CalibrationSnapshot::Kind untouched =
      CalibrationSnapshot::Capture()
          .DeltaSince(before)
          .kinds[static_cast<int>(SolverKind::kPde2d)];
  EXPECT_EQ(untouched.samples, 0u);
}
#endif  // VAOLIB_OBS_DISABLED

#ifndef VAOLIB_OBS_DISABLED
TEST(FlightRecorderTest, ArmedRequiresModeAndDir) {
  const TraceModeGuard guard;
  FlightRecorder& recorder = FlightRecorder::Global();
  SetTraceMode(TraceMode::kOff);
  recorder.SetDumpDir(FreshDumpDir("trace_test_armed"));
  EXPECT_FALSE(recorder.Armed());
  EXPECT_FALSE(recorder.Dump("nope").has_value());

  SetTraceMode(TraceMode::kFlight);
  EXPECT_TRUE(recorder.Armed());
  recorder.SetDumpDir("");
  EXPECT_FALSE(recorder.Armed());
}
#endif  // VAOLIB_OBS_DISABLED

#ifndef VAOLIB_OBS_DISABLED
TEST(FlightRecorderTest, DumpWritesSanitizedSequencedParseableFile) {
  const TraceModeGuard guard;
  SetTraceMode(TraceMode::kFlight);
  ClearTrace();
  RecordInstant("test", "before-dump", TraceDetail::kCoarse);

  const std::string dir = FreshDumpDir("trace_test_dump");
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetDumpDir(dir);
  const auto path = recorder.Dump("bad reason/../:x");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(fs::path(*path).parent_path().string(), dir);
  // Sanitized: nothing outside [A-Za-z0-9_-] survives into the name.
  EXPECT_EQ(fs::path(*path).filename().string().find('/'),
            std::string::npos);
  EXPECT_NE(path->find("bad_reason"), std::string::npos);

  const auto parsed = ParseFile(*path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto events = json::Child(*parsed.value(), "traceEvents");
  ASSERT_TRUE(events.ok());
  EXPECT_GE(events.value()->array.size(), 1u);

  // Sequence numbers advance per dump even for repeated reasons.
  const auto second = recorder.Dump("again");
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*path, *second);
}
#endif  // VAOLIB_OBS_DISABLED

#ifndef VAOLIB_OBS_DISABLED
TEST(FlightRecorderTest, PredicateStallTriggersDump) {
  const TraceModeGuard guard;
  SetTraceMode(TraceMode::kFlight);
  ClearTrace();
  const std::string dir = FreshDumpDir("trace_test_stall");
  FlightRecorder::Global().SetDumpDir(dir);
  const std::uint64_t dumps_before = FlightRecorder::Global().dump_count();

  // A synthetic object that never shrinks: the stall guard must trip and
  // the failure path must leave a flight dump behind.
  WorkMeter meter;
  vao::SyntheticResultObject::Config config;
  config.shrink = 1.0;
  config.min_width = 0.01;
  config.meter = &meter;
  vao::SyntheticResultObject object(config);
  auto task = operators::SingleObjectDecisionTask::Create(
      &object, "trace_test", [](const Bounds&) { return true; });
  ASSERT_TRUE(task.ok()) << task.status();

  Status status = Status::OK();
  for (int i = 0; i < 64 && status.ok(); ++i) {
    status = task.value()->Step(&meter);
  }
  EXPECT_TRUE(status.Is(StatusCode::kResourceExhausted)) << status;
  EXPECT_GT(FlightRecorder::Global().dump_count(), dumps_before);
  bool found = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().string().find("predicate-stall") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}
#endif  // VAOLIB_OBS_DISABLED

// The acceptance criterion: a failing differential seed produces a flight
// dump whose decision events replay to the same iterate sequence when the
// combo is re-run fresh. Single-threaded so the decision order is total.
#ifndef VAOLIB_OBS_DISABLED
TEST(FlightRecorderTest, DifferentialFailureDumpReplaysDecisions) {
  const TraceModeGuard guard;
  SetTraceMode(TraceMode::kFlight);
  ClearTrace();
  const std::string dir = FreshDumpDir("trace_test_diff");
  FlightRecorder::Global().SetDumpDir(dir);

  vaolib::testing::DifferentialOptions options;
  options.seeds = 2;
  options.thread_counts = {1};
  options.cache_modes = {false};
  options.kinds = {{engine::QueryKind::kMax, 1}};
  options.strategies = {};
  options.scheduler_policies = {};
  options.mutation = vaolib::testing::Mutation::kSwapMinMax;
  options.max_failures = 1;
  options.shrink = false;

  vaolib::testing::DifferentialRunner runner(options);
  const auto summary = runner.RunAll();
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_FALSE(summary.value().failures.empty())
      << "kSwapMinMax must make MAX queries fail differentially";
  const vaolib::testing::DifferentialFailure& failure =
      summary.value().failures.front();

  // Find the dump RecordFailure wrote for this seed.
  std::string dump_path;
  const std::string needle = "seed-" + std::to_string(failure.seed);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().string().find(needle) != std::string::npos) {
      dump_path = entry.path().string();
    }
  }
  ASSERT_FALSE(dump_path.empty()) << "no flight dump for " << needle;

  const auto parsed = ParseFile(dump_path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const std::vector<DecisionKey> dumped =
      DecisionsFromJson(*parsed.value());
  ASSERT_FALSE(dumped.empty());

  // Fresh replay of the identical combo must produce the identical
  // decision sequence (the determinism contract of the tracer).
  ClearTrace();
  const auto replay = runner.RunOne(failure.seed, failure.variant,
                                    failure.rows, failure.threads,
                                    failure.cache);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay.value().has_value());  // still failing, same combo
  const std::vector<DecisionKey> fresh =
      DecisionsFromSnapshot(SnapshotTrace());
  EXPECT_EQ(dumped, fresh);
}
#endif  // VAOLIB_OBS_DISABLED

}  // namespace
}  // namespace vaolib::obs
