// Unit tests for the TOP-K VAO extension and the ScoreHeap index.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "operators/score_heap.h"
#include "operators/sum_ave.h"
#include "operators/top_k.h"
#include "vao/synthetic_result_object.h"

namespace vaolib::operators {
namespace {

using vao::SyntheticResultObject;

SyntheticResultObject MakeObject(double true_value, double half_width = 10.0,
                                 double skew = 0.5,
                                 WorkMeter* meter = nullptr) {
  SyntheticResultObject::Config config;
  config.true_value = true_value;
  config.initial_half_width = half_width;
  config.skew = skew;
  config.meter = meter;
  return SyntheticResultObject(config);
}

TEST(TopKVaoTest, KOneMatchesMaxSemantics) {
  std::vector<SyntheticResultObject> objects;
  objects.push_back(MakeObject(95.0));
  objects.push_back(MakeObject(105.0));
  objects.push_back(MakeObject(88.0));
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);

  TopKOptions options;
  options.k = 1;
  options.epsilon = 0.05;
  const TopKVao vao(options);
  const auto outcome = vao.Evaluate(ptrs);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->winners.size(), 1u);
  EXPECT_EQ(outcome->winners[0], 1u);
  EXPECT_LE(outcome->winner_bounds[0].Width(), 0.05);
  EXPECT_TRUE(outcome->winner_bounds[0].Contains(105.0));
}

TEST(TopKVaoTest, FindsCorrectSetOnRandomInputs) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(3, 14));
    const auto k =
        static_cast<std::size_t>(rng.UniformInt(1, n));
    std::vector<std::unique_ptr<SyntheticResultObject>> objects;
    std::vector<double> values;
    std::set<double> used;
    for (int i = 0; i < n; ++i) {
      // Distinct values spaced > 1 so ties cannot occur at minWidth scale.
      double v;
      do {
        v = 50.0 + 2.0 * static_cast<double>(rng.UniformInt(0, 60));
      } while (used.contains(v));
      used.insert(v);
      values.push_back(v);
      SyntheticResultObject::Config config;
      config.true_value = v;
      config.initial_half_width = rng.Uniform(3.0, 35.0);
      config.skew = rng.Uniform(0.1, 0.9);
      objects.push_back(std::make_unique<SyntheticResultObject>(config));
    }
    std::vector<vao::ResultObject*> ptrs;
    for (auto& o : objects) ptrs.push_back(o.get());

    TopKOptions options;
    options.k = k;
    options.epsilon = 0.05;
    const TopKVao vao(options);
    const auto outcome = vao.Evaluate(ptrs);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    ASSERT_EQ(outcome->winners.size(), k);

    // Expected set: indices of the k largest values.
    std::vector<std::size_t> expected(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) expected[i] = i;
    std::sort(expected.begin(), expected.end(),
              [&](std::size_t a, std::size_t b) {
                return values[a] > values[b];
              });
    expected.resize(k);

    std::set<std::size_t> got(outcome->winners.begin(),
                              outcome->winners.end());
    std::set<std::size_t> want(expected.begin(), expected.end());
    EXPECT_EQ(got, want) << "trial " << trial << " n " << n << " k " << k;

    // Winners must be ordered by descending value and each within epsilon.
    for (std::size_t i = 0; i + 1 < outcome->winners.size(); ++i) {
      EXPECT_GE(values[outcome->winners[i]], values[outcome->winners[i + 1]]);
    }
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_LE(outcome->winner_bounds[i].Width(), 0.05 + 1e-12);
      EXPECT_TRUE(
          outcome->winner_bounds[i].Contains(values[outcome->winners[i]]));
    }
  }
}

TEST(TopKVaoTest, BottomKViaMinKind) {
  std::vector<SyntheticResultObject> objects;
  objects.push_back(MakeObject(95.0));
  objects.push_back(MakeObject(105.0));
  objects.push_back(MakeObject(88.0));
  objects.push_back(MakeObject(120.0));
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);

  TopKOptions options;
  options.k = 2;
  options.kind = ExtremeKind::kMin;
  options.epsilon = 0.05;
  const TopKVao vao(options);
  const auto outcome = vao.Evaluate(ptrs);
  ASSERT_TRUE(outcome.ok());
  const std::set<std::size_t> got(outcome->winners.begin(),
                                  outcome->winners.end());
  EXPECT_EQ(got, (std::set<std::size_t>{0, 2}));
  // Ordered most extreme (smallest) first.
  EXPECT_EQ(outcome->winners[0], 2u);
}

TEST(TopKVaoTest, KEqualsNReturnsEverythingRefined) {
  std::vector<SyntheticResultObject> objects;
  objects.push_back(MakeObject(95.0));
  objects.push_back(MakeObject(96.0));
  std::vector<vao::ResultObject*> ptrs{&objects[0], &objects[1]};
  TopKOptions options;
  options.k = 2;
  options.epsilon = 0.05;
  const TopKVao vao(options);
  const auto outcome = vao.Evaluate(ptrs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->winners.size(), 2u);
  for (const auto& b : outcome->winner_bounds) {
    EXPECT_LE(b.Width(), 0.05);
  }
}

TEST(TopKVaoTest, TieAtBoundaryReported) {
  std::vector<SyntheticResultObject> objects;
  objects.push_back(MakeObject(110.0));
  objects.push_back(MakeObject(100.0));
  objects.push_back(MakeObject(100.0));  // ties with index 1 at the boundary
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);
  TopKOptions options;
  options.k = 2;
  options.epsilon = 0.05;
  const TopKVao vao(options);
  const auto outcome = vao.Evaluate(ptrs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->tie);
  ASSERT_EQ(outcome->winners.size(), 2u);
  EXPECT_EQ(outcome->winners[0], 0u);  // the clear leader is always included
}

TEST(TopKVaoTest, DominatedObjectsNeverIterated) {
  WorkMeter meter;
  std::vector<SyntheticResultObject> objects;
  objects.push_back(MakeObject(110.0, 2.0, 0.5, &meter));  // [108,112]
  objects.push_back(MakeObject(100.0, 2.0, 0.5, &meter));  // [98,102]
  objects.push_back(MakeObject(10.0, 2.0, 0.5, &meter));   // [8,12]
  std::vector<vao::ResultObject*> ptrs;
  for (auto& o : objects) ptrs.push_back(&o);
  TopKOptions options;
  options.k = 2;
  options.epsilon = 0.05;
  const TopKVao vao(options);
  ASSERT_TRUE(vao.Evaluate(ptrs).ok());
  EXPECT_EQ(objects[2].iterations(), 0);
}

TEST(TopKVaoTest, InputValidation) {
  auto object = MakeObject(1.0);
  std::vector<vao::ResultObject*> ptrs{&object};
  TopKOptions options;
  const TopKVao ok_vao(options);
  EXPECT_FALSE(ok_vao.Evaluate({}).ok());

  options.k = 2;  // > n
  EXPECT_FALSE(TopKVao(options).Evaluate(ptrs).ok());
  options.k = 0;
  EXPECT_FALSE(TopKVao(options).Evaluate(ptrs).ok());
  options.k = 1;
  options.epsilon = 1e-6;  // below minWidth
  EXPECT_FALSE(TopKVao(options).Evaluate(ptrs).ok());
  std::vector<vao::ResultObject*> with_null{nullptr};
  options.epsilon = 0.05;
  EXPECT_FALSE(TopKVao(options).Evaluate(with_null).ok());
}

// ---------------------------------------------------------------------------
// ScoreHeap

TEST(ScoreHeapTest, PopsInScoreOrder) {
  ScoreHeap heap;
  heap.Reset(4);
  heap.Update(0, 1.0);
  heap.Update(1, 5.0);
  heap.Update(2, 3.0);
  std::size_t index;
  double score;
  ASSERT_TRUE(heap.PopBest(&index, &score));
  EXPECT_EQ(index, 1u);
  EXPECT_DOUBLE_EQ(score, 5.0);
  ASSERT_TRUE(heap.PopBest(&index, &score));
  EXPECT_EQ(index, 2u);
  ASSERT_TRUE(heap.PopBest(&index, &score));
  EXPECT_EQ(index, 0u);
  EXPECT_FALSE(heap.PopBest(&index, &score));
}

TEST(ScoreHeapTest, UpdateInvalidatesOldEntries) {
  ScoreHeap heap;
  heap.Reset(2);
  heap.Update(0, 10.0);
  heap.Update(0, 1.0);  // supersedes the 10.0 entry
  heap.Update(1, 5.0);
  std::size_t index;
  double score;
  ASSERT_TRUE(heap.PopBest(&index, &score));
  EXPECT_EQ(index, 1u);
  ASSERT_TRUE(heap.PopBest(&index, &score));
  EXPECT_EQ(index, 0u);
  EXPECT_DOUBLE_EQ(score, 1.0);
}

TEST(ScoreHeapTest, RemoveSuppressesEntries) {
  ScoreHeap heap;
  heap.Reset(2);
  heap.Update(0, 10.0);
  heap.Update(1, 5.0);
  heap.Remove(0);
  std::size_t index;
  double score;
  ASSERT_TRUE(heap.PopBest(&index, &score));
  EXPECT_EQ(index, 1u);
  EXPECT_FALSE(heap.PopBest(&index, &score));
}

// ---------------------------------------------------------------------------
// Heap-indexed SUM

TEST(HeapIndexedSumTest, MatchesScanGreedyResult) {
  Rng rng(88);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 30));
    std::vector<SyntheticResultObject::Config> configs;
    std::vector<double> weights;
    double truth = 0.0;
    for (int i = 0; i < n; ++i) {
      SyntheticResultObject::Config config;
      config.true_value = rng.Uniform(-20.0, 120.0);
      config.initial_half_width = rng.Uniform(1.0, 20.0);
      config.skew = rng.Uniform(0.1, 0.9);
      configs.push_back(config);
      weights.push_back(rng.Uniform(0.0, 4.0));
      truth += weights.back() * config.true_value;
    }

    auto run = [&](bool use_heap) {
      std::vector<std::unique_ptr<SyntheticResultObject>> objects;
      std::vector<vao::ResultObject*> ptrs;
      for (const auto& config : configs) {
        objects.push_back(std::make_unique<SyntheticResultObject>(config));
        ptrs.push_back(objects.back().get());
      }
      SumAveOptions options;
      options.epsilon = 1.0;
      options.use_heap_index = use_heap;
      const SumAveVao vao(options);
      auto outcome = vao.Evaluate(ptrs, weights);
      EXPECT_TRUE(outcome.ok());
      return std::move(outcome).value();
    };

    const SumOutcome scan = run(false);
    const SumOutcome heap = run(true);
    EXPECT_TRUE(scan.sum_bounds.Contains(truth));
    EXPECT_TRUE(heap.sum_bounds.Contains(truth));
    EXPECT_LE(heap.sum_bounds.Width(), 1.0 + 1e-9);
    // Same greedy policy through a different index: identical iteration
    // counts up to tie-breaking noise.
    const double scan_iters = static_cast<double>(scan.stats.iterations);
    const double heap_iters = static_cast<double>(heap.stats.iterations);
    EXPECT_NEAR(heap_iters, scan_iters, scan_iters * 0.2 + 2.0);
  }
}

TEST(HeapIndexedSumTest, ChooseIterChargeIsLogarithmic) {
  const std::size_t n = 1024;
  std::vector<std::unique_ptr<SyntheticResultObject>> objects;
  std::vector<vao::ResultObject*> ptrs;
  for (std::size_t i = 0; i < n; ++i) {
    SyntheticResultObject::Config config;
    config.true_value = 100.0;
    config.initial_half_width = 4.0;
    objects.push_back(std::make_unique<SyntheticResultObject>(config));
    ptrs.push_back(objects.back().get());
  }
  const std::vector<double> weights(n, 1.0);

  WorkMeter scan_meter, heap_meter;
  {
    SumAveOptions options;
    options.epsilon = static_cast<double>(n) * 1.0;
    options.meter = &scan_meter;
    ASSERT_TRUE(SumAveVao(options).Evaluate(ptrs, weights).ok());
  }
  // Fresh objects for the heap arm.
  std::vector<std::unique_ptr<SyntheticResultObject>> objects2;
  std::vector<vao::ResultObject*> ptrs2;
  for (std::size_t i = 0; i < n; ++i) {
    SyntheticResultObject::Config config;
    config.true_value = 100.0;
    config.initial_half_width = 4.0;
    objects2.push_back(std::make_unique<SyntheticResultObject>(config));
    ptrs2.push_back(objects2.back().get());
  }
  {
    SumAveOptions options;
    options.epsilon = static_cast<double>(n) * 1.0;
    options.meter = &heap_meter;
    options.use_heap_index = true;
    ASSERT_TRUE(SumAveVao(options).Evaluate(ptrs2, weights).ok());
  }
  EXPECT_LT(heap_meter.Count(WorkKind::kChooseIter),
            scan_meter.Count(WorkKind::kChooseIter) / 4);
}

}  // namespace
}  // namespace vaolib::operators
