// Tests for the standing-query serving layer: the length-framed wire
// codec (split/merged/truncated/oversized streams, fuzz round-trips of
// payloads full of protocol-delimiter bytes), the request protocol,
// multi-tenant admission (quota ERR vs capacity SHED, withdraw returning
// quota, isolation under concurrent registers), the dispatcher's result
// fan-out and overload shedding, and full client sessions end to end.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/sql_parser.h"
#include "finance/bond_model.h"
#include "obs/execution_report.h"
#include "server/admission.h"
#include "server/dispatcher.h"
#include "server/frame.h"
#include "server/protocol.h"
#include "server/scenario.h"
#include "server/server.h"
#include "vao/answer.h"
#include "workload/portfolio_gen.h"

namespace vaolib::server {
namespace {

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameTest, EncodesLengthThenPayload) {
  EXPECT_EQ(EncodeFrame("HELLO t1"), "8\nHELLO t1");
  EXPECT_EQ(EncodeFrame(""), "0\n");
}

TEST(FrameTest, DecodesMergedFrames) {
  FrameDecoder decoder;
  ASSERT_TRUE(
      decoder.Feed(EncodeFrame("one") + EncodeFrame("") + EncodeFrame("two"))
          .ok());
  EXPECT_EQ(decoder.Next(), "one");
  EXPECT_EQ(decoder.Next(), "");
  EXPECT_EQ(decoder.Next(), "two");
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameTest, DecodesByteSplitFrames) {
  // A TCP read can split a frame anywhere, including inside the header.
  const std::string wire = EncodeFrame("first payload") + EncodeFrame("2nd");
  FrameDecoder decoder;
  for (const char byte : wire) {
    ASSERT_TRUE(decoder.Feed(std::string_view(&byte, 1)).ok());
  }
  EXPECT_EQ(decoder.Next(), "first payload");
  EXPECT_EQ(decoder.Next(), "2nd");
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameTest, TruncatedFrameStaysPendingWithoutError) {
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed("10\nhalf").ok());
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_FALSE(decoder.broken());
  EXPECT_GT(decoder.buffered_bytes(), 0u);
  ASSERT_TRUE(decoder.Feed("-done").ok());  // 4 + 5 = 9... still short
  EXPECT_FALSE(decoder.Next().has_value());
  ASSERT_TRUE(decoder.Feed("!").ok());
  EXPECT_EQ(decoder.Next(), "half-done!");
}

TEST(FrameTest, PayloadMayContainDelimiterBytes) {
  // '\n' and digits are payload like any other byte: length-framing keeps
  // them opaque. "7\n3\nTICK" must decode as the 7-byte payload "3\nTICK".
  const std::string payload = "3\nTICK";
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(EncodeFrame(payload)).ok());
  EXPECT_EQ(decoder.Next(), payload);
}

TEST(FrameTest, OversizedFrameIsRejectedAndSticky) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const Status fed = decoder.Feed("1000000\n");
  EXPECT_EQ(fed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(decoder.broken());
  EXPECT_EQ(decoder.Feed("5\nhello").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameTest, MalformedHeaderIsRejected) {
  FrameDecoder decoder;
  const Status fed = decoder.Feed("nope\n");
  EXPECT_EQ(fed.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoder.broken());
}

TEST(FrameTest, FramesDecodedBeforeCorruptionAreStillDelivered) {
  FrameDecoder decoder;
  const Status fed = decoder.Feed(EncodeFrame("good") + "x\n");
  EXPECT_FALSE(fed.ok());
  EXPECT_EQ(decoder.Next(), "good");
}

TEST(FrameTest, FuzzRoundTripArbitraryPayloadsAndSplits) {
  Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    // Payloads biased toward the dangerous alphabet: digits and newlines.
    std::vector<std::string> payloads(
        static_cast<std::size_t>(rng.UniformInt(1, 5)));
    std::string wire;
    for (std::string& payload : payloads) {
      const std::size_t len = static_cast<std::size_t>(
          rng.UniformInt(0, 64));
      for (std::size_t i = 0; i < len; ++i) {
        const char alphabet[] = "0123456789\n\n \tABCxyz";
        payload += alphabet[rng.UniformInt(0, sizeof(alphabet) - 2)];
      }
      wire += EncodeFrame(payload);
    }
    FrameDecoder decoder;
    std::size_t offset = 0;
    while (offset < wire.size()) {
      const std::size_t chunk = static_cast<std::size_t>(
          rng.UniformInt(1, 7));
      const std::string_view slice =
          std::string_view(wire).substr(offset, chunk);
      ASSERT_TRUE(decoder.Feed(slice).ok());
      offset += slice.size();
    }
    for (const std::string& payload : payloads) {
      const auto decoded = decoder.Next();
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, payload);
    }
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, ParsesEveryVerb) {
  auto hello = ParseRequest("HELLO desk1 reports");
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->verb, Verb::kHello);
  EXPECT_EQ(hello->tenant, "desk1");
  EXPECT_TRUE(hello->want_reports);

  auto reg = ParseRequest("REGISTER q1 SELECT * FROM bd WHERE f(x) > 1");
  ASSERT_TRUE(reg.ok());
  EXPECT_EQ(reg->verb, Verb::kRegister);
  EXPECT_EQ(reg->query_id, "q1");
  EXPECT_EQ(reg->sql, "SELECT * FROM bd WHERE f(x) > 1");

  auto withdraw = ParseRequest("WITHDRAW q1");
  ASSERT_TRUE(withdraw.ok());
  EXPECT_EQ(withdraw->verb, Verb::kWithdraw);
  EXPECT_EQ(withdraw->query_id, "q1");

  auto tick = ParseRequest("TICK 0.045 -1.5");
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(tick->verb, Verb::kTick);
  EXPECT_EQ(tick->tick_values, (std::vector<double>{0.045, -1.5}));

  EXPECT_EQ(ParseRequest("STATS")->verb, Verb::kStats);
  EXPECT_EQ(ParseRequest("BYE")->verb, Verb::kBye);
}

TEST(ProtocolTest, ErrorsNameTheOffendingToken) {
  const auto unknown = ParseRequest("PING");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("'PING'"), std::string::npos);

  const auto bad_id = ParseRequest("REGISTER bad!id SELECT * FROM bd");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_NE(bad_id.status().message().find("'bad!id'"), std::string::npos);

  const auto bad_value = ParseRequest("TICK 0.045 banana");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("'banana'"),
            std::string::npos);

  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("TICK").ok());
  EXPECT_FALSE(ParseRequest("HELLO bad tenant extra").ok());
}

TEST(ProtocolTest, QueryTextWithNewlinesSurvivesTheWire) {
  // Fuzz-style round trip: SQL containing the protocol's own delimiter
  // bytes ('\n' headers, digits) framed, decoded, parsed, and re-parsed
  // into the same query. The SQL grammar treats '\n' as whitespace, so
  // newline-formatted registrations are legal and must not desync framing.
  workload::PortfolioSpec spec;
  spec.count = 4;
  const auto bonds = workload::GeneratePortfolio(7, spec);
  const finance::BondPricingFunction model(bonds,
                                           finance::BondModelConfig{});
  engine::FunctionRegistry registry;
  ASSERT_TRUE(registry.Register(&model).ok());
  const engine::Schema stream({{"rate", engine::ColumnType::kDouble}});
  const engine::Schema relation(
      {{"bond_index", engine::ColumnType::kDouble}});

  const std::string sql =
      "SELECT\nMAX(bond_model(rate,\n bond_index))\nFROM bd\nPRECISION "
      "0.25";
  const std::string payload = "REGISTER q9\n7 " + sql;

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(EncodeFrame(payload)).ok());
  const auto decoded = decoder.Next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);

  // ParseRequest tokenizes on spaces only, so the '\n' smuggled into the
  // id position makes "q9\n7" one (invalid) token -- a clean ERR, never a
  // silently resynchronized stream.
  EXPECT_FALSE(ParseRequest(*decoded).ok());

  // A clean registration with the newline-formatted SQL round-trips.
  const auto request = ParseRequest("REGISTER q9 " + sql);
  ASSERT_TRUE(request.ok());
  const auto parsed =
      engine::ParseQuery(request->sql, registry, stream, relation);
  ASSERT_TRUE(parsed.ok());
  const auto reparsed = engine::ParseQuery(
      engine::FormatQuery(*parsed, "bd"), registry, stream, relation);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->kind, engine::QueryKind::kMax);
  EXPECT_EQ(reparsed->epsilon, 0.25);
}

TEST(ProtocolTest, FormatResultRendersBoundsAndRows) {
  engine::TickResult result;
  result.kind = engine::QueryKind::kSelect;
  result.passing_rows = {1, 4, 7};
  result.converged = false;
  result.work_units = 42;
  const std::string line = FormatResult("q3", 9, result);
  EXPECT_NE(line.find("RESULT q3 seq=9 kind=select converged=0"),
            std::string::npos);
  EXPECT_NE(line.find("rows=1,4,7"), std::string::npos);
  EXPECT_NE(line.find("work=42"), std::string::npos);
}

TEST(ProtocolTest, ExactResultFramesAreByteIdenticalToLegacyLayout) {
  // Pre-approx clients parse RESULT frames positionally; an exact answer
  // must render the exact same bytes as before the Answer API landed.
  engine::TickResult result;
  result.kind = engine::QueryKind::kSum;
  result.aggregate_bounds = vao::Answer(Bounds(12.5, 13.5));
  result.converged = true;
  result.work_units = 17;
  const std::string line = FormatResult("agg", 3, result);
  EXPECT_EQ(line,
            "RESULT agg seq=3 kind=sum converged=1 lo=12.5 hi=13.5 work=17");
  EXPECT_EQ(line.find("mode="), std::string::npos);
}

TEST(ProtocolTest, ApproxResultCarriesModeTokensBeforeWork) {
  engine::TickResult result;
  result.kind = engine::QueryKind::kSum;
  result.aggregate_bounds = vao::Answer::Approximate(
      Bounds(90.0, 110.0), 0.95, 40, 400, 4.0, 16.0);
  result.converged = true;
  result.work_units = 99;
  const std::string line = FormatResult("agg", 5, result);
  EXPECT_NE(line.find("mode=approx conf=0.95 samples=40/400 dwidth=4 "
                      "swidth=16"),
            std::string::npos)
      << line;
  // Appended tokens stay strictly before work= so clients that split on
  // " work=" keep working.
  EXPECT_LT(line.find("mode=approx"), line.find(" work=")) << line;
}

// ---------------------------------------------------------------------------
// Admission

TEST(AdmissionTest, QueryQuotaRejectsCleanly) {
  AdmissionConfig config;
  config.default_quota.max_queries = 2;
  AdmissionController admission(config);

  EXPECT_EQ(admission.AdmitQuery("t1", 10).outcome,
            AdmissionDecision::Outcome::kAdmitted);
  EXPECT_EQ(admission.AdmitQuery("t1", 10).outcome,
            AdmissionDecision::Outcome::kAdmitted);
  const AdmissionDecision third = admission.AdmitQuery("t1", 10);
  EXPECT_EQ(third.outcome, AdmissionDecision::Outcome::kRejected);
  EXPECT_EQ(third.reason.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.reason.message().find("t1"), std::string::npos);
  EXPECT_EQ(admission.UsageFor("t1").rejected_registrations, 1u);

  // Another tenant is unaffected (isolation).
  EXPECT_EQ(admission.AdmitQuery("t2", 10).outcome,
            AdmissionDecision::Outcome::kAdmitted);
}

TEST(AdmissionTest, WithdrawReturnsQuota) {
  AdmissionConfig config;
  config.default_quota.max_queries = 1;
  AdmissionController admission(config);
  ASSERT_EQ(admission.AdmitQuery("t1", 8).outcome,
            AdmissionDecision::Outcome::kAdmitted);
  ASSERT_EQ(admission.AdmitQuery("t1", 8).outcome,
            AdmissionDecision::Outcome::kRejected);
  admission.ReleaseQuery("t1", 8, /*shed=*/false);
  EXPECT_EQ(admission.UsageFor("t1").queries, 0u);
  EXPECT_EQ(admission.UsageFor("t1").objects, 0u);
  EXPECT_EQ(admission.AdmitQuery("t1", 8).outcome,
            AdmissionDecision::Outcome::kAdmitted);
}

TEST(AdmissionTest, ObjectQuotaCountsRelationRows) {
  AdmissionConfig config;
  config.default_quota.max_queries = 100;
  config.default_quota.max_objects = 100;
  AdmissionController admission(config);
  EXPECT_EQ(admission.AdmitQuery("t1", 60).outcome,
            AdmissionDecision::Outcome::kAdmitted);
  const AdmissionDecision over = admission.AdmitQuery("t1", 60);
  EXPECT_EQ(over.outcome, AdmissionDecision::Outcome::kRejected);
  EXPECT_NE(over.reason.message().find("object"), std::string::npos);
}

TEST(AdmissionTest, ServerCapacityShedsWithRetryAfter) {
  AdmissionConfig config;
  config.default_quota.max_queries = 100;
  config.max_total_queries = 2;
  config.retry_after_ticks = 5;
  AdmissionController admission(config);
  ASSERT_EQ(admission.AdmitQuery("t1", 1).outcome,
            AdmissionDecision::Outcome::kAdmitted);
  ASSERT_EQ(admission.AdmitQuery("t2", 1).outcome,
            AdmissionDecision::Outcome::kAdmitted);
  const AdmissionDecision shed = admission.AdmitQuery("t3", 1);
  EXPECT_EQ(shed.outcome, AdmissionDecision::Outcome::kShed);
  EXPECT_EQ(shed.retry_after_ticks, 5u);
}

TEST(AdmissionTest, TenantIsolationUnderConcurrentRegisters) {
  AdmissionConfig config;
  config.default_quota.max_queries = 8;
  config.max_total_queries = 1u << 20;
  AdmissionController admission(config);

  constexpr int kTenants = 8;
  constexpr int kAttempts = 32;
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&admission, t] {
      const std::string tenant = "tenant" + std::to_string(t);
      for (int i = 0; i < kAttempts; ++i) {
        admission.AdmitQuery(tenant, 4);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every tenant lands exactly at its own quota -- 8 admitted, 24
  // rejected -- no matter how the registers interleaved.
  for (int t = 0; t < kTenants; ++t) {
    const TenantUsage usage =
        admission.UsageFor("tenant" + std::to_string(t));
    EXPECT_EQ(usage.queries, 8u);
    EXPECT_EQ(usage.objects, 32u);
    EXPECT_EQ(usage.rejected_registrations,
              static_cast<std::uint64_t>(kAttempts - 8));
  }
  EXPECT_EQ(admission.total_queries(),
            static_cast<std::size_t>(kTenants * 8));
}

TEST(AdmissionTest, SchedulesMapQuotasOntoSchedulerParameters) {
  AdmissionConfig config;
  AdmissionController admission(config);
  TenantQuota reserved;
  reserved.work_share = 2.0;
  reserved.reserve_units = 1000;
  admission.SetQuota("vip", reserved);

  ASSERT_EQ(admission.AdmitQuery("vip", 1).outcome,
            AdmissionDecision::Outcome::kAdmitted);
  ASSERT_EQ(admission.AdmitQuery("vip", 1).outcome,
            AdmissionDecision::Outcome::kAdmitted);

  const engine::QuerySchedule schedule =
      admission.ScheduleFor("vip", /*tick_budget=*/50000);
  EXPECT_DOUBLE_EQ(schedule.priority, 1.0);  // share 2.0 over 2 queries
  EXPECT_EQ(schedule.reserve, 500u);         // reserve split per query
  EXPECT_EQ(schedule.deadline, 50000u);      // EDF: run before best-effort

  const engine::QuerySchedule best_effort =
      admission.ScheduleFor("other", /*tick_budget=*/50000);
  EXPECT_EQ(best_effort.reserve, 0u);
  EXPECT_EQ(best_effort.deadline, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end sessions (in-process transport)

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildWorkload(); }

  void BuildWorkload() {
    workload::PortfolioSpec spec;
    spec.count = 6;
    bonds_ = workload::GeneratePortfolio(4242, spec);
    function_ = std::make_unique<finance::BondPricingFunction>(
        bonds_, finance::BondModelConfig{});
    relation_ = std::make_unique<engine::Relation>(engine::Schema(
        {{"bond_index", engine::ColumnType::kDouble},
         {"position", engine::ColumnType::kDouble}}));
    for (std::size_t i = 0; i < bonds_.size(); ++i) {
      ASSERT_TRUE(
          relation_->Append({static_cast<double>(i), 1.0}).ok());
    }
    registry_ = std::make_unique<engine::FunctionRegistry>();
    ASSERT_TRUE(registry_->Register(function_.get()).ok());
  }

  std::unique_ptr<StandingQueryServer> MakeServer(ServerConfig config) {
    return std::make_unique<StandingQueryServer>(
        relation_.get(),
        engine::Schema({{"rate", engine::ColumnType::kDouble}}),
        registry_.get(), config);
  }

  // Sends one request payload and returns the session's decoded replies.
  static std::vector<std::string> Send(StandingQueryServer& server,
                                       std::uint64_t session,
                                       const std::string& payload) {
    server.HandleBytes(session, EncodeFrame(payload));
    return Drain(server, session);
  }

  static std::vector<std::string> Drain(StandingQueryServer& server,
                                        std::uint64_t session) {
    FrameDecoder decoder;
    EXPECT_TRUE(decoder.Feed(server.DrainOutput(session)).ok());
    std::vector<std::string> replies;
    while (const auto reply = decoder.Next()) replies.push_back(*reply);
    return replies;
  }

  std::vector<finance::Bond> bonds_;
  std::unique_ptr<finance::BondPricingFunction> function_;
  std::unique_ptr<engine::Relation> relation_;
  std::unique_ptr<engine::FunctionRegistry> registry_;
};

TEST_F(ServerTest, HelloIsRequiredFirst) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t session = server->OpenSession();
  const auto replies = Send(*server, session, "STATS");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].rfind("ERR failed-precondition", 0), 0u)
      << replies[0];
  EXPECT_FALSE(server->ShouldClose(session));

  const auto hello = Send(*server, session, "HELLO desk1");
  ASSERT_EQ(hello.size(), 1u);
  EXPECT_EQ(hello[0], "OK HELLO desk1");

  const auto again = Send(*server, session, "HELLO desk2");
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].rfind("ERR failed-precondition", 0), 0u);
}

TEST_F(ServerTest, ResultsFanOutToEveryOwningSession) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t alice = server->OpenSession();
  const std::uint64_t bob = server->OpenSession();
  ASSERT_EQ(Send(*server, alice, "HELLO alice")[0], "OK HELLO alice");
  ASSERT_EQ(Send(*server, bob, "HELLO bob")[0], "OK HELLO bob");

  ASSERT_EQ(Send(*server, alice,
                 "REGISTER best SELECT MAX(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 0.5")[0],
            "OK REGISTER best");
  ASSERT_EQ(Send(*server, bob,
                 "REGISTER alert SELECT * FROM bd WHERE "
                 "bond_model(rate, bond_index) > 100")[0],
            "OK REGISTER alert");

  // Bob injects the tick; both sessions get THEIR OWN query's result.
  const auto bob_replies = Send(*server, bob, "TICK 0.045");
  ASSERT_EQ(bob_replies.size(), 2u);
  EXPECT_EQ(bob_replies[0].rfind("RESULT alert seq=1 kind=select", 0), 0u)
      << bob_replies[0];
  EXPECT_EQ(bob_replies[1].rfind("OK TICK seq=1 queries=2", 0), 0u)
      << bob_replies[1];

  const auto alice_replies = Drain(*server, alice);
  ASSERT_EQ(alice_replies.size(), 1u);
  EXPECT_EQ(alice_replies[0].rfind("RESULT best seq=1 kind=max", 0), 0u)
      << alice_replies[0];
  EXPECT_NE(alice_replies[0].find("converged=1"), std::string::npos);
}

TEST_F(ServerTest, ReportSubscriptionDeliversParseableReports) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t session = server->OpenSession();
  ASSERT_EQ(Send(*server, session, "HELLO desk1 reports")[0],
            "OK HELLO desk1 reports");
  ASSERT_EQ(Send(*server, session,
                 "REGISTER q1 SELECT MIN(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 0.5")[0],
            "OK REGISTER q1");

  const auto replies = Send(*server, session, "TICK 0.05");
  ASSERT_EQ(replies.size(), 3u);  // RESULT, REPORT, OK TICK
  EXPECT_EQ(replies[0].rfind("RESULT q1", 0), 0u);
  ASSERT_EQ(replies[1].rfind("REPORT q1 seq=1 ", 0), 0u) << replies[1];

  const std::string json = replies[1].substr(replies[1].find('{'));
  const auto report = obs::ExecutionReport::FromJson(json);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->query_kind, "min");
  EXPECT_TRUE(report->scheduled);
  EXPECT_EQ(report->tenant, "desk1");
  EXPECT_TRUE(report->converged);
}

TEST_F(ServerTest, ApproxQueryRoundTripsOverTheWire) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t session = server->OpenSession();
  ASSERT_EQ(Send(*server, session, "HELLO desk1 reports")[0],
            "OK HELLO desk1 reports");
  ASSERT_EQ(Send(*server, session,
                 "REGISTER aq SELECT SUM(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 5 "
                 "APPROX WITH CONFIDENCE 0.95 ERROR 0.05 SEED 3")[0],
            "OK REGISTER aq");

  const auto replies = Send(*server, session, "TICK 0.05");
  ASSERT_EQ(replies.size(), 3u);  // RESULT, REPORT, OK TICK
  EXPECT_EQ(replies[0].rfind("RESULT aq seq=1 kind=sum", 0), 0u)
      << replies[0];
  EXPECT_NE(replies[0].find(" mode=approx conf=0.95 samples="),
            std::string::npos)
      << replies[0];
  EXPECT_LT(replies[0].find("mode=approx"), replies[0].find(" work="))
      << replies[0];

  // The execution report carries the same provenance, machine-readably.
  ASSERT_EQ(replies[1].rfind("REPORT aq seq=1 ", 0), 0u) << replies[1];
  const std::string json = replies[1].substr(replies[1].find('{'));
  const auto report = obs::ExecutionReport::FromJson(json);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->answer_mode, "approximate");
  EXPECT_DOUBLE_EQ(report->answer_confidence, 0.95);
  EXPECT_GT(report->sample_size, 0u);
  EXPECT_EQ(report->sample_population, 6u);

  // A plain exact aggregate registered beside it must keep the legacy
  // frame shape (no mode= token at all).
  ASSERT_EQ(Send(*server, session,
                 "REGISTER xq SELECT SUM(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 5")[0],
            "OK REGISTER xq");
  const auto mixed = Send(*server, session, "TICK 0.05");
  bool saw_exact = false;
  for (const std::string& reply : mixed) {
    if (reply.rfind("RESULT xq ", 0) == 0u) {
      saw_exact = true;
      EXPECT_EQ(reply.find("mode="), std::string::npos) << reply;
    }
  }
  EXPECT_TRUE(saw_exact);
}

TEST_F(ServerTest, WithdrawStopsDeliveriesAndFreesQuota) {
  ServerConfig config;
  config.dispatcher.admission.default_quota.max_queries = 1;
  auto server = MakeServer(config);
  const std::uint64_t session = server->OpenSession();
  ASSERT_EQ(Send(*server, session, "HELLO desk1")[0], "OK HELLO desk1");
  ASSERT_EQ(Send(*server, session,
                 "REGISTER q1 SELECT MAX(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 0.5")[0],
            "OK REGISTER q1");

  // Quota (1) is full: the second register is a clean ERR...
  const auto full = Send(*server, session,
                         "REGISTER q2 SELECT MIN(bond_model(rate, "
                         "bond_index)) FROM bd PRECISION 0.5");
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].rfind("ERR resource-exhausted", 0), 0u) << full[0];

  // ...withdraw frees it...
  ASSERT_EQ(Send(*server, session, "WITHDRAW q1")[0], "OK WITHDRAW q1");
  ASSERT_EQ(Send(*server, session,
                 "REGISTER q2 SELECT MIN(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 0.5")[0],
            "OK REGISTER q2");

  // ...and only q2 answers the tick.
  const auto replies = Send(*server, session, "TICK 0.05");
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].rfind("RESULT q2", 0), 0u);
  EXPECT_EQ(Send(*server, session, "WITHDRAW q1")[0].rfind("ERR not-found",
                                                           0),
            0u);
}

TEST_F(ServerTest, RegisterErrorsAreActionable) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t session = server->OpenSession();
  ASSERT_EQ(Send(*server, session, "HELLO desk1")[0], "OK HELLO desk1");

  const auto bad_sql = Send(
      *server, session, "REGISTER q1 SELECT NONSENSE(rate) FROM bd");
  ASSERT_EQ(bad_sql.size(), 1u);
  EXPECT_EQ(bad_sql[0].rfind("ERR invalid-argument", 0), 0u) << bad_sql[0];
  EXPECT_NE(bad_sql[0].find("NONSENSE"), std::string::npos) << bad_sql[0];
  EXPECT_NE(bad_sql[0].find("offset"), std::string::npos) << bad_sql[0];

  ASSERT_EQ(Send(*server, session,
                 "REGISTER q1 SELECT MAX(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 0.5")[0],
            "OK REGISTER q1");
  const auto duplicate = Send(
      *server, session,
      "REGISTER q1 SELECT MIN(bond_model(rate, bond_index)) FROM bd");
  EXPECT_EQ(duplicate[0].rfind("ERR already-exists", 0), 0u)
      << duplicate[0];
}

TEST_F(ServerTest, OverloadShedsBestEffortButNeverReservedTenants) {
  ServerConfig config;
  // A budget far too small for anything to converge, and instant (1-miss)
  // eviction, so a single tick sheds every best-effort query.
  config.dispatcher.tick_budget = 1;
  config.dispatcher.shed_after_misses = 1;
  auto server = MakeServer(config);

  TenantQuota vip;
  vip.reserve_units = 1u << 30;  // effectively unlimited headroom
  server->dispatcher().admission().SetQuota("vip", vip);

  const std::uint64_t vip_session = server->OpenSession();
  const std::uint64_t housemoney = server->OpenSession();
  ASSERT_EQ(Send(*server, vip_session, "HELLO vip")[0], "OK HELLO vip");
  ASSERT_EQ(Send(*server, housemoney, "HELLO besteffort")[0],
            "OK HELLO besteffort");
  ASSERT_EQ(Send(*server, vip_session,
                 "REGISTER v SELECT MAX(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 0.5")[0],
            "OK REGISTER v");
  ASSERT_EQ(Send(*server, housemoney,
                 "REGISTER b SELECT MIN(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 0.5")[0],
            "OK REGISTER b");

  const auto tick = Send(*server, vip_session, "TICK 0.05");
  // The vip session sent the tick: RESULT v + OK TICK.
  ASSERT_GE(tick.size(), 2u);
  EXPECT_EQ(tick[0].rfind("RESULT v", 0), 0u) << tick[0];

  const auto best_effort_replies = Drain(*server, housemoney);
  ASSERT_EQ(best_effort_replies.size(), 2u);
  EXPECT_EQ(best_effort_replies[0].rfind("RESULT b", 0), 0u);
  EXPECT_NE(best_effort_replies[0].find("converged=0"), std::string::npos)
      << best_effort_replies[0];
  EXPECT_EQ(best_effort_replies[1].rfind("SHED b RETRY-AFTER", 0), 0u)
      << best_effort_replies[1];

  // The shed query is gone; the reserved tenant's stands.
  EXPECT_EQ(server->dispatcher().query_count(), 1u);
  EXPECT_EQ(
      server->dispatcher().admission().UsageFor("besteffort").shed_queries,
      1u);
  EXPECT_EQ(server->dispatcher().admission().UsageFor("vip").shed_queries,
            0u);
}

TEST_F(ServerTest, ByeWithdrawsEverythingAndCloses) {
  ServerConfig config;
  config.dispatcher.admission.default_quota.max_queries = 1;
  auto server = MakeServer(config);
  const std::uint64_t session = server->OpenSession();
  ASSERT_EQ(Send(*server, session, "HELLO desk1")[0], "OK HELLO desk1");
  ASSERT_EQ(Send(*server, session,
                 "REGISTER q1 SELECT MAX(bond_model(rate, bond_index)) "
                 "FROM bd PRECISION 0.5")[0],
            "OK REGISTER q1");
  const auto bye = Send(*server, session, "BYE");
  ASSERT_EQ(bye.size(), 1u);
  EXPECT_EQ(bye[0], "OK BYE");
  EXPECT_TRUE(server->ShouldClose(session));
  server->CloseSession(session);
  EXPECT_EQ(server->dispatcher().query_count(), 0u);
  EXPECT_EQ(server->dispatcher().admission().UsageFor("desk1").queries, 0u);
  EXPECT_EQ(server->session_count(), 0u);
}

TEST_F(ServerTest, BrokenFramingGetsOneErrThenCloses) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t session = server->OpenSession();
  server->HandleBytes(session, "this is not a frame");
  const auto replies = Drain(*server, session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].rfind("ERR invalid-argument", 0), 0u) << replies[0];
  EXPECT_TRUE(server->ShouldClose(session));
}

TEST_F(ServerTest, TickArityIsValidated) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t session = server->OpenSession();
  ASSERT_EQ(Send(*server, session, "HELLO desk1")[0], "OK HELLO desk1");
  const auto replies = Send(*server, session, "TICK 0.05 0.06");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].rfind("ERR invalid-argument", 0), 0u);
  EXPECT_NE(replies[0].find("stream schema"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scenario files

TEST(ScenarioTest, ParsesAndFormatsRoundTrip) {
  const std::string text =
      "# tick storm\n"
      "SESSION vip tenant-vip reports\n"
      "SESSION noisy tenant-noisy\n"
      "SEND vip REGISTER q1 SELECT MAX(bond_model(rate, bond_index)) FROM "
      "bd\n"
      "TICKS vip 100 0.03 0.0001\n"
      "CLOSE noisy\n";
  const auto steps = ParseScenario(text);
  ASSERT_TRUE(steps.ok()) << steps.status().message();
  ASSERT_EQ(steps->size(), 5u);
  EXPECT_EQ((*steps)[0].kind, ScenarioStep::Kind::kSession);
  EXPECT_EQ((*steps)[0].tenant, "tenant-vip");
  EXPECT_TRUE((*steps)[0].reports);
  EXPECT_EQ((*steps)[2].kind, ScenarioStep::Kind::kSend);
  EXPECT_EQ((*steps)[2].payload.rfind("REGISTER q1 ", 0), 0u);
  EXPECT_EQ((*steps)[3].kind, ScenarioStep::Kind::kTicks);
  EXPECT_EQ((*steps)[3].count, 100u);
  EXPECT_DOUBLE_EQ((*steps)[3].base, 0.03);
  EXPECT_EQ((*steps)[4].kind, ScenarioStep::Kind::kClose);

  const auto reparsed = ParseScenario(FormatScenario(*steps));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), steps->size());
  for (std::size_t i = 0; i < steps->size(); ++i) {
    EXPECT_EQ((*reparsed)[i].kind, (*steps)[i].kind);
    EXPECT_EQ((*reparsed)[i].session, (*steps)[i].session);
    EXPECT_EQ((*reparsed)[i].payload, (*steps)[i].payload);
    EXPECT_EQ((*reparsed)[i].count, (*steps)[i].count);
  }
}

TEST(ProtocolTest, ParsesMetricsAndInspectVerbs) {
  const auto metrics = ParseRequest("METRICS");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->verb, Verb::kMetrics);
  // METRICS takes no arguments.
  EXPECT_FALSE(ParseRequest("METRICS now").ok());

  const auto whole = ParseRequest("INSPECT");
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->verb, Verb::kInspect);
  EXPECT_TRUE(whole->inspect_target.empty());

  const auto scoped = ParseRequest("INSPECT q1");
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(scoped->verb, Verb::kInspect);
  EXPECT_EQ(scoped->inspect_target, "q1");

  const auto bad_id = ParseRequest("INSPECT bad!id");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_NE(bad_id.status().message().find("'bad!id'"), std::string::npos);
  EXPECT_FALSE(ParseRequest("INSPECT q1 extra").ok());
}

TEST(FrameTest, NearCapPayloadsRoundTripAndOverCapIsRejected) {
  constexpr std::size_t kCap = 4096;
  // One byte under and exactly at the cap both round-trip, including when
  // the bytes arrive split mid-header and mid-payload.
  for (const std::size_t size : {kCap - 1, kCap}) {
    const std::string payload(size, 'x');
    const std::string wire = EncodeFrame(payload);
    FrameDecoder decoder(kCap);
    ASSERT_TRUE(decoder.Feed(wire.substr(0, 3)).ok());
    ASSERT_TRUE(decoder.Feed(wire.substr(3, size / 2)).ok());
    ASSERT_TRUE(decoder.Feed(wire.substr(3 + size / 2)).ok());
    const auto decoded = decoder.Next();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->size(), size);
    EXPECT_EQ(*decoded, payload);
    EXPECT_FALSE(decoder.Next().has_value());
  }
  // One byte over: rejected from the length header alone, before any
  // payload bytes arrive.
  FrameDecoder decoder(kCap);
  const std::string oversized = EncodeFrame(std::string(kCap + 1, 'x'));
  const auto status =
      decoder.Feed(oversized.substr(0, oversized.find('\n') + 1));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("frame"), std::string::npos);
}

TEST_F(ServerTest, StatsTenantSectionsAreSortedByTenantName) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t zeta = server->OpenSession();
  const std::uint64_t alpha = server->OpenSession();
  const std::uint64_t mid = server->OpenSession();
  // Deliberately greet in anti-alphabetical order: the STATS grammar
  // promises tenant sections sorted by name regardless of arrival.
  Send(*server, zeta, "HELLO zeta");
  Send(*server, mid, "HELLO mm");
  Send(*server, alpha, "HELLO alpha");
  Send(*server, zeta,
       "REGISTER qz SELECT MAX(bond_model(rate, bond_index)) FROM bd "
       "PRECISION 0.1");
  Send(*server, alpha,
       "REGISTER qa SELECT MIN(bond_model(rate, bond_index)) FROM bd "
       "PRECISION 0.1");
  Send(*server, mid,
       "REGISTER qm SELECT AVE(bond_model(rate, bond_index)) FROM bd "
       "PRECISION 0.1");

  const auto replies = Send(*server, zeta, "STATS");
  ASSERT_EQ(replies.size(), 1u);
  const std::string& stats = replies[0];
  ASSERT_EQ(stats.rfind("OK STATS ", 0), 0u) << stats;
  const std::size_t at_alpha = stats.find(" tenant.alpha=q:1,");
  const std::size_t at_mm = stats.find(" tenant.mm=q:1,");
  const std::size_t at_zeta = stats.find(" tenant.zeta=q:1,");
  ASSERT_NE(at_alpha, std::string::npos) << stats;
  ASSERT_NE(at_mm, std::string::npos) << stats;
  ASSERT_NE(at_zeta, std::string::npos) << stats;
  EXPECT_LT(at_alpha, at_mm);
  EXPECT_LT(at_mm, at_zeta);
}

TEST_F(ServerTest, MetricsReplyIsOneRawPrometheusFrame) {
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t session = server->OpenSession();
  Send(*server, session, "HELLO mon");
  // Server metric families register lazily on first dispatcher activity,
  // so put one query and one tick through before scraping.
  Send(*server, session,
       "REGISTER q1 SELECT MAX(bond_model(rate, bond_index)) FROM bd "
       "PRECISION 0.1");
  Send(*server, session, "TICK 0.0575");
  const auto replies = Send(*server, session, "METRICS");
  ASSERT_EQ(replies.size(), 1u);
  // Raw exposition, no "OK" wrapper: scrapers splice the frame payload
  // straight into their ingest path.
  EXPECT_EQ(replies[0].rfind("# ", 0), 0u) << replies[0].substr(0, 120);
  EXPECT_NE(replies[0].find("# TYPE vaolib_server_ticks_total counter"),
            std::string::npos);
  EXPECT_NE(replies[0].find("# HELP vaolib_server_ticks_total"),
            std::string::npos);
}

TEST_F(ServerTest, InspectCoversServerQueryAndTenantScopes) {
  ServerConfig config;
  config.dispatcher.health.enabled = true;
  config.dispatcher.health.ticks_per_epoch = 1;
  auto server = MakeServer(config);
  const std::uint64_t session = server->OpenSession();
  Send(*server, session, "HELLO desk");
  Send(*server, session,
       "REGISTER q1 SELECT MAX(bond_model(rate, bond_index)) FROM bd "
       "PRECISION 0.05");
  for (int t = 0; t < 3; ++t) {
    Send(*server, session, "TICK 0.0575");
  }

  const auto whole = Send(*server, session, "INSPECT");
  ASSERT_EQ(whole.size(), 1u);
  ASSERT_EQ(whole[0].rfind("INSPECT {", 0), 0u) << whole[0];
  EXPECT_NE(whole[0].find("\"scope\": \"server\""), std::string::npos);
  EXPECT_NE(whole[0].find("\"health\": \"healthy\""), std::string::npos);
  EXPECT_NE(whole[0].find("\"slos\": ["), std::string::npos);

  const auto query = Send(*server, session, "INSPECT q1");
  ASSERT_EQ(query.size(), 1u);
  EXPECT_NE(query[0].find("\"scope\": \"query\""), std::string::npos);
  EXPECT_NE(query[0].find("\"id\": \"q1\""), std::string::npos);
  EXPECT_NE(query[0].find("\"ticks_observed\": 3"), std::string::npos);

  // No query named "desk" on this session, so resolution falls through to
  // the tenant scope.
  const auto tenant = Send(*server, session, "INSPECT desk");
  ASSERT_EQ(tenant.size(), 1u);
  EXPECT_NE(tenant[0].find("\"scope\": \"tenant\""), std::string::npos);
  EXPECT_NE(tenant[0].find("\"tenant\": \"desk\""), std::string::npos);

  const auto missing = Send(*server, session, "INSPECT nothere");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].rfind("ERR not-found ", 0), 0u) << missing[0];
  EXPECT_NE(missing[0].find("neither a query on this session nor a tenant"),
            std::string::npos);
}

TEST_F(ServerTest, InspectWithHealthPlaneDisabledIsFailedPrecondition) {
  // HealthConfig::enabled defaults to false: the library stays
  // pay-for-what-you-use and INSPECT says exactly which knob to flip.
  auto server = MakeServer(ServerConfig{});
  const std::uint64_t session = server->OpenSession();
  Send(*server, session, "HELLO desk");
  const auto replies = Send(*server, session, "INSPECT");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].rfind("ERR failed-precondition ", 0), 0u)
      << replies[0];
  EXPECT_NE(replies[0].find("DispatcherConfig::health"), std::string::npos);
}

TEST(ScenarioTest, ExpectStepRoundTripsAndValidates) {
  const std::string text =
      "SESSION mon tenant-mon\n"
      "SEND mon INSPECT\n"
      "EXPECT mon \"health\": \"healthy\"\n";
  const auto steps = ParseScenario(text);
  ASSERT_TRUE(steps.ok()) << steps.status().message();
  ASSERT_EQ(steps->size(), 3u);
  EXPECT_EQ((*steps)[2].kind, ScenarioStep::Kind::kExpect);
  EXPECT_EQ((*steps)[2].session, "mon");
  // The substring is the rest of the line verbatim, embedded quotes and
  // colons included.
  EXPECT_EQ((*steps)[2].payload, "\"health\": \"healthy\"");

  const auto reparsed = ParseScenario(FormatScenario(*steps));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), 3u);
  EXPECT_EQ((*reparsed)[2].kind, ScenarioStep::Kind::kExpect);
  EXPECT_EQ((*reparsed)[2].payload, (*steps)[2].payload);

  // EXPECT without a substring is a scenario bug, not an empty match.
  EXPECT_FALSE(ParseScenario("EXPECT mon\n").ok());
}

TEST(ScenarioTest, ErrorsNameTheLine) {
  const auto bad = ParseScenario("SESSION a t1\nWHAT now\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(bad.status().message().find("'WHAT'"), std::string::npos);

  const auto bad_count = ParseScenario("TICKS s -3 0.1 0.2\n");
  ASSERT_FALSE(bad_count.ok());
  EXPECT_NE(bad_count.status().message().find("positive integer"),
            std::string::npos);
}

}  // namespace
}  // namespace vaolib::server
