// Copyright 2026 The vaolib Authors.
// Tests for the runtime health plane (src/obs/health.h): windowed metric
// views, per-query progress rings with ETA extrapolation, and multi-window
// burn-rate SLO monitors including the flight-recorder arming path.

#include "obs/health.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::obs {
namespace {

// Metric mutations are gated on the global obs switch; pin it on so these
// tests do not depend on suite ordering or VAOLIB_OBS in the environment.
class ObsEnabledEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { SetEnabled(true); }
};
const auto* const kObsEnv =
    ::testing::AddGlobalTestEnvironment(new ObsEnabledEnvironment);

// ---------------------------------------------------------------- windows

TEST(WindowedViewTest, CounterDeltasOverLastKEpochs) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("requests_total");
  WindowedView view(&registry);

  counter->Add(5);
  view.Advance();  // epoch 1: +5
  counter->Add(7);
  view.Advance();  // epoch 2: +7
  counter->Add(1);
  view.Advance();  // epoch 3: +1

  EXPECT_EQ(view.epochs(), 3u);
  EXPECT_EQ(view.total_advances(), 3u);
  EXPECT_EQ(view.CounterDelta("requests_total", {}, 1), 1u);
  EXPECT_EQ(view.CounterDelta("requests_total", {}, 2), 8u);
  EXPECT_EQ(view.CounterDelta("requests_total", {}, 3), 13u);
  // k = 0 and k > epochs() both clamp to "all retained".
  EXPECT_EQ(view.CounterDelta("requests_total", {}, 0), 13u);
  EXPECT_EQ(view.CounterDelta("requests_total", {}, 99), 13u);
}

TEST(WindowedViewTest, UnknownAndMidSpanCountersReadAsZeroBased) {
  MetricsRegistry registry;
  WindowedView view(&registry);
  view.Advance();
  EXPECT_EQ(view.CounterDelta("never_registered", {}, 1), 0u);

  // A counter born mid-span reads as starting from zero.
  registry.GetCounter("late_total")->Add(4);
  view.Advance();
  EXPECT_EQ(view.CounterDelta("late_total", {}, 2), 4u);
}

TEST(WindowedViewTest, LabeledIdentitiesAreDistinct) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("shed_total", {{"reason", "overload"}});
  Counter* b = registry.GetCounter("shed_total", {{"reason", "quota"}});
  WindowedView view(&registry);
  a->Add(3);
  b->Add(9);
  view.Advance();
  EXPECT_EQ(view.CounterDelta("shed_total", {{"reason", "overload"}}, 1),
            3u);
  EXPECT_EQ(view.CounterDelta("shed_total", {{"reason", "quota"}}, 1), 9u);
  EXPECT_EQ(view.CounterDelta("shed_total", {}, 1), 0u);
}

TEST(WindowedViewTest, RingWrapKeepsOnlyWindowCountEpochs) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("ticks_total");
  WindowedView::Options options;
  options.window_count = 3;
  WindowedView view(&registry, options);

  for (int i = 0; i < 10; ++i) {
    counter->Add(1);
    view.Advance();
  }
  EXPECT_EQ(view.epochs(), 3u);
  EXPECT_EQ(view.total_advances(), 10u);
  // The retained window only spans the last 3 epochs (+1 each).
  EXPECT_EQ(view.CounterDelta("ticks_total", {}, 0), 3u);
}

TEST(WindowedViewTest, TickRatePerEpochAndClockRatePerSecond) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("work_total");
  WindowedView view(&registry);

  counter->Add(10);
  view.Advance();
  counter->Add(30);
  view.Advance();
  // No clocks anywhere: rate is per closed epoch.
  EXPECT_DOUBLE_EQ(view.CounterRate("work_total", {}, 2), 20.0);

  WindowedView clocked(&registry);
  counter->Add(100);
  clocked.Advance(5.0);
  counter->Add(100);
  clocked.Advance(15.0);
  // Both endpoints carry injected timestamps: per second.
  EXPECT_DOUBLE_EQ(clocked.CounterRate("work_total", {}, 1), 10.0);
  // The span back to the (clock-less) baseline falls back to per-epoch.
  EXPECT_DOUBLE_EQ(clocked.CounterRate("work_total", {}, 2), 100.0);
}

TEST(WindowedViewTest, HistogramDeltasIsolateTheWindow) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("latency", {}, {1.0, 2.0, 4.0});
  WindowedView view(&registry);

  histogram->Observe(0.5);
  histogram->Observe(3.0);
  view.Advance();  // epoch 1: two observations
  histogram->Observe(1.5);
  view.Advance();  // epoch 2: one observation

  EXPECT_EQ(view.HistogramCountDelta("latency", {}, 1), 1u);
  EXPECT_EQ(view.HistogramCountDelta("latency", {}, 2), 3u);
  EXPECT_DOUBLE_EQ(view.HistogramSumDelta("latency", {}, 1), 1.5);
  EXPECT_DOUBLE_EQ(view.HistogramSumDelta("latency", {}, 2), 5.0);

  // The epoch-2 window holds exactly one observation in (1, 2]; any
  // quantile lands inside that bucket.
  const double q = view.HistogramQuantile("latency", {}, 0.5, 1);
  EXPECT_GT(q, 1.0);
  EXPECT_LE(q, 2.0);
  // Empty span and unknown metric answer 0.
  EXPECT_DOUBLE_EQ(view.HistogramQuantile("nope", {}, 0.5, 1), 0.0);
}

TEST(WindowedViewTest, QuantileOverDeltasTracksRecentShift) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("work", {}, {10.0, 100.0, 1000.0});
  WindowedView view(&registry);

  for (int i = 0; i < 100; ++i) histogram->Observe(5.0);
  view.Advance();
  for (int i = 0; i < 100; ++i) histogram->Observe(500.0);
  view.Advance();

  // Over the last epoch only, p50 sits in the (100, 1000] bucket even
  // though the cumulative histogram is dominated by small values.
  EXPECT_GT(view.HistogramQuantile("work", {}, 0.5, 1), 100.0);
  // Over both epochs the small observations pull p25 back down.
  EXPECT_LE(view.HistogramQuantile("work", {}, 0.25, 2), 10.0);
}

// --------------------------------------------------------------- progress

ProgressSample Sample(std::uint64_t tick, double width,
                      std::uint64_t work = 100, bool converged = false,
                      bool limited = false) {
  ProgressSample sample;
  sample.tick = tick;
  sample.width = width;
  sample.rel_width = width;
  sample.work_spent = work;
  sample.converged = converged;
  sample.limited_by_min_width = limited;
  return sample;
}

TEST(ProgressRingTest, BoundedRingKeepsNewestSamples) {
  ProgressRing ring(3);
  for (std::uint64_t t = 0; t < 5; ++t) {
    ring.Record(Sample(t, 10.0 - static_cast<double>(t)));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.at(0).tick, 2u);  // oldest retained
  EXPECT_EQ(ring.newest().tick, 4u);
}

TEST(ProgressRingTest, EtaExtrapolatesGeometricShrink) {
  ProgressRing ring(8);
  // Width halves every tick: 16, 8, 4, 2.
  for (std::uint64_t t = 0; t < 4; ++t) {
    ring.Record(Sample(t, 16.0 / std::pow(2.0, static_cast<double>(t))));
  }
  const EtaEstimate eta = ring.EstimateEta(/*target_width=*/1.0);
  ASSERT_TRUE(eta.known);
  // 2 -> 1 at a halving per tick: one more tick, one tick's mean work.
  EXPECT_NEAR(eta.ticks, 1.0, 1e-9);
  EXPECT_NEAR(eta.work_units, 100.0, 1e-6);
}

TEST(ProgressRingTest, ShrinkHintScalesTheEta) {
  ProgressRing ring(8);
  for (std::uint64_t t = 0; t < 4; ++t) {
    ring.Record(Sample(t, 16.0 / std::pow(2.0, static_cast<double>(t))));
  }
  const EtaEstimate fast = ring.EstimateEta(1.0, /*shrink_hint=*/2.0);
  ASSERT_TRUE(fast.known);
  EXPECT_NEAR(fast.ticks, 0.5, 1e-9);
  // The hint is clamped to [0.25, 4]: an absurd hint cannot zero the ETA.
  const EtaEstimate clamped = ring.EstimateEta(1.0, /*shrink_hint=*/1000.0);
  ASSERT_TRUE(clamped.known);
  EXPECT_NEAR(clamped.ticks, 0.25, 1e-9);
}

TEST(ProgressRingTest, EtaUnknownWhenFlatWideningOrLimited) {
  ProgressRing flat(8);
  flat.Record(Sample(0, 4.0));
  flat.Record(Sample(1, 4.0));
  EXPECT_FALSE(flat.EstimateEta(1.0).known);

  ProgressRing widening(8);
  widening.Record(Sample(0, 2.0));
  widening.Record(Sample(1, 4.0));
  EXPECT_FALSE(widening.EstimateEta(1.0).known);

  ProgressRing limited(8);
  limited.Record(Sample(0, 8.0));
  limited.Record(Sample(1, 4.0, 100, /*converged=*/false,
                        /*limited=*/true));
  EXPECT_FALSE(limited.EstimateEta(1.0).known);

  ProgressRing empty(8);
  EXPECT_FALSE(empty.EstimateEta(1.0).known);

  ProgressRing single(8);
  single.Record(Sample(0, 8.0));
  EXPECT_FALSE(single.EstimateEta(1.0).known);
}

TEST(ProgressRingTest, EtaZeroWhenAlreadyThere) {
  ProgressRing ring(8);
  ring.Record(Sample(0, 8.0));
  ring.Record(Sample(1, 0.5));
  const EtaEstimate at_target = ring.EstimateEta(1.0);
  ASSERT_TRUE(at_target.known);
  EXPECT_DOUBLE_EQ(at_target.ticks, 0.0);
  EXPECT_DOUBLE_EQ(at_target.work_units, 0.0);

  ProgressRing converged(8);
  converged.Record(Sample(0, 4.0, 100, /*converged=*/true));
  const EtaEstimate done = converged.EstimateEta(1.0);
  ASSERT_TRUE(done.known);
  EXPECT_DOUBLE_EQ(done.ticks, 0.0);
}

// ------------------------------------------------------------------- slos

struct SloHarness {
  MetricsRegistry registry;
  Counter* bad;
  Counter* total;
  WindowedView view;

  explicit SloHarness()
      : bad(registry.GetCounter("bad_total")),
        total(registry.GetCounter("all_total")),
        view(&registry) {}

  SloSpec RatioSpec() {
    SloSpec spec;
    spec.name = "errors";
    spec.bad_metric = "bad_total";
    spec.total_metric = "all_total";
    spec.budget = 0.1;
    spec.fast_epochs = 1;
    spec.slow_epochs = 4;
    spec.degraded_burn = 1.0;
    spec.critical_burn = 2.0;
    return spec;
  }

  void Epoch(std::uint64_t bad_n, std::uint64_t total_n,
             SloMonitor* monitor) {
    bad->Add(bad_n);
    total->Add(total_n);
    view.Advance();
    monitor->Evaluate();
  }
};

TEST(SloMonitorTest, MultiWindowBurnRequiresBothWindowsForCritical) {
  SloHarness h;
  SloMonitor monitor(&h.view, {h.RatioSpec()});
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);

  // Three clean epochs fill the slow window with benign history.
  h.Epoch(0, 10, &monitor);
  h.Epoch(0, 10, &monitor);
  h.Epoch(0, 10, &monitor);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);

  // One bad epoch: the fast window burns 3x, but diluted over the slow
  // window the burn stays under critical -- degraded, not critical. This
  // is the whole point of multi-window burn alerting: one bad epoch
  // cannot page.
  h.Epoch(3, 10, &monitor);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor.critical_transitions(), 0u);
  EXPECT_DOUBLE_EQ(monitor.statuses()[0].fast_value, 0.3);
  EXPECT_DOUBLE_EQ(monitor.statuses()[0].fast_burn, 3.0);

  // Sustained badness saturates the slow window too: critical, once.
  h.Epoch(5, 10, &monitor);
  h.Epoch(5, 10, &monitor);
  EXPECT_EQ(monitor.state(), HealthState::kCritical);
  EXPECT_EQ(monitor.critical_transitions(), 1u);

  // Recovery: clean epochs drain both windows back to healthy.
  for (int i = 0; i < 5; ++i) h.Epoch(0, 10, &monitor);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor.critical_transitions(), 1u);
}

TEST(SloMonitorTest, StatePublishedAsGauges) {
  SloHarness h;
  SloMonitor monitor(&h.view, {h.RatioSpec()});
  h.Epoch(10, 10, &monitor);  // 10x burn in every window from the start
  EXPECT_EQ(monitor.state(), HealthState::kCritical);

  EXPECT_EQ(h.registry.GetGauge("vaolib_health_state")->Value(), 2);
  EXPECT_EQ(
      h.registry.GetGauge("vaolib_slo_state", {{"slo", "errors"}})->Value(),
      2);
  EXPECT_EQ(h.registry
                .GetGauge("vaolib_slo_burn_milli",
                          {{"slo", "errors"}, {"window", "fast"}})
                ->Value(),
            10000);
  EXPECT_EQ(
      h.registry.GetCounter("vaolib_slo_critical_transitions_total")
          ->Value(),
      1u);
}

TEST(SloMonitorTest, QuantileModeBurnsAgainstTheLimit) {
  MetricsRegistry registry;
  Histogram* work =
      registry.GetHistogram("tick_work", {}, {10.0, 100.0, 1000.0});
  WindowedView view(&registry);

  SloSpec spec;
  spec.name = "tick_work_p99";
  spec.histogram_metric = "tick_work";
  spec.quantile = 0.99;
  spec.limit = 100.0;
  spec.fast_epochs = 1;
  spec.slow_epochs = 2;
  SloMonitor monitor(&view, {spec});

  for (int i = 0; i < 50; ++i) work->Observe(5.0);
  view.Advance();
  EXPECT_EQ(monitor.Evaluate(), HealthState::kHealthy);

  // p99 blows through the limit in both windows once the load shifts.
  for (int i = 0; i < 200; ++i) work->Observe(900.0);
  view.Advance();
  EXPECT_EQ(monitor.Evaluate(), HealthState::kCritical);
  EXPECT_GT(monitor.statuses()[0].fast_burn, 2.0);
}

TEST(SloMonitorTest, ZeroTrafficIsHealthy) {
  SloHarness h;
  SloMonitor monitor(&h.view, {h.RatioSpec()});
  h.Epoch(0, 0, &monitor);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.statuses()[0].fast_burn, 0.0);
}

TEST(SloMonitorTest, CriticalTransitionArmsTheFlightRecorder) {
  const std::string dump_dir = "health_test_dumps";
  std::error_code dir_error;
  std::filesystem::create_directories(dump_dir, dir_error);
  FlightRecorder::Global().SetDumpDir(dump_dir);
  SetTraceMode(TraceMode::kFlight);
  const std::uint64_t before = FlightRecorder::Global().dump_count();

  SloHarness h;
  SloMonitor monitor(&h.view, {h.RatioSpec()});
  h.Epoch(10, 10, &monitor);
  EXPECT_EQ(monitor.state(), HealthState::kCritical);

  SetTraceMode(TraceMode::kOff);
  FlightRecorder::Global().SetDumpDir("");

  EXPECT_EQ(FlightRecorder::Global().dump_count(), before + 1);
  // The dump names its trigger, so an on-call reading the directory sees
  // WHY the recorder fired.
  bool found = false;
  for (const auto& entry : std::filesystem::directory_iterator(dump_dir)) {
    if (entry.path().filename().string().find("slo-critical-errors") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  std::filesystem::remove_all(dump_dir, dir_error);
}

TEST(SloMonitorTest, DisarmedCriticalTransitionDoesNotDump) {
  SetTraceMode(TraceMode::kOff);
  FlightRecorder::Global().SetDumpDir("");
  const std::uint64_t before = FlightRecorder::Global().dump_count();
  SloHarness h;
  SloMonitor monitor(&h.view, {h.RatioSpec()});
  h.Epoch(10, 10, &monitor);
  EXPECT_EQ(monitor.state(), HealthState::kCritical);
  EXPECT_EQ(FlightRecorder::Global().dump_count(), before);
}

TEST(HealthStateTest, NamesAreStable) {
  EXPECT_STREQ(HealthStateName(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(HealthStateName(HealthState::kCritical), "critical");
}

}  // namespace
}  // namespace vaolib::obs
