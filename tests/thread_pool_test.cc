// Copyright 2026 The vaolib Authors.
// Tests for the persistent ThreadPool: chunk coverage, deterministic meter
// merging across parallelism levels, error and exception propagation, and
// pool reuse. Runnable under TSan (scripts/check_tsan.sh).

#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/work_meter.h"
#include "gtest/gtest.h"

namespace vaolib {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::ForOptions options;
  options.max_parallelism = 4;
  options.min_chunk = 7;
  const Status status = pool.ParallelFor(
      kN, options, nullptr,
      [&](std::size_t begin, std::size_t end, WorkMeter*) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.message();
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelismOneRunsInlineOnCaller) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  ThreadPool::ForOptions options;
  options.max_parallelism = 1;
  options.min_chunk = 3;
  std::atomic<int> off_caller{0};
  const Status status = pool.ParallelFor(
      20, options, nullptr, [&](std::size_t, std::size_t, WorkMeter*) {
        if (std::this_thread::get_id() != caller) ++off_caller;
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(off_caller.load(), 0);
}

TEST(ThreadPoolTest, MeterTotalsIndependentOfParallelism) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 337;  // deliberately not a multiple of min_chunk
  std::uint64_t expected_exec = 0;
  for (std::size_t i = 0; i < kN; ++i) expected_exec += i + 1;

  for (const int parallelism : {1, 2, 4, 8}) {
    WorkMeter meter;
    ThreadPool::ForOptions options;
    options.max_parallelism = parallelism;
    options.min_chunk = 5;
    const Status status = pool.ParallelFor(
        kN, options, &meter,
        [](std::size_t begin, std::size_t end, WorkMeter* chunk_meter) {
          for (std::size_t i = begin; i < end; ++i) {
            chunk_meter->Charge(WorkKind::kExec, i + 1);
            chunk_meter->Charge(WorkKind::kChooseIter, 1);
          }
          return Status::OK();
        });
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(meter.Count(WorkKind::kExec), expected_exec)
        << "parallelism " << parallelism;
    EXPECT_EQ(meter.Count(WorkKind::kChooseIter), kN)
        << "parallelism " << parallelism;
  }
}

TEST(ThreadPoolTest, ReturnsLowestIndexedFailureDeterministically) {
  ThreadPool pool(4);
  // Indices 17 and 42 fail; the chunk holding 17 is the lowest-indexed
  // failing chunk, and an in-order body hits 17 first within it.
  const auto body = [](std::size_t begin, std::size_t end, WorkMeter*) {
    for (std::size_t i = begin; i < end; ++i) {
      if (i == 17 || i == 42) {
        return Status::NumericError("fail " + std::to_string(i));
      }
    }
    return Status::OK();
  };
  for (const int parallelism : {1, 2, 4}) {
    ThreadPool::ForOptions options;
    options.max_parallelism = parallelism;
    options.min_chunk = 5;
    const Status status = pool.ParallelFor(100, options, nullptr, body);
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.Is(StatusCode::kNumericError));
    EXPECT_EQ(status.message(), "fail 17") << "parallelism " << parallelism;
  }
}

TEST(ThreadPoolTest, AllChunksAttemptedDespiteEarlyFailure) {
  ThreadPool pool(4);
  std::atomic<std::size_t> chunks_entered{0};
  ThreadPool::ForOptions options;
  options.max_parallelism = 4;
  options.min_chunk = 10;
  const Status status = pool.ParallelFor(
      100, options, nullptr, [&](std::size_t begin, std::size_t, WorkMeter*) {
        chunks_entered.fetch_add(1, std::memory_order_relaxed);
        if (begin == 0) return Status::NumericError("first chunk fails");
        return Status::OK();
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(chunks_entered.load(), 10u);
}

TEST(ThreadPoolTest, ExceptionBecomesInternalAndPoolSurvives) {
  ThreadPool pool(2);
  ThreadPool::ForOptions options;
  options.max_parallelism = 2;
  const Status status = pool.ParallelFor(
      8, options, nullptr, [](std::size_t begin, std::size_t, WorkMeter*) {
        if (begin == 0) throw std::runtime_error("boom");
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.Is(StatusCode::kInternal));
  EXPECT_NE(status.message().find("boom"), std::string::npos);

  // Workers must survive the throw and serve later calls.
  std::atomic<int> count{0};
  const Status again = pool.ParallelFor(
      8, options, nullptr, [&](std::size_t begin, std::size_t end, WorkMeter*) {
        count += static_cast<int>(end - begin);
        return Status::OK();
      });
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForIsRejected) {
  ThreadPool pool(2);
  ThreadPool::ForOptions options;
  options.max_parallelism = 2;
  std::atomic<int> rejected{0};
  const Status status = pool.ParallelFor(
      4, options, nullptr, [&](std::size_t, std::size_t, WorkMeter*) {
        const Status nested = pool.ParallelFor(
            2, ThreadPool::ForOptions{}, nullptr,
            [](std::size_t, std::size_t, WorkMeter*) { return Status::OK(); });
        if (nested.Is(StatusCode::kFailedPrecondition)) ++rejected;
        return nested;
      });
  EXPECT_TRUE(status.Is(StatusCode::kFailedPrecondition));
  EXPECT_EQ(rejected.load(), 4);
}

TEST(ThreadPoolTest, ZeroIterationsIsOkWithoutCallingBody) {
  ThreadPool pool(2);
  const Status status = pool.ParallelFor(
      0, ThreadPool::ForOptions{}, nullptr,
      [](std::size_t, std::size_t, WorkMeter*) {
        ADD_FAILURE() << "body called for n = 0";
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
}

TEST(ThreadPoolTest, WorkersAreReusedAcrossManyCalls) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.thread_count(), 4);
  ThreadPool::ForOptions options;
  options.max_parallelism = 4;
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    const Status status = pool.ParallelFor(
        round + 1, options, nullptr,
        [&](std::size_t begin, std::size_t end, WorkMeter*) {
          std::uint64_t local = 0;
          for (std::size_t i = begin; i < end; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
          return Status::OK();
        });
    ASSERT_TRUE(status.ok());
    const auto n = static_cast<std::uint64_t>(round + 1);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  }
  EXPECT_EQ(pool.thread_count(), 4);
}

TEST(ThreadPoolTest, SharedPoolIsAProcessSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1);
}

}  // namespace
}  // namespace vaolib
