// Tests for the approximate answer tier: row samplers (determinism,
// uniformity, allocation), the numerically stable accumulators behind the
// CLT intervals, NormalQuantile, the vao::Answer value type, and
// SampledSumTask end to end (soundness at full exhaustion, early stopping,
// n == N degeneration to hard bounds).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "common/macros.h"
#include "common/stats.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "engine/sampling/sampled_sum.h"
#include "engine/sampling/sampler.h"
#include "operators/iteration_task.h"
#include "testing/workload_gen.h"
#include "vao/answer.h"

namespace vaolib {
namespace {

using engine::sampling::PrefixSampler;
using engine::sampling::ProportionalAllocation;
using engine::sampling::ReservoirSample;
using engine::sampling::SampledAggregateOptions;
using engine::sampling::SampledSumTask;
using engine::sampling::StratifiedSample;

// ---------------------------------------------------------------------------
// PrefixSampler

TEST(PrefixSamplerTest, DrawsAreUniqueInRangeAndDeterministic) {
  PrefixSampler a(100, 7);
  PrefixSampler b(100, 7);
  const auto first_a = a.Draw(10);
  const auto first_b = b.Draw(10);
  EXPECT_EQ(first_a, first_b);
  const auto second_a = a.Draw(25);
  EXPECT_EQ(second_a, b.Draw(25));
  EXPECT_EQ(a.drawn(), 35u);

  std::set<std::size_t> seen(a.sample().begin(), a.sample().end());
  EXPECT_EQ(seen.size(), a.drawn());  // no repeats
  for (const std::size_t row : a.sample()) EXPECT_LT(row, 100u);
}

TEST(PrefixSamplerTest, ExhaustionYieldsFullPermutation) {
  PrefixSampler sampler(17, 3);
  sampler.Draw(5);
  EXPECT_FALSE(sampler.Exhausted());
  const auto rest = sampler.Draw(100);  // over-ask: clamps to remaining
  EXPECT_EQ(rest.size(), 12u);
  EXPECT_TRUE(sampler.Exhausted());
  EXPECT_TRUE(sampler.Draw(1).empty());

  std::set<std::size_t> seen(sampler.sample().begin(),
                             sampler.sample().end());
  EXPECT_EQ(seen.size(), 17u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 16u);
}

TEST(PrefixSamplerTest, FirstDrawRoughlyUniform) {
  // The first drawn row over many seeds should hit every slot of a small
  // population at ~1/n frequency; a loose band catches gross bias.
  constexpr std::size_t kPop = 8;
  constexpr int kTrials = 2000;
  std::vector<int> counts(kPop, 0);
  for (int t = 0; t < kTrials; ++t) {
    PrefixSampler sampler(kPop, 1000 + static_cast<std::uint64_t>(t));
    ++counts[sampler.Draw(1).front()];
  }
  for (const int c : counts) {
    EXPECT_GT(c, kTrials / kPop / 2);
    EXPECT_LT(c, kTrials / kPop * 2);
  }
}

// ---------------------------------------------------------------------------
// ReservoirSample / allocation / stratified

TEST(ReservoirSampleTest, WholePopulationWhenKCoversIt) {
  const auto all = ReservoirSample(6, 6, 11);
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(ReservoirSample(6, 99, 11).size(), 6u);
  EXPECT_TRUE(ReservoirSample(6, 0, 11).empty());
}

TEST(ReservoirSampleTest, SortedUniqueDeterministic) {
  const auto s1 = ReservoirSample(1000, 40, 5);
  const auto s2 = ReservoirSample(1000, 40, 5);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 40u);
  EXPECT_TRUE(std::is_sorted(s1.begin(), s1.end()));
  EXPECT_EQ(std::set<std::size_t>(s1.begin(), s1.end()).size(), 40u);
  EXPECT_LT(s1.back(), 1000u);
  // A different seed must (overwhelmingly) pick a different set.
  EXPECT_NE(s1, ReservoirSample(1000, 40, 6));
}

TEST(ProportionalAllocationTest, ExactProportionsAndRemainders) {
  EXPECT_EQ(ProportionalAllocation({10, 30, 60}, 10),
            (std::vector<std::size_t>{1, 3, 6}));
  // Remainders go to the largest fractional shares; total is preserved.
  const auto alloc = ProportionalAllocation({1, 1, 1}, 2);
  EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 2u);
  // Never exceeds a stratum's size, and caps at the total population.
  const auto capped = ProportionalAllocation({2, 2}, 100);
  EXPECT_EQ(capped, (std::vector<std::size_t>{2, 2}));
}

TEST(StratifiedSampleTest, CoversStrataDeterministically) {
  std::vector<double> keys(100);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<double>(i % 10);  // skewed, repeated keys
  }
  const auto s1 = StratifiedSample(keys, 4, 20, 9);
  EXPECT_EQ(s1, StratifiedSample(keys, 4, 20, 9));
  EXPECT_EQ(s1.size(), 20u);
  EXPECT_EQ(std::set<std::size_t>(s1.begin(), s1.end()).size(), 20u);
  for (const std::size_t row : s1) EXPECT_LT(row, keys.size());
}

// ---------------------------------------------------------------------------
// Accumulators

TEST(NeumaierSumTest, RecoversCancelledLowOrderBits) {
  // The classic case naive += gets wrong: 1 + 1e100 + 1 - 1e100 == 2.
  NeumaierSum sum;
  sum.Add(1.0);
  sum.Add(1e100);
  sum.Add(1.0);
  sum.Add(-1e100);
  EXPECT_DOUBLE_EQ(sum.Sum(), 2.0);

  double naive = 0.0;
  for (const double x : {1.0, 1e100, 1.0, -1e100}) naive += x;
  EXPECT_NE(naive, 2.0);
}

TEST(WeightedVarianceTest, MatchesTwoPassOnIllConditionedInput) {
  // Large mean, tiny variance: the textbook E[x^2] - E[x]^2 formula cancels
  // catastrophically here; the single-pass accumulator must agree with a
  // compensated two-pass reference to high relative accuracy.
  constexpr double kMean = 1e9;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(kMean + 1e-3 * std::sin(0.1 * i));
  }

  WeightedVariance one_pass;
  for (const double v : values) one_pass.Add(v);

  NeumaierSum total;
  for (const double v : values) total.Add(v);
  const double mean = total.Sum() / static_cast<double>(values.size());
  NeumaierSum sq;
  for (const double v : values) sq.Add((v - mean) * (v - mean));
  const double two_pass =
      sq.Sum() / static_cast<double>(values.size() - 1);

  EXPECT_NEAR(one_pass.Mean(), mean, 1e-6);
  ASSERT_GT(two_pass, 0.0);
  // Welford tracks the two-pass reference to ~1e-5 here; the residual is
  // representation error of the inputs themselves (1e9 holds ~1e-7 ulps).
  EXPECT_NEAR(one_pass.SampleVariance() / two_pass, 1.0, 1e-3);

  // And the naive sum-of-squares formula really is broken on this input
  // (grossly off or negative), which is what this accumulator replaces.
  double sum = 0.0;
  double sum2 = 0.0;
  for (const double v : values) {
    sum += v;
    sum2 += v * v;
  }
  const double n = static_cast<double>(values.size());
  const double naive = (sum2 - sum * sum / n) / (n - 1);
  EXPECT_GT(std::abs(naive / two_pass - 1.0), 0.5);
}

TEST(WeightedVarianceTest, UnitWeightsMatchClassicEstimators) {
  WeightedVariance acc;
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double v : values) acc.Add(v);
  EXPECT_EQ(acc.count(), values.size());
  EXPECT_DOUBLE_EQ(acc.WeightSum(), 8.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.PopulationVariance(), 4.0);
  EXPECT_NEAR(acc.SampleVariance(), 32.0 / 7.0, 1e-12);
  // A frequency weight of 2 equals adding the value twice.
  WeightedVariance weighted;
  weighted.Add(1.0, 2.0);
  weighted.Add(4.0, 1.0);
  WeightedVariance repeated;
  repeated.Add(1.0);
  repeated.Add(1.0);
  repeated.Add(4.0);
  EXPECT_DOUBLE_EQ(weighted.Mean(), repeated.Mean());
  EXPECT_DOUBLE_EQ(weighted.SampleVariance(), repeated.SampleVariance());
}

TEST(NormalQuantileTest, KnownValuesAndSymmetry) {
  EXPECT_DOUBLE_EQ(NormalQuantile(0.5), 0.0);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.95), 1.644854, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.025), -NormalQuantile(0.975), 1e-9);
  EXPECT_EQ(NormalQuantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(NormalQuantile(1.0), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(NormalQuantile(-0.1)));
  EXPECT_TRUE(std::isnan(NormalQuantile(1.1)));
}

// ---------------------------------------------------------------------------
// vao::Answer

TEST(AnswerTest, BoundsLiftIsExactMode) {
  const Bounds b(1.0, 3.0);
  const vao::Answer answer = b;  // implicit lift
  EXPECT_EQ(answer.mode, vao::AnswerMode::kExact);
  EXPECT_FALSE(answer.approximate());
  EXPECT_DOUBLE_EQ(answer.confidence, 1.0);
  EXPECT_EQ(answer.sample_size, 0u);
  EXPECT_DOUBLE_EQ(answer.deterministic_width, 2.0);
  EXPECT_DOUBLE_EQ(answer.sampling_width, 0.0);
  // Derived-to-base comparisons keep working at every old call site.
  EXPECT_EQ(answer.bounds(), b);
  EXPECT_TRUE(answer.Contains(2.0));
  EXPECT_DOUBLE_EQ(answer.Width(), 2.0);
}

TEST(AnswerTest, ApproximateFactoryCarriesProvenance) {
  const vao::Answer answer = vao::Answer::Approximate(
      Bounds(10.0, 20.0), 0.95, 64, 1000, 4.0, 6.0);
  EXPECT_TRUE(answer.approximate());
  EXPECT_STREQ(vao::AnswerModeName(answer.mode), "approximate");
  EXPECT_DOUBLE_EQ(answer.confidence, 0.95);
  EXPECT_EQ(answer.sample_size, 64u);
  EXPECT_EQ(answer.population_size, 1000u);
  EXPECT_DOUBLE_EQ(answer.deterministic_width + answer.sampling_width,
                   answer.Width());
}

// ---------------------------------------------------------------------------
// SampledSumTask

struct DrivenSum {
  engine::sampling::SampledSumOutcome outcome;
  double true_sum = 0.0;
  std::size_t rows = 0;
};

// Builds a positive-valued synthetic workload and drives a sampled unit-
// weight SUM over it to completion.
Result<DrivenSum> DriveSampledSum(std::size_t rows, double target_rel_error,
                                  std::uint64_t seed,
                                  std::size_t max_samples = 0,
                                  double epsilon = 1.0) {
  testing::WorkloadSpec spec;
  spec.rows = rows;
  spec.value_lo = 50.0;
  spec.value_hi = 150.0;
  const testing::Workload workload = testing::MakeWorkload(spec, seed);

  SampledAggregateOptions options;
  options.spec.confidence = 0.95;
  options.spec.target_rel_error = target_rel_error;
  options.spec.seed = seed;
  options.spec.initial_samples = 16;
  options.spec.max_samples = max_samples;
  options.epsilon = epsilon;

  WorkMeter meter;
  const auto* function = workload.function.get();
  VAOLIB_ASSIGN_OR_RETURN(
      auto task,
      SampledSumTask::Create(
          options, rows,
          [function, &meter](std::size_t row) {
            return function->Invoke({static_cast<double>(row)}, &meter);
          },
          [](std::size_t) { return 1.0; }));

  operators::OperatorOptions drive;
  drive.meter = &meter;
  VAOLIB_RETURN_IF_ERROR(operators::DriveTask(task.get(), drive).status());

  DrivenSum result;
  result.outcome = task->Snapshot();
  result.rows = rows;
  NeumaierSum truth;
  for (const double v : workload.true_values) truth.Add(v);
  result.true_sum = truth.Sum();
  return result;
}

TEST(SampledSumTaskTest, UnreachableTargetDegeneratesToHardBounds) {
  // An impossible relative-error target (epsilon floor disabled too) forces
  // the task to exhaust the population; at n == N the sampling term
  // vanishes and the interval is the hard weighted bound sum, which must
  // contain the truth outright.
  const auto driven =
      DriveSampledSum(60, 1e-12, 21, /*max_samples=*/0, /*epsilon=*/1e-9)
          .ValueOrDie();
  const vao::Answer& answer = driven.outcome.answer;
  EXPECT_TRUE(answer.approximate());
  EXPECT_EQ(answer.sample_size, driven.rows);
  EXPECT_EQ(answer.population_size, driven.rows);
  EXPECT_DOUBLE_EQ(answer.sampling_width, 0.0);
  EXPECT_TRUE(answer.Contains(driven.true_sum))
      << answer << " vs " << driven.true_sum;
  EXPECT_TRUE(driven.outcome.limited_by_min_width);
}

TEST(SampledSumTaskTest, LooseTargetStopsEarlyAndCovers) {
  const auto driven = DriveSampledSum(400, 0.05, 33).ValueOrDie();
  const vao::Answer& answer = driven.outcome.answer;
  EXPECT_TRUE(driven.outcome.converged);
  EXPECT_TRUE(answer.approximate());
  EXPECT_GE(answer.sample_size, 2u);
  EXPECT_LT(answer.sample_size, driven.rows);  // genuinely sampled
  EXPECT_DOUBLE_EQ(answer.confidence, 0.95);
  EXPECT_GT(answer.sampling_width, 0.0);
  // Combined interval met the relative target...
  EXPECT_LE(answer.Width(),
            2.0 * 0.05 * std::abs(answer.Mid()) + 1e-9);
  // ...and covers the truth on this seed (deterministic replay).
  EXPECT_TRUE(answer.Contains(driven.true_sum))
      << answer << " vs " << driven.true_sum;
  // Deterministic: same seed, same answer.
  const auto again = DriveSampledSum(400, 0.05, 33).ValueOrDie();
  EXPECT_DOUBLE_EQ(again.outcome.answer.lo, answer.lo);
  EXPECT_DOUBLE_EQ(again.outcome.answer.hi, answer.hi);
  EXPECT_EQ(again.outcome.answer.sample_size, answer.sample_size);
}

TEST(SampledSumTaskTest, MaxSamplesCapIsHonored) {
  const auto driven = DriveSampledSum(200, 1e-12, 5, /*max_samples=*/32);
  ASSERT_TRUE(driven.ok());
  const vao::Answer& answer = driven.ValueOrDie().outcome.answer;
  EXPECT_LE(answer.sample_size, 32u);
  // Capped below the population, the run cannot claim convergence on an
  // impossible target.
  EXPECT_FALSE(driven.ValueOrDie().outcome.converged);
}

TEST(SampledSumTaskTest, CreateValidatesConfig) {
  SampledAggregateOptions options;
  const auto broken = [](std::size_t) -> Result<vao::ResultObjectPtr> {
    return Status::NumericError("row exploded");
  };
  const auto weight = [](std::size_t) { return 1.0; };
  EXPECT_FALSE(SampledSumTask::Create(options, 0, broken, weight).ok());
  options.spec.confidence = 1.5;
  EXPECT_FALSE(SampledSumTask::Create(options, 10, broken, weight).ok());
  options.spec.confidence = 0.95;
  options.spec.target_rel_error = 0.0;
  EXPECT_FALSE(SampledSumTask::Create(options, 10, broken, weight).ok());
  options.spec.target_rel_error = 0.01;
  EXPECT_FALSE(SampledSumTask::Create(options, 10, nullptr, weight).ok());

  // Create() draws the initial sample, so row materialization failures
  // surface here rather than at the first Step().
  const auto exploded = SampledSumTask::Create(options, 10, broken, weight);
  ASSERT_FALSE(exploded.ok());
  EXPECT_TRUE(exploded.status().Is(StatusCode::kNumericError));

  // A working factory yields a snapshot-ready task.
  testing::WorkloadSpec spec;
  spec.rows = 10;
  const testing::Workload workload = testing::MakeWorkload(spec, 4);
  const auto* function = workload.function.get();
  const auto created = SampledSumTask::Create(
      options, spec.rows,
      [function](std::size_t row) {
        return function->Invoke({static_cast<double>(row)}, nullptr);
      },
      weight);
  ASSERT_TRUE(created.ok()) << created.status();
}

TEST(SampledSumTaskTest, SnapshotBeforeAnyStepIsVarianceBacked) {
  // A budgeted scheduler may consume a snapshot before the task's first
  // Step(). The eager initial draw must make that snapshot rest on a real
  // variance estimate -- never a zero-width interval around 0 presented at
  // the stated confidence.
  testing::WorkloadSpec spec;
  spec.rows = 200;
  spec.value_lo = 50.0;
  spec.value_hi = 150.0;
  const testing::Workload workload = testing::MakeWorkload(spec, 17);

  SampledAggregateOptions options;
  options.spec.confidence = 0.95;
  options.spec.target_rel_error = 1e-9;  // no instant convergence
  options.spec.seed = 17;
  options.spec.initial_samples = 16;
  const auto* function = workload.function.get();
  auto task = SampledSumTask::Create(
                  options, spec.rows,
                  [function](std::size_t row) {
                    return function->Invoke({static_cast<double>(row)},
                                            nullptr);
                  },
                  [](std::size_t) { return 1.0; })
                  .ValueOrDie();

  const vao::Answer answer = task->Snapshot().answer;  // no Step() ever ran
  EXPECT_GE(answer.sample_size, 2u);
  EXPECT_DOUBLE_EQ(answer.confidence, 0.95);
  EXPECT_TRUE(answer.bounds().IsValid());
  EXPECT_GT(answer.Width(), 0.0);
  EXPECT_GT(answer.sampling_width, 0.0);
  NeumaierSum truth;
  for (const double v : workload.true_values) truth.Add(v);
  EXPECT_TRUE(answer.Contains(truth.Sum())) << answer << " vs "
                                            << truth.Sum();
}

TEST(SampledSumTaskTest, SampleCapBelowTwoIsHonoredAndClaimsNothing) {
  // max_samples=1 is a (pathological but legal) hard cap: the task must not
  // draw past it, and with no variance estimate possible it must mark its
  // snapshot confidence 0 instead of fabricating an interval.
  const auto driven =
      DriveSampledSum(50, 0.05, 9, /*max_samples=*/1).ValueOrDie();
  const vao::Answer& answer = driven.outcome.answer;
  EXPECT_LE(answer.sample_size, 1u);
  EXPECT_DOUBLE_EQ(answer.confidence, 0.0);
  EXPECT_TRUE(answer.bounds().IsValid());
  EXPECT_FALSE(driven.outcome.converged);
}

TEST(SampledSumTaskTest, IllConditionedMeanKeepsVarianceEstimate) {
  // Large mean, tiny spread: the naive sum-of-squares variance cancels
  // catastrophically here (clamping to 0 -> overconfident zero sampling
  // width, or surviving as ulp garbage -> absurdly wide). The pivoted
  // accumulator must keep the sampling width positive and sane.
  testing::WorkloadSpec spec;
  spec.rows = 400;
  spec.value_lo = 1e9;
  spec.value_hi = 1e9 + 1e-3;
  spec.min_width = 1e-6;
  spec.initial_half_width_lo = 1e-4;
  spec.initial_half_width_hi = 5e-4;
  const testing::Workload workload = testing::MakeWorkload(spec, 12);

  SampledAggregateOptions options;
  options.spec.confidence = 0.95;
  options.spec.target_rel_error = 1e-15;  // unreachable: exhaust the cap
  options.spec.seed = 12;
  options.spec.initial_samples = 16;
  options.spec.max_samples = 64;
  options.epsilon = 1e-9;
  WorkMeter meter;
  const auto* function = workload.function.get();
  auto task = SampledSumTask::Create(
                  options, spec.rows,
                  [function, &meter](std::size_t row) {
                    return function->Invoke({static_cast<double>(row)},
                                            &meter);
                  },
                  [](std::size_t) { return 1.0; })
                  .ValueOrDie();
  operators::OperatorOptions drive;
  drive.meter = &meter;
  ASSERT_TRUE(operators::DriveTask(task.get(), drive).ok());

  const vao::Answer answer = task->Snapshot().answer;
  ASSERT_LT(answer.sample_size, static_cast<std::size_t>(spec.rows));
  // The true per-row spread is ~1e-3, so the correct CLT width at n=64 of
  // N=400 is well under 1.0; naive-cancellation failure modes land at
  // exactly 0 or in the hundreds-to-thousands.
  EXPECT_GT(answer.sampling_width, 0.0);
  EXPECT_LT(answer.sampling_width, 1.0);
  NeumaierSum truth;
  for (const double v : workload.true_values) truth.Add(v);
  EXPECT_TRUE(answer.Contains(truth.Sum())) << answer << " vs "
                                            << truth.Sum();
}

// ---------------------------------------------------------------------------
// Executor integration: the approximate tier behind Query::approx.

TEST(ApproxExecutorTest, SampledSumThroughCqExecutor) {
  testing::WorkloadSpec spec;
  spec.rows = 300;
  spec.value_lo = 50.0;
  spec.value_hi = 150.0;
  const testing::Workload workload = testing::MakeWorkload(spec, 78);

  engine::Query query;
  query.kind = engine::QueryKind::kSum;
  query.function = workload.function.get();
  query.args = {engine::ArgRef::RelationField("id")};
  query.epsilon = 1.0;
  engine::ApproxSpec approx;
  approx.confidence = 0.95;
  approx.target_rel_error = 0.05;
  approx.seed = 78;
  query.approx = approx;

  auto executor = engine::CqExecutor::Create(&workload.relation,
                                             engine::Schema{}, query,
                                             engine::ExecutionMode::kVao, 1)
                      .ValueOrDie();
  const engine::TickResult tick = executor->ProcessTick({}).ValueOrDie();
  const vao::Answer& answer = tick.aggregate_bounds;
  EXPECT_TRUE(answer.approximate());
  EXPECT_GT(answer.sample_size, 0u);
  EXPECT_EQ(answer.population_size, 300u);
  EXPECT_EQ(tick.report.answer_mode, "approximate");
  EXPECT_EQ(tick.report.sample_size, answer.sample_size);
  EXPECT_EQ(tick.report.rows_scanned, answer.sample_size);

  NeumaierSum truth;
  for (const double v : workload.true_values) truth.Add(v);
  EXPECT_TRUE(answer.Contains(truth.Sum())) << answer << " vs "
                                            << truth.Sum();
}

TEST(ApproxExecutorTest, ApproxRequiresVaoModeAndAggregateKind) {
  testing::WorkloadSpec spec;
  spec.rows = 10;
  const testing::Workload workload = testing::MakeWorkload(spec, 1);

  engine::Query query;
  query.kind = engine::QueryKind::kSum;
  query.function = workload.function.get();
  query.args = {engine::ArgRef::RelationField("id")};
  query.approx = engine::ApproxSpec{};

  EXPECT_FALSE(engine::CqExecutor::Create(&workload.relation, engine::Schema{},
                                          query,
                                          engine::ExecutionMode::kTraditional,
                                          1)
                   .ok());
  engine::Query select = query;
  select.kind = engine::QueryKind::kSelect;
  EXPECT_FALSE(engine::CqExecutor::Create(&workload.relation, engine::Schema{},
                                          select, engine::ExecutionMode::kVao,
                                          1)
                   .ok());
  engine::Query bad_conf = query;
  bad_conf.approx->confidence = 1.0;
  EXPECT_FALSE(engine::CqExecutor::Create(&workload.relation, engine::Schema{},
                                          bad_conf,
                                          engine::ExecutionMode::kVao, 1)
                   .ok());
}

TEST(ApproxExecutorTest, ApproxTopKSamplesAndMapsWinners) {
  testing::WorkloadSpec spec;
  spec.rows = 120;
  const testing::Workload workload = testing::MakeWorkload(spec, 13);

  engine::Query query;
  query.kind = engine::QueryKind::kTopK;
  query.k = 3;
  query.function = workload.function.get();
  query.args = {engine::ArgRef::RelationField("id")};
  query.epsilon = 0.5;
  engine::ApproxSpec approx;
  approx.seed = 13;
  approx.max_samples = 40;
  query.approx = approx;

  auto executor = engine::CqExecutor::Create(&workload.relation,
                                             engine::Schema{}, query,
                                             engine::ExecutionMode::kVao, 1)
                      .ValueOrDie();
  const engine::TickResult tick = executor->ProcessTick({}).ValueOrDie();
  EXPECT_EQ(tick.top_rows.size(), 3u);
  std::set<std::size_t> rows(tick.top_rows.begin(), tick.top_rows.end());
  EXPECT_EQ(rows.size(), 3u);
  for (const std::size_t row : tick.top_rows) EXPECT_LT(row, 120u);
  const vao::Answer& answer = tick.aggregate_bounds;
  EXPECT_TRUE(answer.approximate());
  EXPECT_EQ(answer.sample_size, 40u);
  EXPECT_EQ(answer.population_size, 120u);
  // The winners' bounds must contain their rows' true values: sampling
  // limits which rows compete, not the soundness of their intervals.
  for (std::size_t i = 0; i < tick.top_rows.size(); ++i) {
    EXPECT_TRUE(
        tick.top_bounds[i].Contains(workload.true_values[tick.top_rows[i]]));
  }
}

}  // namespace
}  // namespace vaolib
