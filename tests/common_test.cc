// Unit tests for src/common: Status, Result, macros, Bounds, Rng, stats,
// WorkMeter, TableWriter.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/bounds.h"
#include "common/macros.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "common/work_meter.h"

namespace vaolib {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotConverged), "not-converged");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNumericError), "numeric-error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource-exhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "internal");
}

TEST(StatusTest, WithContextPrepends) {
  const Status s = Status::NotFound("row 3").WithContext("scanning BD");
  EXPECT_EQ(s.message(), "scanning BD: row 3");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, IsChecksCode) {
  EXPECT_TRUE(Status::OutOfRange("x").Is(StatusCode::kOutOfRange));
  EXPECT_FALSE(Status::OutOfRange("x").Is(StatusCode::kNotFound));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "internal: boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  VAOLIB_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  VAOLIB_ASSIGN_OR_RETURN(const int quarter, HalveEven(half));
  return quarter;
}

Status CheckPositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return Status::OK();
}

Status CheckBoth(int x, int y) {
  VAOLIB_RETURN_IF_ERROR(CheckPositive(x));
  VAOLIB_RETURN_IF_ERROR(CheckPositive(y));
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterViaMacro(8).ValueOrDie(), 2);
  EXPECT_EQ(QuarterViaMacro(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(QuarterViaMacro(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 1).ok());
  EXPECT_FALSE(CheckBoth(-1, 1).ok());
  EXPECT_FALSE(CheckBoth(1, -1).ok());
}

TEST(BoundsTest, BasicAccessors) {
  const Bounds b(2.0, 6.0);
  EXPECT_DOUBLE_EQ(b.Width(), 4.0);
  EXPECT_DOUBLE_EQ(b.Mid(), 4.0);
  EXPECT_TRUE(b.Contains(2.0));
  EXPECT_TRUE(b.Contains(6.0));
  EXPECT_FALSE(b.Contains(6.0001));
  EXPECT_TRUE(b.IsValid());
}

TEST(BoundsTest, CenteredAndPoint) {
  EXPECT_EQ(Bounds::Centered(5.0, 2.0), Bounds(3.0, 7.0));
  EXPECT_DOUBLE_EQ(Bounds::Point(3.0).Width(), 0.0);
}

TEST(BoundsTest, OverlapWidth) {
  EXPECT_DOUBLE_EQ(Bounds(0, 4).OverlapWidth(Bounds(2, 8)), 2.0);
  EXPECT_DOUBLE_EQ(Bounds(0, 4).OverlapWidth(Bounds(5, 8)), 0.0);
  EXPECT_DOUBLE_EQ(Bounds(0, 10).OverlapWidth(Bounds(3, 5)), 2.0);
  EXPECT_TRUE(Bounds(0, 4).Overlaps(Bounds(4, 8)));  // touching counts
  EXPECT_FALSE(Bounds(0, 4).Overlaps(Bounds(4.01, 8)));
}

TEST(BoundsTest, Ordering) {
  EXPECT_TRUE(Bounds(5, 6).EntirelyAbove(Bounds(1, 4)));
  EXPECT_FALSE(Bounds(5, 6).EntirelyAbove(Bounds(1, 5)));
  EXPECT_TRUE(Bounds(1, 4).EntirelyBelow(Bounds(5, 6)));
}

TEST(BoundsTest, ContainsInterval) {
  EXPECT_TRUE(Bounds(0, 10).Contains(Bounds(2, 8)));
  EXPECT_FALSE(Bounds(0, 10).Contains(Bounds(2, 11)));
}

TEST(BoundsTest, InvalidOnNanOrInverted) {
  EXPECT_FALSE(Bounds(2.0, 1.0).IsValid());
  EXPECT_FALSE(Bounds(std::nan(""), 1.0).IsValid());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_NE(a.NextUint64(), c.NextUint64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveAndUnbiased) {
  Rng rng(11);
  int counts[6] = {0};
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gaussian(2.0, 3.0));
  EXPECT_NEAR(stats.Mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.StdDev(), 3.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Exponential(0.5));
  EXPECT_NEAR(stats.Mean(), 2.0, 0.05);
  EXPECT_GE(stats.Min(), 0.0);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, 25000, 700);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  const auto perm = rng.Permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<bool> seen(100, false);
  for (const auto i : perm) {
    ASSERT_LT(i, 100u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.Sum(), 40.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
}

TEST(QuantileTest, InterpolatesOrderStatistics) {
  const std::vector<double> values{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 2.0);
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
}

TEST(WorkMeterTest, ChargesByKind) {
  WorkMeter meter;
  meter.Charge(WorkKind::kExec, 10);
  meter.Charge(WorkKind::kExec, 5);
  meter.Charge(WorkKind::kChooseIter, 3);
  EXPECT_EQ(meter.Count(WorkKind::kExec), 15u);
  EXPECT_EQ(meter.ExecUnits(), 15u);
  EXPECT_EQ(meter.Count(WorkKind::kChooseIter), 3u);
  EXPECT_EQ(meter.Total(), 18u);
}

TEST(WorkMeterTest, MergeAndReset) {
  WorkMeter a, b;
  a.Charge(WorkKind::kExec, 7);
  b.Charge(WorkKind::kGetState, 2);
  a.Merge(b);
  EXPECT_EQ(a.Total(), 9u);
  a.Reset();
  EXPECT_EQ(a.Total(), 0u);
}

TEST(TableWriterTest, RendersAlignedText) {
  TableWriter table("demo", {"name", "value"});
  table.AddRow({"alpha", TableWriter::Cell(1.5, 2)});
  table.AddRow({"b", TableWriter::Cell(std::uint64_t{42})});
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream os;
  table.RenderText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
}

TEST(TableWriterTest, RendersCsvWithEscaping) {
  TableWriter table("t", {"a", "b"});
  table.AddRow({"x,y", "plain"});
  std::ostringstream os;
  table.RenderCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",plain\n");
}

TEST(TableWriterTest, ShortRowsPadded) {
  TableWriter table("t", {"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.RenderCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}


TEST(LoggingTest, LevelGateAndRestore) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages must be cheap no-ops (no crash, no output
  // assertions possible here, but the stream path is exercised).
  VAOLIB_LOG(Debug) << "suppressed " << 42;
  VAOLIB_LOG(Info) << "suppressed too";
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(StopwatchTest, ElapsedIsMonotonicAndRestartable) {
  Stopwatch stopwatch;
  const double first = stopwatch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double second = stopwatch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(stopwatch.ElapsedMillis(), second * 1e3,
              second * 1e3 * 0.5 + 1.0);
  stopwatch.Restart();
  EXPECT_LE(stopwatch.ElapsedSeconds(), second + 1.0);
}

}  // namespace
}  // namespace vaolib
