// Tests for the CASPER-style predicate result range cache (Section 2's
// future-work integration) and the range-cached selection operator.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "finance/bond_model.h"
#include "operators/predicate_range_cache.h"
#include "workload/portfolio_gen.h"

namespace vaolib::operators {
namespace {

TEST(PredicateRangeCacheTest, UnknownUntilRecorded) {
  PredicateRangeCache cache(3);
  EXPECT_FALSE(cache.Lookup(0, 0.05).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(PredicateRangeCacheTest, PassExtendsDownFailExtendsUp) {
  PredicateRangeCache cache(1);
  cache.Record(0, 0.05, /*passes=*/true);
  // True for all s <= 0.05.
  EXPECT_EQ(cache.Lookup(0, 0.05), std::optional<bool>(true));
  EXPECT_EQ(cache.Lookup(0, 0.01), std::optional<bool>(true));
  EXPECT_FALSE(cache.Lookup(0, 0.06).has_value());

  cache.Record(0, 0.08, /*passes=*/false);
  // False for all s >= 0.08; the gap (0.05, 0.08) stays unknown.
  EXPECT_EQ(cache.Lookup(0, 0.09), std::optional<bool>(false));
  EXPECT_EQ(cache.Lookup(0, 0.08), std::optional<bool>(false));
  EXPECT_FALSE(cache.Lookup(0, 0.06).has_value());
}

TEST(PredicateRangeCacheTest, ThresholdsOnlyWiden) {
  PredicateRangeCache cache(1);
  cache.Record(0, 0.05, true);
  cache.Record(0, 0.03, true);  // weaker information; must not shrink
  EXPECT_EQ(cache.Lookup(0, 0.04), std::optional<bool>(true));
  cache.Record(0, 0.06, true);  // stronger; widens
  EXPECT_EQ(cache.Lookup(0, 0.055), std::optional<bool>(true));
}

TEST(PredicateRangeCacheTest, KeysAreIndependent) {
  PredicateRangeCache cache(2);
  cache.Record(0, 0.05, true);
  EXPECT_TRUE(cache.Lookup(0, 0.04).has_value());
  EXPECT_FALSE(cache.Lookup(1, 0.04).has_value());
}

TEST(PredicateRangeCacheTest, OutOfRangeKeysSafe) {
  PredicateRangeCache cache(1);
  cache.Record(7, 0.05, true);  // ignored
  EXPECT_FALSE(cache.Lookup(7, 0.04).has_value());
}

class RangeCachedSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 4;
    function_ = std::make_unique<finance::BondPricingFunction>(
        workload::GeneratePortfolio(99, spec), finance::BondModelConfig{});
  }
  std::unique_ptr<finance::BondPricingFunction> function_;
};

TEST_F(RangeCachedSelectionTest, MonotonicityAnswersNewRatesForFree) {
  // Bond prices decrease in the rate, so "price > 100" is true-below.
  RangeCachedSelection selection(Comparator::kGreaterThan, 100.0,
                                 /*keys=*/4, Monotonicity::kDecreasing);
  WorkMeter meter;

  // Evaluate every bond at 5.75%: pays function work.
  std::vector<bool> at_575;
  for (std::size_t key = 0; key < 4; ++key) {
    const auto outcome = selection.Evaluate(*function_, 0.0575, key, &meter);
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->from_cache);
    at_575.push_back(outcome->passes);
  }
  const std::uint64_t paid = meter.Total();
  EXPECT_GT(paid, 0u);

  // A LOWER rate makes every price higher: every pass at 5.75% is known to
  // pass at 5.00% with zero work. (Fails at 5.75% are not implied.)
  for (std::size_t key = 0; key < 4; ++key) {
    if (!at_575[key]) continue;
    const auto outcome = selection.Evaluate(*function_, 0.05, key, &meter);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->from_cache) << "key " << key;
    EXPECT_TRUE(outcome->passes);
  }
  EXPECT_EQ(meter.Total(), paid);  // no additional work

  // A HIGHER rate makes every price lower: fails at 5.75% stay fails.
  for (std::size_t key = 0; key < 4; ++key) {
    if (at_575[key]) continue;
    const auto outcome = selection.Evaluate(*function_, 0.065, key, &meter);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->from_cache);
    EXPECT_FALSE(outcome->passes);
  }
  EXPECT_EQ(meter.Total(), paid);
}

TEST_F(RangeCachedSelectionTest, GapRatesStillEvaluate) {
  RangeCachedSelection selection(Comparator::kGreaterThan, 100.0, 4,
                                 Monotonicity::kDecreasing);
  WorkMeter meter;
  ASSERT_TRUE(selection.Evaluate(*function_, 0.05, 0, &meter).ok());
  const std::uint64_t after_first = meter.Total();
  // A rate on the other side of the recorded point is (generally) unknown.
  const auto outcome = selection.Evaluate(*function_, 0.07, 0, &meter);
  ASSERT_TRUE(outcome.ok());
  if (!outcome->from_cache) {
    EXPECT_GT(meter.Total(), after_first);
  }
}

TEST_F(RangeCachedSelectionTest, AgreesWithPlainVaoAcrossRateSweep) {
  RangeCachedSelection cached(Comparator::kGreaterThan, 100.0, 4,
                              Monotonicity::kDecreasing);
  const SelectionVao plain(Comparator::kGreaterThan, 100.0);
  Rng rng(5);
  WorkMeter cached_meter, plain_meter;
  for (int i = 0; i < 30; ++i) {
    const double rate = rng.Uniform(0.03, 0.10);
    for (std::size_t key = 0; key < 4; ++key) {
      const auto a = cached.Evaluate(*function_, rate, key, &cached_meter);
      const auto b = plain.Evaluate(
          *function_, {rate, static_cast<double>(key)}, &plain_meter);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      if (!b->resolved_as_equal) {
        EXPECT_EQ(a->passes, b->passes)
            << "rate " << rate << " key " << key;
      }
    }
  }
  // The cache must have converted a large share of evaluations into free
  // lookups.
  EXPECT_GT(cached.cache().hits(), 40u);
  EXPECT_LT(cached_meter.Total(), plain_meter.Total() / 2);
}

}  // namespace
}  // namespace vaolib::operators
