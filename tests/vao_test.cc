// Unit tests for src/vao: the iterative UDF interface over each solver
// class, the shifted decorator, and the calibrated black-box baseline.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numbers>
#include <thread>
#include <vector>

#include "vao/black_box.h"
#include "vao/function_cache.h"
#include "vao/parallel.h"
#include "vao/integral_result_object.h"
#include "vao/ode_result_object.h"
#include "vao/pde_result_object.h"
#include "vao/root_result_object.h"
#include "vao/shifted_result_object.h"
#include "fake_result_object.h"

namespace vaolib::vao {
namespace {

// Constant-reaction PDE with closed form (C/r)(1 - e^{-rT}), x-independent.
numeric::Pde1dProblem AnnuityProblem(double rbar, double c, double t_end) {
  numeric::Pde1dProblem p;
  p.diffusion = [](double) { return 1e-3; };
  p.convection = [](double x) { return 0.01 - 0.2 * x; };
  p.reaction = [rbar](double) { return rbar; };
  p.source = [c](double) { return c; };
  p.terminal = [](double) { return 0.0; };
  p.x_min = 0.0;
  p.x_max = 0.12;
  p.t_end = t_end;
  return p;
}

double AnnuityValue(double rbar, double c, double t_end) {
  return c / rbar * (1.0 - std::exp(-rbar * t_end));
}

TEST(PdeResultObjectTest, BoundsContainClosedFormAtEveryIteration) {
  const double truth = AnnuityValue(0.06, 23.0, 5.0);
  WorkMeter meter;
  auto made = PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                      {}, &meter);
  ASSERT_TRUE(made.ok()) << made.status();
  ResultObject* object = made->get();
  for (int i = 0; i < 12 && !object->AtStoppingCondition(); ++i) {
    EXPECT_TRUE(object->bounds().Contains(truth))
        << "iteration " << i << " bounds " << object->bounds();
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_TRUE(object->bounds().Contains(truth));
  EXPECT_NEAR(object->bounds().Mid(), truth, 0.02);
}

TEST(PdeResultObjectTest, WidthShrinksMonotonically) {
  WorkMeter meter;
  auto made = PdeResultObject::Create(AnnuityProblem(0.05, 20.0, 4.0), 0.06,
                                      {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  double prev = object->bounds().Width();
  for (int i = 0; i < 10 && !object->AtStoppingCondition(); ++i) {
    ASSERT_TRUE(object->Iterate().ok());
    EXPECT_LE(object->bounds().Width(), prev * 1.05)
        << "iteration " << i;
    prev = object->bounds().Width();
  }
}

TEST(PdeResultObjectTest, IterationWorkRoughlyDoubles) {
  // Section 4.1: each iteration requires about twice the work of the one
  // before, so the converge total is ~2x the final (traditional) solve.
  WorkMeter meter;
  auto made = PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                      {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  ASSERT_TRUE(ConvergeToMinWidth(object).ok());
  const double ratio = static_cast<double>(meter.ExecUnits()) /
                       static_cast<double>(object->traditional_cost());
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 3.5);
}

TEST(PdeResultObjectTest, EstCostTracksNextGrid) {
  WorkMeter meter;
  auto made =
      PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05, {},
                              &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t predicted = object->est_cost();
    const std::uint64_t before = meter.ExecUnits();
    ASSERT_TRUE(object->Iterate().ok());
    const std::uint64_t actual = meter.ExecUnits() - before;
    EXPECT_EQ(predicted, actual) << "iteration " << i;
  }
}

TEST(PdeResultObjectTest, MaxIterationsExhausts) {
  PdeResultOptions options;
  options.max_iterations = 2;
  options.min_width = 1e-12;  // unreachable
  WorkMeter meter;
  auto made = PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                      options, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  ASSERT_TRUE(object->Iterate().ok());
  ASSERT_TRUE(object->Iterate().ok());
  EXPECT_EQ(object->Iterate().code(), StatusCode::kResourceExhausted);
}

TEST(PdeResultObjectTest, RejectsBadOptions) {
  PdeResultOptions bad;
  bad.min_width = 0.0;
  EXPECT_FALSE(PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                       bad, nullptr)
                   .ok());
  PdeResultOptions bad2;
  bad2.safety_factor = 0.5;
  EXPECT_FALSE(PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                       bad2, nullptr)
                   .ok());
}

TEST(PdeFunctionTest, InvokeBuildsObjects) {
  PdeFunction function(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
  EXPECT_EQ(function.name(), "annuity");
  EXPECT_EQ(function.arity(), 1);
  WorkMeter meter;
  auto object = function.Invoke({0.05}, &meter);
  ASSERT_TRUE(object.ok());
  EXPECT_GT((*object)->bounds().Width(), 0.0);
  EXPECT_FALSE(function.Invoke({0.05, 0.06}, &meter).ok());  // wrong arity
}

TEST(OdeResultObjectTest, BoundsContainClosedForm) {
  // w'' = w, w(0)=0, w(1)=1: w(0.5) = sinh(.5)/sinh(1).
  numeric::OdeBvpProblem p;
  p.p = [](double) { return 0.0; };
  p.q = [](double) { return 1.0; };
  p.r = [](double) { return 0.0; };
  p.a = 0.0;
  p.b = 1.0;
  p.alpha = 0.0;
  p.beta = 1.0;
  const double truth = std::sinh(0.5) / std::sinh(1.0);

  WorkMeter meter;
  auto made = OdeResultObject::Create(p, 0.5, {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  for (int i = 0; i < 8 && !object->AtStoppingCondition(); ++i) {
    EXPECT_TRUE(object->bounds().Contains(truth))
        << "iteration " << i << " bounds " << object->bounds();
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_NEAR(object->bounds().Mid(), truth, 1e-6);
}

TEST(OdeResultObjectTest, ConvergesToMinWidth) {
  numeric::OdeBvpProblem p = numeric::MakeBeamDeflectionProblem(
      500.0, 1e7, 0.1, 100.0, 10.0);
  OdeResultOptions options;
  options.min_width = 1e-7;
  WorkMeter meter;
  auto made = OdeResultObject::Create(p, 5.0, options, &meter);
  ASSERT_TRUE(made.ok());
  auto steps = ConvergeToMinWidth(made->get());
  ASSERT_TRUE(steps.ok());
  EXPECT_LT((*made)->bounds().Width(), 1e-7);
}

TEST(IntegralResultObjectTest, BoundsContainTruthAndConverge) {
  IntegralProblem problem;
  problem.integrand = [](double x) { return std::sin(x); };
  problem.a = 0.0;
  problem.b = std::numbers::pi;
  IntegralResultOptions options;
  options.min_width = 1e-6;

  WorkMeter meter;
  auto made = IntegralResultObject::Create(problem, options, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  while (!object->AtStoppingCondition()) {
    EXPECT_TRUE(object->bounds().Contains(2.0)) << object->bounds();
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_NEAR(object->bounds().Mid(), 2.0, 1e-6);
  // cost_trad == cumulative evaluations for integrators (Section 4.3).
  EXPECT_EQ(object->traditional_cost(), meter.ExecUnits());
}

TEST(IntegralResultObjectTest, EstCostMatchesActual) {
  IntegralProblem problem;
  problem.integrand = [](double x) { return std::exp(x); };
  problem.a = 0.0;
  problem.b = 1.0;
  WorkMeter meter;
  auto made = IntegralResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t predicted = object->est_cost();
    const std::uint64_t before = meter.ExecUnits();
    ASSERT_TRUE(object->Iterate().ok());
    EXPECT_EQ(meter.ExecUnits() - before, predicted);
  }
}

TEST(RootResultObjectTest, BracketIsTheBound) {
  RootProblem problem;
  problem.f = [](double x) { return x * x - 2.0; };
  problem.lo = 0.0;
  problem.hi = 2.0;
  WorkMeter meter;
  auto made = RootResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  const double root = std::sqrt(2.0);
  while (!object->AtStoppingCondition()) {
    EXPECT_TRUE(object->bounds().Contains(root));
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_NEAR(object->bounds().Mid(), root, 1e-9);
}

TEST(RootResultObjectTest, TraditionalCostIsCumulative) {
  RootProblem problem;
  problem.f = [](double x) { return std::cos(x) - x; };
  problem.lo = 0.0;
  problem.hi = 1.5;
  WorkMeter meter;
  auto made = RootResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(made.ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE((*made)->Iterate().ok());
  EXPECT_EQ((*made)->traditional_cost(), meter.ExecUnits());
}

TEST(ShiftedResultObjectTest, ShiftsBoundsNotBehaviour) {
  testing::FakeResultObject::Config config;
  config.true_value = 100.0;
  config.initial_half_width = 8.0;
  auto inner = std::make_unique<testing::FakeResultObject>(config);
  auto* inner_raw = inner.get();
  ShiftedResultObject shifted(std::move(inner), -25.0);

  EXPECT_DOUBLE_EQ(shifted.bounds().Mid(), inner_raw->bounds().Mid() - 25.0);
  EXPECT_DOUBLE_EQ(shifted.bounds().Width(), inner_raw->bounds().Width());
  EXPECT_EQ(shifted.min_width(), inner_raw->min_width());
  EXPECT_EQ(shifted.est_cost(), inner_raw->est_cost());
  EXPECT_DOUBLE_EQ(shifted.est_bounds().Mid(),
                   inner_raw->est_bounds().Mid() - 25.0);

  ASSERT_TRUE(shifted.Iterate().ok());
  EXPECT_EQ(shifted.iterations(), 1);
  EXPECT_EQ(inner_raw->iterations(), 1);
  EXPECT_TRUE(shifted.bounds().Contains(75.0));  // shifted true value
}

TEST(ConvergeToMinWidthTest, StopsAtFloorAndCountsSteps) {
  testing::FakeResultObject::Config config;
  config.initial_half_width = 8.0;  // width 16; floor 0.01
  config.shrink = 0.5;
  testing::FakeResultObject object(config);
  const auto steps = ConvergeToMinWidth(&object);
  ASSERT_TRUE(steps.ok());
  EXPECT_LT(object.bounds().Width(), 0.01);
  EXPECT_EQ(*steps, object.iterations());
  EXPECT_EQ(ConvergeToMinWidth(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CalibratedBlackBoxTest, CallReturnsConvergedValueAndChargesTradCost) {
  PdeFunction function(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
  CalibratedBlackBox black_box(&function);

  WorkMeter meter;
  auto value = black_box.Call({0.05}, &meter);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(*value, AnnuityValue(0.06, 23.0, 5.0), 0.02);
  EXPECT_GT(meter.ExecUnits(), 0u);

  const auto record = black_box.Calibrate({0.05});
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(meter.ExecUnits(), record->cost);
  EXPECT_LT(record->final_width, 0.01);
  EXPECT_GT(record->iterations, 0);
}

TEST(CalibratedBlackBoxTest, CalibrationIsCachedPerArgs) {
  PdeFunction function(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
  CalibratedBlackBox black_box(&function);
  ASSERT_TRUE(black_box.Call({0.05}, nullptr).ok());
  EXPECT_EQ(black_box.cache_size(), 1u);
  ASSERT_TRUE(black_box.Call({0.05}, nullptr).ok());
  EXPECT_EQ(black_box.cache_size(), 1u);
  ASSERT_TRUE(black_box.Call({0.06}, nullptr).ok());
  EXPECT_EQ(black_box.cache_size(), 2u);
}

TEST(CalibratedBlackBoxTest, BlackBoxCostBelowVaoConvergeCost) {
  // The whole point of the Section 6 baseline: a one-shot solve at the
  // calibrated step sizes costs less than converging through the VAO
  // interface (which pays for all intermediate iterations).
  PdeFunction function(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
  CalibratedBlackBox black_box(&function);
  WorkMeter trad_meter;
  ASSERT_TRUE(black_box.Call({0.05}, &trad_meter).ok());

  WorkMeter vao_meter;
  auto object = function.Invoke({0.05}, &vao_meter);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(ConvergeToMinWidth(object->get()).ok());
  EXPECT_LT(trad_meter.ExecUnits(), vao_meter.ExecUnits());
}

// --- Concurrency stress tests (runnable under TSan, scripts/check_tsan.sh).

PdeFunction MakeAnnuityFunction() {
  return PdeFunction(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
}

TEST(BoundsCacheConcurrencyTest, ConcurrentLookupUpdateKeepsExactCounters) {
  BoundsCache cache(128, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<int> invalid{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &invalid, t]() {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::vector<double> key = {static_cast<double>((op + t) % 16)};
        cache.Update(key, Bounds(-1.0 - op, 1.0 + op), 1e-3);
        const auto entry = cache.Lookup(key);
        if (entry.has_value() && !entry->bounds.IsValid()) ++invalid;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(invalid.load(), 0);
  // One Lookup per op; counters are aggregated under shard locks, so after
  // the writers quiesce the totals are exact, not approximate.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(cache.size(), 16u);  // 16 distinct keys, capacity far larger
}

TEST(BoundsCacheConcurrencyTest, ColdMissStormStaysExactAndLockFree) {
  // Regression for the reader-writer miss path: Lookup misses used to take
  // the shard's exclusive lock, convoying every pool worker during a cold
  // InvokeAll. Misses now probe under a shared lock with atomic counters.
  // Hammer a miss-heavy mix (most keys never inserted) concurrently with
  // inserts and evictions on a deliberately tiny cache, then check the
  // counters still balance exactly.
  BoundsCache cache(/*capacity=*/8, /*shard_count=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> invalid{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &invalid, t]() {
      for (int op = 0; op < kOpsPerThread; ++op) {
        // 1 insert per 8 lookups over a key space 64x the capacity: almost
        // every probe is a miss, and inserts keep evicting concurrently.
        const std::vector<double> key = {
            static_cast<double>((op * 7 + t * 131) % 512)};
        if (op % 8 == 0) {
          cache.Update(key, Bounds(-2.0, 2.0), 1e-3);
        }
        const auto entry = cache.Lookup(key);
        if (entry.has_value() && !entry->bounds.IsValid()) ++invalid;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(invalid.load(), 0);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(cache.size(), 8u);
}

TEST(BoundsCacheConcurrencyTest, WriteBackSafeWhenObjectsDieOnWorkers) {
  // Regression: write-back result objects used to race on destruction when
  // a worker thread destroyed them while another thread was looking the
  // same key up. Hammer exactly that pattern, then prove the cache is still
  // sound: bounds served afterwards must contain the closed-form value.
  const PdeFunction function = MakeAnnuityFunction();
  const CachingFunction cached(&function);
  const double truth = AnnuityValue(0.06, 23.0, 5.0);
  constexpr int kKeys = 8;

  WorkMeter meter;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cached, &meter, &failures]() {
      for (int round = 0; round < 5; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          auto object = cached.Invoke({0.02 + 0.01 * k}, &meter);
          if (!object.ok()) {
            ++failures;
            continue;
          }
          for (int i = 0; i < 2 && !(*object)->AtStoppingCondition(); ++i) {
            if (!(*object)->Iterate().ok()) ++failures;
          }
          // Destroyed here, on this worker thread: the write-back races
          // against the other threads' lookups of the same keys.
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  EXPECT_EQ(cached.cache().size(), static_cast<std::size_t>(kKeys));
  constexpr std::uint64_t kInvokes = 4ull * 5 * kKeys;
  EXPECT_EQ(cached.cache().hits() + cached.cache().misses(), kInvokes);
  for (int k = 0; k < kKeys; ++k) {
    auto object = cached.Invoke({0.02 + 0.01 * k}, &meter);
    ASSERT_TRUE(object.ok());
    EXPECT_TRUE((*object)->bounds().Contains(truth)) << "key " << k;
  }
}

TEST(CachingFunctionConcurrencyTest, ConcurrentInvokeAllIsDeterministic) {
  // Two identical caching wrappers over the same inner function, one driven
  // serially, one with four pool workers: the lifted restriction means the
  // parallel run must charge bit-identical work units.
  const PdeFunction function = MakeAnnuityFunction();
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 32; ++i) rows.push_back({0.02 + 0.01 * (i % 8)});

  auto run = [&rows](const CachingFunction& cached, int threads,
                     WorkMeter* meter) {
    auto objects = InvokeAll(cached, rows, threads, meter);
    ASSERT_TRUE(objects.ok()) << objects.status();
    std::vector<ResultObject*> raw;
    for (const auto& object : *objects) raw.push_back(object.get());
    ASSERT_TRUE(ConvergeAllToMinWidth(raw, threads).ok());
  };

  const CachingFunction serial_cached(&function);
  const CachingFunction parallel_cached(&function);
  WorkMeter serial_meter, parallel_meter;
  run(serial_cached, 1, &serial_meter);
  run(parallel_cached, 4, &parallel_meter);
  EXPECT_EQ(serial_meter.Total(), parallel_meter.Total());
  for (int kind = 0; kind < WorkMeter::kNumKinds; ++kind) {
    EXPECT_EQ(serial_meter.Count(static_cast<WorkKind>(kind)),
              parallel_meter.Count(static_cast<WorkKind>(kind)))
        << "kind " << kind;
  }

  // Second round against the warm parallel cache: every distinct key is
  // converged, so creation is served from the cache for free.
  const double truth = AnnuityValue(0.06, 23.0, 5.0);
  WorkMeter second_meter;
  auto objects = InvokeAll(parallel_cached, rows, 4, &second_meter);
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ(second_meter.Total(), 0u);
  for (const auto& object : *objects) {
    EXPECT_TRUE(object->bounds().Contains(truth));
    EXPECT_TRUE(object->AtStoppingCondition());
  }
}

}  // namespace
}  // namespace vaolib::vao
