// Unit tests for src/vao: the iterative UDF interface over each solver
// class, the shifted decorator, and the calibrated black-box baseline.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "vao/black_box.h"
#include "vao/integral_result_object.h"
#include "vao/ode_result_object.h"
#include "vao/pde_result_object.h"
#include "vao/root_result_object.h"
#include "vao/shifted_result_object.h"
#include "fake_result_object.h"

namespace vaolib::vao {
namespace {

// Constant-reaction PDE with closed form (C/r)(1 - e^{-rT}), x-independent.
numeric::Pde1dProblem AnnuityProblem(double rbar, double c, double t_end) {
  numeric::Pde1dProblem p;
  p.diffusion = [](double) { return 1e-3; };
  p.convection = [](double x) { return 0.01 - 0.2 * x; };
  p.reaction = [rbar](double) { return rbar; };
  p.source = [c](double) { return c; };
  p.terminal = [](double) { return 0.0; };
  p.x_min = 0.0;
  p.x_max = 0.12;
  p.t_end = t_end;
  return p;
}

double AnnuityValue(double rbar, double c, double t_end) {
  return c / rbar * (1.0 - std::exp(-rbar * t_end));
}

TEST(PdeResultObjectTest, BoundsContainClosedFormAtEveryIteration) {
  const double truth = AnnuityValue(0.06, 23.0, 5.0);
  WorkMeter meter;
  auto made = PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                      {}, &meter);
  ASSERT_TRUE(made.ok()) << made.status();
  ResultObject* object = made->get();
  for (int i = 0; i < 12 && !object->AtStoppingCondition(); ++i) {
    EXPECT_TRUE(object->bounds().Contains(truth))
        << "iteration " << i << " bounds " << object->bounds();
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_TRUE(object->bounds().Contains(truth));
  EXPECT_NEAR(object->bounds().Mid(), truth, 0.02);
}

TEST(PdeResultObjectTest, WidthShrinksMonotonically) {
  WorkMeter meter;
  auto made = PdeResultObject::Create(AnnuityProblem(0.05, 20.0, 4.0), 0.06,
                                      {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  double prev = object->bounds().Width();
  for (int i = 0; i < 10 && !object->AtStoppingCondition(); ++i) {
    ASSERT_TRUE(object->Iterate().ok());
    EXPECT_LE(object->bounds().Width(), prev * 1.05)
        << "iteration " << i;
    prev = object->bounds().Width();
  }
}

TEST(PdeResultObjectTest, IterationWorkRoughlyDoubles) {
  // Section 4.1: each iteration requires about twice the work of the one
  // before, so the converge total is ~2x the final (traditional) solve.
  WorkMeter meter;
  auto made = PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                      {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  ASSERT_TRUE(ConvergeToMinWidth(object).ok());
  const double ratio = static_cast<double>(meter.ExecUnits()) /
                       static_cast<double>(object->traditional_cost());
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 3.5);
}

TEST(PdeResultObjectTest, EstCostTracksNextGrid) {
  WorkMeter meter;
  auto made =
      PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05, {},
                              &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t predicted = object->est_cost();
    const std::uint64_t before = meter.ExecUnits();
    ASSERT_TRUE(object->Iterate().ok());
    const std::uint64_t actual = meter.ExecUnits() - before;
    EXPECT_EQ(predicted, actual) << "iteration " << i;
  }
}

TEST(PdeResultObjectTest, MaxIterationsExhausts) {
  PdeResultOptions options;
  options.max_iterations = 2;
  options.min_width = 1e-12;  // unreachable
  WorkMeter meter;
  auto made = PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                      options, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  ASSERT_TRUE(object->Iterate().ok());
  ASSERT_TRUE(object->Iterate().ok());
  EXPECT_EQ(object->Iterate().code(), StatusCode::kResourceExhausted);
}

TEST(PdeResultObjectTest, RejectsBadOptions) {
  PdeResultOptions bad;
  bad.min_width = 0.0;
  EXPECT_FALSE(PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                       bad, nullptr)
                   .ok());
  PdeResultOptions bad2;
  bad2.safety_factor = 0.5;
  EXPECT_FALSE(PdeResultObject::Create(AnnuityProblem(0.06, 23.0, 5.0), 0.05,
                                       bad2, nullptr)
                   .ok());
}

TEST(PdeFunctionTest, InvokeBuildsObjects) {
  PdeFunction function(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
  EXPECT_EQ(function.name(), "annuity");
  EXPECT_EQ(function.arity(), 1);
  WorkMeter meter;
  auto object = function.Invoke({0.05}, &meter);
  ASSERT_TRUE(object.ok());
  EXPECT_GT((*object)->bounds().Width(), 0.0);
  EXPECT_FALSE(function.Invoke({0.05, 0.06}, &meter).ok());  // wrong arity
}

TEST(OdeResultObjectTest, BoundsContainClosedForm) {
  // w'' = w, w(0)=0, w(1)=1: w(0.5) = sinh(.5)/sinh(1).
  numeric::OdeBvpProblem p;
  p.p = [](double) { return 0.0; };
  p.q = [](double) { return 1.0; };
  p.r = [](double) { return 0.0; };
  p.a = 0.0;
  p.b = 1.0;
  p.alpha = 0.0;
  p.beta = 1.0;
  const double truth = std::sinh(0.5) / std::sinh(1.0);

  WorkMeter meter;
  auto made = OdeResultObject::Create(p, 0.5, {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  for (int i = 0; i < 8 && !object->AtStoppingCondition(); ++i) {
    EXPECT_TRUE(object->bounds().Contains(truth))
        << "iteration " << i << " bounds " << object->bounds();
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_NEAR(object->bounds().Mid(), truth, 1e-6);
}

TEST(OdeResultObjectTest, ConvergesToMinWidth) {
  numeric::OdeBvpProblem p = numeric::MakeBeamDeflectionProblem(
      500.0, 1e7, 0.1, 100.0, 10.0);
  OdeResultOptions options;
  options.min_width = 1e-7;
  WorkMeter meter;
  auto made = OdeResultObject::Create(p, 5.0, options, &meter);
  ASSERT_TRUE(made.ok());
  auto steps = ConvergeToMinWidth(made->get());
  ASSERT_TRUE(steps.ok());
  EXPECT_LT((*made)->bounds().Width(), 1e-7);
}

TEST(IntegralResultObjectTest, BoundsContainTruthAndConverge) {
  IntegralProblem problem;
  problem.integrand = [](double x) { return std::sin(x); };
  problem.a = 0.0;
  problem.b = std::numbers::pi;
  IntegralResultOptions options;
  options.min_width = 1e-6;

  WorkMeter meter;
  auto made = IntegralResultObject::Create(problem, options, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  while (!object->AtStoppingCondition()) {
    EXPECT_TRUE(object->bounds().Contains(2.0)) << object->bounds();
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_NEAR(object->bounds().Mid(), 2.0, 1e-6);
  // cost_trad == cumulative evaluations for integrators (Section 4.3).
  EXPECT_EQ(object->traditional_cost(), meter.ExecUnits());
}

TEST(IntegralResultObjectTest, EstCostMatchesActual) {
  IntegralProblem problem;
  problem.integrand = [](double x) { return std::exp(x); };
  problem.a = 0.0;
  problem.b = 1.0;
  WorkMeter meter;
  auto made = IntegralResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t predicted = object->est_cost();
    const std::uint64_t before = meter.ExecUnits();
    ASSERT_TRUE(object->Iterate().ok());
    EXPECT_EQ(meter.ExecUnits() - before, predicted);
  }
}

TEST(RootResultObjectTest, BracketIsTheBound) {
  RootProblem problem;
  problem.f = [](double x) { return x * x - 2.0; };
  problem.lo = 0.0;
  problem.hi = 2.0;
  WorkMeter meter;
  auto made = RootResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(made.ok());
  ResultObject* object = made->get();
  const double root = std::sqrt(2.0);
  while (!object->AtStoppingCondition()) {
    EXPECT_TRUE(object->bounds().Contains(root));
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_NEAR(object->bounds().Mid(), root, 1e-9);
}

TEST(RootResultObjectTest, TraditionalCostIsCumulative) {
  RootProblem problem;
  problem.f = [](double x) { return std::cos(x) - x; };
  problem.lo = 0.0;
  problem.hi = 1.5;
  WorkMeter meter;
  auto made = RootResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(made.ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE((*made)->Iterate().ok());
  EXPECT_EQ((*made)->traditional_cost(), meter.ExecUnits());
}

TEST(ShiftedResultObjectTest, ShiftsBoundsNotBehaviour) {
  testing::FakeResultObject::Config config;
  config.true_value = 100.0;
  config.initial_half_width = 8.0;
  auto inner = std::make_unique<testing::FakeResultObject>(config);
  auto* inner_raw = inner.get();
  ShiftedResultObject shifted(std::move(inner), -25.0);

  EXPECT_DOUBLE_EQ(shifted.bounds().Mid(), inner_raw->bounds().Mid() - 25.0);
  EXPECT_DOUBLE_EQ(shifted.bounds().Width(), inner_raw->bounds().Width());
  EXPECT_EQ(shifted.min_width(), inner_raw->min_width());
  EXPECT_EQ(shifted.est_cost(), inner_raw->est_cost());
  EXPECT_DOUBLE_EQ(shifted.est_bounds().Mid(),
                   inner_raw->est_bounds().Mid() - 25.0);

  ASSERT_TRUE(shifted.Iterate().ok());
  EXPECT_EQ(shifted.iterations(), 1);
  EXPECT_EQ(inner_raw->iterations(), 1);
  EXPECT_TRUE(shifted.bounds().Contains(75.0));  // shifted true value
}

TEST(ConvergeToMinWidthTest, StopsAtFloorAndCountsSteps) {
  testing::FakeResultObject::Config config;
  config.initial_half_width = 8.0;  // width 16; floor 0.01
  config.shrink = 0.5;
  testing::FakeResultObject object(config);
  const auto steps = ConvergeToMinWidth(&object);
  ASSERT_TRUE(steps.ok());
  EXPECT_LT(object.bounds().Width(), 0.01);
  EXPECT_EQ(*steps, object.iterations());
  EXPECT_EQ(ConvergeToMinWidth(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CalibratedBlackBoxTest, CallReturnsConvergedValueAndChargesTradCost) {
  PdeFunction function(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
  CalibratedBlackBox black_box(&function);

  WorkMeter meter;
  auto value = black_box.Call({0.05}, &meter);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(*value, AnnuityValue(0.06, 23.0, 5.0), 0.02);
  EXPECT_GT(meter.ExecUnits(), 0u);

  const auto record = black_box.Calibrate({0.05});
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(meter.ExecUnits(), record->cost);
  EXPECT_LT(record->final_width, 0.01);
  EXPECT_GT(record->iterations, 0);
}

TEST(CalibratedBlackBoxTest, CalibrationIsCachedPerArgs) {
  PdeFunction function(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
  CalibratedBlackBox black_box(&function);
  ASSERT_TRUE(black_box.Call({0.05}, nullptr).ok());
  EXPECT_EQ(black_box.cache_size(), 1u);
  ASSERT_TRUE(black_box.Call({0.05}, nullptr).ok());
  EXPECT_EQ(black_box.cache_size(), 1u);
  ASSERT_TRUE(black_box.Call({0.06}, nullptr).ok());
  EXPECT_EQ(black_box.cache_size(), 2u);
}

TEST(CalibratedBlackBoxTest, BlackBoxCostBelowVaoConvergeCost) {
  // The whole point of the Section 6 baseline: a one-shot solve at the
  // calibrated step sizes costs less than converging through the VAO
  // interface (which pays for all intermediate iterations).
  PdeFunction function(
      "annuity", 1,
      [](const std::vector<double>& args)
          -> Result<std::pair<numeric::Pde1dProblem, double>> {
        return std::make_pair(AnnuityProblem(0.06, 23.0, 5.0), args[0]);
      },
      {});
  CalibratedBlackBox black_box(&function);
  WorkMeter trad_meter;
  ASSERT_TRUE(black_box.Call({0.05}, &trad_meter).ok());

  WorkMeter vao_meter;
  auto object = function.Invoke({0.05}, &vao_meter);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(ConvergeToMinWidth(object->get()).ok());
  EXPECT_LT(trad_meter.ExecUnits(), vao_meter.ExecUnits());
}

}  // namespace
}  // namespace vaolib::vao
