// Round-trip fuzz for the SQL surface syntax: randomly generated Query
// structs must survive FormatQuery -> ParseQuery unchanged (field for
// field, numbers bit-exact), and an edge-case text corpus (negative
// literals, scientific notation, adversarial whitespace, mixed-case
// keywords) must reach a fixed point after one print/parse cycle.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/sql_parser.h"
#include "testing/workload_gen.h"
#include "vao/synthetic_result_object.h"

namespace vaolib::engine {
namespace {

class SqlRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<vao::SyntheticResultObject::Config> configs(4);
    function_ = std::make_unique<testing::SyntheticTableFunction>(configs);
    ASSERT_TRUE(registry_.Register(function_.get()).ok());
    stream_schema_ = Schema({{"rate", ColumnType::kDouble}});
    relation_schema_ = Schema(
        {{"id", ColumnType::kDouble}, {"weight", ColumnType::kDouble}});
  }

  Result<Query> Parse(const std::string& sql) const {
    return ParseQuery(sql, registry_, stream_schema_, relation_schema_);
  }

  /// Field-for-field equality on everything the query's kind makes
  /// meaningful (unused fields keep defaults on the parse side).
  static void ExpectQueriesEqual(const Query& a, const Query& b) {
    ASSERT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.function, b.function);
    ASSERT_EQ(a.args.size(), b.args.size());
    for (std::size_t i = 0; i < a.args.size(); ++i) {
      EXPECT_EQ(a.args[i].source, b.args[i].source) << "arg " << i;
      EXPECT_EQ(a.args[i].field, b.args[i].field) << "arg " << i;
      if (a.args[i].source == ArgRef::Source::kConstant) {
        // Bit-exact: FormatNumber prints enough digits to round-trip.
        EXPECT_EQ(a.args[i].constant, b.args[i].constant) << "arg " << i;
      }
    }
    EXPECT_EQ(a.epsilon, b.epsilon);
    // The APPROX clause (aggregates only): FormatQuery surfaces
    // confidence/error/seed, and DrawQuery keeps the unsurfaced knobs
    // (initial_samples, max_samples) at their defaults, so the whole spec
    // must survive.
    ASSERT_EQ(a.approx.has_value(), b.approx.has_value());
    if (a.approx.has_value()) {
      EXPECT_EQ(a.approx->confidence, b.approx->confidence);
      EXPECT_EQ(a.approx->target_rel_error, b.approx->target_rel_error);
      EXPECT_EQ(a.approx->seed, b.approx->seed);
      EXPECT_EQ(a.approx->initial_samples, b.approx->initial_samples);
      EXPECT_EQ(a.approx->max_samples, b.approx->max_samples);
    }
    switch (a.kind) {
      case QueryKind::kSelect:
        EXPECT_EQ(a.cmp, b.cmp);
        EXPECT_EQ(a.constant, b.constant);
        break;
      case QueryKind::kSelectRange:
        EXPECT_EQ(a.range_lo, b.range_lo);
        EXPECT_EQ(a.range_hi, b.range_hi);
        EXPECT_EQ(a.range_inclusive, b.range_inclusive);
        break;
      case QueryKind::kSum:
      case QueryKind::kAve:
        EXPECT_EQ(a.weight_column, b.weight_column);
        break;
      case QueryKind::kTopK:
        EXPECT_EQ(a.k, b.k);
        break;
      case QueryKind::kMax:
      case QueryKind::kMin:
        break;
    }
  }

  /// Draws a number from a distribution heavy on printing hazards:
  /// negatives, tiny/huge magnitudes, integers, and dyadic-unfriendly
  /// decimals.
  static double DrawNumber(Rng* rng) {
    switch (rng->UniformInt(0, 4)) {
      case 0:
        return static_cast<double>(rng->UniformInt(-1000, 1000));
      case 1:
        return rng->Uniform(-1.0, 1.0) *
               std::pow(10.0, rng->UniformInt(-12, 12));
      case 2:
        return -0.1 * static_cast<double>(rng->UniformInt(1, 99));
      case 3:
        return rng->Gaussian(0.0, 100.0);
      default:
        return rng->Uniform(-100.0, 100.0);
    }
  }

  Query DrawQuery(Rng* rng) const {
    Query query;
    const QueryKind kinds[] = {QueryKind::kSelect, QueryKind::kSelectRange,
                               QueryKind::kMax,    QueryKind::kMin,
                               QueryKind::kSum,    QueryKind::kAve,
                               QueryKind::kTopK};
    query.kind = kinds[rng->UniformInt(0, 6)];
    query.function = function_.get();
    switch (rng->UniformInt(0, 2)) {
      case 0:
        query.args = {ArgRef::RelationField("id")};
        break;
      case 1:
        query.args = {ArgRef::StreamField("rate")};
        break;
      default:
        query.args = {ArgRef::Constant(DrawNumber(rng))};
        break;
    }
    query.epsilon = std::abs(DrawNumber(rng)) + 1e-6;
    switch (query.kind) {
      case QueryKind::kSelect: {
        const operators::Comparator comparators[] = {
            operators::Comparator::kGreaterThan,
            operators::Comparator::kGreaterEqual,
            operators::Comparator::kLessThan,
            operators::Comparator::kLessEqual};
        query.cmp = comparators[rng->UniformInt(0, 3)];
        query.constant = DrawNumber(rng);
        break;
      }
      case QueryKind::kSelectRange: {
        const double a = DrawNumber(rng);
        const double b = DrawNumber(rng);
        query.range_lo = std::min(a, b);
        query.range_hi = std::max(a, b);
        query.range_inclusive = true;  // the grammar's only BETWEEN
        break;
      }
      case QueryKind::kSum:
        if (rng->Bernoulli(0.5)) query.weight_column = "weight";
        break;
      case QueryKind::kTopK:
        query.k = static_cast<std::size_t>(rng->UniformInt(1, 9));
        break;
      default:
        break;
    }
    // Half of the sampled-tier-capable kinds also draw an APPROX clause.
    // Only the grammar-surfaced fields vary: confidence, target error, and
    // seed (zero seed is the unprinted default, so include it).
    if ((query.kind == QueryKind::kSum || query.kind == QueryKind::kAve ||
         query.kind == QueryKind::kTopK) &&
        rng->Bernoulli(0.5)) {
      ApproxSpec spec;
      spec.confidence = rng->Uniform(0.5, 0.999);
      spec.target_rel_error = std::abs(DrawNumber(rng)) + 1e-6;
      spec.seed = rng->Bernoulli(0.5)
                      ? 0
                      : static_cast<std::uint64_t>(rng->UniformInt(1, 1'000'000));
      query.approx = spec;
    }
    return query;
  }

  std::unique_ptr<testing::SyntheticTableFunction> function_;
  FunctionRegistry registry_;
  Schema stream_schema_;
  Schema relation_schema_;
};

TEST_F(SqlRoundTripTest, RandomQueriesSurvivePrintParse) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    for (int round = 0; round < 25; ++round) {
      const Query original = DrawQuery(&rng);
      const std::string text = FormatQuery(original, "bd");
      const auto reparsed = Parse(text);
      ASSERT_TRUE(reparsed.ok())
          << "seed=" << seed << " round=" << round << "\n  " << text << "\n  "
          << reparsed.status();
      ExpectQueriesEqual(original, *reparsed);
      // And the printer is a fixed point: format(parse(format(q))) ==
      // format(q).
      EXPECT_EQ(FormatQuery(*reparsed, "bd"), text) << text;
    }
  }
}

TEST_F(SqlRoundTripTest, EdgeCaseCorpusReachesFixedPoint) {
  const char* corpus[] = {
      // Negative and scientific literals.
      "SELECT * FROM bd WHERE synth(-5.25) > -1e-3",
      "SELECT * FROM bd WHERE synth(id) <= 2.5e17",
      "SELECT MAX(synth(-0.125)) FROM bd PRECISION 1e-6",
      // Nested range predicates with negative endpoints.
      "SELECT * FROM bd WHERE synth(id) BETWEEN -2 AND 7.5",
      "SELECT * FROM bd WHERE synth(rate) BETWEEN -1e2 AND -10",
      // Adversarial whitespace: tabs, newlines, run-on spaces.
      "SELECT\t*\nFROM  bd\n WHERE   synth( id )  >=\t0.5",
      "  SELECT SUM( synth(id) , weight ) FROM bd PRECISION 5  ",
      // Mixed-case keywords (identifiers stay case-sensitive).
      "select * from bd where synth(id) < 99",
      "Select Ave(synth(rate)) From bd Precision 0.25",
      "SELECT TOP 3 synth(id) FROM bd PRECISION 0.5",
      "select min(synth(0)) from bd precision 0.01",
      // The APPROX clause: bare, partial, and fully specified (scientific
      // notation in the error target, mixed case).
      "SELECT SUM(synth(id)) FROM bd APPROX",
      "select ave(synth(rate)) from bd approx with confidence 0.9",
      "SELECT SUM( synth(id) , weight ) FROM bd PRECISION 2 "
      "APPROX WITH CONFIDENCE 0.975 ERROR 2.5e-2 SEED 31337",
      "Select Top 4 synth(id) From bd Approx Error 0.125",
  };
  for (const char* sql : corpus) {
    const auto first = Parse(sql);
    ASSERT_TRUE(first.ok()) << sql << "\n  " << first.status();
    const std::string printed = FormatQuery(*first, "bd");
    const auto second = Parse(printed);
    ASSERT_TRUE(second.ok()) << sql << "\n  printed: " << printed << "\n  "
                             << second.status();
    ExpectQueriesEqual(*first, *second);
    EXPECT_EQ(FormatQuery(*second, "bd"), printed) << sql;
  }
}

TEST_F(SqlRoundTripTest, MalformedQueriesStillRejected) {
  const char* bad[] = {
      "SELECT * FROM bd WHERE synth(id) >",
      "SELECT * FROM bd WHERE synth(id) BETWEEN 5 AND",
      "SELECT TOP -1 synth(id) FROM bd PRECISION 0.5",
      "SELECT TOP 2.5 synth(id) FROM bd PRECISION 0.5",
      "SELECT MAX(nope(id)) FROM bd PRECISION 0.01",
      "SELECT * FROM bd WHERE synth(missing_column) > 1",
      "SELECT MIN(synth(id)) FROM bd APPROX",
      "SELECT SUM(synth(id)) FROM bd APPROX WITH CONFIDENCE 2",
      "SELECT SUM(synth(id)) FROM bd APPROX ERROR",
      "SELECT SUM(synth(id)) FROM bd APPROX SEED 0.5",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(Parse(sql).ok()) << sql;
  }
}

}  // namespace
}  // namespace vaolib::engine
