// Tests for the shared multi-query executor: result equivalence with
// per-query executors, work savings from sharing, and validation.

#include <gtest/gtest.h>

#include <memory>

#include "engine/executor.h"
#include "engine/multi_query.h"
#include "finance/bond_model.h"
#include "workload/portfolio_gen.h"

namespace vaolib::engine {
namespace {

class MultiQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 6;
    bonds_ = workload::GeneratePortfolio(4242, spec);
    function_ = std::make_unique<finance::BondPricingFunction>(
        bonds_, finance::BondModelConfig{});
    relation_ = std::make_unique<Relation>(Schema(
        {{"bond_index", ColumnType::kDouble},
         {"position", ColumnType::kDouble}}));
    for (std::size_t i = 0; i < bonds_.size(); ++i) {
      ASSERT_TRUE(
          relation_
              ->Append({static_cast<double>(i), i == 0 ? 5.0 : 1.0})
              .ok());
    }
  }

  Query BaseQuery(QueryKind kind) const {
    Query query;
    query.kind = kind;
    query.function = function_.get();
    query.args = {ArgRef::StreamField("rate"),
                  ArgRef::RelationField("bond_index")};
    return query;
  }

  Schema StreamSchema() const {
    return Schema({{"rate", ColumnType::kDouble}});
  }

  std::vector<finance::Bond> bonds_;
  std::unique_ptr<finance::BondPricingFunction> function_;
  std::unique_ptr<Relation> relation_;
};

TEST_F(MultiQueryTest, MatchesPerQueryExecutors) {
  // A realistic standing-query mix: two alerts, the best bond, the
  // portfolio value, and a top-2 leaderboard.
  Query alert_100 = BaseQuery(QueryKind::kSelect);
  alert_100.constant = 100.0;
  Query alert_95 = BaseQuery(QueryKind::kSelect);
  alert_95.cmp = operators::Comparator::kLessThan;
  alert_95.constant = 95.0;
  Query best = BaseQuery(QueryKind::kMax);
  best.epsilon = 0.01;
  Query portfolio = BaseQuery(QueryKind::kSum);
  portfolio.weight_column = "position";
  portfolio.epsilon = 0.10;
  Query top2 = BaseQuery(QueryKind::kTopK);
  top2.k = 2;
  top2.epsilon = 0.01;

  const std::vector<Query> queries{alert_100, alert_95, best, portfolio,
                                   top2};
  auto shared = MultiQueryExecutor::Create(relation_.get(), StreamSchema(),
                                           queries);
  ASSERT_TRUE(shared.ok()) << shared.status();

  const Tuple tick{0.0575};
  const auto shared_results = (*shared)->ProcessTick(tick);
  ASSERT_TRUE(shared_results.ok()) << shared_results.status();
  ASSERT_EQ(shared_results->size(), queries.size());

  // Reference: each query through its own CqExecutor.
  std::uint64_t separate_work = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto solo = CqExecutor::Create(relation_.get(), StreamSchema(),
                                   queries[q], ExecutionMode::kVao);
    ASSERT_TRUE(solo.ok());
    const auto solo_result = (*solo)->ProcessTick(tick);
    ASSERT_TRUE(solo_result.ok());
    separate_work += solo_result->work_units;

    const TickResult& ours = (*shared_results)[q];
    EXPECT_EQ(ours.passing_rows, solo_result->passing_rows) << "query " << q;
    if (solo_result->winner_row.has_value() && !solo_result->tie &&
        !ours.tie) {
      EXPECT_EQ(ours.winner_row, solo_result->winner_row) << "query " << q;
    }
    if (queries[q].kind == QueryKind::kSum) {
      EXPECT_NEAR(ours.aggregate_bounds.Mid(),
                  solo_result->aggregate_bounds.Mid(),
                  queries[q].epsilon + 0.10);
    }
    if (queries[q].kind == QueryKind::kTopK) {
      EXPECT_EQ(ours.top_rows, solo_result->top_rows);
    }
  }

  // Sharing must beat running the queries independently.
  EXPECT_LT((*shared)->meter().Total(), separate_work);
}

TEST_F(MultiQueryTest, SharedBeatsSeparateAcrossTicks) {
  Query a = BaseQuery(QueryKind::kSelect);
  a.constant = 95.0;
  Query b = BaseQuery(QueryKind::kSelect);
  b.constant = 105.0;
  Query c = BaseQuery(QueryKind::kMax);
  c.epsilon = 0.01;

  auto shared = MultiQueryExecutor::Create(relation_.get(), StreamSchema(),
                                           {a, b, c});
  ASSERT_TRUE(shared.ok());
  auto solo_a =
      CqExecutor::Create(relation_.get(), StreamSchema(), a,
                         ExecutionMode::kVao);
  auto solo_b =
      CqExecutor::Create(relation_.get(), StreamSchema(), b,
                         ExecutionMode::kVao);
  auto solo_c =
      CqExecutor::Create(relation_.get(), StreamSchema(), c,
                         ExecutionMode::kVao);
  ASSERT_TRUE(solo_a.ok());
  ASSERT_TRUE(solo_b.ok());
  ASSERT_TRUE(solo_c.ok());

  for (const double rate : {0.055, 0.0575, 0.06}) {
    ASSERT_TRUE((*shared)->ProcessTick({rate}).ok());
    ASSERT_TRUE((*solo_a)->ProcessTick({rate}).ok());
    ASSERT_TRUE((*solo_b)->ProcessTick({rate}).ok());
    ASSERT_TRUE((*solo_c)->ProcessTick({rate}).ok());
  }
  const std::uint64_t separate = (*solo_a)->meter().Total() +
                                 (*solo_b)->meter().Total() +
                                 (*solo_c)->meter().Total();
  EXPECT_LT((*shared)->meter().Total(), separate);
}

TEST_F(MultiQueryTest, ValidatesSharedBindings) {
  Query a = BaseQuery(QueryKind::kSelect);
  Query b = BaseQuery(QueryKind::kSelect);
  b.args = {ArgRef::Constant(0.05), ArgRef::RelationField("bond_index")};
  EXPECT_FALSE(MultiQueryExecutor::Create(relation_.get(), StreamSchema(),
                                          {a, b})
                   .ok());

  // Different function pointer rejected.
  finance::BondPricingFunction other(bonds_, finance::BondModelConfig{});
  Query c = BaseQuery(QueryKind::kSelect);
  c.function = &other;
  EXPECT_FALSE(MultiQueryExecutor::Create(relation_.get(), StreamSchema(),
                                          {a, c})
                   .ok());

  EXPECT_FALSE(
      MultiQueryExecutor::Create(relation_.get(), StreamSchema(), {}).ok());
  EXPECT_FALSE(
      MultiQueryExecutor::Create(nullptr, StreamSchema(), {a}).ok());

  Query bad_weights = BaseQuery(QueryKind::kSum);
  bad_weights.weight_column = "missing";
  EXPECT_FALSE(MultiQueryExecutor::Create(relation_.get(), StreamSchema(),
                                          {bad_weights})
                   .ok());
}

TEST_F(MultiQueryTest, ApproxQueriesRunInSharedAndScheduledModes) {
  // A mixed standing set: one exact MAX, one sampled SUM, one sampled
  // TOP-2. The sampled answers must carry full provenance in both tick
  // paths, and the exact query must stay in exact mode.
  Query best = BaseQuery(QueryKind::kMax);
  best.epsilon = 0.01;
  Query sum = BaseQuery(QueryKind::kSum);
  sum.epsilon = 0.10;
  sum.approx = ApproxSpec{};
  sum.approx->confidence = 0.95;
  sum.approx->target_rel_error = 0.05;
  sum.approx->seed = 11;
  sum.approx->initial_samples = 4;
  Query top2 = BaseQuery(QueryKind::kTopK);
  top2.k = 2;
  top2.epsilon = 0.01;
  top2.approx = sum.approx;
  const std::vector<Query> queries{best, sum, top2};

  for (const bool scheduled : {false, true}) {
    MultiQueryOptions options;
    options.scheduled = scheduled;
    auto executor = MultiQueryExecutor::Create(relation_.get(),
                                               StreamSchema(), queries,
                                               options);
    ASSERT_TRUE(executor.ok()) << executor.status();
    const auto results = (*executor)->ProcessTick({0.0575});
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_EQ(results->size(), 3u);

    EXPECT_FALSE((*results)[0].aggregate_bounds.approximate());
    EXPECT_EQ((*results)[0].report.answer_mode, "exact");

    for (const std::size_t q : {std::size_t{1}, std::size_t{2}}) {
      const vao::Answer& answer = (*results)[q].aggregate_bounds;
      EXPECT_TRUE(answer.approximate()) << "scheduled=" << scheduled;
      EXPECT_EQ(answer.population_size, bonds_.size());
      EXPECT_GE(answer.sample_size, 2u);
      EXPECT_LE(answer.sample_size, bonds_.size());
      EXPECT_LE(answer.lo, answer.hi);
      EXPECT_EQ((*results)[q].report.answer_mode, "approximate");
      EXPECT_EQ((*results)[q].report.sample_size, answer.sample_size);
      EXPECT_EQ((*results)[q].report.rows_scanned, answer.sample_size);
    }
    // The sampled TOP-2 still returns two distinct in-range winners.
    const TickResult& top = (*results)[2];
    ASSERT_EQ(top.top_rows.size(), 2u);
    EXPECT_NE(top.top_rows[0], top.top_rows[1]);
    for (const std::size_t row : top.top_rows) {
      EXPECT_LT(row, bonds_.size());
    }

    // Seeded sampling: a fresh executor replays the tick bit-for-bit.
    auto replay = MultiQueryExecutor::Create(relation_.get(),
                                             StreamSchema(), queries,
                                             options);
    ASSERT_TRUE(replay.ok());
    const auto replayed = (*replay)->ProcessTick({0.0575});
    ASSERT_TRUE(replayed.ok());
    for (std::size_t q = 1; q < 3; ++q) {
      EXPECT_EQ((*replayed)[q].aggregate_bounds.lo,
                (*results)[q].aggregate_bounds.lo)
          << "scheduled=" << scheduled << " query " << q;
      EXPECT_EQ((*replayed)[q].aggregate_bounds.hi,
                (*results)[q].aggregate_bounds.hi)
          << "scheduled=" << scheduled << " query " << q;
      EXPECT_EQ((*replayed)[q].aggregate_bounds.sample_size,
                (*results)[q].aggregate_bounds.sample_size)
          << "scheduled=" << scheduled << " query " << q;
    }
  }
}

TEST_F(MultiQueryTest, AllApproxSetSkipsSharedObjectCreation) {
  // When every query runs on the sampled tier, the tick must not pay for
  // full-relation shared object creation: total work stays below one
  // object per row (creation alone costs >= 1 unit per row elsewhere).
  Query sum = BaseQuery(QueryKind::kSum);
  sum.epsilon = 0.10;
  sum.approx = ApproxSpec{};
  sum.approx->seed = 5;
  sum.approx->initial_samples = 2;
  sum.approx->max_samples = 3;
  sum.approx->target_rel_error = 1e-12;  // unreachable: cap binds

  auto executor = MultiQueryExecutor::Create(relation_.get(),
                                             StreamSchema(), {sum});
  ASSERT_TRUE(executor.ok()) << executor.status();
  const auto results = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(results.ok()) << results.status();
  const vao::Answer& answer = (*results)[0].aggregate_bounds;
  EXPECT_TRUE(answer.approximate());
  EXPECT_EQ(answer.sample_size, 3u);  // max_samples honored
  // Only the sampled rows were materialized.
  EXPECT_EQ((*results)[0].report.rows_scanned, 3u);
  EXPECT_FALSE((*results)[0].converged);
}

TEST_F(MultiQueryTest, ApproxValidationRejectsBadSpecs) {
  Query sum = BaseQuery(QueryKind::kSum);
  sum.approx = ApproxSpec{};
  sum.approx->confidence = 1.0;  // must be strictly inside (0, 1)
  EXPECT_FALSE(MultiQueryExecutor::Create(relation_.get(), StreamSchema(),
                                          {sum})
                   .ok());

  Query max = BaseQuery(QueryKind::kMax);
  max.approx = ApproxSpec{};  // APPROX is for SUM/AVE/TOP-K only
  EXPECT_FALSE(MultiQueryExecutor::Create(relation_.get(), StreamSchema(),
                                          {max})
                   .ok());
}

TEST_F(MultiQueryTest, ProcessTickValidatesTuple) {
  auto shared = MultiQueryExecutor::Create(
      relation_.get(), StreamSchema(), {BaseQuery(QueryKind::kSelect)});
  ASSERT_TRUE(shared.ok());
  EXPECT_FALSE((*shared)->ProcessTick({}).ok());
  EXPECT_FALSE((*shared)->ProcessTick({0.05, 0.06}).ok());
  (*shared)->ResetMeter();
  EXPECT_EQ((*shared)->meter().Total(), 0u);
  EXPECT_EQ((*shared)->query_count(), 1u);
}

}  // namespace
}  // namespace vaolib::engine
