// Unit tests for src/finance: the bond valuation PDE, the pricing function,
// and the synthetic interest-rate stream.

#include <gtest/gtest.h>

#include <cmath>

#include "finance/bond.h"
#include "finance/bond_model.h"
#include "vao/black_box.h"

namespace vaolib::finance {
namespace {

Bond TestBond() {
  Bond bond;
  bond.annual_cashflow = 23.0;
  bond.maturity_years = 5.0;
  bond.sigma = 0.04;
  bond.kappa = 0.2;
  bond.mu = 0.06;
  bond.q = 0.02;
  bond.spread = 0.005;
  return bond;
}

double ConvergedPrice(const BondPricingFunction& fn, double rate,
                      std::size_t index) {
  WorkMeter meter;
  auto object = fn.Invoke(fn.ArgsFor(rate, index), &meter);
  EXPECT_TRUE(object.ok()) << object.status();
  EXPECT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
  return (*object)->bounds().Mid();
}

TEST(BondPdeTest, PriceNearAnnuityApproximation) {
  // With modest vol and mean reversion, the price should land near the
  // deterministic annuity value C(1-e^{-rT})/r at the queried rate.
  const Bond bond = TestBond();
  BondModelConfig config;
  BondPricingFunction fn({bond}, config);
  const double rate = 0.0575;
  const double r_eff = rate + bond.spread;
  const double annuity = bond.annual_cashflow / r_eff *
                         (1.0 - std::exp(-r_eff * bond.maturity_years));
  const double price = ConvergedPrice(fn, rate, 0);
  EXPECT_NEAR(price, annuity, annuity * 0.05);
}

TEST(BondPdeTest, PriceDecreasesWithRate) {
  BondModelConfig config;
  BondPricingFunction fn({TestBond()}, config);
  const double low = ConvergedPrice(fn, 0.04, 0);
  const double mid = ConvergedPrice(fn, 0.06, 0);
  const double high = ConvergedPrice(fn, 0.08, 0);
  EXPECT_GT(low, mid);
  EXPECT_GT(mid, high);
}

TEST(BondPdeTest, PriceIncreasesWithCashflow) {
  Bond cheap = TestBond();
  Bond rich = TestBond();
  rich.annual_cashflow = 26.0;
  BondModelConfig config;
  BondPricingFunction fn({cheap, rich}, config);
  EXPECT_LT(ConvergedPrice(fn, 0.0575, 0), ConvergedPrice(fn, 0.0575, 1));
}

TEST(BondPdeTest, LongerMaturityWorthMore) {
  Bond shorter = TestBond();
  Bond longer = TestBond();
  shorter.maturity_years = 4.0;
  longer.maturity_years = 6.0;
  BondModelConfig config;
  BondPricingFunction fn({shorter, longer}, config);
  EXPECT_LT(ConvergedPrice(fn, 0.0575, 0), ConvergedPrice(fn, 0.0575, 1));
}

TEST(BondPricingFunctionTest, ValidatesArguments) {
  BondModelConfig config;
  BondPricingFunction fn({TestBond()}, config);
  WorkMeter meter;
  EXPECT_FALSE(fn.Invoke({0.05}, &meter).ok());            // arity
  EXPECT_FALSE(fn.Invoke({0.5, 0.0}, &meter).ok());        // rate range
  EXPECT_FALSE(fn.Invoke({0.05, 5.0}, &meter).ok());       // index range
  EXPECT_FALSE(fn.Invoke({0.05, 0.5}, &meter).ok());       // fractional index
  EXPECT_TRUE(fn.Invoke({0.05, 0.0}, &meter).ok());
  EXPECT_EQ(fn.arity(), 2);
  EXPECT_EQ(fn.name(), "bond_model");
}

TEST(BondPricingFunctionTest, ArgsForHelper) {
  BondModelConfig config;
  BondPricingFunction fn({TestBond()}, config);
  const auto args = fn.ArgsFor(0.0575, 0);
  ASSERT_EQ(args.size(), 2u);
  EXPECT_DOUBLE_EQ(args[0], 0.0575);
  EXPECT_DOUBLE_EQ(args[1], 0.0);
}

TEST(RateSeriesTest, DeterministicPerSeed) {
  const auto a = SynthesizeRateSeries(5, 50);
  const auto b = SynthesizeRateSeries(5, 50);
  const auto c = SynthesizeRateSeries(6, 50);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rate, b[i].rate);
    EXPECT_EQ(a[i].time_seconds, b[i].time_seconds);
  }
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].rate != c[i].rate) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RateSeriesTest, TimesIncreaseAndRatesStayClamped) {
  const auto ticks = SynthesizeRateSeries(7, 500);
  double prev_time = -1.0;
  for (const auto& tick : ticks) {
    EXPECT_GT(tick.time_seconds, prev_time);
    prev_time = tick.time_seconds;
    EXPECT_GE(tick.rate, 0.005);
    EXPECT_LE(tick.rate, 0.18);
  }
}

TEST(RateSeriesTest, MeanInterarrivalApproximatelyConfigured) {
  const auto ticks = SynthesizeRateSeries(11, 2000, 0.0575, 0.0575, 0.0004,
                                          0.05, 150.0);
  const double span = ticks.back().time_seconds - ticks.front().time_seconds;
  const double mean_gap = span / static_cast<double>(ticks.size() - 1);
  EXPECT_NEAR(mean_gap, 150.0, 15.0);
}

TEST(RateSeriesTest, StartsAtRequestedRate) {
  const auto ticks = SynthesizeRateSeries(13, 3, 0.0612);
  ASSERT_FALSE(ticks.empty());
  EXPECT_DOUBLE_EQ(ticks.front().rate, 0.0612);
  EXPECT_DOUBLE_EQ(ticks.front().time_seconds, 0.0);
}

TEST(RateSeriesTest, EmptyRequestYieldsEmptySeries) {
  EXPECT_TRUE(SynthesizeRateSeries(1, 0).empty());
}

}  // namespace
}  // namespace vaolib::finance
