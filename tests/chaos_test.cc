// Tests for the deterministic fault-injection layer (ChaosResultObject /
// ChaosFunction) and for the graceful-degradation paths it exists to
// exercise: bounds sanitization at operator ingest, refinement stall guards,
// iteration budgets, and the executor's strict/degrade resilience policies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "engine/executor.h"
#include "operators/min_max.h"
#include "operators/selection.h"
#include "operators/sum_ave.h"
#include "testing/chaos_result_object.h"
#include "testing/invariant_checker.h"
#include "testing/workload_gen.h"
#include "vao/black_box.h"
#include "vao/parallel.h"
#include "vao/synthetic_result_object.h"

namespace vaolib::testing {
namespace {

vao::SyntheticResultObject::Config HonestConfig(double true_value,
                                                WorkMeter* meter = nullptr) {
  vao::SyntheticResultObject::Config config;
  config.true_value = true_value;
  config.initial_half_width = 8.0;
  config.shrink = 0.5;
  config.min_width = 0.01;
  config.meter = meter;
  return config;
}

vao::ResultObjectPtr Poisoned(double true_value, FaultKind kind,
                              int trigger = 0) {
  FaultPlan plan;
  plan.kind = kind;
  plan.trigger_iteration = trigger;
  return std::make_unique<ChaosResultObject>(
      std::make_unique<vao::SyntheticResultObject>(HonestConfig(true_value)),
      plan);
}

TEST(FaultPlanTest, DrawReplaysFromSeed) {
  Rng a(42);
  Rng b(42);
  const FaultPlan first = FaultPlan::Draw(FaultKind::kLyingEstimates, &a);
  const FaultPlan second = FaultPlan::Draw(FaultKind::kLyingEstimates, &b);
  EXPECT_EQ(first.kind, second.kind);
  EXPECT_EQ(first.trigger_iteration, second.trigger_iteration);
  EXPECT_DOUBLE_EQ(first.cost_factor, second.cost_factor);
  EXPECT_DOUBLE_EQ(first.width_factor, second.width_factor);
  EXPECT_GE(first.trigger_iteration, 0);
  EXPECT_LE(first.trigger_iteration, 6);
  EXPECT_GE(first.cost_factor, 1.0 / 16.0);
  EXPECT_LE(first.cost_factor, 16.0);
}

TEST(FaultPlanTest, NamesAndToString) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNanBounds), "nan-bounds");
  FaultPlan plan;
  plan.kind = FaultKind::kStalledConvergence;
  plan.trigger_iteration = 3;
  EXPECT_EQ(plan.ToString(), "stalled-convergence@3");
}

TEST(ChaosFunctionTest, PlanDependsOnArgsNotInvocationOrder) {
  std::vector<vao::SyntheticResultObject::Config> configs;
  for (int row = 0; row < 8; ++row) {
    configs.push_back(HonestConfig(10.0 * row));
  }
  const SyntheticTableFunction inner(std::move(configs));
  ChaosOptions options;
  options.seed = 7;
  options.fault_probability = 1.0;
  const ChaosFunction chaos(&inner, options);

  // PlanFor is a pure function of (args, seed).
  std::vector<FaultPlan> forward;
  for (int row = 0; row < 8; ++row) {
    forward.push_back(chaos.PlanFor({static_cast<double>(row)}));
  }
  for (int row = 7; row >= 0; --row) {
    const FaultPlan replay = chaos.PlanFor({static_cast<double>(row)});
    EXPECT_EQ(replay.kind, forward[row].kind) << "row " << row;
    EXPECT_EQ(replay.trigger_iteration, forward[row].trigger_iteration);
  }

  // Invoke() applies exactly the advertised plan, in any order.
  WorkMeter meter;
  auto object = chaos.Invoke({3.0}, &meter);
  ASSERT_TRUE(object.ok()) << object.status();
  const auto* wrapped =
      dynamic_cast<const ChaosResultObject*>(object.value().get());
  ASSERT_NE(wrapped, nullptr);
  EXPECT_EQ(wrapped->plan().kind, forward[3].kind);
}

TEST(ChaosFunctionTest, HashArgsIsOrderSensitive) {
  EXPECT_NE(HashArgs({1.0, 2.0}), HashArgs({2.0, 1.0}));
  EXPECT_NE(HashArgs({0.0}), HashArgs({-0.0}));  // distinct bit patterns
  EXPECT_EQ(HashArgs({5.0, 7.0}), HashArgs({5.0, 7.0}));
}

// --- Satellite: NaN/Inf/inverted bounds are sanitized at operator ingest ---

TEST(BoundsSanitizationTest, GreaterThanRejectsNanBounds) {
  auto object = Poisoned(10.0, FaultKind::kNanBounds);
  const operators::SelectionVao vao(operators::Comparator::kGreaterThan, 5.0);
  const auto outcome = vao.Evaluate(object.get());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNumericError);
}

TEST(BoundsSanitizationTest, LessThanRejectsInfBounds) {
  auto object = Poisoned(10.0, FaultKind::kInfBounds);
  const operators::SelectionVao vao(operators::Comparator::kLessThan, 5.0);
  const auto outcome = vao.Evaluate(object.get());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNumericError);
}

TEST(BoundsSanitizationTest, BetweenRejectsInvertedBounds) {
  auto object = Poisoned(10.0, FaultKind::kInvertedBounds);
  const operators::RangeSelectionVao vao(5.0, 15.0);
  const auto outcome = vao.Evaluate(object.get());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNumericError);
}

TEST(BoundsSanitizationTest, FaultArmingMidRefinementStillCaught) {
  // The object is honest for 2 iterations, then its bounds go NaN; the
  // operator must catch the corruption on the later read, not just at entry.
  auto object = Poisoned(10.0, FaultKind::kNanBounds, /*trigger=*/2);
  const operators::SelectionVao vao(operators::Comparator::kGreaterThan,
                                    10.001);
  const auto outcome = vao.Evaluate(object.get());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNumericError);
}

TEST(ChaosResultObjectTest, IterateFailurePropagatesAsError) {
  auto object = Poisoned(10.0, FaultKind::kIterateFailure, /*trigger=*/1);
  const operators::SelectionVao vao(operators::Comparator::kGreaterThan,
                                    10.001);
  const auto outcome = vao.Evaluate(object.get());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNumericError);
  EXPECT_NE(outcome.status().ToString().find("injected"), std::string::npos);
}

// --- Satellite: stall guards and iteration budgets, never a hang ---

TEST(StallGuardTest, StalledConvergenceExhaustsSelection) {
  // Frozen wide bounds keep straddling the constant; the stall guard must
  // cut the loop instead of iterating forever.
  auto object = Poisoned(10.0, FaultKind::kStalledConvergence);
  const operators::SelectionVao vao(operators::Comparator::kGreaterThan,
                                    10.0);
  const auto outcome = vao.Evaluate(object.get());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(StallGuardTest, ConvergeToMinWidthDetectsStall) {
  auto object = Poisoned(10.0, FaultKind::kStalledConvergence, /*trigger=*/3);
  const auto converged = vao::ConvergeToMinWidth(object.get());
  ASSERT_FALSE(converged.ok());
  EXPECT_EQ(converged.status().code(), StatusCode::kResourceExhausted);
}

TEST(IterationBudgetTest, ConvergeToMinWidthHonorsBudget) {
  // Honest but slow: a tiny budget must surface ResourceExhausted rather
  // than converge.
  auto config = HonestConfig(10.0);
  config.shrink = 0.9;
  vao::SyntheticResultObject object(config);
  const auto converged = vao::ConvergeToMinWidth(&object, /*max_iterations=*/3);
  ASSERT_FALSE(converged.ok());
  EXPECT_EQ(converged.status().code(), StatusCode::kResourceExhausted);
}

TEST(IterationBudgetTest, ConvergeAllReportsLowestFailingObject) {
  auto healthy = std::make_unique<vao::SyntheticResultObject>(
      HonestConfig(1.0));
  auto stalled = Poisoned(2.0, FaultKind::kStalledConvergence);
  auto healthy2 = std::make_unique<vao::SyntheticResultObject>(
      HonestConfig(3.0));
  const std::vector<vao::ResultObject*> objects = {
      healthy.get(), stalled.get(), healthy2.get()};
  for (const int threads : {1, 3}) {
    auto fresh_stalled = Poisoned(2.0, FaultKind::kStalledConvergence);
    auto h1 = std::make_unique<vao::SyntheticResultObject>(HonestConfig(1.0));
    auto h3 = std::make_unique<vao::SyntheticResultObject>(HonestConfig(3.0));
    const std::vector<vao::ResultObject*> batch = {
        h1.get(), fresh_stalled.get(), h3.get()};
    const Status status = vao::ConvergeAllToMinWidth(batch, threads);
    ASSERT_FALSE(status.ok()) << "threads=" << threads;
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    // The healthy objects were still attempted.
    EXPECT_TRUE(h1->AtStoppingCondition());
    EXPECT_TRUE(h3->AtStoppingCondition());
  }
}

// --- Lying estimates may waste work but never change answers ---

TEST(LyingEstimatesTest, MinMaxAnswerUnchanged) {
  const std::vector<double> values = {3.0, 41.0, -7.0, 18.0, 40.0};
  for (const double width_factor : {1.0 / 16.0, 1.0, 16.0}) {
    std::vector<vao::ResultObjectPtr> owned;
    std::vector<vao::ResultObject*> objects;
    for (const double v : values) {
      FaultPlan plan;
      plan.kind = FaultKind::kLyingEstimates;
      plan.cost_factor = 1.0 / width_factor;
      plan.width_factor = width_factor;
      owned.push_back(std::make_unique<ChaosResultObject>(
          std::make_unique<vao::SyntheticResultObject>(HonestConfig(v)),
          plan));
      objects.push_back(owned.back().get());
    }
    operators::MinMaxOptions options;
    options.kind = operators::ExtremeKind::kMax;
    options.epsilon = 0.05;
    const auto outcome = operators::MinMaxVao(options).Evaluate(objects);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->winner_index, 1u) << "width_factor=" << width_factor;
    EXPECT_TRUE(outcome->winner_bounds.Contains(41.0));
    EXPECT_LE(outcome->winner_bounds.Width(), 0.05 + 1e-12);
  }
}

TEST(LyingEstimatesTest, SumAnswerStaysSound) {
  const std::vector<double> values = {3.0, 41.0, -7.0, 18.0};
  double true_sum = 0.0;
  std::vector<vao::ResultObjectPtr> owned;
  std::vector<vao::ResultObject*> objects;
  for (const double v : values) {
    true_sum += v;
    FaultPlan plan;
    plan.kind = FaultKind::kLyingEstimates;
    plan.cost_factor = 16.0;
    plan.width_factor = 1.0 / 16.0;  // wildly overpromises progress
    owned.push_back(std::make_unique<ChaosResultObject>(
        std::make_unique<vao::SyntheticResultObject>(HonestConfig(v)), plan));
    objects.push_back(owned.back().get());
  }
  operators::SumAveOptions options;
  options.epsilon = 0.5;
  const auto outcome = operators::SumAveVao(options).Evaluate(
      objects, std::vector<double>(values.size(), 1.0));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->sum_bounds.Contains(true_sum));
  EXPECT_LE(outcome->sum_bounds.Width(), 0.5 + 1e-12);
}

// --- Executor resilience policies under injected faults ---

class ChaosExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { workload_ = MakeWorkload(WorkloadSpec{}, 20260805); }

  engine::Query SelectQuery(const vao::VariableAccuracyFunction* function,
                            double constant) const {
    engine::Query query;
    query.kind = engine::QueryKind::kSelect;
    query.function = function;
    query.args = {engine::ArgRef::RelationField("id")};
    query.cmp = operators::Comparator::kGreaterThan;
    query.constant = constant;
    return query;
  }

  engine::Query SumQuery(const vao::VariableAccuracyFunction* function) const {
    engine::Query query;
    query.kind = engine::QueryKind::kSum;
    query.function = function;
    query.args = {engine::ArgRef::RelationField("id")};
    query.epsilon = 1.0;
    return query;
  }

  Workload workload_;
};

TEST_F(ChaosExecutorTest, StrictPolicyFailsTheTick) {
  ChaosOptions options;
  options.fault_probability = 1.0;
  options.kinds = {FaultKind::kNanBounds};
  const ChaosFunction chaos(workload_.function.get(), options);
  auto executor = engine::CqExecutor::Create(
      &workload_.relation, engine::Schema{}, SelectQuery(&chaos, 0.0),
      engine::ExecutionMode::kVao, /*threads=*/1,
      engine::ResiliencePolicy::kStrict);
  ASSERT_TRUE(executor.ok()) << executor.status();
  const auto tick = executor.value()->ProcessTick({});
  ASSERT_FALSE(tick.ok());
  EXPECT_EQ(tick.status().code(), StatusCode::kNumericError);
}

TEST_F(ChaosExecutorTest, DegradePolicyQuarantinesSelectionRows) {
  ChaosOptions options;
  options.fault_probability = 0.5;
  options.kinds = {FaultKind::kNanBounds, FaultKind::kIterateFailure,
                   FaultKind::kStalledConvergence};
  const ChaosFunction chaos(workload_.function.get(), options);
  for (const int threads : {1, 3}) {
    auto executor = engine::CqExecutor::Create(
        &workload_.relation, engine::Schema{}, SelectQuery(&chaos, 0.0),
        engine::ExecutionMode::kVao, threads,
        engine::ResiliencePolicy::kDegrade);
    ASSERT_TRUE(executor.ok()) << executor.status();
    const auto tick = executor.value()->ProcessTick({});
    ASSERT_TRUE(tick.ok()) << tick.status();
    EXPECT_TRUE(tick->degraded);
    EXPECT_FALSE(tick->degradation_cause.ok());
    EXPECT_FALSE(tick->quarantined_rows.empty());
    EXPECT_TRUE(InvariantChecker::CheckTickAccounting(*tick).ok())
        << InvariantChecker::CheckTickAccounting(*tick);
    // Quarantined rows never appear among the passing rows.
    for (const std::size_t row : tick->quarantined_rows) {
      EXPECT_EQ(std::count(tick->passing_rows.begin(),
                           tick->passing_rows.end(), row),
                0);
    }
    // Healthy rows still answer correctly against the known true values.
    for (const std::size_t row : tick->passing_rows) {
      EXPECT_GT(workload_.true_values[row], 0.0 - workload_.min_width);
    }
  }
}

TEST_F(ChaosExecutorTest, QuarantineSetIsThreadCountInvariant) {
  ChaosOptions options;
  options.fault_probability = 0.5;
  options.kinds = {FaultKind::kNanBounds};
  const ChaosFunction chaos(workload_.function.get(), options);
  std::vector<std::size_t> reference;
  for (const int threads : {1, 2, 4}) {
    auto executor = engine::CqExecutor::Create(
        &workload_.relation, engine::Schema{}, SelectQuery(&chaos, 0.0),
        engine::ExecutionMode::kVao, threads,
        engine::ResiliencePolicy::kDegrade);
    ASSERT_TRUE(executor.ok()) << executor.status();
    const auto tick = executor.value()->ProcessTick({});
    ASSERT_TRUE(tick.ok()) << tick.status();
    if (threads == 1) {
      reference = tick->quarantined_rows;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(tick->quarantined_rows, reference) << "threads=" << threads;
    }
  }
}

TEST_F(ChaosExecutorTest, TransientFaultFallsBackToBlackBox) {
  // The fault fires only on the first Invoke() per argument vector; the
  // degrade policy's calibrated black-box fallback re-invokes and succeeds.
  ChaosOptions options;
  options.fault_probability = 1.0;
  options.kinds = {FaultKind::kIterateFailure};
  options.transient = true;
  const ChaosFunction chaos(workload_.function.get(), options);
  auto executor = engine::CqExecutor::Create(
      &workload_.relation, engine::Schema{}, SumQuery(&chaos),
      engine::ExecutionMode::kVao, /*threads=*/1,
      engine::ResiliencePolicy::kDegrade);
  ASSERT_TRUE(executor.ok()) << executor.status();
  const auto tick = executor.value()->ProcessTick({});
  ASSERT_TRUE(tick.ok()) << tick.status();
  EXPECT_TRUE(tick->degraded);
  EXPECT_EQ(tick->degradation_cause.code(), StatusCode::kNumericError);
  ASSERT_TRUE(tick->aggregate_bounds.IsValid());
  double true_sum = 0.0;
  double slack = 0.0;
  for (std::size_t row = 0; row < workload_.true_values.size(); ++row) {
    true_sum += workload_.true_values[row];
    slack += workload_.min_width;
  }
  EXPECT_GE(true_sum, tick->aggregate_bounds.lo - slack);
  EXPECT_LE(true_sum, tick->aggregate_bounds.hi + slack);
}

TEST_F(ChaosExecutorTest, EveryFaultKindDegradesGracefully) {
  // Acceptance sweep: each fault category, pushed through both a selection
  // and an aggregate, must produce either an answer or an error Status --
  // never a crash or a hang.
  const FaultKind kinds[] = {
      FaultKind::kLyingEstimates,  FaultKind::kStalledConvergence,
      FaultKind::kNanBounds,       FaultKind::kInfBounds,
      FaultKind::kInvertedBounds,  FaultKind::kIterateFailure,
  };
  for (const FaultKind kind : kinds) {
    ChaosOptions options;
    options.fault_probability = 0.5;
    options.kinds = {kind};
    const ChaosFunction chaos(workload_.function.get(), options);
    for (const engine::Query& query :
         {SelectQuery(&chaos, 0.0), SumQuery(&chaos)}) {
      auto executor = engine::CqExecutor::Create(
          &workload_.relation, engine::Schema{}, query,
          engine::ExecutionMode::kVao, /*threads=*/1,
          engine::ResiliencePolicy::kDegrade);
      ASSERT_TRUE(executor.ok()) << executor.status();
      const auto tick = executor.value()->ProcessTick({});
      if (tick.ok()) {
        EXPECT_TRUE(InvariantChecker::CheckTickAccounting(*tick).ok())
            << FaultKindName(kind) << ": "
            << InvariantChecker::CheckTickAccounting(*tick);
      } else {
        // A persistent aggregate fault can defeat the fallback too; it must
        // then surface as a real error code, not as a wrong answer.
        EXPECT_FALSE(tick.status().ToString().empty());
      }
    }
  }
}

TEST(InvariantCheckerTest, CheckRefinementAcceptsHonestObject) {
  WorkMeter meter;
  vao::SyntheticResultObject object(HonestConfig(5.0, &meter));
  EXPECT_TRUE(InvariantChecker::CheckRefinement(&object, 256, &meter).ok());
}

TEST(InvariantCheckerTest, CheckRefinementFlagsEscapingBounds) {
  // Inverted bounds violate nesting (and validity) immediately.
  auto object = Poisoned(5.0, FaultKind::kInvertedBounds, /*trigger=*/1);
  const Status status = InvariantChecker::CheckRefinement(object.get());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace vaolib::testing
