// Tests for the parallel bulk helpers (vao/parallel.h) and the thread-safe
// WorkMeter they rely on.

#include <gtest/gtest.h>

#include <thread>

#include "common/work_meter.h"
#include "finance/bond_model.h"
#include "vao/black_box.h"
#include "vao/parallel.h"
#include "workload/portfolio_gen.h"

namespace vaolib::vao {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 8;
    function_ = std::make_unique<finance::BondPricingFunction>(
        workload::GeneratePortfolio(8080, spec), finance::BondModelConfig{});
    for (int i = 0; i < 8; ++i) {
      rows_.push_back(function_->ArgsFor(0.0575, i));
    }
  }
  std::unique_ptr<finance::BondPricingFunction> function_;
  std::vector<std::vector<double>> rows_;
};

TEST_F(ParallelTest, InvokeAllMatchesSerialResults) {
  WorkMeter serial_meter;
  auto serial = InvokeAll(*function_, rows_, /*threads=*/1, &serial_meter);
  ASSERT_TRUE(serial.ok());

  WorkMeter parallel_meter;
  auto parallel =
      InvokeAll(*function_, rows_, /*threads=*/4, &parallel_meter);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(serial->size(), parallel->size());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    ASSERT_NE((*parallel)[i], nullptr);
    EXPECT_EQ((*serial)[i]->bounds(), (*parallel)[i]->bounds())
        << "row " << i;
  }
  // Same solves performed, same deterministic accounting.
  EXPECT_EQ(serial_meter.Total(), parallel_meter.Total());
}

TEST_F(ParallelTest, InvokeAllPropagatesErrors) {
  auto rows = rows_;
  rows.push_back({9.9, 0.0});  // rate outside the model domain
  WorkMeter meter;
  const auto result = InvokeAll(*function_, rows, /*threads=*/4, &meter);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ParallelTest, InvokeAllReturnsLowestIndexedRowError) {
  // Two failing rows with distinguishable errors: the bad bond index sits at
  // a lower row than the bad rate, so its InvalidArgument must win at every
  // thread count (all rows are still attempted).
  auto rows = rows_;
  rows.insert(rows.begin() + 2, {0.0575, 99.0});  // bond index out of range
  rows.push_back({9.9, 0.0});                     // rate outside the domain
  for (const int threads : {1, 2, 4, 8}) {
    WorkMeter meter;
    const auto result = InvokeAll(*function_, rows, threads, &meter);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << "threads " << threads;
  }
}

TEST_F(ParallelTest, InvokeAllEmptyInput) {
  WorkMeter meter;
  const auto result = InvokeAll(*function_, {}, 4, &meter);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(meter.Total(), 0u);
}

TEST_F(ParallelTest, ConvergeAllMatchesSerialConvergence) {
  WorkMeter meter;
  auto objects = InvokeAll(*function_, rows_, /*threads=*/4, &meter);
  ASSERT_TRUE(objects.ok());
  std::vector<ResultObject*> ptrs;
  for (auto& object : *objects) ptrs.push_back(object.get());
  ASSERT_TRUE(ConvergeAllToMinWidth(ptrs, /*threads=*/4).ok());

  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_TRUE(ptrs[i]->AtStoppingCondition());
    // Values agree with a serially converged twin.
    WorkMeter scratch;
    auto twin = function_->Invoke(rows_[i], &scratch);
    ASSERT_TRUE(twin.ok());
    ASSERT_TRUE(ConvergeToMinWidth(twin->get()).ok());
    EXPECT_NEAR(ptrs[i]->bounds().Mid(), (*twin)->bounds().Mid(), 1e-9);
  }
}

TEST_F(ParallelTest, ConvergeAllRejectsNulls) {
  std::vector<ResultObject*> with_null{nullptr};
  EXPECT_FALSE(ConvergeAllToMinWidth(with_null, 2).ok());
}

TEST(WorkMeterThreadingTest, ConcurrentChargesAreLossless) {
  WorkMeter meter;
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 100000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&meter]() {
      for (int i = 0; i < kChargesPerThread; ++i) {
        meter.Charge(WorkKind::kExec, 1);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(meter.ExecUnits(),
            static_cast<std::uint64_t>(kThreads) * kChargesPerThread);
}

TEST(WorkMeterThreadingTest, CopyAndMergeStillWork) {
  WorkMeter a;
  a.Charge(WorkKind::kExec, 5);
  WorkMeter b = a;  // copy
  b.Charge(WorkKind::kGetState, 2);
  EXPECT_EQ(a.Total(), 5u);
  EXPECT_EQ(b.Total(), 7u);
  a.Merge(b);
  EXPECT_EQ(a.Total(), 12u);
  WorkMeter c;
  c = b;
  EXPECT_EQ(c.Total(), 7u);
}

}  // namespace
}  // namespace vaolib::vao
