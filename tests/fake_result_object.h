// Test alias for the library's synthetic result object. Kept so operator
// tests read naturally ("FakeResultObject"); the implementation lives in
// the public header vao/synthetic_result_object.h, where example code and
// benches can also use it.

#ifndef VAOLIB_TESTS_FAKE_RESULT_OBJECT_H_
#define VAOLIB_TESTS_FAKE_RESULT_OBJECT_H_

#include "vao/synthetic_result_object.h"

namespace vaolib::vao::testing {

using FakeResultObject = ::vaolib::vao::SyntheticResultObject;

}  // namespace vaolib::vao::testing

#endif  // VAOLIB_TESTS_FAKE_RESULT_OBJECT_H_
