// Tests for the batch execution tier: SoA numeric kernels (tridiagonal,
// RK4, quadrature, PDE march) must be bit-identical to their scalar
// counterparts lane by lane, per-lane failures must stay isolated, the
// vao::IterateBatch dispatcher must attribute per-object spends that sum
// exactly to the shared meter delta, and the batch-greedy strategy/operators
// must reproduce the paper's greedy semantics at K=1 while converging to the
// same answers at K>1.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <numbers>
#include <vector>

#include "common/work_meter.h"
#include "engine/scheduler.h"
#include "numeric/integration.h"
#include "numeric/ode_ivp.h"
#include "numeric/pde_solver.h"
#include "numeric/tridiagonal.h"
#include "operators/iteration_strategy.h"
#include "operators/iteration_task.h"
#include "operators/min_max.h"
#include "operators/sum_ave.h"
#include "operators/top_k.h"
#include "vao/batch_iterate.h"
#include "vao/integral_result_object.h"
#include "vao/ivp_result_object.h"
#include "vao/pde_result_object.h"

namespace vaolib {
namespace {

// Small deterministic generator so lanes get diverse but repeatable bands.
double Lcg01(std::uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>((*state >> 11) & 0xFFFFFFFFULL) / 4294967296.0;
}

numeric::TridiagonalSystem LaneSystem(const numeric::TridiagonalBatch& batch,
                                      std::size_t lane) {
  numeric::TridiagonalSystem sys;
  sys.Resize(batch.rows);
  for (std::size_t i = 0; i < batch.rows; ++i) {
    const std::size_t at = batch.IndexOf(i, lane);
    sys.lower[i] = batch.lower[at];
    sys.diag[i] = batch.diag[at];
    sys.upper[i] = batch.upper[at];
    sys.rhs[i] = batch.rhs[at];
  }
  return sys;
}

void FillDominantBatch(numeric::TridiagonalBatch* batch, std::size_t k,
                       std::size_t n, std::uint64_t seed) {
  batch->Resize(k, n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < k; ++s) {
      const std::size_t at = batch->IndexOf(i, s);
      const double lo = Lcg01(&state) - 0.5;
      const double up = Lcg01(&state) - 0.5;
      batch->lower[at] = lo;
      batch->upper[at] = up;
      // Strict diagonal dominance keeps every pivot healthy.
      batch->diag[at] = 2.0 + std::abs(lo) + std::abs(up) + Lcg01(&state);
      batch->rhs[at] = 4.0 * (Lcg01(&state) - 0.5);
    }
  }
}

TEST(TridiagonalBatchTest, MatchesScalarBitExactAcrossRaggedK) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                              std::size_t{17}}) {
    numeric::TridiagonalBatch batch;
    FillDominantBatch(&batch, k, 24, 0xB007ull ^ (k * 977));
    std::vector<double> solutions;
    numeric::BatchKernelReport report;
    ASSERT_TRUE(
        numeric::SolveTridiagonalBatch(batch, &solutions, &report).ok());
    EXPECT_TRUE(report.all_ok());
    for (std::size_t s = 0; s < k; ++s) {
      const numeric::TridiagonalSystem sys = LaneSystem(batch, s);
      std::vector<double> x;
      ASSERT_TRUE(numeric::SolveTridiagonal(sys, &x).ok());
      for (std::size_t i = 0; i < batch.rows; ++i) {
        // Bit-exact, not approximately equal: the lockstep kernel performs
        // the identical IEEE operation sequence per lane.
        EXPECT_EQ(solutions[batch.IndexOf(i, s)], x[i])
            << "k=" << k << " lane=" << s << " row=" << i;
      }
    }
  }
}

TEST(TridiagonalBatchTest, PivotFailureMidBatchIsIsolated) {
  numeric::TridiagonalBatch batch;
  FillDominantBatch(&batch, 3, 6, 0x5EED);
  // Break lane 1 at row 2: zero diagonal and no coupling from below makes
  // the pivot exactly zero there.
  batch.diag[batch.IndexOf(2, 1)] = 0.0;
  batch.lower[batch.IndexOf(2, 1)] = 0.0;

  std::vector<double> solutions;
  numeric::BatchKernelReport report;
  ASSERT_TRUE(
      numeric::SolveTridiagonalBatch(batch, &solutions, &report).ok());
  EXPECT_FALSE(report.ok(1));
  EXPECT_EQ(report.failed_row[1], 2);
  EXPECT_EQ(report.num_failed(), 1u);

  // The scalar solver agrees the broken lane is singular...
  std::vector<double> x;
  EXPECT_EQ(numeric::SolveTridiagonal(LaneSystem(batch, 1), &x).code(),
            StatusCode::kNumericError);
  // ...and the healthy neighbours are untouched, bit for bit.
  for (const std::size_t s : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(report.ok(s));
    ASSERT_TRUE(numeric::SolveTridiagonal(LaneSystem(batch, s), &x).ok());
    for (std::size_t i = 0; i < batch.rows; ++i) {
      EXPECT_EQ(solutions[batch.IndexOf(i, s)], x[i]);
    }
  }
}

TEST(TridiagonalBatchTest, CallerScratchIsReusable) {
  numeric::TridiagonalBatch batch;
  FillDominantBatch(&batch, 4, 12, 0xCAFE);
  numeric::TridiagonalBatchScratch scratch;
  std::vector<double> first;
  std::vector<double> second;
  numeric::BatchKernelReport report;
  ASSERT_TRUE(
      numeric::SolveTridiagonalBatch(batch, &first, &report, &scratch).ok());
  ASSERT_TRUE(
      numeric::SolveTridiagonalBatch(batch, &second, &report, &scratch).ok());
  EXPECT_EQ(first, second);
}

TEST(Rk4BatchTest, MatchesScalarBitExact) {
  numeric::OdeIvpBatch batch;
  for (int lane = 0; lane < 5; ++lane) {
    numeric::OdeIvpProblem problem;
    const double a = 0.3 + 0.2 * lane;
    problem.f = [a](double /*t*/, double y) { return a * y; };
    problem.t0 = 0.0;
    problem.y0 = 1.0 + 0.1 * lane;
    problem.t1 = 1.0;
    batch.problems.push_back(problem);
  }

  WorkMeter batch_meter;
  std::vector<double> results;
  numeric::BatchKernelReport report;
  ASSERT_TRUE(numeric::SolveOdeIvpRk4Batch(batch, 16, &batch_meter, &results,
                                           &report)
                  .ok());
  EXPECT_TRUE(report.all_ok());

  WorkMeter scalar_meter;
  for (std::size_t lane = 0; lane < batch.problems.size(); ++lane) {
    auto scalar =
        numeric::SolveOdeIvpRk4(batch.problems[lane], 16, &scalar_meter);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(results[lane], scalar.value()) << "lane=" << lane;
  }
  // The batch charges exactly what the scalar solves would have.
  EXPECT_EQ(batch_meter.Total(), scalar_meter.Total());
}

TEST(Rk4BatchTest, InvalidLaneIsIsolated) {
  numeric::OdeIvpBatch batch;
  numeric::OdeIvpProblem good;
  good.f = [](double, double y) { return -y; };
  good.t1 = 1.0;
  good.y0 = 2.0;
  numeric::OdeIvpProblem bad = good;
  bad.t1 = -1.0;  // t1 <= t0
  batch.problems = {good, bad, good};

  WorkMeter meter;
  std::vector<double> results;
  numeric::BatchKernelReport report;
  ASSERT_TRUE(
      numeric::SolveOdeIvpRk4Batch(batch, 8, &meter, &results, &report).ok());
  EXPECT_FALSE(report.ok(1));
  EXPECT_EQ(report.failed_row[1], 0);
  auto scalar = numeric::SolveOdeIvpRk4(good, 8, nullptr);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(results[0], scalar.value());
  EXPECT_EQ(results[2], scalar.value());
}

TEST(IntegrationBatchTest, RefineBatchMatchesScalarForEveryRule) {
  for (const numeric::IntegrationRule rule :
       {numeric::IntegrationRule::kTrapezoid,
        numeric::IntegrationRule::kSimpson,
        numeric::IntegrationRule::kRomberg}) {
    numeric::RefinableIntegral::Options options;
    options.rule = rule;
    auto make_set = [&](WorkMeter* meter) {
      std::vector<numeric::RefinableIntegral> set;
      for (int lane = 0; lane < 4; ++lane) {
        const double c = 1.0 + 0.5 * lane;
        auto created = numeric::RefinableIntegral::Create(
            [c](double x) { return c * std::sin(x) + x * x; }, 0.0,
            1.0 + 0.25 * lane, options, meter);
        EXPECT_TRUE(created.ok());
        set.push_back(std::move(created).value());
      }
      return set;
    };

    WorkMeter scalar_meter;
    WorkMeter batch_meter;
    std::vector<numeric::RefinableIntegral> scalar_set =
        make_set(&scalar_meter);
    std::vector<numeric::RefinableIntegral> batch_set = make_set(&batch_meter);
    std::vector<numeric::RefinableIntegral*> batch_ptrs;
    for (auto& integral : batch_set) batch_ptrs.push_back(&integral);

    for (int round = 0; round < 3; ++round) {
      for (auto& integral : scalar_set) {
        ASSERT_TRUE(integral.Refine(&scalar_meter).ok());
      }
      ASSERT_TRUE(
          numeric::RefinableIntegral::RefineBatch(batch_ptrs, &batch_meter)
              .ok());
      for (std::size_t lane = 0; lane < scalar_set.size(); ++lane) {
        EXPECT_EQ(batch_set[lane].estimate(), scalar_set[lane].estimate())
            << "rule=" << static_cast<int>(rule) << " round=" << round
            << " lane=" << lane;
        EXPECT_EQ(batch_set[lane].error_bound(),
                  scalar_set[lane].error_bound());
        EXPECT_EQ(batch_set[lane].level(), scalar_set[lane].level());
      }
    }
    EXPECT_EQ(batch_meter.Total(), scalar_meter.Total());
  }
}

TEST(IntegrationBatchTest, RejectsMixedLevels) {
  numeric::RefinableIntegral::Options options;
  auto a = numeric::RefinableIntegral::Create(
      [](double x) { return x; }, 0.0, 1.0, options, nullptr);
  auto b = numeric::RefinableIntegral::Create(
      [](double x) { return x * x; }, 0.0, 1.0, options, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  numeric::RefinableIntegral one = std::move(a).value();
  numeric::RefinableIntegral two = std::move(b).value();
  ASSERT_TRUE(one.Refine(nullptr).ok());
  EXPECT_EQ(
      numeric::RefinableIntegral::RefineBatch({&one, &two}, nullptr).code(),
      StatusCode::kInvalidArgument);
}

numeric::Pde1dProblem HeatProblem(double amplitude) {
  numeric::Pde1dProblem problem;
  problem.diffusion = [](double) { return 0.5; };
  problem.convection = [](double) { return 0.0; };
  problem.reaction = [](double) { return 0.0; };
  problem.source = [](double) { return 0.0; };
  problem.terminal = [amplitude](double x) {
    return amplitude * std::sin(std::numbers::pi * x);
  };
  problem.x_min = 0.0;
  problem.x_max = 1.0;
  problem.t_end = 0.25;
  problem.left_boundary = numeric::BoundaryKind::kDirichlet;
  problem.right_boundary = numeric::BoundaryKind::kDirichlet;
  problem.left_value = [](double) { return 0.0; };
  problem.right_value = [](double) { return 0.0; };
  return problem;
}

TEST(PdeBatchTest, ProfileBatchMatchesScalarBitExact) {
  std::vector<numeric::Pde1dProblem> problems;
  for (int lane = 0; lane < 3; ++lane) {
    problems.push_back(HeatProblem(1.0 + 0.5 * lane));
  }
  std::vector<const numeric::Pde1dProblem*> ptrs;
  for (const auto& problem : problems) ptrs.push_back(&problem);
  const numeric::PdeGrid grid{16, 16};

  WorkMeter batch_meter;
  std::vector<std::vector<double>> profiles;
  numeric::BatchKernelReport report;
  ASSERT_TRUE(numeric::SolvePdeProfileBatch(ptrs, grid, &batch_meter,
                                            &profiles, &report)
                  .ok());
  EXPECT_TRUE(report.all_ok());

  WorkMeter scalar_meter;
  for (std::size_t lane = 0; lane < problems.size(); ++lane) {
    auto scalar =
        numeric::SolvePdeProfile(problems[lane], grid, &scalar_meter);
    ASSERT_TRUE(scalar.ok());
    ASSERT_EQ(profiles[lane].size(), scalar.value().size());
    for (std::size_t i = 0; i < scalar.value().size(); ++i) {
      EXPECT_EQ(profiles[lane][i], scalar.value()[i])
          << "lane=" << lane << " node=" << i;
    }
  }
  EXPECT_EQ(batch_meter.Total(), scalar_meter.Total());
}

TEST(PdeBatchTest, QueryBatchMatchesScalar) {
  std::vector<numeric::Pde1dProblem> problems = {HeatProblem(1.0),
                                                 HeatProblem(2.0)};
  std::vector<const numeric::Pde1dProblem*> ptrs = {&problems[0],
                                                    &problems[1]};
  const numeric::PdeGrid grid{8, 8};
  const std::vector<double> query_x = {0.3, 0.7};

  std::vector<double> values;
  numeric::BatchKernelReport report;
  ASSERT_TRUE(numeric::SolvePdeBatch(ptrs, grid, query_x, nullptr, &values,
                                     &report)
                  .ok());
  for (std::size_t lane = 0; lane < ptrs.size(); ++lane) {
    auto scalar =
        numeric::SolvePde(problems[lane], grid, query_x[lane], nullptr);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(values[lane], scalar.value());
  }
}

TEST(PdeBatchTest, RejectsEmptyBatch) {
  std::vector<std::vector<double>> profiles;
  numeric::BatchKernelReport report;
  EXPECT_EQ(numeric::SolvePdeProfileBatch({}, numeric::PdeGrid{8, 8}, nullptr,
                                          &profiles, &report)
                .code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// vao::IterateBatch dispatcher
// --------------------------------------------------------------------------

std::vector<vao::ResultObjectPtr> MakeIvpSet(WorkMeter* meter) {
  std::vector<vao::ResultObjectPtr> owned;
  for (int lane = 0; lane < 4; ++lane) {
    numeric::OdeIvpProblem problem;
    const double a = 0.2 + 0.15 * lane;
    problem.f = [a](double /*t*/, double y) { return a * y; };
    problem.y0 = 1.0;
    problem.t1 = 1.0;
    vao::IvpResultOptions options;
    auto created = vao::IvpResultObject::Create(problem, options, meter);
    EXPECT_TRUE(created.ok());
    owned.push_back(std::move(created).value());
  }
  return owned;
}

std::vector<vao::ResultObjectPtr> MakeIntegralSet(WorkMeter* meter) {
  std::vector<vao::ResultObjectPtr> owned;
  for (int lane = 0; lane < 4; ++lane) {
    vao::IntegralProblem problem;
    const double c = 1.0 + 0.5 * lane;
    problem.integrand = [c](double x) { return c * std::exp(-x * x); };
    problem.a = 0.0;
    problem.b = 1.0 + 0.1 * lane;
    vao::IntegralResultOptions options;
    auto created = vao::IntegralResultObject::Create(problem, options, meter);
    EXPECT_TRUE(created.ok());
    owned.push_back(std::move(created).value());
  }
  return owned;
}

std::vector<vao::ResultObject*> RawPointers(
    const std::vector<vao::ResultObjectPtr>& owned) {
  std::vector<vao::ResultObject*> raw;
  for (const auto& object : owned) raw.push_back(object.get());
  return raw;
}

void ExpectIterateBatchMatchesScalar(
    std::vector<vao::ResultObjectPtr> scalar_set, WorkMeter* scalar_meter,
    std::vector<vao::ResultObjectPtr> batch_set, WorkMeter* batch_meter,
    bool expect_kernel_group) {
  for (const auto& object : scalar_set) {
    ASSERT_TRUE(object->Iterate().ok());
  }
  const std::uint64_t before = batch_meter->Total();
  const vao::BatchIterateOutcome outcome =
      vao::IterateBatch(RawPointers(batch_set), batch_meter);
  const std::uint64_t delta = batch_meter->Total() - before;

  std::uint64_t attributed = 0;
  for (std::size_t i = 0; i < batch_set.size(); ++i) {
    ASSERT_TRUE(outcome.statuses[i].ok()) << outcome.statuses[i].ToString();
    attributed += outcome.spent[i];
    const Bounds scalar_bounds = scalar_set[i]->bounds();
    const Bounds batch_bounds = batch_set[i]->bounds();
    EXPECT_EQ(batch_bounds.lo, scalar_bounds.lo) << "object " << i;
    EXPECT_EQ(batch_bounds.hi, scalar_bounds.hi) << "object " << i;
  }
  // PR4 accounting invariant: per-object spends sum EXACTLY to the meter
  // delta of the whole call.
  EXPECT_EQ(attributed, delta);
  if (expect_kernel_group) {
    EXPECT_EQ(outcome.kernel_batches, 1u);
    EXPECT_EQ(outcome.kernel_objects, batch_set.size());
  }
  // The scalar twin charged its own meter the same total.
  (void)scalar_meter;
}

TEST(IterateBatchTest, IvpGroupMatchesScalarWithExactAccounting) {
  WorkMeter scalar_meter;
  WorkMeter batch_meter;
  auto scalar_set = MakeIvpSet(&scalar_meter);
  auto batch_set = MakeIvpSet(&batch_meter);
  const std::uint64_t scalar_before = scalar_meter.Total();
  const std::uint64_t batch_before = batch_meter.Total();
  ExpectIterateBatchMatchesScalar(std::move(scalar_set), &scalar_meter,
                                  std::move(batch_set), &batch_meter,
                                  /*expect_kernel_group=*/true);
  EXPECT_EQ(batch_meter.Total() - batch_before,
            scalar_meter.Total() - scalar_before);
}

TEST(IterateBatchTest, IntegralGroupMatchesScalarWithExactAccounting) {
  WorkMeter scalar_meter;
  WorkMeter batch_meter;
  auto scalar_set = MakeIntegralSet(&scalar_meter);
  auto batch_set = MakeIntegralSet(&batch_meter);
  const std::uint64_t scalar_before = scalar_meter.Total();
  const std::uint64_t batch_before = batch_meter.Total();
  ExpectIterateBatchMatchesScalar(std::move(scalar_set), &scalar_meter,
                                  std::move(batch_set), &batch_meter,
                                  /*expect_kernel_group=*/true);
  EXPECT_EQ(batch_meter.Total() - batch_before,
            scalar_meter.Total() - scalar_before);
}

TEST(IterateBatchTest, PdeGroupMatchesScalar) {
  WorkMeter scalar_meter;
  WorkMeter batch_meter;
  auto make_set = [](WorkMeter* meter) {
    std::vector<vao::ResultObjectPtr> owned;
    for (int lane = 0; lane < 3; ++lane) {
      vao::PdeResultOptions options;
      auto created = vao::PdeResultObject::Create(
          HeatProblem(1.0 + 0.5 * lane), 0.5, options, meter);
      EXPECT_TRUE(created.ok());
      owned.push_back(std::move(created).value());
    }
    return owned;
  };
  auto scalar_set = make_set(&scalar_meter);
  auto batch_set = make_set(&batch_meter);
  // The first refinement after creation re-uses a memoized probe solve, so
  // advance both twins past it scalar-wise before comparing the batch step.
  for (std::size_t i = 0; i < scalar_set.size(); ++i) {
    ASSERT_TRUE(scalar_set[i]->Iterate().ok());
    ASSERT_TRUE(batch_set[i]->Iterate().ok());
  }
  ExpectIterateBatchMatchesScalar(std::move(scalar_set), &scalar_meter,
                                  std::move(batch_set), &batch_meter,
                                  /*expect_kernel_group=*/false);
}

TEST(IterateBatchTest, MixedTypesFallBackToScalar) {
  WorkMeter meter;
  auto ivp_set = MakeIvpSet(&meter);
  auto integral_set = MakeIntegralSet(&meter);
  std::vector<vao::ResultObject*> mixed = {ivp_set[0].get(),
                                           integral_set[0].get()};
  const std::uint64_t before = meter.Total();
  const vao::BatchIterateOutcome outcome = vao::IterateBatch(mixed, &meter);
  ASSERT_TRUE(outcome.statuses[0].ok());
  ASSERT_TRUE(outcome.statuses[1].ok());
  // Keys differ, so each object is a group of one: no kernel dispatch, but
  // the accounting invariant still holds.
  EXPECT_EQ(outcome.kernel_batches, 0u);
  EXPECT_EQ(outcome.spent[0] + outcome.spent[1], meter.Total() - before);
}

// --------------------------------------------------------------------------
// Batch-greedy strategy and operators
// --------------------------------------------------------------------------

TEST(BatchGreedyStrategyTest, ChooseBatchAtK1MatchesGreedyChoose) {
  auto greedy = operators::MakeStrategy(operators::StrategyKind::kGreedy,
                                        nullptr);
  auto batch = operators::MakeStrategy(operators::StrategyKind::kBatchGreedy,
                                       nullptr);
  ASSERT_TRUE(greedy.ok() && batch.ok());

  const std::vector<std::vector<operators::IterationCandidate>> cases = {
      // Distinct scores.
      {{0, 4.0, 2.0, 1.0}, {1, 9.0, 3.0, 2.0}, {2, 1.0, 1.0, 3.0}},
      // Tied best score: first maximum must win.
      {{5, 6.0, 2.0, 1.0}, {7, 3.0, 1.0, 2.0}, {9, 9.0, 3.0, 0.5}},
      // No predicted progress: widest actual width wins.
      {{2, 0.0, 1.0, 0.5}, {4, 0.0, 1.0, 1.5}, {6, 0.0, 1.0, 1.0}},
  };
  for (const auto& candidates : cases) {
    const std::size_t want = greedy.value()->Choose(candidates);
    std::vector<std::size_t> chosen;
    batch.value()->ChooseBatch(candidates, 1, &chosen);
    ASSERT_EQ(chosen.size(), 1u);
    EXPECT_EQ(chosen.front(), want);
    // And Choose() itself agrees too.
    EXPECT_EQ(batch.value()->Choose(candidates), want);
  }
}

TEST(BatchGreedyStrategyTest, ChooseBatchRanksTopKByScore) {
  auto batch = operators::MakeStrategy(operators::StrategyKind::kBatchGreedy,
                                       nullptr);
  ASSERT_TRUE(batch.ok());
  const std::vector<operators::IterationCandidate> candidates = {
      {10, 2.0, 1.0, 0.1},   // score 2
      {11, 12.0, 2.0, 0.2},  // score 6  <- best
      {12, 4.0, 1.0, 0.3},   // score 4
      {13, 1.0, 2.0, 0.4},   // score 0.5
  };
  std::vector<std::size_t> chosen;
  batch.value()->ChooseBatch(candidates, 3, &chosen);
  EXPECT_EQ(chosen, (std::vector<std::size_t>{11, 12, 10}));

  // Requesting more than available clamps to the candidate count.
  batch.value()->ChooseBatch(candidates, 99, &chosen);
  EXPECT_EQ(chosen.size(), candidates.size());

  // Width fallback ranking when nothing predicts progress.
  const std::vector<operators::IterationCandidate> flat = {
      {20, 0.0, 1.0, 0.5}, {21, 0.0, 1.0, 2.5}, {22, 0.0, 1.0, 1.5}};
  batch.value()->ChooseBatch(flat, 2, &chosen);
  EXPECT_EQ(chosen, (std::vector<std::size_t>{21, 22}));
}

TEST(BatchGreedyOperatorTest, MinMaxK1MatchesGreedyExactly) {
  WorkMeter greedy_meter;
  WorkMeter batch_meter;
  auto greedy_objects = MakeIntegralSet(&greedy_meter);
  auto batch_objects = MakeIntegralSet(&batch_meter);

  operators::MinMaxOptions greedy_options;
  greedy_options.epsilon = 1e-6;
  greedy_options.meter = &greedy_meter;
  operators::MinMaxOptions batch_options = greedy_options;
  batch_options.strategy = operators::StrategyKind::kBatchGreedy;
  batch_options.batch_k = 1;
  batch_options.meter = &batch_meter;

  auto greedy_outcome =
      operators::MinMaxVao(greedy_options).Evaluate(RawPointers(greedy_objects));
  auto batch_outcome =
      operators::MinMaxVao(batch_options).Evaluate(RawPointers(batch_objects));
  ASSERT_TRUE(greedy_outcome.ok() && batch_outcome.ok());

  EXPECT_EQ(batch_outcome.value().winner_index,
            greedy_outcome.value().winner_index);
  EXPECT_EQ(batch_outcome.value().winner_bounds.lo,
            greedy_outcome.value().winner_bounds.lo);
  EXPECT_EQ(batch_outcome.value().winner_bounds.hi,
            greedy_outcome.value().winner_bounds.hi);
  EXPECT_EQ(batch_outcome.value().stats.iterations,
            greedy_outcome.value().stats.iterations);
  // K=1 preserves the paper's semantics to the work unit.
  EXPECT_EQ(batch_meter.Total(), greedy_meter.Total());
}

TEST(BatchGreedyOperatorTest, MinMaxK4ConvergesToTheSameWinner) {
  WorkMeter greedy_meter;
  WorkMeter batch_meter;
  auto greedy_objects = MakeIntegralSet(&greedy_meter);
  auto batch_objects = MakeIntegralSet(&batch_meter);

  operators::MinMaxOptions greedy_options;
  greedy_options.epsilon = 1e-6;
  greedy_options.meter = &greedy_meter;
  operators::MinMaxOptions batch_options = greedy_options;
  batch_options.strategy = operators::StrategyKind::kBatchGreedy;
  batch_options.batch_k = 4;
  batch_options.meter = &batch_meter;

  auto greedy_outcome =
      operators::MinMaxVao(greedy_options).Evaluate(RawPointers(greedy_objects));
  auto batch_outcome =
      operators::MinMaxVao(batch_options).Evaluate(RawPointers(batch_objects));
  ASSERT_TRUE(greedy_outcome.ok() && batch_outcome.ok());
  EXPECT_TRUE(batch_outcome.value().converged);
  EXPECT_EQ(batch_outcome.value().winner_index,
            greedy_outcome.value().winner_index);
  EXPECT_LE(batch_outcome.value().winner_bounds.Width(), 1e-6);
}

TEST(BatchGreedyOperatorTest, SumAveBatchKConvergesScanAndHeap) {
  const std::vector<double> weights = {1.0, 2.0, 0.5, 1.5};
  for (const bool heap : {false, true}) {
    for (const int batch_k : {1, 4}) {
      WorkMeter meter;
      auto objects = MakeIntegralSet(&meter);
      operators::SumAveOptions options;
      options.epsilon = 1e-5;
      options.strategy = operators::StrategyKind::kBatchGreedy;
      options.batch_k = batch_k;
      options.use_heap_index = heap;
      options.meter = &meter;
      auto outcome =
          operators::SumAveVao(options).Evaluate(RawPointers(objects), weights);
      ASSERT_TRUE(outcome.ok()) << "heap=" << heap << " k=" << batch_k;
      EXPECT_TRUE(outcome.value().converged);
      EXPECT_LE(outcome.value().sum_bounds.Width(), 1e-5);
      // The converged interval must contain the weighted true sum.
      double truth = 0.0;
      for (int lane = 0; lane < 4; ++lane) {
        const double c = 1.0 + 0.5 * lane;
        const double b = 1.0 + 0.1 * lane;
        // \int_0^b c e^{-x^2} dx = c * sqrt(pi)/2 * erf(b).
        truth += weights[lane] * c * std::sqrt(std::numbers::pi) / 2.0 *
                 std::erf(b);
      }
      EXPECT_LE(outcome.value().sum_bounds.lo, truth + 1e-9);
      EXPECT_GE(outcome.value().sum_bounds.hi, truth - 1e-9);
    }
  }
}

TEST(BatchGreedyOperatorTest, TopKBatchKConverges) {
  WorkMeter meter;
  auto objects = MakeIntegralSet(&meter);
  operators::TopKOptions options;
  options.k = 2;
  options.epsilon = 1e-5;
  options.strategy = operators::StrategyKind::kBatchGreedy;
  options.batch_k = 4;
  options.meter = &meter;
  auto outcome = operators::TopKVao(options).Evaluate(RawPointers(objects));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().converged);
  ASSERT_EQ(outcome.value().winners.size(), 2u);
  // Integrands scale with the lane constant, so the top-2 are lanes 3, 2.
  EXPECT_EQ(outcome.value().winners[0], 3u);
  EXPECT_EQ(outcome.value().winners[1], 2u);
}

TEST(SchedulerBatchTest, BatchRoundsPreserveExactAccounting) {
  WorkMeter meter;
  auto objects_a = MakeIntegralSet(&meter);
  auto objects_b = MakeIntegralSet(&meter);

  operators::MinMaxOptions options;
  options.epsilon = 1e-5;
  options.meter = &meter;
  auto task_a =
      operators::MinMaxIterationTask::Create(options, RawPointers(objects_a));
  auto task_b =
      operators::MinMaxIterationTask::Create(options, RawPointers(objects_b));
  ASSERT_TRUE(task_a.ok() && task_b.ok());

  engine::SchedulerOptions scheduler_options;
  scheduler_options.batch_k = 2;
  engine::WorkScheduler scheduler(scheduler_options);
  const std::uint64_t before = meter.Total();
  auto stats = scheduler.Run(
      {{task_a.value().get(), {}}, {task_b.value().get(), {}}}, &meter);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(task_a.value()->Done());
  EXPECT_TRUE(task_b.value()->Done());
  std::uint64_t attributed = 0;
  for (const auto& entry : stats.value()) attributed += entry.spent;
  EXPECT_EQ(attributed, meter.Total() - before);
}

}  // namespace
}  // namespace vaolib
