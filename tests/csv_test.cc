// Tests for CSV relation I/O, SQL-parser robustness fuzzing, and the
// two-factor model running through the query engine.

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "engine/csv.h"
#include "engine/executor.h"
#include "engine/sql_parser.h"
#include "finance/bond_model.h"
#include "finance/two_factor_model.h"
#include "workload/portfolio_gen.h"

namespace vaolib::engine {
namespace {

TEST(CsvSplitTest, PlainAndQuotedFields) {
  auto fields = SplitCsvRecord("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));

  fields = SplitCsvRecord("\"x,y\",plain,\"he said \"\"hi\"\"\"");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"x,y", "plain",
                                               "he said \"hi\""}));

  fields = SplitCsvRecord("one");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 1u);

  fields = SplitCsvRecord("a,,c");  // empty field preserved
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "");
}

TEST(CsvSplitTest, RejectsMalformedQuoting) {
  EXPECT_FALSE(SplitCsvRecord("\"unterminated").ok());
  EXPECT_FALSE(SplitCsvRecord("ab\"cd").ok());
}

TEST(CsvLoadTest, RoundTripsThroughSave) {
  const Schema schema({{"id", ColumnType::kInt},
                       {"name", ColumnType::kString},
                       {"weight", ColumnType::kDouble}});
  Relation original(schema);
  ASSERT_TRUE(original.Append({std::int64_t{1}, "alpha, beta", 1.5}).ok());
  ASSERT_TRUE(original.Append({std::int64_t{2}, "plain", -0.25}).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveRelationCsv(original, buffer).ok());
  const auto loaded = LoadRelationCsv(buffer, schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->At(0, 0).ValueOrDie().AsInt().ValueOrDie(), 1);
  EXPECT_EQ(loaded->At(0, 1).ValueOrDie().AsString().ValueOrDie(),
            "alpha, beta");
  EXPECT_DOUBLE_EQ(
      loaded->At(1, 2).ValueOrDie().AsDouble().ValueOrDie(), -0.25);
}

TEST(CsvLoadTest, SkipsBlankLinesAndToleratesCrlf) {
  const Schema schema({{"x", ColumnType::kDouble}});
  std::stringstream input("x\r\n1.5\r\n\r\n2.5\n");
  const auto relation = LoadRelationCsv(input, schema);
  ASSERT_TRUE(relation.ok()) << relation.status();
  EXPECT_EQ(relation->size(), 2u);
}

TEST(CsvLoadTest, RejectsBadInputsWithLineNumbers) {
  const Schema schema({{"id", ColumnType::kInt},
                       {"w", ColumnType::kDouble}});
  {
    std::stringstream input("");
    EXPECT_FALSE(LoadRelationCsv(input, schema).ok());
  }
  {
    std::stringstream input("id,wrong\n1,2\n");
    EXPECT_FALSE(LoadRelationCsv(input, schema).ok());  // header mismatch
  }
  {
    std::stringstream input("id,w\n1\n");
    const auto result = LoadRelationCsv(input, schema);
    ASSERT_FALSE(result.ok());  // arity
    EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  }
  {
    std::stringstream input("id,w\nnotanint,2.0\n");
    EXPECT_FALSE(LoadRelationCsv(input, schema).ok());
  }
  {
    std::stringstream input("id,w\n1,notadouble\n");
    EXPECT_FALSE(LoadRelationCsv(input, schema).ok());
  }
  EXPECT_EQ(LoadRelationCsvFile("/nonexistent/path.csv", schema)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CsvLoadTest, LoadedRelationDrivesAQuery) {
  const Schema schema({{"bond_index", ColumnType::kDouble}});
  std::stringstream input("bond_index\n0\n1\n2\n");
  const auto relation = LoadRelationCsv(input, schema);
  ASSERT_TRUE(relation.ok());

  workload::PortfolioSpec spec;
  spec.count = 3;
  const finance::BondPricingFunction model(
      workload::GeneratePortfolio(606, spec), finance::BondModelConfig{});
  Query query;
  query.kind = QueryKind::kMax;
  query.function = &model;
  query.args = {ArgRef::StreamField("rate"),
                ArgRef::RelationField("bond_index")};
  query.epsilon = 0.01;
  auto executor = CqExecutor::Create(
      &*relation, Schema({{"rate", ColumnType::kDouble}}), query,
      ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok());
  const auto result = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->winner_row.has_value());
}

// ---------------------------------------------------------------------------
// SQL parser robustness: random garbage must produce clean errors, and
// token-dropped variants of a valid query must never crash.

TEST(SqlParserFuzzTest, RandomGarbageNeverCrashes) {
  FunctionRegistry registry;
  const Schema stream({{"rate", ColumnType::kDouble}});
  const Schema relation({{"bond_index", ColumnType::kDouble}});
  Rng rng(777);
  const std::string alphabet =
      "SELECT MAX(model rate, bond_index)*<>=0.19 FROM bd WHERE \"'%\n\t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql;
    const auto len = rng.UniformInt(0, 60);
    for (int i = 0; i < len; ++i) {
      sql += alphabet[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    const auto result = ParseQuery(sql, registry, stream, relation);
    // Almost everything fails to parse; the point is: Status, not UB.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(SqlParserFuzzTest, TokenDroppedVariantsFailCleanly) {
  workload::PortfolioSpec spec;
  spec.count = 1;
  const finance::BondPricingFunction model(
      workload::GeneratePortfolio(607, spec), finance::BondModelConfig{});
  FunctionRegistry registry;
  ASSERT_TRUE(registry.Register(&model).ok());
  const Schema stream({{"rate", ColumnType::kDouble}});
  const Schema relation({{"bond_index", ColumnType::kDouble}});

  const std::string sql =
      "SELECT SUM(bond_model(rate, bond_index)) FROM bd PRECISION 5";
  // Drop every single character in turn; parse must never crash and a
  // successful parse must still be a SUM query.
  for (std::size_t i = 0; i < sql.size(); ++i) {
    std::string variant = sql;
    variant.erase(i, 1);
    const auto result = ParseQuery(variant, registry, stream, relation);
    if (result.ok()) {
      EXPECT_EQ(result->kind, QueryKind::kSum);
    }
  }
}

// ---------------------------------------------------------------------------
// Two-factor model through the engine (stream rate + constant index level).

TEST(TwoFactorEngineTest, MaxQueryOverTwoFactorModel) {
  workload::PortfolioSpec spec;
  spec.count = 3;
  finance::TwoFactorModelConfig config;
  config.pde.min_width = 0.25;  // coarse for test speed
  const finance::TwoFactorBondPricingFunction model(
      workload::GeneratePortfolio(608, spec), config);

  Relation bd(Schema({{"bond_index", ColumnType::kDouble}}));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(bd.Append({static_cast<double>(i)}).ok());
  }
  Query query;
  query.kind = QueryKind::kMax;
  query.function = &model;
  query.args = {ArgRef::StreamField("rate"), ArgRef::Constant(0.1),
                ArgRef::RelationField("bond_index")};
  query.epsilon = 0.25;

  auto executor = CqExecutor::Create(
      &bd, Schema({{"rate", ColumnType::kDouble}}), query,
      ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok()) << executor.status();
  const auto result = (*executor)->ProcessTick({0.0575});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->winner_row.has_value());
  EXPECT_LE(result->aggregate_bounds.Width(), 0.25 + 1e-9);
}

}  // namespace
}  // namespace vaolib::engine
