// Unit tests for src/engine: Value/Schema/Relation plumbing and the
// continuous-query executor running Q1-Q3 over a small bond portfolio in
// both VAO and traditional modes.

#include <gtest/gtest.h>

#include <memory>

#include "engine/executor.h"
#include "engine/query.h"
#include "engine/relation.h"
#include "engine/schema.h"
#include "engine/value.h"
#include "finance/bond_model.h"
#include "workload/portfolio_gen.h"

namespace vaolib::engine {
namespace {

TEST(ValueTest, TypedAccessors) {
  const Value i(std::int64_t{7});
  const Value d(2.5);
  const Value s("text");
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_DOUBLE_EQ(i.AsDouble().ValueOrDie(), 7.0);
  EXPECT_DOUBLE_EQ(d.AsDouble().ValueOrDie(), 2.5);
  EXPECT_FALSE(s.AsDouble().ok());
  EXPECT_EQ(i.AsInt().ValueOrDie(), 7);
  EXPECT_FALSE(d.AsInt().ok());
  EXPECT_EQ(s.AsString().ValueOrDie(), "text");
  EXPECT_EQ(i.ToString(), "7");
  EXPECT_EQ(s.ToString(), "text");
}

TEST(SchemaTest, IndexLookup) {
  const Schema schema({{"rate", ColumnType::kDouble},
                       {"name", ColumnType::kString}});
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.IndexOf("rate").ValueOrDie(), 0u);
  EXPECT_EQ(schema.IndexOf("name").ValueOrDie(), 1u);
  EXPECT_FALSE(schema.IndexOf("missing").ok());
}

TEST(RelationTest, SchemaCheckedAppend) {
  Relation relation(Schema({{"id", ColumnType::kInt},
                            {"weight", ColumnType::kDouble}}));
  EXPECT_TRUE(relation.Append({std::int64_t{0}, 1.5}).ok());
  EXPECT_FALSE(relation.Append({std::int64_t{0}}).ok());       // arity
  EXPECT_FALSE(relation.Append({1.5, std::int64_t{0}}).ok());  // types
  EXPECT_EQ(relation.size(), 1u);
  EXPECT_EQ(relation.At(0, 1).ValueOrDie().AsDouble().ValueOrDie(), 1.5);
  EXPECT_FALSE(relation.At(1, 0).ok());
  EXPECT_FALSE(relation.At(0, 5).ok());
}

TEST(RelationTest, NumericColumn) {
  Relation relation(Schema({{"w", ColumnType::kDouble}}));
  ASSERT_TRUE(relation.Append({1.0}).ok());
  ASSERT_TRUE(relation.Append({2.0}).ok());
  const auto column = relation.NumericColumn("w");
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(*column, (std::vector<double>{1.0, 2.0}));
  EXPECT_FALSE(relation.NumericColumn("missing").ok());
}

// Fixture wiring a small bond portfolio into the engine.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 6;
    bonds_ = workload::GeneratePortfolio(2024, spec);
    function_ = std::make_unique<finance::BondPricingFunction>(
        bonds_, finance::BondModelConfig{});

    relation_ = std::make_unique<Relation>(
        Schema({{"bond_index", ColumnType::kDouble},
                {"weight", ColumnType::kDouble}}));
    for (std::size_t i = 0; i < bonds_.size(); ++i) {
      ASSERT_TRUE(
          relation_
              ->Append({static_cast<double>(i),
                        i == 0 ? 10.0 : 1.0})  // one hot bond
              .ok());
    }
    stream_schema_ = Schema({{"rate", ColumnType::kDouble}});
  }

  Query BaseQuery() const {
    Query query;
    query.function = function_.get();
    query.args = {ArgRef::StreamField("rate"),
                  ArgRef::RelationField("bond_index")};
    return query;
  }

  std::vector<finance::Bond> bonds_;
  std::unique_ptr<finance::BondPricingFunction> function_;
  std::unique_ptr<Relation> relation_;
  Schema stream_schema_;
};

TEST_F(ExecutorTest, SelectionAgreesAcrossModes) {
  Query query = BaseQuery();
  query.kind = QueryKind::kSelect;
  query.cmp = operators::Comparator::kGreaterThan;
  query.constant = 100.0;

  auto vao = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                ExecutionMode::kVao);
  auto trad = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                 ExecutionMode::kTraditional);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE(trad.ok());

  const Tuple tick{0.0575};
  const auto vao_result = (*vao)->ProcessTick(tick);
  const auto trad_result = (*trad)->ProcessTick(tick);
  ASSERT_TRUE(vao_result.ok()) << vao_result.status();
  ASSERT_TRUE(trad_result.ok()) << trad_result.status();
  EXPECT_EQ(vao_result->passing_rows, trad_result->passing_rows);
  EXPECT_FALSE(vao_result->passing_rows.empty());
  EXPECT_LT(vao_result->passing_rows.size(), bonds_.size());
  // The headline claim: far less work with VAOs.
  EXPECT_LT(vao_result->work_units, trad_result->work_units);
}

TEST_F(ExecutorTest, MaxAgreesAcrossModes) {
  Query query = BaseQuery();
  query.kind = QueryKind::kMax;
  query.epsilon = 0.01;

  auto vao = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                ExecutionMode::kVao);
  auto trad = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                 ExecutionMode::kTraditional);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE(trad.ok());
  const Tuple tick{0.0575};
  const auto vao_result = (*vao)->ProcessTick(tick);
  const auto trad_result = (*trad)->ProcessTick(tick);
  ASSERT_TRUE(vao_result.ok()) << vao_result.status();
  ASSERT_TRUE(trad_result.ok());
  ASSERT_TRUE(vao_result->winner_row.has_value());
  ASSERT_TRUE(trad_result->winner_row.has_value());
  EXPECT_EQ(*vao_result->winner_row, *trad_result->winner_row);
  EXPECT_LE(vao_result->aggregate_bounds.Width(), query.epsilon);
  EXPECT_TRUE(vao_result->aggregate_bounds.Contains(
      trad_result->aggregate_bounds.Mid()));
  EXPECT_LT(vao_result->work_units, trad_result->work_units);
}

TEST_F(ExecutorTest, MinAgreesAcrossModes) {
  Query query = BaseQuery();
  query.kind = QueryKind::kMin;
  query.epsilon = 0.01;
  auto vao = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                ExecutionMode::kVao);
  auto trad = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                 ExecutionMode::kTraditional);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE(trad.ok());
  const Tuple tick{0.0575};
  const auto vao_result = (*vao)->ProcessTick(tick);
  const auto trad_result = (*trad)->ProcessTick(tick);
  ASSERT_TRUE(vao_result.ok());
  ASSERT_TRUE(trad_result.ok());
  EXPECT_EQ(*vao_result->winner_row, *trad_result->winner_row);
}

TEST_F(ExecutorTest, WeightedSumBoundsContainTraditionalValue) {
  Query query = BaseQuery();
  query.kind = QueryKind::kSum;
  query.weight_column = "weight";
  query.epsilon = 0.15;  // 15 * $.01, matching the paper's scaling

  auto vao = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                ExecutionMode::kVao);
  auto trad = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                 ExecutionMode::kTraditional);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE(trad.ok());
  const Tuple tick{0.0575};
  const auto vao_result = (*vao)->ProcessTick(tick);
  const auto trad_result = (*trad)->ProcessTick(tick);
  ASSERT_TRUE(vao_result.ok()) << vao_result.status();
  ASSERT_TRUE(trad_result.ok());
  EXPECT_LE(vao_result->aggregate_bounds.Width(), query.epsilon + 1e-9);
  EXPECT_NEAR(vao_result->aggregate_bounds.Mid(),
              trad_result->aggregate_bounds.Mid(),
              query.epsilon);
}

TEST_F(ExecutorTest, AveUsesUniformWeights) {
  Query query = BaseQuery();
  query.kind = QueryKind::kAve;
  query.epsilon = 0.01;
  auto vao = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                ExecutionMode::kVao);
  ASSERT_TRUE(vao.ok());
  const auto result = (*vao)->ProcessTick({0.0575});
  ASSERT_TRUE(result.ok()) << result.status();
  // Average bond price should be near par for this portfolio.
  EXPECT_GT(result->aggregate_bounds.Mid(), 60.0);
  EXPECT_LT(result->aggregate_bounds.Mid(), 160.0);
}

TEST_F(ExecutorTest, MultipleTicksAccumulateWork) {
  Query query = BaseQuery();
  query.kind = QueryKind::kSelect;
  query.constant = 100.0;
  auto vao = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                ExecutionMode::kVao);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE((*vao)->ProcessTick({0.055}).ok());
  const auto after_one = (*vao)->meter().Total();
  ASSERT_TRUE((*vao)->ProcessTick({0.0575}).ok());
  EXPECT_GT((*vao)->meter().Total(), after_one);
  (*vao)->ResetMeter();
  EXPECT_EQ((*vao)->meter().Total(), 0u);
}

TEST_F(ExecutorTest, CreateValidatesBindings) {
  Query query = BaseQuery();
  query.args = {ArgRef::StreamField("rate")};  // wrong arity
  EXPECT_FALSE(CqExecutor::Create(relation_.get(), stream_schema_, query,
                                  ExecutionMode::kVao)
                   .ok());

  query = BaseQuery();
  query.args = {ArgRef::StreamField("nope"),
                ArgRef::RelationField("bond_index")};
  EXPECT_FALSE(CqExecutor::Create(relation_.get(), stream_schema_, query,
                                  ExecutionMode::kVao)
                   .ok());

  query = BaseQuery();
  query.weight_column = "missing";
  query.kind = QueryKind::kSum;
  EXPECT_FALSE(CqExecutor::Create(relation_.get(), stream_schema_, query,
                                  ExecutionMode::kVao)
                   .ok());

  query = BaseQuery();
  query.function = nullptr;
  EXPECT_FALSE(CqExecutor::Create(relation_.get(), stream_schema_, query,
                                  ExecutionMode::kVao)
                   .ok());
  EXPECT_FALSE(CqExecutor::Create(nullptr, stream_schema_, BaseQuery(),
                                  ExecutionMode::kVao)
                   .ok());
}

TEST_F(ExecutorTest, ProcessTickValidatesTuple) {
  auto vao = CqExecutor::Create(relation_.get(), stream_schema_, BaseQuery(),
                                ExecutionMode::kVao);
  ASSERT_TRUE(vao.ok());
  EXPECT_FALSE((*vao)->ProcessTick({}).ok());
  EXPECT_FALSE((*vao)->ProcessTick({0.05, 0.06}).ok());
}

TEST_F(ExecutorTest, ConstantArgBinding) {
  // Bind the rate as a constant instead of a stream field.
  Query query = BaseQuery();
  query.args = {ArgRef::Constant(0.0575),
                ArgRef::RelationField("bond_index")};
  query.kind = QueryKind::kSelect;
  query.constant = 100.0;
  auto vao = CqExecutor::Create(relation_.get(), stream_schema_, query,
                                ExecutionMode::kVao);
  ASSERT_TRUE(vao.ok());
  const auto result = (*vao)->ProcessTick({0.9});  // stream value unused
  ASSERT_TRUE(result.ok()) << result.status();
}

}  // namespace
}  // namespace vaolib::engine
