// Second property suite: invariants of the extension modules, swept with
// parameterized gtest -- two-factor PDE soundness, IVP soundness across an
// ODE family, range/multi-selection equivalence on real bond functions,
// cache-soundness under random partial-iteration patterns, and TOP-K
// equivalence against sorted calibrated values.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.h"
#include "finance/bond_model.h"
#include "finance/two_factor_model.h"
#include "operators/selection.h"
#include "operators/top_k.h"
#include "vao/black_box.h"
#include "vao/function_cache.h"
#include "vao/ivp_result_object.h"
#include "workload/portfolio_gen.h"

namespace vaolib {
namespace {

// ---------------------------------------------------------------------------
// Two-factor PDE soundness (coarse minWidth keeps the sweep fast).

class TwoFactorSoundnessProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoFactorSoundnessProperty, BoundsContainConvergedValueThroughout) {
  workload::PortfolioSpec spec;
  spec.count = 2;
  const auto bonds = workload::GeneratePortfolio(GetParam(), spec);
  finance::TwoFactorModelConfig config;
  config.pde.min_width = 0.25;
  const finance::TwoFactorBondPricingFunction function(bonds, config);

  for (std::size_t bond = 0; bond < bonds.size(); ++bond) {
    const auto args = function.ArgsFor(0.0575, 0.1, bond);
    WorkMeter scratch;
    auto oracle = function.Invoke(args, &scratch);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    ASSERT_TRUE(vao::ConvergeToMinWidth(oracle->get()).ok());
    const double truth = (*oracle)->bounds().Mid();

    WorkMeter meter;
    auto object = function.Invoke(args, &meter);
    ASSERT_TRUE(object.ok());
    int iteration = 0;
    while (!(*object)->AtStoppingCondition()) {
      EXPECT_TRUE((*object)->bounds().Contains(truth))
          << "seed " << GetParam() << " bond " << bond << " iter "
          << iteration << " bounds " << (*object)->bounds() << " truth "
          << truth;
      ASSERT_TRUE((*object)->Iterate().ok());
      ++iteration;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoFactorSoundnessProperty,
                         ::testing::Values(101, 102, 103, 104));

// ---------------------------------------------------------------------------
// IVP soundness across an ODE family.

struct IvpCase {
  const char* name;
  double (*f)(double, double);
  double t1;
  double exact;  // y(t1) with y(0) = 1
};

class IvpSoundnessProperty : public ::testing::TestWithParam<IvpCase> {};

TEST_P(IvpSoundnessProperty, BoundsContainExactThroughout) {
  const IvpCase param = GetParam();
  numeric::OdeIvpProblem problem;
  problem.f = param.f;
  problem.t0 = 0.0;
  problem.y0 = 1.0;
  problem.t1 = param.t1;

  WorkMeter meter;
  auto object = vao::IvpResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(object.ok());
  while (!(*object)->AtStoppingCondition()) {
    EXPECT_TRUE((*object)->bounds().Contains(param.exact))
        << param.name << " " << (*object)->bounds();
    ASSERT_TRUE((*object)->Iterate().ok());
  }
  EXPECT_NEAR((*object)->bounds().Mid(), param.exact, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Odes, IvpSoundnessProperty,
    ::testing::Values(
        IvpCase{"growth", [](double, double y) { return y; }, 1.0,
                2.718281828459045},
        IvpCase{"decay", [](double, double y) { return -2.0 * y; }, 1.0,
                0.1353352832366127},
        IvpCase{"gauss", [](double t, double y) { return -2.0 * t * y; },
                1.0, 0.36787944117144233},
        IvpCase{"forced", [](double t, double y) { return std::cos(t) * y; },
                2.0, 2.4825777280150003}),
    [](const ::testing::TestParamInfo<IvpCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Range and multi-predicate selection on real bond functions.

class SelectionFamilyProperty
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    workload::PortfolioSpec spec;
    spec.count = 4;
    function_ = std::make_unique<finance::BondPricingFunction>(
        workload::GeneratePortfolio(GetParam(), spec),
        finance::BondModelConfig{});
    black_box_ = std::make_unique<vao::CalibratedBlackBox>(function_.get());
  }
  std::unique_ptr<finance::BondPricingFunction> function_;
  std::unique_ptr<vao::CalibratedBlackBox> black_box_;
};

TEST_P(SelectionFamilyProperty, RangeSelectionMatchesExactMembership) {
  const operators::RangeSelectionVao vao(95.0, 108.0);
  for (std::size_t bond = 0; bond < 4; ++bond) {
    const auto args = function_->ArgsFor(0.0575, bond);
    WorkMeter meter;
    const auto outcome = vao.Evaluate(*function_, args, &meter);
    ASSERT_TRUE(outcome.ok());
    const double value = black_box_->Call(args, nullptr).ValueOrDie();
    if (!outcome->resolved_as_equal) {
      EXPECT_EQ(outcome->passes, value >= 95.0 && value <= 108.0)
          << "value " << value;
    }
  }
}

TEST_P(SelectionFamilyProperty, MultiSelectionMatchesBlackBox) {
  const std::vector<operators::MultiSelectionVao::Predicate> predicates{
      {operators::Comparator::kGreaterThan, 90.0},
      {operators::Comparator::kGreaterThan, 100.0},
      {operators::Comparator::kLessThan, 110.0}};
  const operators::MultiSelectionVao vao(predicates);
  for (std::size_t bond = 0; bond < 4; ++bond) {
    const auto args = function_->ArgsFor(0.0575, bond);
    WorkMeter meter;
    const auto outcome = vao.Evaluate(*function_, args, &meter);
    ASSERT_TRUE(outcome.ok());
    const double value = black_box_->Call(args, nullptr).ValueOrDie();
    for (std::size_t i = 0; i < predicates.size(); ++i) {
      if (!outcome->resolved_as_equal[i]) {
        EXPECT_EQ(outcome->passes[i],
                  operators::CompareExact(value, predicates[i].cmp,
                                          predicates[i].constant));
      }
    }
  }
}

TEST_P(SelectionFamilyProperty, TopKMatchesSortedCalibratedValues) {
  WorkMeter meter;
  std::vector<vao::ResultObjectPtr> owned;
  std::vector<vao::ResultObject*> objects;
  std::vector<double> values;
  for (std::size_t bond = 0; bond < 4; ++bond) {
    const auto args = function_->ArgsFor(0.0575, bond);
    auto object = function_->Invoke(args, &meter);
    ASSERT_TRUE(object.ok());
    objects.push_back(object->get());
    owned.push_back(std::move(object).value());
    values.push_back(black_box_->Call(args, nullptr).ValueOrDie());
  }
  operators::TopKOptions options;
  options.k = 2;
  options.epsilon = 0.01;
  const operators::TopKVao vao(options);
  const auto outcome = vao.Evaluate(objects);
  ASSERT_TRUE(outcome.ok());
  if (!outcome->tie) {
    std::vector<std::size_t> expected{0, 1, 2, 3};
    std::sort(expected.begin(), expected.end(),
              [&](std::size_t a, std::size_t b) {
                return values[a] > values[b];
              });
    expected.resize(2);
    EXPECT_EQ(outcome->winners, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionFamilyProperty,
                         ::testing::Values(201, 202, 203, 204, 205));

// ---------------------------------------------------------------------------
// Cache soundness under random partial-iteration patterns.

class CacheSoundnessProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheSoundnessProperty, CachedBoundsAlwaysContainConvergedValue) {
  workload::PortfolioSpec spec;
  spec.count = 2;
  const finance::BondPricingFunction inner(
      workload::GeneratePortfolio(GetParam() + 5000, spec),
      finance::BondModelConfig{});
  const vao::CachingFunction cached(&inner);
  Rng rng(GetParam());

  // Ground truth per bond.
  std::vector<double> truths;
  for (std::size_t bond = 0; bond < 2; ++bond) {
    WorkMeter scratch;
    auto object = inner.Invoke(inner.ArgsFor(0.0575, bond), &scratch);
    ASSERT_TRUE(object.ok());
    ASSERT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
    truths.push_back((*object)->bounds().Mid());
  }

  // Random pattern of partial evaluations against the cache; every bound
  // ever visible -- including ones assembled from cached intersections --
  // must contain the truth.
  for (int round = 0; round < 8; ++round) {
    const auto bond = static_cast<std::size_t>(rng.UniformInt(0, 1));
    WorkMeter meter;
    auto object = cached.Invoke(inner.ArgsFor(0.0575, bond), &meter);
    ASSERT_TRUE(object.ok());
    EXPECT_TRUE((*object)->bounds().Contains(truths[bond]))
        << "round " << round << " bond " << bond;
    const auto steps = rng.UniformInt(0, 3);
    for (int i = 0; i < steps && !(*object)->AtStoppingCondition(); ++i) {
      ASSERT_TRUE((*object)->Iterate().ok());
      EXPECT_TRUE((*object)->bounds().Contains(truths[bond]))
          << "round " << round << " bond " << bond << " step " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheSoundnessProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace vaolib
