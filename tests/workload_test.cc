// Unit tests for src/workload: portfolio generation, the distribution-shift
// scheme, hot-cold weights, and selectivity constants.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/stats.h"
#include "vao/black_box.h"
#include "workload/hot_cold.h"
#include "workload/portfolio_gen.h"
#include "workload/selectivity.h"
#include "workload/shift_scheme.h"
#include "finance/bond_model.h"
#include "fake_result_object.h"

namespace vaolib::workload {
namespace {

TEST(PortfolioGenTest, DeterministicAndWithinRanges) {
  PortfolioSpec spec;
  spec.count = 50;
  const auto a = GeneratePortfolio(1234, spec);
  const auto b = GeneratePortfolio(1234, spec);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].annual_cashflow, b[i].annual_cashflow);
    EXPECT_GE(a[i].annual_cashflow, spec.cashflow_min);
    EXPECT_LE(a[i].annual_cashflow, spec.cashflow_max);
    EXPECT_GE(a[i].maturity_years, spec.maturity_min);
    EXPECT_LE(a[i].maturity_years, spec.maturity_max);
    EXPECT_GE(a[i].sigma, spec.sigma_min);
    EXPECT_LE(a[i].sigma, spec.sigma_max);
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i));
    EXPECT_FALSE(a[i].name.empty());
  }
}

TEST(PortfolioGenTest, DifferentSeedsDiffer) {
  PortfolioSpec spec;
  spec.count = 10;
  const auto a = GeneratePortfolio(1, spec);
  const auto b = GeneratePortfolio(2, spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].annual_cashflow != b[i].annual_cashflow) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SelectivityTest, HitsRequestedFraction) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  for (const double s : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const auto constant = ConstantForGreaterSelectivity(values, s);
    ASSERT_TRUE(constant.ok());
    EXPECT_NEAR(MeasuredGreaterSelectivity(values, *constant), s, 0.011);
  }
}

TEST(SelectivityTest, ExtremesSelectAllOrNothing) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(
      MeasuredGreaterSelectivity(
          values, ConstantForGreaterSelectivity(values, 0.0).ValueOrDie()),
      0.0);
  EXPECT_DOUBLE_EQ(
      MeasuredGreaterSelectivity(
          values, ConstantForGreaterSelectivity(values, 1.0).ValueOrDie()),
      1.0);
}

TEST(SelectivityTest, InputValidation) {
  EXPECT_FALSE(ConstantForGreaterSelectivity({}, 0.5).ok());
  EXPECT_FALSE(ConstantForGreaterSelectivity({1.0}, 1.5).ok());
  EXPECT_FALSE(ConstantForGreaterSelectivity({1.0}, -0.5).ok());
}

TEST(HotColdTest, WeightsSumToTotalAndSplitByShare) {
  Rng rng(5);
  HotColdSpec spec;
  spec.count = 200;
  spec.hot_fraction = 0.10;
  spec.hot_weight_share = 0.8;
  spec.total_weight = 200.0;
  const auto weights = HotColdWeights(spec, &rng);
  ASSERT_TRUE(weights.ok());
  ASSERT_EQ(weights->size(), 200u);
  const double total =
      std::accumulate(weights->begin(), weights->end(), 0.0);
  EXPECT_NEAR(total, 200.0, 1e-9);

  // 20 hot weights of 8.0 each, 180 cold weights of 2/9 each.
  std::vector<double> sorted = *weights;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  EXPECT_NEAR(sorted[0], 8.0, 1e-9);
  EXPECT_NEAR(sorted[19], 8.0, 1e-9);
  EXPECT_NEAR(sorted[20], 40.0 / 180.0, 1e-9);
}

TEST(HotColdTest, UniformWhenShareMatchesFraction) {
  Rng rng(6);
  HotColdSpec spec;
  spec.count = 100;
  spec.hot_fraction = 0.10;
  spec.hot_weight_share = 0.10;
  spec.total_weight = 100.0;
  const auto weights = HotColdWeights(spec, &rng);
  ASSERT_TRUE(weights.ok());
  for (const double w : *weights) EXPECT_NEAR(w, 1.0, 1e-9);
}

TEST(HotColdTest, FullShareOnHotSetLeavesColdAtZero) {
  Rng rng(7);
  HotColdSpec spec;
  spec.count = 50;
  spec.hot_weight_share = 1.0;
  const auto weights = HotColdWeights(spec, &rng);
  ASSERT_TRUE(weights.ok());
  int zero = 0, hot = 0;
  for (const double w : *weights) {
    if (w == 0.0) {
      ++zero;
    } else {
      ++hot;
    }
  }
  EXPECT_EQ(hot, 5);
  EXPECT_EQ(zero, 45);
}

TEST(HotColdTest, InputValidation) {
  Rng rng(8);
  EXPECT_FALSE(HotColdWeights({}, nullptr).ok());
  HotColdSpec empty;
  empty.count = 0;
  EXPECT_FALSE(HotColdWeights(empty, &rng).ok());
  HotColdSpec bad_share;
  bad_share.hot_weight_share = 1.5;
  EXPECT_FALSE(HotColdWeights(bad_share, &rng).ok());
}

TEST(ShiftSchemeTest, DeltasReproduceTargetDistribution) {
  Rng rng(9);
  std::vector<double> real_values;
  for (int i = 0; i < 400; ++i) real_values.push_back(90.0 + 0.05 * i);

  TargetDistribution target;
  target.shape = TargetShape::kGaussian;
  target.mean = 100.0;
  target.stddev = 2.0;
  const auto deltas = ComputeShiftDeltas(real_values, target, &rng);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), real_values.size());

  RunningStats stats;
  for (std::size_t i = 0; i < real_values.size(); ++i) {
    stats.Add(real_values[i] + (*deltas)[i]);
  }
  EXPECT_NEAR(stats.Mean(), 100.0, 0.4);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.4);
}

TEST(ShiftSchemeTest, HalfGaussianStaysBelowMean) {
  Rng rng(10);
  std::vector<double> real_values(300, 100.0);
  TargetDistribution target;
  target.shape = TargetShape::kHalfGaussianBelow;
  target.mean = 110.0;
  target.stddev = 1.5;
  const auto deltas = ComputeShiftDeltas(real_values, target, &rng);
  ASSERT_TRUE(deltas.ok());
  for (std::size_t i = 0; i < real_values.size(); ++i) {
    EXPECT_LE(real_values[i] + (*deltas)[i], 110.0);
  }
}

TEST(ShiftSchemeTest, ZeroStddevCollapsesToMean) {
  Rng rng(11);
  std::vector<double> real_values{95.0, 100.0, 105.0};
  TargetDistribution target;
  target.mean = 101.0;
  target.stddev = 0.0;
  const auto deltas = ComputeShiftDeltas(real_values, target, &rng);
  ASSERT_TRUE(deltas.ok());
  for (std::size_t i = 0; i < real_values.size(); ++i) {
    EXPECT_DOUBLE_EQ(real_values[i] + (*deltas)[i], 101.0);
  }
}

TEST(ShiftSchemeTest, InputValidation) {
  Rng rng(12);
  TargetDistribution target;
  EXPECT_FALSE(ComputeShiftDeltas({1.0}, target, nullptr).ok());
  target.stddev = -1.0;
  EXPECT_FALSE(ComputeShiftDeltas({1.0}, target, &rng).ok());
}

TEST(ShiftSchemeTest, ConvergedValuesMatchDirectConvergence) {
  finance::BondModelConfig config;
  PortfolioSpec spec;
  spec.count = 3;
  finance::BondPricingFunction fn(GeneratePortfolio(77, spec), config);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 3; ++i) rows.push_back(fn.ArgsFor(0.0575, i));

  const auto values = ConvergedValues(fn, rows);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    WorkMeter meter;
    auto object = fn.Invoke(rows[i], &meter);
    ASSERT_TRUE(object.ok());
    ASSERT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
    EXPECT_NEAR((*values)[i], (*object)->bounds().Mid(), 1e-9);
  }
}

TEST(ShiftSchemeTest, InvokeShiftedOffsetsBounds) {
  finance::BondModelConfig config;
  PortfolioSpec spec;
  spec.count = 1;
  finance::BondPricingFunction fn(GeneratePortfolio(78, spec), config);
  WorkMeter meter_plain, meter_shifted;
  auto plain = fn.Invoke(fn.ArgsFor(0.0575, 0), &meter_plain);
  auto shifted =
      InvokeShifted(fn, fn.ArgsFor(0.0575, 0), 7.5, &meter_shifted);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(shifted.ok());
  EXPECT_NEAR((*shifted)->bounds().Mid(), (*plain)->bounds().Mid() + 7.5,
              1e-9);
  EXPECT_NEAR((*shifted)->bounds().Width(), (*plain)->bounds().Width(),
              1e-9);
}

}  // namespace
}  // namespace vaolib::workload
