// Tests for the extension modules: Romberg integration, the RK4 IVP solver
// and its result object, the bounds cache / caching function, and TOP-K
// through the query engine.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "engine/executor.h"
#include "finance/bond_model.h"
#include "numeric/integration.h"
#include "numeric/ode_ivp.h"
#include "vao/function_cache.h"
#include "vao/ivp_result_object.h"
#include "workload/portfolio_gen.h"

namespace vaolib {
namespace {

// ---------------------------------------------------------------------------
// Romberg integration

TEST(RombergTest, ConvergesMuchFasterThanTrapezoid) {
  numeric::RefinableIntegral::Options trap;
  numeric::RefinableIntegral::Options romberg;
  romberg.rule = numeric::IntegrationRule::kRomberg;
  auto integrand = [](double x) { return std::exp(x); };
  const double truth = std::numbers::e - 1.0;

  auto ft = numeric::RefinableIntegral::Create(integrand, 0.0, 1.0, trap,
                                               nullptr);
  auto fr = numeric::RefinableIntegral::Create(integrand, 0.0, 1.0, romberg,
                                               nullptr);
  ASSERT_TRUE(ft.ok());
  ASSERT_TRUE(fr.ok());
  numeric::RefinableIntegral t = std::move(ft).value();
  numeric::RefinableIntegral r = std::move(fr).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.Refine(nullptr).ok());
    ASSERT_TRUE(r.Refine(nullptr).ok());
  }
  EXPECT_LT(std::abs(r.estimate() - truth),
            std::abs(t.estimate() - truth) / 100.0);
}

TEST(RombergTest, BoundsContainTruthThroughRefinement) {
  numeric::RefinableIntegral::Options options;
  options.rule = numeric::IntegrationRule::kRomberg;
  auto made = numeric::RefinableIntegral::Create(
      [](double x) { return std::sin(x); }, 0.0, std::numbers::pi, options,
      nullptr);
  ASSERT_TRUE(made.ok());
  numeric::RefinableIntegral r = std::move(made).value();
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(r.bounds().Contains(2.0)) << "level " << r.level();
    ASSERT_TRUE(r.Refine(nullptr).ok());
  }
  EXPECT_LT(r.error_bound(), 1e-10);
}

TEST(RombergTest, OneShotRejected) {
  EXPECT_FALSE(numeric::Integrate([](double x) { return x; }, 0.0, 1.0,
                                  numeric::IntegrationRule::kRomberg, 4, 1,
                                  nullptr)
                   .ok());
}

// ---------------------------------------------------------------------------
// RK4 IVP solver

TEST(OdeIvpTest, MatchesExponentialClosedForm) {
  numeric::OdeIvpProblem problem;
  problem.f = [](double, double y) { return y; };
  problem.t0 = 0.0;
  problem.y0 = 1.0;
  problem.t1 = 1.0;
  WorkMeter meter;
  const auto result = numeric::SolveOdeIvpRk4(problem, 32, &meter);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value(), std::numbers::e, 1e-7);
  EXPECT_EQ(meter.ExecUnits(), 32u * 4u);
}

TEST(OdeIvpTest, FourthOrderConvergence) {
  numeric::OdeIvpProblem problem;
  problem.f = [](double t, double y) { return -2.0 * t * y; };
  problem.t0 = 0.0;
  problem.y0 = 1.0;
  problem.t1 = 1.0;
  const double truth = std::exp(-1.0);
  const double e1 =
      std::abs(numeric::SolveOdeIvpRk4(problem, 8, nullptr).ValueOrDie() -
               truth);
  const double e2 =
      std::abs(numeric::SolveOdeIvpRk4(problem, 16, nullptr).ValueOrDie() -
               truth);
  EXPECT_NEAR(e1 / e2, 16.0, 6.0);  // O(h^4)
}

TEST(OdeIvpTest, RejectsMalformedInputs) {
  numeric::OdeIvpProblem problem;
  EXPECT_FALSE(numeric::SolveOdeIvpRk4(problem, 8, nullptr).ok());  // no f
  problem.f = [](double, double y) { return y; };
  problem.t1 = -1.0;
  EXPECT_FALSE(numeric::SolveOdeIvpRk4(problem, 8, nullptr).ok());
  problem.t1 = 1.0;
  EXPECT_FALSE(numeric::SolveOdeIvpRk4(problem, 0, nullptr).ok());
}

TEST(IvpResultObjectTest, BoundsContainClosedFormThroughout) {
  numeric::OdeIvpProblem problem;
  problem.f = [](double t, double y) { return std::cos(t) * y; };
  problem.t0 = 0.0;
  problem.y0 = 1.0;
  problem.t1 = 2.0;
  const double truth = std::exp(std::sin(2.0));

  WorkMeter meter;
  auto made = vao::IvpResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(made.ok());
  vao::ResultObject* object = made->get();
  while (!object->AtStoppingCondition()) {
    EXPECT_TRUE(object->bounds().Contains(truth)) << object->bounds();
    ASSERT_TRUE(object->Iterate().ok());
  }
  EXPECT_NEAR(object->bounds().Mid(), truth, 1e-8);
}

TEST(IvpResultObjectTest, EstCostMatchesActualAndDoubles) {
  numeric::OdeIvpProblem problem;
  problem.f = [](double, double y) { return -y; };
  problem.t0 = 0.0;
  problem.y0 = 1.0;
  problem.t1 = 1.0;
  WorkMeter meter;
  auto made = vao::IvpResultObject::Create(problem, {}, &meter);
  ASSERT_TRUE(made.ok());
  vao::ResultObject* object = made->get();
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t predicted = object->est_cost();
    const std::uint64_t before = meter.ExecUnits();
    ASSERT_TRUE(object->Iterate().ok());
    EXPECT_EQ(meter.ExecUnits() - before, predicted);
  }
}

TEST(IvpFunctionTest, BuildsObjectsFromArgs) {
  vao::IvpResultOptions options;
  options.min_width = 1e-8;
  const vao::IvpFunction function(
      "decay", 1,
      [](const std::vector<double>& args)
          -> Result<numeric::OdeIvpProblem> {
        numeric::OdeIvpProblem problem;
        const double rate = args[0];
        problem.f = [rate](double, double y) { return -rate * y; };
        problem.t0 = 0.0;
        problem.y0 = 1.0;
        problem.t1 = 1.0;
        return problem;
      },
      options);
  WorkMeter meter;
  auto object = function.Invoke({0.5}, &meter);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
  EXPECT_NEAR((*object)->bounds().Mid(), std::exp(-0.5), 1e-7);
  EXPECT_FALSE(function.Invoke({}, &meter).ok());  // arity
}

// ---------------------------------------------------------------------------
// BoundsCache / CachingFunction

TEST(BoundsCacheTest, LookupUpdateAndIntersection) {
  vao::BoundsCache cache(8);
  EXPECT_FALSE(cache.Lookup({1.0}).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.Update({1.0}, Bounds(0.0, 10.0), 0.01);
  auto entry = cache.Lookup({1.0});
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->bounds, Bounds(0.0, 10.0));
  EXPECT_EQ(cache.hits(), 1u);

  // Updates intersect: both stored and new bounds are sound.
  cache.Update({1.0}, Bounds(2.0, 12.0), 0.01);
  entry = cache.Lookup({1.0});
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->bounds, Bounds(2.0, 10.0));
}

TEST(BoundsCacheTest, LruEviction) {
  vao::BoundsCache cache(2);
  cache.Update({1.0}, Bounds(0, 1), 0.01);
  cache.Update({2.0}, Bounds(0, 1), 0.01);
  ASSERT_TRUE(cache.Lookup({1.0}).has_value());  // refresh {1.0}
  cache.Update({3.0}, Bounds(0, 1), 0.01);       // evicts {2.0}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup({1.0}).has_value());
  EXPECT_FALSE(cache.Lookup({2.0}).has_value());
  EXPECT_TRUE(cache.Lookup({3.0}).has_value());
}

TEST(CachingFunctionTest, SecondConvergedInvocationIsFree) {
  workload::PortfolioSpec spec;
  spec.count = 1;
  const finance::BondPricingFunction inner(
      workload::GeneratePortfolio(55, spec), finance::BondModelConfig{});
  const vao::CachingFunction cached(&inner);

  // First invocation: full price, paid for, then destroyed (write-back).
  double first_price = 0.0;
  WorkMeter first_meter;
  {
    auto object = cached.Invoke(inner.ArgsFor(0.0575, 0), &first_meter);
    ASSERT_TRUE(object.ok());
    ASSERT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
    first_price = (*object)->bounds().Mid();
  }
  EXPECT_GT(first_meter.ExecUnits(), 0u);

  // Second invocation with identical args: served from cache, zero cost.
  WorkMeter second_meter;
  {
    auto object = cached.Invoke(inner.ArgsFor(0.0575, 0), &second_meter);
    ASSERT_TRUE(object.ok());
    EXPECT_TRUE((*object)->AtStoppingCondition());
    EXPECT_NEAR((*object)->bounds().Mid(), first_price, 0.01);
  }
  EXPECT_EQ(second_meter.ExecUnits(), 0u);

  // Different args still pay.
  WorkMeter third_meter;
  {
    auto object = cached.Invoke(inner.ArgsFor(0.06, 0), &third_meter);
    ASSERT_TRUE(object.ok());
  }
  EXPECT_GT(third_meter.ExecUnits(), 0u);
}

TEST(CachingFunctionTest, PartialBoundsStillTightenSecondRun) {
  workload::PortfolioSpec spec;
  spec.count = 1;
  const finance::BondPricingFunction inner(
      workload::GeneratePortfolio(56, spec), finance::BondModelConfig{});
  const vao::CachingFunction cached(&inner);
  const auto args = inner.ArgsFor(0.0575, 0);

  // First run iterates a few times only (a cheap selection decision).
  Bounds partial;
  {
    WorkMeter meter;
    auto object = cached.Invoke(args, &meter);
    ASSERT_TRUE(object.ok());
    ASSERT_TRUE((*object)->Iterate().ok());
    ASSERT_TRUE((*object)->Iterate().ok());
    partial = (*object)->bounds();
  }

  // Second run starts no wider than where the first one left off.
  {
    WorkMeter meter;
    auto object = cached.Invoke(args, &meter);
    ASSERT_TRUE(object.ok());
    EXPECT_LE((*object)->bounds().Width(), partial.Width() + 1e-12);
    // And it is still refinable to convergence.
    ASSERT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
  }
}

TEST(CachingFunctionTest, NameAndArityDelegate) {
  workload::PortfolioSpec spec;
  spec.count = 1;
  const finance::BondPricingFunction inner(
      workload::GeneratePortfolio(57, spec), finance::BondModelConfig{});
  const vao::CachingFunction cached(&inner);
  EXPECT_EQ(cached.name(), "bond_model+cache");
  EXPECT_EQ(cached.arity(), 2);
}

// ---------------------------------------------------------------------------
// TOP-K through the engine

TEST(EngineTopKTest, AgreesAcrossModes) {
  workload::PortfolioSpec spec;
  spec.count = 8;
  const auto bonds = workload::GeneratePortfolio(321, spec);
  const finance::BondPricingFunction model(bonds,
                                           finance::BondModelConfig{});

  engine::Relation bd(
      engine::Schema({{"bond_index", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    ASSERT_TRUE(bd.Append({static_cast<double>(i)}).ok());
  }

  engine::Query query;
  query.kind = engine::QueryKind::kTopK;
  query.k = 3;
  query.function = &model;
  query.args = {engine::ArgRef::StreamField("rate"),
                engine::ArgRef::RelationField("bond_index")};
  query.epsilon = 0.01;

  const engine::Schema stream_schema(
      {{"rate", engine::ColumnType::kDouble}});
  auto vao = engine::CqExecutor::Create(&bd, stream_schema, query,
                                        engine::ExecutionMode::kVao);
  auto trad = engine::CqExecutor::Create(&bd, stream_schema, query,
                                         engine::ExecutionMode::kTraditional);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE(trad.ok());

  const auto vao_result = (*vao)->ProcessTick({0.0575});
  const auto trad_result = (*trad)->ProcessTick({0.0575});
  ASSERT_TRUE(vao_result.ok()) << vao_result.status();
  ASSERT_TRUE(trad_result.ok()) << trad_result.status();
  ASSERT_EQ(vao_result->top_rows.size(), 3u);
  ASSERT_EQ(trad_result->top_rows.size(), 3u);
  EXPECT_EQ(vao_result->top_rows, trad_result->top_rows);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(vao_result->top_bounds[i].Width(), 0.01 + 1e-12);
    EXPECT_TRUE(vao_result->top_bounds[i].Contains(
        trad_result->top_bounds[i].Mid()));
  }
  EXPECT_LT(vao_result->work_units, trad_result->work_units);
}

TEST(EngineTopKTest, RejectsBadK) {
  workload::PortfolioSpec spec;
  spec.count = 2;
  const auto bonds = workload::GeneratePortfolio(322, spec);
  const finance::BondPricingFunction model(bonds,
                                           finance::BondModelConfig{});
  engine::Relation bd(
      engine::Schema({{"bond_index", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    ASSERT_TRUE(bd.Append({static_cast<double>(i)}).ok());
  }
  engine::Query query;
  query.kind = engine::QueryKind::kTopK;
  query.k = 5;  // > relation size
  query.function = &model;
  query.args = {engine::ArgRef::StreamField("rate"),
                engine::ArgRef::RelationField("bond_index")};
  auto executor = engine::CqExecutor::Create(
      &bd, engine::Schema({{"rate", engine::ColumnType::kDouble}}), query,
      engine::ExecutionMode::kVao);
  ASSERT_TRUE(executor.ok());
  EXPECT_FALSE((*executor)->ProcessTick({0.0575}).ok());
}


TEST(EngineRangeSelectTest, AgreesAcrossModes) {
  workload::PortfolioSpec spec;
  spec.count = 10;
  const auto bonds = workload::GeneratePortfolio(909, spec);
  const finance::BondPricingFunction model(bonds,
                                           finance::BondModelConfig{});
  engine::Relation bd(
      engine::Schema({{"bond_index", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    ASSERT_TRUE(bd.Append({static_cast<double>(i)}).ok());
  }
  engine::Query query;
  query.kind = engine::QueryKind::kSelectRange;
  query.function = &model;
  query.args = {engine::ArgRef::StreamField("rate"),
                engine::ArgRef::RelationField("bond_index")};
  query.range_lo = 95.0;
  query.range_hi = 110.0;

  const engine::Schema stream_schema(
      {{"rate", engine::ColumnType::kDouble}});
  auto vao = engine::CqExecutor::Create(&bd, stream_schema, query,
                                        engine::ExecutionMode::kVao);
  auto trad = engine::CqExecutor::Create(&bd, stream_schema, query,
                                         engine::ExecutionMode::kTraditional);
  ASSERT_TRUE(vao.ok());
  ASSERT_TRUE(trad.ok());
  const auto vao_result = (*vao)->ProcessTick({0.0575});
  const auto trad_result = (*trad)->ProcessTick({0.0575});
  ASSERT_TRUE(vao_result.ok()) << vao_result.status();
  ASSERT_TRUE(trad_result.ok()) << trad_result.status();
  EXPECT_EQ(vao_result->passing_rows, trad_result->passing_rows);
  EXPECT_LT(vao_result->work_units, trad_result->work_units);
}

TEST(CachingFunctionTest, LazyObjectSkipsSolverWhenPriorDecides) {
  workload::PortfolioSpec spec;
  spec.count = 1;
  const finance::BondPricingFunction inner(
      workload::GeneratePortfolio(58, spec), finance::BondModelConfig{});
  const vao::CachingFunction cached(&inner);
  const auto args = inner.ArgsFor(0.0575, 0);

  // Seed the cache with a partially refined object.
  {
    WorkMeter meter;
    auto object = cached.Invoke(args, &meter);
    ASSERT_TRUE(object.ok());
    ASSERT_TRUE((*object)->Iterate().ok());
  }

  // Second invocation: the cached bounds are served with ZERO solver work
  // as long as no refinement is requested.
  WorkMeter meter;
  {
    auto object = cached.Invoke(args, &meter);
    ASSERT_TRUE(object.ok());
    EXPECT_GT((*object)->bounds().Width(), 0.0);
    EXPECT_EQ(meter.Total(), 0u);
    // Requesting refinement materializes the inner object and charges.
    ASSERT_TRUE((*object)->Iterate().ok());
    EXPECT_GT(meter.Total(), 0u);
    // And refinement continues to work end-to-end.
    ASSERT_TRUE(vao::ConvergeToMinWidth(object->get()).ok());
  }

  // Third invocation: the converge above was written back, so the object is
  // served converged and free.
  WorkMeter meter3;
  auto object = cached.Invoke(args, &meter3);
  ASSERT_TRUE(object.ok());
  EXPECT_TRUE((*object)->AtStoppingCondition());
  EXPECT_EQ(meter3.Total(), 0u);
}

}  // namespace
}  // namespace vaolib
