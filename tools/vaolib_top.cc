// Copyright 2026 The vaolib Authors.
// vaolib_top: a polling terminal dashboard for a live vaolib_server.
//
//   vaolib_top [--host H] [--port P] [--interval-ms N] [--iterations N]
//              [--once]
//
// Connects over TCP, binds as tenant `mon`, and once per interval sends
// INSPECT (whole-server health/SLO state) and METRICS (the Prometheus
// scrape), then renders:
//
//   * a health banner (healthy/degraded/critical) with tick and query
//     counts and the critical-transition counter,
//   * the SLO table -- per objective: state, observed fast/slow window
//     values, and the burn rates that drive the state machine,
//   * server throughput since the previous poll (results/s, work/s,
//     sheds/s) computed from counter deltas in successive scrapes.
//
// --once prints a single snapshot without clearing the screen and exits 0
// (CI smoke mode); --iterations N stops after N polls. Exit is non-zero on
// connect/protocol failures or when the server answers ERR (e.g. the
// health plane is disabled: start vaolib_server without --no-health).
//
// The monitor rides the same wire plane as any client: everything shown
// here is reachable by `printf '7\nMETRICS' | nc`, this tool just frames,
// parses, and formats.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "obs/json_util.h"
#include "server/frame.h"

namespace {

using vaolib::Status;
using vaolib::server::EncodeFrame;
using vaolib::server::FrameDecoder;
namespace json = vaolib::obs::json;

struct Flags {
  std::string host = "127.0.0.1";
  int port = 7411;
  int interval_ms = 1000;
  // 0 = poll until the connection drops or the terminal kills us.
  std::uint64_t iterations = 0;
  bool once = false;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (name == "--host" && (value = next())) {
      flags->host = value;
    } else if (name == "--port" && (value = next())) {
      flags->port = std::atoi(value);
    } else if (name == "--interval-ms" && (value = next())) {
      flags->interval_ms = std::atoi(value);
    } else if (name == "--iterations" && (value = next())) {
      flags->iterations =
          static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
    } else if (name == "--once") {
      flags->once = true;
    } else {
      std::fprintf(stderr,
                   "usage: vaolib_top [--host H] [--port P] "
                   "[--interval-ms N] [--iterations N] [--once]\n");
      return false;
    }
  }
  if (flags->once) flags->iterations = 1;
  if (flags->interval_ms < 1) flags->interval_ms = 1;
  return true;
}

/// Blocking framed client: one request out, one reply payload back.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Connect(const std::string& host, int port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    const std::string service = std::to_string(port);
    if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &found) != 0 ||
        found == nullptr) {
      return Status::Internal("cannot resolve " + host);
    }
    fd_ = ::socket(found->ai_family, found->ai_socktype,
                   found->ai_protocol);
    const bool connected =
        fd_ >= 0 &&
        ::connect(fd_, found->ai_addr, found->ai_addrlen) == 0;
    ::freeaddrinfo(found);
    if (!connected) {
      return Status::Internal("cannot connect to " + host + ":" +
                                 service + " (" + std::strerror(errno) +
                                 ")");
    }
    return Status::OK();
  }

  Status Call(const std::string& request, std::string* reply) {
    const std::string frame = EncodeFrame(request);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent,
                               frame.size() - sent, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return Status::Internal("server closed the connection");
      }
      sent += static_cast<std::size_t>(n);
    }
    char buffer[65536];
    while (true) {
      auto payload = decoder_.Next();
      if (payload.has_value()) {
        *reply = std::move(*payload);
        return Status::OK();
      }
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return Status::Internal("server closed the connection");
      }
      const Status fed = decoder_.Feed(
          std::string_view(buffer, static_cast<std::size_t>(n)));
      if (!fed.ok()) return fed;
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// One Prometheus sample line: `name value` or `name{labels} value`.
/// The identity key keeps the label block verbatim.
std::map<std::string, double> ParseScrape(const std::string& text) {
  std::map<std::string, double> samples;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    char* parse_end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &parse_end);
    if (parse_end == line.c_str() + space + 1) continue;
    samples[line.substr(0, space)] = value;
  }
  return samples;
}

double Rate(const std::map<std::string, double>& now,
            const std::map<std::string, double>& then,
            const std::string& key, double seconds) {
  const auto now_it = now.find(key);
  if (now_it == now.end() || !(seconds > 0.0)) return 0.0;
  const auto then_it = then.find(key);
  const double base = then_it != then.end() ? then_it->second : 0.0;
  const double delta = now_it->second - base;
  return delta > 0.0 ? delta / seconds : 0.0;
}

int RenderPoll(const std::string& inspect_json,
               const std::map<std::string, double>& scrape,
               const std::map<std::string, double>& previous,
               double seconds_since_last, bool clear_screen) {
  auto parsed = json::Parse(inspect_json);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad INSPECT payload: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const json::JsonValue& root = *parsed.value();
  const auto health = json::GetString(root, "health");
  const auto ticks = json::GetNumber(root, "ticks");
  const auto queries = json::GetNumber(root, "queries");
  const auto epochs = json::GetNumber(root, "epochs");
  const auto transitions = json::GetNumber(root, "critical_transitions");
  const auto slos = json::Child(root, "slos");
  if (!health.ok() || !ticks.ok() || !queries.ok() || !epochs.ok() ||
      !transitions.ok() || !slos.ok()) {
    std::fprintf(stderr, "INSPECT payload missing server fields\n");
    return 1;
  }

  if (clear_screen) std::printf("\033[H\033[2J");
  char stamp[32] = "";
  const std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  if (localtime_r(&now, &tm_buf) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);
  }
  std::printf("vaolib_top %s  health=%s  ticks=%llu queries=%llu "
              "epochs=%llu critical_transitions=%llu\n",
              stamp, health.value().c_str(),
              static_cast<unsigned long long>(ticks.value()),
              static_cast<unsigned long long>(queries.value()),
              static_cast<unsigned long long>(epochs.value()),
              static_cast<unsigned long long>(transitions.value()));

  std::printf("\nthroughput (since last poll): results/s=%.1f work/s=%.0f "
              "shed/s=%.2f deadline-misses/s=%.2f\n",
              Rate(scrape, previous, "vaolib_server_results_total",
                   seconds_since_last),
              Rate(scrape, previous, "vaolib_server_tick_work_units_sum",
                   seconds_since_last),
              Rate(scrape, previous,
                   "vaolib_server_shed_total{reason=\"overload\"}",
                   seconds_since_last),
              Rate(scrape, previous, "vaolib_server_deadline_misses_total",
                   seconds_since_last));

  std::printf("\n%-18s %-10s %12s %12s %12s %12s\n", "slo", "state",
              "fast value", "slow value", "fast burn", "slow burn");
  for (const auto& entry : slos.value()->array) {
    const json::JsonValue& slo = *entry;
    const auto name = json::GetString(slo, "name");
    const auto state = json::GetString(slo, "state");
    const auto fast_value = json::GetDouble(slo, "fast_value");
    const auto slow_value = json::GetDouble(slo, "slow_value");
    const auto fast_burn = json::GetDouble(slo, "fast_burn");
    const auto slow_burn = json::GetDouble(slo, "slow_burn");
    if (!name.ok() || !state.ok() || !fast_value.ok() || !slow_value.ok() ||
        !fast_burn.ok() || !slow_burn.ok()) {
      std::fprintf(stderr, "INSPECT slo entry missing fields\n");
      return 1;
    }
    std::printf("%-18s %-10s %12.4f %12.4f %12.2f %12.2f\n",
                name.value().c_str(), state.value().c_str(),
                fast_value.value(), slow_value.value(), fast_burn.value(),
                slow_burn.value());
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  Client client;
  const Status connected = client.Connect(flags.host, flags.port);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.ToString().c_str());
    return 1;
  }
  std::string reply;
  Status status = client.Call("HELLO mon", &reply);
  if (!status.ok() || reply.rfind("OK HELLO", 0) != 0) {
    std::fprintf(stderr, "handshake failed: %s\n",
                 status.ok() ? reply.c_str() : status.ToString().c_str());
    return 1;
  }

  std::map<std::string, double> previous;
  for (std::uint64_t poll = 0;
       flags.iterations == 0 || poll < flags.iterations; ++poll) {
    if (poll > 0) ::usleep(static_cast<useconds_t>(flags.interval_ms) * 1000);

    std::string inspect;
    status = client.Call("INSPECT", &inspect);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (inspect.rfind("INSPECT ", 0) != 0) {
      // Most likely "ERR failed-precondition ...": health plane off.
      std::fprintf(stderr, "server refused INSPECT: %s\n", inspect.c_str());
      return 1;
    }
    std::string scrape_text;
    status = client.Call("METRICS", &scrape_text);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (scrape_text.rfind("# ", 0) != 0) {
      std::fprintf(stderr, "server refused METRICS: %s\n",
                   scrape_text.c_str());
      return 1;
    }

    const auto scrape = ParseScrape(scrape_text);
    const double seconds =
        poll == 0 ? 0.0 : static_cast<double>(flags.interval_ms) / 1000.0;
    const int rendered =
        RenderPoll(inspect.substr(std::strlen("INSPECT ")), scrape,
                   previous, seconds, /*clear_screen=*/!flags.once);
    if (rendered != 0) return rendered;
    previous = scrape;
  }
  return 0;
}
