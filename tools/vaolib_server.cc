// Copyright 2026 The vaolib Authors.
// vaolib_server: a long-running standing-query server over TCP.
//
//   vaolib_server [--port P] [--bonds N] [--seed S] [--threads T]
//                 [--tick-budget UNITS] [--shed-after N]
//                 [--max-queries N] [--max-objects N] [--max-total N]
//                 [--reserve TENANT=UNITS] [--share TENANT=WEIGHT]
//                 [--no-health] [--health-windows N] [--ticks-per-epoch N]
//
// The runtime health plane (METRICS / INSPECT verbs, SLO burn-rate
// monitors -- see src/obs/health.h) is ON by default in this binary;
// --no-health turns it off, and library embedders get it off by default
// via DispatcherConfig. --health-windows sets the retained epoch count,
// --ticks-per-epoch how many stream ticks close one epoch.
//
// Serves the bond-portfolio workload: relation `bd` (bond_index, position),
// stream schema (rate), UDF `bond_model`. Clients speak the length-framed
// protocol of src/server/protocol.h, e.g. (frame headers shown as <len>\n):
//
//   5\nHELLO desk1
//   52\nREGISTER q1 SELECT MAX(bond_model(rate, bond_index)) FROM bd
//   9\nTICK 0.045
//
// --port 0 binds an ephemeral port. The server prints exactly one
// "LISTENING <port>" line to stdout once it accepts connections, so
// scripts (scripts/loadgen.py) can wait for readiness and discover the
// port. Single-threaded poll() loop: sessions multiplex onto one
// dispatcher, which is what makes cross-client result sharing (one
// executor group per function+args signature) possible at all.
//
// The process is the unit of deployment the ROADMAP's serving milestone
// asks for; systemd/k8s keep it alive, SIGINT/SIGTERM drain and exit 0.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "engine/relation.h"
#include "engine/schema.h"
#include "engine/sql_parser.h"
#include "finance/bond_model.h"
#include "server/server.h"
#include "workload/portfolio_gen.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

struct Flags {
  int port = 7411;
  std::size_t bonds = 64;
  std::uint64_t seed = 55;
  int threads = 1;
  std::uint64_t tick_budget = 0;
  int shed_after = 3;
  std::size_t max_queries = 16;
  std::size_t max_objects = 1u << 20;
  std::size_t max_total = 1024;
  std::map<std::string, std::uint64_t> reserves;
  std::map<std::string, double> shares;
  bool health = true;
  std::size_t health_windows = 64;
  std::size_t ticks_per_epoch = 1;
};

bool ParseTenantValue(const char* arg, std::string* tenant, double* value) {
  const char* eq = std::strchr(arg, '=');
  if (eq == nullptr || eq == arg) return false;
  *tenant = std::string(arg, eq - arg);
  char* end = nullptr;
  *value = std::strtod(eq + 1, &end);
  return end != nullptr && *end == '\0' && end != eq + 1;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (name == "--port" && (value = next())) {
      flags->port = std::atoi(value);
    } else if (name == "--bonds" && (value = next())) {
      flags->bonds = static_cast<std::size_t>(std::atoll(value));
    } else if (name == "--seed" && (value = next())) {
      flags->seed = static_cast<std::uint64_t>(std::atoll(value));
    } else if (name == "--threads" && (value = next())) {
      flags->threads = std::atoi(value);
    } else if (name == "--tick-budget" && (value = next())) {
      flags->tick_budget = static_cast<std::uint64_t>(std::atoll(value));
    } else if (name == "--shed-after" && (value = next())) {
      flags->shed_after = std::atoi(value);
    } else if (name == "--max-queries" && (value = next())) {
      flags->max_queries = static_cast<std::size_t>(std::atoll(value));
    } else if (name == "--max-objects" && (value = next())) {
      flags->max_objects = static_cast<std::size_t>(std::atoll(value));
    } else if (name == "--max-total" && (value = next())) {
      flags->max_total = static_cast<std::size_t>(std::atoll(value));
    } else if (name == "--no-health") {
      flags->health = false;
    } else if (name == "--health-windows" && (value = next())) {
      flags->health_windows = static_cast<std::size_t>(std::atoll(value));
    } else if (name == "--ticks-per-epoch" && (value = next())) {
      flags->ticks_per_epoch = static_cast<std::size_t>(std::atoll(value));
    } else if (name == "--reserve" && (value = next())) {
      std::string tenant;
      double units = 0.0;
      if (!ParseTenantValue(value, &tenant, &units) || units < 0.0) {
        std::fprintf(stderr, "bad --reserve '%s' (want TENANT=UNITS)\n",
                     value);
        return false;
      }
      flags->reserves[tenant] = static_cast<std::uint64_t>(units);
    } else if (name == "--share" && (value = next())) {
      std::string tenant;
      double weight = 0.0;
      if (!ParseTenantValue(value, &tenant, &weight) || !(weight > 0.0)) {
        std::fprintf(stderr, "bad --share '%s' (want TENANT=WEIGHT)\n",
                     value);
        return false;
      }
      flags->shares[tenant] = weight;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n",
                   name.c_str());
      return false;
    }
  }
  return true;
}

// Writes all of \p bytes, tolerating short writes. False on a dead peer.
bool WriteAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vaolib;

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  std::signal(SIGPIPE, SIG_IGN);

  // --- Workload: the paper's bond-portfolio deployment. ------------------
  workload::PortfolioSpec spec;
  spec.count = flags.bonds;
  const auto bonds = workload::GeneratePortfolio(flags.seed, spec);
  const finance::BondPricingFunction model(bonds,
                                           finance::BondModelConfig{});

  engine::Relation bd(engine::Schema(
      {{"bond_index", engine::ColumnType::kDouble},
       {"position", engine::ColumnType::kDouble}}));
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    if (!bd.Append({static_cast<double>(i), i % 9 == 0 ? 8.0 : 1.0}).ok()) {
      std::fprintf(stderr, "relation setup failed\n");
      return 1;
    }
  }
  const engine::Schema stream_schema(
      {{"rate", engine::ColumnType::kDouble}});
  engine::FunctionRegistry registry;
  if (!registry.Register(&model).ok()) return 1;

  server::ServerConfig config;
  config.dispatcher.tick_budget = flags.tick_budget;
  config.dispatcher.threads = flags.threads;
  config.dispatcher.shed_after_misses = flags.shed_after;
  config.dispatcher.admission.default_quota.max_queries = flags.max_queries;
  config.dispatcher.admission.default_quota.max_objects = flags.max_objects;
  config.dispatcher.admission.max_total_queries = flags.max_total;
  config.dispatcher.health.enabled = flags.health;
  config.dispatcher.health.window_count = flags.health_windows;
  config.dispatcher.health.ticks_per_epoch = flags.ticks_per_epoch;
  server::StandingQueryServer server(&bd, stream_schema, &registry, config);
  for (const auto& [tenant, units] : flags.reserves) {
    server::TenantQuota quota = server.dispatcher().admission().QuotaFor(
        tenant);
    quota.reserve_units = units;
    server.dispatcher().admission().SetQuota(tenant, quota);
  }
  for (const auto& [tenant, weight] : flags.shares) {
    server::TenantQuota quota = server.dispatcher().admission().QuotaFor(
        tenant);
    quota.work_share = weight;
    server.dispatcher().admission().SetQuota(tenant, quota);
  }

  // --- TCP plumbing. ------------------------------------------------------
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(flags.port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 64) < 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::printf("LISTENING %d\n", ntohs(addr.sin_port));
  std::fflush(stdout);

  std::map<int, std::uint64_t> session_of;  // fd -> session id
  char buffer[65536];

  while (g_stop == 0) {
    std::vector<pollfd> fds;
    fds.push_back({listener, POLLIN, 0});
    for (const auto& [fd, session] : session_of) {
      fds.push_back({fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::perror("poll");
      break;
    }
    if (ready == 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listener, nullptr, nullptr);
      if (client >= 0) session_of[client] = server.OpenSession();
    }

    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      if (fds[i].revents == 0) continue;
      const auto it = session_of.find(fd);
      if (it == session_of.end()) continue;
      const std::uint64_t session = it->second;

      bool drop = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      if (!drop && (fds[i].revents & POLLIN) != 0) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) {
          drop = n == 0 || errno != EINTR;
        } else {
          server.HandleBytes(session,
                             std::string_view(buffer,
                                              static_cast<std::size_t>(n)));
        }
      }

      // A TICK from one session may have fanned results out to every
      // other session's outbox; flush them all.
      for (auto& [peer_fd, peer_session] : session_of) {
        const std::string out = server.DrainOutput(peer_session);
        if (!out.empty() && !WriteAll(peer_fd, out) && peer_fd == fd) {
          drop = true;
        }
      }
      if (drop || server.ShouldClose(session)) {
        server.CloseSession(session);
        session_of.erase(it);
        ::close(fd);
      }
    }
  }

  for (const auto& [fd, session] : session_of) {
    server.CloseSession(session);
    ::close(fd);
  }
  ::close(listener);
  return 0;
}
