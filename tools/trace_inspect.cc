// Copyright 2026 The vaolib Authors.
// trace_inspect: offline reader for vaolib trace artifacts (flight-recorder
// dumps and ExportChromeTrace() files) plus ExecutionReport JSON.
//
//   trace_inspect <trace.json> [--top N] [--report <report.json>]
//
// Prints three tables:
//   * top spans by self-time (span duration minus time spent in spans
//     nested inside it on the same thread) aggregated by cat:name,
//   * a decision histogram per operator/phase with mean predicted vs.
//     actual cost and mean winning score,
//   * with --report, the estimator-calibration table (per solver kind:
//     samples, cost/lo/hi bias and MAE) from an ExecutionReport JSON.
// Everything is parsed with the same obs::json reader the library uses to
// parse its own output, so a file this tool rejects is a real bug.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/execution_report.h"
#include "obs/json_util.h"
#include "obs/metrics.h"

namespace {

using vaolib::Result;
using vaolib::Status;
using vaolib::obs::ExecutionReport;
using vaolib::obs::json::Child;
using vaolib::obs::json::GetDouble;
using vaolib::obs::json::GetString;
using vaolib::obs::json::JsonValue;
using vaolib::obs::json::Parse;

struct SpanRow {
  std::uint64_t tid = 0;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  double self = 0.0;
  std::string key;  // "cat:name"
};

struct SpanAgg {
  std::uint64_t count = 0;
  double total_dur = 0.0;
  double total_self = 0.0;
};

struct DecisionAgg {
  std::uint64_t count = 0;
  double est_cost_sum = 0.0;
  double actual_cost_sum = 0.0;
  double score_sum = 0.0;
  double raw_score_sum = 0.0;
  /// Decisions where the calibration-corrected score differs from the raw
  /// one -- i.e. a correction changed (or could have changed) the pick.
  std::uint64_t corrected = 0;
};

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Span self-time: walk each thread's spans in start order keeping a stack
// of open spans; a span's duration is charged against the nearest
// enclosing span still open on the same thread.
void ComputeSelfTimes(std::vector<SpanRow>* spans) {
  std::stable_sort(spans->begin(), spans->end(),
                   [](const SpanRow& a, const SpanRow& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;  // parent before child on ties
                   });
  std::vector<std::size_t> stack;
  std::uint64_t tid = 0;
  for (std::size_t i = 0; i < spans->size(); ++i) {
    SpanRow& span = (*spans)[i];
    span.self = span.dur;
    if (i == 0 || span.tid != tid) {
      stack.clear();
      tid = span.tid;
    }
    while (!stack.empty()) {
      const SpanRow& open = (*spans)[stack.back()];
      if (open.ts + open.dur <= span.ts) {
        stack.pop_back();
      } else {
        break;
      }
    }
    if (!stack.empty()) (*spans)[stack.back()].self -= span.dur;
    stack.push_back(i);
  }
}

Status InspectTrace(const std::string& path, std::size_t top) {
  std::string text;
  {
    auto read = ReadFile(path);
    if (!read.ok()) return read.status();
    text = std::move(read).value();
  }
  auto parsed = Parse(text);
  if (!parsed.ok()) return parsed.status().WithContext(path);
  const JsonValue& root = *parsed.value();
  auto events = Child(root, "traceEvents");
  if (!events.ok()) return events.status();

  std::vector<SpanRow> spans;
  std::map<std::string, DecisionAgg> decisions;
  std::uint64_t instants = 0;
  for (const auto& entry : events.value()->array) {
    const JsonValue& event = *entry;
    auto ph = GetString(event, "ph");
    auto cat = GetString(event, "cat");
    auto name = GetString(event, "name");
    if (!ph.ok() || !cat.ok() || !name.ok()) {
      return Status::InvalidArgument("event missing ph/cat/name");
    }
    if (ph.value() == "X") {
      SpanRow span;
      auto tid = vaolib::obs::json::GetNumber(event, "tid");
      auto ts = GetDouble(event, "ts");
      auto dur = GetDouble(event, "dur");
      if (!tid.ok() || !ts.ok() || !dur.ok()) {
        return Status::InvalidArgument("span missing tid/ts/dur");
      }
      span.tid = tid.value();
      span.ts = ts.value();
      span.dur = dur.value();
      span.key = cat.value() + ":" + name.value();
      spans.push_back(std::move(span));
    } else if (cat.value() == "decision") {
      auto args = Child(event, "args");
      if (!args.ok()) return args.status();
      auto phase = GetString(*args.value(), "phase");
      auto est_cost = GetDouble(*args.value(), "est_cost");
      auto actual_cost = GetDouble(*args.value(), "actual_cost");
      auto score = GetDouble(*args.value(), "score");
      if (!phase.ok() || !est_cost.ok() || !actual_cost.ok() ||
          !score.ok()) {
        return Status::InvalidArgument("decision event missing payload");
      }
      // Optional: traces written before predictive planning landed have no
      // raw_score field; treat those decisions as uncorrected.
      auto raw_score = GetDouble(*args.value(), "raw_score");
      const double raw =
          raw_score.ok() ? raw_score.value() : score.value();
      DecisionAgg& agg = decisions[name.value() + "/" + phase.value()];
      agg.count += 1;
      agg.est_cost_sum += est_cost.value();
      agg.actual_cost_sum += actual_cost.value();
      agg.score_sum += score.value();
      agg.raw_score_sum += raw;
      if (raw != score.value()) agg.corrected += 1;
    } else {
      ++instants;
    }
  }

  // An empty traceEvents array means the trace was truncated (the process
  // died mid-dump) or recording was off -- either way there is nothing to
  // analyse, and CI scripts gating on this tool must see a failure rather
  // than three empty tables and exit 0.
  if (spans.empty() && decisions.empty() && instants == 0) {
    return Status::InvalidArgument(
        "trace has no events -- empty or truncated dump (was the recorder "
        "armed and the process shut down cleanly?)")
        .WithContext(path);
  }

  ComputeSelfTimes(&spans);
  std::map<std::string, SpanAgg> by_key;
  for (const SpanRow& span : spans) {
    SpanAgg& agg = by_key[span.key];
    agg.count += 1;
    agg.total_dur += span.dur;
    agg.total_self += span.self;
  }
  std::vector<std::pair<std::string, SpanAgg>> ranked(by_key.begin(),
                                                      by_key.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.second.total_self > b.second.total_self;
            });

  std::printf("== %s: %zu spans, %zu decision keys, %llu instants ==\n",
              path.c_str(), spans.size(), decisions.size(),
              static_cast<unsigned long long>(instants));
  std::printf("\nTop spans by self-time (us):\n");
  std::printf("%-28s %10s %14s %14s\n", "cat:name", "count", "total",
              "self");
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    std::printf("%-28s %10llu %14.3f %14.3f\n", ranked[i].first.c_str(),
                static_cast<unsigned long long>(ranked[i].second.count),
                ranked[i].second.total_dur, ranked[i].second.total_self);
  }

  std::printf("\nDecision histogram (per operator/phase):\n");
  std::printf("%-28s %10s %14s %14s %12s %12s %10s\n", "op/phase", "count",
              "mean est", "mean actual", "mean score", "mean raw",
              "corrected");
  for (const auto& [key, agg] : decisions) {
    const double n = static_cast<double>(agg.count);
    std::printf("%-28s %10llu %14.3f %14.3f %12.4f %12.4f %10llu\n",
                key.c_str(), static_cast<unsigned long long>(agg.count),
                agg.est_cost_sum / n, agg.actual_cost_sum / n,
                agg.score_sum / n, agg.raw_score_sum / n,
                static_cast<unsigned long long>(agg.corrected));
  }
  return Status::OK();
}

Status InspectReport(const std::string& path) {
  std::string text;
  {
    auto read = ReadFile(path);
    if (!read.ok()) return read.status();
    text = std::move(read).value();
  }
  auto report = ExecutionReport::FromJson(text);
  if (!report.ok()) return report.status().WithContext(path);

  std::printf("\nEstimator calibration (%s):\n", path.c_str());
  std::printf("%-10s %8s %11s %11s %11s %11s %11s %11s\n", "solver",
              "samples", "cost bias", "cost MAE", "lo bias", "lo MAE",
              "hi bias", "hi MAE");
  for (int k = 0; k < vaolib::obs::kNumSolverKinds; ++k) {
    const auto& c = report.value().calibration[k];
    if (c.samples == 0) continue;
    std::printf("%-10s %8llu %11.4f %11.4f %11.4f %11.4f %11.4f %11.4f\n",
                vaolib::obs::SolverKindName(
                    static_cast<vaolib::obs::SolverKind>(k)),
                static_cast<unsigned long long>(c.samples), c.CostBias(),
                c.CostMae(), c.LoBias(), c.LoMae(), c.HiBias(), c.HiMae());
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string report_path;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (top == 0) top = 10;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (trace_path.empty() && report_path.empty()) {
    std::fprintf(
        stderr,
        "usage: trace_inspect <trace.json> [--top N] [--report <r.json>]\n");
    return 2;
  }
  if (!trace_path.empty()) {
    const Status status = InspectTrace(trace_path, top);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!report_path.empty()) {
    const Status status = InspectReport(report_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
