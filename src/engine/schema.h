// Copyright 2026 The vaolib Authors.
// Schema: named, typed columns for relations and streams.

#ifndef VAOLIB_ENGINE_SCHEMA_H_
#define VAOLIB_ENGINE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace vaolib::engine {

/// \brief Declared column type.
enum class ColumnType { kInt, kDouble, kString };

/// \brief One column declaration.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kDouble;
};

/// \brief Ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  std::size_t size() const { return columns_.size(); }

  /// Index of the column named \p name.
  Result<std::size_t> IndexOf(const std::string& name) const {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return i;
    }
    return Status::NotFound("no column named '" + name + "'");
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_SCHEMA_H_
