#include "engine/executor.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "engine/report_capture.h"
#include "engine/sampling/sampled_sum.h"
#include "engine/sampling/sampler.h"
#include "operators/iteration_task.h"
#include "obs/trace.h"
#include "operators/min_max.h"
#include "operators/selection.h"
#include "operators/sum_ave.h"
#include "operators/top_k.h"
#include "operators/traditional.h"
#include "vao/parallel.h"

namespace vaolib::engine {

namespace {

// Per-object Iterate() budget for the parallel coarse pre-phase. Iteration
// cost roughly doubles per refinement step, so a cap this small keeps the
// coarse work on rows the serial greedy loop would have pruned early to a
// few percent of the total, while still fanning the broad early refinement
// out across the pool.
constexpr std::uint64_t kCoarseMaxSteps = 4;

// Copies the operator-phase section of \p stats into \p report.
void FillOperatorSection(const operators::OperatorStats& stats,
                         obs::ExecutionReport* report) {
  report->iterations = stats.iterations;
  report->coarse_iterations = stats.coarse_iterations;
  report->greedy_iterations = stats.greedy_iterations;
  report->finalize_iterations = stats.finalize_iterations;
  report->choose_steps = stats.choose_steps;
  report->objects_touched = stats.objects_touched;
  report->stalled_objects = stats.stalled_objects;
}

// VAO failures the kDegrade policy may answer through the black-box
// fallback: numeric breakdowns, exhausted iteration budgets, refinement
// stalls. Anything else (bad bindings, empty inputs, ...) stays fatal --
// the traditional path would fail the same way.
bool IsDegradableFailure(const Status& status) {
  return status.Is(StatusCode::kNumericError) ||
         status.Is(StatusCode::kResourceExhausted) ||
         status.Is(StatusCode::kNotConverged);
}

}  // namespace

CqExecutor::CqExecutor(const Relation* relation, Schema stream_schema,
                       Query query, ExecutionMode mode, int threads,
                       ResiliencePolicy resilience)
    : relation_(relation),
      stream_schema_(std::move(stream_schema)),
      query_(std::move(query)),
      mode_(mode),
      threads_(std::max(threads, 1)),
      resilience_(resilience) {}

Result<std::unique_ptr<CqExecutor>> CqExecutor::Create(
    const Relation* relation, Schema stream_schema, Query query,
    ExecutionMode mode, int threads, ResiliencePolicy resilience) {
  if (relation == nullptr) {
    return Status::InvalidArgument("executor requires a relation");
  }
  if (query.function == nullptr) {
    return Status::InvalidArgument("query has no function bound");
  }
  if (static_cast<int>(query.args.size()) != query.function->arity()) {
    return Status::InvalidArgument(
        "query binds " + std::to_string(query.args.size()) +
        " args but function '" + query.function->name() + "' expects " +
        std::to_string(query.function->arity()));
  }
  if (query.approx.has_value()) {
    if (mode == ExecutionMode::kTraditional) {
      return Status::InvalidArgument(
          "approximate execution requires VAO mode");
    }
    if (query.kind != QueryKind::kSum && query.kind != QueryKind::kAve &&
        query.kind != QueryKind::kTopK) {
      return Status::InvalidArgument(
          "APPROX applies to SUM/AVE/TOP-K queries only");
    }
    if (!(query.approx->confidence > 0.0) ||
        !(query.approx->confidence < 1.0)) {
      return Status::InvalidArgument(
          "APPROX confidence must be in (0, 1), got " +
          std::to_string(query.approx->confidence));
    }
    if (!(query.approx->target_rel_error > 0.0)) {
      return Status::InvalidArgument(
          "APPROX target relative error must be > 0, got " +
          std::to_string(query.approx->target_rel_error));
    }
  }

  auto executor = std::unique_ptr<CqExecutor>(
      new CqExecutor(relation, std::move(stream_schema), std::move(query),
                     mode, threads, resilience));

  for (const ArgRef& ref : executor->query_.args) {
    BoundArg bound;
    bound.source = ref.source;
    bound.constant = ref.constant;
    switch (ref.source) {
      case ArgRef::Source::kStreamField: {
        VAOLIB_ASSIGN_OR_RETURN(bound.index,
                                executor->stream_schema_.IndexOf(ref.field));
        break;
      }
      case ArgRef::Source::kRelationField: {
        VAOLIB_ASSIGN_OR_RETURN(
            bound.index, executor->relation_->schema().IndexOf(ref.field));
        break;
      }
      case ArgRef::Source::kConstant:
        break;
    }
    executor->bound_args_.push_back(bound);
  }

  if (executor->query_.weight_column.has_value()) {
    VAOLIB_ASSIGN_OR_RETURN(
        const std::size_t idx,
        executor->relation_->schema().IndexOf(*executor->query_.weight_column));
    executor->weight_column_index_ = idx;
  }

  if (mode == ExecutionMode::kTraditional) {
    executor->black_box_ =
        std::make_unique<vao::CalibratedBlackBox>(executor->query_.function);
  }
  return executor;
}

Result<std::vector<double>> CqExecutor::BuildArgs(const Tuple& stream_tuple,
                                                  std::size_t row) const {
  std::vector<double> args;
  args.reserve(bound_args_.size());
  for (const BoundArg& bound : bound_args_) {
    switch (bound.source) {
      case ArgRef::Source::kStreamField: {
        if (bound.index >= stream_tuple.size()) {
          return Status::OutOfRange("stream tuple too short for binding");
        }
        VAOLIB_ASSIGN_OR_RETURN(const double v,
                                stream_tuple[bound.index].AsDouble());
        args.push_back(v);
        break;
      }
      case ArgRef::Source::kRelationField: {
        VAOLIB_ASSIGN_OR_RETURN(const Value cell,
                                relation_->At(row, bound.index));
        VAOLIB_ASSIGN_OR_RETURN(const double v, cell.AsDouble());
        args.push_back(v);
        break;
      }
      case ArgRef::Source::kConstant:
        args.push_back(bound.constant);
        break;
    }
  }
  return args;
}

Result<std::vector<double>> CqExecutor::ResolveWeights() const {
  const std::size_t n = relation_->size();
  if (!weight_column_index_.has_value()) {
    if (query_.kind == QueryKind::kAve) return operators::AveWeights(n);
    return operators::SumWeights(n);
  }
  std::vector<double> weights;
  weights.reserve(n);
  for (std::size_t row = 0; row < n; ++row) {
    VAOLIB_ASSIGN_OR_RETURN(const Value cell,
                            relation_->At(row, *weight_column_index_));
    VAOLIB_ASSIGN_OR_RETURN(const double w, cell.AsDouble());
    weights.push_back(w);
  }
  return weights;
}

Result<TickResult> CqExecutor::ProcessTick(const Tuple& stream_tuple) {
  if (stream_tuple.size() != stream_schema_.size()) {
    return Status::InvalidArgument("stream tuple does not match schema");
  }
  if (relation_->size() == 0) {
    return Status::FailedPrecondition("relation is empty");
  }
  if (mode_ != ExecutionMode::kVao) return RunTraditional(stream_tuple);
  if (query_.approx.has_value()) return RunApproximate(stream_tuple);
  return RunVao(stream_tuple);
}

Result<TickResult> CqExecutor::RunVao(const Tuple& stream_tuple) {
  const obs::ScopedSpan tick_span("tick", QueryKindName(query_.kind));
  TickResult result;
  result.kind = query_.kind;
  const std::uint64_t work_before = meter_.Total();
  const ReportCapture capture(meter_, ReportCapture::CacheOf(query_.function));
  const std::size_t n = relation_->size();

  // Per-row argument vectors for this tick (also the batch-path input).
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t row = 0; row < n; ++row) {
    VAOLIB_ASSIGN_OR_RETURN(std::vector<double> args,
                            BuildArgs(stream_tuple, row));
    rows.push_back(std::move(args));
  }

  if (query_.kind == QueryKind::kSelect ||
      query_.kind == QueryKind::kSelectRange) {
    const operators::SelectionVao point_vao(query_.cmp, query_.constant);
    const operators::RangeSelectionVao range_vao(
        query_.range_lo, query_.range_hi, query_.range_inclusive);
    // Under kDegrade, failing rows are quarantined by the batch operator
    // instead of failing the tick.
    std::vector<Status> row_status;
    std::vector<Status>* row_status_ptr =
        resilience_ == ResiliencePolicy::kDegrade ? &row_status : nullptr;
    std::vector<operators::SelectionOutcome> outcomes;
    if (query_.kind == QueryKind::kSelect) {
      VAOLIB_ASSIGN_OR_RETURN(
          outcomes, point_vao.EvaluateBatch(*query_.function, rows, threads_,
                                            &meter_, row_status_ptr));
    } else {
      VAOLIB_ASSIGN_OR_RETURN(
          outcomes, range_vao.EvaluateBatch(*query_.function, rows, threads_,
                                            &meter_, row_status_ptr));
    }
    std::uint64_t short_circuited = 0;
    for (std::size_t row = 0; row < n; ++row) {
      if (row_status_ptr != nullptr && !row_status[row].ok()) {
        result.quarantined_rows.push_back(row);
        result.degraded = true;
        if (result.degradation_cause.ok()) {
          result.degradation_cause = row_status[row];
        }
        continue;  // a quarantined row never enters passing_rows
      }
      if (outcomes[row].passes) result.passing_rows.push_back(row);
      if (outcomes[row].short_circuited) ++short_circuited;
      result.stats.Merge(outcomes[row].stats);
    }
    result.work_units = meter_.Total() - work_before;
    result.report.query_kind = QueryKindName(query_.kind);
    result.report.rows_scanned = n;
    result.report.rows_short_circuited = short_circuited;
    result.report.rows_quarantined = result.quarantined_rows.size();
    FillOperatorSection(result.stats, &result.report);
    FillProgressSection(result, query_.epsilon, &result.report);
    capture.Finish(meter_, &result.report);
    obs::RecordTickMetrics(result.report);
    return result;
  }

  // Aggregates: materialize one result object per relation row (bulk
  // invoke runs row-parallel when threads_ > 1).
  auto invoked = vao::InvokeAll(*query_.function, rows, threads_, &meter_);
  if (!invoked.ok()) return FallbackOrError(stream_tuple, invoked.status());
  std::vector<vao::ResultObjectPtr> owned = std::move(invoked).value();
  std::vector<vao::ResultObject*> objects;
  objects.reserve(n);
  for (const auto& object : owned) objects.push_back(object.get());

  switch (query_.kind) {
    case QueryKind::kMax:
    case QueryKind::kMin: {
      operators::MinMaxOptions options;
      options.kind = query_.kind == QueryKind::kMax
                         ? operators::ExtremeKind::kMax
                         : operators::ExtremeKind::kMin;
      options.epsilon = query_.epsilon;
      options.meter = &meter_;
      if (threads_ > 1) {
        options.threads = threads_;
        options.coarse_width = query_.epsilon;
        options.coarse_max_steps = kCoarseMaxSteps;
      }
      const operators::MinMaxVao vao(options);
      auto evaluated = vao.Evaluate(objects);
      if (!evaluated.ok()) {
        return FallbackOrError(stream_tuple, evaluated.status());
      }
      const operators::MinMaxOutcome outcome = std::move(evaluated).value();
      result.winner_row = outcome.winner_index;
      result.tie = outcome.tie;
      result.aggregate_bounds = outcome.winner_bounds;
      result.stats = outcome.stats;
      if (outcome.precision_degraded) {
        result.degraded = true;
        result.degradation_cause = Status::ResourceExhausted(
            "MIN/MAX quarantined stalled result objects; winner bounds may "
            "be wider than epsilon");
      }
      break;
    }
    case QueryKind::kSum:
    case QueryKind::kAve: {
      VAOLIB_ASSIGN_OR_RETURN(const std::vector<double> weights,
                              ResolveWeights());
      operators::SumAveOptions options;
      options.epsilon = query_.epsilon;
      options.meter = &meter_;
      if (threads_ > 1) {
        options.threads = threads_;
        options.coarse_width = query_.epsilon;
        options.coarse_max_steps = kCoarseMaxSteps;
      }
      const operators::SumAveVao vao(options);
      auto evaluated = vao.Evaluate(objects, weights);
      if (!evaluated.ok()) {
        return FallbackOrError(stream_tuple, evaluated.status());
      }
      const operators::SumOutcome outcome = std::move(evaluated).value();
      result.aggregate_bounds = outcome.sum_bounds;
      result.stats = outcome.stats;
      if (outcome.stats.stalled_objects > 0) {
        result.degraded = true;
        result.degradation_cause = Status::ResourceExhausted(
            "SUM/AVE quarantined stalled result objects; output bounds may "
            "be wider than epsilon");
      }
      break;
    }
    case QueryKind::kTopK: {
      operators::TopKOptions options;
      options.k = query_.k;
      options.epsilon = query_.epsilon;
      options.meter = &meter_;
      const operators::TopKVao vao(options);
      auto evaluated = vao.Evaluate(objects);
      if (!evaluated.ok()) {
        return FallbackOrError(stream_tuple, evaluated.status());
      }
      const operators::TopKOutcome outcome = std::move(evaluated).value();
      result.top_rows = outcome.winners;
      result.top_bounds = outcome.winner_bounds;
      result.tie = outcome.tie;
      if (!outcome.winners.empty()) {
        result.winner_row = outcome.winners.front();
        result.aggregate_bounds = outcome.winner_bounds.front();
      }
      result.stats = outcome.stats;
      if (outcome.precision_degraded) {
        result.degraded = true;
        result.degradation_cause = Status::ResourceExhausted(
            "TOP-K quarantined stalled result objects; winner bounds may be "
            "wider than epsilon");
      }
      break;
    }
    case QueryKind::kSelect:
    case QueryKind::kSelectRange:
      return Status::Internal("unreachable select in aggregate path");
  }
  result.work_units = meter_.Total() - work_before;
  result.report.query_kind = QueryKindName(query_.kind);
  result.report.rows_scanned = n;
  // Rows the adaptive operator never had to iterate: their initial bounds
  // alone were enough to rule them out of the answer.
  result.report.rows_short_circuited = n - result.stats.objects_touched;
  FillOperatorSection(result.stats, &result.report);
  FillProgressSection(result, query_.epsilon, &result.report);
  capture.Finish(meter_, &result.report);
  obs::RecordTickMetrics(result.report);
  return result;
}

Result<TickResult> CqExecutor::RunApproximate(const Tuple& stream_tuple) {
  const obs::ScopedSpan tick_span("tick", "approx");
  TickResult result;
  result.kind = query_.kind;
  const std::uint64_t work_before = meter_.Total();
  const ReportCapture capture(meter_, ReportCapture::CacheOf(query_.function));
  const std::size_t n = relation_->size();
  const ApproxSpec& spec = *query_.approx;

  switch (query_.kind) {
    case QueryKind::kSum:
    case QueryKind::kAve: {
      VAOLIB_ASSIGN_OR_RETURN(const std::vector<double> weights,
                              ResolveWeights());
      sampling::SampledAggregateOptions options;
      options.spec = spec;
      options.epsilon = query_.epsilon;
      options.meter = &meter_;
      auto factory =
          [this, &stream_tuple](std::size_t row) -> Result<vao::ResultObjectPtr> {
        VAOLIB_ASSIGN_OR_RETURN(const std::vector<double> args,
                                BuildArgs(stream_tuple, row));
        return query_.function->Invoke(args, &meter_);
      };
      auto weight = [&weights](std::size_t row) { return weights[row]; };
      auto created =
          sampling::SampledSumTask::Create(options, n, factory, weight);
      if (!created.ok()) {
        // Create() also draws the initial sample, so row-level numeric
        // failures can surface here and stay degradable; genuine config
        // errors are not degradable and fall straight through.
        return FallbackOrError(stream_tuple, created.status());
      }
      const std::unique_ptr<sampling::SampledSumTask> task =
          std::move(created).value();
      operators::OperatorOptions drive;
      drive.meter = &meter_;
      auto driven = operators::DriveTask(task.get(), drive);
      if (!driven.ok()) return FallbackOrError(stream_tuple, driven.status());
      const sampling::SampledSumOutcome outcome = task->Snapshot();
      result.aggregate_bounds = outcome.answer;
      result.converged = outcome.converged;
      result.stats = outcome.stats;
      if (outcome.limited_by_min_width) {
        result.degraded = true;
        result.degradation_cause = Status::ResourceExhausted(
            "sampled SUM/AVE exhausted the sample without reaching the "
            "error target; interval is as tight as the min-width floors "
            "allow");
      }
      result.report.rows_scanned = outcome.answer.sample_size;
      break;
    }
    case QueryKind::kTopK: {
      if (query_.k < 1 || query_.k > n) {
        return Status::InvalidArgument("top-k k out of range");
      }
      std::size_t want = spec.max_samples != 0
                             ? spec.max_samples
                             : std::max(spec.initial_samples, n / 10);
      want = std::min(std::max(want, query_.k), n);
      const std::vector<std::size_t> sampled =
          sampling::ReservoirSample(n, want, spec.seed);

      std::vector<std::vector<double>> rows;
      rows.reserve(sampled.size());
      for (const std::size_t row : sampled) {
        VAOLIB_ASSIGN_OR_RETURN(std::vector<double> args,
                                BuildArgs(stream_tuple, row));
        rows.push_back(std::move(args));
      }
      auto invoked = vao::InvokeAll(*query_.function, rows, threads_, &meter_);
      if (!invoked.ok()) {
        return FallbackOrError(stream_tuple, invoked.status());
      }
      const std::vector<vao::ResultObjectPtr> owned =
          std::move(invoked).value();
      std::vector<vao::ResultObject*> objects;
      objects.reserve(owned.size());
      for (const auto& object : owned) objects.push_back(object.get());

      operators::TopKOptions options;
      options.k = query_.k;
      options.epsilon = query_.epsilon;
      options.meter = &meter_;
      const operators::TopKVao vao(options);
      auto evaluated = vao.Evaluate(objects);
      if (!evaluated.ok()) {
        return FallbackOrError(stream_tuple, evaluated.status());
      }
      const operators::TopKOutcome outcome = std::move(evaluated).value();
      for (const std::size_t winner : outcome.winners) {
        result.top_rows.push_back(sampled[winner]);
      }
      result.top_bounds = outcome.winner_bounds;
      result.tie = outcome.tie;
      if (!result.top_rows.empty()) {
        result.winner_row = result.top_rows.front();
        // A heuristic tier: the interval is the sampled winner's hard
        // bounds; `approximate` marks that rows outside the sample were
        // never considered. No per-rank CLT guarantee is computed, so the
        // answer carries confidence 0 rather than the spec's level -- the
        // wire token must not read as a probabilistic coverage claim.
        result.aggregate_bounds = vao::Answer::Approximate(
            outcome.winner_bounds.front(), /*confidence=*/0.0, sampled.size(),
            n, outcome.winner_bounds.front().Width(), 0.0);
      }
      result.stats = outcome.stats;
      if (outcome.precision_degraded) {
        result.degraded = true;
        result.degradation_cause = Status::ResourceExhausted(
            "TOP-K quarantined stalled result objects; winner bounds may be "
            "wider than epsilon");
      }
      result.report.rows_scanned = sampled.size();
      break;
    }
    default:
      return Status::Internal("approximate execution on non-aggregate kind");
  }

  result.work_units = meter_.Total() - work_before;
  result.report.query_kind = QueryKindName(query_.kind);
  FillOperatorSection(result.stats, &result.report);
  const vao::Answer& answer = result.aggregate_bounds;
  result.report.answer_mode = vao::AnswerModeName(answer.mode);
  result.report.answer_confidence = answer.confidence;
  result.report.sample_size = answer.sample_size;
  result.report.sample_population = answer.population_size;
  result.report.deterministic_width = answer.deterministic_width;
  result.report.sampling_width = answer.sampling_width;
  FillProgressSection(result, query_.epsilon, &result.report);
  capture.Finish(meter_, &result.report);
  obs::RecordTickMetrics(result.report);
  return result;
}

Result<TickResult> CqExecutor::FallbackOrError(const Tuple& stream_tuple,
                                               const Status& cause) {
  if (resilience_ != ResiliencePolicy::kDegrade ||
      !IsDegradableFailure(cause)) {
    return cause;
  }
  if (black_box_ == nullptr) {
    black_box_ = std::make_unique<vao::CalibratedBlackBox>(query_.function);
  }
  auto fallback = RunTraditional(stream_tuple);
  if (!fallback.ok()) {
    // Even the black box could not answer (e.g. its calibration pass hit the
    // same stall); surface the original VAO failure, which names the root
    // cause, with the fallback's failure appended.
    return cause.WithContext("black-box fallback also failed (" +
                             fallback.status().ToString() + ")");
  }
  TickResult result = std::move(fallback).value();
  result.degraded = true;
  result.degradation_cause = cause;
  return result;
}

Result<TickResult> CqExecutor::RunTraditional(const Tuple& stream_tuple) {
  const obs::ScopedSpan tick_span("tick", "traditional");
  TickResult result;
  result.kind = query_.kind;
  const std::uint64_t work_before = meter_.Total();
  const ReportCapture capture(meter_, ReportCapture::CacheOf(query_.function));
  const std::size_t n = relation_->size();

  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t row = 0; row < n; ++row) {
    VAOLIB_ASSIGN_OR_RETURN(std::vector<double> args,
                            BuildArgs(stream_tuple, row));
    rows.push_back(std::move(args));
  }

  switch (query_.kind) {
    case QueryKind::kSelect: {
      const operators::TraditionalSelection op(query_.cmp, query_.constant);
      for (std::size_t row = 0; row < n; ++row) {
        VAOLIB_ASSIGN_OR_RETURN(const bool passes,
                                op.Evaluate(*black_box_, rows[row], &meter_));
        if (passes) result.passing_rows.push_back(row);
      }
      break;
    }
    case QueryKind::kSelectRange: {
      for (std::size_t row = 0; row < n; ++row) {
        VAOLIB_ASSIGN_OR_RETURN(const double value,
                                black_box_->Call(rows[row], &meter_));
        const bool passes =
            query_.range_inclusive
                ? value >= query_.range_lo && value <= query_.range_hi
                : value > query_.range_lo && value < query_.range_hi;
        if (passes) result.passing_rows.push_back(row);
      }
      break;
    }
    case QueryKind::kMax:
    case QueryKind::kMin: {
      const auto kind = query_.kind == QueryKind::kMax
                            ? operators::ExtremeKind::kMax
                            : operators::ExtremeKind::kMin;
      VAOLIB_ASSIGN_OR_RETURN(
          const operators::TraditionalExtremeOutcome outcome,
          operators::TraditionalExtreme(*black_box_, rows, kind, &meter_));
      result.winner_row = outcome.winner_index;
      result.aggregate_bounds = Bounds::Point(outcome.value);
      break;
    }
    case QueryKind::kSum:
    case QueryKind::kAve: {
      VAOLIB_ASSIGN_OR_RETURN(const std::vector<double> weights,
                              ResolveWeights());
      VAOLIB_ASSIGN_OR_RETURN(
          const operators::TraditionalSumOutcome outcome,
          operators::TraditionalWeightedSum(*black_box_, rows, weights,
                                            &meter_));
      result.aggregate_bounds = Bounds::Point(outcome.sum);
      break;
    }
    case QueryKind::kTopK: {
      if (query_.k < 1 || query_.k > n) {
        return Status::InvalidArgument("top-k k out of range");
      }
      std::vector<std::pair<double, std::size_t>> valued(n);
      for (std::size_t row = 0; row < n; ++row) {
        VAOLIB_ASSIGN_OR_RETURN(const double value,
                                black_box_->Call(rows[row], &meter_));
        valued[row] = {value, row};
      }
      std::sort(valued.begin(), valued.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (std::size_t i = 0; i < query_.k; ++i) {
        result.top_rows.push_back(valued[i].second);
        result.top_bounds.push_back(Bounds::Point(valued[i].first));
      }
      result.winner_row = result.top_rows.front();
      result.aggregate_bounds = result.top_bounds.front();
      break;
    }
  }
  result.work_units = meter_.Total() - work_before;
  result.report.query_kind = QueryKindName(query_.kind);
  result.report.rows_scanned = n;  // traditional mode never short-circuits
  FillOperatorSection(result.stats, &result.report);
  FillProgressSection(result, query_.epsilon, &result.report);
  capture.Finish(meter_, &result.report);
  obs::RecordTickMetrics(result.report);
  return result;
}

}  // namespace vaolib::engine
