#include "engine/multi_query.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <utility>

#include "common/macros.h"
#include "engine/report_capture.h"
#include "engine/sampling/sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "operators/iteration_task.h"
#include "operators/min_max.h"
#include "operators/selection.h"
#include "operators/sum_ave.h"
#include "operators/top_k.h"
#include "vao/parallel.h"

namespace vaolib::engine {

namespace {

bool SameBinding(const ArgRef& a, const ArgRef& b) {
  return a.source == b.source && a.field == b.field &&
         a.constant == b.constant;
}

// Per-object Iterate() budget for the parallel coarse pre-phase; see the
// identical constant in executor.cc for the rationale.
constexpr std::uint64_t kCoarseMaxSteps = 4;

// Copies an answer's provenance into the report's answer section.
void FillAnswerSection(const vao::Answer& answer,
                       obs::ExecutionReport* report) {
  report->answer_mode = vao::AnswerModeName(answer.mode);
  report->answer_confidence = answer.confidence;
  report->sample_size = answer.sample_size;
  report->sample_population = answer.population_size;
  report->deterministic_width = answer.deterministic_width;
  report->sampling_width = answer.sampling_width;
}

// True when \p query runs in the approximate tier (private sampled objects,
// never the shared per-row set).
bool IsApprox(const Query& query) { return query.approx.has_value(); }

}  // namespace

MultiQueryExecutor::MultiQueryExecutor(const Relation* relation,
                                       Schema stream_schema,
                                       std::vector<Query> queries,
                                       MultiQueryOptions options)
    : relation_(relation),
      stream_schema_(std::move(stream_schema)),
      queries_(std::move(queries)),
      options_(std::move(options)) {
  options_.threads = std::max(options_.threads, 1);
}

Result<std::unique_ptr<MultiQueryExecutor>> MultiQueryExecutor::Create(
    const Relation* relation, Schema stream_schema,
    std::vector<Query> queries, int threads) {
  MultiQueryOptions options;
  options.threads = threads;
  return Create(relation, std::move(stream_schema), std::move(queries),
                options);
}

Result<std::unique_ptr<MultiQueryExecutor>> MultiQueryExecutor::Create(
    const Relation* relation, Schema stream_schema,
    std::vector<Query> queries, const MultiQueryOptions& options) {
  if (relation == nullptr) {
    return Status::InvalidArgument("multi-query executor needs a relation");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("multi-query executor with no queries");
  }
  const Query& first = queries.front();
  if (first.function == nullptr) {
    return Status::InvalidArgument("query has no function bound");
  }
  for (const Query& query : queries) {
    if (query.function != first.function) {
      return Status::InvalidArgument(
          "shared execution requires all queries to use the same function");
    }
    if (query.args.size() != first.args.size()) {
      return Status::InvalidArgument(
          "shared execution requires identical argument bindings");
    }
    for (std::size_t i = 0; i < query.args.size(); ++i) {
      if (!SameBinding(query.args[i], first.args[i])) {
        return Status::InvalidArgument(
            "shared execution requires identical argument bindings");
      }
    }
    if (query.weight_column.has_value() &&
        !relation->schema().IndexOf(*query.weight_column).ok()) {
      return Status::NotFound("weight column '" + *query.weight_column +
                              "' not in relation");
    }
    if (query.approx.has_value()) {
      if (query.kind != QueryKind::kSum && query.kind != QueryKind::kAve &&
          query.kind != QueryKind::kTopK) {
        return Status::InvalidArgument(
            "APPROX applies to SUM/AVE/TOP-K queries only");
      }
      if (!(query.approx->confidence > 0.0) ||
          !(query.approx->confidence < 1.0)) {
        return Status::InvalidArgument(
            "APPROX confidence must be in (0, 1), got " +
            std::to_string(query.approx->confidence));
      }
      if (!(query.approx->target_rel_error > 0.0)) {
        return Status::InvalidArgument(
            "APPROX target relative error must be > 0, got " +
            std::to_string(query.approx->target_rel_error));
      }
    }
  }
  if (static_cast<int>(first.args.size()) != first.function->arity()) {
    return Status::InvalidArgument("argument binding arity mismatch");
  }
  if (!options.schedules.empty() &&
      options.schedules.size() != queries.size()) {
    return Status::InvalidArgument(
        "schedules must be empty or parallel to the query list");
  }
  for (const QuerySchedule& schedule : options.schedules) {
    if (!(schedule.priority > 0.0)) {
      return Status::InvalidArgument("scheduler priorities must be positive");
    }
  }
  if (!options.owners.empty() && options.owners.size() != queries.size()) {
    return Status::InvalidArgument(
        "owners must be empty or parallel to the query list");
  }

  auto executor = std::unique_ptr<MultiQueryExecutor>(new MultiQueryExecutor(
      relation, std::move(stream_schema), std::move(queries), options));
  for (const ArgRef& ref : executor->queries_.front().args) {
    BoundArg bound;
    bound.source = ref.source;
    bound.constant = ref.constant;
    switch (ref.source) {
      case ArgRef::Source::kStreamField: {
        VAOLIB_ASSIGN_OR_RETURN(bound.index,
                                executor->stream_schema_.IndexOf(ref.field));
        break;
      }
      case ArgRef::Source::kRelationField: {
        VAOLIB_ASSIGN_OR_RETURN(
            bound.index, executor->relation_->schema().IndexOf(ref.field));
        break;
      }
      case ArgRef::Source::kConstant:
        break;
    }
    executor->bound_args_.push_back(bound);
  }
  return executor;
}

void MultiQueryExecutor::ApplyPredictiveOptions(
    operators::OperatorOptions* options) const {
  options->strategy = options_.strategy;
  options->sentinel_probes = options_.sentinel_probes;
  options->feedback = options_.history.get();
  options->object_ids = &object_ids_;
}

Result<std::vector<double>> MultiQueryExecutor::BuildArgs(
    const Tuple& stream_tuple, std::size_t row) const {
  std::vector<double> args;
  args.reserve(bound_args_.size());
  for (const BoundArg& bound : bound_args_) {
    switch (bound.source) {
      case ArgRef::Source::kStreamField: {
        if (bound.index >= stream_tuple.size()) {
          return Status::OutOfRange("stream tuple too short for binding");
        }
        VAOLIB_ASSIGN_OR_RETURN(const double v,
                                stream_tuple[bound.index].AsDouble());
        args.push_back(v);
        break;
      }
      case ArgRef::Source::kRelationField: {
        VAOLIB_ASSIGN_OR_RETURN(const Value cell,
                                relation_->At(row, bound.index));
        VAOLIB_ASSIGN_OR_RETURN(const double v, cell.AsDouble());
        args.push_back(v);
        break;
      }
      case ArgRef::Source::kConstant:
        args.push_back(bound.constant);
        break;
    }
  }
  return args;
}

Result<std::vector<vao::ResultObjectPtr>>
MultiQueryExecutor::CreateSharedObjects(const Tuple& stream_tuple,
                                        std::uint64_t* creation_cost,
                                        obs::WorkByKind* creation_work) {
  // One shared result object per relation row, created in bulk (row-parallel
  // on the shared pool when threads > 1; work totals are identical either
  // way because every object charges meter_ directly).
  const std::size_t n = relation_->size();
  const auto* function = queries_.front().function;
  const std::uint64_t creation_before = meter_.Total();
  const obs::WorkByKind creation_work_before =
      obs::WorkByKind::Capture(meter_);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t row = 0; row < n; ++row) {
    VAOLIB_ASSIGN_OR_RETURN(std::vector<double> args,
                            BuildArgs(stream_tuple, row));
    rows.push_back(std::move(args));
  }
  VAOLIB_ASSIGN_OR_RETURN(
      std::vector<vao::ResultObjectPtr> owned,
      vao::InvokeAll(*function, rows, options_.threads, &meter_));
  *creation_cost = meter_.Total() - creation_before;
  *creation_work =
      obs::WorkByKind::Capture(meter_).DeltaSince(creation_work_before);
  return owned;
}

Result<std::unique_ptr<sampling::SampledSumTask>>
MultiQueryExecutor::MakeSampledSumTask(const Tuple& stream_tuple,
                                       const Query& query) {
  const std::size_t n = relation_->size();
  std::vector<double> weights;
  if (query.weight_column.has_value()) {
    VAOLIB_ASSIGN_OR_RETURN(weights,
                            relation_->NumericColumn(*query.weight_column));
  } else if (query.kind == QueryKind::kAve) {
    weights = operators::AveWeights(n);
  } else {
    weights = operators::SumWeights(n);
  }
  sampling::SampledAggregateOptions options;
  options.spec = *query.approx;
  options.epsilon = query.epsilon;
  options.meter = &meter_;
  auto factory =
      [this, &stream_tuple](std::size_t row) -> Result<vao::ResultObjectPtr> {
    VAOLIB_ASSIGN_OR_RETURN(const std::vector<double> args,
                            BuildArgs(stream_tuple, row));
    return queries_.front().function->Invoke(args, &meter_);
  };
  auto weight = [weights = std::move(weights)](std::size_t row) {
    return weights[row];
  };
  return sampling::SampledSumTask::Create(options, n, std::move(factory),
                                          std::move(weight));
}

Status MultiQueryExecutor::EvaluateApproxSum(const Tuple& stream_tuple,
                                             const Query& query,
                                             TickResult* result) {
  VAOLIB_ASSIGN_OR_RETURN(const std::unique_ptr<sampling::SampledSumTask> task,
                          MakeSampledSumTask(stream_tuple, query));
  operators::OperatorOptions drive;
  drive.meter = &meter_;
  VAOLIB_RETURN_IF_ERROR(operators::DriveTask(task.get(), drive).status());
  const sampling::SampledSumOutcome outcome = task->Snapshot();
  result->aggregate_bounds = outcome.answer;
  result->converged = outcome.converged;
  result->stats = outcome.stats;
  if (outcome.limited_by_min_width) {
    result->degraded = true;
    result->degradation_cause = Status::ResourceExhausted(
        "sampled SUM/AVE exhausted the sample without reaching the error "
        "target");
  }
  return Status::OK();
}

Status MultiQueryExecutor::EvaluateApproxTopK(const Tuple& stream_tuple,
                                              const Query& query,
                                              TickResult* result) {
  const std::size_t n = relation_->size();
  const ApproxSpec& spec = *query.approx;
  if (query.k < 1 || query.k > n) {
    return Status::InvalidArgument("top-k k out of range");
  }
  std::size_t want = spec.max_samples != 0
                         ? spec.max_samples
                         : std::max(spec.initial_samples, n / 10);
  want = std::min(std::max(want, query.k), n);
  const std::vector<std::size_t> sampled =
      sampling::ReservoirSample(n, want, spec.seed);

  std::vector<std::vector<double>> rows;
  rows.reserve(sampled.size());
  for (const std::size_t row : sampled) {
    VAOLIB_ASSIGN_OR_RETURN(std::vector<double> args,
                            BuildArgs(stream_tuple, row));
    rows.push_back(std::move(args));
  }
  VAOLIB_ASSIGN_OR_RETURN(
      const std::vector<vao::ResultObjectPtr> owned,
      vao::InvokeAll(*queries_.front().function, rows, options_.threads,
                     &meter_));
  std::vector<vao::ResultObject*> objects;
  objects.reserve(owned.size());
  for (const auto& object : owned) objects.push_back(object.get());

  operators::TopKOptions options;
  options.k = query.k;
  options.epsilon = query.epsilon;
  options.meter = &meter_;
  const operators::TopKVao vao(options);
  VAOLIB_ASSIGN_OR_RETURN(const operators::TopKOutcome outcome,
                          vao.Evaluate(objects));
  for (const std::size_t winner : outcome.winners) {
    result->top_rows.push_back(sampled[winner]);
  }
  result->top_bounds = outcome.winner_bounds;
  result->tie = outcome.tie;
  if (!result->top_rows.empty()) {
    result->winner_row = result->top_rows.front();
    // Heuristic tier: sampled winner's hard bounds, no CLT guarantee, so
    // confidence 0 (see protocol.h on conf=0).
    result->aggregate_bounds = vao::Answer::Approximate(
        outcome.winner_bounds.front(), /*confidence=*/0.0, sampled.size(), n,
        outcome.winner_bounds.front().Width(), 0.0);
  }
  result->stats = outcome.stats;
  return Status::OK();
}

Result<std::vector<TickResult>> MultiQueryExecutor::ProcessTick(
    const Tuple& stream_tuple) {
  if (stream_tuple.size() != stream_schema_.size()) {
    return Status::InvalidArgument("stream tuple does not match schema");
  }
  if (relation_->size() == 0) {
    return Status::FailedPrecondition("relation is empty");
  }
  if (object_ids_.size() != relation_->size()) {
    object_ids_.resize(relation_->size());
    std::iota(object_ids_.begin(), object_ids_.end(), std::uint64_t{0});
  }
  // Tick boundary for the cross-tick cost history: decay last tick's
  // learned ratios before this tick's operators read or extend them.
  if (options_.history != nullptr) options_.history->BeginTick();
  return options_.scheduled ? ProcessTickScheduled(stream_tuple)
                            : ProcessTickShared(stream_tuple);
}

Result<std::vector<TickResult>> MultiQueryExecutor::ProcessTickShared(
    const Tuple& stream_tuple) {
  const obs::ScopedSpan tick_span("tick", "multi_shared");
  const std::size_t n = relation_->size();
  const auto* function = queries_.front().function;
  const ReportCapture tick_capture(meter_, ReportCapture::CacheOf(function));

  // Sampled aggregates materialize their own per-row objects, so a tick
  // whose queries are all approximate never builds the shared pool.
  bool need_shared = false;
  for (const Query& query : queries_) need_shared |= !IsApprox(query);

  std::uint64_t creation_cost = 0;
  obs::WorkByKind creation_work;
  std::vector<vao::ResultObjectPtr> owned;
  if (need_shared) {
    VAOLIB_ASSIGN_OR_RETURN(
        owned,
        CreateSharedObjects(stream_tuple, &creation_cost, &creation_work));
  }
  std::vector<vao::ResultObject*> objects;
  objects.reserve(owned.size());
  for (const auto& object : owned) objects.push_back(object.get());

  std::vector<TickResult> results(queries_.size());
  for (auto& result : results) result.kind = QueryKind::kSelect;

  // Phase 1: batch all point-selection predicates per object.
  std::vector<std::size_t> select_query_indices;
  std::vector<operators::MultiSelectionVao::Predicate> predicates;
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    if (queries_[q].kind == QueryKind::kSelect) {
      select_query_indices.push_back(q);
      predicates.push_back({queries_[q].cmp, queries_[q].constant});
    }
  }
  if (!predicates.empty()) {
    const std::uint64_t before = meter_.Total();
    const obs::WorkByKind work_before = obs::WorkByKind::Capture(meter_);
    const operators::MultiSelectionVao shared(predicates);
    VAOLIB_ASSIGN_OR_RETURN(const auto outcomes,
                            shared.EvaluateBatch(objects, options_.threads));
    operators::OperatorStats batch_stats;
    std::uint64_t short_circuited = 0;
    for (std::size_t row = 0; row < n; ++row) {
      const auto& outcome = outcomes[row];
      batch_stats.Merge(outcome.stats);
      if (outcome.short_circuited) ++short_circuited;
      for (std::size_t p = 0; p < select_query_indices.size(); ++p) {
        if (outcome.passes[p]) {
          results[select_query_indices[p]].passing_rows.push_back(row);
        }
      }
    }
    const obs::WorkByKind batch_work =
        obs::WorkByKind::Capture(meter_).DeltaSince(work_before);
    for (const std::size_t q : select_query_indices) {
      results[q].kind = QueryKind::kSelect;
      results[q].stats = batch_stats;
      // The selection batch (plus object creation) is attributed to the
      // selection group as a whole.
      results[q].work_units = meter_.Total() - before + creation_cost;
      results[q].report.query_kind = QueryKindName(QueryKind::kSelect);
      results[q].report.work = batch_work;
      results[q].report.work.exec += creation_work.exec;
      results[q].report.work.get_state += creation_work.get_state;
      results[q].report.work.store_state += creation_work.store_state;
      results[q].report.work.choose_iter += creation_work.choose_iter;
      results[q].report.rows_scanned = n;
      results[q].report.rows_short_circuited = short_circuited;
    }
  }

  // Phase 2: remaining query kinds over the (already tightened) objects.
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    const Query& query = queries_[q];
    TickResult& result = results[q];
    result.kind = query.kind;
    const std::uint64_t before = meter_.Total();
    const obs::WorkByKind work_before = obs::WorkByKind::Capture(meter_);
    std::uint64_t short_circuited = 0;
    switch (query.kind) {
      case QueryKind::kSelect:
        break;  // handled in phase 1
      case QueryKind::kSelectRange: {
        const operators::RangeSelectionVao vao(
            query.range_lo, query.range_hi, query.range_inclusive);
        for (std::size_t row = 0; row < n; ++row) {
          VAOLIB_ASSIGN_OR_RETURN(const auto outcome,
                                  vao.Evaluate(objects[row]));
          if (outcome.passes) result.passing_rows.push_back(row);
          if (outcome.short_circuited) ++short_circuited;
          result.stats.Merge(outcome.stats);
        }
        break;
      }
      case QueryKind::kMax:
      case QueryKind::kMin: {
        operators::MinMaxOptions options;
        options.kind = query.kind == QueryKind::kMax
                           ? operators::ExtremeKind::kMax
                           : operators::ExtremeKind::kMin;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        if (options_.threads > 1) {
          options.threads = options_.threads;
          options.coarse_width = query.epsilon;
          options.coarse_max_steps = kCoarseMaxSteps;
        }
        ApplyPredictiveOptions(&options);
        const operators::MinMaxVao vao(options);
        VAOLIB_ASSIGN_OR_RETURN(const auto outcome, vao.Evaluate(objects));
        result.winner_row = outcome.winner_index;
        result.tie = outcome.tie;
        result.aggregate_bounds = outcome.winner_bounds;
        result.stats = outcome.stats;
        break;
      }
      case QueryKind::kSum:
      case QueryKind::kAve: {
        if (IsApprox(query)) {
          VAOLIB_RETURN_IF_ERROR(
              EvaluateApproxSum(stream_tuple, query, &result));
          break;
        }
        std::vector<double> weights;
        if (query.weight_column.has_value()) {
          VAOLIB_ASSIGN_OR_RETURN(
              weights, relation_->NumericColumn(*query.weight_column));
        } else if (query.kind == QueryKind::kAve) {
          weights = operators::AveWeights(n);
        } else {
          weights = operators::SumWeights(n);
        }
        operators::SumAveOptions options;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        if (options_.threads > 1) {
          options.threads = options_.threads;
          options.coarse_width = query.epsilon;
          options.coarse_max_steps = kCoarseMaxSteps;
        }
        ApplyPredictiveOptions(&options);
        const operators::SumAveVao vao(options);
        VAOLIB_ASSIGN_OR_RETURN(const auto outcome,
                                vao.Evaluate(objects, weights));
        result.aggregate_bounds = outcome.sum_bounds;
        result.stats = outcome.stats;
        break;
      }
      case QueryKind::kTopK: {
        if (IsApprox(query)) {
          VAOLIB_RETURN_IF_ERROR(
              EvaluateApproxTopK(stream_tuple, query, &result));
          break;
        }
        operators::TopKOptions options;
        options.k = query.k;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        ApplyPredictiveOptions(&options);
        const operators::TopKVao vao(options);
        VAOLIB_ASSIGN_OR_RETURN(const auto outcome, vao.Evaluate(objects));
        result.top_rows = outcome.winners;
        result.top_bounds = outcome.winner_bounds;
        result.tie = outcome.tie;
        if (!outcome.winners.empty()) {
          result.winner_row = outcome.winners.front();
          result.aggregate_bounds = outcome.winner_bounds.front();
        }
        result.stats = outcome.stats;
        break;
      }
    }
    if (query.kind != QueryKind::kSelect) {
      result.work_units = meter_.Total() - before;
      result.report.query_kind = QueryKindName(query.kind);
      result.report.work =
          obs::WorkByKind::Capture(meter_).DeltaSince(work_before);
      result.report.rows_scanned = n;
      result.report.rows_short_circuited =
          query.kind == QueryKind::kSelectRange
              ? short_circuited
              // Shared objects the operator never had to iterate further.
              : n - result.stats.objects_touched;
    }
    if (IsApprox(query)) {
      const vao::Answer& answer = result.aggregate_bounds;
      result.report.rows_scanned = answer.sample_size;
      result.report.rows_short_circuited = 0;
      FillAnswerSection(answer, &result.report);
    }
    result.report.iterations = result.stats.iterations;
    result.report.coarse_iterations = result.stats.coarse_iterations;
    result.report.greedy_iterations = result.stats.greedy_iterations;
    result.report.finalize_iterations = result.stats.finalize_iterations;
    result.report.choose_steps = result.stats.choose_steps;
    result.report.objects_touched = result.stats.objects_touched;
    FillProgressSection(result, query.epsilon, &result.report);
  }

  // Tick-wide account: whole-tick work (creation included), cache and pool
  // deltas, operator section summed over every query's phase.
  last_tick_report_ = obs::ExecutionReport();
  last_tick_report_.query_kind = "multi";
  last_tick_report_.rows_scanned = n;
  for (const TickResult& result : results) {
    last_tick_report_.iterations += result.report.iterations;
    last_tick_report_.coarse_iterations += result.report.coarse_iterations;
    last_tick_report_.greedy_iterations += result.report.greedy_iterations;
    last_tick_report_.finalize_iterations +=
        result.report.finalize_iterations;
    last_tick_report_.choose_steps += result.report.choose_steps;
    last_tick_report_.objects_touched += result.report.objects_touched;
    last_tick_report_.rows_short_circuited =
        std::max(last_tick_report_.rows_short_circuited,
                 result.report.rows_short_circuited);
  }
  tick_capture.Finish(meter_, &last_tick_report_);
  obs::RecordTickMetrics(last_tick_report_);
  return results;
}

Result<std::vector<TickResult>> MultiQueryExecutor::ProcessTickScheduled(
    const Tuple& stream_tuple) {
  const obs::ScopedSpan tick_span("tick", "multi_scheduled");
  const std::size_t n = relation_->size();
  const auto* function = queries_.front().function;
  const ReportCapture tick_capture(meter_, ReportCapture::CacheOf(function));

  // Sampled aggregates never touch the shared pool (they materialize
  // private objects for their sampled rows), so skip creation when every
  // query is approximate.
  bool need_shared = false;
  for (const Query& query : queries_) need_shared |= !IsApprox(query);

  std::uint64_t creation_cost = 0;
  obs::WorkByKind creation_work;
  std::vector<vao::ResultObjectPtr> owned;
  if (need_shared) {
    VAOLIB_ASSIGN_OR_RETURN(
        owned,
        CreateSharedObjects(stream_tuple, &creation_cost, &creation_work));
  }
  std::vector<vao::ResultObject*> objects;
  objects.reserve(owned.size());
  for (const auto& object : owned) objects.push_back(object.get());

  std::vector<TickResult> results(queries_.size());

  // Approximate TOP-K queries own their sampled objects for the tick;
  // declared before `tasks` so tasks never outlive the objects they read.
  std::vector<std::vector<vao::ResultObjectPtr>> private_owned(
      queries_.size());
  std::vector<std::vector<std::size_t>> private_rows(queries_.size());

  // One resumable task per query over the SHARED objects: a step granted to
  // one query tightens bounds every other query reads, so work composes
  // across the set exactly as in the classic path -- the scheduler only
  // decides the order and how far the budget reaches. Approximate queries
  // instead contribute their private sampled task to the same run, so the
  // scheduler trades exact refinement against sampling work head-to-head.
  std::vector<std::unique_ptr<operators::IterationTask>> tasks(
      queries_.size());
  // Fills the query's answer from its task after the scheduler run (sound
  // at any point: tasks snapshot partial answers).
  std::vector<std::function<void(TickResult&)>> decode(queries_.size());
  std::vector<bool> is_selection(queries_.size(), false);

  for (std::size_t q = 0; q < queries_.size(); ++q) {
    const Query& query = queries_[q];
    switch (query.kind) {
      case QueryKind::kSelect: {
        is_selection[q] = true;
        const operators::Comparator cmp = query.cmp;
        const double constant = query.constant;
        VAOLIB_ASSIGN_OR_RETURN(
            auto task,
            operators::MultiRowDecisionTask::Create(
                objects, "selection",
                [constant](const Bounds& b) { return b.Contains(constant); },
                options_.threads));
        task->SetFeedback(options_.history.get(), &object_ids_);
        auto* raw = task.get();
        tasks[q] = std::move(task);
        decode[q] = [raw, cmp, constant, &objects](TickResult& result) {
          for (std::size_t row = 0; row < objects.size(); ++row) {
            const Bounds b = objects[row]->bounds();
            // Same decision rules as SelectionVao: cleared bounds decide
            // exactly; bounds still containing the constant resolve with
            // the minWidth equality rule (also the sound default for rows
            // the budget left undecided -- flagged by converged = false).
            const bool passes =
                b.Contains(constant)
                    ? operators::CompareExact(constant, cmp, constant)
                    : operators::CompareExact(b.Mid(), cmp, constant);
            if (passes) result.passing_rows.push_back(row);
            if (raw->RowSettled(row) &&
                !objects[row]->AtStoppingCondition()) {
              ++result.report.rows_short_circuited;
            }
          }
          result.stats = raw->stats();
          result.converged = raw->Converged();
        };
        break;
      }
      case QueryKind::kSelectRange: {
        is_selection[q] = true;
        if (!Bounds(query.range_lo, query.range_hi).IsValid()) {
          return Status::InvalidArgument("range selection needs lo <= hi");
        }
        const Bounds range(query.range_lo, query.range_hi);
        const bool inclusive = query.range_inclusive;
        VAOLIB_ASSIGN_OR_RETURN(
            auto task, operators::MultiRowDecisionTask::Create(
                           objects, "range selection",
                           [range](const Bounds& b) {
                             return b.Contains(range.lo) ||
                                    b.Contains(range.hi);
                           },
                           options_.threads));
        task->SetFeedback(options_.history.get(), &object_ids_);
        auto* raw = task.get();
        tasks[q] = std::move(task);
        decode[q] = [raw, range, inclusive, &objects](TickResult& result) {
          for (std::size_t row = 0; row < objects.size(); ++row) {
            const Bounds b = objects[row]->bounds();
            // RangeSelectionVao's rules: both endpoints cleared decides by
            // interval membership, a straddled endpoint resolves by the
            // endpoint-equality rule (inclusive passes, exclusive fails).
            const bool passes =
                (!b.Contains(range.lo) && !b.Contains(range.hi))
                    ? range.Contains(b.Mid())
                    : inclusive;
            if (passes) result.passing_rows.push_back(row);
            if (raw->RowSettled(row) &&
                !objects[row]->AtStoppingCondition()) {
              ++result.report.rows_short_circuited;
            }
          }
          result.stats = raw->stats();
          result.converged = raw->Converged();
        };
        break;
      }
      case QueryKind::kMax:
      case QueryKind::kMin: {
        operators::MinMaxOptions options;
        options.kind = query.kind == QueryKind::kMax
                           ? operators::ExtremeKind::kMax
                           : operators::ExtremeKind::kMin;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        if (options_.threads > 1) {
          options.threads = options_.threads;
          options.coarse_width = query.epsilon;
          options.coarse_max_steps = kCoarseMaxSteps;
        }
        ApplyPredictiveOptions(&options);
        VAOLIB_ASSIGN_OR_RETURN(
            auto task, operators::MinMaxIterationTask::Create(options,
                                                              objects));
        auto* raw = task.get();
        tasks[q] = std::move(task);
        decode[q] = [raw](TickResult& result) {
          const operators::MinMaxOutcome outcome = raw->Snapshot();
          result.winner_row = outcome.winner_index;
          result.tie = outcome.tie;
          result.aggregate_bounds = outcome.winner_bounds;
          result.stats = outcome.stats;
          result.converged = outcome.converged;
        };
        break;
      }
      case QueryKind::kSum:
      case QueryKind::kAve: {
        if (IsApprox(query)) {
          VAOLIB_ASSIGN_OR_RETURN(auto task,
                                  MakeSampledSumTask(stream_tuple, query));
          auto* raw = task.get();
          tasks[q] = std::move(task);
          decode[q] = [raw](TickResult& result) {
            const sampling::SampledSumOutcome outcome = raw->Snapshot();
            result.aggregate_bounds = outcome.answer;
            result.stats = outcome.stats;
            result.converged = outcome.converged;
            if (outcome.limited_by_min_width) {
              result.degraded = true;
              result.degradation_cause = Status::ResourceExhausted(
                  "sampled SUM/AVE exhausted the sample without reaching "
                  "the error target");
            }
          };
          break;
        }
        std::vector<double> weights;
        if (query.weight_column.has_value()) {
          VAOLIB_ASSIGN_OR_RETURN(
              weights, relation_->NumericColumn(*query.weight_column));
        } else if (query.kind == QueryKind::kAve) {
          weights = operators::AveWeights(n);
        } else {
          weights = operators::SumWeights(n);
        }
        operators::SumAveOptions options;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        if (options_.threads > 1) {
          options.threads = options_.threads;
          options.coarse_width = query.epsilon;
          options.coarse_max_steps = kCoarseMaxSteps;
        }
        ApplyPredictiveOptions(&options);
        VAOLIB_ASSIGN_OR_RETURN(
            auto task, operators::SumAveIterationTask::Create(
                           options, objects, std::move(weights)));
        auto* raw = task.get();
        tasks[q] = std::move(task);
        decode[q] = [raw](TickResult& result) {
          const operators::SumOutcome outcome = raw->Snapshot();
          result.aggregate_bounds = outcome.sum_bounds;
          result.stats = outcome.stats;
          result.converged = outcome.converged;
        };
        break;
      }
      case QueryKind::kTopK: {
        operators::TopKOptions options;
        options.k = query.k;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        if (IsApprox(query)) {
          // Upfront uniform sample; the task then refines only the sampled
          // objects (predictive feedback skipped: its ids are row-indexed).
          const ApproxSpec& spec = *query.approx;
          if (query.k < 1 || query.k > n) {
            return Status::InvalidArgument("top-k k out of range");
          }
          std::size_t want = spec.max_samples != 0
                                 ? spec.max_samples
                                 : std::max(spec.initial_samples, n / 10);
          want = std::min(std::max(want, query.k), n);
          private_rows[q] = sampling::ReservoirSample(n, want, spec.seed);
          std::vector<std::vector<double>> rows;
          rows.reserve(private_rows[q].size());
          for (const std::size_t row : private_rows[q]) {
            VAOLIB_ASSIGN_OR_RETURN(std::vector<double> args,
                                    BuildArgs(stream_tuple, row));
            rows.push_back(std::move(args));
          }
          VAOLIB_ASSIGN_OR_RETURN(
              private_owned[q],
              vao::InvokeAll(*queries_.front().function, rows,
                             options_.threads, &meter_));
          std::vector<vao::ResultObject*> sampled_objects;
          sampled_objects.reserve(private_owned[q].size());
          for (const auto& object : private_owned[q]) {
            sampled_objects.push_back(object.get());
          }
          VAOLIB_ASSIGN_OR_RETURN(auto task,
                                  operators::TopKIterationTask::Create(
                                      options, sampled_objects));
          auto* raw = task.get();
          tasks[q] = std::move(task);
          const std::vector<std::size_t>* sampled = &private_rows[q];
          decode[q] = [raw, sampled, n](TickResult& result) {
            const operators::TopKOutcome outcome = raw->Snapshot();
            result.top_bounds = outcome.winner_bounds;
            result.tie = outcome.tie;
            for (const std::size_t winner : outcome.winners) {
              result.top_rows.push_back((*sampled)[winner]);
            }
            if (!result.top_rows.empty()) {
              result.winner_row = result.top_rows.front();
              // Heuristic tier: no CLT guarantee, so confidence 0 (see
              // protocol.h on conf=0).
              result.aggregate_bounds = vao::Answer::Approximate(
                  outcome.winner_bounds.front(), /*confidence=*/0.0,
                  sampled->size(), n,
                  outcome.winner_bounds.front().Width(), 0.0);
            }
            result.stats = outcome.stats;
            result.converged = outcome.converged;
          };
          break;
        }
        ApplyPredictiveOptions(&options);
        VAOLIB_ASSIGN_OR_RETURN(
            auto task,
            operators::TopKIterationTask::Create(options, objects));
        auto* raw = task.get();
        tasks[q] = std::move(task);
        decode[q] = [raw](TickResult& result) {
          const operators::TopKOutcome outcome = raw->Snapshot();
          result.top_rows = outcome.winners;
          result.top_bounds = outcome.winner_bounds;
          result.tie = outcome.tie;
          if (!outcome.winners.empty()) {
            result.winner_row = outcome.winners.front();
            result.aggregate_bounds = outcome.winner_bounds.front();
          }
          result.stats = outcome.stats;
          result.converged = outcome.converged;
        };
        break;
      }
    }
  }

  std::vector<WorkScheduler::Entry> entries(queries_.size());
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    entries[q].task = tasks[q].get();
    if (!options_.schedules.empty()) {
      entries[q].schedule = options_.schedules[q];
    }
    if (!options_.owners.empty()) {
      tasks[q]->set_owner(options_.owners[q]);
    }
  }
  WorkScheduler scheduler(options_.scheduler);
  VAOLIB_ASSIGN_OR_RETURN(const std::vector<TaskScheduleStats> sched_stats,
                          scheduler.Run(entries, &meter_));

  const char* policy_name = SchedulerPolicyName(options_.scheduler.policy);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    const Query& query = queries_[q];
    TickResult& result = results[q];
    result.kind = query.kind;
    decode[q](result);

    // Exact attribution: the work units the scheduler granted this query
    // (object creation is accounted in the tick-wide report below).
    result.work_units = sched_stats[q].spent;
    result.report.query_kind = QueryKindName(query.kind);
    result.report.work = sched_stats[q].work;
    result.report.rows_scanned = n;
    if (!is_selection[q]) {
      result.report.rows_short_circuited = n - result.stats.objects_touched;
    }
    if (IsApprox(query)) {
      const vao::Answer& answer = result.aggregate_bounds;
      result.report.rows_scanned = answer.sample_size;
      result.report.rows_short_circuited = 0;
      FillAnswerSection(answer, &result.report);
    }
    result.report.iterations = result.stats.iterations;
    result.report.coarse_iterations = result.stats.coarse_iterations;
    result.report.greedy_iterations = result.stats.greedy_iterations;
    result.report.finalize_iterations = result.stats.finalize_iterations;
    result.report.choose_steps = result.stats.choose_steps;
    result.report.objects_touched = result.stats.objects_touched;
    result.report.stalled_objects = result.stats.stalled_objects;

    result.report.scheduled = true;
    result.report.scheduler_policy = policy_name;
    result.report.scheduler_budget = options_.scheduler.budget;
    result.report.scheduler_spent = sched_stats[q].spent;
    result.report.scheduler_steps = sched_stats[q].steps;
    result.report.scheduler_finished_at = sched_stats[q].finished_at;
    result.report.converged = result.converged;
    result.report.starved = sched_stats[q].starved;
    result.report.missed_deadline = sched_stats[q].missed_deadline;
    FillProgressSection(result, query.epsilon, &result.report);
    if (!options_.owners.empty()) {
      result.report.tenant = options_.owners[q];
      obs::MetricsRegistry::Global()
          .GetCounter("vaolib_owner_work_units_total",
                      {{"owner", options_.owners[q]}})
          ->Add(sched_stats[q].spent);
    }
  }

  last_tick_report_ = obs::ExecutionReport();
  last_tick_report_.query_kind = "multi";
  last_tick_report_.rows_scanned = n;
  last_tick_report_.scheduled = true;
  last_tick_report_.scheduler_policy = policy_name;
  last_tick_report_.scheduler_budget = options_.scheduler.budget;
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    const TickResult& result = results[q];
    last_tick_report_.iterations += result.report.iterations;
    last_tick_report_.coarse_iterations += result.report.coarse_iterations;
    last_tick_report_.greedy_iterations += result.report.greedy_iterations;
    last_tick_report_.finalize_iterations +=
        result.report.finalize_iterations;
    last_tick_report_.choose_steps += result.report.choose_steps;
    last_tick_report_.objects_touched += result.report.objects_touched;
    last_tick_report_.rows_short_circuited =
        std::max(last_tick_report_.rows_short_circuited,
                 result.report.rows_short_circuited);
    last_tick_report_.scheduler_spent += sched_stats[q].spent;
    last_tick_report_.scheduler_steps += sched_stats[q].steps;
    last_tick_report_.converged =
        last_tick_report_.converged && result.converged;
    last_tick_report_.starved =
        last_tick_report_.starved || sched_stats[q].starved;
    last_tick_report_.missed_deadline =
        last_tick_report_.missed_deadline || sched_stats[q].missed_deadline;
  }
  tick_capture.Finish(meter_, &last_tick_report_);
  obs::RecordTickMetrics(last_tick_report_);
  return results;
}

}  // namespace vaolib::engine
