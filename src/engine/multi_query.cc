#include "engine/multi_query.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "engine/report_capture.h"
#include "operators/min_max.h"
#include "operators/selection.h"
#include "operators/sum_ave.h"
#include "operators/top_k.h"
#include "vao/parallel.h"

namespace vaolib::engine {

namespace {

bool SameBinding(const ArgRef& a, const ArgRef& b) {
  return a.source == b.source && a.field == b.field &&
         a.constant == b.constant;
}

// Per-object Iterate() budget for the parallel coarse pre-phase; see the
// identical constant in executor.cc for the rationale.
constexpr std::uint64_t kCoarseMaxSteps = 4;

}  // namespace

MultiQueryExecutor::MultiQueryExecutor(const Relation* relation,
                                       Schema stream_schema,
                                       std::vector<Query> queries, int threads)
    : relation_(relation),
      stream_schema_(std::move(stream_schema)),
      queries_(std::move(queries)),
      threads_(std::max(threads, 1)) {}

Result<std::unique_ptr<MultiQueryExecutor>> MultiQueryExecutor::Create(
    const Relation* relation, Schema stream_schema,
    std::vector<Query> queries, int threads) {
  if (relation == nullptr) {
    return Status::InvalidArgument("multi-query executor needs a relation");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("multi-query executor with no queries");
  }
  const Query& first = queries.front();
  if (first.function == nullptr) {
    return Status::InvalidArgument("query has no function bound");
  }
  for (const Query& query : queries) {
    if (query.function != first.function) {
      return Status::InvalidArgument(
          "shared execution requires all queries to use the same function");
    }
    if (query.args.size() != first.args.size()) {
      return Status::InvalidArgument(
          "shared execution requires identical argument bindings");
    }
    for (std::size_t i = 0; i < query.args.size(); ++i) {
      if (!SameBinding(query.args[i], first.args[i])) {
        return Status::InvalidArgument(
            "shared execution requires identical argument bindings");
      }
    }
    if (query.weight_column.has_value() &&
        !relation->schema().IndexOf(*query.weight_column).ok()) {
      return Status::NotFound("weight column '" + *query.weight_column +
                              "' not in relation");
    }
  }
  if (static_cast<int>(first.args.size()) != first.function->arity()) {
    return Status::InvalidArgument("argument binding arity mismatch");
  }

  auto executor = std::unique_ptr<MultiQueryExecutor>(new MultiQueryExecutor(
      relation, std::move(stream_schema), std::move(queries), threads));
  for (const ArgRef& ref : executor->queries_.front().args) {
    BoundArg bound;
    bound.source = ref.source;
    bound.constant = ref.constant;
    switch (ref.source) {
      case ArgRef::Source::kStreamField: {
        VAOLIB_ASSIGN_OR_RETURN(bound.index,
                                executor->stream_schema_.IndexOf(ref.field));
        break;
      }
      case ArgRef::Source::kRelationField: {
        VAOLIB_ASSIGN_OR_RETURN(
            bound.index, executor->relation_->schema().IndexOf(ref.field));
        break;
      }
      case ArgRef::Source::kConstant:
        break;
    }
    executor->bound_args_.push_back(bound);
  }
  return executor;
}

Result<std::vector<double>> MultiQueryExecutor::BuildArgs(
    const Tuple& stream_tuple, std::size_t row) const {
  std::vector<double> args;
  args.reserve(bound_args_.size());
  for (const BoundArg& bound : bound_args_) {
    switch (bound.source) {
      case ArgRef::Source::kStreamField: {
        if (bound.index >= stream_tuple.size()) {
          return Status::OutOfRange("stream tuple too short for binding");
        }
        VAOLIB_ASSIGN_OR_RETURN(const double v,
                                stream_tuple[bound.index].AsDouble());
        args.push_back(v);
        break;
      }
      case ArgRef::Source::kRelationField: {
        VAOLIB_ASSIGN_OR_RETURN(const Value cell,
                                relation_->At(row, bound.index));
        VAOLIB_ASSIGN_OR_RETURN(const double v, cell.AsDouble());
        args.push_back(v);
        break;
      }
      case ArgRef::Source::kConstant:
        args.push_back(bound.constant);
        break;
    }
  }
  return args;
}

Result<std::vector<TickResult>> MultiQueryExecutor::ProcessTick(
    const Tuple& stream_tuple) {
  if (stream_tuple.size() != stream_schema_.size()) {
    return Status::InvalidArgument("stream tuple does not match schema");
  }
  const std::size_t n = relation_->size();
  if (n == 0) {
    return Status::FailedPrecondition("relation is empty");
  }

  const auto* function = queries_.front().function;
  const ReportCapture tick_capture(meter_, ReportCapture::CacheOf(function));

  // One shared result object per relation row, created in bulk (row-parallel
  // on the shared pool when threads_ > 1; work totals are identical either
  // way because every object charges meter_ directly).
  const std::uint64_t creation_before = meter_.Total();
  const obs::WorkByKind creation_work_before = obs::WorkByKind::Capture(meter_);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t row = 0; row < n; ++row) {
    VAOLIB_ASSIGN_OR_RETURN(std::vector<double> args,
                            BuildArgs(stream_tuple, row));
    rows.push_back(std::move(args));
  }
  VAOLIB_ASSIGN_OR_RETURN(std::vector<vao::ResultObjectPtr> owned,
                          vao::InvokeAll(*function, rows, threads_, &meter_));
  std::vector<vao::ResultObject*> objects;
  objects.reserve(n);
  for (const auto& object : owned) objects.push_back(object.get());
  const std::uint64_t creation_cost = meter_.Total() - creation_before;
  const obs::WorkByKind creation_work =
      obs::WorkByKind::Capture(meter_).DeltaSince(creation_work_before);

  std::vector<TickResult> results(queries_.size());
  for (auto& result : results) result.kind = QueryKind::kSelect;

  // Phase 1: batch all point-selection predicates per object.
  std::vector<std::size_t> select_query_indices;
  std::vector<operators::MultiSelectionVao::Predicate> predicates;
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    if (queries_[q].kind == QueryKind::kSelect) {
      select_query_indices.push_back(q);
      predicates.push_back({queries_[q].cmp, queries_[q].constant});
    }
  }
  if (!predicates.empty()) {
    const std::uint64_t before = meter_.Total();
    const obs::WorkByKind work_before = obs::WorkByKind::Capture(meter_);
    const operators::MultiSelectionVao shared(predicates);
    VAOLIB_ASSIGN_OR_RETURN(const auto outcomes,
                            shared.EvaluateBatch(objects, threads_));
    operators::OperatorStats batch_stats;
    std::uint64_t short_circuited = 0;
    for (std::size_t row = 0; row < n; ++row) {
      const auto& outcome = outcomes[row];
      batch_stats.Merge(outcome.stats);
      if (outcome.short_circuited) ++short_circuited;
      for (std::size_t p = 0; p < select_query_indices.size(); ++p) {
        if (outcome.passes[p]) {
          results[select_query_indices[p]].passing_rows.push_back(row);
        }
      }
    }
    const obs::WorkByKind batch_work =
        obs::WorkByKind::Capture(meter_).DeltaSince(work_before);
    for (const std::size_t q : select_query_indices) {
      results[q].kind = QueryKind::kSelect;
      results[q].stats = batch_stats;
      // The selection batch (plus object creation) is attributed to the
      // selection group as a whole.
      results[q].work_units = meter_.Total() - before + creation_cost;
      results[q].report.query_kind = QueryKindName(QueryKind::kSelect);
      results[q].report.work = batch_work;
      results[q].report.work.exec += creation_work.exec;
      results[q].report.work.get_state += creation_work.get_state;
      results[q].report.work.store_state += creation_work.store_state;
      results[q].report.work.choose_iter += creation_work.choose_iter;
      results[q].report.rows_scanned = n;
      results[q].report.rows_short_circuited = short_circuited;
    }
  }

  // Phase 2: remaining query kinds over the (already tightened) objects.
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    const Query& query = queries_[q];
    TickResult& result = results[q];
    result.kind = query.kind;
    const std::uint64_t before = meter_.Total();
    const obs::WorkByKind work_before = obs::WorkByKind::Capture(meter_);
    std::uint64_t short_circuited = 0;
    switch (query.kind) {
      case QueryKind::kSelect:
        break;  // handled in phase 1
      case QueryKind::kSelectRange: {
        const operators::RangeSelectionVao vao(
            query.range_lo, query.range_hi, query.range_inclusive);
        for (std::size_t row = 0; row < n; ++row) {
          VAOLIB_ASSIGN_OR_RETURN(const auto outcome,
                                  vao.Evaluate(objects[row]));
          if (outcome.passes) result.passing_rows.push_back(row);
          if (outcome.short_circuited) ++short_circuited;
          result.stats.Merge(outcome.stats);
        }
        break;
      }
      case QueryKind::kMax:
      case QueryKind::kMin: {
        operators::MinMaxOptions options;
        options.kind = query.kind == QueryKind::kMax
                           ? operators::ExtremeKind::kMax
                           : operators::ExtremeKind::kMin;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        if (threads_ > 1) {
          options.threads = threads_;
          options.coarse_width = query.epsilon;
          options.coarse_max_steps = kCoarseMaxSteps;
        }
        const operators::MinMaxVao vao(options);
        VAOLIB_ASSIGN_OR_RETURN(const auto outcome, vao.Evaluate(objects));
        result.winner_row = outcome.winner_index;
        result.tie = outcome.tie;
        result.aggregate_bounds = outcome.winner_bounds;
        result.stats = outcome.stats;
        break;
      }
      case QueryKind::kSum:
      case QueryKind::kAve: {
        std::vector<double> weights;
        if (query.weight_column.has_value()) {
          VAOLIB_ASSIGN_OR_RETURN(
              weights, relation_->NumericColumn(*query.weight_column));
        } else if (query.kind == QueryKind::kAve) {
          weights = operators::AveWeights(n);
        } else {
          weights = operators::SumWeights(n);
        }
        operators::SumAveOptions options;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        if (threads_ > 1) {
          options.threads = threads_;
          options.coarse_width = query.epsilon;
          options.coarse_max_steps = kCoarseMaxSteps;
        }
        const operators::SumAveVao vao(options);
        VAOLIB_ASSIGN_OR_RETURN(const auto outcome,
                                vao.Evaluate(objects, weights));
        result.aggregate_bounds = outcome.sum_bounds;
        result.stats = outcome.stats;
        break;
      }
      case QueryKind::kTopK: {
        operators::TopKOptions options;
        options.k = query.k;
        options.epsilon = query.epsilon;
        options.meter = &meter_;
        const operators::TopKVao vao(options);
        VAOLIB_ASSIGN_OR_RETURN(const auto outcome, vao.Evaluate(objects));
        result.top_rows = outcome.winners;
        result.top_bounds = outcome.winner_bounds;
        result.tie = outcome.tie;
        if (!outcome.winners.empty()) {
          result.winner_row = outcome.winners.front();
          result.aggregate_bounds = outcome.winner_bounds.front();
        }
        result.stats = outcome.stats;
        break;
      }
    }
    if (query.kind != QueryKind::kSelect) {
      result.work_units = meter_.Total() - before;
      result.report.query_kind = QueryKindName(query.kind);
      result.report.work =
          obs::WorkByKind::Capture(meter_).DeltaSince(work_before);
      result.report.rows_scanned = n;
      result.report.rows_short_circuited =
          query.kind == QueryKind::kSelectRange
              ? short_circuited
              // Shared objects the operator never had to iterate further.
              : n - result.stats.objects_touched;
    }
    result.report.iterations = result.stats.iterations;
    result.report.coarse_iterations = result.stats.coarse_iterations;
    result.report.greedy_iterations = result.stats.greedy_iterations;
    result.report.finalize_iterations = result.stats.finalize_iterations;
    result.report.choose_steps = result.stats.choose_steps;
    result.report.objects_touched = result.stats.objects_touched;
  }

  // Tick-wide account: whole-tick work (creation included), cache and pool
  // deltas, operator section summed over every query's phase.
  last_tick_report_ = obs::ExecutionReport();
  last_tick_report_.query_kind = "multi";
  last_tick_report_.rows_scanned = n;
  for (const TickResult& result : results) {
    last_tick_report_.iterations += result.report.iterations;
    last_tick_report_.coarse_iterations += result.report.coarse_iterations;
    last_tick_report_.greedy_iterations += result.report.greedy_iterations;
    last_tick_report_.finalize_iterations +=
        result.report.finalize_iterations;
    last_tick_report_.choose_steps += result.report.choose_steps;
    last_tick_report_.objects_touched += result.report.objects_touched;
    last_tick_report_.rows_short_circuited =
        std::max(last_tick_report_.rows_short_circuited,
                 result.report.rows_short_circuited);
  }
  tick_capture.Finish(meter_, &last_tick_report_);
  obs::RecordTickMetrics(last_tick_report_);
  return results;
}

}  // namespace vaolib::engine
