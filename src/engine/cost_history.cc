#include "engine/cost_history.h"

#include <algorithm>
#include <cmath>

namespace vaolib::engine {

namespace {

// Ratios outside this band are almost certainly measurement artifacts
// (first-iteration setup costs, a width that collapsed to the floor); the
// clamp keeps one wild sample from swinging the EWMA into uselessness.
constexpr double kMinRatio = 1.0 / 64.0;
constexpr double kMaxRatio = 64.0;

// Denominators below this give no ratio signal (an estimate of ~0 work or
// ~0 shrink carries no scale to correct).
constexpr double kMinDenominator = 1e-12;

bool RatioOf(double actual, double est, double* ratio) {
  if (actual < 0.0 || est < kMinDenominator) return false;
  const double r = actual / est;
  if (!std::isfinite(r)) return false;
  *ratio = std::clamp(r, kMinRatio, kMaxRatio);
  return true;
}

}  // namespace

CostHistory::CostHistory() : CostHistory(Options()) {}

CostHistory::CostHistory(Options options) : options_(options) {}

void CostHistory::Record(std::uint64_t id, int kind,
                         const operators::CostObservation& observation) {
  double cost_ratio = 1.0;
  double shrink_ratio = 1.0;
  const bool has_cost =
      RatioOf(observation.actual_cost, observation.est_cost, &cost_ratio);
  const bool has_shrink =
      RatioOf(observation.actual_shrink, observation.est_shrink,
              &shrink_ratio);
  if (!has_cost && !has_shrink) return;

  const Key key{id, kind};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (lru_.size() >= options_.max_entries && !lru_.empty()) {
      index_.erase(lru_.front().key);
      lru_.pop_front();
    }
    lru_.push_back(Node{key, Entry{}});
    it = index_.emplace(key, std::prev(lru_.end())).first;
  } else {
    // Touch: recording moves the entry to the most-recently-recorded end.
    lru_.splice(lru_.end(), lru_, it->second);
    it->second = std::prev(lru_.end());
  }
  Entry& entry = it->second->entry;
  if (has_cost) {
    entry.cost_ratio = entry.has_cost
                           ? options_.alpha * cost_ratio +
                                 (1.0 - options_.alpha) * entry.cost_ratio
                           : cost_ratio;
    entry.has_cost = true;
  }
  if (has_shrink) {
    entry.shrink_ratio =
        entry.has_shrink ? options_.alpha * shrink_ratio +
                               (1.0 - options_.alpha) * entry.shrink_ratio
                         : shrink_ratio;
    entry.has_shrink = true;
  }
  entry.weight += 1.0;
}

bool CostHistory::Predict(std::uint64_t id, int kind, double* cost_ratio,
                          double* shrink_ratio) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(Key{id, kind});
  if (it == index_.end()) return false;
  const Entry& entry = it->second->entry;
  if (entry.weight < options_.min_predict_weight) return false;
  if (cost_ratio != nullptr) {
    *cost_ratio = entry.has_cost ? entry.cost_ratio : 1.0;
  }
  if (shrink_ratio != nullptr) {
    *shrink_ratio = entry.has_shrink ? entry.shrink_ratio : 1.0;
  }
  return true;
}

void CostHistory::BeginTick() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    it->entry.weight *= options_.decay;
    if (it->entry.weight < options_.min_weight) {
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t CostHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

bool CostHistory::Lookup(std::uint64_t id, int kind, Entry* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(Key{id, kind});
  if (it == index_.end()) return false;
  if (out != nullptr) *out = it->second->entry;
  return true;
}

std::vector<std::pair<std::pair<std::uint64_t, int>, CostHistory::Entry>>
CostHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<Key, Entry>> out;
  out.reserve(lru_.size());
  for (const Node& node : lru_) out.emplace_back(node.key, node.entry);
  return out;
}

}  // namespace vaolib::engine
