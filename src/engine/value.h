// Copyright 2026 The vaolib Authors.
// Value/Tuple: the row representation of the mini continuous-query engine.

#ifndef VAOLIB_ENGINE_VALUE_H_
#define VAOLIB_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace vaolib::engine {

/// \brief A typed scalar cell: integer, real, or text.
class Value {
 public:
  Value() : repr_(0.0) {}
  Value(std::int64_t v) : repr_(v) {}  // NOLINT: implicit by design
  Value(double v) : repr_(v) {}        // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT

  bool is_int() const { return std::holds_alternative<std::int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  /// Numeric view: ints widen to double; strings are an error.
  Result<double> AsDouble() const {
    if (is_double()) return std::get<double>(repr_);
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(repr_));
    return Status::InvalidArgument("string value used as number");
  }

  /// Exact accessors; calling the wrong one is an error Status.
  Result<std::int64_t> AsInt() const {
    if (is_int()) return std::get<std::int64_t>(repr_);
    return Status::InvalidArgument("value is not an integer");
  }
  Result<std::string> AsString() const {
    if (is_string()) return std::get<std::string>(repr_);
    return Status::InvalidArgument("value is not a string");
  }

  /// Diagnostic rendering.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  std::variant<std::int64_t, double, std::string> repr_;
};

/// \brief One row of cells.
using Tuple = std::vector<Value>;

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_VALUE_H_
