// Copyright 2026 The vaolib Authors.
// Relation: an in-memory table (the BD bond relation of the running
// example) with schema-checked appends.

#ifndef VAOLIB_ENGINE_RELATION_H_
#define VAOLIB_ENGINE_RELATION_H_

#include <vector>

#include "engine/schema.h"
#include "engine/value.h"

namespace vaolib::engine {

/// \brief A schema'd collection of tuples.
class Relation {
 public:
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

  /// Appends \p row after checking arity and cell types against the schema.
  Status Append(Tuple row);

  /// Cell accessor with bounds checking.
  Result<Value> At(std::size_t row, std::size_t col) const {
    if (row >= rows_.size() || col >= schema_.size()) {
      return Status::OutOfRange("relation cell access out of range");
    }
    return rows_[row][col];
  }

  /// Numeric column extraction (ints widen); fails on strings.
  Result<std::vector<double>> NumericColumn(const std::string& name) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_RELATION_H_
