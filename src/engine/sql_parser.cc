#include "engine/sql_parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace vaolib::engine {

Status FunctionRegistry::Register(
    const vao::VariableAccuracyFunction* function) {
  if (function == nullptr) {
    return Status::InvalidArgument("cannot register a null function");
  }
  const auto [it, inserted] = functions_.emplace(function->name(), function);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("function '" + function->name() +
                                 "' already registered");
  }
  return Status::OK();
}

Result<const vao::VariableAccuracyFunction*> FunctionRegistry::Lookup(
    const std::string& name) const {
  const auto it = functions_.find(name);
  if (it == functions_.end()) {
    return Status::NotFound("no function named '" + name + "'");
  }
  return it->second;
}

namespace {

// ---------------------------------------------------------------------------
// Tokenizer

enum class TokenKind {
  kIdent,    // model, bd, rate (also keywords; classified by spelling)
  kNumber,   // 100, 0.01, -3.5
  kStar,     // *
  kLParen,   // (
  kRParen,   // )
  kComma,    // ,
  kCompare,  // > >= < <=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t position = 0;  // byte offset, for error messages
};

Status SyntaxError(const std::string& message, std::size_t position) {
  return Status::InvalidArgument(message + " (at offset " +
                                 std::to_string(position) + ")");
}

// Renders the offending token for "expected X, got Y" messages.
std::string TokenDesc(const Token& token) {
  switch (token.kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    default:
      return "'" + token.text + "'";
  }
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (c == '*') {
      token.kind = TokenKind::kStar;
      token.text = "*";
      ++i;
    } else if (c == '(') {
      token.kind = TokenKind::kLParen;
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      ++i;
    } else if (c == ',') {
      token.kind = TokenKind::kComma;
      ++i;
    } else if (c == '>' || c == '<') {
      token.kind = TokenKind::kCompare;
      token.text = c;
      ++i;
      if (i < n && sql[i] == '=') {
        token.text += '=';
        ++i;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
               (c == '-' && i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(sql[i + 1])) ||
                 sql[i + 1] == '.'))) {
      std::size_t j = i + 1;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        ++j;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(sql.substr(i, j - i));
      char* end = nullptr;
      token.number = std::strtod(token.text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return SyntaxError("malformed number '" + token.text + "'", i);
      }
      i = j;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      token.kind = TokenKind::kIdent;
      token.text = std::string(sql.substr(i, j - i));
      i = j;
    } else {
      return SyntaxError(std::string("unexpected character '") + c + "'", i);
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.kind = TokenKind::kEnd;
  end_token.position = n;
  tokens.push_back(end_token);
  return tokens;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

// ---------------------------------------------------------------------------
// Parser

class Parser {
 public:
  Parser(std::vector<Token> tokens, const FunctionRegistry& registry,
         const Schema& stream_schema, const Schema& relation_schema)
      : tokens_(std::move(tokens)),
        registry_(registry),
        stream_schema_(stream_schema),
        relation_schema_(relation_schema) {}

  Result<Query> Parse();

 private:
  const Token& Peek() const { return tokens_[cursor_]; }
  Token Take() { return tokens_[cursor_++]; }

  bool PeekKeyword(const char* keyword) const {
    return Peek().kind == TokenKind::kIdent &&
           ToUpper(Peek().text) == keyword;
  }
  Status ExpectKeyword(const char* keyword) {
    if (!PeekKeyword(keyword)) {
      return SyntaxError(std::string("expected ") + keyword + ", got " +
                             TokenDesc(Peek()),
                         Peek().position);
    }
    Take();
    return Status::OK();
  }
  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return SyntaxError(std::string("expected ") + what + ", got " +
                             TokenDesc(Peek()),
                         Peek().position);
    }
    Take();
    return Status::OK();
  }

  Result<double> TakeNumber(const char* what) {
    if (Peek().kind != TokenKind::kNumber) {
      return SyntaxError(std::string("expected ") + what + ", got " +
                             TokenDesc(Peek()),
                         Peek().position);
    }
    return Take().number;
  }

  /// Parses `ident '(' arg {',' arg} ')'`, resolving the function name and
  /// each argument, writing into the query.
  Status ParseCall(Query* query);

  /// Resolves a bare identifier as a stream field first, then a relation
  /// field.
  Result<ArgRef> ResolveIdent(const Token& token) const;

  /// Parses trailing `PRECISION <number>` if present.
  Status MaybeParsePrecision(Query* query);

  /// Parses trailing `APPROX [WITH CONFIDENCE <c>] [ERROR <r>] [SEED <n>]`
  /// if present (SUM/AVE/TOP-K only).
  Status MaybeParseApprox(Query* query);

  std::vector<Token> tokens_;
  std::size_t cursor_ = 0;
  const FunctionRegistry& registry_;
  const Schema& stream_schema_;
  const Schema& relation_schema_;
};

Result<ArgRef> Parser::ResolveIdent(const Token& token) const {
  if (stream_schema_.IndexOf(token.text).ok()) {
    return ArgRef::StreamField(token.text);
  }
  if (relation_schema_.IndexOf(token.text).ok()) {
    return ArgRef::RelationField(token.text);
  }
  return SyntaxError("unknown column '" + token.text + "'", token.position);
}

Status Parser::ParseCall(Query* query) {
  if (Peek().kind != TokenKind::kIdent) {
    return SyntaxError("expected function name", Peek().position);
  }
  const Token name = Take();
  // Resolve by hand instead of bubbling the registry's bare NotFound: the
  // wire error must point at the token inside the query text.
  const auto function = registry_.Lookup(name.text);
  if (!function.ok()) {
    return SyntaxError("unknown function '" + name.text + "'",
                       name.position);
  }
  query->function = *function;
  VAOLIB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
  if (Peek().kind != TokenKind::kRParen) {
    while (true) {
      if (Peek().kind == TokenKind::kIdent) {
        VAOLIB_ASSIGN_OR_RETURN(const ArgRef ref, ResolveIdent(Take()));
        query->args.push_back(ref);
      } else if (Peek().kind == TokenKind::kNumber) {
        query->args.push_back(ArgRef::Constant(Take().number));
      } else {
        return SyntaxError("expected argument, got " + TokenDesc(Peek()),
                           Peek().position);
      }
      if (Peek().kind == TokenKind::kComma) {
        Take();
        continue;
      }
      break;
    }
  }
  VAOLIB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  if (static_cast<int>(query->args.size()) != query->function->arity()) {
    return SyntaxError("function '" + name.text + "' expects " +
                           std::to_string(query->function->arity()) +
                           " arguments, got " +
                           std::to_string(query->args.size()),
                       name.position);
  }
  return Status::OK();
}

Status Parser::MaybeParsePrecision(Query* query) {
  if (PeekKeyword("PRECISION")) {
    Take();
    const Token value = Peek();  // the number itself, not what follows it
    VAOLIB_ASSIGN_OR_RETURN(query->epsilon, TakeNumber("precision value"));
    if (!(query->epsilon > 0.0)) {
      return SyntaxError("precision must be > 0, got '" + value.text + "'",
                         value.position);
    }
  }
  return Status::OK();
}

Status Parser::MaybeParseApprox(Query* query) {
  if (!PeekKeyword("APPROX")) return Status::OK();
  const Token approx = Take();
  if (query->kind != QueryKind::kSum && query->kind != QueryKind::kAve &&
      query->kind != QueryKind::kTopK) {
    return SyntaxError("APPROX applies to SUM/AVE/TOP-K queries only",
                       approx.position);
  }
  ApproxSpec spec;
  if (PeekKeyword("WITH")) {
    Take();
    VAOLIB_RETURN_IF_ERROR(ExpectKeyword("CONFIDENCE"));
    const Token value = Peek();  // the number itself, not what follows it
    VAOLIB_ASSIGN_OR_RETURN(spec.confidence, TakeNumber("confidence value"));
    if (!(spec.confidence > 0.0) || !(spec.confidence < 1.0)) {
      return SyntaxError("confidence must be in (0, 1), got '" + value.text +
                             "'",
                         value.position);
    }
  }
  if (PeekKeyword("ERROR")) {
    Take();
    const Token value = Peek();
    VAOLIB_ASSIGN_OR_RETURN(spec.target_rel_error,
                            TakeNumber("relative error target"));
    if (!(spec.target_rel_error > 0.0)) {
      return SyntaxError("relative error target must be > 0, got '" +
                             value.text + "'",
                         value.position);
    }
  }
  if (PeekKeyword("SEED")) {
    Take();
    const Token value = Peek();
    if (value.kind != TokenKind::kNumber) {
      return SyntaxError("expected seed value, got " + TokenDesc(value),
                         value.position);
    }
    Take();
    // Parse the literal's own text as an integer: going through the token's
    // double would be undefined behaviour to cast for values >= 2^64 and
    // silently lossy above 2^53. Digit-only spelling also rejects signs,
    // fractions, and exponent forms in one check.
    if (value.text.find_first_not_of("0123456789") != std::string::npos) {
      return SyntaxError("seed must be a non-negative integer, got '" +
                             value.text + "'",
                         value.position);
    }
    errno = 0;
    const unsigned long long seed =
        std::strtoull(value.text.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      return SyntaxError("seed must fit in an unsigned 64-bit integer, got '" +
                             value.text + "'",
                         value.position);
    }
    spec.seed = static_cast<std::uint64_t>(seed);
  }
  query->approx = spec;
  return Status::OK();
}

Result<Query> Parser::Parse() {
  Query query;
  VAOLIB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

  if (Peek().kind == TokenKind::kStar) {
    // SELECT * FROM <rel> WHERE call cmp c | call BETWEEN a AND b
    Take();
    VAOLIB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    VAOLIB_RETURN_IF_ERROR(Expect(TokenKind::kIdent, "relation name"));
    VAOLIB_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    VAOLIB_RETURN_IF_ERROR(ParseCall(&query));
    if (PeekKeyword("BETWEEN")) {
      Take();
      query.kind = QueryKind::kSelectRange;
      const Token lo = Peek();
      VAOLIB_ASSIGN_OR_RETURN(query.range_lo, TakeNumber("range low"));
      VAOLIB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      const Token hi = Peek();
      VAOLIB_ASSIGN_OR_RETURN(query.range_hi, TakeNumber("range high"));
      if (query.range_hi < query.range_lo) {
        return SyntaxError("BETWEEN bounds out of order ('" + lo.text +
                               "' > '" + hi.text + "')",
                           hi.position);
      }
    } else if (Peek().kind == TokenKind::kCompare) {
      query.kind = QueryKind::kSelect;
      const Token cmp = Take();
      if (cmp.text == ">") {
        query.cmp = operators::Comparator::kGreaterThan;
      } else if (cmp.text == ">=") {
        query.cmp = operators::Comparator::kGreaterEqual;
      } else if (cmp.text == "<") {
        query.cmp = operators::Comparator::kLessThan;
      } else {
        query.cmp = operators::Comparator::kLessEqual;
      }
      VAOLIB_ASSIGN_OR_RETURN(query.constant,
                              TakeNumber("comparison constant"));
    } else {
      return SyntaxError(
          "expected comparison or BETWEEN, got " + TokenDesc(Peek()),
          Peek().position);
    }
  } else if (PeekKeyword("TOP")) {
    // SELECT TOP k call FROM <rel> [PRECISION e]
    Take();
    const Token count = Peek();  // the number itself, not what follows it
    VAOLIB_ASSIGN_OR_RETURN(const double k, TakeNumber("TOP count"));
    if (k < 1.0 || k != static_cast<double>(static_cast<std::size_t>(k))) {
      return SyntaxError("TOP count must be a positive integer, got '" +
                             count.text + "'",
                         count.position);
    }
    query.kind = QueryKind::kTopK;
    query.k = static_cast<std::size_t>(k);
    VAOLIB_RETURN_IF_ERROR(ParseCall(&query));
    VAOLIB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    VAOLIB_RETURN_IF_ERROR(Expect(TokenKind::kIdent, "relation name"));
  } else if (Peek().kind == TokenKind::kIdent) {
    // SELECT MAX|MIN|SUM|AVE '(' call [',' weight_col] ')' FROM <rel> ...
    const std::string aggregate = ToUpper(Peek().text);
    if (aggregate == "MAX") {
      query.kind = QueryKind::kMax;
    } else if (aggregate == "MIN") {
      query.kind = QueryKind::kMin;
    } else if (aggregate == "SUM") {
      query.kind = QueryKind::kSum;
    } else if (aggregate == "AVE" || aggregate == "AVG") {
      query.kind = QueryKind::kAve;
    } else {
      return SyntaxError("expected *, TOP, MAX, MIN, SUM, or AVE, got '" +
                             Peek().text + "'",
                         Peek().position);
    }
    Take();
    VAOLIB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    VAOLIB_RETURN_IF_ERROR(ParseCall(&query));
    if (Peek().kind == TokenKind::kComma) {
      if (query.kind != QueryKind::kSum) {
        return SyntaxError("only SUM takes a weight column",
                           Peek().position);
      }
      Take();
      if (Peek().kind != TokenKind::kIdent) {
        return SyntaxError(
            "expected weight column name, got " + TokenDesc(Peek()),
            Peek().position);
      }
      const Token weight = Take();
      if (!relation_schema_.IndexOf(weight.text).ok()) {
        return SyntaxError("unknown weight column '" + weight.text + "'",
                           weight.position);
      }
      query.weight_column = weight.text;
    }
    VAOLIB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    VAOLIB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    VAOLIB_RETURN_IF_ERROR(Expect(TokenKind::kIdent, "relation name"));
  } else {
    return SyntaxError(
        "expected *, TOP, or an aggregate, got " + TokenDesc(Peek()),
        Peek().position);
  }

  VAOLIB_RETURN_IF_ERROR(MaybeParsePrecision(&query));
  VAOLIB_RETURN_IF_ERROR(MaybeParseApprox(&query));
  if (Peek().kind != TokenKind::kEnd) {
    return SyntaxError("unexpected trailing input: '" + Peek().text + "'",
                       Peek().position);
  }
  return query;
}

}  // namespace

Result<Query> ParseQuery(std::string_view sql,
                         const FunctionRegistry& registry,
                         const Schema& stream_schema,
                         const Schema& relation_schema) {
  VAOLIB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), registry, stream_schema, relation_schema);
  return parser.Parse();
}

namespace {

// Shortest decimal that re-parses (via strtod in the tokenizer) to exactly
// the same double; max_digits10 always does, fewer digits are tried first.
std::string FormatNumber(double value) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << value;
    if (std::strtod(os.str().c_str(), nullptr) == value) return os.str();
  }
  return std::to_string(value);
}

void FormatCall(const Query& query, std::ostream& os) {
  os << (query.function != nullptr ? query.function->name() : "null") << "(";
  for (std::size_t i = 0; i < query.args.size(); ++i) {
    if (i > 0) os << ", ";
    const ArgRef& arg = query.args[i];
    if (arg.source == ArgRef::Source::kConstant) {
      os << FormatNumber(arg.constant);
    } else {
      os << arg.field;
    }
  }
  os << ")";
}

}  // namespace

std::string FormatQuery(const Query& query, std::string_view relation) {
  std::ostringstream os;
  os << "SELECT ";
  switch (query.kind) {
    case QueryKind::kSelect:
      os << "* FROM " << relation << " WHERE ";
      FormatCall(query, os);
      os << " " << operators::ComparatorToString(query.cmp) << " "
         << FormatNumber(query.constant) << " PRECISION "
         << FormatNumber(query.epsilon);
      return os.str();
    case QueryKind::kSelectRange:
      os << "* FROM " << relation << " WHERE ";
      FormatCall(query, os);
      os << " BETWEEN " << FormatNumber(query.range_lo) << " AND "
         << FormatNumber(query.range_hi) << " PRECISION "
         << FormatNumber(query.epsilon);
      return os.str();
    case QueryKind::kTopK:
      os << "TOP " << query.k << " ";
      FormatCall(query, os);
      break;
    case QueryKind::kMax:
    case QueryKind::kMin:
    case QueryKind::kSum:
    case QueryKind::kAve: {
      const char* name = query.kind == QueryKind::kMax   ? "MAX"
                         : query.kind == QueryKind::kMin ? "MIN"
                         : query.kind == QueryKind::kSum ? "SUM"
                                                         : "AVE";
      os << name << "(";
      FormatCall(query, os);
      if (query.weight_column.has_value()) os << ", " << *query.weight_column;
      os << ")";
      break;
    }
  }
  os << " FROM " << relation << " PRECISION " << FormatNumber(query.epsilon);
  if (query.approx.has_value()) {
    os << " APPROX WITH CONFIDENCE " << FormatNumber(query.approx->confidence)
       << " ERROR " << FormatNumber(query.approx->target_rel_error);
    if (query.approx->seed != 0) os << " SEED " << query.approx->seed;
  }
  return os.str();
}

}  // namespace vaolib::engine
