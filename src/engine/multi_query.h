// Copyright 2026 The vaolib Authors.
// MultiQueryExecutor: shared execution of many standing queries over the
// same UDF -- the continuous-query deployment the paper's introduction
// motivates (many traders' queries over the same bond models).
//
// All registered queries must bind the SAME function with the SAME argument
// references; that is exactly what makes sharing sound: per stream tick one
// result object is created per relation row, every query's operator works
// over those shared objects, and since bounds only tighten, work done for
// one query is free for the next. Point-selection predicates are batched
// through MultiSelectionVao so each object is iterated once for ALL
// selection constants (cost tracks the hardest predicate, not the query
// count).

#ifndef VAOLIB_ENGINE_MULTI_QUERY_H_
#define VAOLIB_ENGINE_MULTI_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/work_meter.h"
#include "engine/cost_history.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "engine/relation.h"
#include "engine/sampling/sampled_sum.h"
#include "engine/schema.h"
#include "engine/scheduler.h"
#include "operators/operator_base.h"

namespace vaolib::engine {

/// \brief How a MultiQueryExecutor runs its query set.
struct MultiQueryOptions {
  /// > 1 creates the per-tick shared objects through InvokeAll and runs
  /// row-parallel phases on the shared pool.
  int threads = 1;

  /// When true, each tick turns every query into a resumable IterationTask
  /// over the shared objects and drives them through a WorkScheduler
  /// instead of converging queries one after another: the `scheduler`
  /// policy decides who gets each work grant, and when its budget runs out
  /// every unfinished query still reports a sound partial answer with
  /// TickResult::converged = false. When false (default), ticks run the
  /// classic two-phase converge-everything path and `scheduler`/`schedules`
  /// are ignored.
  bool scheduled = false;
  SchedulerOptions scheduler;
  /// Per-query scheduling parameters, parallel to the query list; empty
  /// means defaults (priority 1, no deadline, no reserve) for every query.
  std::vector<QuerySchedule> schedules;

  /// Per-query owner labels (tenant ids in multi-tenant serving), parallel
  /// to the query list or empty. In scheduled mode each owner's exact
  /// per-tick spend is attributed on the query's ExecutionReport (`tenant`)
  /// and on its IterationTask, and accumulated into the
  /// vaolib_owner_work_units_total{owner=...} counter.
  std::vector<std::string> owners;

  /// Iteration strategy for every aggregate operator the executor runs
  /// (kCalibratedGreedy / kSentinelGreedy enable calibration-corrected
  /// scoring; see operators/operator_base.h).
  operators::StrategyKind strategy = operators::StrategyKind::kGreedy;
  /// kSentinelGreedy: probe budget per correlation group.
  int sentinel_probes = 2;

  /// Optional per-(row, solver kind) cost history shared across ticks: the
  /// executor records every serial iterate into it (keyed by row index, so
  /// identities survive the per-tick result-object rebuild), calls
  /// BeginTick() once per tick, and the corrected strategies read it back.
  /// Share one store across executors (the server dispatcher does, per
  /// query group) to carry corrections across rebuilds.
  std::shared_ptr<CostHistory> history;
};

/// \brief Shared-execution runner for a set of standing queries.
class MultiQueryExecutor {
 public:
  /// Builds the executor; every query must have the same `function` and
  /// `args` bindings (InvalidArgument otherwise). Traditional mode is not
  /// supported here -- use one CqExecutor per query for baselines.
  /// With options.threads > 1 the per-tick shared objects are created
  /// through InvokeAll and the batched selection predicates resolve
  /// row-parallel on the shared pool; aggregate operators then run serially
  /// over the tightened objects with a parallel coarse phase (see
  /// MinMaxOptions/SumAveOptions). options.scheduled switches ticks to
  /// budget-aware scheduled execution (see MultiQueryOptions).
  static Result<std::unique_ptr<MultiQueryExecutor>> Create(
      const Relation* relation, Schema stream_schema,
      std::vector<Query> queries, const MultiQueryOptions& options);

  /// Pre-scheduler signature, kept so existing call sites compile
  /// unchanged; equivalent to passing MultiQueryOptions{.threads = threads}.
  static Result<std::unique_ptr<MultiQueryExecutor>> Create(
      const Relation* relation, Schema stream_schema,
      std::vector<Query> queries, int threads = 1);

  /// Re-evaluates every query for \p stream_tuple over shared result
  /// objects. Results are parallel to the constructor's query list; each
  /// TickResult's work_units reports the work attributable to that query's
  /// operator phase (object creation is charged to the first phase).
  ///
  /// In scheduled mode each TickResult's work_units is instead the exact
  /// work-unit spend the scheduler granted that query (the spends sum to
  /// the scheduler run's meter delta; object creation is accounted in the
  /// tick-wide report), and converged reflects whether the query finished
  /// within the budget.
  Result<std::vector<TickResult>> ProcessTick(const Tuple& stream_tuple);

  /// Cumulative work across all ticks and queries.
  const WorkMeter& meter() const { return meter_; }
  void ResetMeter() { meter_.Reset(); }

  /// Tick-wide observability account of the most recent ProcessTick():
  /// query_kind "multi", work/cache/pool sections covering the whole tick
  /// (shared object creation included), operator section summed over the
  /// per-query reports. Each TickResult additionally carries its own report
  /// whose work section is that query's exact work_units split by kind.
  const obs::ExecutionReport& last_tick_report() const {
    return last_tick_report_;
  }

  std::size_t query_count() const { return queries_.size(); }
  int threads() const { return options_.threads; }
  const MultiQueryOptions& options() const { return options_; }

 private:
  MultiQueryExecutor(const Relation* relation, Schema stream_schema,
                     std::vector<Query> queries, MultiQueryOptions options);

  Result<std::vector<double>> BuildArgs(const Tuple& stream_tuple,
                                        std::size_t row) const;

  /// Stamps the predictive-planning knobs (strategy, sentinel budget,
  /// feedback store, stable object ids) onto an aggregate's options.
  void ApplyPredictiveOptions(operators::OperatorOptions* options) const;

  /// Creates the tick's shared result objects (one per relation row) and
  /// reports their creation cost (total and by kind).
  Result<std::vector<vao::ResultObjectPtr>> CreateSharedObjects(
      const Tuple& stream_tuple, std::uint64_t* creation_cost,
      obs::WorkByKind* creation_work);

  /// Classic path: converge every query, selections batched first.
  Result<std::vector<TickResult>> ProcessTickShared(const Tuple& stream_tuple);
  /// Budget-aware path: one IterationTask per query under a WorkScheduler.
  Result<std::vector<TickResult>> ProcessTickScheduled(
      const Tuple& stream_tuple);

  /// \name Approximate tier (Query::approx engaged). Sampled aggregates
  /// never read the shared object set: they materialize private objects for
  /// their sampled rows, so a tick whose queries are ALL approximate skips
  /// shared-object creation entirely.
  /// @{
  /// Builds the resumable sampled-SUM/AVE task for \p query. \p stream_tuple
  /// is captured by reference and must outlive the task (tick scope).
  Result<std::unique_ptr<sampling::SampledSumTask>> MakeSampledSumTask(
      const Tuple& stream_tuple, const Query& query);
  /// Shared-mode sampled SUM/AVE: drives the task to completion.
  Status EvaluateApproxSum(const Tuple& stream_tuple, const Query& query,
                           TickResult* result);
  /// Approximate TOP-K: the exact operator over an upfront uniform row
  /// sample (heuristic tier; see CqExecutor::RunApproximate).
  Status EvaluateApproxTopK(const Tuple& stream_tuple, const Query& query,
                            TickResult* result);
  /// @}

  const Relation* relation_;
  Schema stream_schema_;
  std::vector<Query> queries_;
  MultiQueryOptions options_;
  WorkMeter meter_;
  obs::ExecutionReport last_tick_report_;

  struct BoundArg {
    ArgRef::Source source;
    std::size_t index = 0;
    double constant = 0.0;
  };
  std::vector<BoundArg> bound_args_;  ///< shared bindings (validated equal)
  /// Stable per-row identities for the cost history (row index: the
  /// relation row a shared object was built from, constant across ticks).
  std::vector<std::uint64_t> object_ids_;
};

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_MULTI_QUERY_H_
