#include "engine/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/macros.h"

namespace vaolib::engine {

Result<std::vector<std::string>> SplitCsvRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';  // doubled quote inside a quoted field
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument("quote inside unquoted CSV field");
      }
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current += c;
    }
  }
  if (quoted) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

Result<Value> TypedCell(const std::string& text, ColumnType type,
                        int line_number) {
  switch (type) {
    case ColumnType::kString:
      return Value(text);
    case ColumnType::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || text.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": '" + text + "' is not an integer");
      }
      return Value(static_cast<std::int64_t>(v));
    }
    case ColumnType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || text.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": '" + text + "' is not a number");
      }
      return Value(v);
    }
  }
  return Status::Internal("unknown column type");
}

}  // namespace

Result<Relation> LoadRelationCsv(std::istream& input, const Schema& schema) {
  std::string line;
  if (!std::getline(input, line)) {
    return Status::InvalidArgument("CSV input is empty (no header)");
  }
  VAOLIB_ASSIGN_OR_RETURN(const std::vector<std::string> header,
                          SplitCsvRecord(line));
  if (header.size() != schema.size()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns, schema expects " + std::to_string(schema.size()));
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] != schema.columns()[i].name) {
      return Status::InvalidArgument("CSV header column " +
                                     std::to_string(i) + " is '" + header[i] +
                                     "', schema expects '" +
                                     schema.columns()[i].name + "'");
    }
  }

  Relation relation(schema);
  int line_number = 1;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;  // skip blank lines
    VAOLIB_ASSIGN_OR_RETURN(const std::vector<std::string> fields,
                            SplitCsvRecord(line));
    if (fields.size() != schema.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + " has " +
          std::to_string(fields.size()) + " fields, schema expects " +
          std::to_string(schema.size()));
    }
    Tuple row;
    row.reserve(fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
      VAOLIB_ASSIGN_OR_RETURN(
          Value cell,
          TypedCell(fields[i], schema.columns()[i].type, line_number));
      row.push_back(std::move(cell));
    }
    VAOLIB_RETURN_IF_ERROR(relation.Append(std::move(row)).WithContext(
        "line " + std::to_string(line_number)));
  }
  return relation;
}

Result<Relation> LoadRelationCsvFile(const std::string& path,
                                     const Schema& schema) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return LoadRelationCsv(file, schema);
}

namespace {

std::string EscapeCsv(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Status SaveRelationCsv(const Relation& relation, std::ostream& output) {
  const Schema& schema = relation.schema();
  for (std::size_t i = 0; i < schema.size(); ++i) {
    output << (i == 0 ? "" : ",") << EscapeCsv(schema.columns()[i].name);
  }
  output << "\n";
  for (const Tuple& row : relation.rows()) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      output << (i == 0 ? "" : ",") << EscapeCsv(row[i].ToString());
    }
    output << "\n";
  }
  if (!output.good()) {
    return Status::Internal("CSV write failed");
  }
  return Status::OK();
}

}  // namespace vaolib::engine
