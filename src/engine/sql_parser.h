// Copyright 2026 The vaolib Authors.
// A small SQL-ish surface syntax for the continuous queries of the paper,
// so standing queries can be registered as text:
//
//   SELECT * FROM bd WHERE model(rate, bond_index) > 100
//   SELECT * FROM bd WHERE model(rate, bond_index) BETWEEN 99 AND 101
//   SELECT MAX(model(rate, bond_index)) FROM bd PRECISION 0.01
//   SELECT MIN(model(rate, bond_index)) FROM bd PRECISION 0.01
//   SELECT SUM(model(rate, bond_index), position) FROM bd PRECISION 5
//   SELECT AVE(model(rate, bond_index)) FROM bd PRECISION 0.01
//   SELECT TOP 3 model(rate, bond_index) FROM bd PRECISION 0.01
//   SELECT SUM(model(rate, bond_index)) FROM bd
//       APPROX WITH CONFIDENCE 0.95 ERROR 0.01 SEED 7
//
// Function names resolve through a FunctionRegistry; bare identifiers in
// the argument list resolve against the stream schema first, then the
// relation schema (numbers become constants). SUM's optional second
// argument names the relation column supplying weights. Keywords are
// case-insensitive; identifiers are case-sensitive.
//
// The trailing APPROX clause (SUM/AVE/TOP-K only, after any PRECISION)
// opts the query into the sampled approximate tier (Query::approx): WITH
// CONFIDENCE sets the interval's confidence level in (0, 1), ERROR the
// relative half-width target (> 0), SEED the sampling seed; each part is
// optional and defaults to ApproxSpec's defaults.

#ifndef VAOLIB_ENGINE_SQL_PARSER_H_
#define VAOLIB_ENGINE_SQL_PARSER_H_

#include <map>
#include <string>
#include <string_view>

#include "engine/query.h"
#include "engine/schema.h"

namespace vaolib::engine {

/// \brief Name -> UDF lookup used by the parser. Functions are borrowed
/// and must outlive any Query built against them.
class FunctionRegistry {
 public:
  /// Registers \p function under its own name().
  /// \return AlreadyExists when the name is taken.
  Status Register(const vao::VariableAccuracyFunction* function);

  /// Looks a function up by name.
  Result<const vao::VariableAccuracyFunction*> Lookup(
      const std::string& name) const;

  std::size_t size() const { return functions_.size(); }

 private:
  std::map<std::string, const vao::VariableAccuracyFunction*> functions_;
};

/// \brief Parses \p sql into an engine::Query.
///
/// \param sql          the query text (see header comment for the grammar)
/// \param registry     resolves UDF names
/// \param stream_schema resolves stream-field identifiers
/// \param relation_schema resolves relation-field identifiers (consulted
///        after the stream schema; ambiguity resolves to the stream)
///
/// \return InvalidArgument with a position-annotated message on any
/// syntax or resolution error.
Result<Query> ParseQuery(std::string_view sql,
                         const FunctionRegistry& registry,
                         const Schema& stream_schema,
                         const Schema& relation_schema);

/// \brief Prints \p query back to the surface syntax ParseQuery accepts, the
/// round-trip inverse: ParseQuery(FormatQuery(q)) reproduces q field-for-field
/// for any q ParseQuery can produce (numbers are printed with enough digits
/// to round-trip exactly). The relation name is not recorded in Query, so the
/// placeholder \p relation is printed in the FROM clause.
///
/// Queries built by hand can stray outside the grammar (an exclusive BETWEEN,
/// a null function); those print on a best-effort basis and may not reparse.
std::string FormatQuery(const Query& query, std::string_view relation = "rel");

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_SQL_PARSER_H_
