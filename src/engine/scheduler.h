// Copyright 2026 The vaolib Authors.
// WorkScheduler: budget-aware interleaving of resumable operator tasks
// across queries.
//
// The operator layer exposes its convergence loops as IterationTasks
// (operators/iteration_task.h); this module decides WHICH task gets the
// next Step() when many queries compete for a shared work budget. Because
// every task is sound to abandon -- Snapshot() always returns a provable
// partial answer -- budget exhaustion degrades answers to converged=false
// instead of blocking the tick.
//
// Accounting contract: Run() drives tasks serially and brackets every
// Step() with WorkMeter::Total() deltas, so the per-task `spent` numbers
// sum EXACTLY to the meter delta of the whole run. Tests assert this
// invariant (DESIGN.md section 4d).

#ifndef VAOLIB_ENGINE_SCHEDULER_H_
#define VAOLIB_ENGINE_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/work_meter.h"
#include "obs/execution_report.h"
#include "operators/iteration_task.h"

namespace vaolib::engine {

/// \brief How the scheduler picks the next task to step.
enum class SchedulerPolicy {
  /// Global benefit/cost greedy: step the task whose next Step() promises
  /// the largest accuracy gain per work unit (a lazy max-heap over the
  /// tasks' self-calibrating estimates). Converges the whole query set
  /// with the least total work; no fairness guarantee.
  kGreedyGlobal,
  /// Weighted fair share: step the unfinished task with the smallest
  /// spent/priority ratio. Starvation-free -- every unfinished task is
  /// stepped at least once every n picks once its ratio lags.
  kFairShare,
  /// Earliest deadline first over the tick's work clock, with per-query
  /// budget reserves: a task may spend beyond its own needs only while the
  /// remaining budget still covers every other unfinished task's unmet
  /// reserve. Tasks without a deadline (deadline == 0) run last.
  kDeadline,
};

/// \brief Label value for \p policy ("greedy_global", "fair_share",
/// "deadline").
const char* SchedulerPolicyName(SchedulerPolicy policy);

/// \brief Per-query scheduling parameters.
struct QuerySchedule {
  /// kFairShare weight; spending targets are proportional to it (> 0).
  double priority = 1.0;
  /// kDeadline: work-clock deadline in work units since the run began;
  /// 0 means no deadline (scheduled after all deadline-bearing tasks).
  std::uint64_t deadline = 0;
  /// kDeadline: work units guaranteed to this query; other tasks may not
  /// consume budget that the reserve still needs.
  std::uint64_t reserve = 0;
};

/// \brief Scheduler-wide parameters.
struct SchedulerOptions {
  SchedulerPolicy policy = SchedulerPolicy::kGreedyGlobal;
  /// Total work-unit budget for one Run(); 0 = unlimited (run every task
  /// to completion).
  std::uint64_t budget = 0;
  /// kGreedyGlobal batch rounds: after the heap picks a task, up to
  /// batch_k - 1 other unfinished tasks of the same kind (same name()) are
  /// stepped in the same round, best-scored first, so same-solver work runs
  /// consecutively across queries and the operators' batch tiers keep their
  /// kernel batches warm. Every member step stays individually
  /// meter-bracketed and the budget is re-checked between members, so the
  /// exact-accounting contract is unchanged. 1 = one task per round (the
  /// paper's pick-one loop); ignored by the other policies.
  int batch_k = 1;
};

/// \brief Per-task account of one Run().
struct TaskScheduleStats {
  /// Work units this task's steps charged (exact meter deltas). The sum
  /// over all tasks equals the run's whole meter delta.
  std::uint64_t spent = 0;
  /// Number of Step() calls granted.
  std::uint64_t steps = 0;
  /// `spent` split by WorkKind.
  obs::WorkByKind work;
  /// Work-clock time (total spent across ALL tasks) when this task
  /// finished; 0 while unfinished.
  std::uint64_t finished_at = 0;
  /// Task completed its work (IterationTask::Converged()).
  bool converged = false;
  /// Unfinished and never stepped: the budget ran out before the policy
  /// ever reached this task.
  bool starved = false;
  /// Had a deadline and either finished after it or not at all.
  bool missed_deadline = false;
};

/// \brief Budget-aware multi-task stepper. Stateless between runs; create
/// one per tick (cheap) or reuse.
class WorkScheduler {
 public:
  /// One schedulable unit: a live task plus its query's parameters.
  struct Entry {
    operators::IterationTask* task = nullptr;  ///< borrowed, non-null
    QuerySchedule schedule;
  };

  explicit WorkScheduler(const SchedulerOptions& options)
      : options_(options) {}

  /// Steps the entries' tasks until all are Done() or the budget is
  /// exhausted, charging bookkeeping to \p meter (required: it is the
  /// budget's clock). Tasks already Done() on entry are fine (their stats
  /// just record zero steps without counting as starved). Returns per-entry
  /// stats parallel to \p entries; a Step() error fails the run with that
  /// task's Status.
  Result<std::vector<TaskScheduleStats>> Run(
      const std::vector<Entry>& entries, WorkMeter* meter);

  const SchedulerOptions& options() const { return options_; }

 private:
  /// Policy dispatch: index of the next entry to step, or npos when no
  /// entry is eligible (all done, or reserves block everyone).
  std::size_t PickNext(const std::vector<Entry>& entries,
                       const std::vector<TaskScheduleStats>& stats,
                       std::uint64_t total_spent) const;

  std::size_t PickGreedy(const std::vector<Entry>& entries) const;
  std::size_t PickFairShare(const std::vector<Entry>& entries,
                            const std::vector<TaskScheduleStats>& stats) const;
  std::size_t PickDeadline(const std::vector<Entry>& entries,
                           const std::vector<TaskScheduleStats>& stats,
                           std::uint64_t total_spent) const;

  SchedulerOptions options_;
};

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_SCHEDULER_H_
