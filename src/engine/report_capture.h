// Copyright 2026 The vaolib Authors.
// ReportCapture: snapshot/delta scaffolding the executors use to assemble
// per-query ExecutionReports. Captures the instrumented globals (solver-kind
// counters, shared thread-pool stats, the query function's bounds cache if
// it has one) plus the executor's WorkMeter on construction; Finish() turns
// the deltas into a report. The WorkMeter section is exact per query; the
// global sections are exact for a single running query and best-effort
// attributions when queries run concurrently.

#ifndef VAOLIB_ENGINE_REPORT_CAPTURE_H_
#define VAOLIB_ENGINE_REPORT_CAPTURE_H_

#include <vector>

#include "common/thread_pool.h"
#include "common/work_meter.h"
#include "engine/query.h"
#include "obs/execution_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vao/function_cache.h"

namespace vaolib::engine {

/// \brief Source-level label for \p kind ("select", "select_range", "min",
/// "max", "sum", "ave", "top_k").
inline const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSelect: return "select";
    case QueryKind::kSelectRange: return "select_range";
    case QueryKind::kMax: return "max";
    case QueryKind::kMin: return "min";
    case QueryKind::kSum: return "sum";
    case QueryKind::kAve: return "ave";
    case QueryKind::kTopK: return "top_k";
  }
  return "unknown";
}

class ReportCapture {
 public:
  /// Snapshots everything attributable to the query about to run. \p cache
  /// may be null (non-caching function).
  ReportCapture(const WorkMeter& meter, const vao::BoundsCache* cache)
      : work_before_(obs::WorkByKind::Capture(meter)),
        solver_before_(obs::SolverWorkSnapshot::Capture()),
        calibration_before_(obs::CalibrationSnapshot::Capture()),
        pool_before_(ThreadPool::Shared().stats()),
        cache_(cache) {
    if (cache_ != nullptr) shards_before_ = cache_->PerShardStats();
  }

  /// Fills \p report's work/solver/cache/thread-pool sections with the
  /// deltas since construction. The caller fills query_kind, the operator
  /// phase section, and the row accounting.
  void Finish(const WorkMeter& meter, obs::ExecutionReport* report) const {
    report->work = obs::WorkByKind::Capture(meter).DeltaSince(work_before_);
    const obs::SolverWorkSnapshot solver_delta =
        obs::SolverWorkSnapshot::Capture().DeltaSince(solver_before_);
    for (int k = 0; k < obs::kNumSolverKinds; ++k) {
      report->solver_work[k] = solver_delta.units[k];
    }

    const obs::CalibrationSnapshot calibration_delta =
        obs::CalibrationSnapshot::Capture().DeltaSince(calibration_before_);
    for (int k = 0; k < obs::kNumSolverKinds; ++k) {
      const obs::CalibrationSnapshot::Kind& d = calibration_delta.kinds[k];
      obs::CalibrationKindStats& out = report->calibration[k];
      out.samples = d.samples;
      out.cost_err_sum = d.cost_err_sum;
      out.cost_abs_err_sum = d.cost_abs_err_sum;
      out.lo_err_sum = d.lo_err_sum;
      out.lo_abs_err_sum = d.lo_abs_err_sum;
      out.hi_err_sum = d.hi_err_sum;
      out.hi_abs_err_sum = d.hi_abs_err_sum;
    }

    const ThreadPool::Stats pool_after = ThreadPool::Shared().stats();
    report->pool_parallel_fors =
        pool_after.parallel_for_calls - pool_before_.parallel_for_calls;
    report->pool_tasks_enqueued =
        pool_after.tasks_enqueued - pool_before_.tasks_enqueued;
    report->pool_chunks_executed =
        pool_after.chunks_executed - pool_before_.chunks_executed;
    report->pool_queue_wait_nanos =
        pool_after.queue_wait_nanos - pool_before_.queue_wait_nanos;

    if (cache_ != nullptr) {
      report->has_cache = true;
      const auto shards_after = cache_->PerShardStats();
      report->cache_shards.clear();
      report->cache_hits = 0;
      report->cache_misses = 0;
      report->cache_evictions = 0;
      for (std::size_t s = 0; s < shards_after.size(); ++s) {
        obs::CacheShardStats delta;
        delta.hits = shards_after[s].hits - shards_before_[s].hits;
        delta.misses = shards_after[s].misses - shards_before_[s].misses;
        delta.evictions =
            shards_after[s].evictions - shards_before_[s].evictions;
        report->cache_hits += delta.hits;
        report->cache_misses += delta.misses;
        report->cache_evictions += delta.evictions;
        report->cache_shards.push_back(delta);
      }
    }
  }

  /// The query function's bounds cache, or null when it is not a
  /// CachingFunction.
  static const vao::BoundsCache* CacheOf(
      const vao::VariableAccuracyFunction* function) {
    const auto* caching = dynamic_cast<const vao::CachingFunction*>(function);
    return caching != nullptr ? &caching->cache() : nullptr;
  }

 private:
  obs::WorkByKind work_before_;
  obs::SolverWorkSnapshot solver_before_;
  obs::CalibrationSnapshot calibration_before_;
  ThreadPool::Stats pool_before_;
  const vao::BoundsCache* cache_;
  std::vector<vao::BoundsCache::ShardStats> shards_before_;
};

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_REPORT_CAPTURE_H_
