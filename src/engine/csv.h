// Copyright 2026 The vaolib Authors.
// CSV loading for relations: lets downstream users bring their own bond
// tables (or any keyed parameter table) into the engine from files, with
// schema-driven typing and RFC-4180-style quoting.

#ifndef VAOLIB_ENGINE_CSV_H_
#define VAOLIB_ENGINE_CSV_H_

#include <istream>
#include <string>

#include "common/result.h"
#include "engine/relation.h"
#include "engine/schema.h"

namespace vaolib::engine {

/// \brief Parses one CSV record (handles quoted fields with embedded commas
/// and doubled quotes). Exposed for testing.
Result<std::vector<std::string>> SplitCsvRecord(const std::string& line);

/// \brief Reads a CSV stream whose header row must match \p schema's column
/// names in order; each subsequent row is typed per the schema (kInt and
/// kDouble parsed, kString taken verbatim) and appended to the returned
/// relation.
///
/// \return InvalidArgument on header mismatch, arity mismatch, or
/// unparseable numeric cells (message includes the line number).
Result<Relation> LoadRelationCsv(std::istream& input, const Schema& schema);

/// \brief Convenience overload reading from a file path.
/// \return NotFound when the file cannot be opened.
Result<Relation> LoadRelationCsvFile(const std::string& path,
                                     const Schema& schema);

/// \brief Writes \p relation (header + rows) as CSV to \p output.
Status SaveRelationCsv(const Relation& relation, std::ostream& output);

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_CSV_H_
