#include "engine/sampling/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vaolib::engine::sampling {

std::size_t PrefixSampler::SlotValue(std::size_t i) const {
  const auto it = slots_.find(i);
  return it == slots_.end() ? i : it->second;
}

std::vector<std::size_t> PrefixSampler::Draw(std::size_t k) {
  std::vector<std::size_t> fresh;
  fresh.reserve(k);
  while (k-- > 0 && sample_.size() < population_) {
    // Classic Fisher-Yates step over the virtual array [drawn, population):
    // pick a uniform slot j, take its value, and move the front value into
    // the hole so it stays drawable.
    const std::size_t front = sample_.size();
    const std::size_t j =
        static_cast<std::size_t>(rng_.UniformInt(
            static_cast<std::int64_t>(front),
            static_cast<std::int64_t>(population_ - 1)));
    const std::size_t picked = SlotValue(j);
    slots_[j] = SlotValue(front);
    slots_.erase(front);  // slot `front` is never read again; reclaim it
    sample_.push_back(picked);
    fresh.push_back(picked);
  }
  return fresh;
}

std::vector<std::size_t> ReservoirSample(std::size_t population,
                                         std::size_t k, std::uint64_t seed) {
  std::vector<std::size_t> out;
  if (k == 0 || population == 0) return out;
  if (k >= population) {
    out.resize(population);
    std::iota(out.begin(), out.end(), std::size_t{0});
    return out;
  }
  Rng rng(seed);
  out.resize(k);
  std::iota(out.begin(), out.end(), std::size_t{0});
  // Algorithm L (Li 1994): skip ahead geometrically instead of testing
  // every row.
  double w = std::exp(std::log(rng.NextDouble()) / static_cast<double>(k));
  std::size_t i = k - 1;
  while (true) {
    const double skip =
        std::floor(std::log(rng.NextDouble()) / std::log(1.0 - w));
    if (!std::isfinite(skip) || skip >= static_cast<double>(population)) {
      break;
    }
    i += static_cast<std::size_t>(skip) + 1;
    if (i >= population) break;
    const std::size_t victim = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(k) - 1));
    out[victim] = i;
    w *= std::exp(std::log(rng.NextDouble()) / static_cast<double>(k));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> ProportionalAllocation(
    const std::vector<std::size_t>& stratum_sizes, std::size_t total) {
  std::vector<std::size_t> alloc(stratum_sizes.size(), 0);
  std::size_t n = 0;
  for (const std::size_t s : stratum_sizes) n += s;
  if (n == 0 || total == 0) return alloc;
  total = std::min(total, n);

  // Floors of the exact proportional shares, then hand out the remaining
  // draws by largest fractional part (ties broken by stratum index).
  std::vector<double> frac(stratum_sizes.size(), 0.0);
  std::size_t given = 0;
  for (std::size_t i = 0; i < stratum_sizes.size(); ++i) {
    const double share = static_cast<double>(total) *
                         static_cast<double>(stratum_sizes[i]) /
                         static_cast<double>(n);
    alloc[i] = std::min(stratum_sizes[i],
                        static_cast<std::size_t>(std::floor(share)));
    frac[i] = share - std::floor(share);
    given += alloc[i];
  }
  std::vector<std::size_t> order(stratum_sizes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (frac[a] != frac[b]) return frac[a] > frac[b];
    return a < b;
  });
  for (std::size_t round = 0; given < total; ++round) {
    bool progressed = false;
    for (const std::size_t i : order) {
      if (given >= total) break;
      if (alloc[i] < stratum_sizes[i]) {
        ++alloc[i];
        ++given;
        progressed = true;
      }
    }
    if (!progressed) break;  // every stratum saturated
  }
  return alloc;
}

std::vector<std::size_t> StratifiedSample(const std::vector<double>& keys,
                                          std::size_t strata, std::size_t k,
                                          std::uint64_t seed) {
  const std::size_t n = keys.size();
  std::vector<std::size_t> out;
  if (n == 0 || k == 0) return out;
  strata = std::max<std::size_t>(1, std::min(strata, n));

  // Equal-count quantile buckets over the sorted key order.
  std::vector<std::size_t> by_key(n);
  std::iota(by_key.begin(), by_key.end(), std::size_t{0});
  std::sort(by_key.begin(), by_key.end(), [&](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  std::vector<std::vector<std::size_t>> buckets(strata);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t s = pos * strata / n;
    buckets[s].push_back(by_key[pos]);
  }

  std::vector<std::size_t> sizes(strata);
  for (std::size_t s = 0; s < strata; ++s) sizes[s] = buckets[s].size();
  const std::vector<std::size_t> alloc = ProportionalAllocation(sizes, k);

  for (std::size_t s = 0; s < strata; ++s) {
    if (alloc[s] == 0) continue;
    // Per-stratum seed derived by splitmix-style mixing so strata draw
    // independent streams.
    std::uint64_t sub = seed + 0x9E3779B97F4A7C15ULL * (s + 1);
    const std::vector<std::size_t> local =
        ReservoirSample(buckets[s].size(), alloc[s], sub);
    for (const std::size_t idx : local) out.push_back(buckets[s][idx]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vaolib::engine::sampling
