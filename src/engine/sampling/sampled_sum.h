// Copyright 2026 The vaolib Authors.
// SampledSumTask: the approximate tier's SUM/AVE engine -- a resumable
// IterationTask that estimates a weighted total over an N-row relation from
// a growing uniform row sample instead of converging every row.
//
// Estimator (SRSWOR Horvitz-Thompson over bound midpoints):
//   T_hat      = (N/n) * sum_i w_i * mid_i          over the n sampled rows
//   se         = N * sqrt((1 - n/N) * s^2 / n)       s^2 = sample var of w*mid
//   det_half   = (N/n) * sum_i w_i * (H_i - L_i)/2   residual VAO bound error
//   interval   = T_hat +/- (z * se + det_half)       z = NormalQuantile((1+c)/2)
// The det_half term absorbs the midpoint's deterministic bias, so the
// combined interval covers the true total whenever the CLT interval covers
// the population midpoint total -- i.e. with >= the stated confidence. At
// n == N the finite-population correction zeroes the sampling term and the
// interval degenerates to the hard [sum w*L, sum w*H].
//
// s^2 is computed from residuals against a pivot re-centered on the sample
// mean at every full recompute, never from the textbook sum-of-squares form
// E[y^2] - E[y]^2, which cancels catastrophically on large-mean/small-
// variance data and would silently collapse the interval.
//
// Create() draws the initial sample eagerly, so every Snapshot() -- even
// one taken before a budgeted scheduler grants the task its first Step() --
// already has a variance estimate behind its interval. The only snapshots
// without one (possible solely under a sample cap below 2) are tagged
// confidence 0: an explicit "no probabilistic claim" marker, never a
// fabricated tight interval.
//
// Each Step() plays the paper's greedy trade one level up: it compares the
// best "iterate an existing sampled object tighter" candidate (ScoreHeap
// over w_i * predicted-width-reduction / estCPU, exactly the SUM/AVE score)
// against a "draw more samples" pseudo-candidate whose benefit is the
// predicted shrink of the *combined* interval from widening the sample, and
// executes whichever buys more interval width per unit of work. Because the
// task is a regular IterationTask, the cross-query WorkScheduler prices
// that trade against every other query's next step as well.

#ifndef VAOLIB_ENGINE_SAMPLING_SAMPLED_SUM_H_
#define VAOLIB_ENGINE_SAMPLING_SAMPLED_SUM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/stall_guard.h"
#include "common/work_meter.h"
#include "engine/query.h"
#include "engine/sampling/sampler.h"
#include "operators/iteration_task.h"
#include "operators/operator_base.h"
#include "operators/score_heap.h"
#include "vao/answer.h"
#include "vao/result_object.h"

namespace vaolib::engine::sampling {

/// \brief Configuration for one sampled aggregate run.
struct SampledAggregateOptions {
  /// Confidence / error target / seed / sample caps.
  ApproxSpec spec;

  /// Absolute width floor: the task also stops once the combined interval
  /// width is below this (the query's epsilon).
  double epsilon = 0.01;

  /// Safety valve on total Iterate() calls (matches OperatorOptions).
  std::uint64_t max_total_iterations = 50'000'000;

  /// Meter charged for the eager initial draw in Create() (nullable; later
  /// draws are charged to the meter each Step() receives).
  WorkMeter* meter = nullptr;
};

/// \brief Snapshot/outcome of a sampled aggregate.
struct SampledSumOutcome {
  /// The combined probabilistic interval with provenance; sound at the
  /// answer's stated confidence, even mid-run. Snapshots taken before a
  /// variance estimate exists (reachable only when the sample is capped
  /// below 2 rows) carry confidence 0 and a placeholder width instead of
  /// pretending to a confidence interval.
  vao::Answer answer;
  bool converged = false;
  /// True when the error target was unreachable because every sampled
  /// object hit its min-width floor with the whole population drawn.
  bool limited_by_min_width = false;
  operators::OperatorStats stats;
};

/// \brief Resumable sampled SUM/AVE. AVE is the same machine with weights
/// 1/N (the engine's AveWeights convention), so one task covers both.
class SampledSumTask : public operators::IterationTask {
 public:
  /// Materializes the result object for one relation row (binds the row's
  /// arguments and invokes the UDF; creation work is charged by the UDF to
  /// whatever meter it was given).
  using RowFactory =
      std::function<Result<vao::ResultObjectPtr>(std::size_t row)>;

  /// Weight of one relation row in the total.
  using WeightFn = std::function<double(std::size_t row)>;

  /// \p population is the relation row count (must be > 0); factories are
  /// copied into the task and must stay valid for its lifetime. Draws the
  /// initial sample (clamped to the sample cap) before returning, charging
  /// it to options.meter, so the task is snapshot-ready even if it is never
  /// stepped; row materialization failures surface here.
  static Result<std::unique_ptr<SampledSumTask>> Create(
      const SampledAggregateOptions& options, std::size_t population,
      RowFactory factory, WeightFn weight);

  const char* name() const override { return "sampled_sum"; }

  /// The best currently-provable probabilistic answer (sound at the stated
  /// confidence at any point; `converged` only once the target is met).
  SampledSumOutcome Snapshot() const;

  /// Rows sampled so far.
  std::size_t sample_size() const { return objects_.size(); }

 protected:
  Status StepImpl(WorkMeter* meter) override;
  double CurrentUncertainty() const override;

 private:
  SampledSumTask(const SampledAggregateOptions& options,
                 std::size_t population, RowFactory factory, WeightFn weight);

  /// Draws and materializes up to \p count fresh rows; updates sums and the
  /// score heap. Charges creation bookkeeping to \p meter.
  Status DrawBatch(std::size_t count, WorkMeter* meter);

  /// Iterates sampled object \p i once; updates sums, stall guard, heap.
  Status IterateObject(std::size_t i, WorkMeter* meter);

  /// Rebuilds sum_y_/sum_half_/sum_yc2_ from scratch with compensated
  /// accumulators and re-centers the variance pivot on the current mean
  /// (called after every draw and periodically to shed incremental drift).
  void RecomputeSums();

  /// Bessel-corrected sample variance of y over the current sample, from
  /// pivot-centered residuals (0 when n < 2).
  double SampleVariance() const;

  /// Greedy score of sampled object \p i (w * predicted width shrink per
  /// unit cost; 0 for converged/stalled objects).
  double ObjectScore(std::size_t i) const;

  /// Current combined half-width z*se + det_half.
  double CombinedHalf() const;
  double SamplingHalf() const;     ///< z * se at the current sample
  double DeterministicHalf() const;///< det_half at the current sample
  double Estimate() const;         ///< T_hat
  double HalfTarget() const;       ///< stopping threshold on CombinedHalf()

  /// Max rows this run may sample (min(population, spec.max_samples)).
  std::size_t SampleCap() const;

  /// True when the stopping condition holds; finalizes if so.
  bool CheckStop();
  void Finish(bool converged);

  SampledAggregateOptions options_;
  std::size_t population_;
  RowFactory factory_;
  WeightFn weight_;
  PrefixSampler sampler_;
  double z_ = 0.0;

  /// Parallel arrays over sampled rows.
  std::vector<vao::ResultObjectPtr> objects_;
  std::vector<std::size_t> rows_;
  std::vector<double> weights_;
  std::vector<StallGuard> stall_;
  std::vector<bool> active_;  ///< still iterable (not converged/stalled)

  /// Incremental accumulators over sampled rows (y = w * mid):
  double sum_y_ = 0.0;     ///< sum y
  double sum_half_ = 0.0;  ///< sum w * (H - L)/2
  double pivot_ = 0.0;     ///< variance pivot (mean y at last recompute)
  double sum_yc2_ = 0.0;   ///< sum (y - pivot_)^2
  std::size_t mutations_ = 0;  ///< delta updates since last recompute
  double mean_new_half_ = 0.0; ///< running mean of w*half at creation time
  double mean_row_cost_ = 1.0; ///< running mean creation cost per row

  operators::ScoreHeap heap_;
  std::uint64_t iterations_ = 0;
  bool limited_by_min_width_ = false;
  operators::OperatorStats stats_;
};

}  // namespace vaolib::engine::sampling

#endif  // VAOLIB_ENGINE_SAMPLING_SAMPLED_SUM_H_
