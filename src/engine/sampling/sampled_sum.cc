#include "engine/sampling/sampled_sum.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/stats.h"

namespace vaolib::engine::sampling {

namespace {

// Fraction of the current sample drawn per widen step. Growing geometrically
// keeps the number of draw decisions logarithmic in the final sample size
// while each batch stays small enough for the greedy trade to re-evaluate.
constexpr std::size_t kDrawGrowthDivisor = 4;

// Delta updates to the running sums tolerated before a full compensated
// recompute. Bounded by the sample size so the amortized recompute cost per
// mutation stays O(1).
std::size_t RecomputeInterval(std::size_t n) {
  return std::max<std::size_t>(32, n);
}

}  // namespace

SampledSumTask::SampledSumTask(const SampledAggregateOptions& options,
                               std::size_t population, RowFactory factory,
                               WeightFn weight)
    : options_(options),
      population_(population),
      factory_(std::move(factory)),
      weight_(std::move(weight)),
      sampler_(population, options.spec.seed),
      z_(NormalQuantile(0.5 * (1.0 + options.spec.confidence))) {}

Result<std::unique_ptr<SampledSumTask>> SampledSumTask::Create(
    const SampledAggregateOptions& options, std::size_t population,
    RowFactory factory, WeightFn weight) {
  if (population == 0) {
    return Status::InvalidArgument("sampled_sum: empty population");
  }
  if (!(options.spec.confidence > 0.0) || !(options.spec.confidence < 1.0)) {
    return Status::InvalidArgument(
        "sampled_sum: confidence must be in (0, 1), got " +
        std::to_string(options.spec.confidence));
  }
  if (!(options.spec.target_rel_error > 0.0)) {
    return Status::InvalidArgument(
        "sampled_sum: target_rel_error must be > 0, got " +
        std::to_string(options.spec.target_rel_error));
  }
  if (factory == nullptr || weight == nullptr) {
    return Status::InvalidArgument(
        "sampled_sum: row factory and weight function are required");
  }
  std::unique_ptr<SampledSumTask> task(new SampledSumTask(
      options, population, std::move(factory), std::move(weight)));
  // Draw the initial batch eagerly so a snapshot taken before the first
  // Step() (a budgeted scheduler may never grant one) already rests on a
  // variance estimate instead of an empty sample. At least 2 rows for a
  // variance, but never more than the user's hard sample cap.
  const std::size_t cap = task->SampleCap();
  const std::size_t want = std::min(
      cap,
      std::max<std::size_t>(2, std::min(options.spec.initial_samples, cap)));
  VAOLIB_RETURN_IF_ERROR(task->DrawBatch(want, options.meter));
  task->CheckStop();
  return task;
}

std::size_t SampledSumTask::SampleCap() const {
  const std::size_t cap = options_.spec.max_samples;
  return cap == 0 ? population_ : std::min(cap, population_);
}

double SampledSumTask::ObjectScore(std::size_t i) const {
  if (!active_[i]) return 0.0;
  const vao::ResultObject& object = *objects_[i];
  const Bounds cur = object.bounds();
  const Bounds est = object.est_bounds();
  const double w = std::abs(weights_[i]);
  const double reduction =
      std::max(0.0, w * ((est.lo - cur.lo) + (cur.hi - est.hi)));
  const double cost =
      static_cast<double>(std::max<std::uint64_t>(object.est_cost(), 1));
  return reduction / cost;
}

double SampledSumTask::Estimate() const {
  const std::size_t n = objects_.size();
  if (n == 0) return 0.0;
  return (static_cast<double>(population_) / static_cast<double>(n)) * sum_y_;
}

double SampledSumTask::SampleVariance() const {
  const std::size_t n = objects_.size();
  if (n < 2) return 0.0;
  const double nd = static_cast<double>(n);
  // sum_yc2_ is centered on pivot_, which RecomputeSums keeps at the sample
  // mean; the drift term corrects for incremental updates since then. Both
  // terms are O(n * s^2), so no catastrophic cancellation even when the
  // mean dwarfs the spread (the failure mode of sum y^2 - n * mean^2).
  const double drift = sum_y_ / nd - pivot_;
  return std::max(0.0, (sum_yc2_ - nd * drift * drift) / (nd - 1.0));
}

double SampledSumTask::SamplingHalf() const {
  const std::size_t n = objects_.size();
  if (n >= population_) return 0.0;  // fpc: the sample is the population
  if (n < 2) return std::numeric_limits<double>::infinity();
  const double nd = static_cast<double>(n);
  const double fpc = 1.0 - nd / static_cast<double>(population_);
  const double se = static_cast<double>(population_) *
                    std::sqrt(fpc * SampleVariance() / nd);
  return z_ * se;
}

double SampledSumTask::DeterministicHalf() const {
  const std::size_t n = objects_.size();
  if (n == 0) return std::numeric_limits<double>::infinity();
  return (static_cast<double>(population_) / static_cast<double>(n)) *
         std::max(0.0, sum_half_);
}

double SampledSumTask::CombinedHalf() const {
  return SamplingHalf() + DeterministicHalf();
}

double SampledSumTask::HalfTarget() const {
  return std::max(options_.spec.target_rel_error * std::abs(Estimate()),
                  0.5 * options_.epsilon);
}

double SampledSumTask::CurrentUncertainty() const {
  if (objects_.size() < 2) {
    // No variance estimate yet; a finite proxy keeps scheduler math sane.
    return static_cast<double>(population_);
  }
  return 2.0 * CombinedHalf();
}

void SampledSumTask::RecomputeSums() {
  const std::size_t n = objects_.size();
  NeumaierSum y, half;
  for (std::size_t i = 0; i < n; ++i) {
    const Bounds b = objects_[i]->bounds();
    y.Add(weights_[i] * b.Mid());
    half.Add(std::abs(weights_[i]) * 0.5 * b.Width());
  }
  sum_y_ = y.Sum();
  sum_half_ = half.Sum();
  // Second pass: re-center the variance pivot on the fresh mean and rebuild
  // the centered squares, so residuals stay small relative to the pivot.
  pivot_ = n == 0 ? 0.0 : sum_y_ / static_cast<double>(n);
  NeumaierSum yc2;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = weights_[i] * objects_[i]->bounds().Mid() - pivot_;
    yc2.Add(d * d);
  }
  sum_yc2_ = yc2.Sum();
  mutations_ = 0;
}

Status SampledSumTask::DrawBatch(std::size_t count, WorkMeter* meter) {
  const std::uint64_t work_before = meter != nullptr ? meter->Total() : 0;
  const std::vector<std::size_t> fresh = sampler_.Draw(count);
  for (const std::size_t row : fresh) {
    VAOLIB_ASSIGN_OR_RETURN(vao::ResultObjectPtr object, factory_(row));
    if (object == nullptr) {
      return Status::Internal("sampled_sum: row factory returned null");
    }
    const double w = weight_(row);
    const Bounds b = object->bounds();
    if (!b.IsValid()) {
      return Status::NumericError(
          "sampled_sum: row " + std::to_string(row) +
          " produced invalid initial bounds");
    }
    const double half = std::abs(w) * 0.5 * b.Width();

    const std::size_t i = objects_.size();
    objects_.push_back(std::move(object));
    rows_.push_back(row);
    weights_.push_back(w);
    stall_.emplace_back();
    active_.push_back(!objects_.back()->AtStoppingCondition());

    // Running means that price the next draw decision.
    mean_new_half_ += (half - mean_new_half_) / static_cast<double>(i + 1);
  }
  if (!fresh.empty() && meter != nullptr) {
    const double batch_cost = static_cast<double>(meter->Total() - work_before);
    const double per_row =
        std::max(1.0, batch_cost / static_cast<double>(fresh.size()));
    // Exponential-ish blend toward the latest batch's per-row cost.
    mean_row_cost_ = 0.5 * (mean_row_cost_ + per_row);
  }

  // Fresh rows move the mean, so rebuild the sums outright -- this also
  // re-centers the variance pivot before the batch's values enter it.
  RecomputeSums();

  // The heap indexes positions in the sample; growing it invalidates the
  // version table, so rebuild from scratch (draws happen O(log n) times).
  heap_.Reset(objects_.size());
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (active_[i]) heap_.Update(i, ObjectScore(i));
  }
  return Status::OK();
}

Status SampledSumTask::IterateObject(std::size_t i, WorkMeter* meter) {
  static_cast<void>(meter);
  vao::ResultObject& object = *objects_[i];
  const Bounds before = object.bounds();
  const double y_before = weights_[i] * before.Mid();
  const double half_before = std::abs(weights_[i]) * 0.5 * before.Width();

  VAOLIB_RETURN_IF_ERROR(object.Iterate());
  ++iterations_;
  ++stats_.iterations;
  ++stats_.greedy_iterations;

  const Bounds after = object.bounds();
  if (!after.IsValid()) {
    return Status::NumericError("sampled_sum: row " +
                                std::to_string(rows_[i]) +
                                " produced invalid bounds");
  }
  const double y_after = weights_[i] * after.Mid();
  const double half_after = std::abs(weights_[i]) * 0.5 * after.Width();
  const double dev_before = y_before - pivot_;
  const double dev_after = y_after - pivot_;
  sum_y_ += y_after - y_before;
  sum_yc2_ += dev_after * dev_after - dev_before * dev_before;
  sum_half_ += half_after - half_before;
  ++mutations_;

  if (object.AtStoppingCondition()) {
    active_[i] = false;
    return Status::OK();
  }
  if (stall_[i].Observe(after.Width())) {
    // Frozen sound bounds stay in the sums; the object just stops competing.
    active_[i] = false;
    ++stats_.stalled_objects;
    return Status::OK();
  }
  heap_.Update(i, ObjectScore(i));
  return Status::OK();
}

bool SampledSumTask::CheckStop() {
  // CombinedHalf() is infinite until a variance estimate exists (fewer than
  // 2 samples short of the whole population), so no premature stop here.
  if (CombinedHalf() <= HalfTarget()) {
    Finish(true);
    return true;
  }
  return false;
}

void SampledSumTask::Finish(bool converged) {
  RecomputeSums();
  MarkDone(converged);
}

Status SampledSumTask::StepImpl(WorkMeter* meter) {
  if (mutations_ >= RecomputeInterval(objects_.size())) RecomputeSums();
  if (CheckStop()) return Status::OK();
  if (iterations_ >= options_.max_total_iterations) {
    // Safety valve: the probabilistic answer stays sound; just stop.
    Finish(false);
    return Status::OK();
  }
  ++stats_.choose_steps;

  const std::size_t n = objects_.size();
  const std::size_t cap = SampleCap();
  const double scale = static_cast<double>(population_) /
                       static_cast<double>(std::max<std::size_t>(n, 1));

  // Candidate A: iterate the most valuable sampled object.
  std::size_t best = 0;
  double best_score = 0.0;
  const bool have_object = heap_.PopBest(&best, &best_score);
  const double iterate_rate = have_object ? scale * best_score : 0.0;

  // Candidate B: widen the sample. Benefit is the predicted drop of the
  // combined half-width (the sampling term shrinks ~1/sqrt(n); the
  // deterministic term moves toward the mean fresh-row half-width), priced
  // at the observed per-row creation cost.
  double draw_rate = -1.0;
  std::size_t batch = 0;
  if (n < cap) {
    batch = std::min(cap - n,
                     std::max<std::size_t>(1, n / kDrawGrowthDivisor));
    const double nb = static_cast<double>(n + batch);
    const double s2 = SampleVariance();
    const double pop = static_cast<double>(population_);
    const double half_s_next =
        n + batch >= population_
            ? 0.0
            : z_ * pop * std::sqrt((1.0 - nb / pop) * s2 / nb);
    const double det_next =
        (pop / nb) *
        (std::max(0.0, sum_half_) + static_cast<double>(batch) *
                                        std::max(0.0, mean_new_half_));
    const double benefit = std::max(
        0.0, CombinedHalf() - (half_s_next + det_next));
    const double cost =
        std::max(1.0, static_cast<double>(batch) * mean_row_cost_);
    draw_rate = benefit / cost;
  }

  if (have_object && iterate_rate >= draw_rate) {
    VAOLIB_RETURN_IF_ERROR(IterateObject(best, meter));
    CheckStop();
    return Status::OK();
  }
  if (batch > 0) {
    // The popped candidate is not lost: DrawBatch rebuilds the whole heap.
    VAOLIB_RETURN_IF_ERROR(DrawBatch(batch, meter));
    CheckStop();
    return Status::OK();
  }
  if (have_object) {
    // Nothing left to draw; keep tightening what we have.
    VAOLIB_RETURN_IF_ERROR(IterateObject(best, meter));
    CheckStop();
    return Status::OK();
  }

  // No iterable object and no rows left to draw: the target is unreachable.
  // With the whole population sampled this is the exact operator's
  // limited-by-min-width outcome (the interval is the hard bound sum);
  // under a user sample cap the answer is simply as good as allowed.
  limited_by_min_width_ = true;
  Finish(/*converged=*/cap >= population_ && sampler_.Exhausted());
  return Status::OK();
}

SampledSumOutcome SampledSumTask::Snapshot() const {
  SampledSumOutcome outcome;
  const std::size_t n = objects_.size();
  double det_half = DeterministicHalf();
  double samp_half = SamplingHalf();
  double confidence = options_.spec.confidence;
  if (!std::isfinite(det_half) || !std::isfinite(samp_half)) {
    // No variance estimate (and for n == 0 not even a point estimate):
    // there is no defensible confidence interval, and a zero-width interval
    // would be an unsound lie. Report a population-scale placeholder tagged
    // confidence 0 -- the Answer-level "no probabilistic claim" marker.
    // Create()'s eager initial draw makes this reachable only when the
    // sample is capped below 2 rows.
    const double placeholder = static_cast<double>(population_);
    if (!std::isfinite(det_half)) det_half = placeholder;
    if (!std::isfinite(samp_half)) samp_half = placeholder;
    confidence = 0.0;
  }
  outcome.answer = vao::Answer::Approximate(
      Bounds::Centered(Estimate(), det_half + samp_half), confidence, n,
      population_, 2.0 * det_half, 2.0 * samp_half);
  outcome.converged = Converged();
  outcome.limited_by_min_width = limited_by_min_width_;
  outcome.stats = stats_;
  outcome.stats.objects_touched = n;
  return outcome;
}

}  // namespace vaolib::engine::sampling
