// Copyright 2026 The vaolib Authors.
// Row samplers for the approximate query tier. All samplers are
// deterministic given their seed, so approximate answers replay exactly in
// the differential harness.
//
// PrefixSampler is the workhorse: an incremental simple-random-sample
// without replacement. Draw(k) extends the current sample by k fresh rows,
// and after any number of draws the selected prefix is an exact uniform
// SRSWOR of its size -- which is what lets SampledSumTask widen the sample
// mid-flight without bias. Internally it runs a sparse Fisher-Yates
// shuffle: only the O(n_drawn) displaced slots are materialized in a hash
// map, so sampling 10^4 rows out of 10^7 costs memory proportional to the
// sample, not the population.

#ifndef VAOLIB_ENGINE_SAMPLING_SAMPLER_H_
#define VAOLIB_ENGINE_SAMPLING_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace vaolib::engine::sampling {

/// \brief Incremental uniform sampling without replacement from
/// {0, ..., population-1}. Each Draw() appends fresh rows; the union of all
/// draws so far is an exact uniform SRSWOR of its size.
class PrefixSampler {
 public:
  PrefixSampler(std::size_t population, std::uint64_t seed)
      : population_(population), rng_(seed) {}

  /// Draws up to \p k fresh rows (fewer when the population is exhausted)
  /// and appends them to the internal sample. Returns the newly drawn rows.
  std::vector<std::size_t> Draw(std::size_t k);

  /// All rows drawn so far, in draw order.
  const std::vector<std::size_t>& sample() const { return sample_; }

  /// Rows drawn so far.
  std::size_t drawn() const { return sample_.size(); }

  /// Population size.
  std::size_t population() const { return population_; }

  /// True when every row has been drawn.
  bool Exhausted() const { return sample_.size() >= population_; }

 private:
  /// Virtual array slot: slots_[i] defaults to i when absent.
  std::size_t SlotValue(std::size_t i) const;

  std::size_t population_;
  Rng rng_;
  std::vector<std::size_t> sample_;
  /// Sparse Fisher-Yates displacement records.
  std::unordered_map<std::size_t, std::size_t> slots_;
};

/// \brief Fixed-size reservoir sample of {0, ..., population-1} via
/// Algorithm L (skip-based; O(k (1 + log(n/k))) RNG work). Returns the
/// selected rows sorted ascending; the whole population when k >= n.
std::vector<std::size_t> ReservoirSample(std::size_t population,
                                         std::size_t k, std::uint64_t seed);

/// \brief Proportional (largest-remainder) allocation of \p total draws
/// over strata of the given sizes. Every nonempty stratum with a nonzero
/// share gets at least its floor; remainders go to the largest fractional
/// parts. The result sums to min(total, sum of sizes) and never exceeds any
/// stratum's size.
std::vector<std::size_t> ProportionalAllocation(
    const std::vector<std::size_t>& stratum_sizes, std::size_t total);

/// \brief Stratified SRSWOR: partitions rows into \p strata quantile
/// buckets of the key column (equal-count by sorted key), allocates \p k
/// draws proportionally, and samples each stratum uniformly. Returns row
/// ids. With skewed keys this cuts estimator variance versus plain SRSWOR
/// while staying self-weighting (proportional allocation keeps every row's
/// inclusion probability ~k/n).
std::vector<std::size_t> StratifiedSample(const std::vector<double>& keys,
                                          std::size_t strata, std::size_t k,
                                          std::uint64_t seed);

}  // namespace vaolib::engine::sampling

#endif  // VAOLIB_ENGINE_SAMPLING_SAMPLER_H_
