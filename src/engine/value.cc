#include "engine/value.h"

#include <cstdio>

namespace vaolib::engine {

std::string Value::ToString() const {
  if (is_int()) return std::to_string(std::get<std::int64_t>(repr_));
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(repr_));
    return buf;
  }
  return std::get<std::string>(repr_);
}

}  // namespace vaolib::engine
