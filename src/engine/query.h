// Copyright 2026 The vaolib Authors.
// Continuous-query description: the declarative form of the paper's Q1-Q3.
//
// A query applies one expensive UDF to (stream tuple x relation row) pairs
// and either filters rows by a predicate on the UDF result (Q1) or
// aggregates the results (Q2/Q3). The executor runs it with VAOs or with
// traditional black-box operators.

#ifndef VAOLIB_ENGINE_QUERY_H_
#define VAOLIB_ENGINE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "operators/operator_base.h"
#include "vao/result_object.h"

namespace vaolib::engine {

/// \brief Where a UDF argument comes from.
struct ArgRef {
  enum class Source { kStreamField, kRelationField, kConstant };
  Source source = Source::kConstant;
  std::string field;     ///< column name, for the field sources
  double constant = 0.0; ///< value, for kConstant

  static ArgRef StreamField(std::string name) {
    return ArgRef{Source::kStreamField, std::move(name), 0.0};
  }
  static ArgRef RelationField(std::string name) {
    return ArgRef{Source::kRelationField, std::move(name), 0.0};
  }
  static ArgRef Constant(double v) {
    return ArgRef{Source::kConstant, {}, v};
  }
};

/// \brief Query shape.
enum class QueryKind {
  kSelect,
  kSelectRange,  ///< BETWEEN extension: range_lo <= f <= range_hi
  kMax,
  kMin,
  kSum,
  kAve,
  kTopK,  ///< k most extreme rows (extension)
};

/// \brief Approximate-execution request: answer an aggregate from a random
/// row sample with a CLT confidence interval instead of converging every
/// row. Applies to kSum/kAve/kTopK; selections and extremes stay exact.
struct ApproxSpec {
  /// Coverage probability of the reported interval (in (0, 1)).
  double confidence = 0.95;

  /// Stop once the combined interval half-width is within this fraction of
  /// the estimate's magnitude (> 0).
  double target_rel_error = 0.01;

  /// Sampling seed; the sample sequence is deterministic given the seed.
  std::uint64_t seed = 0;

  /// Rows drawn before the first estimate (clamped to the population).
  std::size_t initial_samples = 64;

  /// Hard cap on rows sampled; 0 means "up to the whole relation".
  std::size_t max_samples = 0;

  friend bool operator==(const ApproxSpec& a, const ApproxSpec& b) {
    return a.confidence == b.confidence &&
           a.target_rel_error == b.target_rel_error && a.seed == b.seed &&
           a.initial_samples == b.initial_samples &&
           a.max_samples == b.max_samples;
  }
};

/// \brief A continuous query over one UDF.
struct Query {
  QueryKind kind = QueryKind::kSelect;

  /// The UDF and its argument bindings (not owned; registered functions
  /// must outlive the executor).
  const vao::VariableAccuracyFunction* function = nullptr;
  std::vector<ArgRef> args;

  /// Selection predicate (kSelect only): function(args) <cmp> constant.
  operators::Comparator cmp = operators::Comparator::kGreaterThan;
  double constant = 0.0;

  /// Range predicate (kSelectRange only): value in [range_lo, range_hi]
  /// when range_inclusive, the open interval otherwise.
  double range_lo = 0.0;
  double range_hi = 0.0;
  bool range_inclusive = true;

  /// Precision constraint on aggregate outputs (the paper's epsilon).
  double epsilon = 0.01;

  /// Optional relation column supplying SUM weights (kSum only); empty
  /// means unit weights.
  std::optional<std::string> weight_column;

  /// Result-set size for kTopK (an extension; k = 1 degenerates to kMax).
  std::size_t k = 1;

  /// Engaged when the query should run in the approximate (sampled) tier.
  std::optional<ApproxSpec> approx;

  class Builder;
};

/// \brief Fluent construction of a Query. Every example and test reads
/// better as
///
///   Query q = Query::Builder(&model)
///                 .Args({ArgRef::StreamField("rate"),
///                        ArgRef::RelationField("coupon")})
///                 .Select(operators::Comparator::kGreaterThan, 100.0)
///                 .Build();
///
/// than as six field assignments; the field-assignment form stays valid
/// (Query is still an aggregate) for code that prefers it.
class Query::Builder {
 public:
  /// \p function is borrowed and must outlive the executor (same contract
  /// as Query::function).
  explicit Builder(const vao::VariableAccuracyFunction* function) {
    query_.function = function;
  }

  /// Replaces the argument bindings.
  Builder& Args(std::vector<ArgRef> args) {
    query_.args = std::move(args);
    return *this;
  }
  /// Appends one argument binding.
  Builder& Arg(ArgRef arg) {
    query_.args.push_back(std::move(arg));
    return *this;
  }

  /// \name Query shapes (each sets `kind` plus its shape-specific fields).
  /// @{
  Builder& Select(operators::Comparator cmp, double constant) {
    query_.kind = QueryKind::kSelect;
    query_.cmp = cmp;
    query_.constant = constant;
    return *this;
  }
  Builder& SelectRange(double lo, double hi, bool inclusive = true) {
    query_.kind = QueryKind::kSelectRange;
    query_.range_lo = lo;
    query_.range_hi = hi;
    query_.range_inclusive = inclusive;
    return *this;
  }
  Builder& Max() {
    query_.kind = QueryKind::kMax;
    return *this;
  }
  Builder& Min() {
    query_.kind = QueryKind::kMin;
    return *this;
  }
  Builder& Sum() {
    query_.kind = QueryKind::kSum;
    return *this;
  }
  Builder& Ave() {
    query_.kind = QueryKind::kAve;
    return *this;
  }
  Builder& TopK(std::size_t k) {
    query_.kind = QueryKind::kTopK;
    query_.k = k;
    return *this;
  }
  /// @}

  /// Precision constraint on aggregate outputs.
  Builder& Epsilon(double epsilon) {
    query_.epsilon = epsilon;
    return *this;
  }
  /// Relation column supplying SUM weights.
  Builder& WeightColumn(std::string column) {
    query_.weight_column = std::move(column);
    return *this;
  }
  /// Requests approximate (sampled) execution at the given confidence and
  /// relative-error target. Aggregates only; see ApproxSpec.
  Builder& Approximate(double confidence = 0.95,
                       double target_rel_error = 0.01) {
    ApproxSpec spec;
    spec.confidence = confidence;
    spec.target_rel_error = target_rel_error;
    query_.approx = spec;
    return *this;
  }
  /// Replaces the full approximate-execution spec (seed, sample caps, ...).
  Builder& Approximate(const ApproxSpec& spec) {
    query_.approx = spec;
    return *this;
  }

  Query Build() const { return query_; }

 private:
  Query query_;
};

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_QUERY_H_
