#include "engine/scheduler.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::engine {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Benefit-per-work score used by kGreedyGlobal. Estimates self-calibrate
// inside IterationTask, so a task that just made a cheap high-gain step
// floats to the top; transition steps (benefit 0) sink but stay
// schedulable -- when every score is 0 the heap still yields someone.
double GreedyScore(const operators::IterationTask& task) {
  return task.EstimatedBenefit() / std::max(1.0, task.EstimatedCost());
}

struct PolicyCounters {
  obs::Counter* runs;
  obs::Counter* steps;
  obs::Counter* work_units;
  obs::Counter* starved;
  obs::Counter* deadline_misses;
  obs::Counter* budget_exhausted;
};

// One cached counter set per policy (registry lookups happen once).
const PolicyCounters& CountersFor(SchedulerPolicy policy) {
  static const auto* counters = [] {
    auto* sets = new PolicyCounters[3];
    for (int p = 0; p < 3; ++p) {
      const obs::MetricsRegistry::Labels labels = {
          {"policy", SchedulerPolicyName(static_cast<SchedulerPolicy>(p))}};
      auto& registry = obs::MetricsRegistry::Global();
      sets[p].runs =
          registry.GetCounter("vaolib_scheduler_runs_total", labels);
      sets[p].steps =
          registry.GetCounter("vaolib_scheduler_steps_total", labels);
      sets[p].work_units =
          registry.GetCounter("vaolib_scheduler_work_units_total", labels);
      sets[p].starved = registry.GetCounter(
          "vaolib_scheduler_starved_queries_total", labels);
      sets[p].deadline_misses = registry.GetCounter(
          "vaolib_scheduler_deadline_misses_total", labels);
      sets[p].budget_exhausted = registry.GetCounter(
          "vaolib_scheduler_budget_exhausted_total", labels);
    }
    return sets;
  }();
  return counters[static_cast<int>(policy)];
}

// Lazy max-heap entry for kGreedyGlobal: scores go stale whenever a step
// (of this task, or of another task sharing its result objects) moves the
// uncertainty; stale pops are re-scored and re-pushed instead of eagerly
// rebuilding the heap.
struct HeapEntry {
  double score = 0.0;
  std::size_t index = 0;
};

struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.score != b.score) return a.score < b.score;
    return a.index > b.index;  // max-heap prefers the lowest index on ties
  }
};

using GreedyHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess>;

}  // namespace

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kGreedyGlobal:
      return "greedy_global";
    case SchedulerPolicy::kFairShare:
      return "fair_share";
    case SchedulerPolicy::kDeadline:
      return "deadline";
  }
  return "unknown";
}

std::size_t WorkScheduler::PickFairShare(
    const std::vector<Entry>& entries,
    const std::vector<TaskScheduleStats>& stats) const {
  // Smallest spent/priority ratio wins; ties go to the lowest index, so
  // the order is deterministic and a fresh task set round-robins.
  std::size_t best = kNone;
  double best_ratio = 0.0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].task->Done()) continue;
    const double ratio = static_cast<double>(stats[i].spent) /
                         entries[i].schedule.priority;
    if (best == kNone || ratio < best_ratio) {
      best = i;
      best_ratio = ratio;
    }
  }
  return best;
}

std::size_t WorkScheduler::PickDeadline(
    const std::vector<Entry>& entries,
    const std::vector<TaskScheduleStats>& stats,
    std::uint64_t total_spent) const {
  // A task may consume budget only while what remains still covers every
  // OTHER unfinished task's unmet reserve; its own reserve is excluded, so
  // a task whose reserve is unmet always has headroom of exactly that
  // reserve. With Sum(reserves) <= budget this guarantees each query its
  // reserved share no matter the deadline order.
  auto eligible = [&](std::size_t q) {
    if (entries[q].task->Done()) return false;
    if (options_.budget == 0) return true;
    std::uint64_t others_unmet = 0;
    for (std::size_t p = 0; p < entries.size(); ++p) {
      if (p == q || entries[p].task->Done()) continue;
      const std::uint64_t reserve = entries[p].schedule.reserve;
      if (stats[p].spent < reserve) others_unmet += reserve - stats[p].spent;
    }
    return total_spent < options_.budget &&
           options_.budget - total_spent > others_unmet;
  };

  // Earliest deadline first; deadline 0 = none = after everything else.
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  std::size_t best = kNone;
  std::uint64_t best_deadline = kInf;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!eligible(i)) continue;
    const std::uint64_t deadline =
        entries[i].schedule.deadline == 0 ? kInf : entries[i].schedule.deadline;
    if (best == kNone || deadline < best_deadline) {
      best = i;
      best_deadline = deadline;
    }
  }
  return best;
}

std::size_t WorkScheduler::PickGreedy(const std::vector<Entry>& entries) const {
  // Fallback scan (used when the lazy heap is exhausted by done tasks).
  std::size_t best = kNone;
  double best_score = -1.0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].task->Done()) continue;
    const double score = GreedyScore(*entries[i].task);
    if (score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

std::size_t WorkScheduler::PickNext(
    const std::vector<Entry>& entries,
    const std::vector<TaskScheduleStats>& stats,
    std::uint64_t total_spent) const {
  switch (options_.policy) {
    case SchedulerPolicy::kGreedyGlobal:
      return PickGreedy(entries);
    case SchedulerPolicy::kFairShare:
      return PickFairShare(entries, stats);
    case SchedulerPolicy::kDeadline:
      return PickDeadline(entries, stats, total_spent);
  }
  return kNone;
}

Result<std::vector<TaskScheduleStats>> WorkScheduler::Run(
    const std::vector<Entry>& entries, WorkMeter* meter) {
  if (meter == nullptr) {
    return Status::InvalidArgument(
        "scheduler requires a work meter (it is the budget's clock)");
  }
  for (const Entry& entry : entries) {
    if (entry.task == nullptr) {
      return Status::InvalidArgument("scheduler entry has a null task");
    }
    if (!(entry.schedule.priority > 0.0)) {
      return Status::InvalidArgument(
          "scheduler priorities must be positive");
    }
  }

  const obs::ScopedSpan run_span("scheduler",
                                 SchedulerPolicyName(options_.policy));
  std::vector<TaskScheduleStats> stats(entries.size());
  std::uint64_t total_spent = 0;
  bool budget_exhausted = false;

  // kGreedyGlobal keeps a lazy max-heap over benefit/cost scores; stale
  // entries (score changed since push, or task finished) are skipped or
  // re-scored on pop instead of rebuilding.
  const bool use_heap = options_.policy == SchedulerPolicy::kGreedyGlobal;
  GreedyHeap heap;
  if (use_heap) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (!entries[i].task->Done()) {
        heap.push({GreedyScore(*entries[i].task), i});
      }
    }
  }
  auto pop_greedy = [&]() -> std::size_t {
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      if (entries[top.index].task->Done()) continue;
      const double fresh = GreedyScore(*entries[top.index].task);
      if (fresh != top.score) {
        heap.push({fresh, top.index});  // stale: re-score and retry
        continue;
      }
      return top.index;
    }
    return PickGreedy(entries);
  };

  // One task step with exact accounting: the meter delta of the Step() is
  // attributed to the task, the heap (kGreedyGlobal) gets the fresh score.
  auto step_one = [&](std::size_t idx) -> Status {
    operators::IterationTask* task = entries[idx].task;
    const std::uint64_t before = meter->Total();
    const obs::WorkByKind work_before = obs::WorkByKind::Capture(*meter);
    Status status = Status::OK();
    {
      const obs::ScopedSpan step_span("sched_step", task->name(),
                                      obs::TraceDetail::kFine);
      status = task->Step(meter);
    }
    const std::uint64_t delta = meter->Total() - before;
    const obs::WorkByKind work_delta =
        obs::WorkByKind::Capture(*meter).DeltaSince(work_before);
    stats[idx].spent += delta;
    stats[idx].steps += 1;
    stats[idx].work.exec += work_delta.exec;
    stats[idx].work.get_state += work_delta.get_state;
    stats[idx].work.store_state += work_delta.store_state;
    stats[idx].work.choose_iter += work_delta.choose_iter;
    total_spent += delta;
    if (!status.ok()) return status;
    if (task->Done()) {
      stats[idx].finished_at = total_spent;
    } else if (use_heap) {
      heap.push({GreedyScore(*task), idx});
    }
    return Status::OK();
  };

  while (true) {
    if (options_.budget > 0 && total_spent >= options_.budget) {
      budget_exhausted = std::any_of(
          entries.begin(), entries.end(),
          [](const Entry& e) { return !e.task->Done(); });
      break;
    }
    const std::size_t pick =
        use_heap ? pop_greedy() : PickNext(entries, stats, total_spent);
    if (pick == kNone) {
      // No task eligible: everyone is done, or (kDeadline) the remaining
      // budget is fully committed to reserves nobody can use.
      budget_exhausted = std::any_of(
          entries.begin(), entries.end(),
          [](const Entry& e) { return !e.task->Done(); });
      break;
    }

    // Round membership: the pick, plus (kGreedyGlobal batch rounds) up to
    // batch_k - 1 other unfinished tasks of the same kind, best-scored
    // first. Running same-kind tasks back to back keeps the operators'
    // kernel batches of the same solver family warm across queries.
    std::vector<std::size_t> round{pick};
    if (use_heap && options_.batch_k > 1) {
      const std::string_view kind = entries[pick].task->name();
      std::vector<std::size_t> peers;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i == pick || entries[i].task->Done()) continue;
        if (std::string_view(entries[i].task->name()) != kind) continue;
        peers.push_back(i);
      }
      std::stable_sort(peers.begin(), peers.end(),
                       [&](std::size_t a, std::size_t b) {
                         return GreedyScore(*entries[a].task) >
                                GreedyScore(*entries[b].task);
                       });
      const std::size_t extra =
          static_cast<std::size_t>(options_.batch_k) - 1;
      for (std::size_t j = 0; j < peers.size() && j < extra; ++j) {
        round.push_back(peers[j]);
      }
    }

    for (std::size_t r = 0; r < round.size(); ++r) {
      // The budget is the loop-top check for the first member; later
      // members re-check so a batch round can never overshoot further than
      // a single step would.
      if (r > 0 && options_.budget > 0 && total_spent >= options_.budget) {
        break;
      }
      if (entries[round[r]].task->Done()) continue;
      const Status status = step_one(round[r]);
      if (!status.ok()) return status;
    }
  }

  std::uint64_t starved_count = 0;
  std::uint64_t miss_count = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const bool done = entries[i].task->Done();
    stats[i].converged = entries[i].task->Converged();
    stats[i].starved = !done && stats[i].steps == 0;
    const std::uint64_t deadline = entries[i].schedule.deadline;
    stats[i].missed_deadline =
        deadline > 0 && (!done || stats[i].finished_at > deadline);
    if (stats[i].starved) ++starved_count;
    if (stats[i].missed_deadline) ++miss_count;
  }

  const PolicyCounters& counters = CountersFor(options_.policy);
  counters.runs->Increment();
  counters.work_units->Add(total_spent);
  std::uint64_t total_steps = 0;
  for (const TaskScheduleStats& s : stats) total_steps += s.steps;
  counters.steps->Add(total_steps);
  counters.starved->Add(starved_count);
  counters.deadline_misses->Add(miss_count);
  if (budget_exhausted) counters.budget_exhausted->Increment();

  return stats;
}

}  // namespace vaolib::engine
