#include "engine/relation.h"

#include "common/macros.h"

namespace vaolib::engine {

Status Relation::Append(Tuple row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ColumnType type = schema_.columns()[i].type;
    const bool ok = (type == ColumnType::kInt && row[i].is_int()) ||
                    (type == ColumnType::kDouble && row[i].is_double()) ||
                    (type == ColumnType::kString && row[i].is_string());
    if (!ok) {
      return Status::InvalidArgument("tuple cell " + std::to_string(i) +
                                     " does not match column type of '" +
                                     schema_.columns()[i].name + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<std::vector<double>> Relation::NumericColumn(
    const std::string& name) const {
  VAOLIB_ASSIGN_OR_RETURN(const std::size_t col, schema_.IndexOf(name));
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    VAOLIB_ASSIGN_OR_RETURN(const double v, row[col].AsDouble());
    out.push_back(v);
  }
  return out;
}

}  // namespace vaolib::engine
