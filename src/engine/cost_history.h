// Copyright 2026 The vaolib Authors.
// CostHistory: the engine-side store behind operators::CostFeedback.
//
// Keyed by (stable object identity, solver kind), each entry keeps EWMA'd
// actual/estimated ratios for per-iteration cost and bound shrink, plus a
// decaying sample weight. The store survives across ticks of a standing
// query (the MultiQueryExecutor calls BeginTick() once per tick; the
// server dispatcher keeps one store per query group across rebuilds), so
// an object that lies about its estimates on tick 1 is scored honestly on
// tick 2 even though its result objects are rebuilt from scratch.
//
// Bounded: at most max_entries live at once; recording past the bound
// evicts the least-recently-recorded entry. Decayed: BeginTick() scales
// every weight by `decay` and drops entries below `min_weight`, so stale
// identities age out of standing queries whose row sets churn.
//
// Thread-safe (one mutex); the operators only record on their serial
// adaptive paths, so the recorded sample sequence -- and therefore the
// EWMA state -- is invariant under the operator's thread count.

#ifndef VAOLIB_ENGINE_COST_HISTORY_H_
#define VAOLIB_ENGINE_COST_HISTORY_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "operators/cost_feedback.h"

namespace vaolib::engine {

class CostHistory : public operators::CostFeedback {
 public:
  struct Options {
    /// EWMA weight of the newest sample: ratio' = alpha*sample +
    /// (1-alpha)*ratio. The first sample sets the ratio directly.
    double alpha = 0.25;
    /// Per-tick multiplier applied to every entry's weight by BeginTick().
    double decay = 0.5;
    /// Entries whose decayed weight falls below this are dropped at tick
    /// boundaries.
    double min_weight = 0.05;
    /// Predict() answers only for entries with at least this much weight.
    double min_predict_weight = 0.5;
    /// Hard cap on live entries; recording past it evicts the
    /// least-recently-recorded entry.
    std::size_t max_entries = 4096;
  };

  /// One entry's learned state (exposed for tests and audits).
  struct Entry {
    double cost_ratio = 1.0;    ///< EWMA of actual/estimated cost
    double shrink_ratio = 1.0;  ///< EWMA of actual/estimated shrink
    bool has_cost = false;      ///< any cost sample recorded yet
    bool has_shrink = false;    ///< any shrink sample recorded yet
    double weight = 0.0;        ///< decayed sample count
  };

  CostHistory();
  explicit CostHistory(Options options);

  // CostFeedback:
  void Record(std::uint64_t id, int kind,
              const operators::CostObservation& observation) override;
  bool Predict(std::uint64_t id, int kind, double* cost_ratio,
               double* shrink_ratio) const override;

  /// Decays all weights and drops entries below min_weight. Call once per
  /// standing-query tick, before the tick's operators run.
  void BeginTick();

  /// Number of live entries.
  std::size_t size() const;

  /// Looks up one entry; returns false when absent.
  bool Lookup(std::uint64_t id, int kind, Entry* out) const;

  /// All live entries as ((id, kind), entry), most recently recorded last.
  /// For tests and the calibration audit.
  std::vector<std::pair<std::pair<std::uint64_t, int>, Entry>> Snapshot()
      const;

  const Options& options() const { return options_; }

 private:
  using Key = std::pair<std::uint64_t, int>;
  struct Node {
    Key key;
    Entry entry;
  };

  Options options_;
  mutable std::mutex mu_;
  /// LRU by recording time: least-recently-recorded at the front.
  std::list<Node> lru_;
  std::map<Key, std::list<Node>::iterator> index_;
};

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_COST_HISTORY_H_
