// Copyright 2026 The vaolib Authors.
// CqExecutor: runs one continuous query over an interest-style stream and a
// relation, re-evaluating on every stream tick (the paper's Figure 1 system
// with the function-execution and operator modules fused into VAOs).

#ifndef VAOLIB_ENGINE_EXECUTOR_H_
#define VAOLIB_ENGINE_EXECUTOR_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "common/work_meter.h"
#include "engine/query.h"
#include "engine/relation.h"
#include "engine/schema.h"
#include "obs/execution_report.h"
#include "vao/answer.h"
#include "vao/black_box.h"

namespace vaolib::engine {

/// \brief Whether a query runs with VAOs or with traditional black-box
/// operators (the Section 6 baseline).
enum class ExecutionMode { kVao, kTraditional };

/// \brief How a VAO-mode tick reacts to result-object failures (NaN/Inf or
/// inverted bounds, Iterate() errors, refinement stalls, iteration budgets).
enum class ResiliencePolicy {
  /// Any failing row/object fails the whole tick with its Status (default;
  /// matches the pre-resilience behaviour exactly).
  kStrict,
  /// Selections quarantine failing rows (excluded from passing_rows,
  /// reported in TickResult::quarantined_rows) and still answer; aggregates
  /// whose VAO evaluation fails with a degradable code (NumericError,
  /// ResourceExhausted, NotConverged) fall back to the calibrated black-box
  /// path and mark the result degraded. Crashes and hangs become answers
  /// with an attached cause, never silent wrong results.
  kDegrade,
};

/// \brief Output of one stream tick.
struct TickResult {
  QueryKind kind = QueryKind::kSelect;

  /// kSelect: indices of relation rows whose predicate passed.
  std::vector<std::size_t> passing_rows;

  /// kMax/kMin: the winning relation row.
  std::optional<std::size_t> winner_row;

  /// kTopK: selected rows (most extreme first) and their bounds.
  std::vector<std::size_t> top_rows;
  std::vector<Bounds> top_bounds;
  /// True when the winner is only determined up to minWidth ties.
  bool tie = false;

  /// Aggregate output: hard bounds in exact mode (degenerate [v, v] in
  /// traditional mode), a probabilistic combined interval with provenance
  /// when the query requested approximate execution. Assigning a plain
  /// Bounds keeps the exact semantics (mode = kExact, confidence 1).
  vao::Answer aggregate_bounds;

  operators::OperatorStats stats;
  /// Work units charged during this tick (all WorkKinds).
  std::uint64_t work_units = 0;

  /// False when a scheduled tick's work budget ran out before this query
  /// finished: the answer above is then a sound partial result (aggregate
  /// bounds are an envelope containing the true value; undecided selection
  /// rows resolve by their current bounds). Always true for unscheduled
  /// execution, which drives every query to convergence.
  bool converged = true;

  /// \name Resilience accounting. Row quarantine and black-box fallback
  /// happen only under ResiliencePolicy::kDegrade; the degraded flag is
  /// also set (in any policy) when an aggregate quarantined stalled
  /// objects, since the answer is then sound but coarser than requested.
  /// @{
  /// True when any quarantine or black-box fallback happened this tick.
  bool degraded = false;
  /// The first failure that triggered degradation (OK when !degraded).
  Status degradation_cause;
  /// kSelect/kSelectRange: rows whose evaluation failed; they are excluded
  /// from passing_rows (ascending order).
  std::vector<std::size_t> quarantined_rows;
  /// @}

  /// Structured observability account of this tick; report.work.Total()
  /// always equals work_units.
  obs::ExecutionReport report;
};

/// \brief Fills \p report's convergence-progress section (obs/health.h feeds
/// these into per-query ProgressRings) from one query's finished tick.
/// Interval-valued kinds (extremes, aggregates, TOP-K) report the answer
/// interval's width and relative width; selections report 0.
/// limited_by_min_width marks a tick that finished (not cut off by a
/// scheduler budget) yet could not reach the requested precision: an
/// aggregate still wider than epsilon, or an extreme/TOP-K decided only up
/// to minWidth ties. More budget cannot tighten such an answer.
inline void FillProgressSection(const TickResult& result, double epsilon,
                                obs::ExecutionReport* report) {
  const bool interval_kind = result.kind != QueryKind::kSelect &&
                             result.kind != QueryKind::kSelectRange;
  double width = 0.0;
  double rel = 0.0;
  if (interval_kind) {
    width = result.aggregate_bounds.Width();
    const double scale = std::max(std::fabs(result.aggregate_bounds.lo),
                                  std::fabs(result.aggregate_bounds.hi));
    if (!std::isfinite(width)) width = 0.0;  // unbounded: no useful sample
    if (scale > 0.0 && std::isfinite(scale)) rel = width / scale;
  }
  report->answer_width = width;
  report->answer_rel_width = rel;
  const bool epsilon_kind =
      result.kind == QueryKind::kSum || result.kind == QueryKind::kAve;
  report->limited_by_min_width =
      result.converged &&
      ((epsilon_kind && width > epsilon) || (interval_kind && result.tie));
}

/// \brief Single-query continuous executor.
///
/// The relation and the query's function are borrowed and must outlive the
/// executor. Each ProcessTick() call is independent; per-object state is not
/// carried across ticks (function caching is orthogonal, Section 3.1).
class CqExecutor {
 public:
  /// Builds an executor and resolves all column references. \p threads > 1
  /// runs VAO-mode ticks on the shared thread pool: selection predicates
  /// resolve row-parallel through the batch operator paths, aggregate
  /// object creation goes through InvokeAll, and MIN/MAX/SUM/AVE run a
  /// parallel coarse-convergence phase (to the query epsilon) before their
  /// serial greedy refinement. Traditional mode ignores \p threads (its
  /// baseline costs are charged, not solved). Requires the query's function
  /// to support concurrent Invoke() -- true for every function in this
  /// library, including CachingFunction.
  ///
  /// \p resilience selects the VAO-mode failure policy (see
  /// ResiliencePolicy); traditional mode ignores it.
  static Result<std::unique_ptr<CqExecutor>> Create(
      const Relation* relation, Schema stream_schema, Query query,
      ExecutionMode mode, int threads = 1,
      ResiliencePolicy resilience = ResiliencePolicy::kStrict);

  /// Re-evaluates the query for \p stream_tuple.
  Result<TickResult> ProcessTick(const Tuple& stream_tuple);

  /// Cumulative work across all ticks so far.
  const WorkMeter& meter() const { return meter_; }
  void ResetMeter() { meter_.Reset(); }

  ExecutionMode mode() const { return mode_; }
  const Query& query() const { return query_; }
  int threads() const { return threads_; }
  ResiliencePolicy resilience() const { return resilience_; }

 private:
  CqExecutor(const Relation* relation, Schema stream_schema, Query query,
             ExecutionMode mode, int threads, ResiliencePolicy resilience);

  /// Resolves ArgRefs into per-row argument vectors for this tick.
  Result<std::vector<double>> BuildArgs(const Tuple& stream_tuple,
                                        std::size_t row) const;

  Result<TickResult> RunVao(const Tuple& stream_tuple);
  Result<TickResult> RunTraditional(const Tuple& stream_tuple);

  /// Approximate tier (query_.approx engaged): SUM/AVE answer from a
  /// growing row sample via SampledSumTask; TOP-K runs the exact operator
  /// over an upfront uniform sample (a heuristic tier -- its interval
  /// provenance marks the answer approximate but carries no per-rank CLT
  /// guarantee). Falls back like RunVao on degradable failures.
  Result<TickResult> RunApproximate(const Tuple& stream_tuple);

  /// kDegrade handling of a failed VAO aggregate: when \p cause is a
  /// degradable code, re-answers the tick through the calibrated black-box
  /// path (created lazily) and marks the result degraded; otherwise (or in
  /// strict mode) forwards \p cause. The fallback's report covers only the
  /// fallback work; meter() accumulates both attempts.
  Result<TickResult> FallbackOrError(const Tuple& stream_tuple,
                                     const Status& cause);

  Result<std::vector<double>> ResolveWeights() const;

  const Relation* relation_;
  Schema stream_schema_;
  Query query_;
  ExecutionMode mode_;
  int threads_;
  ResiliencePolicy resilience_;
  WorkMeter meter_;

  /// Pre-resolved argument bindings: (source, column index or constant).
  struct BoundArg {
    ArgRef::Source source;
    std::size_t index = 0;
    double constant = 0.0;
  };
  std::vector<BoundArg> bound_args_;
  std::optional<std::size_t> weight_column_index_;

  /// Calibrated baseline for traditional mode (lazy per-args cache inside).
  std::unique_ptr<vao::CalibratedBlackBox> black_box_;
};

}  // namespace vaolib::engine

#endif  // VAOLIB_ENGINE_EXECUTOR_H_
