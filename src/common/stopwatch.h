// Copyright 2026 The vaolib Authors.
// Stopwatch: wall-clock timing helper for benches and examples.

#ifndef VAOLIB_COMMON_STOPWATCH_H_
#define VAOLIB_COMMON_STOPWATCH_H_

#include <chrono>

namespace vaolib {

/// \brief Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from now.
  void Restart() { start_ = Clock::now(); }

  /// Returns seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vaolib

#endif  // VAOLIB_COMMON_STOPWATCH_H_
