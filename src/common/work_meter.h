// Copyright 2026 The vaolib Authors.
// WorkMeter: deterministic accounting of numeric work.
//
// The paper's cost model (Section 3.2) decomposes each VAO iteration into
// exec/get-state/store-state/choose-iteration components. To reproduce the
// paper's *shapes* independently of host CPU speed, every solver in this
// repository charges a WorkMeter: one unit per mesh-entry update, integrand
// evaluation, or root-solver probe. Benchmarks report work units as the
// primary metric and wall-clock time as a secondary one.

#ifndef VAOLIB_COMMON_WORK_METER_H_
#define VAOLIB_COMMON_WORK_METER_H_

#include <atomic>
#include <cstdint>

namespace vaolib {

/// \brief Categories of work charged by vaolib components, mirroring the
/// cost-model terms of Section 3.2 of the paper.
enum class WorkKind : int {
  kExec = 0,        ///< exec_iter: solver floating-point work.
  kGetState = 1,    ///< get_state: loading result-object state.
  kStoreState = 2,  ///< store_state: saving result-object state.
  kChooseIter = 3,  ///< chooseIter: operator strategy bookkeeping.
};

/// \brief Accumulates work units by kind. Charging is thread-safe (relaxed
/// atomics) so bulk-parallel helpers (vao/parallel.h) can share one meter;
/// reads taken while workers are still charging are approximate snapshots.
class WorkMeter {
 public:
  static constexpr int kNumKinds = 4;

  WorkMeter() = default;
  WorkMeter(const WorkMeter& other) { CopyFrom(other); }
  WorkMeter& operator=(const WorkMeter& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Adds \p units of work of the given \p kind.
  void Charge(WorkKind kind, std::uint64_t units) {
    counts_[static_cast<int>(kind)].fetch_add(units,
                                              std::memory_order_relaxed);
  }

  /// Returns the units charged for \p kind.
  std::uint64_t Count(WorkKind kind) const {
    return counts_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }

  /// Returns total units across all kinds.
  std::uint64_t Total() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) {
      total += c.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Returns only the solver-execution units (the paper's exec_iter term).
  std::uint64_t ExecUnits() const { return Count(WorkKind::kExec); }

  /// Resets all counters to zero.
  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

  /// Adds every counter of \p other into this meter.
  void Merge(const WorkMeter& other) {
    for (int i = 0; i < kNumKinds; ++i) {
      counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
  }

 private:
  void CopyFrom(const WorkMeter& other) {
    for (int i = 0; i < kNumKinds; ++i) {
      counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
  }

  std::atomic<std::uint64_t> counts_[kNumKinds] = {0, 0, 0, 0};
};

}  // namespace vaolib

#endif  // VAOLIB_COMMON_WORK_METER_H_
