// Copyright 2026 The vaolib Authors.
// ThreadPool: a persistent fixed-size worker pool with a chunked ParallelFor.
//
// The paper sizes production deployments in processors and calls its models
// "easily parallelizable" (Section 6.1). Everything bulk-parallel in this
// repository -- bulk Invoke(), bulk convergence, batch predicate resolution
// -- runs through this pool rather than spawning std::threads per call:
// workers are created once and reused, so per-tick parallel sections cost a
// queue push instead of a thread spawn.
//
// Determinism contract: ParallelFor splits [0, n) into contiguous chunks and
// gives every chunk its own WorkMeter; the chunk meters are merged into the
// caller's meter in chunk order at join. Because chunk boundaries depend
// only on (n, chunk size) -- never on the worker count or scheduling -- the
// merged work-unit totals are bit-identical across any max_parallelism,
// including serial execution.
//
// Error contract: every chunk is attempted even after another chunk has
// failed, and the returned Status is the error of the lowest-indexed failing
// chunk. A body that processes its range in index order therefore surfaces
// the error of the lowest-indexed failing element, deterministically.
// Exceptions escaping the body are captured and returned as Internal errors
// (the pool never terminates the process and workers never die).

#ifndef VAOLIB_COMMON_THREAD_POOL_H_
#define VAOLIB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/work_meter.h"

namespace vaolib {

/// \brief Persistent fixed-size worker pool.
///
/// Thread-safe: ParallelFor may be called from multiple threads at once
/// (calls share the workers). Nested ParallelFor from inside a body is not
/// supported and returns FailedPrecondition.
class ThreadPool {
 public:
  /// Processes the half-open index range [begin, end); charges work to
  /// \p meter (null when the caller passed a null meter).
  using ChunkBody = std::function<Status(std::size_t begin, std::size_t end,
                                         WorkMeter* meter)>;

  /// Spawns \p threads workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Joins all workers; outstanding ParallelFor calls complete first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  struct ForOptions {
    /// Workers used by this call; <= 0 or > pool size means the pool size.
    /// 1 runs the chunks inline on the caller (no queueing at all).
    int max_parallelism = 0;
    /// Minimum indices per chunk (work-stealing granularity). Chunk
    /// boundaries -- and therefore meter merges -- depend only on this and
    /// n, never on max_parallelism.
    std::size_t min_chunk = 1;
  };

  /// Runs \p body over [0, n) in contiguous chunks. All chunks are
  /// attempted; returns the lowest-indexed failing chunk's error. Work is
  /// charged to per-chunk meters merged into \p meter in chunk order at
  /// join (pass null to skip metering).
  Status ParallelFor(std::size_t n, const ForOptions& options, WorkMeter* meter,
                     const ChunkBody& body);

  /// \brief Cumulative activity counters, maintained with plain relaxed
  /// atomics so the pool stays free of upward dependencies (the obs layer
  /// reads these; it is not linked from here). Snapshot semantics match
  /// WorkMeter: racy-but-atomic reads, exact once callers have quiesced.
  struct Stats {
    std::uint64_t parallel_for_calls = 0;
    std::uint64_t tasks_enqueued = 0;
    std::uint64_t chunks_executed = 0;
    /// Total nanoseconds helper tasks spent queued before a worker picked
    /// them up (enqueue to task start).
    std::uint64_t queue_wait_nanos = 0;
  };

  /// Snapshot of the counters above.
  Stats stats() const;

  /// Process-wide pool sized to the hardware concurrency, created on first
  /// use and alive until process exit. Bulk helpers that take a `threads`
  /// count use this pool with max_parallelism = threads, so differently
  /// sized requests share one set of workers.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;

  std::atomic<std::uint64_t> stat_parallel_for_calls_{0};
  std::atomic<std::uint64_t> stat_tasks_enqueued_{0};
  std::atomic<std::uint64_t> stat_chunks_executed_{0};
  std::atomic<std::uint64_t> stat_queue_wait_nanos_{0};

  static thread_local bool in_worker_;
};

}  // namespace vaolib

#endif  // VAOLIB_COMMON_THREAD_POOL_H_
