// Copyright 2026 The vaolib Authors.
// Result<T>: value-or-Status, the return type of fallible value-producing
// operations in vaolib. Mirrors arrow::Result.

#ifndef VAOLIB_COMMON_RESULT_H_
#define VAOLIB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace vaolib {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Construction from a value yields ok(); construction from a non-OK Status
/// yields an error. Constructing from an OK status is a programming error and
/// converts to an Internal error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (ok result).
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : repr_(std::in_place_index<0>, std::move(value)) {}

  /// Implicit construction from an error Status.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::in_place_index<1>, std::move(status)) {
    if (std::get<1>(repr_).ok()) {
      repr_.template emplace<1>(
          Status::Internal("Result constructed from an OK status"));
    }
  }

  /// Returns true iff this holds a value.
  bool ok() const { return repr_.index() == 0; }

  /// Returns the status: OK when holding a value, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(repr_);
  }

  /// \name Value accessors. Calling these on an error result is undefined
  /// behaviour in release builds (asserted in debug builds).
  /// @{
  const T& value() const& {
    assert(ok());
    return std::get<0>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(repr_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  /// @}

  /// Returns the value, aborting the process on error (edge-of-program use).
  T ValueOrDie() && {
    if (!ok()) internal::DieOnError(status(), "Result::ValueOrDie()");
    return std::get<0>(std::move(repr_));
  }
  T ValueOrDie() const& {
    if (!ok()) internal::DieOnError(status(), "Result::ValueOrDie()");
    return std::get<0>(repr_);
  }

  /// Returns the value or \p fallback when this holds an error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace vaolib

#endif  // VAOLIB_COMMON_RESULT_H_
