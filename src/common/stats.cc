#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace vaolib {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace vaolib
