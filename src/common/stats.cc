#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vaolib {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void WeightedVariance::Add(double x, double w) {
  if (!(w > 0.0)) return;
  ++count_;
  weight_sum_ += w;
  const double delta = x - mean_;
  mean_ += (w / weight_sum_) * delta;
  m2_ += w * delta * (x - mean_);
}

double WeightedVariance::PopulationVariance() const {
  if (count_ < 2 || weight_sum_ <= 0.0) return 0.0;
  return m2_ / weight_sum_;
}

double WeightedVariance::SampleVariance() const {
  if (count_ < 2 || weight_sum_ <= 1.0) return 0.0;
  return m2_ / (weight_sum_ - 1.0);
}

void WeightedVariance::Reset() {
  count_ = 0;
  weight_sum_ = 0.0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double NormalQuantile(double p) {
  // Acklam's rational approximation to the inverse normal CDF, in the
  // standard three-region form (lower tail, central, upper tail).
  if (std::isnan(p) || p < 0.0 || p > 1.0) return std::nan("");
  if (p == 0.0) return -std::numeric_limits<double>::infinity();
  if (p == 1.0) return std::numeric_limits<double>::infinity();

  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace vaolib
