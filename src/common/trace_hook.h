// Copyright 2026 The vaolib Authors.
// Trace hook seam for vaolib_common: the thread pool wants to emit spans
// for the chunks it executes, but common sits below the observability
// library in the link order and must not include obs headers. The obs
// tracer installs a function pointer here (only while tracing is on, so
// the off-mode cost stays one relaxed load per chunk); common call sites
// invoke it with raw steady_clock timestamps and the tracer rebases them
// onto its own epoch.

#ifndef VAOLIB_COMMON_TRACE_HOOK_H_
#define VAOLIB_COMMON_TRACE_HOOK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace vaolib {

/// \brief Span callback: (name, start, end) in absolute steady_clock ns.
/// `name` must be a string literal.
using TraceSpanHookFn = void (*)(const char* name, std::uint64_t start_ns,
                                 std::uint64_t end_ns);

/// \brief The installed hook cell (nullptr = tracing off or obs unlinked).
inline std::atomic<TraceSpanHookFn>& TraceSpanHook() {
  static std::atomic<TraceSpanHookFn> hook{nullptr};
  return hook;
}

/// \brief Absolute steady_clock nanoseconds, for hook timestamps.
inline std::uint64_t TraceHookNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace vaolib

#endif  // VAOLIB_COMMON_TRACE_HOOK_H_
