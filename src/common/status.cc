#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace vaolib {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kNotConverged:
      return "not-converged";
    case StatusCode::kNumericError:
      return "numeric-error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return rep_ == nullptr ? EmptyString() : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {
void DieOnError(const Status& status, const char* expr) {
  std::fprintf(stderr, "vaolib fatal: %s failed with %s\n", expr,
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace vaolib
