#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace vaolib {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double mantissa resolution.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  assert(stddev >= 0.0);
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

}  // namespace vaolib
