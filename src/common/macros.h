// Copyright 2026 The vaolib Authors.
// Error-propagation macros used throughout the vaolib core.

#ifndef VAOLIB_COMMON_MACROS_H_
#define VAOLIB_COMMON_MACROS_H_

#include "common/status.h"

/// Evaluates \p expr (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define VAOLIB_RETURN_IF_ERROR(expr)                     \
  do {                                                   \
    ::vaolib::Status _vaolib_status = (expr);            \
    if (!_vaolib_status.ok()) return _vaolib_status;     \
  } while (false)

#define VAOLIB_CONCAT_IMPL(a, b) a##b
#define VAOLIB_CONCAT(a, b) VAOLIB_CONCAT_IMPL(a, b)

/// Evaluates \p expr (a Result<T> expression); on error returns the status,
/// otherwise moves the value into \p lhs (which may be a declaration).
#define VAOLIB_ASSIGN_OR_RETURN(lhs, expr)                            \
  VAOLIB_ASSIGN_OR_RETURN_IMPL(                                       \
      VAOLIB_CONCAT(_vaolib_result_, __LINE__), lhs, expr)

#define VAOLIB_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                                 \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value();

#endif  // VAOLIB_COMMON_MACROS_H_
