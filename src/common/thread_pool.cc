#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "common/trace_hook.h"

namespace vaolib {

thread_local bool ThreadPool::in_worker_ = false;

namespace {

// Runs one chunk, converting any escaping exception into a Status so worker
// threads never unwind past the pool loop.
Status RunChunk(const ThreadPool::ChunkBody& body, std::size_t begin,
                std::size_t end, WorkMeter* meter) {
  try {
    return body(begin, end, meter);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") + e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

// State shared between a ParallelFor call and the runner tasks it enqueues.
// Runners pull chunk indices from `next_chunk`; the caller waits on `done`.
struct ForJob {
  const ThreadPool::ChunkBody* body = nullptr;
  std::size_t n = 0;
  std::size_t chunk_size = 1;
  std::size_t num_chunks = 0;
  bool metered = false;

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> chunks_finished{0};
  std::vector<WorkMeter> chunk_meters;
  std::vector<Status> chunk_status;

  std::mutex mutex;
  std::condition_variable done;

  void RunChunks() {
    while (true) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      // The tracer's hook is non-null only while tracing is on, so the
      // usual cost here is one relaxed load.
      const TraceSpanHookFn span_hook =
          TraceSpanHook().load(std::memory_order_relaxed);
      const std::uint64_t span_start =
          span_hook != nullptr ? TraceHookNowNs() : 0;
      chunk_status[c] =
          RunChunk(*body, begin, end, metered ? &chunk_meters[c] : nullptr);
      if (span_hook != nullptr) {
        span_hook("chunk", span_start, TraceHookNowNs());
      }
      if (chunks_finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        // Last chunk: wake the waiting caller. The lock pairs with the
        // caller's wait so the notify cannot be lost.
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  in_worker_ = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(std::size_t n, const ForOptions& options,
                               WorkMeter* meter, const ChunkBody& body) {
  if (n == 0) return Status::OK();
  if (in_worker_) {
    return Status::FailedPrecondition(
        "nested ParallelFor from inside a pool worker");
  }

  auto job = std::make_shared<ForJob>();
  job->body = &body;
  job->n = n;
  job->chunk_size = std::max<std::size_t>(options.min_chunk, 1);
  job->num_chunks = (n + job->chunk_size - 1) / job->chunk_size;
  job->metered = meter != nullptr;
  if (job->metered) job->chunk_meters.resize(job->num_chunks);
  job->chunk_status.resize(job->num_chunks);

  int parallelism = options.max_parallelism;
  if (parallelism <= 0 || parallelism > thread_count()) {
    parallelism = thread_count();
  }
  // Runner tasks beyond the first are only useful while chunks remain.
  const std::size_t runners = std::min<std::size_t>(
      static_cast<std::size_t>(parallelism), job->num_chunks);

  stat_parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  if (runners > 1) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // The caller runs chunks too, so enqueue runners - 1 helpers.
      const auto enqueued_at = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r + 1 < runners; ++r) {
        queue_.emplace_back([this, job, enqueued_at]() {
          const auto waited =
              std::chrono::steady_clock::now() - enqueued_at;
          stat_queue_wait_nanos_.fetch_add(
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                      .count()),
              std::memory_order_relaxed);
          job->RunChunks();
        });
      }
      stat_tasks_enqueued_.fetch_add(runners - 1, std::memory_order_relaxed);
    }
    wake_.notify_all();
  }
  // The calling thread always participates: parallelism 1 degrades to a
  // plain serial loop with zero queue traffic. It counts as a worker while
  // running chunks so nested ParallelFor is rejected no matter which thread
  // a body lands on. (RunChunks cannot throw; RunChunk catches.)
  in_worker_ = true;
  job->RunChunks();
  in_worker_ = false;
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done.wait(lock, [&job]() {
      return job->chunks_finished.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
  }

  stat_chunks_executed_.fetch_add(job->num_chunks, std::memory_order_relaxed);

  // Deterministic join: merge chunk meters and pick the error in chunk
  // order, independent of which worker ran what.
  Status first_error;
  for (std::size_t c = 0; c < job->num_chunks; ++c) {
    if (job->metered) meter->Merge(job->chunk_meters[c]);
    if (first_error.ok() && !job->chunk_status[c].ok()) {
      first_error = job->chunk_status[c];
    }
  }
  return first_error;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.parallel_for_calls =
      stat_parallel_for_calls_.load(std::memory_order_relaxed);
  s.tasks_enqueued = stat_tasks_enqueued_.load(std::memory_order_relaxed);
  s.chunks_executed = stat_chunks_executed_.load(std::memory_order_relaxed);
  s.queue_wait_nanos = stat_queue_wait_nanos_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = []() {
    const unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw == 0 ? 4 : static_cast<int>(hw));
  }();
  return *pool;
}

}  // namespace vaolib
